module rtreebuf

go 1.22
