package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Quick: true, SimBatches: 5, SimBatchSize: 2000}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{
		"ext-clock", "ext-dimensions", "ext-knn", "ext-loading", "ext-locality", "ext-nodesize", "ext-policy", "ext-staticlru", "ext-system", "ext-validation", "ext-warmup",
		"fig10", "fig11", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2",
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	for _, id := range ids {
		if title, ok := Title(id); !ok || title == "" {
			t.Errorf("missing title for %s", id)
		}
	}
	if _, ok := Title("nope"); ok {
		t.Error("bogus title found")
	}
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("unknown experiment ran")
	}
}

// Every experiment runs in Quick mode and yields well-formed tables.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(id, quickCfg())
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Errorf("report ID = %q", rep.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tbl := range rep.Tables {
				if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
					t.Fatalf("table %q empty", tbl.Name)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Fatalf("table %q: row width %d, want %d", tbl.Name, len(row), len(tbl.Columns))
					}
				}
				if !strings.Contains(tbl.Text(), tbl.Columns[0]) {
					t.Error("Text() lost the header")
				}
				if lines := strings.Split(strings.TrimSpace(tbl.CSV()), "\n"); len(lines) != len(tbl.Rows)+1 {
					t.Errorf("CSV has %d lines, want %d", len(lines), len(tbl.Rows)+1)
				}
			}
			if rep.Text() == "" {
				t.Error("empty report text")
			}
		})
	}
}

// parseColumn extracts a numeric column from a table, skipping "-" cells.
func parseColumn(t *testing.T, tbl Table, col string) []float64 {
	t.Helper()
	idx := -1
	for i, c := range tbl.Columns {
		if c == col {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatalf("table %q lacks column %q (have %v)", tbl.Name, col, tbl.Columns)
	}
	var out []float64
	for _, row := range tbl.Rows {
		if row[idx] == "-" {
			continue
		}
		s := strings.TrimSuffix(strings.TrimPrefix(row[idx], "+"), "%")
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("table %q col %q: %v", tbl.Name, col, err)
		}
		out = append(out, v)
	}
	return out
}

func nonIncreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]+tol {
			return false
		}
	}
	return true
}

func nonDecreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1]-tol {
			return false
		}
	}
	return true
}

// The qualitative shapes the paper reports, checked on the quick configs.
func TestFig6Shapes(t *testing.T) {
	rep, err := Run("fig6", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range rep.Tables {
		for _, col := range []string{"TAT", "NX", "HS"} {
			if !nonIncreasing(parseColumn(t, tbl, col), 1e-9) {
				t.Errorf("%s/%s: disk accesses increase with buffer size", tbl.Name, col)
			}
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	rep, err := Run("fig9", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Disk accesses at fixed buffer grow with data size (the paper's
	// point); check the large-buffer panel for HS (buffer=30 in quick
	// mode, scaled with the smaller trees).
	var buf300 *Table
	for i := range rep.Tables {
		if strings.Contains(rep.Tables[i].Name, "buffer=30") {
			buf300 = &rep.Tables[i]
		}
	}
	if buf300 == nil {
		t.Fatal("fig9 missing large-buffer table")
	}
	hs := parseColumn(t, *buf300, "HS")
	if !nonDecreasing(hs, 1e-9) {
		t.Errorf("disk accesses at buffer 300 not growing with data size: %v", hs)
	}
	if hs[len(hs)-1] <= hs[0] {
		t.Errorf("largest data set not more expensive than smallest: %v", hs)
	}
}

func TestFig10PinningNeverHurts(t *testing.T) {
	rep, err := Run("fig10", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range rep.Tables {
		p0 := parseColumn(t, tbl, "pin0")
		for _, col := range []string{"pin1", "pin2", "pin3"} {
			pk := parseColumn(t, tbl, col)
			for i := range pk {
				if i < len(p0) && pk[i] > p0[i]+1e-6 {
					t.Errorf("%s: %s row %d (%g) worse than pin0 (%g)", tbl.Name, col, i, pk[i], p0[i])
				}
			}
		}
	}
}

func TestTable1ModelAccuracy(t *testing.T) {
	rep, err := Run("table1", Config{Quick: true, SimBatches: 10, SimBatchSize: 10000})
	if err != nil {
		t.Fatal(err)
	}
	diffs := parseColumn(t, rep.Tables[0], "diff")
	for i, d := range diffs {
		if d > 12 || d < -12 {
			t.Errorf("row %d: model-vs-sim difference %.1f%% too large even for quick mode", i, d)
		}
	}
}

func TestTableTextAlignment(t *testing.T) {
	tbl := Table{
		Name:    "demo",
		Columns: []string{"a", "bbbb"},
	}
	tbl.AddRow("xxxxxx", "1")
	text := tbl.Text()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	// header, separator, one row, plus the name line.
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[0], "== demo") {
		t.Errorf("name line = %q", lines[0])
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.2346" {
		t.Errorf("F = %q", F(1.23456))
	}
	if FPct(0.1234) != "+12.34%" {
		t.Errorf("FPct = %q", FPct(0.1234))
	}
	if FPct(-0.5) != "-50.00%" {
		t.Errorf("FPct = %q", FPct(-0.5))
	}
	if FInt(42) != "42" {
		t.Errorf("FInt = %q", FInt(42))
	}
}
