package experiments

import "testing"

// TestExtSystemMonitorTable checks the Monitor opt-in: the default
// tables stay byte-identical, and the extra residual table reports one
// deterministic row per buffer size with five completed windows.
func TestExtSystemMonitorTable(t *testing.T) {
	plain, err := Run("ext-system", quickCfg())
	if err != nil {
		t.Fatal(err)
	}

	cfg := quickCfg()
	cfg.Monitor = true
	monitored, err := Run("ext-system", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(monitored.Tables) != len(plain.Tables)+1 {
		t.Fatalf("monitored run has %d tables, want %d", len(monitored.Tables), len(plain.Tables)+1)
	}
	if got, want := monitored.Tables[0].Text(), plain.Tables[0].Text(); got != want {
		t.Errorf("Monitor changed the default table:\n%s\nvs\n%s", got, want)
	}

	tbl := monitored.Tables[1]
	if tbl.Name != "ext-system-monitor" {
		t.Fatalf("second table is %q", tbl.Name)
	}
	if len(tbl.Rows) != len(plain.Tables[0].Rows) {
		t.Fatalf("monitor table has %d rows, want one per buffer size (%d)",
			len(tbl.Rows), len(plain.Tables[0].Rows))
	}
	for _, row := range tbl.Rows {
		if row[1] != "5" {
			t.Errorf("buffer %s completed %s windows, want 5", row[0], row[1])
		}
	}

	// Determinism: the residual table reproduces bit for bit.
	again, err := Run("ext-system", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Tables[1].Text() != tbl.Text() {
		t.Errorf("monitor table not deterministic:\n%s\nvs\n%s", again.Tables[1].Text(), tbl.Text())
	}
}
