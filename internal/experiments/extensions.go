package experiments

import (
	"fmt"
	"math"

	"rtreebuf/internal/pack"
	"rtreebuf/internal/rtree"
	"rtreebuf/internal/sim"
)

// Extension experiments (ids prefixed "ext-"): not artifacts of the
// paper, but studies its framework makes natural — the ablations
// DESIGN.md commits to.

func init() {
	register("ext-loading",
		"Extension: all loading algorithms (incl. R*, STR) under the buffer model, Long Beach data",
		runExtLoading)
	register("ext-warmup",
		"Extension: warm-up transient — model's cumulative-miss curve vs cold-start simulation",
		runExtWarmup)
	register("ext-staticlru",
		"Extension: LRU model vs optimal static hot-set placement across buffer sizes",
		runExtStaticLRU)
}

func runExtLoading(cfg Config) (*Report, error) {
	rep := &Report{ID: "ext-loading", Title: "Loading algorithms beyond the paper's three"}

	algs := pack.Algorithms()
	cols := []string{"buffer"}
	for _, a := range algs {
		cols = append(cols, algoLabel(a))
	}
	// The six tree builds dominate this experiment; run them over the
	// engine's worker budget (cached, so fig6/fig7 share the overlap).
	trees := make([]*rtree.Tree, len(algs))
	err := cfg.forEachPoint(len(algs), func(i int) error {
		var terr error
		trees[i], terr = cfg.tigerTree(algs[i], fig6NodeCap)
		return terr
	})
	if err != nil {
		return nil, err
	}
	for _, panel := range []struct {
		name   string
		qx, qy float64
	}{
		{"point queries", 0, 0},
		{"1% region queries", 0.1, 0.1},
	} {
		sweeps := make([][]float64, len(algs))
		for i := range algs {
			p, err := uniformPredictor(trees[i], panel.qx, panel.qy)
			if err != nil {
				return nil, err
			}
			sweeps[i] = p.DiskAccessesSweep(Fig6BufferSizes)
		}
		tbl := Table{
			Name:    "ext-loading " + panel.name,
			Caption: "Predicted disk accesses per query (node size 100).",
			Columns: cols,
		}
		for j, b := range Fig6BufferSizes {
			row := []string{FInt(b)}
			for _, s := range sweeps {
				row = append(row, F(s[j]))
			}
			tbl.AddRow(row...)
		}
		rep.Tables = append(rep.Tables, tbl)
	}
	rep.Notes = append(rep.Notes,
		"R* sits between TAT and the packed loaders: better clustering than Guttman insertion, but packed trees fill nodes completely",
		"the buffer-dependence of the ranking extends to the new algorithms — compare columns across rows before picking a loader")
	return rep, nil
}

func runExtWarmup(cfg Config) (*Report, error) {
	t, err := cfg.tigerTree(pack.HilbertSort, fig6NodeCap)
	if err != nil {
		return nil, err
	}
	pred, err := uniformPredictor(t, 0, 0)
	if err != nil {
		return nil, err
	}
	const buffer = 200
	checkpoints := []int{0, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

	counts := make([]float64, len(checkpoints))
	for i, c := range checkpoints {
		counts[i] = float64(c)
	}
	model := pred.WarmupCurve(buffer, counts)
	measured, err := sim.Transient(t.Levels(), sim.UniformPoints{}, buffer, cfg.seed(), checkpoints)
	if err != nil {
		return nil, err
	}

	tbl := Table{
		Name:    "ext-warmup",
		Caption: fmt.Sprintf("Cumulative buffer misses from a cold start (HS tree, buffer %d, point queries).", buffer),
		Columns: []string{"queries", "model_D(N)", "model_misses", "sim_misses", "diff"},
	}
	worst := 0.0
	for i := range checkpoints {
		diff := 0.0
		if measured[i] > 0 {
			diff = (model[i].ExpectedMisses - float64(measured[i])) / float64(measured[i])
		}
		if math.Abs(diff) > worst && checkpoints[i] >= 100 {
			worst = math.Abs(diff)
		}
		tbl.AddRow(FInt(checkpoints[i]), F(model[i].DistinctNodes),
			F(model[i].ExpectedMisses), FInt(int(measured[i])), FPct(diff))
	}
	rep := &Report{ID: "ext-warmup", Title: "Warm-up transient: model vs cold-start simulation"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"worst disagreement past 100 queries: %.1f%% — the two-phase (fill, then steady-state) approximation underlying the buffer model holds", 100*worst))
	rep.Notes = append(rep.Notes, fmt.Sprintf("model N* (buffer fills) = %.0f queries", pred.WarmupQueries(buffer)))
	return rep, nil
}

func runExtStaticLRU(cfg Config) (*Report, error) {
	t, err := cfg.tigerTree(pack.HilbertSort, fig6NodeCap)
	if err != nil {
		return nil, err
	}
	pred, err := uniformPredictor(t, 0, 0)
	if err != nil {
		return nil, err
	}
	tbl := Table{
		Name:    "ext-staticlru",
		Caption: "Disk accesses per point query: LRU model vs caching the B hottest nodes statically.",
		Columns: []string{"buffer", "lru", "static_hot_set", "lru_inefficiency"},
	}
	lru := pred.DiskAccessesSweep(Fig6BufferSizes)
	for i, b := range Fig6BufferSizes {
		tbl.AddRow(FInt(b), F(lru[i]),
			F(pred.DiskAccessesStatic(b)), F(pred.LRUInefficiency(b)))
	}
	rep := &Report{ID: "ext-staticlru", Title: "How much does LRU leave on the table?"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"small gaps mean LRU already keeps the hot set resident — the paper's finding that explicit pinning rarely beats plain LRU, seen from the other side",
		"at very small buffers the LRU column can dip below the static optimum: documented model optimism (core.DiskAccessesStatic), not a real effect")
	return rep, nil
}
