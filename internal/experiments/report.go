// Package experiments reproduces every table and figure of the paper's
// evaluation (Sections 4 and 5). Each experiment is a pure function from a
// Config to a Report; cmd/rtreebench renders reports as aligned text or
// CSV, and the repository-level benchmarks regenerate each artifact under
// `go test -bench`.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one rectangular result: a figure's data series (first column =
// x axis) or a literal table.
type Table struct {
	Name    string
	Caption string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// F formats a float for table cells: fixed 4 decimals for small
// magnitudes, trimmed, so columns align and diffs stay stable.
func F(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	return s
}

// FPct formats a ratio as a signed percentage.
func FPct(v float64) string {
	return fmt.Sprintf("%+.2f%%", 100*v)
}

// FInt formats an integer cell.
func FInt(v int) string { return fmt.Sprintf("%d", v) }

// Text renders the table as aligned monospace text.
func (t *Table) Text() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Name != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Name)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells are numeric or
// simple identifiers; no quoting is needed and none is applied).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Report is the output of one experiment.
type Report struct {
	ID     string // registry key, e.g. "fig6"
	Title  string // the paper artifact it reproduces
	Tables []Table
	Notes  []string // observations to check against the paper's claims
}

// Text renders the full report.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Text())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces a report for one paper artifact.
type Runner func(cfg Config) (*Report, error)

var registry = map[string]struct {
	title string
	run   Runner
}{}

// register is called from each experiment file's init.
func register(id, title string, run Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = struct {
		title string
		run   Runner
	}{title, run}
}

// IDs returns every registered experiment id, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	//lint:allow determcheck keys are sorted below; iteration order cannot leak
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns the paper artifact name of an experiment id.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Report, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.run(cfg)
}
