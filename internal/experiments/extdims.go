package experiments

import (
	"fmt"
	"math"

	"rtreebuf/internal/nd"
)

func init() {
	register("ext-dimensions",
		"Extension: the model in d dimensions — EPT/EDT vs dimensionality at fixed query selectivity, with simulation check",
		runExtDimensions)
}

// runExtDimensions carries the paper's methodology to d > 2, the
// generalization Sections 2.1 and 3 declare straightforward: build
// Hilbert-packed trees over uniform points in 2..5 dimensions, evaluate
// the generalized model for point queries and for region queries of fixed
// selectivity, and validate one cell per dimension against an LRU
// simulation.
func runExtDimensions(cfg Config) (*Report, error) {
	n := 20000
	simQueries := 40000
	if cfg.Quick {
		n = 4000
		simQueries = 8000
	}
	const (
		capacity    = 25
		buffer      = 100
		selectivity = 0.01
	)
	dimsList := []int{2, 3, 4, 5}

	rep := &Report{ID: "ext-dimensions", Title: "Dimensionality under the buffer model"}
	tbl := Table{
		Name: "ext-dimensions",
		Caption: fmt.Sprintf(
			"Uniform points, n=%d, HS packing, node size %d, buffer %d; region queries cover %.0f%% of the cube.",
			n, capacity, buffer, 100*selectivity),
		Columns: []string{"dims", "nodes", "EPT_point", "EDT_point", "sim_point", "EPT_region", "EDT_region"},
	}

	var worst float64
	for _, dims := range dimsList {
		items := nd.PointItems(nd.UniformPoints(dims, n, cfg.seed()+uint64(dims)))
		tree, err := nd.Pack(nd.Params{Dims: dims, MaxEntries: capacity}, items, nd.HilbertOrdering(dims))
		if err != nil {
			return nil, err
		}
		if err := tree.CheckInvariants(); err != nil {
			return nil, err
		}
		levels := tree.Levels()

		pointQM, err := nd.NewUniformQueries(make([]float64, dims))
		if err != nil {
			return nil, err
		}
		pointPred := nd.NewPredictor(levels, pointQM)

		side := math.Pow(selectivity, 1/float64(dims))
		q := make([]float64, dims)
		for d := range q {
			q[d] = side
		}
		regionQM, err := nd.NewUniformQueries(q)
		if err != nil {
			return nil, err
		}
		regionPred := nd.NewPredictor(levels, regionQM)

		sim, err := nd.SimulatePointQueries(levels, buffer, simQueries/2, simQueries, cfg.seed()+uint64(dims)*7)
		if err != nil {
			return nil, err
		}
		model := pointPred.DiskAccesses(buffer)
		if sim > 0 {
			if rel := math.Abs(model-sim) / sim; rel > worst {
				worst = rel
			}
		}
		tbl.AddRow(FInt(dims), FInt(pointPred.NodeCount()),
			F(pointPred.NodesVisited()), F(model), F(sim),
			F(regionPred.NodesVisited()), F(regionPred.DiskAccesses(buffer)))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("worst d-dimensional model-vs-simulation disagreement: %.1f%% — the buffer model is dimension-independent, as the paper asserts", 100*worst),
		"at fixed selectivity, region EPT and EDT grow with d (the curse of dimensionality); the buffer softens but cannot hide it")
	return rep, nil
}
