package experiments

import (
	"fmt"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/rtree"
)

func init() {
	register("fig7",
		"Fig. 7: uniform vs data-driven point queries, Long Beach data (left: disk accesses; right: improvement with buffer size)",
		func(cfg Config) (*Report, error) {
			t, err := cfg.tigerTree(pack.HilbertSort, fig7NodeCap)
			if err != nil {
				return nil, err
			}
			return runUniformVsDataDriven(t, "fig7", "Long Beach data", geom.Centers(cfg.tigerRects()))
		})
	register("fig8",
		"Fig. 8: uniform vs data-driven point queries, CFD data (left: disk accesses; right: improvement with buffer size)",
		func(cfg Config) (*Report, error) {
			t, err := cfg.cfdTree(pack.HilbertSort, fig7NodeCap)
			if err != nil {
				return nil, err
			}
			return runUniformVsDataDriven(t, "fig8", "CFD data", cfg.cfdPoints())
		})
}

// Fig7BufferSizes is the buffer sweep of Figs. 7 and 8; the improvement
// panel is normalized to the smallest size (10).
var Fig7BufferSizes = []int{10, 25, 50, 100, 200, 300, 400, 500}

const fig7NodeCap = 100

// runUniformVsDataDriven reproduces the two-panel comparison of Figs. 7
// and 8: HS-packed tree, uniform point queries vs data-driven point
// queries, disk accesses and speedup-vs-buffer-10 across buffer sizes.
func runUniformVsDataDriven(t *rtree.Tree, id, dataName string, centers []geom.Point) (*Report, error) {
	uni, err := uniformPredictor(t, 0, 0)
	if err != nil {
		return nil, err
	}
	dd, err := dataDrivenPredictor(t, 0, 0, centers)
	if err != nil {
		return nil, err
	}
	uniSweep := uni.DiskAccessesSweep(Fig7BufferSizes)
	ddSweep := dd.DiskAccessesSweep(Fig7BufferSizes)

	rep := &Report{ID: id, Title: "Uniform vs data-driven queries, " + dataName}

	left := Table{
		Name:    id + " disk accesses",
		Caption: "Predicted disk accesses per point query vs buffer size (HS tree, node size 100).",
		Columns: []string{"buffer", "uniform", "data_driven"},
	}
	uniBase, ddBase := uniSweep[0], ddSweep[0]
	right := Table{
		Name:    id + " improvement",
		Caption: "Speedup from buffer growth: (disk accesses at buffer 10) / (disk accesses at buffer N).",
		Columns: []string{"buffer", "uniform", "data_driven"},
	}
	for i, b := range Fig7BufferSizes {
		u, d := uniSweep[i], ddSweep[i]
		left.AddRow(FInt(b), F(u), F(d))
		right.AddRow(FInt(b), F(ratioOrInf(uniBase, u)), F(ratioOrInf(ddBase, d)))
	}
	rep.Tables = append(rep.Tables, left, right)

	uMax := ratioOrInf(uniBase, uniSweep[len(Fig7BufferSizes)-1])
	dMax := ratioOrInf(ddBase, ddSweep[len(Fig7BufferSizes)-1])
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"buffer growth 10->%d speeds up uniform queries %.2fx vs %.2fx for data-driven — skewed data gives uniform queries hot nodes to cache (paper, Long Beach: 3.91x vs 2.86x)",
		Fig7BufferSizes[len(Fig7BufferSizes)-1], uMax, dMax))
	if dd.NodesVisited() > uni.NodesVisited() {
		rep.Notes = append(rep.Notes,
			"data-driven queries access more nodes per query than uniform ones: they never fall in empty space")
	}
	return rep, nil
}

func ratioOrInf(num, den float64) float64 {
	if den == 0 {
		return 0 // both panels treat "no remaining accesses" as saturation
	}
	return num / den
}
