package experiments

import (
	"fmt"

	"rtreebuf/internal/core"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/pack"
)

func init() {
	register("fig7",
		"Fig. 7: uniform vs data-driven point queries, Long Beach data (left: disk accesses; right: improvement with buffer size)",
		func(cfg Config) (*Report, error) {
			rects := cfg.tigerRects()
			return runUniformVsDataDriven(cfg, "fig7", "Long Beach data", rects, geom.Centers(rects))
		})
	register("fig8",
		"Fig. 8: uniform vs data-driven point queries, CFD data (left: disk accesses; right: improvement with buffer size)",
		func(cfg Config) (*Report, error) {
			points := cfg.cfdPoints()
			return runUniformVsDataDriven(cfg, "fig8", "CFD data", geom.PointRects(points), points)
		})
}

// Fig7BufferSizes is the buffer sweep of Figs. 7 and 8; the improvement
// panel is normalized to the smallest size (10).
var Fig7BufferSizes = []int{10, 25, 50, 100, 200, 300, 400, 500}

const fig7NodeCap = 100

// runUniformVsDataDriven reproduces the two-panel comparison of Figs. 7
// and 8: HS-packed tree, uniform point queries vs data-driven point
// queries, disk accesses and speedup-vs-buffer-10 across buffer sizes.
func runUniformVsDataDriven(cfg Config, id, dataName string, rects []geom.Rect, centers []geom.Point) (*Report, error) {
	items := itemsOf(rects)
	t, err := buildTree(pack.HilbertSort, items, fig7NodeCap)
	if err != nil {
		return nil, err
	}
	uni, err := uniformPredictor(t, 0, 0)
	if err != nil {
		return nil, err
	}
	dd, err := dataDrivenPredictor(t, 0, 0, centers)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: id, Title: "Uniform vs data-driven queries, " + dataName}

	left := Table{
		Name:    id + " disk accesses",
		Caption: "Predicted disk accesses per point query vs buffer size (HS tree, node size 100).",
		Columns: []string{"buffer", "uniform", "data_driven"},
	}
	base := map[*core.Predictor]float64{
		uni: uni.DiskAccesses(Fig7BufferSizes[0]),
		dd:  dd.DiskAccesses(Fig7BufferSizes[0]),
	}
	right := Table{
		Name:    id + " improvement",
		Caption: "Speedup from buffer growth: (disk accesses at buffer 10) / (disk accesses at buffer N).",
		Columns: []string{"buffer", "uniform", "data_driven"},
	}
	for _, b := range Fig7BufferSizes {
		u, d := uni.DiskAccesses(b), dd.DiskAccesses(b)
		left.AddRow(FInt(b), F(u), F(d))
		right.AddRow(FInt(b), F(ratioOrInf(base[uni], u)), F(ratioOrInf(base[dd], d)))
	}
	rep.Tables = append(rep.Tables, left, right)

	uMax := ratioOrInf(base[uni], uni.DiskAccesses(Fig7BufferSizes[len(Fig7BufferSizes)-1]))
	dMax := ratioOrInf(base[dd], dd.DiskAccesses(Fig7BufferSizes[len(Fig7BufferSizes)-1]))
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"buffer growth 10->%d speeds up uniform queries %.2fx vs %.2fx for data-driven — skewed data gives uniform queries hot nodes to cache (paper, Long Beach: 3.91x vs 2.86x)",
		Fig7BufferSizes[len(Fig7BufferSizes)-1], uMax, dMax))
	if dd.NodesVisited() > uni.NodesVisited() {
		rep.Notes = append(rep.Notes,
			"data-driven queries access more nodes per query than uniform ones: they never fall in empty space")
	}
	return rep, nil
}

func ratioOrInf(num, den float64) float64 {
	if den == 0 {
		return 0 // both panels treat "no remaining accesses" as saturation
	}
	return num / den
}
