package experiments

import (
	"fmt"
	"math/rand/v2"

	"rtreebuf/internal/buffer"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/monitor"
	"rtreebuf/internal/obs"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/sim"
	"rtreebuf/internal/storage"
)

func init() {
	register("ext-system",
		"Extension: three fidelity levels side by side — analytic model, MBR-list simulation, and a real paged R-tree through an LRU pool",
		runExtSystem)
}

// runExtSystem closes the loop the paper leaves implicit. The paper
// validates its model against an MBR-list simulation; this experiment
// additionally runs the *actual system* — node pages on a disk manager,
// decoded through a buffer pool by real recursive searches — and puts all
// three disk-access figures in one table. The model-vs-simulation gap
// stays within a few percent; the model-vs-system gap is larger and
// systematic, because a real search always reads the root and descends
// only into visited parents, correlations the independence model ignores.
func runExtSystem(cfg Config) (*Report, error) {
	rects := cfg.tigerRects()
	items := itemsOf(rects)
	const nodeCap = 100
	t, err := buildTree(pack.HilbertSort, items, nodeCap)
	if err != nil {
		return nil, err
	}
	levels := t.Levels()

	dm, err := storage.NewMemoryManager(storage.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	if err := storage.SaveTree(dm, t); err != nil {
		return nil, err
	}

	queries := 20000
	if cfg.Quick {
		queries = 5000
	}
	const qside = 0.05

	pred, err := uniformPredictor(t, qside, qside)
	if err != nil {
		return nil, err
	}
	workload, err := sim.NewUniformRegions(qside, qside)
	if err != nil {
		return nil, err
	}

	tbl := Table{
		Name: "ext-system",
		Caption: fmt.Sprintf(
			"Disk accesses per %gx%g region query, HS tree over Long Beach data (node size %d).",
			qside, qside, nodeCap),
		Columns: []string{"buffer", "model", "mbr_sim", "paged_system", "model_vs_sim", "model_vs_system"},
	}
	monTbl := Table{
		Name: "ext-system-monitor",
		Caption: fmt.Sprintf(
			"Online model-residual monitor over the same paged runs (%d-query windows).",
			monitorWindow(queries)),
		Columns: []string{"buffer", "windows", "mean_residual", "max_abs_residual", "drift_alarms"},
	}
	rep := &Report{ID: "ext-system", Title: "Model vs simulation vs the real paged system"}

	// Buffer sizes as fractions of the tree so quick and full runs both
	// exercise the interesting (non-saturated) regime.
	total := t.NodeCount()
	buffers := []int{total / 10, total / 4, total / 2, 3 * total / 4}
	for _, b := range buffers {
		if b < 2 {
			b = 2
		}
		model := pred.DiskAccesses(b)

		res, err := sim.Run(levels, workload, sim.Config{
			BufferSize: b, Batches: cfg.simBatches(), BatchSize: cfg.simBatchSize(),
			Seed: cfg.seed() + uint64(b),
		})
		if err != nil {
			return nil, err
		}

		paged, err := storage.OpenPagedTreeWith(dm, b, cfg.Policy, cfg.Shards)
		if err != nil {
			return nil, err
		}
		var mon *monitor.Monitor
		if cfg.Monitor {
			// The monitor and the pool's metrics mirror must share one
			// registry — the monitor reads the counters the mirror writes.
			// Each buffer size gets a private registry so windows never mix.
			reg := obs.NewRegistry()
			label := cfg.Policy
			if label == "" {
				label = "lru"
			}
			meta := paged.Meta()
			paged.Pool().SetMetrics(buffer.NewMetrics(reg, label).
				WithLevels(buffer.LevelsFromCounts(meta.Levels), len(meta.Levels)))
			prediction, err := monitor.PredictionFor(pred, label, b, 0, cfg.Shards)
			if err != nil {
				return nil, err
			}
			mon = monitor.New(reg, prediction, monitor.Config{Window: monitorWindow(queries)})
		}
		measured, err := drivePagedWorkload(paged, qside, queries, cfg.seed()+uint64(b), mon)
		if err != nil {
			return nil, err
		}

		tbl.AddRow(FInt(b), F(model), F(res.DiskPerQuery.Mean), F(measured),
			FPct(rel(model, res.DiskPerQuery.Mean)), FPct(rel(model, measured)))
		if mon != nil {
			s := mon.Status()
			monTbl.AddRow(FInt(b), FInt(int(s.Windows)),
				F(s.MeanResidual), F(s.MaxAbsResidual), FInt(int(s.Alarms)))
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	if cfg.Monitor {
		rep.Tables = append(rep.Tables, monTbl)
		rep.Notes = append(rep.Notes,
			"monitor residuals are systematic, not noise: the real system's descent correlations shift the observed rate off the independence model by a stable margin")
	}
	rep.Notes = append(rep.Notes,
		"the MBR-list simulation is the paper's validation target: agreement within a few percent",
		"the paged system differs more: real searches always read the root and only descend into visited parents — fidelity the model trades for tractability")
	return rep, nil
}

// monitorWindow sizes the residual window so a run yields five windows.
func monitorWindow(queries int) int { return queries / 5 }

// drivePagedWorkload runs uniform region queries against the paged tree
// and returns measured pool misses per query (after a warm-up quarter).
// A non-nil monitor is rebased at the warm-up boundary and ticked once
// per measured query.
func drivePagedWorkload(paged *storage.PagedTree, qside float64, queries int, seed uint64, mon *monitor.Monitor) (float64, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0x77))
	warm := queries / 4
	for i := 0; i < warm+queries; i++ {
		if i == warm {
			paged.Pool().ResetStats()
			mon.Rebase()
		}
		cx := qside + rng.Float64()*(1-qside)
		cy := qside + rng.Float64()*(1-qside)
		if _, err := paged.SearchWindow(geom.Rect{
			MinX: cx - qside, MinY: cy - qside, MaxX: cx, MaxY: cy,
		}); err != nil {
			return 0, err
		}
		if i >= warm {
			mon.OnQuery()
		}
	}
	_, misses, _ := paged.Pool().Stats()
	return float64(misses) / float64(queries), nil
}

func rel(model, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return (model - measured) / measured
}
