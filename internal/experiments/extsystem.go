package experiments

import (
	"fmt"
	"math/rand/v2"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/sim"
	"rtreebuf/internal/storage"
)

func init() {
	register("ext-system",
		"Extension: three fidelity levels side by side — analytic model, MBR-list simulation, and a real paged R-tree through an LRU pool",
		runExtSystem)
}

// runExtSystem closes the loop the paper leaves implicit. The paper
// validates its model against an MBR-list simulation; this experiment
// additionally runs the *actual system* — node pages on a disk manager,
// decoded through a buffer pool by real recursive searches — and puts all
// three disk-access figures in one table. The model-vs-simulation gap
// stays within a few percent; the model-vs-system gap is larger and
// systematic, because a real search always reads the root and descends
// only into visited parents, correlations the independence model ignores.
func runExtSystem(cfg Config) (*Report, error) {
	rects := cfg.tigerRects()
	items := itemsOf(rects)
	const nodeCap = 100
	t, err := buildTree(pack.HilbertSort, items, nodeCap)
	if err != nil {
		return nil, err
	}
	levels := t.Levels()

	dm, err := storage.NewMemoryManager(storage.DefaultPageSize)
	if err != nil {
		return nil, err
	}
	if err := storage.SaveTree(dm, t); err != nil {
		return nil, err
	}

	queries := 20000
	if cfg.Quick {
		queries = 5000
	}
	const qside = 0.05

	pred, err := uniformPredictor(t, qside, qside)
	if err != nil {
		return nil, err
	}
	workload, err := sim.NewUniformRegions(qside, qside)
	if err != nil {
		return nil, err
	}

	tbl := Table{
		Name: "ext-system",
		Caption: fmt.Sprintf(
			"Disk accesses per %gx%g region query, HS tree over Long Beach data (node size %d).",
			qside, qside, nodeCap),
		Columns: []string{"buffer", "model", "mbr_sim", "paged_system", "model_vs_sim", "model_vs_system"},
	}
	rep := &Report{ID: "ext-system", Title: "Model vs simulation vs the real paged system"}

	// Buffer sizes as fractions of the tree so quick and full runs both
	// exercise the interesting (non-saturated) regime.
	total := t.NodeCount()
	buffers := []int{total / 10, total / 4, total / 2, 3 * total / 4}
	for _, b := range buffers {
		if b < 2 {
			b = 2
		}
		model := pred.DiskAccesses(b)

		res, err := sim.Run(levels, workload, sim.Config{
			BufferSize: b, Batches: cfg.simBatches(), BatchSize: cfg.simBatchSize(),
			Seed: cfg.seed() + uint64(b),
		})
		if err != nil {
			return nil, err
		}

		paged, err := storage.OpenPagedTreeWith(dm, b, cfg.Policy, cfg.Shards)
		if err != nil {
			return nil, err
		}
		measured, err := drivePagedWorkload(paged, qside, queries, cfg.seed()+uint64(b))
		if err != nil {
			return nil, err
		}

		tbl.AddRow(FInt(b), F(model), F(res.DiskPerQuery.Mean), F(measured),
			FPct(rel(model, res.DiskPerQuery.Mean)), FPct(rel(model, measured)))
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		"the MBR-list simulation is the paper's validation target: agreement within a few percent",
		"the paged system differs more: real searches always read the root and only descend into visited parents — fidelity the model trades for tractability")
	return rep, nil
}

// drivePagedWorkload runs uniform region queries against the paged tree
// and returns measured pool misses per query (after a warm-up quarter).
func drivePagedWorkload(paged *storage.PagedTree, qside float64, queries int, seed uint64) (float64, error) {
	rng := rand.New(rand.NewPCG(seed, seed^0x77))
	warm := queries / 4
	for i := 0; i < warm+queries; i++ {
		if i == warm {
			paged.Pool().ResetStats()
		}
		cx := qside + rng.Float64()*(1-qside)
		cy := qside + rng.Float64()*(1-qside)
		if _, err := paged.SearchWindow(geom.Rect{
			MinX: cx - qside, MinY: cy - qside, MaxX: cx, MaxY: cy,
		}); err != nil {
			return 0, err
		}
	}
	_, misses, _ := paged.Pool().Stats()
	return float64(misses) / float64(queries), nil
}

func rel(model, measured float64) float64 {
	if measured == 0 {
		return 0
	}
	return (model - measured) / measured
}
