package experiments

import (
	"fmt"
	"math"

	"rtreebuf/internal/sim"
	"rtreebuf/internal/stats"
)

func init() {
	register("table1",
		"Table 1: model validation — average disk accesses per uniform point query, model vs LRU simulation",
		runTable1)
}

// Table1BufferSizes are the six buffer sizes of the validation study.
var Table1BufferSizes = []int{10, 25, 50, 100, 200, 400}

// The paper's validation trees each have 1,668 nodes — exactly the node
// count of a packed tree over 40,000 uniform points with 25 entries per
// node (1 + 3 + 64 + 1600, cf. Table 2), so that is the data used here.
const (
	table1NodeCap  = 25
	table1DataSize = 40000
)

func runTable1(cfg Config) (*Report, error) {
	rep := &Report{ID: "table1", Title: "Model validation against LRU simulation (uniform point queries)"}
	tbl := Table{
		Name:    "table1",
		Caption: "Average disk accesses per point query; percent difference is model vs simulation.",
		Columns: []string{"tree", "nodes", "buffer", "sim", "sim_ci90", "model", "diff"},
	}

	worst := 0.0
	for _, alg := range paperAlgorithms() {
		t, err := cfg.synthPointsTree(cfg.scale(table1DataSize), cfg.seed(), alg, table1NodeCap)
		if err != nil {
			return nil, err
		}
		pred, err := uniformPredictor(t, 0, 0)
		if err != nil {
			return nil, err
		}
		// One geometry per tree, shared read-only by all buffer sizes; the
		// per-size simulations are independent (each seeds its own stream)
		// and run over the engine's worker budget.
		g, err := sim.Prepare(t.Levels(), sim.UniformPoints{})
		if err != nil {
			return nil, err
		}
		model := pred.DiskAccessesSweep(Table1BufferSizes)
		sims := make([]sim.Result, len(Table1BufferSizes))
		err = cfg.forEachPoint(len(Table1BufferSizes), func(i int) error {
			var serr error
			sims[i], serr = sim.RunPrepared(g, sim.UniformPoints{}, sim.Config{
				BufferSize: Table1BufferSizes[i],
				Batches:    cfg.simBatches(),
				BatchSize:  cfg.simBatchSize(),
				Seed:       cfg.seed() + uint64(Table1BufferSizes[i]),
			})
			return serr
		})
		if err != nil {
			return nil, err
		}
		for i, b := range Table1BufferSizes {
			diff := stats.PercentDiff(sims[i].DiskPerQuery.Mean, model[i])
			if math.Abs(diff) > worst {
				worst = math.Abs(diff)
			}
			tbl.AddRow(algoLabel(alg), FInt(pred.NodeCount()), FInt(b),
				F(sims[i].DiskPerQuery.Mean), F(sims[i].DiskPerQuery.HalfWidth), F(model[i]), FPct(diff))
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("worst model-vs-simulation disagreement: %.2f%% (paper reports <= 2%%)", 100*worst))
	return rep, nil
}
