package experiments

import (
	"fmt"
	"math"

	"rtreebuf/internal/core"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/sim"
	"rtreebuf/internal/stats"
)

func init() {
	register("ext-validation",
		"Extension: Table 1 methodology for region and data-driven queries (the paper reports these 'gave similar results')",
		runExtValidation)
}

// runExtValidation extends the Table 1 validation to the paper's other
// two query models. Section 4 states that "simulation of region queries
// and data-driven queries gave similar results" without printing them;
// this experiment prints them. Buffers below twice the per-query node
// footprint are flagged rather than asserted: the independence assumption
// is documented to weaken there (see EXPERIMENTS.md).
func runExtValidation(cfg Config) (*Report, error) {
	n := cfg.scale(table1DataSize)
	points := cfg.synthPoints(n, cfg.seed())
	t, err := cfg.synthPointsTree(n, cfg.seed(), pack.HilbertSort, table1NodeCap)
	if err != nil {
		return nil, err
	}
	levels := t.Levels()
	centers := geom.Centers(geom.PointRects(points))

	regionW, err := sim.NewUniformRegions(0.1, 0.1)
	if err != nil {
		return nil, err
	}
	ddW, err := sim.NewDataDriven(0, 0, centers)
	if err != nil {
		return nil, err
	}
	regionQM, err := core.NewUniformQueries(0.1, 0.1)
	if err != nil {
		return nil, err
	}
	ddQM, err := core.NewDataDrivenQueries(0, 0, centers, 0)
	if err != nil {
		return nil, err
	}

	cases := []struct {
		name string
		w    sim.Workload
		pred *core.Predictor
	}{
		{"region 0.1x0.1", regionW, core.NewPredictor(levels, regionQM)},
		{"data-driven point", ddW, core.NewPredictor(levels, ddQM)},
	}

	rep := &Report{ID: "ext-validation", Title: "Model validation for region and data-driven queries (HS tree)"}
	tbl := Table{
		Name:    "ext-validation",
		Caption: "Average disk accesses per query; '*' marks buffers below 2x the per-query footprint, where the model is only indicative.",
		Columns: []string{"workload", "buffer", "sim", "model", "diff", "regime"},
	}
	worstSafe := 0.0
	for _, tc := range cases {
		// One geometry per workload, shared by all buffer sizes; the
		// independent per-size simulations run over the engine's worker
		// budget and land in their own slots, so row order is unchanged.
		g, err := sim.Prepare(levels, tc.w)
		if err != nil {
			return nil, err
		}
		model := tc.pred.DiskAccessesSweep(Table1BufferSizes)
		sims := make([]sim.Result, len(Table1BufferSizes))
		err = cfg.forEachPoint(len(Table1BufferSizes), func(i int) error {
			var serr error
			sims[i], serr = sim.RunPrepared(g, tc.w, sim.Config{
				BufferSize: Table1BufferSizes[i],
				Batches:    cfg.simBatches(),
				BatchSize:  cfg.simBatchSize(),
				Seed:       cfg.seed() + uint64(Table1BufferSizes[i]),
			})
			return serr
		})
		if err != nil {
			return nil, err
		}
		for i, b := range Table1BufferSizes {
			diff := stats.PercentDiff(sims[i].DiskPerQuery.Mean, model[i])
			regime := "ok"
			if float64(b) < 2*tc.pred.NodesVisited() {
				regime = "*"
			} else if math.Abs(diff) > worstSafe && !math.IsInf(diff, 0) {
				worstSafe = math.Abs(diff)
			}
			tbl.AddRow(tc.name, FInt(b), F(sims[i].DiskPerQuery.Mean), F(model[i]), FPct(diff), regime)
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"worst disagreement outside the small-buffer regime: %.1f%% — consistent with the paper's 'similar results' remark", 100*worstSafe))
	return rep, nil
}
