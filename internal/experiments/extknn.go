package experiments

import (
	"math/rand/v2"

	"rtreebuf/internal/buffer"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/rtree"
)

func init() {
	register("ext-knn",
		"Extension: pricing k-nearest-neighbor workloads with the buffer — pages touched and disk accesses vs k and buffer size",
		runExtKNN)
}

// runExtKNN measures what the analytic model cannot derive in closed form
// (kNN access probabilities depend on the data distribution through the
// k-th-neighbor distance) but the machinery still prices empirically:
// traced best-first kNN searches replayed against an LRU. Two panels:
// pages touched per query vs k (buffer-independent), and disk accesses
// per query vs buffer size at fixed k, next to window queries of roughly
// equal result size for comparison.
func runExtKNN(cfg Config) (*Report, error) {
	rects := cfg.tigerRects()
	items := itemsOf(rects)
	t, err := buildTree(pack.HilbertSort, items, 100)
	if err != nil {
		return nil, err
	}
	pages := t.AssignPageIDs()

	queries := 20000
	if cfg.Quick {
		queries = 4000
	}

	rep := &Report{ID: "ext-knn", Title: "kNN workloads under the buffer"}

	// Panel 1: pages touched per kNN query as k grows.
	touched := Table{
		Name:    "ext-knn pages touched",
		Caption: "Average tree pages read per kNN query (no buffer effect; HS tree, node size 100).",
		Columns: []string{"k", "pages_per_query"},
	}
	rng := rand.New(rand.NewPCG(cfg.seed(), 0x1111))
	for _, k := range []int{1, 5, 10, 50, 100} {
		total := 0
		for q := 0; q < queries/4; q++ {
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			t.TraceNearest(p, k, func(rtree.NodeVisit) { total++ })
		}
		touched.AddRow(FInt(k), F(float64(total)/float64(queries/4)))
	}
	rep.Tables = append(rep.Tables, touched)

	// Panel 2: disk accesses per query vs buffer, kNN(k=10) alongside a
	// window workload, both replayed through the same LRU machinery.
	disk := Table{
		Name:    "ext-knn disk accesses",
		Caption: "Disk accesses per query through an LRU (kNN k=10 vs 0.02x0.02 window queries).",
		Columns: []string{"buffer", "knn10", "window_0.02"},
	}
	for _, b := range []int{10, 25, 50, 100, 200} {
		if b >= pages {
			continue
		}
		knn, err := replayLRU(t, pages, b, queries, cfg.seed()+uint64(b), func(p geom.Point, visit func(rtree.NodeVisit)) {
			t.TraceNearest(p, 10, visit)
		})
		if err != nil {
			return nil, err
		}
		win, err := replayLRU(t, pages, b, queries, cfg.seed()+uint64(b), func(p geom.Point, visit func(rtree.NodeVisit)) {
			q := geom.RectAround(p, 0.02, 0.02)
			t.TraceWindow(q, rtree.TraceDFS, false, visit)
		})
		if err != nil {
			return nil, err
		}
		disk.AddRow(FInt(b), F(knn), F(win))
	}
	rep.Tables = append(rep.Tables, disk)

	rep.Notes = append(rep.Notes,
		"kNN page counts grow slowly with k (one extra leaf per ~node-capacity results): best-first descent behaves like a point query with a small tail",
		"consequently kNN workloads cache like the paper's point queries, not like region queries")
	return rep, nil
}

// replayLRU replays traced searches for uniformly placed query points
// against a fresh LRU and returns steady-state misses per query.
func replayLRU(t *rtree.Tree, pages, bufferSize, queries int, seed uint64, search func(geom.Point, func(rtree.NodeVisit))) (float64, error) {
	lru := buffer.NewLRU(bufferSize, pages)
	rng := rand.New(rand.NewPCG(seed, seed^0x2222))
	warm := queries / 4
	misses := 0
	for q := 0; q < warm+queries; q++ {
		if q == warm {
			lru.ResetStats()
			misses = 0
		}
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		search(p, func(v rtree.NodeVisit) {
			if !lru.Access(v.Page) {
				misses++
			}
		})
	}
	return float64(misses) / float64(queries), nil
}
