package experiments

import (
	"strings"
	"testing"

	"rtreebuf/internal/obs"
)

// TestReportsByteIdenticalWithMetrics: attaching a registry to the
// engine must not change a single report byte.
func TestReportsByteIdenticalWithMetrics(t *testing.T) {
	ids := []string{"fig6", "table1"}
	plain, err := RunAll(ids, quickCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.Metrics = obs.NewRegistry()
	instrumented, err := RunAll(ids, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if plain[i].Text() != instrumented[i].Text() {
			t.Errorf("%s: report differs with metrics attached", id)
		}
	}

	// The registry must have collected the engine series.
	snap := cfg.Metrics.Snapshot()
	byName := map[string]float64{}
	for _, s := range snap {
		byName[s.FullName()] = s.Value
	}
	if got := byName["experiments_run_total"]; got != float64(len(ids)) {
		t.Errorf("experiments_run_total = %v, want %d", got, len(ids))
	}
	if byName["experiments_build_cache_misses_total"] == 0 {
		t.Error("cache miss counter never incremented — every build was a hit?")
	}
	foundWall := false
	for _, s := range snap {
		if strings.HasPrefix(s.FullName(), `experiment_wall_seconds{id="`) {
			foundWall = true
			if s.Value <= 0 {
				t.Errorf("%s = %v, want > 0", s.FullName(), s.Value)
			}
		}
	}
	if !foundWall {
		t.Error("no experiment_wall_seconds gauges collected")
	}
}
