package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rtreebuf/internal/obs"
)

// This file is the parallel, memoized experiment engine. Registry entries
// are pure functions of a Config, so they can run concurrently; the only
// work they share — generating the TIGER-like/CFD-like/synthetic data
// sets and packing trees over them — is deduplicated by a build cache
// keyed by (dataset kind, size, seed) and (dataset, algorithm, node
// capacity). Cached values are immutable once built: datasets are never
// written after generation, and every experiment that mutates a tree
// (AssignPageIDs, storage save) builds a private copy instead of going
// through the cache. Reports are therefore byte-identical to serial runs,
// whatever the worker count.

// buildCache deduplicates dataset generation and tree packing across
// concurrently running experiments. Keys are comparable structs (dataKey,
// treeKey); each entry is built exactly once, outside the map lock, via a
// per-entry sync.Once, so a slow tree build never blocks cache lookups of
// other keys.
type buildCache struct {
	mu      sync.Mutex
	entries map[any]*cacheEntry
	// hits/misses mirror cache effectiveness into the obs registry; nil
	// (free no-ops) when the engine runs without metrics.
	hits, misses *obs.Counter
}

type cacheEntry struct {
	once sync.Once
	val  any
	err  error
}

// dataKey identifies a generated data set.
type dataKey struct {
	kind string // "tiger", "cfd", "spoints", "sregions"
	n    int
	seed uint64
}

// treeKey identifies a packed tree over a cached data set.
type treeKey struct {
	data     dataKey
	alg      string
	capacity int
}

func newBuildCache() *buildCache {
	return &buildCache{entries: map[any]*cacheEntry{}}
}

// get returns the cached value for key, building it at most once. A nil
// cache (experiments run outside the engine) builds fresh every time.
func (c *buildCache) get(key any, build func() (any, error)) (any, error) {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses.Inc()
	} else {
		c.hits.Inc()
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// Timing is one experiment's wall-clock cost within a RunAll.
type Timing struct {
	ID      string
	Seconds float64
}

// RunAll executes the given experiments (all of IDs() if ids is empty)
// over a bounded worker pool with a shared build cache, returning reports
// in ids order. workers <= 0 selects runtime.NumCPU. Reports are
// byte-identical to running each id serially: experiments are pure,
// cached artifacts are immutable, and each worker writes only its own
// result slot.
func RunAll(ids []string, cfg Config, workers int) ([]*Report, error) {
	reports, _, err := RunAllTimed(ids, cfg, workers)
	return reports, err
}

// RunAllTimed is RunAll with per-experiment wall-clock timings (in ids
// order), for the benchmark JSON trail.
func RunAllTimed(ids []string, cfg Config, workers int) ([]*Report, []Timing, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	for _, id := range ids {
		if _, ok := Title(id); !ok {
			return nil, nil, fmt.Errorf("experiments: unknown id %q", id)
		}
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	cfg.cache = newBuildCache()
	cfg.cache.hits = cfg.Metrics.Counter("experiments_build_cache_hits_total")
	cfg.cache.misses = cfg.Metrics.Counter("experiments_build_cache_misses_total")
	cfg.workers = workers

	reports := make([]*Report, len(ids))
	timings := make([]Timing, len(ids))
	errs := make([]error, len(ids))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				start := time.Now()
				reports[i], errs[i] = Run(ids[i], cfg)
				timings[i] = Timing{ID: ids[i], Seconds: time.Since(start).Seconds()}
				cfg.Metrics.Gauge("experiment_wall_seconds", obs.L("id", ids[i])).Set(timings[i].Seconds)
				cfg.Metrics.Counter("experiments_run_total").Inc()
			}
		}()
	}
	for i := range ids {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s: %w", ids[i], err)
		}
	}
	return reports, timings, nil
}

// forEachPoint runs fn(i) for i in [0,n) over the engine's worker budget.
// Sweep points of one experiment (e.g. the per-buffer-size simulations of
// table1) are independent, each writing its own result slot, so the order
// they execute in cannot change the report. Outside the engine (workers
// unset) the loop is plain and serial.
func (c Config) forEachPoint(n int, fn func(i int) error) error {
	if c.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	workers := c.workers
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
