package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtreebuf/internal/pack"
)

// engineIDs is a representative subset spanning model-only sweeps,
// sim-backed validation, pinning, and shared-tree experiments — enough to
// exercise every cache kind without re-running the whole suite per test.
func engineIDs() []string {
	return []string{"fig6", "fig7", "fig9", "fig10", "table1", "table2", "ext-staticlru"}
}

func reportTexts(reports []*Report) []string {
	out := make([]string, len(reports))
	for i, r := range reports {
		out[i] = r.Text()
	}
	return out
}

// The engine with one worker must reproduce direct serial Run calls
// byte for byte — the cache may dedupe work but never change results.
func TestRunAllMatchesSerialRuns(t *testing.T) {
	ids := engineIDs()
	reports, err := RunAll(ids, quickCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		want, err := Run(id, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if got := reports[i].Text(); got != want.Text() {
			t.Errorf("%s: engine report differs from serial Run", id)
		}
	}
}

// Worker count must not leak into the reports: parallel output is
// byte-identical to the serial engine.
func TestRunAllParallelByteIdentical(t *testing.T) {
	ids := engineIDs()
	serial, err := RunAll(ids, quickCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunAll(ids, quickCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s, p := reportTexts(serial), reportTexts(parallel)
	for i, id := range ids {
		if s[i] != p[i] {
			t.Errorf("%s: parallel engine report differs from serial engine", id)
		}
	}
}

func TestRunAllTimed(t *testing.T) {
	ids := []string{"table2", "fig10"}
	reports, timings, err := RunAllTimed(ids, quickCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || len(timings) != 2 {
		t.Fatalf("got %d reports, %d timings", len(reports), len(timings))
	}
	for i, id := range ids {
		if reports[i].ID != id || timings[i].ID != id {
			t.Errorf("slot %d: report %s, timing %s, want %s", i, reports[i].ID, timings[i].ID, id)
		}
		if timings[i].Seconds < 0 {
			t.Errorf("%s: negative timing", id)
		}
	}
	if _, err := RunAll([]string{"table2", "nope"}, quickCfg(), 2); err == nil {
		t.Error("unknown id accepted")
	}
	if reports, err := RunAll(nil, quickCfg(), 1); err != nil || len(reports) != len(IDs()) {
		t.Errorf("empty ids: %d reports, err %v", len(reports), err)
	}
}

// Concurrent cache lookups of the same key must build exactly once and
// hand every caller the same value.
func TestBuildCacheBuildsOnce(t *testing.T) {
	c := newBuildCache()
	var builds atomic.Int32
	key := dataKey{kind: "spoints", n: 42, seed: 7}
	var wg sync.WaitGroup
	vals := make([]any, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], _ = c.get(key, func() (any, error) {
				builds.Add(1)
				time.Sleep(time.Millisecond) // widen the race window
				return &struct{ x int }{42}, nil
			})
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("built %d times, want 1", n)
	}
	for i := 1; i < 16; i++ {
		if vals[i] != vals[0] {
			t.Error("callers got different values for one key")
		}
	}
	// A nil cache builds fresh every time.
	var nilCache *buildCache
	a, _ := nilCache.get(key, func() (any, error) { return new(int), nil })
	b, _ := nilCache.get(key, func() (any, error) { return new(int), nil })
	if a == b {
		t.Error("nil cache memoized")
	}
}

// Shared-cache hygiene: two experiments asking for the same tree get the
// same instance (memoized), while mutating experiments bypass the cache.
func TestCacheSharesTreesAcrossExperiments(t *testing.T) {
	cfg := quickCfg()
	cfg.cache = newBuildCache()
	t1, err := cfg.tigerTree(pack.HilbertSort, fig6NodeCap)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := cfg.tigerTree(pack.HilbertSort, fig7NodeCap) // fig6 and fig7 share node cap 100
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("same (data, alg, cap) produced distinct trees")
	}
	t3, err := cfg.tigerTree(pack.HilbertSort, pinningNodeCap)
	if err != nil {
		t.Fatal(err)
	}
	if t1 == t3 {
		t.Error("different node caps shared a tree")
	}
}

func TestForEachPoint(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8} {
		cfg := Config{workers: workers}
		got := make([]int, 5)
		if err := cfg.forEachPoint(5, func(i int) error { got[i] = i + 1; return nil }); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Errorf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

// Speedup guard (CI satellite): with >= 2 CPUs the parallel engine must
// not be slower than the serial one beyond generous slack. Quick scale
// keeps this a smoke test, not a benchmark.
func TestParallelEngineNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup guard skipped in -short mode")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("speedup guard needs >= 2 CPUs")
	}
	ids := engineIDs()
	start := time.Now()
	if _, err := RunAll(ids, quickCfg(), 1); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)
	start = time.Now()
	if _, err := RunAll(ids, quickCfg(), 0); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)
	// 1.5x slack absorbs scheduling noise; a real regression (parallel
	// engine serializing on a lock) shows up far above this.
	if parallel > serial*3/2 {
		t.Errorf("parallel RunAll took %v vs serial %v", parallel, serial)
	}
}
