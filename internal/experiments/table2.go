package experiments

import (
	"fmt"
	"strings"

	"rtreebuf/internal/pack"
)

func init() {
	register("table2",
		"Table 2: number of nodes per level, synthetic point data, node size 25 (the 4-level pinning trees)",
		runTable2)
}

// Table2DataSizes are the synthetic point set sizes of the pinning study.
var Table2DataSizes = []int{40000, 80000, 120000, 160000, 200000, 250000}

// pinningNodeCap is the node size of the pinning experiments: 25 entries,
// producing 4-level trees at these data sizes.
const pinningNodeCap = 25

func runTable2(cfg Config) (*Report, error) {
	sizes := Table2DataSizes
	if cfg.Quick {
		sizes = []int{40000, 80000}
	}
	rep := &Report{ID: "table2", Title: "Nodes per level of the pinning-study trees (HS packing)"}
	tbl := Table{
		Name:    "table2",
		Caption: "Level 0 is the root; packing fills nodes to capacity 25.",
		Columns: []string{"points", "levels", "nodes_per_level(root..leaf)", "total"},
	}
	for _, n := range sizes {
		t, err := cfg.synthPointsTree(n, cfg.seed()+uint64(n), pack.HilbertSort, pinningNodeCap)
		if err != nil {
			return nil, err
		}
		per := t.NodesPerLevel()
		parts := make([]string, len(per))
		total := 0
		for i, c := range per {
			parts[i] = FInt(c)
			total += c
		}
		tbl.AddRow(FInt(n), FInt(len(per)), strings.Join(parts, "/"), FInt(total))
		if !cfg.Quick && len(per) != 4 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%d points produced a %d-level tree (paper's pinning trees all have 4 levels)", n, len(per)))
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	return rep, nil
}
