package experiments

import (
	"fmt"
	"math"

	"rtreebuf/internal/buffer"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/sim"
)

func init() {
	register("ext-policy",
		"Extension: model validation for the sharded pool's policies — 2Q renewal model, Clock-Pro bounds, shards=1 vs shards=N equivalence",
		runExtPolicy)
}

// extPolicyShards is the shard count the equivalence panel compares
// against the unsharded reference.
const extPolicyShards = 4

// runExtPolicy validates the buffer model across the replacement
// policies the sharded pool ships. The LRU column replays the paper's
// Table 1 methodology; 2Q is checked against the renewal model of
// core.DiskAccesses2Q; Clock-Pro is checked against the analytic
// bracket [A0 optimum, LRU model] of core.ClockProBounds; and a second
// panel measures the hit-rate cost of sharding (shards=1 vs shards=N
// under the same workload) against core.DiskAccessesSharded. Rows where
// a simulated rate is below 0.05 disk accesses per query print "-" for
// the comparison: relative error against a near-zero denominator is
// noise, the same regime rule ext-clock uses.
func runExtPolicy(cfg Config) (*Report, error) {
	t, err := cfg.synthPointsTree(cfg.scale(table1DataSize), cfg.seed(), pack.HilbertSort, table1NodeCap)
	if err != nil {
		return nil, err
	}
	levels := t.Levels()
	pred, err := uniformPredictor(t, 0, 0)
	if err != nil {
		return nil, err
	}
	g, err := sim.Prepare(levels, sim.UniformPoints{})
	if err != nil {
		return nil, err
	}

	simAt := func(b int, policy func(capacity, numPages int) buffer.Policy) (float64, error) {
		res, err := sim.RunPrepared(g, sim.UniformPoints{}, sim.Config{
			BufferSize: b,
			Batches:    cfg.simBatches(),
			BatchSize:  cfg.simBatchSize(),
			Seed:       cfg.seed() + uint64(b),
			Policy:     policy,
		})
		if err != nil {
			return 0, err
		}
		return res.DiskPerQuery.Mean, nil
	}
	factoryPolicy := func(name string, shards int) (func(capacity, numPages int) buffer.Policy, error) {
		factory, err := buffer.FactoryFor(name)
		if err != nil {
			return nil, err
		}
		return func(capacity, numPages int) buffer.Policy {
			if shards > 1 {
				return buffer.NewSharded(factory, capacity, numPages, shards)
			}
			return factory(capacity, numPages)
		}, nil
	}

	// One simulation per (buffer size, variant): the three policies plus
	// the sharded-LRU run, all spread over the engine's worker budget.
	variants := []struct {
		name   string
		shards int
	}{{"lru", 1}, {"2q", 1}, {"clockpro", 1}, {"lru", extPolicyShards}}
	flat := make([]float64, len(variants)*len(Table1BufferSizes))
	err = cfg.forEachPoint(len(flat), func(i int) error {
		v := variants[i/len(Table1BufferSizes)]
		policy, err := factoryPolicy(v.name, v.shards)
		if err != nil {
			return err
		}
		flat[i], err = simAt(Table1BufferSizes[i%len(Table1BufferSizes)], policy)
		return err
	})
	if err != nil {
		return nil, err
	}
	row := func(v int) []float64 {
		return flat[v*len(Table1BufferSizes) : (v+1)*len(Table1BufferSizes)]
	}
	lruSim, twoqSim, cpSim, shardedSim := row(0), row(1), row(2), row(3)

	// guarded formats a relative error, or "-" below the noise floor.
	guarded := func(model, measured float64, worst *float64) string {
		if measured <= 0.05 {
			return "-"
		}
		d := rel(model, measured)
		if math.Abs(d) > *worst {
			*worst = math.Abs(d)
		}
		return FPct(d)
	}

	policies := Table{
		Name:    "ext-policy",
		Caption: "Disk accesses per uniform point query: simulation vs analytic model per replacement policy. cp_out is how far Clock-Pro lands outside its model bracket [opt, lru_model].",
		Columns: []string{"buffer", "lru_sim", "lru_model", "d_lru", "2q_sim", "2q_model", "d_2q", "cp_sim", "cp_lo", "cp_hi", "cp_out"},
	}
	var worstLRU, worst2Q, worstCP float64
	for i, b := range Table1BufferSizes {
		lruModel := pred.DiskAccesses(b)
		twoqModel := pred.DiskAccesses2Q(b)
		cpLo, cpHi := pred.ClockProBounds(b)
		cpOut := "-"
		if cpSim[i] > 0.05 {
			out := math.Max(cpLo-cpSim[i], cpSim[i]-cpHi) / cpSim[i]
			if out < 0 {
				out = 0
			}
			if out > worstCP {
				worstCP = out
			}
			cpOut = FPct(out)
		}
		policies.AddRow(FInt(b),
			F(lruSim[i]), F(lruModel), guarded(lruModel, lruSim[i], &worstLRU),
			F(twoqSim[i]), F(twoqModel), guarded(twoqModel, twoqSim[i], &worst2Q),
			F(cpSim[i]), F(cpLo), F(cpHi), cpOut)
	}

	sharded := Table{
		Name: "ext-policy-sharded",
		Caption: fmt.Sprintf("Sharding equivalence under LRU: shards=1 vs shards=%d simulation, and the sharded model. d_equiv is the simulated cost of sharding; d_model the model's error against the sharded run.",
			extPolicyShards),
		Columns: []string{"buffer", "s1_sim", fmt.Sprintf("s%d_sim", extPolicyShards), fmt.Sprintf("s%d_model", extPolicyShards), "d_equiv", "d_model"},
	}
	var worstEquiv, worstShardModel float64
	for i, b := range Table1BufferSizes {
		model := pred.DiskAccessesSharded(b, extPolicyShards)
		sharded.AddRow(FInt(b), F(lruSim[i]), F(shardedSim[i]), F(model),
			guarded(shardedSim[i], lruSim[i], &worstEquiv),
			guarded(model, shardedSim[i], &worstShardModel))
	}

	rep := &Report{ID: "ext-policy", Title: "Buffer model vs 2Q, Clock-Pro, and sharded pools"}
	rep.Tables = append(rep.Tables, policies, sharded)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("worst model disagreement (sim > 0.05): LRU %.1f%%, 2Q %.1f%%; worst Clock-Pro bracket excursion %.1f%%",
			100*worstLRU, 100*worst2Q, 100*worstCP),
		fmt.Sprintf("sharding to %d shards moves the simulated rate by at most %.1f%%; the sharded model tracks the sharded run within %.1f%%",
			extPolicyShards, 100*worstEquiv, 100*worstShardModel))
	return rep, nil
}
