package experiments

import (
	"fmt"

	"rtreebuf/internal/pack"
	"rtreebuf/internal/storage"
)

func init() {
	register("ext-nodesize",
		"Extension: choosing the node size — EPT/EDT across fanouts at a fixed buffer *byte* budget",
		runExtNodeSize)
}

// runExtNodeSize studies a knob the paper turns without examining: it
// uses node size 100 for the Long Beach experiments and 25 for the
// pinning study. Larger nodes mean fewer, bigger pages; at a fixed buffer
// measured in *bytes* (the resource a DBA actually allocates), the page
// count shrinks as the fanout grows. The sweep holds the byte budget
// fixed, sizes each tree's pages to exactly fit its fanout, and reports
// where the disk-access sweet spot falls for point and 1% region queries.
func runExtNodeSize(cfg Config) (*Report, error) {
	// A budget well below the tree's total size, so the replacement
	// policy actually matters (quick mode shrinks the data ~8x).
	budgetBytes := 1 << 19 // 512 KiB
	if cfg.Quick {
		budgetBytes = 1 << 16 // 64 KiB
	}

	tbl := Table{
		Name: "ext-nodesize",
		Caption: fmt.Sprintf(
			"HS trees over Long Beach data; buffer fixed at %d KiB, so pages = budget / page size.",
			budgetBytes/1024),
		Columns: []string{"fanout", "page_bytes", "nodes", "buffer_pages", "EPT_point", "EDT_point", "EPT_region", "EDT_region"},
	}
	rep := &Report{ID: "ext-nodesize", Title: "Node size under a fixed buffer byte budget"}

	type row struct {
		fanout int
		edt    float64
	}
	var best row
	for _, fanout := range []int{25, 50, 100, 200, 400} {
		t, err := cfg.tigerTree(pack.HilbertSort, fanout)
		if err != nil {
			return nil, err
		}
		// Page size that exactly fits the fanout (header + entries).
		pageBytes := 16 + 40*fanout
		bufferPages := budgetBytes / pageBytes
		if bufferPages < 1 {
			bufferPages = 1
		}
		pp, err := uniformPredictor(t, 0, 0)
		if err != nil {
			return nil, err
		}
		pr, err := uniformPredictor(t, 0.1, 0.1)
		if err != nil {
			return nil, err
		}
		edtPoint := pp.DiskAccesses(bufferPages)
		tbl.AddRow(FInt(fanout), FInt(pageBytes), FInt(pp.NodeCount()), FInt(bufferPages),
			F(pp.NodesVisited()), F(edtPoint),
			F(pr.NodesVisited()), F(pr.DiskAccesses(bufferPages)))
		if best.fanout == 0 || edtPoint < best.edt {
			best = row{fanout, edtPoint}
		}
	}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("point-query sweet spot at fanout %d for this data and a %d KiB buffer", best.fanout, budgetBytes/1024),
		"larger nodes cut tree height (fewer accesses per query) but waste buffer bytes on partially relevant pages; the model prices the trade directly",
		fmt.Sprintf("consistency check: node capacity for a %d-byte page matches storage.NodeCapacity = %d at fanout 100",
			16+40*100, storage.NodeCapacity(16+40*100)))
	return rep, nil
}
