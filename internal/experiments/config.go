package experiments

import (
	"fmt"

	"rtreebuf/internal/core"
	"rtreebuf/internal/datagen"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/obs"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/rtree"
)

// Config scales the experiments. The zero value reproduces the paper at
// full data sizes with fast-but-sound simulation defaults; Quick shrinks
// everything for unit tests and smoke benchmarks.
type Config struct {
	// Quick shrinks data sizes and simulation lengths by roughly an order
	// of magnitude, for tests. Curve shapes survive; absolute values move.
	Quick bool
	// Seed drives every generator; zero is a fixed default so published
	// outputs are reproducible.
	Seed uint64
	// SimBatches/SimBatchSize override the validation simulation effort
	// (paper: 20 x 1,000,000). Zero selects 20 x 50,000 (Quick: 10 x 5,000).
	SimBatches   int
	SimBatchSize int
	// Policy selects the buffer replacement policy for experiments that
	// drive a real paged tree (ext-system): one of buffer.PolicyNames.
	// Empty means the LRU the paper models. Policy-comparison experiments
	// (ext-clock, ext-policy) enumerate policies themselves and ignore it.
	Policy string
	// Shards selects the paged-tree pool shard count for the same
	// experiments; <= 1 means the single-lock pool.
	Shards int
	// Metrics, when non-nil, receives engine observability: per-experiment
	// wall time and build-cache hit/miss counts. Reports stay byte-
	// identical with or without it.
	Metrics *obs.Registry
	// Monitor enables the online model-residual monitor in experiments
	// that drive a real paged tree (ext-system): each buffer size gets a
	// windowed drift detector comparing live pool counters against the
	// model, reported as an extra table. The default tables stay
	// byte-identical whether or not it is set.
	Monitor bool

	// cache deduplicates dataset generation and tree packing across
	// experiments; set by RunAll, nil (build fresh) for direct Run calls.
	cache *buildCache
	// workers is the engine's worker budget, used by forEachPoint to run
	// independent sweep points concurrently; zero/one means serial.
	workers int
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1998 // year of the ICDE paper
	}
	return c.Seed
}

func (c Config) simBatches() int {
	if c.SimBatches > 0 {
		return c.SimBatches
	}
	if c.Quick {
		return 10
	}
	return 20
}

func (c Config) simBatchSize() int {
	if c.SimBatchSize > 0 {
		return c.SimBatchSize
	}
	if c.Quick {
		return 5000
	}
	return 50000
}

// scale shrinks a data-set size in Quick mode.
func (c Config) scale(n int) int {
	if c.Quick {
		n /= 8
		if n < 1000 {
			n = 1000
		}
	}
	return n
}

// tigerKey is the cache identity of the TIGER-like data set.
func (c Config) tigerKey() dataKey {
	return dataKey{kind: "tiger", n: c.scale(datagen.TIGERLikeSize), seed: c.seed()}
}

// tigerRects returns the TIGER-like data set at the paper's size.
func (c Config) tigerRects() []geom.Rect {
	k := c.tigerKey()
	v, _ := c.cache.get(k, func() (any, error) {
		return datagen.TIGERLike(k.n, k.seed), nil
	})
	return v.([]geom.Rect)
}

// cfdKey is the cache identity of the CFD-like data set.
func (c Config) cfdKey() dataKey {
	return dataKey{kind: "cfd", n: c.scale(datagen.CFDLikeSize), seed: c.seed()}
}

// cfdPoints returns the CFD-like data set at the paper's size.
func (c Config) cfdPoints() []geom.Point {
	k := c.cfdKey()
	v, _ := c.cache.get(k, func() (any, error) {
		return datagen.CFDLike(k.n, k.seed), nil
	})
	return v.([]geom.Point)
}

// synthPoints returns (and caches) a synthetic point set.
func (c Config) synthPoints(n int, seed uint64) []geom.Point {
	k := dataKey{kind: "spoints", n: n, seed: seed}
	v, _ := c.cache.get(k, func() (any, error) {
		return datagen.SyntheticPoints(n, seed), nil
	})
	return v.([]geom.Point)
}

// synthRegions returns (and caches) a synthetic region set.
func (c Config) synthRegions(n int, seed uint64) []geom.Rect {
	k := dataKey{kind: "sregions", n: n, seed: seed}
	v, _ := c.cache.get(k, func() (any, error) {
		return datagen.SyntheticRegions(n, seed), nil
	})
	return v.([]geom.Rect)
}

// cachedTree packs (and caches) a tree over the identified data set.
// Cached trees are shared across experiments and MUST be treated as
// read-only; experiments that mutate a tree (page-ID assignment, storage
// saves) must build a private one with buildTree instead.
func (c Config) cachedTree(data dataKey, alg pack.Algorithm, capacity int, items func() []rtree.Item) (*rtree.Tree, error) {
	k := treeKey{data: data, alg: string(alg), capacity: capacity}
	v, err := c.cache.get(k, func() (any, error) {
		return buildTree(alg, items(), capacity)
	})
	if err != nil {
		return nil, err
	}
	return v.(*rtree.Tree), nil
}

// tigerTree returns the shared read-only tree over the TIGER-like set.
func (c Config) tigerTree(alg pack.Algorithm, capacity int) (*rtree.Tree, error) {
	return c.cachedTree(c.tigerKey(), alg, capacity, func() []rtree.Item {
		return itemsOf(c.tigerRects())
	})
}

// cfdTree returns the shared read-only tree over the CFD-like set.
func (c Config) cfdTree(alg pack.Algorithm, capacity int) (*rtree.Tree, error) {
	return c.cachedTree(c.cfdKey(), alg, capacity, func() []rtree.Item {
		return itemsOf(geom.PointRects(c.cfdPoints()))
	})
}

// synthPointsTree returns the shared read-only tree over a synthetic
// point set.
func (c Config) synthPointsTree(n int, seed uint64, alg pack.Algorithm, capacity int) (*rtree.Tree, error) {
	k := dataKey{kind: "spoints", n: n, seed: seed}
	return c.cachedTree(k, alg, capacity, func() []rtree.Item {
		return datagen.PointItems(c.synthPoints(n, seed))
	})
}

// synthRegionsTree returns the shared read-only tree over a synthetic
// region set.
func (c Config) synthRegionsTree(n int, seed uint64, alg pack.Algorithm, capacity int) (*rtree.Tree, error) {
	k := dataKey{kind: "sregions", n: n, seed: seed}
	return c.cachedTree(k, alg, capacity, func() []rtree.Item {
		return itemsOf(c.synthRegions(n, seed))
	})
}

// buildTree loads items with alg at node capacity cap and validates the
// result; every experiment goes through here so a structurally broken tree
// can never produce a plausible-looking table.
func buildTree(alg pack.Algorithm, items []rtree.Item, capacity int) (*rtree.Tree, error) {
	t, err := pack.Load(alg, rtree.Params{MaxEntries: capacity}, items)
	if err != nil {
		return nil, fmt.Errorf("experiments: loading %s: %w", alg, err)
	}
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("experiments: %s produced invalid tree: %w", alg, err)
	}
	return t, nil
}

// uniformPredictor builds a cost-model predictor for uniform qx x qy
// queries over the tree.
func uniformPredictor(t *rtree.Tree, qx, qy float64) (*core.Predictor, error) {
	qm, err := core.NewUniformQueries(qx, qy)
	if err != nil {
		return nil, err
	}
	return core.NewPredictor(t.Levels(), qm), nil
}

// dataDrivenPredictor builds a predictor for the data-driven query model
// over the given data centers.
func dataDrivenPredictor(t *rtree.Tree, qx, qy float64, centers []geom.Point) (*core.Predictor, error) {
	qm, err := core.NewDataDrivenQueries(qx, qy, centers, 0)
	if err != nil {
		return nil, err
	}
	return core.NewPredictor(t.Levels(), qm), nil
}

// itemsOf wraps rectangles as R-tree items (ID = index).
func itemsOf(rects []geom.Rect) []rtree.Item { return datagen.Items(rects) }

// paperAlgorithms returns the three loading algorithms the paper compares.
func paperAlgorithms() []pack.Algorithm { return pack.PaperAlgorithms() }

// algoLabel gives the paper's name for an algorithm.
func algoLabel(alg pack.Algorithm) string {
	switch alg {
	case pack.TATQuadratic:
		return "TAT"
	case pack.TATLinear:
		return "TAT-linear"
	case pack.NearestX:
		return "NX"
	case pack.HilbertSort:
		return "HS"
	case pack.STR:
		return "STR"
	default:
		return string(alg)
	}
}
