package experiments

import (
	"fmt"

	"rtreebuf/internal/core"
	"rtreebuf/internal/datagen"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/rtree"
)

// Config scales the experiments. The zero value reproduces the paper at
// full data sizes with fast-but-sound simulation defaults; Quick shrinks
// everything for unit tests and smoke benchmarks.
type Config struct {
	// Quick shrinks data sizes and simulation lengths by roughly an order
	// of magnitude, for tests. Curve shapes survive; absolute values move.
	Quick bool
	// Seed drives every generator; zero is a fixed default so published
	// outputs are reproducible.
	Seed uint64
	// SimBatches/SimBatchSize override the validation simulation effort
	// (paper: 20 x 1,000,000). Zero selects 20 x 50,000 (Quick: 10 x 5,000).
	SimBatches   int
	SimBatchSize int
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 1998 // year of the ICDE paper
	}
	return c.Seed
}

func (c Config) simBatches() int {
	if c.SimBatches > 0 {
		return c.SimBatches
	}
	if c.Quick {
		return 10
	}
	return 20
}

func (c Config) simBatchSize() int {
	if c.SimBatchSize > 0 {
		return c.SimBatchSize
	}
	if c.Quick {
		return 5000
	}
	return 50000
}

// scale shrinks a data-set size in Quick mode.
func (c Config) scale(n int) int {
	if c.Quick {
		n /= 8
		if n < 1000 {
			n = 1000
		}
	}
	return n
}

// tigerRects returns the TIGER-like data set at the paper's size.
func (c Config) tigerRects() []geom.Rect {
	return datagen.TIGERLike(c.scale(datagen.TIGERLikeSize), c.seed())
}

// cfdPoints returns the CFD-like data set at the paper's size.
func (c Config) cfdPoints() []geom.Point {
	return datagen.CFDLike(c.scale(datagen.CFDLikeSize), c.seed())
}

// buildTree loads items with alg at node capacity cap and validates the
// result; every experiment goes through here so a structurally broken tree
// can never produce a plausible-looking table.
func buildTree(alg pack.Algorithm, items []rtree.Item, capacity int) (*rtree.Tree, error) {
	t, err := pack.Load(alg, rtree.Params{MaxEntries: capacity}, items)
	if err != nil {
		return nil, fmt.Errorf("experiments: loading %s: %w", alg, err)
	}
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("experiments: %s produced invalid tree: %w", alg, err)
	}
	return t, nil
}

// uniformPredictor builds a cost-model predictor for uniform qx x qy
// queries over the tree.
func uniformPredictor(t *rtree.Tree, qx, qy float64) (*core.Predictor, error) {
	qm, err := core.NewUniformQueries(qx, qy)
	if err != nil {
		return nil, err
	}
	return core.NewPredictor(t.Levels(), qm), nil
}

// dataDrivenPredictor builds a predictor for the data-driven query model
// over the given data centers.
func dataDrivenPredictor(t *rtree.Tree, qx, qy float64, centers []geom.Point) (*core.Predictor, error) {
	qm, err := core.NewDataDrivenQueries(qx, qy, centers, 0)
	if err != nil {
		return nil, err
	}
	return core.NewPredictor(t.Levels(), qm), nil
}

// itemsOf wraps rectangles as R-tree items (ID = index).
func itemsOf(rects []geom.Rect) []rtree.Item { return datagen.Items(rects) }

// paperAlgorithms returns the three loading algorithms the paper compares.
func paperAlgorithms() []pack.Algorithm { return pack.PaperAlgorithms() }

// algoLabel gives the paper's name for an algorithm.
func algoLabel(alg pack.Algorithm) string {
	switch alg {
	case pack.TATQuadratic:
		return "TAT"
	case pack.TATLinear:
		return "TAT-linear"
	case pack.NearestX:
		return "NX"
	case pack.HilbertSort:
		return "HS"
	case pack.STR:
		return "STR"
	default:
		return string(alg)
	}
}
