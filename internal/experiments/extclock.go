package experiments

import (
	"fmt"
	"math"

	"rtreebuf/internal/buffer"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/sim"
)

func init() {
	register("ext-clock",
		"Extension: does the LRU model apply to CLOCK-managed buffers? (real DBs often run CLOCK, not strict LRU)",
		runExtClock)
}

// runExtClock asks a question any practitioner applying the paper must:
// production buffer managers frequently run CLOCK (second chance), not
// strict LRU — does the model still predict them? CLOCK approximates LRU,
// so it should, and the experiment measures by how much: the same
// workload is simulated under both policies and compared with the LRU
// model's prediction.
func runExtClock(cfg Config) (*Report, error) {
	t, err := cfg.synthPointsTree(cfg.scale(table1DataSize), cfg.seed(), pack.HilbertSort, table1NodeCap)
	if err != nil {
		return nil, err
	}
	levels := t.Levels()
	pred, err := uniformPredictor(t, 0, 0)
	if err != nil {
		return nil, err
	}

	tbl := Table{
		Name:    "ext-clock",
		Caption: "Disk accesses per uniform point query: LRU simulation, CLOCK simulation, LRU model.",
		Columns: []string{"buffer", "lru_sim", "clock_sim", "model", "clock_vs_lru", "model_vs_clock"},
	}
	worst := 0.0
	for _, b := range Table1BufferSizes {
		runWith := func(policy func(capacity, numPages int) buffer.Policy) (float64, error) {
			res, err := sim.Run(levels, sim.UniformPoints{}, sim.Config{
				BufferSize: b,
				Batches:    cfg.simBatches(),
				BatchSize:  cfg.simBatchSize(),
				Seed:       cfg.seed() + uint64(b),
				Policy:     policy,
			})
			if err != nil {
				return 0, err
			}
			return res.DiskPerQuery.Mean, nil
		}
		lruSim, err := runWith(nil)
		if err != nil {
			return nil, err
		}
		clockSim, err := runWith(func(capacity, numPages int) buffer.Policy {
			return buffer.NewClock(capacity, numPages)
		})
		if err != nil {
			return nil, err
		}
		model := pred.DiskAccesses(b)
		cvl := rel(clockSim, lruSim)
		mvc := rel(model, clockSim)
		if clockSim > 0.05 && math.Abs(mvc) > worst {
			worst = math.Abs(mvc)
		}
		tbl.AddRow(FInt(b), F(lruSim), F(clockSim), F(model), FPct(cvl), FPct(mvc))
	}

	rep := &Report{ID: "ext-clock", Title: "LRU model vs CLOCK-managed buffers"}
	rep.Tables = append(rep.Tables, tbl)
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"worst model-vs-CLOCK disagreement (where accesses are non-trivial): %.1f%% — the model's predictions carry over to second-chance buffers", 100*worst))
	return rep, nil
}
