package experiments

import (
	"fmt"

	"rtreebuf/internal/core"
	"rtreebuf/internal/pack"
)

func init() {
	register("fig9",
		"Fig. 9: nodes visited and disk accesses vs data-set size, synthetic region data, NX vs HS (buffers: none, 10, 300)",
		runFig9)
}

// Fig9DataSizes sweeps the paper's 10,000..300,000-rectangle synthetic
// region sets.
var Fig9DataSizes = []int{10000, 25000, 50000, 100000, 150000, 200000, 250000, 300000}

const fig9NodeCap = 100

func runFig9(cfg Config) (*Report, error) {
	sizes := Fig9DataSizes
	smallBuf, largeBuf := 10, 300
	if cfg.Quick {
		sizes = []int{2000, 5000, 10000, 25000}
		// Quick trees are an order of magnitude smaller; scale the large
		// buffer down so it stays below the tree size (a buffer bigger
		// than the tree trivially zeroes all accesses).
		largeBuf = 30
	}

	rep := &Report{ID: "fig9", Title: "Effect of ignoring the buffer, synthetic region data"}
	noBuf := Table{
		Name:    "fig9 nodes visited (no buffer)",
		Caption: "Expected nodes accessed per point query — the bufferless metric.",
		Columns: []string{"rects", "NX", "HS"},
	}
	buf10 := Table{
		Name:    fmt.Sprintf("fig9 disk accesses, buffer=%d", smallBuf),
		Columns: []string{"rects", "NX", "HS"},
	}
	buf300 := Table{
		Name:    fmt.Sprintf("fig9 disk accesses, buffer=%d", largeBuf),
		Columns: []string{"rects", "NX", "HS"},
	}

	sweepBufs := []int{smallBuf, largeBuf}
	type pair struct {
		nx, hs           *core.Predictor
		nxSweep, hsSweep []float64
	}
	var first, last pair
	for i, n := range sizes {
		var preds pair
		for _, alg := range []pack.Algorithm{pack.NearestX, pack.HilbertSort} {
			t, err := cfg.synthRegionsTree(n, cfg.seed()+uint64(n), alg, fig9NodeCap)
			if err != nil {
				return nil, err
			}
			p, err := uniformPredictor(t, 0, 0)
			if err != nil {
				return nil, err
			}
			if alg == pack.NearestX {
				preds.nx, preds.nxSweep = p, p.DiskAccessesSweep(sweepBufs)
			} else {
				preds.hs, preds.hsSweep = p, p.DiskAccessesSweep(sweepBufs)
			}
		}
		noBuf.AddRow(FInt(n), F(preds.nx.NodesVisited()), F(preds.hs.NodesVisited()))
		buf10.AddRow(FInt(n), F(preds.nxSweep[0]), F(preds.hsSweep[0]))
		buf300.AddRow(FInt(n), F(preds.nxSweep[1]), F(preds.hsSweep[1]))
		if i == 0 {
			first = preds
		}
		last = preds
	}
	rep.Tables = append(rep.Tables, noBuf, buf10, buf300)

	// The paper's point: the bufferless metric barely grows with data size
	// (misleading a query optimizer), while disk accesses at a fixed
	// buffer clearly grow.
	growNodes := last.hs.NodesVisited() / first.hs.NodesVisited()
	growDisk := last.hsSweep[1] / nonzero(first.hsSweep[1])
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"HS, smallest->largest data set: nodes-visited metric grows %.2fx while disk accesses at buffer %d grow %.2fx — ignoring the buffer hides the cost of larger trees",
		growNodes, largeBuf, growDisk))
	return rep, nil
}

func nonzero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
