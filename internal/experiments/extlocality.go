package experiments

import (
	"fmt"
	"math"
	"sort"

	"rtreebuf/internal/core"
	"rtreebuf/internal/hilbert"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/sim"
)

func init() {
	register("ext-locality",
		"Extension: query locality vs the independence assumption — Zipf-hot centers (model extends) and random-walk queries (model breaks, measurably)",
		runExtLocality)
}

// runExtLocality probes the boundary of the paper's buffer model. The
// model assumes independent queries; it extends cleanly to *skewed but
// independent* selection (Zipf-weighted data-driven queries — Equation 4
// with weights), and it deliberately cannot represent *temporally
// correlated* queries (a random walk), where LRU exploits locality the
// model does not see. Both effects are measured against the simulator.
func runExtLocality(cfg Config) (*Report, error) {
	points := cfg.synthPoints(cfg.scale(table1DataSize), cfg.seed())
	t, err := cfg.synthPointsTree(cfg.scale(table1DataSize), cfg.seed(), pack.HilbertSort, table1NodeCap)
	if err != nil {
		return nil, err
	}
	levels := t.Levels()

	// Zipf weights over centers ranked by Hilbert position: the hot
	// region is spatially contiguous, like a popular neighborhood.
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka := hilbert.EncodePoint(hilbert.DefaultOrder, points[order[a]].X, points[order[a]].Y)
		kb := hilbert.EncodePoint(hilbert.DefaultOrder, points[order[b]].X, points[order[b]].Y)
		return ka < kb
	})
	ranked, err := core.ZipfWeights(len(points), 0.9)
	if err != nil {
		return nil, err
	}
	weights := make([]float64, len(points))
	for rank, idx := range order {
		weights[idx] = ranked[rank]
	}

	zipfQM, err := core.NewWeightedQueries(0, 0, points, weights)
	if err != nil {
		return nil, err
	}
	zipfW, err := sim.NewWeightedCenters(0, 0, points, weights)
	if err != nil {
		return nil, err
	}
	zipfPred := core.NewPredictor(levels, zipfQM)

	uniQM, err := core.NewUniformQueries(0, 0)
	if err != nil {
		return nil, err
	}
	uniPred := core.NewPredictor(levels, uniQM)

	rep := &Report{ID: "ext-locality", Title: "Query locality and the independence assumption"}

	zipfTbl := Table{
		Name:    "ext-locality zipf",
		Caption: "Zipf(0.9)-weighted data-driven point queries: weighted Eq. 4 keeps the model accurate.",
		Columns: []string{"buffer", "sim", "model", "diff"},
	}
	worstZipf := 0.0
	for _, b := range []int{25, 50, 100, 200, 400} {
		res, err := sim.Run(levels, zipfW, sim.Config{
			BufferSize: b, Batches: cfg.simBatches(), BatchSize: cfg.simBatchSize(),
			Seed: cfg.seed() + uint64(b),
		})
		if err != nil {
			return nil, err
		}
		model := zipfPred.DiskAccesses(b)
		diff := 0.0
		if res.DiskPerQuery.Mean > 0 {
			diff = (model - res.DiskPerQuery.Mean) / res.DiskPerQuery.Mean
		}
		if math.Abs(diff) > worstZipf && res.DiskPerQuery.Mean > 0.05 {
			worstZipf = math.Abs(diff)
		}
		zipfTbl.AddRow(FInt(b), F(res.DiskPerQuery.Mean), F(model), FPct(diff))
	}
	rep.Tables = append(rep.Tables, zipfTbl)

	walkTbl := Table{
		Name:    "ext-locality random walk",
		Caption: "Random-walk point queries vs the (independent) uniform model: LRU exploits temporal locality the model cannot see.",
		Columns: []string{"step", "buffer", "sim", "uniform_model", "model_overestimates_by"},
	}
	for _, step := range []float64{0.02, 0.1, 0.5} {
		for _, b := range []int{50, 200} {
			walk, err := sim.NewRandomWalk(step)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(levels, walk, sim.Config{
				BufferSize: b, Batches: cfg.simBatches(), BatchSize: cfg.simBatchSize(),
				Seed: cfg.seed() + uint64(b) + uint64(step*1000),
			})
			if err != nil {
				return nil, err
			}
			model := uniPred.DiskAccesses(b)
			over := 0.0
			if res.DiskPerQuery.Mean > 0 {
				over = (model - res.DiskPerQuery.Mean) / res.DiskPerQuery.Mean
			}
			walkTbl.AddRow(F(step), FInt(b), F(res.DiskPerQuery.Mean), F(model), FPct(over))
		}
	}
	rep.Tables = append(rep.Tables, walkTbl)

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("Zipf-weighted queries: worst model disagreement %.1f%% — Equation 4 generalizes to weighted selection", 100*worstZipf),
		"random walks: small steps leave successive queries in the same subtree, so measured disk accesses fall far below the model — the documented boundary of the independence assumption",
		"as the step grows toward 0.5 the walk decorrelates and the model becomes accurate again")
	return rep, nil
}
