package experiments

import (
	"fmt"
	"strings"

	"rtreebuf/internal/datagen"
	"rtreebuf/internal/geom"
)

func init() {
	register("fig5",
		"Fig. 5: the CFD data set (full view and center detail, rendered as ASCII density)",
		runFig5)
}

func runFig5(cfg Config) (*Report, error) {
	points := cfg.cfdPoints()
	rep := &Report{ID: "fig5", Title: "CFD data set density (qualitative)"}

	full := densityTable("fig5 full data set", points, geom.UnitSquare)
	center := densityTable("fig5 center detail",
		points, geom.Rect{MinX: 0.25, MinY: 0.35, MaxX: 0.8, MaxY: 0.65})
	rep.Tables = append(rep.Tables, full, center)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d points; dense along the wing and flap boundaries, empty inside them, sparse far field — the skew Figs. 8 and the data-driven model exploit", len(points)))
	return rep, nil
}

// densityTable renders the density of points within view as a one-column
// ASCII block (the harness's stand-in for a scatter plot).
func densityTable(name string, points []geom.Point, view geom.Rect) Table {
	var clipped []geom.Point
	for _, p := range points {
		if view.ContainsPoint(p) {
			clipped = append(clipped, p)
		}
	}
	norm := geom.NormalizePoints(clipped)
	art := strings.Split(strings.TrimRight(datagen.ASCIIDensity(norm, 72, 24), "\n"), "\n")
	tbl := Table{Name: name, Columns: []string{"density"}}
	for _, line := range art {
		tbl.AddRow(line)
	}
	return tbl
}
