package experiments

import (
	"fmt"

	"rtreebuf/internal/pack"
)

func init() {
	register("fig6",
		"Fig. 6: disk accesses vs buffer size, Long Beach data, node size 100 (left: point queries; right: 1% region queries)",
		runFig6)
}

// Fig6BufferSizes spans the paper's 2..500-page sweep.
var Fig6BufferSizes = []int{2, 5, 10, 25, 50, 75, 100, 150, 200, 300, 400, 500}

const fig6NodeCap = 100

// fig6RegionSide is the side of a "1 percent region query": a square
// covering 1% of the unit square.
const fig6RegionSide = 0.1

func runFig6(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig6", Title: "Sensitivity to buffer size, Long Beach data"}

	// One buffer sweep per (algorithm, panel): each evaluates the analytic
	// model at all of Fig6BufferSizes in a single warm-started pass.
	sweeps := map[pack.Algorithm][2][]float64{} // [point, region]
	for _, alg := range paperAlgorithms() {
		t, err := cfg.tigerTree(alg, fig6NodeCap)
		if err != nil {
			return nil, err
		}
		pp, err := uniformPredictor(t, 0, 0)
		if err != nil {
			return nil, err
		}
		pr, err := uniformPredictor(t, fig6RegionSide, fig6RegionSide)
		if err != nil {
			return nil, err
		}
		sweeps[alg] = [2][]float64{
			pp.DiskAccessesSweep(Fig6BufferSizes),
			pr.DiskAccessesSweep(Fig6BufferSizes),
		}
	}

	for panel, name := range []string{"point queries", "1% region queries"} {
		tbl := Table{
			Name:    fmt.Sprintf("fig6 %s", name),
			Caption: "Predicted disk accesses per query vs buffer size.",
			Columns: []string{"buffer", "TAT", "NX", "HS"},
		}
		for i, b := range Fig6BufferSizes {
			tbl.AddRow(FInt(b),
				F(sweeps[pack.TATQuadratic][panel][i]),
				F(sweeps[pack.NearestX][panel][i]),
				F(sweeps[pack.HilbertSort][panel][i]))
		}
		rep.Tables = append(rep.Tables, tbl)
	}

	// The paper's headline qualitative claim: for region queries TAT beats
	// NX at small buffers and NX overtakes as the buffer grows. Report
	// where (and whether) the crossover lands for this data.
	cross := -1
	for i, b := range Fig6BufferSizes {
		if sweeps[pack.NearestX][1][i] <= sweeps[pack.TATQuadratic][1][i] {
			cross = b
			break
		}
	}
	if cross >= 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"region queries: NX overtakes TAT at buffer size ~%d (paper: ~200) — ignoring the buffer would order them incorrectly", cross))
	} else {
		rep.Notes = append(rep.Notes,
			"region queries: no TAT/NX crossover within the swept buffer range for this data instance")
	}
	return rep, nil
}
