package experiments

import (
	"fmt"

	"rtreebuf/internal/datagen"
	"rtreebuf/internal/pack"
)

func init() {
	register("fig10",
		"Fig. 10: effect of pinning, disk accesses vs data size, HS trees, node size 25, point queries (buffers 500/1000/2000)",
		runFig10)
}

// Fig10BufferSizes are the three buffer capacities of the pinning study.
var Fig10BufferSizes = []int{500, 1000, 2000}

func runFig10(cfg Config) (*Report, error) {
	sizes := Table2DataSizes
	if cfg.Quick {
		sizes = []int{40000, 80000}
	}

	rep := &Report{ID: "fig10", Title: "Effect of pinning levels in the buffer (HS, synthetic points)"}

	type row struct {
		n      int
		pinned []float64 // by pin level 0..3
	}
	for _, b := range Fig10BufferSizes {
		tbl := Table{
			Name:    fmt.Sprintf("fig10 buffer=%d", b),
			Caption: "Predicted disk accesses per point query when pinning the top k levels ('-' = levels do not fit).",
			Columns: []string{"points", "pin0", "pin1", "pin2", "pin3"},
		}
		for _, n := range sizes {
			points := datagen.SyntheticPoints(n, cfg.seed()+uint64(n))
			t, err := buildTree(pack.HilbertSort, datagen.PointItems(points), pinningNodeCap)
			if err != nil {
				return nil, err
			}
			pred, err := uniformPredictor(t, 0, 0)
			if err != nil {
				return nil, err
			}
			cells := []string{FInt(n)}
			for pin := 0; pin <= 3; pin++ {
				if pin >= pred.LevelCount() {
					cells = append(cells, "-")
					continue
				}
				v, err := pred.DiskAccessesPinned(b, pin)
				if err != nil {
					cells = append(cells, "-") // pinned levels exceed the buffer
					continue
				}
				cells = append(cells, F(v))
			}
			tbl.AddRow(cells...)
		}
		rep.Tables = append(rep.Tables, tbl)
	}

	rep.Notes = append(rep.Notes,
		"paper's reading: pinning levels 0-2 is indistinguishable from plain LRU; pinning 3 levels helps only when the pinned pages are a large fraction of the buffer",
		"rule of thumb reproduced: benefit appears when pinned pages >= ~half the buffer and vanishes below ~a third")
	return rep, nil
}
