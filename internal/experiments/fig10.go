package experiments

import (
	"fmt"
	"math"

	"rtreebuf/internal/pack"
)

func init() {
	register("fig10",
		"Fig. 10: effect of pinning, disk accesses vs data size, HS trees, node size 25, point queries (buffers 500/1000/2000)",
		runFig10)
}

// Fig10BufferSizes are the three buffer capacities of the pinning study.
var Fig10BufferSizes = []int{500, 1000, 2000}

func runFig10(cfg Config) (*Report, error) {
	sizes := Table2DataSizes
	if cfg.Quick {
		sizes = []int{40000, 80000}
	}

	rep := &Report{ID: "fig10", Title: "Effect of pinning levels in the buffer (HS, synthetic points)"}

	// One predictor per data size, one pinned sweep per (size, pin level):
	// each sweep evaluates all three buffer capacities together. cells is
	// indexed [size][buffer][pin] and filled before the tables are laid
	// out buffer-major.
	cells := make([][][]string, len(sizes))
	for i, n := range sizes {
		t, err := cfg.synthPointsTree(n, cfg.seed()+uint64(n), pack.HilbertSort, pinningNodeCap)
		if err != nil {
			return nil, err
		}
		pred, err := uniformPredictor(t, 0, 0)
		if err != nil {
			return nil, err
		}
		cells[i] = make([][]string, len(Fig10BufferSizes))
		for j := range cells[i] {
			cells[i][j] = make([]string, 4)
		}
		for pin := 0; pin <= 3; pin++ {
			if pin >= pred.LevelCount() {
				for j := range Fig10BufferSizes {
					cells[i][j][pin] = "-"
				}
				continue
			}
			vals, err := pred.DiskAccessesPinnedSweep(Fig10BufferSizes, pin)
			if err != nil {
				return nil, err
			}
			for j := range Fig10BufferSizes {
				if math.IsNaN(vals[j]) {
					cells[i][j][pin] = "-" // pinned levels exceed the buffer
				} else {
					cells[i][j][pin] = F(vals[j])
				}
			}
		}
	}
	for j, b := range Fig10BufferSizes {
		tbl := Table{
			Name:    fmt.Sprintf("fig10 buffer=%d", b),
			Caption: "Predicted disk accesses per point query when pinning the top k levels ('-' = levels do not fit).",
			Columns: []string{"points", "pin0", "pin1", "pin2", "pin3"},
		}
		for i, n := range sizes {
			tbl.AddRow(append([]string{FInt(n)}, cells[i][j]...)...)
		}
		rep.Tables = append(rep.Tables, tbl)
	}

	rep.Notes = append(rep.Notes,
		"paper's reading: pinning levels 0-2 is indistinguishable from plain LRU; pinning 3 levels helps only when the pinned pages are a large fraction of the buffer",
		"rule of thumb reproduced: benefit appears when pinned pages >= ~half the buffer and vanishes below ~a third")
	return rep, nil
}
