package experiments

import (
	"fmt"
	"math"

	"rtreebuf/internal/pack"
)

func init() {
	register("fig11",
		"Fig. 11: benefit of pinning vs buffer size (Long Beach, node 25) and vs region query size (synthetic 250k points, buffer 500)",
		runFig11)
}

// Fig11BufferSizes sweeps the left panel. Sizes below the three-level page
// count demonstrate the "can no longer pin" regime the paper describes.
var Fig11BufferSizes = []int{50, 100, 200, 300, 400, 500, 750, 1000, 1500, 2000}

// Fig11QuerySides sweeps the right panel: region query side QX from 0
// (point queries) to 0.15 (2.25% of the unit square).
var Fig11QuerySides = []float64{0, 0.025, 0.05, 0.075, 0.1, 0.125, 0.15}

func runFig11(cfg Config) (*Report, error) {
	rep := &Report{ID: "fig11", Title: "When does pinning pay off?"}

	// Left panel: Long Beach data, HS tree with 25 entries per node,
	// uniform point queries, pinning 0..3 levels across buffer sizes —
	// one pinned sweep per pin level.
	t, err := cfg.tigerTree(pack.HilbertSort, pinningNodeCap)
	if err != nil {
		return nil, err
	}
	pred, err := uniformPredictor(t, 0, 0)
	if err != nil {
		return nil, err
	}
	sweeps := make([][]float64, 4)
	for pin := 0; pin <= 3; pin++ {
		if pin >= pred.LevelCount() {
			continue
		}
		if sweeps[pin], err = pred.DiskAccessesPinnedSweep(Fig11BufferSizes, pin); err != nil {
			return nil, err
		}
	}
	left := Table{
		Name:    "fig11 left: disk accesses vs buffer size",
		Caption: "Long Beach data, HS, node size 25, point queries ('-' = pinned levels exceed the buffer).",
		Columns: []string{"buffer", "pin0", "pin1", "pin2", "pin3"},
	}
	for i, b := range Fig11BufferSizes {
		cells := []string{FInt(b)}
		for pin := 0; pin <= 3; pin++ {
			if sweeps[pin] == nil || math.IsNaN(sweeps[pin][i]) {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, F(sweeps[pin][i]))
		}
		left.AddRow(cells...)
	}
	rep.Tables = append(rep.Tables, left)
	if pred.LevelCount() >= 3 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"three pinned levels occupy %d pages; the benefit window sits where that is comparable to the buffer size",
			pred.PinnedPages(3)))
	}

	// Right panel: synthetic points, buffer 500, percent improvement of
	// pinning 2 and 3 levels relative to no pinning, as query size grows.
	n := 250000
	if cfg.Quick {
		n = 40000
	}
	tp, err := cfg.synthPointsTree(n, cfg.seed()+uint64(n), pack.HilbertSort, pinningNodeCap)
	if err != nil {
		return nil, err
	}
	const rightBuffer = 500
	right := Table{
		Name:    "fig11 right: % improvement from pinning vs query size",
		Caption: fmt.Sprintf("Synthetic %d points, buffer %d, square region queries of side QX.", n, rightBuffer),
		Columns: []string{"qx", "pin2", "pin3"},
	}
	for _, qx := range Fig11QuerySides {
		predQ, err := uniformPredictor(tp, qx, qx)
		if err != nil {
			return nil, err
		}
		cells := []string{F(qx)}
		for _, pin := range []int{2, 3} {
			if pin >= predQ.LevelCount() {
				cells = append(cells, "-")
				continue
			}
			imp, err := predQ.PinningImprovement(rightBuffer, pin)
			if err != nil {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, FPct(imp))
		}
		right.AddRow(cells...)
	}
	rep.Tables = append(rep.Tables, right)
	rep.Notes = append(rep.Notes,
		"paper's reading: pinning three levels helps point queries (~35% there) but the benefit shrinks as region queries grow, because leaf accesses dominate")
	return rep, nil
}
