package experiments

import (
	"math"
	"testing"
)

// The acceptance criterion for the policy models: model-vs-sim for 2Q
// stays in the same tolerance regime as the paper's LRU figures (the
// 12% quick-mode budget TestTable1ModelAccuracy uses), Clock-Pro stays
// inside its analytic bracket up to simulation noise, and sharding the
// pool neither moves the simulated rate nor escapes the sharded model
// beyond that same regime. Rows below the 0.05 disk-access noise floor
// print "-" and are skipped by parseColumn.
func TestExtPolicyModelAccuracy(t *testing.T) {
	rep, err := Run("ext-policy", Config{Quick: true, SimBatches: 10, SimBatchSize: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(rep.Tables))
	}
	policies, sharded := rep.Tables[0], rep.Tables[1]

	checkWithin := func(tbl Table, col string, budget float64) {
		t.Helper()
		vals := parseColumn(t, tbl, col)
		if len(vals) == 0 {
			t.Fatalf("%s/%s: every row below the noise floor", tbl.Name, col)
		}
		for i, d := range vals {
			if math.Abs(d) > budget {
				t.Errorf("%s/%s row %d: %.1f%% exceeds the %.0f%% budget", tbl.Name, col, i, d, budget)
			}
		}
	}
	checkWithin(policies, "d_lru", 12)
	checkWithin(policies, "d_2q", 12)
	// The bracket is one-sided by construction (cp_out is clamped at 0
	// inside it); allow simulation noise on top.
	checkWithin(policies, "cp_out", 12)
	checkWithin(sharded, "d_equiv", 12)
	checkWithin(sharded, "d_model", 12)
}
