package datagen

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRects throws arbitrary text at the dataset parser: it must
// return an error or a list of valid rectangles, never panic, and every
// accepted input must survive a write/read round trip.
func FuzzReadRects(f *testing.F) {
	var rectsFile bytes.Buffer
	if err := WriteRects(&rectsFile, SyntheticRegions(5, 1)); err != nil {
		f.Fatal(err)
	}
	var pointsFile bytes.Buffer
	if err := WritePoints(&pointsFile, SyntheticPoints(5, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(rectsFile.String())
	f.Add(pointsFile.String())
	f.Add("")
	f.Add("rtreebuf-dataset v1 rects 1\n0 0 1 1\n")
	f.Add("rtreebuf-dataset v1 rects 1\nnan nan nan nan\n")
	f.Add("rtreebuf-dataset v1 points 2\n0.5 0.5\n")
	f.Add("rtreebuf-dataset v1 rects 999999999\n")

	f.Fuzz(func(t *testing.T, input string) {
		rects, err := ReadRects(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, r := range rects {
			// NaNs parse but violate Valid's ordering test... unless both
			// coordinates are NaN, in which case comparisons are all false
			// and Valid reports false. Either way Valid must hold here.
			if !r.Valid() {
				t.Fatalf("parser accepted invalid rect %v", r)
			}
		}
		var out bytes.Buffer
		if err := WriteRects(&out, rects); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		back, err := ReadRects(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(rects) {
			t.Fatalf("round trip count %d != %d", len(back), len(rects))
		}
	})
}
