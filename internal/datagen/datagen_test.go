package datagen

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rtreebuf/internal/geom"
)

func TestSyntheticPoints(t *testing.T) {
	pts := SyntheticPoints(10000, 1)
	if len(pts) != 10000 {
		t.Fatalf("len = %d", len(pts))
	}
	var sx, sy float64
	for _, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point %v outside unit square", p)
		}
		sx += p.X
		sy += p.Y
	}
	// Uniformity sanity: means near 0.5.
	if math.Abs(sx/10000-0.5) > 0.02 || math.Abs(sy/10000-0.5) > 0.02 {
		t.Errorf("means %.3f, %.3f far from 0.5", sx/10000, sy/10000)
	}
}

func TestSyntheticPointsDeterministic(t *testing.T) {
	a := SyntheticPoints(100, 7)
	b := SyntheticPoints(100, 7)
	c := SyntheticPoints(100, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestSyntheticRegions(t *testing.T) {
	rects := SyntheticRegions(10000, 2)
	if len(rects) != 10000 {
		t.Fatalf("len = %d", len(rects))
	}
	var area float64
	for _, r := range rects {
		if !geom.UnitSquare.ContainsRect(r) {
			t.Fatalf("rect %v escapes the unit square", r)
		}
		if math.Abs(r.Width()-r.Height()) > 1e-12 {
			t.Fatalf("rect %v is not a square", r)
		}
		if r.Width() > RegionRho {
			t.Fatalf("side %g exceeds rho %g", r.Width(), RegionRho)
		}
		area += r.Area()
	}
	// The paper says 10,000 rectangles sum to "roughly" 0.25 of the unit
	// square; with side ~ U(0, rho] the exact expectation is
	// 10^4 * rho^2/3 = 1/3. Accept the analytic value with slack.
	if math.Abs(area-1.0/3.0) > 0.05 {
		t.Errorf("total area %g, want about 1/3", area)
	}
}

func TestTIGERLike(t *testing.T) {
	rects := TIGERLike(20000, 3)
	if len(rects) != 20000 {
		t.Fatalf("len = %d", len(rects))
	}
	bb := geom.MBR(rects)
	if !bb.AlmostEqual(geom.UnitSquare, 1e-9) {
		t.Errorf("not normalized: %v", bb)
	}
	// Road segments are thin: median of min-extent is small.
	thin := 0
	var occupied [8][8]bool
	for _, r := range rects {
		if math.Min(r.Width(), r.Height()) < 0.002 {
			thin++
		}
		c := r.Center()
		occupied[min(int(c.X*8), 7)][min(int(c.Y*8), 7)] = true
	}
	if float64(thin)/float64(len(rects)) < 0.8 {
		t.Errorf("only %d/%d rects are thin segments", thin, len(rects))
	}
	// Skew: some 1/64 cells of the square must be empty (ocean/harbor).
	empty := 0
	for i := range occupied {
		for j := range occupied[i] {
			if !occupied[i][j] {
				empty++
			}
		}
	}
	if empty < 5 {
		t.Errorf("only %d empty cells — Long Beach should have empty water regions", empty)
	}
}

func TestTIGERLikeSizes(t *testing.T) {
	for _, n := range []int{500, 5000, TIGERLikeSize} {
		rects := TIGERLike(n, 4)
		if len(rects) != n {
			t.Fatalf("n=%d: got %d", n, len(rects))
		}
	}
}

func TestCFDLike(t *testing.T) {
	pts := CFDLike(20000, 5)
	if len(pts) != 20000 {
		t.Fatalf("len = %d", len(pts))
	}
	bb := geom.MBRPoints(pts)
	if !bb.AlmostEqual(geom.UnitSquare, 1e-9) {
		t.Errorf("not normalized: %v", bb)
	}
	// Density skew: the densest 1% of a 64x64 grid should hold a large
	// share of all points (the boundary layer), and many cells are empty.
	const res = 64
	var counts [res * res]int
	for _, p := range pts {
		ix := min(int(p.X*res), res-1)
		iy := min(int(p.Y*res), res-1)
		counts[iy*res+ix]++
	}
	sorted := append([]int(nil), counts[:]...)
	for i := range sorted { // simple selection of top cells via sort
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
		if i >= 41 {
			break
		}
	}
	top := 0
	for i := 0; i < 41; i++ { // top 1% of 4096 cells
		top += sorted[i]
	}
	if float64(top)/float64(len(pts)) < 0.3 {
		t.Errorf("top 1%% of cells hold only %.1f%% of points — not skewed enough", 100*float64(top)/float64(len(pts)))
	}
	empty := 0
	for _, c := range counts {
		if c == 0 {
			empty++
		}
	}
	if float64(empty)/float64(res*res) < 0.2 {
		t.Errorf("only %d empty cells — far field should be sparse", empty)
	}
}

func TestItemsWrappers(t *testing.T) {
	rects := SyntheticRegions(10, 1)
	items := Items(rects)
	for i, it := range items {
		if it.ID != int64(i) || !it.Rect.Equal(rects[i]) {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
	pts := SyntheticPoints(10, 1)
	pitems := PointItems(pts)
	for i, it := range pitems {
		if it.Rect.Area() != 0 || it.Rect.Center() != pts[i] {
			t.Fatalf("point item %d = %+v", i, it)
		}
	}
}

func TestDatasetIORoundTrip(t *testing.T) {
	rects := SyntheticRegions(500, 9)
	var buf bytes.Buffer
	if err := WriteRects(&buf, rects); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRects(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rects) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if !got[i].Equal(rects[i]) {
			t.Fatalf("rect %d: %v != %v", i, got[i], rects[i])
		}
	}
}

func TestDatasetIOPoints(t *testing.T) {
	pts := SyntheticPoints(300, 10)
	var buf bytes.Buffer
	if err := WritePoints(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRects(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Center() != pts[i] || got[i].Area() != 0 {
			t.Fatalf("point %d mangled", i)
		}
	}
}

func TestDatasetIOErrors(t *testing.T) {
	bad := []string{
		"",
		"not a dataset\n1 2 3 4\n",
		"rtreebuf-dataset v2 rects 1\n0 0 1 1\n",
		"rtreebuf-dataset v1 blobs 1\n0 0 1 1\n",
		"rtreebuf-dataset v1 rects x\n",
		"rtreebuf-dataset v1 rects 2\n0 0 1 1\n",     // count mismatch
		"rtreebuf-dataset v1 rects 1\n0 0 1\n",       // field count
		"rtreebuf-dataset v1 rects 1\n0 0 one 1\n",   // parse error
		"rtreebuf-dataset v1 rects 1\n0.5 0 0.1 1\n", // invalid rect
		"rtreebuf-dataset v1 points 1\n0.5\n",        // field count
	}
	for i, s := range bad {
		if _, err := ReadRects(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: bad input accepted", i)
		}
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rects := TIGERLike(200, 6)
	path := dir + "/tiger.ds"
	if err := WriteRectsFile(path, rects); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRectsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rects) {
		t.Fatalf("len = %d", len(got))
	}
	pts := CFDLike(100, 6)
	ppath := dir + "/cfd.ds"
	if err := WritePointsFile(ppath, pts); err != nil {
		t.Fatal(err)
	}
	gotP, err := ReadRectsFile(ppath)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotP) != len(pts) {
		t.Fatalf("points len = %d", len(gotP))
	}
	if _, err := ReadRectsFile(dir + "/missing.ds"); err == nil {
		t.Error("missing file read")
	}
}

func TestASCIIDensity(t *testing.T) {
	pts := []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}, {X: 0.9, Y: 0.9}}
	art := ASCIIDensity(pts, 10, 5)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) != 10 {
			t.Fatalf("line width %d", len(l))
		}
	}
	// Top-right (y near 1) should be the densest glyph; bottom-left dimmer.
	if lines[0][9] == ' ' {
		t.Error("dense cell rendered empty")
	}
	if lines[4][1] == ' ' { // (0.1,0.1) -> column 1, bottom row
		t.Error("occupied cell rendered empty")
	}
	if lines[2][5] != ' ' {
		t.Error("empty cell rendered occupied")
	}
	if ASCIIDensity(pts, 0, 5) != "" {
		t.Error("zero width rendered")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
