// Package datagen produces the data sets of Section 5.1 of the paper, all
// normalized to the unit square and fully deterministic given a seed:
//
//   - SyntheticPoints: uniformly distributed points (paper: "Synthetic
//     Point"), used for the pinning experiments.
//   - SyntheticRegions: uniformly placed squares with side uniform in
//     (0, rho], rho = 2*sqrt(0.25/10000), so 10,000 rectangles sum to
//     about a quarter of the unit square (paper: "Synthetic Region").
//   - TIGERLike: a substitute for the TIGER Long Beach road-segment set —
//     see tiger.go for the substitution argument.
//   - CFDLike: a substitute for the Boeing 737 wing cross-section CFD
//     grid — see cfd.go.
package datagen

import (
	"math"
	"math/rand/v2"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/rtree"
)

// RegionRho is the paper's maximum square side for the Synthetic Region
// sets: 2*sqrt(0.25/10000), chosen so the areas of 10,000 squares sum to
// roughly 0.25 (uniform side in (0,rho] has mean area rho^2/3... the paper
// follows Kamel–Faloutsos' convention; we reproduce the stated constant).
var RegionRho = 2 * math.Sqrt(0.25/10000)

// newRNG returns the deterministic generator for a seed. Seed zero is a
// valid, fixed stream.
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xd1342543de82ef95))
}

// SyntheticPoints returns n points uniformly distributed over the unit
// square (the paper's Synthetic Point data).
func SyntheticPoints(n int, seed uint64) []geom.Point {
	rng := newRNG(seed)
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return out
}

// SyntheticRegions returns n squares with side uniform in (0, RegionRho]
// and centers placed so every square lies inside the unit square (the
// paper's Synthetic Region data: for 10,000 rectangles total area is about
// 0.25; for 100,000, about 2.5).
func SyntheticRegions(n int, seed uint64) []geom.Rect {
	rng := newRNG(seed)
	out := make([]geom.Rect, n)
	for i := range out {
		side := rng.Float64() * RegionRho
		cx := side/2 + rng.Float64()*(1-side)
		cy := side/2 + rng.Float64()*(1-side)
		out[i] = geom.RectAround(geom.Point{X: cx, Y: cy}, side, side)
	}
	return out
}

// Items wraps rectangles as R-tree items with their index as ID.
func Items(rects []geom.Rect) []rtree.Item {
	out := make([]rtree.Item, len(rects))
	for i, r := range rects {
		out[i] = rtree.Item{Rect: r, ID: int64(i)}
	}
	return out
}

// PointItems wraps points as degenerate-rectangle R-tree items.
func PointItems(points []geom.Point) []rtree.Item {
	return Items(geom.PointRects(points))
}
