package datagen

import (
	"math"
	"math/rand/v2"

	"rtreebuf/internal/geom"
)

// CFDLikeSize is the size of the paper's CFD data set: 52,510 grid nodes.
const CFDLikeSize = 52510

// CFDLike generates a substitute for the paper's computational fluid
// dynamics data set: the unstructured-grid nodes of a Boeing 737 wing
// cross section with flaps out (Fig. 5). The original grid is not
// available; the experiments exploit three properties of it, all
// reproduced here:
//
//  1. Extreme density skew: nodes are dense where the flow solution
//     changes rapidly (at the airfoil surfaces) and become exponentially
//     sparser with distance, so under uniform queries a few "hot" nodes
//     absorb most accesses while data-driven queries spread out (Fig. 8).
//  2. Blank oval regions: the wing and flap interiors hold no grid nodes
//     ("the blank ovalish areas are parts of the wing").
//  3. A sparse far field covering the whole data space, producing a few
//     very large, rarely useful MBRs.
//
// The geometry is a main airfoil element plus a deployed flap, both
// modeled as ellipses. Points are sampled on each element's boundary and
// pushed outward by a heavy-tailed (log-normal) radial distance; interior
// points are rejected. About 2% of points form a uniform far field.
// Output is normalized to the unit square.
func CFDLike(n int, seed uint64) []geom.Point {
	rng := newRNG(seed ^ 0xcfd)

	type element struct {
		cx, cy, rx, ry float64 // ellipse center and semi-axes
		weight         float64 // share of boundary-layer points
	}
	elements := []element{
		{cx: 0.44, cy: 0.52, rx: 0.170, ry: 0.034, weight: 0.72}, // main element
		{cx: 0.66, cy: 0.44, rx: 0.055, ry: 0.011, weight: 0.28}, // flap
	}

	inside := func(p geom.Point) bool {
		for _, e := range elements {
			dx := (p.X - e.cx) / e.rx
			dy := (p.Y - e.cy) / e.ry
			if dx*dx+dy*dy < 1 {
				return true
			}
		}
		return false
	}

	out := make([]geom.Point, 0, n)
	farField := n / 50 // ~2%
	boundary := n - farField

	for i := 0; i < farField; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		if inside(p) {
			i--
			continue
		}
		out = append(out, p)
	}

	for len(out) < farField+boundary {
		// Pick an element by weight.
		e := elements[0]
		if rng.Float64() >= elements[0].weight {
			e = elements[1]
		}
		theta := rng.Float64() * 2 * math.Pi
		bx := e.cx + e.rx*math.Cos(theta)
		by := e.cy + e.ry*math.Sin(theta)
		// Outward direction: gradient of the implicit ellipse function,
		// normalized — denser sampling near the thin leading/trailing
		// edges falls out naturally.
		gx := math.Cos(theta) / e.rx
		gy := math.Sin(theta) / e.ry
		norm := math.Hypot(gx, gy)
		gx, gy = gx/norm, gy/norm
		// Heavy-tailed offset: log-normal, median ~0.004, occasionally
		// reaching far into the field — grid spacing grows with distance.
		d := 0.004 * math.Exp(1.3*normFloat(rng))
		p := geom.Point{X: bx + gx*d, Y: by + gy*d}
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 || inside(p) {
			continue
		}
		out = append(out, p)
	}
	return geom.NormalizePoints(out)
}

// normFloat returns a standard normal variate via Box–Muller; math/rand/v2
// lacks NormFloat64 on *rand.Rand streams before Go 1.22's v2 API gained
// it, and this keeps the dependency surface minimal.
func normFloat(rng *rand.Rand) float64 {
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
