package datagen

import (
	"math"
	"math/rand/v2"

	"rtreebuf/internal/geom"
)

// TIGERLikeSize is the size of the paper's Long Beach data set: 53,145
// rectangles.
const TIGERLikeSize = 53145

// TIGERLike generates a substitute for the TIGER Long Beach County road
// segment data set used throughout the paper's experiments. The original
// is proprietary-format census data not shipped here; what the paper's
// experiments actually exploit is two properties of it:
//
//  1. Skewed occupancy: large portions of the data space are empty (ocean
//     and harbor), so uniformly placed queries often prune at the root,
//     while data-driven queries always land on populated areas (Fig. 7).
//  2. Many small, thin rectangles clustered along a street grid, giving
//     well-localized leaf MBRs for packed trees and a meaningful spread
//     of node "temperatures" under uniform queries.
//
// The generator reproduces exactly those properties: an urbanized region
// covering roughly 60% of the unit square (an L-shaped city with an empty
// "ocean" corner and an empty "harbor" notch), filled with an irregular
// street grid whose block spacing varies by district, emitting one thin
// rectangle per street segment between consecutive cross streets, plus a
// sprinkling of short non-grid roads. Coordinates are normalized to the
// unit square.
func TIGERLike(n int, seed uint64) []geom.Rect {
	rng := newRNG(seed ^ 0x7169e5) // decorrelate from other generators
	out := make([]geom.Rect, 0, n+1024)

	// Urbanized districts: axis-parallel regions with their own block
	// spacing. The uncovered space (bottom-left ocean corner, harbor
	// notch) stays empty, mimicking Long Beach's coastline.
	type district struct {
		area    geom.Rect
		spacing float64 // mean block edge
	}
	districts := []district{
		{geom.Rect{MinX: 0.02, MinY: 0.42, MaxX: 0.55, MaxY: 0.98}, 0.012}, // dense downtown
		{geom.Rect{MinX: 0.55, MinY: 0.38, MaxX: 0.98, MaxY: 0.98}, 0.020}, // suburbs east
		{geom.Rect{MinX: 0.38, MinY: 0.10, MaxX: 0.78, MaxY: 0.38}, 0.016}, // port-side strip
		{geom.Rect{MinX: 0.78, MinY: 0.06, MaxX: 0.98, MaxY: 0.38}, 0.028}, // sparse outskirts
	}

	// Segment count scales as 1/spacing^2; rescale the base spacings
	// (tuned for about 11,000 segments) toward the requested n so the
	// final trim/top-up in fitCount stays small.
	const baseCount = 11000
	scale := 1.0
	if n > 0 {
		scale = math.Sqrt(float64(baseCount) / float64(n))
	}
	for i := range districts {
		districts[i].spacing *= scale
	}

	const roadHalfWidth = 0.00015 // thin segments, like street center lines

	for _, d := range districts {
		// Jittered street coordinates in each direction.
		xs := jitteredGrid(rng, d.area.MinX, d.area.MaxX, d.spacing)
		ys := jitteredGrid(rng, d.area.MinY, d.area.MaxY, d.spacing)

		// Horizontal segments between consecutive vertical streets.
		for _, y := range ys {
			for i := 0; i+1 < len(xs); i++ {
				if rng.Float64() < 0.12 { // missing block edge
					continue
				}
				out = append(out, geom.Rect{
					MinX: xs[i], MinY: y - roadHalfWidth,
					MaxX: xs[i+1], MaxY: y + roadHalfWidth,
				})
			}
		}
		// Vertical segments between consecutive horizontal streets.
		for _, x := range xs {
			for i := 0; i+1 < len(ys); i++ {
				if rng.Float64() < 0.12 {
					continue
				}
				out = append(out, geom.Rect{
					MinX: x - roadHalfWidth, MinY: ys[i],
					MaxX: x + roadHalfWidth, MaxY: ys[i+1],
				})
			}
		}
	}

	// Non-grid roads: short segments at arbitrary positions inside a
	// random district (diagonals are stored by their MBR, as TIGER data
	// is when loaded into an R-tree).
	extra := n / 12
	for i := 0; i < extra; i++ {
		d := districts[rng.IntN(len(districts))].area
		x := d.MinX + rng.Float64()*d.Width()
		y := d.MinY + rng.Float64()*d.Height()
		dx := (rng.Float64() - 0.5) * 0.02
		dy := (rng.Float64() - 0.5) * 0.02
		out = append(out, geom.RectFromPoints(
			geom.Point{X: x, Y: y},
			geom.Point{X: x + dx, Y: y + dy},
		).Clamp(geom.UnitSquare))
	}

	out = fitCount(rng, out, n)
	return geom.Normalize(out)
}

// jitteredGrid returns sorted coordinates from lo to hi with spacing drawn
// uniformly in [0.5*mean, 1.5*mean] — an irregular street grid.
func jitteredGrid(rng *rand.Rand, lo, hi, mean float64) []float64 {
	var out []float64
	x := lo + rng.Float64()*mean
	for x < hi {
		out = append(out, x)
		x += mean * (0.5 + rng.Float64())
	}
	return out
}

// fitCount deterministically trims or tops up rects to exactly n entries.
// Topping up duplicates randomly chosen rectangles with a tiny jitter, so
// counts never distort the spatial distribution.
func fitCount(rng *rand.Rand, rects []geom.Rect, n int) []geom.Rect {
	if len(rects) >= n {
		// Deterministic subsample: shuffle then cut.
		rng.Shuffle(len(rects), func(i, j int) { rects[i], rects[j] = rects[j], rects[i] })
		return rects[:n]
	}
	for len(rects) < n {
		src := rects[rng.IntN(len(rects))]
		dx := (rng.Float64() - 0.5) * 0.001
		dy := (rng.Float64() - 0.5) * 0.001
		rects = append(rects, src.Translate(dx, dy).Clamp(geom.UnitSquare))
	}
	return rects
}
