package datagen

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rtreebuf/internal/geom"
)

// Dataset file format: a plain-text header line
//
//	rtreebuf-dataset v1 <rects|points> <count>
//
// followed by one record per line — four (rects) or two (points)
// space-separated decimal floats. Human-inspectable and diff-friendly;
// the experiments are small enough that text I/O is never the bottleneck.

// WriteRects writes rectangles to w in dataset format.
func WriteRects(w io.Writer, rects []geom.Rect) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "rtreebuf-dataset v1 rects %d\n", len(rects)); err != nil {
		return err
	}
	for _, r := range rects {
		if _, err := fmt.Fprintf(bw, "%.17g %.17g %.17g %.17g\n", r.MinX, r.MinY, r.MaxX, r.MaxY); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePoints writes points to w in dataset format.
func WritePoints(w io.Writer, points []geom.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "rtreebuf-dataset v1 points %d\n", len(points)); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(bw, "%.17g %.17g\n", p.X, p.Y); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRects reads a dataset of either kind from r, converting points to
// degenerate rectangles.
func ReadRects(r io.Reader) ([]geom.Rect, error) {
	kind, count, sc, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	// The header count is untrusted input: use it as a capacity hint only
	// up to a sane bound, so a corrupt header cannot force a huge
	// allocation before a single record is read.
	hint := count
	if hint > 1<<20 {
		hint = 1 << 20
	}
	out := make([]geom.Rect, 0, hint)
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch kind {
		case "rects":
			if len(fields) != 4 {
				return nil, fmt.Errorf("datagen: line %d: want 4 fields, got %d", line, len(fields))
			}
			var v [4]float64
			for i, f := range fields {
				if v[i], err = strconv.ParseFloat(f, 64); err != nil {
					return nil, fmt.Errorf("datagen: line %d: %w", line, err)
				}
			}
			rect := geom.Rect{MinX: v[0], MinY: v[1], MaxX: v[2], MaxY: v[3]}
			if !rect.Valid() {
				return nil, fmt.Errorf("datagen: line %d: invalid rect %v", line, rect)
			}
			out = append(out, rect)
		case "points":
			if len(fields) != 2 {
				return nil, fmt.Errorf("datagen: line %d: want 2 fields, got %d", line, len(fields))
			}
			x, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("datagen: line %d: %w", line, err)
			}
			y, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("datagen: line %d: %w", line, err)
			}
			out = append(out, geom.PointRect(geom.Point{X: x, Y: y}))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("datagen: reading dataset: %w", err)
	}
	if len(out) != count {
		return nil, fmt.Errorf("datagen: header claims %d records, file has %d", count, len(out))
	}
	return out, nil
}

func readHeader(r io.Reader) (kind string, count int, sc *bufio.Scanner, err error) {
	sc = bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", 0, nil, fmt.Errorf("datagen: reading header: %w", err)
		}
		return "", 0, nil, fmt.Errorf("datagen: empty dataset file")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 4 || fields[0] != "rtreebuf-dataset" || fields[1] != "v1" {
		return "", 0, nil, fmt.Errorf("datagen: not a dataset file (header %q)", sc.Text())
	}
	kind = fields[2]
	if kind != "rects" && kind != "points" {
		return "", 0, nil, fmt.Errorf("datagen: unknown record kind %q", kind)
	}
	count, err = strconv.Atoi(fields[3])
	if err != nil || count < 0 {
		return "", 0, nil, fmt.Errorf("datagen: bad record count %q", fields[3])
	}
	return kind, count, sc, nil
}

// WriteRectsFile writes rectangles to a file path.
func WriteRectsFile(path string, rects []geom.Rect) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteRects(f, rects); err != nil {
		_ = f.Close() // the original error is the one worth reporting
		return err
	}
	return f.Close()
}

// WritePointsFile writes points to a file path.
func WritePointsFile(path string, points []geom.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePoints(f, points); err != nil {
		_ = f.Close() // the original error is the one worth reporting
		return err
	}
	return f.Close()
}

// ReadRectsFile reads a dataset file.
func ReadRectsFile(path string) ([]geom.Rect, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRects(f)
}

// ASCIIDensity renders a points density plot as text, the tooling stand-in
// for the paper's Fig. 5 scatter plots: darker glyphs mean more points per
// cell.
func ASCIIDensity(points []geom.Point, width, height int) string {
	if width < 1 || height < 1 {
		return ""
	}
	counts := make([]int, width*height)
	max := 0
	for _, p := range points {
		ix := int(p.X * float64(width))
		iy := int(p.Y * float64(height))
		if ix >= width {
			ix = width - 1
		}
		if iy >= height {
			iy = height - 1
		}
		if ix < 0 || iy < 0 {
			continue
		}
		counts[iy*width+ix]++
		if counts[iy*width+ix] > max {
			max = counts[iy*width+ix]
		}
	}
	glyphs := []byte(" .:-=+*#%@")
	var b strings.Builder
	for iy := height - 1; iy >= 0; iy-- { // top row = y near 1
		for ix := 0; ix < width; ix++ {
			c := counts[iy*width+ix]
			g := 0
			if max > 0 && c > 0 {
				g = 1 + c*(len(glyphs)-2)/max
				if g >= len(glyphs) {
					g = len(glyphs) - 1
				}
			}
			b.WriteByte(glyphs[g])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
