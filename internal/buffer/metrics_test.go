package buffer

import (
	"strings"
	"testing"

	"rtreebuf/internal/obs"
)

// counterValue reads one counter from the registry snapshot by full name.
func counterValue(t *testing.T, reg *obs.Registry, fullName string) float64 {
	t.Helper()
	for _, s := range reg.Snapshot() {
		if s.FullName() == fullName {
			return s.Value
		}
	}
	t.Fatalf("metric %s not found in snapshot", fullName)
	return 0
}

// TestMetricsMirrorsStats drives an LRU through hits, misses, evictions,
// and pin hits, and asserts the obs mirror matches Stats() exactly.
func TestMetricsMirrorsStats(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLRU(2, 8)
	l.SetMetrics(NewMetrics(reg, "lru"))

	if err := l.Pin(0); err != nil { // miss (faults page 0 in, pinned)
		t.Fatal(err)
	}
	l.Access(0) // pin hit
	l.Access(1) // miss
	l.Access(1) // hit
	l.Access(2) // miss, evicts 1 (0 is pinned)
	l.Access(1) // miss, evicts 2

	hits, misses, evictions := l.Stats()
	if hits != 2 || misses != 4 || evictions != 2 {
		t.Fatalf("Stats() = %d/%d/%d, want 2/4/2", hits, misses, evictions)
	}
	checks := map[string]float64{
		`buffer_hits_total{policy="lru"}`:      float64(hits),
		`buffer_misses_total{policy="lru"}`:    float64(misses),
		`buffer_evictions_total{policy="lru"}`: float64(evictions),
		`buffer_pin_hits_total{policy="lru"}`:  1,
	}
	for name, want := range checks {
		if got := counterValue(t, reg, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestMetricsPerLevel checks per-level splits sum to the policy totals.
func TestMetricsPerLevel(t *testing.T) {
	reg := obs.NewRegistry()
	// Pages 0 is level 0 (root); pages 1..3 are level 1.
	levelOf := LevelsFromCounts([]int{1, 3})
	if len(levelOf) != 4 || levelOf[0] != 0 || levelOf[3] != 1 {
		t.Fatalf("LevelsFromCounts = %v", levelOf)
	}
	c := NewClock(2, 4)
	c.SetMetrics(NewMetrics(reg, "clock").WithLevels(levelOf, 2))

	c.Access(0) // miss level 0
	c.Access(0) // hit level 0
	c.Access(1) // miss level 1
	c.Access(2) // miss level 1 (evicts)
	c.Access(2) // hit level 1

	hits, misses, _ := c.Stats()
	lvlHits := counterValue(t, reg, `buffer_level_hits_total{level="0",policy="clock"}`) +
		counterValue(t, reg, `buffer_level_hits_total{level="1",policy="clock"}`)
	lvlMisses := counterValue(t, reg, `buffer_level_misses_total{level="0",policy="clock"}`) +
		counterValue(t, reg, `buffer_level_misses_total{level="1",policy="clock"}`)
	if lvlHits != float64(hits) || lvlMisses != float64(misses) {
		t.Errorf("per-level sums %v/%v != totals %d/%d", lvlHits, lvlMisses, hits, misses)
	}
	if got := counterValue(t, reg, `buffer_level_hits_total{level="0",policy="clock"}`); got != 1 {
		t.Errorf("level-0 hits = %v, want 1", got)
	}
}

// TestResetStatsLeavesObsCumulative: warm-up discard must zero only the
// result-bearing counters; the obs series keep their full history.
func TestResetStatsLeavesObsCumulative(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewLRU(2, 4)
	l.SetMetrics(NewMetrics(reg, "lru"))

	l.Access(0)
	l.Access(0)
	l.ResetStats()
	if h, m, e := l.Stats(); h != 0 || m != 0 || e != 0 {
		t.Fatalf("Stats after reset = %d/%d/%d, want zeros", h, m, e)
	}
	if got := counterValue(t, reg, `buffer_hits_total{policy="lru"}`); got != 1 {
		t.Errorf("obs hits after ResetStats = %v, want cumulative 1", got)
	}
	if got := counterValue(t, reg, `buffer_misses_total{policy="lru"}`); got != 1 {
		t.Errorf("obs misses after ResetStats = %v, want cumulative 1", got)
	}
}

// TestPoolReadFailureMetric: pool read failures reach the obs mirror.
func TestPoolReadFailureMetric(t *testing.T) {
	reg := obs.NewRegistry()
	src := &fakeSource{pageSize: 8, numPages: 4, failOn: map[int]bool{1: true}}
	p := NewPool(src, 2, 4)
	p.SetMetrics(NewMetrics(reg, "lru"))

	if _, err := p.Get(1); err == nil {
		t.Fatal("expected read error")
	}
	if p.FailedReads() != 1 {
		t.Fatalf("FailedReads = %d, want 1", p.FailedReads())
	}
	if got := counterValue(t, reg, `buffer_read_failures_total{policy="lru"}`); got != 1 {
		t.Errorf("obs read failures = %v, want 1", got)
	}
}

// TestPoolDirtyMetricsExported: the write-path counters — pages
// dirtied, write-backs, and failed write-backs — reach the obs mirror
// and render in the Prometheus text exposition, so a dashboard can
// alert on failed write-backs the same way it does on failed reads.
func TestPoolDirtyMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	src := &fakeSource{pageSize: 8, numPages: 4}
	sink := newFakeSink(8)
	sink.failOn[0] = true
	p := NewPool(src, 1, 4)
	p.SetSink(sink)
	p.SetMetrics(NewMetrics(reg, "lru"))

	if err := p.Put(0, pattern(8, 0xD0)); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushDirty(); err == nil {
		t.Fatal("flush into a failing sink succeeded")
	}
	sink.failOn[0] = false
	if err := p.FlushDirty(); err != nil {
		t.Fatalf("flush after sink healed: %v", err)
	}
	if p.FailedWrites() != 1 {
		t.Fatalf("FailedWrites = %d, want 1", p.FailedWrites())
	}
	checks := map[string]float64{
		`buffer_pages_dirtied_total{policy="lru"}`:  1,
		`buffer_write_backs_total{policy="lru"}`:    1,
		`buffer_write_failures_total{policy="lru"}`: 1,
	}
	for name, want := range checks {
		if got := counterValue(t, reg, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	var export strings.Builder
	if err := obs.WritePrometheus(&export, reg); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`buffer_write_failures_total{policy="lru"} 1`,
		`# TYPE buffer_write_failures_total counter`,
	} {
		if !strings.Contains(export.String(), line) {
			t.Errorf("Prometheus export missing %q", line)
		}
	}
}

func TestPolicyName(t *testing.T) {
	if got := PolicyName(&LRU{}); got != "lru" {
		t.Errorf("PolicyName(LRU) = %q", got)
	}
	if got := PolicyName(&Clock{}); got != "clock" {
		t.Errorf("PolicyName(Clock) = %q", got)
	}
}
