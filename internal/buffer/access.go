package buffer

// AccessInfo is the per-access attribution a pool reports alongside a
// page read: whether the page was resident and how many dirty victims
// the access had to write back to make room. The storage layer feeds it
// to the flight recorder so slow queries can be explained page by page;
// pools that don't care keep calling Get, which discards it.
type AccessInfo struct {
	// Hit reports whether the page was served from a resident frame.
	Hit bool
	// WriteBacks counts the dirty victim pages this access flushed to
	// the sink before it could install its own page (0 on hits).
	WriteBacks int
}
