package buffer

// Clock is the classic second-chance (CLOCK) replacement policy: pages
// sit on a circular list with a reference bit; the hand sweeps, clearing
// bits, and evicts the first unreferenced page. Real database buffer
// managers often prefer CLOCK to strict LRU for its O(1) unsynchronized
// hits. The paper models LRU; Clock exists to test — not assume — that
// the model's predictions transfer (experiment ext-clock: they do, within
// a few percent, because CLOCK approximates LRU).
//
// Clock implements the same Access/Pin contract as LRU (see Policy).
type Clock struct {
	policyCore

	frames  []int32 // frame -> page (or -1)
	ref     []bool  // frame -> referenced bit
	frameOf []int32 // page -> frame (or -1)
	hand    int
}

// NewClock returns an empty CLOCK cache of the given page capacity over
// page numbers [0, numPages).
func NewClock(capacity, numPages int) *Clock {
	c := &Clock{
		policyCore: newPolicyCore("Clock", capacity, numPages),
		frames:     make([]int32, capacity),
		ref:        make([]bool, capacity),
		frameOf:    make([]int32, numPages),
	}
	for i := range c.frames {
		c.frames[i] = sentinel
	}
	for i := range c.frameOf {
		c.frameOf[i] = sentinel
	}
	return c
}

// Contains reports whether page is resident.
func (c *Clock) Contains(page int) bool { return c.frameOf[page] != sentinel }

// Access touches page, returning true on a hit; on a miss the page is
// faulted in, evicting via the clock hand if needed.
func (c *Clock) Access(page int) bool {
	if f := c.frameOf[page]; f != sentinel {
		if c.pinned[page] {
			c.pinHit(page)
		} else {
			c.hit(page)
		}
		c.ref[f] = true
		return true
	}
	c.miss(page)
	c.insert(page)
	return false
}

func (c *Clock) insert(page int) {
	if c.size < c.capacity {
		// Fill the first empty frame.
		for i := 0; i < c.capacity; i++ {
			if c.frames[i] == sentinel {
				c.frames[i] = int32(page)
				c.ref[i] = true
				c.frameOf[page] = int32(i)
				c.size++
				return
			}
		}
	}
	// Sweep: clear reference bits until an unreferenced, unpinned frame
	// turns up. With at least one unpinned frame this terminates within
	// two sweeps.
	sweeps := 0
	for {
		f := c.hand
		c.hand = (c.hand + 1) % c.capacity
		victim := c.frames[f]
		if victim == sentinel || c.pinned[victim] {
			sweeps++
			if sweeps > 2*c.capacity {
				panic("buffer: Clock has no evictable frame")
			}
			continue
		}
		if c.ref[f] {
			c.ref[f] = false
			continue
		}
		c.frameOf[victim] = sentinel
		c.frames[f] = int32(page)
		c.ref[f] = true
		c.frameOf[page] = int32(f)
		c.evictPage(int(victim))
		return
	}
}

// Victim returns the page insert's sweep would evict next, without
// moving the hand or clearing any reference bits. It simulates the
// sweep: the first unreferenced, unpinned frame from the hand wins the
// first lap; if every candidate is referenced, the sweep will have
// cleared them all, so the first unpinned frame from the hand wins the
// second.
func (c *Clock) Victim() (page int, ok bool) {
	first := -1
	for i := 0; i < c.capacity; i++ {
		f := (c.hand + i) % c.capacity
		p := c.frames[f]
		if p == sentinel || c.pinned[p] {
			continue
		}
		if first < 0 {
			first = f
		}
		if !c.ref[f] {
			return int(p), true
		}
	}
	if first < 0 {
		return 0, false
	}
	return int(c.frames[first]), true
}

// Install makes page resident without counting a hit or a miss (see
// PoolPolicy). A resident page gets its reference bit set; a miss-side
// install may evict, which still counts.
func (c *Clock) Install(page int) bool {
	if f := c.frameOf[page]; f != sentinel {
		c.ref[f] = true
		return true
	}
	c.insert(page)
	return false
}

// Remove drops page without counting an eviction — backing out a failed
// fault. The frame becomes empty and is refilled by the next insert.
func (c *Clock) Remove(page int) bool {
	f := c.frameOf[page]
	if f == sentinel || c.pinned[page] {
		return false
	}
	c.frames[f] = sentinel
	c.ref[f] = false
	c.frameOf[page] = sentinel
	c.size--
	return true
}

// Grow extends the page-number space to numPages (no-op if not larger).
func (c *Clock) Grow(numPages int) {
	old := c.numPages
	if !c.grow(numPages) {
		return
	}
	extra := numPages - old
	start := len(c.frameOf)
	c.frameOf = append(c.frameOf, make([]int32, extra)...)
	for i := start; i < len(c.frameOf); i++ {
		c.frameOf[i] = sentinel
	}
}

// Pin makes page permanently resident (a miss if absent).
func (c *Clock) Pin(page int) error {
	if c.pinned[page] {
		return nil
	}
	if err := c.checkPin(page); err != nil {
		return err
	}
	if c.frameOf[page] == sentinel {
		c.miss(page)
		c.insert(page)
	}
	c.pinned[page] = true
	c.nPinned++
	return nil
}

// Unpin returns a pinned page to normal replacement.
func (c *Clock) Unpin(page int) {
	if !c.pinned[page] {
		return
	}
	c.pinned[page] = false
	c.nPinned--
}

// Stats, ResetStats, HitRatio, SetMetrics, Capacity, Len, Full, Pinned,
// NumPages, and SetOnEvict are promoted from the embedded policyCore,
// the bookkeeping shared by every Policy.
