package buffer

import "fmt"

// Clock is the classic second-chance (CLOCK) replacement policy: pages
// sit on a circular list with a reference bit; the hand sweeps, clearing
// bits, and evicts the first unreferenced page. Real database buffer
// managers often prefer CLOCK to strict LRU for its O(1) unsynchronized
// hits. The paper models LRU; Clock exists to test — not assume — that
// the model's predictions transfer (experiment ext-clock: they do, within
// a few percent, because CLOCK approximates LRU).
//
// Clock implements the same Access/Pin contract as LRU (see Policy).
type Clock struct {
	capacity int

	frames  []int32 // frame -> page (or -1)
	ref     []bool  // frame -> referenced bit
	frameOf []int32 // page -> frame (or -1)
	pinned  []bool  // page -> pinned
	hand    int
	size    int
	nPinned int

	policyCounters
}

// NewClock returns an empty CLOCK cache of the given page capacity over
// page numbers [0, numPages).
func NewClock(capacity, numPages int) *Clock {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: Clock capacity %d < 1", capacity))
	}
	if numPages < 0 {
		panic(fmt.Sprintf("buffer: negative page count %d", numPages))
	}
	c := &Clock{
		capacity: capacity,
		frames:   make([]int32, capacity),
		ref:      make([]bool, capacity),
		frameOf:  make([]int32, numPages),
		pinned:   make([]bool, numPages),
	}
	for i := range c.frames {
		c.frames[i] = sentinel
	}
	for i := range c.frameOf {
		c.frameOf[i] = sentinel
	}
	return c
}

// Capacity returns the page capacity.
func (c *Clock) Capacity() int { return c.capacity }

// Len returns the number of resident pages.
func (c *Clock) Len() int { return c.size }

// Full reports whether the cache is at capacity.
func (c *Clock) Full() bool { return c.size >= c.capacity }

// Contains reports whether page is resident.
func (c *Clock) Contains(page int) bool { return c.frameOf[page] != sentinel }

// Access touches page, returning true on a hit; on a miss the page is
// faulted in, evicting via the clock hand if needed.
func (c *Clock) Access(page int) bool {
	if f := c.frameOf[page]; f != sentinel {
		if c.pinned[page] {
			c.pinHit(page)
		} else {
			c.hit(page)
		}
		c.ref[f] = true
		return true
	}
	c.miss(page)
	c.insert(page)
	return false
}

func (c *Clock) insert(page int) {
	if c.size < c.capacity {
		// Fill the first empty frame.
		for i := 0; i < c.capacity; i++ {
			if c.frames[i] == sentinel {
				c.frames[i] = int32(page)
				c.ref[i] = true
				c.frameOf[page] = int32(i)
				c.size++
				return
			}
		}
	}
	// Sweep: clear reference bits until an unreferenced, unpinned frame
	// turns up. With at least one unpinned frame this terminates within
	// two sweeps.
	sweeps := 0
	for {
		f := c.hand
		c.hand = (c.hand + 1) % c.capacity
		victim := c.frames[f]
		if victim == sentinel || c.pinned[victim] {
			sweeps++
			if sweeps > 2*c.capacity {
				panic("buffer: Clock has no evictable frame")
			}
			continue
		}
		if c.ref[f] {
			c.ref[f] = false
			continue
		}
		c.frameOf[victim] = sentinel
		c.frames[f] = int32(page)
		c.ref[f] = true
		c.frameOf[page] = int32(f)
		c.evict()
		return
	}
}

// Pin makes page permanently resident (a miss if absent).
func (c *Clock) Pin(page int) error {
	if c.pinned[page] {
		return nil
	}
	if c.nPinned >= c.capacity {
		return fmt.Errorf("buffer: cannot pin page %d: all %d slots pinned", page, c.capacity)
	}
	if c.frameOf[page] == sentinel {
		c.miss(page)
		c.insert(page)
	}
	c.pinned[page] = true
	c.nPinned++
	return nil
}

// Unpin returns a pinned page to normal replacement.
func (c *Clock) Unpin(page int) {
	if !c.pinned[page] {
		return
	}
	c.pinned[page] = false
	c.nPinned--
}

// Stats, ResetStats, HitRatio, and SetMetrics are promoted from the
// embedded policyCounters, the accounting struct shared by every Policy.

// Policy is the replacement-policy contract shared by LRU and Clock,
// letting the validation simulator swap policies.
type Policy interface {
	Access(page int) bool
	Pin(page int) error
	Unpin(page int)
	Contains(page int) bool
	Full() bool
	Len() int
	Capacity() int
	Stats() (hits, misses, evictions uint64)
	ResetStats()
	HitRatio() float64
	// SetMetrics attaches (or with nil detaches) an obs mirror that
	// shadows every hit/miss/evict into a metrics registry.
	SetMetrics(*Metrics)
}

// Compile-time conformance.
var (
	_ Policy = (*LRU)(nil)
	_ Policy = (*Clock)(nil)
)
