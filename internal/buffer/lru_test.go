package buffer

import (
	"math/rand/v2"
	"testing"
)

// accessAll runs a sequence of accesses and returns the miss pattern.
func accessAll(l *LRU, pages []int) []bool {
	misses := make([]bool, len(pages))
	for i, p := range pages {
		misses[i] = !l.Access(p)
	}
	return misses
}

func TestLRUBasicHitsAndMisses(t *testing.T) {
	l := NewLRU(2, 10)
	// Classic LRU trace: capacity 2.
	trace := []int{1, 2, 1, 3, 2}
	wantMiss := []bool{true, true, false, true, true} // 3 evicts 2 (LRU), then 2 misses
	got := accessAll(l, trace)
	for i := range trace {
		if got[i] != wantMiss[i] {
			t.Fatalf("access %d (page %d): miss=%v, want %v", i, trace[i], got[i], wantMiss[i])
		}
	}
	hits, misses, evictions := l.Stats()
	if hits != 1 || misses != 4 || evictions != 2 {
		t.Errorf("stats = %d/%d/%d", hits, misses, evictions)
	}
}

func TestLRURecencyOrder(t *testing.T) {
	l := NewLRU(3, 10)
	accessAll(l, []int{1, 2, 3})
	l.Access(1) // 1 becomes MRU; order now 1,3,2 (MRU..LRU)
	l.Access(4) // evicts 2
	if l.Contains(2) {
		t.Error("page 2 should have been evicted")
	}
	for _, p := range []int{1, 3, 4} {
		if !l.Contains(p) {
			t.Errorf("page %d should be resident", p)
		}
	}
}

func TestLRUFullAndLen(t *testing.T) {
	l := NewLRU(3, 10)
	if l.Full() || l.Len() != 0 {
		t.Error("fresh cache not empty")
	}
	l.Access(0)
	l.Access(1)
	if l.Full() {
		t.Error("cache full too early")
	}
	l.Access(2)
	if !l.Full() || l.Len() != 3 {
		t.Error("cache should be full at capacity")
	}
	l.Access(3)
	if l.Len() != 3 {
		t.Errorf("Len after eviction = %d", l.Len())
	}
}

func TestLRUSinglePage(t *testing.T) {
	l := NewLRU(1, 5)
	if l.Access(0) {
		t.Error("first access hit")
	}
	if !l.Access(0) {
		t.Error("repeat access missed")
	}
	if l.Access(1) {
		t.Error("new page hit")
	}
	if l.Contains(0) {
		t.Error("page 0 survived capacity-1 eviction")
	}
}

func TestLRUPinning(t *testing.T) {
	l := NewLRU(2, 10)
	if err := l.Pin(5); err != nil {
		t.Fatal(err)
	}
	// Pinned page always hits, never evicted.
	if !l.Access(5) {
		t.Error("pinned page missed")
	}
	l.Access(1)
	l.Access(2) // would need eviction; must evict 1, not pinned 5
	if !l.Contains(5) {
		t.Error("pinned page evicted")
	}
	if l.Contains(1) {
		t.Error("unpinned page 1 not evicted")
	}
}

func TestLRUPinAccounting(t *testing.T) {
	l := NewLRU(2, 10)
	l.ResetStats()
	if err := l.Pin(3); err != nil {
		t.Fatal(err) // non-resident pin costs one miss
	}
	_, misses, _ := l.Stats()
	if misses != 1 {
		t.Errorf("pin of absent page cost %d misses, want 1", misses)
	}
	// Pinning a resident page costs nothing.
	l.Access(4)
	before, _, _ := l.Stats()
	_ = before
	if err := l.Pin(4); err != nil {
		t.Fatal(err)
	}
	_, misses2, _ := l.Stats()
	if misses2 != 2 { // 1 from pin(3) + 1 from Access(4) miss
		t.Errorf("misses = %d", misses2)
	}
	// Now both slots pinned: pinning a third page must fail.
	if err := l.Pin(7); err == nil {
		t.Error("overpinning succeeded")
	}
	// And ordinary access of a new page cannot evict anything.
	defer func() {
		if recover() == nil {
			t.Error("access with fully pinned buffer did not panic")
		}
	}()
	l.Access(8)
}

func TestLRUUnpin(t *testing.T) {
	l := NewLRU(2, 10)
	if err := l.Pin(1); err != nil {
		t.Fatal(err)
	}
	l.Unpin(1)
	l.Access(2)
	l.Access(3) // evicts LRU; 1 is now evictable
	if l.Contains(1) {
		t.Error("unpinned page not evicted as LRU")
	}
	l.Unpin(9) // no-op on unpinned page
}

func TestLRUDoublePin(t *testing.T) {
	l := NewLRU(2, 10)
	if err := l.Pin(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Pin(1); err != nil {
		t.Fatal("re-pin errored")
	}
	l.Unpin(1)
	// After a single unpin the page is unpinned (pin is not a counter).
	l.Access(2)
	l.Access(3)
	if l.Contains(1) {
		t.Error("page survived after unpin")
	}
}

func TestLRURemove(t *testing.T) {
	l := NewLRU(3, 10)
	l.Access(1)
	l.Access(2)
	if !l.Remove(1) {
		t.Error("Remove of resident page failed")
	}
	if l.Contains(1) || l.Len() != 1 {
		t.Error("Remove left page resident")
	}
	if l.Remove(1) {
		t.Error("Remove of absent page succeeded")
	}
	l.Pin(2)
	if l.Remove(2) {
		t.Error("Remove of pinned page succeeded")
	}
	_, _, evictions := l.Stats()
	if evictions != 0 {
		t.Errorf("Remove counted %d evictions", evictions)
	}
}

func TestLRUOnEvict(t *testing.T) {
	l := NewLRU(2, 10)
	var evicted []int
	l.SetOnEvict(func(p int) { evicted = append(evicted, p) })
	accessAll(l, []int{1, 2, 3, 4})
	if len(evicted) != 2 || evicted[0] != 1 || evicted[1] != 2 {
		t.Errorf("evicted = %v", evicted)
	}
}

func TestLRUResetStats(t *testing.T) {
	l := NewLRU(2, 10)
	accessAll(l, []int{1, 2, 1})
	l.ResetStats()
	h, m, e := l.Stats()
	if h != 0 || m != 0 || e != 0 {
		t.Error("ResetStats did not zero counters")
	}
	if !l.Contains(1) || !l.Contains(2) {
		t.Error("ResetStats disturbed contents")
	}
}

func TestLRUHitRatio(t *testing.T) {
	l := NewLRU(2, 10)
	if l.HitRatio() != 0 {
		t.Error("fresh HitRatio != 0")
	}
	accessAll(l, []int{1, 1, 1, 2})
	if got := l.HitRatio(); got != 0.5 {
		t.Errorf("HitRatio = %g, want 0.5", got)
	}
}

func TestLRUConstructorPanics(t *testing.T) {
	for _, tc := range []struct{ cap, pages int }{{0, 10}, {-1, 10}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLRU(%d,%d) did not panic", tc.cap, tc.pages)
				}
			}()
			NewLRU(tc.cap, tc.pages)
		}()
	}
}

// Property: against a reference map-based LRU, the intrusive version
// agrees on every hit/miss over long random traces, including pins.
func TestLRUMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(301, 302))
	for trial := 0; trial < 20; trial++ {
		capacity := 1 + rng.IntN(20)
		numPages := capacity + rng.IntN(50)
		l := NewLRU(capacity, numPages)
		ref := newRefLRU(capacity)
		for step := 0; step < 5000; step++ {
			p := rng.IntN(numPages)
			got := l.Access(p)
			want := ref.access(p)
			if got != want {
				t.Fatalf("trial %d step %d page %d: hit=%v, ref=%v", trial, step, p, got, want)
			}
			if l.Len() > capacity {
				t.Fatalf("size %d exceeds capacity %d", l.Len(), capacity)
			}
		}
	}
}

// refLRU is an obviously-correct reference: a slice ordered MRU-first.
type refLRU struct {
	cap   int
	order []int
}

func newRefLRU(cap int) *refLRU { return &refLRU{cap: cap} }

func (r *refLRU) access(p int) bool {
	for i, q := range r.order {
		if q == p {
			r.order = append(r.order[:i], r.order[i+1:]...)
			r.order = append([]int{p}, r.order...)
			return true
		}
	}
	r.order = append([]int{p}, r.order...)
	if len(r.order) > r.cap {
		r.order = r.order[:r.cap]
	}
	return false
}

func BenchmarkLRUAccess(b *testing.B) {
	l := NewLRU(1000, 10000)
	rng := rand.New(rand.NewPCG(1, 2))
	pages := make([]int, 4096)
	for i := range pages {
		pages[i] = rng.IntN(10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Access(pages[i%len(pages)])
	}
}
