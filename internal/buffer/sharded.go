package buffer

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// PagePool is the buffer-pool contract the storage layer programs
// against: serve page contents with hit/miss accounting, pin pages,
// track dirty pages, and write them back. Pool (single-threaded) and
// ShardedPool (concurrent) both satisfy it, so a paged tree can swap
// pools without caring which.
//
// Get's ownership contract is the weaker of the two implementations':
// the returned slice must not be modified, and is only guaranteed valid
// until the next pool operation (Pool returns an alias that lives until
// eviction; ShardedPool returns a copy the caller owns).
type PagePool interface {
	Get(page int) ([]byte, error)
	// GetTracked is Get plus per-access attribution (hit/miss and dirty
	// write-backs) for the flight recorder; Get discards the same info.
	GetTracked(page int) ([]byte, AccessInfo, error)
	Pin(page int) error
	Unpin(page int)
	Put(page int, data []byte) error
	MarkDirty(page int) error
	FlushDirty() error
	Grow(numPages int)
	SetSink(sink PageSink)
	SetMetrics(m *Metrics)
	Stats() (hits, misses, evictions uint64)
	ResetStats()
	HitRatio() float64
	Capacity() int
	Resident() int
	DirtyPages() int
	FailedReads() uint64
	FailedWrites() uint64
}

var (
	_ PagePool = (*Pool)(nil)
	_ PagePool = (*ShardedPool)(nil)
)

// ShardedPool is a concurrent page pool striped across independently
// locked shards: page p lives in shard p mod n as local page p div n,
// with the capacity split round-robin. Hits on pages in different
// shards never contend — each shard is a private Pool (any PoolPolicy)
// under its own mutex, so the hit path is one uncontended lock, one
// policy update, and one page copy.
//
// No lock is ever held across source or sink I/O:
//
//   - A fault reads the source with no lock held, then commits under
//     the shard mutex. Concurrent faults of one page issue duplicate
//     reads; the losing install counts a hit and refreshes the frame in
//     place only if the page's dirty version is unchanged — a frame a
//     concurrent Put dirtied (or dirtied and already flushed) is ahead
//     of the stale source bytes and keeps its contents. Single-threaded
//     runs never take this path, so shards=1 accounting is
//     bit-identical to Pool's.
//   - A dirty victim is copied out under the shard mutex, written with
//     no lock held, and committed with its dirty version (wroteBackVer):
//     if the page was re-dirtied during the write, the flag stays set
//     and the fresher contents get written later. The transiently stale
//     sink state is safe for the same reason Pool's write-backs are:
//     callers WAL-log batches before dirtying pages, so any write-back
//     order is redo-covered.
//   - Write-backs of one shard serialize on a dedicated per-shard
//     write-back mutex held from copy through sink write to commit (the
//     shard-local analogue of SyncPool's ioMu). Without it, an eviction
//     write-back and a concurrent FlushDirty of the same page could
//     reach the sink in opposite order and persist the older contents
//     last — a lost update no crash recovery would repair. Hits and
//     faults that need no write-back never touch this mutex.
//   - The PR 7 no-steal contract holds per shard: installClean runs the
//     victim peek and the install under one continuous mutex hold, so a
//     dirty page can never be the eviction victim.
//
// The source (and sink, if attached) must be safe for concurrent calls
// on distinct pages — the file-backed and in-memory disk managers are.
// FlushDirty still writes in ascending global page order; pages being
// re-dirtied concurrently may remain dirty when it returns.
type ShardedPool struct {
	shards   []*poolShard
	n        int
	capacity int
	pageSize int
	numPages atomic.Int64 // global page-space bound; grown under all shard locks
	bufs     sync.Pool    // page-size staging buffers for faults and write-backs
}

// poolShard is one lock stripe: a private Pool over the shard's local
// page space.
type poolShard struct {
	mu sync.Mutex
	// wbMu serializes this shard's write-backs end to end — copy under
	// mu, sink write with only wbMu held, commit — so two write-backs of
	// one page can never reach the sink out of dirty-version order.
	// Always acquired before mu, never the other way around.
	wbMu sync.Mutex
	pool *Pool
}

// shardIO routes a shard pool's local-space I/O to the global source and
// sink. src is immutable after construction; sink is swapped via
// Pool.SetSink under the shard mutex and snapshotted before unlocked
// writes.
type shardIO struct {
	src      PageSource
	shard, n int
}

func (io shardIO) PageSize() int { return io.src.PageSize() }

func (io shardIO) ReadPage(local int, dst []byte) error {
	return io.src.ReadPage(local*io.n+io.shard, dst)
}

// shardSink maps a shard pool's local write-backs to global pages.
type shardSink struct {
	sink     PageSink
	shard, n int
}

func (s shardSink) WritePage(local int, data []byte) error {
	return s.sink.WritePage(local*s.n+s.shard, data)
}

// NewShardedPool returns an LRU-per-shard pool of the given total
// capacity (in pages) over pages [0, numPages) of src, striped across
// the given number of shards.
func NewShardedPool(src PageSource, capacity, numPages, shards int) *ShardedPool {
	return NewShardedPoolWith(src, capacity, numPages, shards, func(capacity, numPages int) PoolPolicy {
		return NewLRU(capacity, numPages)
	})
}

// NewShardedPoolWith is NewShardedPool with each shard's replacement
// policy built by factory (see FactoryFor). shards is clamped to
// [1, capacity] so every shard has at least one frame.
func NewShardedPoolWith(src PageSource, capacity, numPages, shards int, factory PolicyFactory) *ShardedPool {
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	s := &ShardedPool{
		shards:   make([]*poolShard, shards),
		n:        shards,
		capacity: capacity,
		pageSize: src.PageSize(),
	}
	s.numPages.Store(int64(numPages))
	s.bufs.New = func() any {
		//lint:allow hotalloc staging buffers are pooled; New runs once per steady-state buffer
		return make([]byte, s.pageSize)
	}
	for i := 0; i < shards; i++ {
		s.shards[i] = &poolShard{
			pool: NewPoolWith(shardIO{src: src, shard: i, n: shards},
				shardCapacity(capacity, shards, i), shardPages(numPages, shards, i), factory),
		}
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedPool) Shards() int { return s.n }

func (s *ShardedPool) locate(page int) (*poolShard, int) {
	return s.shards[page%s.n], page / s.n
}

func (s *ShardedPool) getBuf() []byte  { return s.bufs.Get().([]byte) }
func (s *ShardedPool) putBuf(b []byte) { s.bufs.Put(b) } //lint:allow hotalloc sync.Pool boxing; cheaper than the page copy it recycles

// boundsErr reports a page outside the pool's page space.
func (s *ShardedPool) boundsErr(page int) error {
	return fmt.Errorf("buffer: page %d outside [0,%d)", page, s.numPages.Load())
}

// globalize annotates a shard-local error with the global page number.
// With one shard local and global numbering coincide, so errors stay
// byte-identical to Pool's.
func (s *ShardedPool) globalize(err error, page int) error {
	if err == nil || s.n == 1 {
		return err
	}
	return fmt.Errorf("%w (global page %d)", err, page)
}

// Get returns a copy of the page contents, faulting it in on a miss.
// The returned slice is owned by the caller.
func (s *ShardedPool) Get(page int) ([]byte, error) {
	data, _, err := s.GetTracked(page)
	return data, err
}

// GetTracked is Get plus per-access attribution: whether the page was
// resident in its shard and how many dirty victims the fault wrote back.
func (s *ShardedPool) GetTracked(page int) ([]byte, AccessInfo, error) {
	if page < 0 || int64(page) >= s.numPages.Load() {
		return nil, AccessInfo{}, s.boundsErr(page)
	}
	sh, local := s.locate(page)
	sh.mu.Lock()
	frame, ok, err := sh.pool.TryGet(local)
	var out []byte
	var ver uint32
	if ok {
		out = make([]byte, len(frame)) //lint:allow hotalloc the returned page copy is Get's ownership contract
		copy(out, frame)
	} else if err == nil {
		ver = sh.pool.faultVersion(local)
	}
	sh.mu.Unlock()
	if ok || err != nil {
		return out, AccessInfo{Hit: ok}, s.globalize(err, page)
	}
	return s.fault(sh, page, local, ver)
}

// fault reads page from the source with no lock held and installs it,
// returning a copy the caller owns. ver is the page's dirty version at
// miss time; install refuses to refresh a frame a concurrent Put moved
// past it.
func (s *ShardedPool) fault(sh *poolShard, page, local int, ver uint32) ([]byte, AccessInfo, error) {
	buf := s.getBuf()
	err := sh.pool.readPage(local, buf)
	if err != nil {
		s.putBuf(buf)
		sh.mu.Lock()
		err = sh.pool.failedFault(local, err)
		sh.mu.Unlock()
		return nil, AccessInfo{}, s.globalize(err, page)
	}
	out := make([]byte, len(buf)) //lint:allow hotalloc the returned page copy is Get's ownership contract
	copy(out, buf)
	//lint:allow hotalloc miss-path closure: a fault already pays a source page read, and the hit path allocates nothing
	wrote, err := s.installCleanTracked(sh, func() { sh.pool.install(local, buf, ver) })
	s.putBuf(buf)
	if err != nil {
		return nil, AccessInfo{WriteBacks: wrote}, s.globalize(err, page)
	}
	return out, AccessInfo{WriteBacks: wrote}, nil
}

// installClean runs install (under the shard mutex) in a state where no
// dirty page can be the eviction victim, writing dirty victims back
// first — the per-shard no-steal protocol. The victim peek and the
// install happen under one continuous mutex hold, so the dirty set
// cannot change in between; each write-back runs under wbMu only (never
// the state mutex) and commits against the victim's dirty version. A
// write-back failure fails the caller's operation; the victim stays
// resident and dirty. Under a steady stream of concurrent Puts to one
// shard the loop may retry, but every iteration writes one page back,
// so the system as a whole makes progress.
func (s *ShardedPool) installClean(sh *poolShard, install func()) error {
	_, err := s.installCleanTracked(sh, install)
	return err
}

// installCleanTracked is installClean plus how many dirty victims were
// successfully written back before the install committed.
func (s *ShardedPool) installCleanTracked(sh *poolShard, install func()) (wrote int, err error) {
	buf := s.getBuf()
	defer s.putBuf(buf)
	for {
		sh.mu.Lock()
		if !sh.pool.hasDirtyVictim() {
			install()
			sh.mu.Unlock()
			return wrote, nil
		}
		sh.mu.Unlock()
		// A dirty victim must be written back first. wbMu serializes the
		// copy, the sink write, and the commit against every other
		// write-back of this shard (FlushDirty, other faults), so
		// same-page sink writes always land in dirty-version order; the
		// victim is re-probed under it because a concurrent write-back
		// may have cleaned it meanwhile.
		sh.wbMu.Lock()
		sh.mu.Lock()
		v, ver := sh.pool.dirtyVictimVer(buf)
		if v < 0 {
			sh.mu.Unlock()
			sh.wbMu.Unlock()
			continue
		}
		snk := sh.pool.sinkSnapshot()
		sh.mu.Unlock()
		werr := sinkWriteTo(snk, v, buf) //lint:allow lockcheck ordering same-page sink writes is wbMu's purpose; the state mutex is not held
		sh.mu.Lock()
		werr = sh.pool.wroteBackVer(v, ver, werr)
		sh.mu.Unlock()
		sh.wbMu.Unlock()
		if werr != nil {
			return wrote, werr
		}
		wrote++
	}
}

// Pin makes page permanently resident (reading it if absent). Until the
// read completes a concurrent Get of the same page faults it redundantly
// and counts a pinned hit; a clean frame such a fault installs is
// refreshed here, while a frame a concurrent Put moved ahead of the
// source keeps its contents.
func (s *ShardedPool) Pin(page int) error {
	if page < 0 || int64(page) >= s.numPages.Load() {
		return s.boundsErr(page)
	}
	sh, local := s.locate(page)
	var need bool
	var ver uint32
	var perr error
	if err := s.installClean(sh, func() { need, ver, perr = sh.pool.preparePin(local) }); err != nil {
		return s.globalize(err, page)
	}
	if perr != nil || !need {
		return s.globalize(perr, page)
	}
	buf := s.getBuf()
	err := sh.pool.readPage(local, buf)
	if err != nil {
		s.putBuf(buf)
		sh.mu.Lock()
		err = sh.pool.failedPin(local, err)
		sh.mu.Unlock()
		return s.globalize(err, page)
	}
	sh.mu.Lock()
	sh.pool.installPinned(local, buf, ver)
	sh.mu.Unlock()
	s.putBuf(buf)
	return nil
}

// Unpin returns a pinned page to replacement management.
func (s *ShardedPool) Unpin(page int) {
	if page < 0 || int64(page) >= s.numPages.Load() {
		return
	}
	sh, local := s.locate(page)
	sh.mu.Lock()
	sh.pool.Unpin(local)
	sh.mu.Unlock()
}

// Put installs data as the contents of page, resident and dirty — the
// update path's entry point after its batch is WAL-committed. Installing
// into a full shard may evict, writing a dirty victim back first (with
// no lock held; see installClean).
func (s *ShardedPool) Put(page int, data []byte) error {
	if page < 0 || int64(page) >= s.numPages.Load() {
		return s.boundsErr(page)
	}
	if len(data) != s.pageSize {
		return fmt.Errorf("buffer: put of %d bytes != page size %d", len(data), s.pageSize)
	}
	sh, local := s.locate(page)
	var perr error
	// Under installClean's no-dirty-victim guarantee Pool.Put's own
	// victim write-back finds nothing to do, so no I/O runs under mu.
	if err := s.installClean(sh, func() { perr = sh.pool.Put(local, data) }); err != nil {
		return s.globalize(err, page)
	}
	return s.globalize(perr, page)
}

// MarkDirty flags a resident page whose contents the caller replaced via
// Put as needing write-back. (ShardedPool's Get hands out copies, so
// there is no aliased frame to mutate in place; MarkDirty exists for
// PagePool parity and for callers holding pinned pages.)
func (s *ShardedPool) MarkDirty(page int) error {
	if page < 0 || int64(page) >= s.numPages.Load() {
		return s.boundsErr(page)
	}
	sh, local := s.locate(page)
	sh.mu.Lock()
	err := sh.pool.MarkDirty(local)
	sh.mu.Unlock()
	return s.globalize(err, page)
}

// FlushDirty writes every dirty page back to the sink in ascending
// global page order, stopping at the first failure (the failed page and
// everything after stay dirty). Each page is copied out under its shard
// mutex and written under the shard's write-back mutex only, so hits
// proceed during the flush while same-page write-backs (an eviction
// racing this flush) stay ordered; a page re-dirtied during its write
// stays dirty. Concurrent mutators may dirty pages the snapshot missed —
// FlushDirty guarantees only that pages dirty before the call and not
// re-dirtied during it are clean after.
func (s *ShardedPool) FlushDirty() error {
	var pages []int
	for i, sh := range s.shards {
		sh.mu.Lock()
		for _, local := range sh.pool.dirtySnapshot() {
			pages = append(pages, local*s.n+i)
		}
		sh.mu.Unlock()
	}
	slices.Sort(pages)
	buf := s.getBuf()
	defer s.putBuf(buf)
	for _, page := range pages {
		sh, local := s.locate(page)
		sh.wbMu.Lock()
		sh.mu.Lock()
		ver, ok := sh.pool.copyDirtyVer(local, buf)
		snk := sh.pool.sinkSnapshot()
		sh.mu.Unlock()
		if !ok {
			sh.wbMu.Unlock()
			continue // cleaned by an eviction write-back meanwhile
		}
		err := sinkWriteTo(snk, local, buf) //lint:allow lockcheck ordering same-page sink writes is wbMu's purpose; the state mutex is not held
		sh.mu.Lock()
		err = sh.pool.wroteBackVer(local, ver, err)
		sh.mu.Unlock()
		sh.wbMu.Unlock()
		if err != nil {
			return s.globalize(err, page)
		}
	}
	return nil
}

// Grow extends the pool's page-number space to numPages (no-op if not
// larger). All shard locks are taken (in shard order) so the global
// bound and the per-shard bounds move together.
func (s *ShardedPool) Grow(numPages int) {
	if int64(numPages) <= s.numPages.Load() {
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	if int64(numPages) > s.numPages.Load() {
		for i, sh := range s.shards {
			sh.pool.Grow(shardPages(numPages, s.n, i))
		}
		s.numPages.Store(int64(numPages))
	}
	for _, sh := range s.shards {
		sh.mu.Unlock()
	}
}

// SetSink attaches the write-back target for dirty pages; nil detaches.
// Each shard sees the sink through a local→global page mapping.
func (s *ShardedPool) SetSink(sink PageSink) {
	for i, sh := range s.shards {
		var shardTarget PageSink
		if sink != nil {
			shardTarget = shardSink{sink: sink, shard: i, n: s.n}
		}
		sh.mu.Lock()
		sh.pool.SetSink(shardTarget)
		sh.mu.Unlock()
	}
}

// SetMetrics attaches an obs mirror: every shard shares the mirror's
// (atomic) counters, with per-level series remapped through the shard
// stride so they report global levels. Nil detaches.
func (s *ShardedPool) SetMetrics(m *Metrics) {
	for i, sh := range s.shards {
		sh.mu.Lock()
		sh.pool.SetMetrics(m.shardView(i, s.n))
		sh.mu.Unlock()
	}
}

// Stats returns cumulative hits, misses, and evictions summed across
// shards. Shards are read one at a time, so a concurrent access may
// land between two shard reads; totals are exact once writers quiesce.
func (s *ShardedPool) Stats() (hits, misses, evictions uint64) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		h, m, e := sh.pool.Stats()
		sh.mu.Unlock()
		hits += h
		misses += m
		evictions += e
	}
	return hits, misses, evictions
}

// ResetStats zeroes the counters without disturbing contents.
func (s *ShardedPool) ResetStats() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.pool.ResetStats()
		sh.mu.Unlock()
	}
}

// HitRatio returns the cumulative hit ratio across shards.
func (s *ShardedPool) HitRatio() float64 {
	h, m, _ := s.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Capacity returns the total pool capacity in pages.
func (s *ShardedPool) Capacity() int { return s.capacity }

// Resident returns the number of pages currently buffered.
func (s *ShardedPool) Resident() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.pool.Resident()
		sh.mu.Unlock()
	}
	return n
}

// DirtyPages returns how many resident pages are ahead of the source.
func (s *ShardedPool) DirtyPages() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.pool.DirtyPages()
		sh.mu.Unlock()
	}
	return n
}

// FailedReads returns how many source reads errored.
func (s *ShardedPool) FailedReads() uint64 {
	var n uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.pool.FailedReads()
		sh.mu.Unlock()
	}
	return n
}

// FailedWrites returns how many sink write-backs errored.
func (s *ShardedPool) FailedWrites() uint64 {
	var n uint64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.pool.FailedWrites()
		sh.mu.Unlock()
	}
	return n
}
