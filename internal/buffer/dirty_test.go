package buffer

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"rtreebuf/internal/obs"
)

// fakeSink records write-backs in arrival order and can be told to fail.
type fakeSink struct {
	pageSize int
	pages    map[int][]byte
	order    []int
	failOn   map[int]bool
	fails    int
}

func newFakeSink(pageSize int) *fakeSink {
	return &fakeSink{pageSize: pageSize, pages: make(map[int][]byte), failOn: make(map[int]bool)}
}

func (s *fakeSink) WritePage(page int, data []byte) error {
	if s.failOn[page] {
		s.fails++
		return errors.New("injected write failure")
	}
	s.pages[page] = append([]byte(nil), data...)
	s.order = append(s.order, page)
	return nil
}

func pattern(pageSize int, b byte) []byte {
	data := make([]byte, pageSize)
	for i := range data {
		data[i] = b
	}
	return data
}

func TestPoolPutFlushDirty(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 8}
	sink := newFakeSink(16)
	p := NewPool(src, 4, 8)
	p.SetSink(sink)
	// Dirty in descending order; the flush must still run ascending.
	for _, page := range []int{5, 2, 7} {
		if err := p.Put(page, pattern(16, byte(0xA0+page))); err != nil {
			t.Fatalf("Put(%d): %v", page, err)
		}
	}
	if p.DirtyPages() != 3 {
		t.Fatalf("DirtyPages = %d, want 3", p.DirtyPages())
	}
	// Put is a write, not a read: no source reads, no misses.
	if src.reads != 0 {
		t.Fatalf("Put issued %d source reads", src.reads)
	}
	if _, misses, _ := p.Stats(); misses != 0 {
		t.Fatalf("Put counted %d misses", misses)
	}
	// Reads see the put contents without touching the source.
	got, err := p.Get(5)
	if err != nil || !bytes.Equal(got, pattern(16, 0xA5)) {
		t.Fatalf("Get(5) after Put = %v, %v", got[:2], err)
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatalf("FlushDirty: %v", err)
	}
	if p.DirtyPages() != 0 {
		t.Fatalf("DirtyPages after flush = %d", p.DirtyPages())
	}
	wantOrder := []int{2, 5, 7}
	if len(sink.order) != 3 || sink.order[0] != 2 || sink.order[1] != 5 || sink.order[2] != 7 {
		t.Fatalf("flush order = %v, want %v", sink.order, wantOrder)
	}
	for _, page := range wantOrder {
		if !bytes.Equal(sink.pages[page], pattern(16, byte(0xA0+page))) {
			t.Fatalf("sink page %d holds wrong bytes", page)
		}
	}
	// Idempotent: nothing left to write.
	if err := p.FlushDirty(); err != nil || len(sink.order) != 3 {
		t.Fatalf("second flush wrote again: %v, order %v", err, sink.order)
	}
}

func TestPoolMarkDirty(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 4}
	sink := newFakeSink(16)
	p := NewPool(src, 4, 4)
	p.SetSink(sink)
	frame, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	frame[0] = 0xEE
	if err := p.MarkDirty(1); err != nil {
		t.Fatalf("MarkDirty: %v", err)
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatalf("FlushDirty: %v", err)
	}
	if sink.pages[1][0] != 0xEE {
		t.Fatal("in-place mutation not written back")
	}
	if err := p.MarkDirty(3); err == nil {
		t.Fatal("MarkDirty of a non-resident page accepted")
	}
}

func TestPoolEvictionWritesBackDirtyVictim(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 8}
	sink := newFakeSink(16)
	p := NewPool(src, 2, 8)
	p.SetSink(sink)
	if err := p.Put(0, pattern(16, 0xB0)); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(1, pattern(16, 0xB1)); err != nil {
		t.Fatal(err)
	}
	// Faulting page 2 must evict page 0 (LRU) — but only after writing
	// it back.
	if _, err := p.Get(2); err != nil {
		t.Fatalf("Get(2): %v", err)
	}
	if !bytes.Equal(sink.pages[0], pattern(16, 0xB0)) {
		t.Fatal("evicted dirty page 0 not written back")
	}
	if p.DirtyPages() != 1 {
		t.Fatalf("DirtyPages = %d, want 1 (page 1)", p.DirtyPages())
	}
	// Put over a full pool write-backs the dirty victim too.
	if err := p.Put(3, pattern(16, 0xB3)); err != nil {
		t.Fatalf("Put(3): %v", err)
	}
	if _, ok := sink.pages[1]; !ok {
		t.Fatal("dirty victim of Put not written back")
	}
	// Pin over a full pool: same contract.
	if err := p.Put(4, pattern(16, 0xB4)); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(5); err != nil {
		t.Fatalf("Pin(5): %v", err)
	}
	if _, ok := sink.pages[3]; !ok {
		t.Fatal("dirty victim of Pin not written back")
	}
}

func TestPoolWriteBackFailureFailsOperation(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 8}
	sink := newFakeSink(16)
	sink.failOn[0] = true
	p := NewPool(src, 1, 8)
	p.SetSink(sink)
	if err := p.Put(0, pattern(16, 0xC0)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(1); err == nil {
		t.Fatal("Get whose dirty victim cannot be written back succeeded")
	}
	if p.FailedWrites() != 1 {
		t.Fatalf("FailedWrites = %d, want 1", p.FailedWrites())
	}
	// Nothing lost: the page is still resident, dirty, and readable.
	if p.DirtyPages() != 1 {
		t.Fatalf("DirtyPages = %d, want 1", p.DirtyPages())
	}
	got, err := p.Get(0)
	if err != nil || !bytes.Equal(got, pattern(16, 0xC0)) {
		t.Fatalf("dirty page lost after failed write-back: %v", err)
	}
	// Once the sink heals, the operation goes through.
	sink.failOn[0] = false
	if _, err := p.Get(1); err != nil {
		t.Fatalf("Get after sink healed: %v", err)
	}
	if !bytes.Equal(sink.pages[0], pattern(16, 0xC0)) {
		t.Fatal("healed write-back wrote wrong bytes")
	}
	if p.FailedWrites() != 1 {
		t.Fatalf("FailedWrites = %d after recovery, want 1", p.FailedWrites())
	}
}

func TestPoolFlushStopsAtFailure(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 8}
	sink := newFakeSink(16)
	sink.failOn[3] = true
	p := NewPool(src, 8, 8)
	p.SetSink(sink)
	for _, page := range []int{1, 3, 5} {
		if err := p.Put(page, pattern(16, byte(page))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.FlushDirty(); err == nil {
		t.Fatal("flush through a failing sink succeeded")
	}
	// Page 1 flushed; 3 and 5 remain dirty for the retry.
	if p.DirtyPages() != 2 {
		t.Fatalf("DirtyPages = %d, want 2", p.DirtyPages())
	}
	sink.failOn[3] = false
	if err := p.FlushDirty(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if p.DirtyPages() != 0 || len(sink.order) != 3 {
		t.Fatalf("retry left %d dirty, wrote %v", p.DirtyPages(), sink.order)
	}
}

func TestPoolPutWithoutSink(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 4}
	p := NewPool(src, 4, 4)
	if err := p.Put(0, pattern(16, 1)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := p.FlushDirty(); err == nil {
		t.Fatal("FlushDirty with no sink succeeded")
	}
}

func TestPoolGrow(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 4}
	sink := newFakeSink(16)
	p := NewPool(src, 4, 4)
	p.SetSink(sink)
	if err := p.Put(6, pattern(16, 6)); err == nil {
		t.Fatal("Put past the page space accepted")
	}
	p.Grow(8)
	if err := p.Put(6, pattern(16, 6)); err != nil {
		t.Fatalf("Put after Grow: %v", err)
	}
	got, err := p.Get(6)
	if err != nil || !bytes.Equal(got, pattern(16, 6)) {
		t.Fatalf("Get(6) after Grow: %v", err)
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatalf("FlushDirty: %v", err)
	}
}

func TestSyncPoolPutFlushConcurrentReaders(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 32}
	sink := newFakeSink(16)
	s := NewSyncPool(src, 8, 32)
	s.SetSink(sink)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				page := (g*7 + i) % 16
				if _, err := s.Get(page); err != nil {
					t.Errorf("Get(%d): %v", page, err)
					return
				}
			}
		}(g)
	}
	// One writer puts and flushes batches while readers hammer the pool.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			page := 16 + i%16
			if err := s.Put(page, pattern(16, byte(i))); err != nil {
				t.Errorf("Put(%d): %v", page, err)
				return
			}
			if i%5 == 4 {
				if err := s.FlushDirty(); err != nil {
					t.Errorf("FlushDirty: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := s.FlushDirty(); err != nil {
		t.Fatalf("final FlushDirty: %v", err)
	}
	if s.DirtyPages() != 0 {
		t.Fatalf("DirtyPages = %d after final flush", s.DirtyPages())
	}
	// Every put page reached the sink with its last-written pattern.
	for i := 34; i < 50; i++ {
		page := 16 + i%16
		if !bytes.Equal(sink.pages[page], pattern(16, byte(i))) {
			t.Fatalf("sink page %d missing final contents", page)
		}
	}
}

func TestSyncPoolDirtyVictimWriteBack(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 8}
	sink := newFakeSink(16)
	s := NewSyncPool(src, 2, 8)
	s.SetSink(sink)
	if err := s.Put(0, pattern(16, 0xD0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, pattern(16, 0xD1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(2); err != nil {
		t.Fatalf("Get(2): %v", err)
	}
	if !bytes.Equal(sink.pages[0], pattern(16, 0xD0)) {
		t.Fatal("dirty victim not written back on fault")
	}
	if s.DirtyPages() != 1 {
		t.Fatalf("DirtyPages = %d, want 1", s.DirtyPages())
	}
}

func TestPoolDirtyMetricsMirrored(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 8}
	sink := newFakeSink(16)
	sink.failOn[2] = true
	p := NewPool(src, 8, 8)
	p.SetSink(sink)
	reg := obs.NewRegistry()
	p.SetMetrics(NewMetrics(reg, "lru"))
	if err := p.Put(1, pattern(16, 1)); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(2, pattern(16, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushDirty(); err == nil {
		t.Fatal("flush through failing sink succeeded")
	}
	sink.failOn[2] = false
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		`buffer_pages_dirtied_total{policy="lru"}`:  2,
		`buffer_write_backs_total{policy="lru"}`:    2,
		`buffer_write_failures_total{policy="lru"}`: 1,
	} {
		if got := counterValue(t, reg, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if p.FailedWrites() != 1 {
		t.Fatalf("FailedWrites = %d, want 1", p.FailedWrites())
	}
}
