package buffer

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestClockBasics(t *testing.T) {
	c := NewClock(2, 10)
	if c.Access(1) {
		t.Error("first access hit")
	}
	if !c.Access(1) {
		t.Error("repeat access missed")
	}
	c.Access(2)
	if !c.Full() || c.Len() != 2 || c.Capacity() != 2 {
		t.Errorf("full/len/capacity = %v/%d/%d", c.Full(), c.Len(), c.Capacity())
	}
	// A third page evicts something; both newcomers must be findable via
	// re-access accounting.
	c.Access(3)
	if c.Len() != 2 {
		t.Errorf("Len after eviction = %d", c.Len())
	}
	if !c.Contains(3) {
		t.Error("newly inserted page not resident")
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 3 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d", hits, misses, evictions)
	}
	if got := c.HitRatio(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("HitRatio = %g", got)
	}
	c.ResetStats()
	if h, m, e := c.Stats(); h+m+e != 0 {
		t.Error("ResetStats failed")
	}
}

func TestClockSecondChance(t *testing.T) {
	// Second chance discriminates only once some reference bits are
	// cleared: after the first eviction sweep, a re-referenced page
	// survives while an untouched one is evicted.
	c := NewClock(3, 10)
	c.Access(1)
	c.Access(2)
	c.Access(3)
	c.Access(4) // sweep clears all bits, evicts page 1 (at the hand)
	if c.Contains(1) {
		t.Fatal("page 1 should have been the first sweep victim")
	}
	c.Access(2) // re-reference 2: its bit protects it now
	c.Access(5) // must evict 3 (cleared bit), not 2
	if !c.Contains(2) {
		t.Error("re-referenced page evicted despite second chance")
	}
	if c.Contains(3) {
		t.Error("unreferenced page survived over a referenced one")
	}
	if !c.Contains(5) {
		t.Error("new page absent")
	}
}

func TestClockPinning(t *testing.T) {
	c := NewClock(2, 10)
	if err := c.Pin(5); err != nil {
		t.Fatal(err)
	}
	if !c.Access(5) {
		t.Error("pinned page missed")
	}
	c.Access(1)
	c.Access(2) // must evict 1, never pinned 5
	if !c.Contains(5) {
		t.Error("pinned page evicted")
	}
	if err := c.Pin(6); err != nil {
		t.Fatal(err)
	}
	if err := c.Pin(7); err == nil {
		t.Error("overpin accepted")
	}
	c.Unpin(5)
	c.Unpin(5) // no-op
	if err := c.Pin(7); err != nil {
		t.Errorf("pin after unpin: %v", err)
	}
}

func TestClockAllPinnedPanics(t *testing.T) {
	c := NewClock(1, 5)
	if err := c.Pin(0); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("miss with fully pinned buffer did not panic")
		}
	}()
	c.Access(1)
}

func TestClockConstructorPanics(t *testing.T) {
	for _, tc := range []struct{ cap, pages int }{{0, 10}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%d,%d) did not panic", tc.cap, tc.pages)
				}
			}()
			NewClock(tc.cap, tc.pages)
		}()
	}
}

// CLOCK approximates LRU: over random skewed traces their hit ratios stay
// within a few points of each other — the empirical basis for applying
// the paper's LRU model to CLOCK-managed buffers (experiment ext-clock).
func TestClockApproximatesLRU(t *testing.T) {
	rng := rand.New(rand.NewPCG(501, 502))
	for trial := 0; trial < 10; trial++ {
		capacity := 8 + rng.IntN(64)
		numPages := capacity*2 + rng.IntN(256)
		lru := NewLRU(capacity, numPages)
		clk := NewClock(capacity, numPages)
		// Zipf-ish skew: quadratic transform concentrates on low pages.
		for i := 0; i < 40000; i++ {
			u := rng.Float64()
			p := int(u * u * float64(numPages))
			if p >= numPages {
				p = numPages - 1
			}
			lru.Access(p)
			clk.Access(p)
		}
		if math.Abs(lru.HitRatio()-clk.HitRatio()) > 0.05 {
			t.Errorf("trial %d: LRU %.3f vs CLOCK %.3f", trial, lru.HitRatio(), clk.HitRatio())
		}
		if clk.Len() > capacity {
			t.Errorf("CLOCK overfilled: %d > %d", clk.Len(), capacity)
		}
	}
}

func BenchmarkClockAccess(b *testing.B) {
	c := NewClock(1000, 10000)
	rng := rand.New(rand.NewPCG(1, 2))
	pages := make([]int, 4096)
	for i := range pages {
		pages[i] = rng.IntN(10000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(pages[i%len(pages)])
	}
}
