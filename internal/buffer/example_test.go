package buffer_test

import (
	"fmt"

	"rtreebuf/internal/buffer"
)

// ExampleLRU replays the classic capacity-2 reference trace.
func ExampleLRU() {
	l := buffer.NewLRU(2, 10)
	for _, page := range []int{1, 2, 1, 3, 2} {
		if l.Access(page) {
			fmt.Printf("page %d: hit\n", page)
		} else {
			fmt.Printf("page %d: miss\n", page)
		}
	}
	hits, misses, evictions := l.Stats()
	fmt.Printf("hits=%d misses=%d evictions=%d\n", hits, misses, evictions)
	// Output:
	// page 1: miss
	// page 2: miss
	// page 1: hit
	// page 3: miss
	// page 2: miss
	// hits=1 misses=4 evictions=2
}

// ExampleLRU_pinning shows the paper's Section 5.5 mechanism: pinned
// pages never leave the buffer, at the cost of capacity for the rest.
func ExampleLRU_pinning() {
	l := buffer.NewLRU(2, 10)
	if err := l.Pin(7); err != nil {
		panic(err)
	}
	l.Access(1)
	l.Access(2) // evicts 1 — page 7 is immune
	fmt.Println("7 resident:", l.Contains(7))
	fmt.Println("1 resident:", l.Contains(1))
	// Output:
	// 7 resident: true
	// 1 resident: false
}
