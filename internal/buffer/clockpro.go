package buffer

// ClockPro is the CLOCK-Pro replacement policy (Jiang, Chen & Zhang,
// USENIX ATC '05): a single clock over hot pages, resident cold pages,
// and non-resident "test" entries (page numbers of recently evicted cold
// pages), with three hands.
//
//   - handCold is the eviction hand: it evicts the first unreferenced
//     resident cold page, promotes referenced cold pages in their test
//     period to hot, and recycles other referenced cold pages with a
//     renewed test period.
//   - handHot demotes the first unreferenced hot page to cold (second
//     chances for referenced ones) and terminates the test periods of
//     the cold and non-resident entries it passes.
//   - handTest retires the oldest non-resident test entry when their
//     count exceeds capacity.
//
// The hot/cold split adapts: a re-access during a test period grows the
// cold allocation (coldTarget), an expired test shrinks it — that is the
// reuse-distance feedback that makes CLOCK-Pro scan-resistant where
// plain CLOCK is not. coldTarget starts at half the unpinned capacity.
//
// Victim is memoized: peeking the next eviction victim performs the
// hand work (promotions, demotions, test expirations — everything
// except dropping a frame) and caches the chosen page, so the pool's
// peek / write-back / evict protocol acts on one stable victim. The
// cache is revalidated, not trusted: any intervening state change that
// makes the cached page unevictable forces a re-settle.
//
// The paper under study models LRU; ClockPro is the second of the two
// modern policies experiment ext-policy validates the extended model
// against.
type ClockPro struct {
	policyCore

	prev, next []int32 // circular ring links (age order)
	state      []uint8 // page -> cpNone/cpHot/cpCold/cpGhost
	inTest     []bool  // resident cold page -> in its test period
	ref        []bool  // page -> referenced bit

	oldest   int32 // oldest ring entry, or sentinel
	handHot  int32
	handCold int32
	handTest int32

	nHot, nCold, nGhost int
	coldTarget          int
	settled             int32 // memoized eviction victim, or sentinel
}

// Page states for ClockPro.state.
const (
	cpNone  uint8 = iota
	cpHot         // resident hot page
	cpCold        // resident cold page (see inTest)
	cpGhost       // non-resident test entry: page number only
)

// NewClockPro returns an empty CLOCK-Pro cache of the given page
// capacity over page numbers [0, numPages).
func NewClockPro(capacity, numPages int) *ClockPro {
	c := &ClockPro{
		policyCore: newPolicyCore("ClockPro", capacity, numPages),
		prev:       make([]int32, numPages),
		next:       make([]int32, numPages),
		state:      make([]uint8, numPages),
		inTest:     make([]bool, numPages),
		ref:        make([]bool, numPages),
		oldest:     sentinel,
		handHot:    sentinel,
		handCold:   sentinel,
		handTest:   sentinel,
		settled:    sentinel,
	}
	c.coldTarget = max(1, capacity/2)
	return c
}

// mem is the replacement-managed capacity: total minus pinned frames.
func (c *ClockPro) mem() int { return c.capacity - c.nPinned }

// hotTarget is the hot-page allowance implied by the adaptive coldTarget.
func (c *ClockPro) hotTarget() int { return max(0, c.mem()-c.coldTarget) }

func (c *ClockPro) clampColdTarget() {
	m := max(1, c.mem())
	c.coldTarget = min(max(c.coldTarget, 1), m)
}

// Contains reports whether page is resident (ghost entries hold no
// frame).
func (c *ClockPro) Contains(page int) bool {
	return c.pinned[page] || c.state[page] == cpHot || c.state[page] == cpCold
}

// Access touches page, returning true on a hit. A ghost re-access (a
// cold page re-referenced within its test period) counts as a miss and
// re-enters hot; a cold miss enters as a cold page in test.
func (c *ClockPro) Access(page int) bool {
	if c.pinned[page] {
		c.pinHit(page)
		return true
	}
	switch c.state[page] {
	case cpHot, cpCold:
		c.hit(page)
		c.ref[page] = true
		return true
	case cpGhost:
		c.miss(page)
		c.admitGhost(page)
		return false
	default:
		c.miss(page)
		c.admitCold(page)
		return false
	}
}

// Install makes page resident without counting a hit or a miss (see
// PoolPolicy); transitions match Access exactly.
func (c *ClockPro) Install(page int) bool {
	if c.pinned[page] {
		return true
	}
	switch c.state[page] {
	case cpHot, cpCold:
		c.ref[page] = true
		return true
	case cpGhost:
		c.admitGhost(page)
		return false
	default:
		c.admitCold(page)
		return false
	}
}

// admitCold inserts a first-seen page as a resident cold page in its
// test period.
func (c *ClockPro) admitCold(page int) {
	if c.size >= c.capacity {
		c.evictOne()
	}
	c.insertNewest(int32(page), cpCold)
	c.inTest[page] = true
	c.ref[page] = false
	c.nCold++
	c.size++
}

// admitGhost promotes a page re-accessed within its test period to hot,
// growing the cold allocation (the page's reuse distance fit in the cold
// window, so the window earns more space).
func (c *ClockPro) admitGhost(page int) {
	c.coldTarget++
	c.clampColdTarget()
	c.removeNode(int32(page))
	c.nGhost--
	c.state[page] = cpNone
	if c.size >= c.capacity {
		c.evictOne()
	}
	c.insertNewest(int32(page), cpHot)
	c.ref[page] = false
	c.nHot++
	c.size++
	c.rebalanceHot()
}

// Victim returns the page the next eviction will drop, doing the hand
// work up front (see the type comment on memoization).
func (c *ClockPro) Victim() (page int, ok bool) {
	v := c.settleVictim()
	if v == sentinel {
		return 0, false
	}
	return int(v), true
}

// settleVictim advances the CLOCK-Pro machinery until an unreferenced
// resident cold page sits under handCold, and caches it. Promotions,
// renewals, and hot demotions happen here; only the frame drop is left
// to evictOne.
func (c *ClockPro) settleVictim() int32 {
	if s := c.settled; s != sentinel && c.state[s] == cpCold && !c.ref[s] && !c.pinned[s] {
		return s
	}
	c.settled = sentinel
	bound := 4*c.capacity + 4*(c.nHot+c.nCold+c.nGhost) + 16
	for i := 0; i < bound; i++ {
		if c.nCold == 0 {
			if c.nHot == 0 {
				return sentinel // everything resident is pinned
			}
			c.demoteOneHot()
			continue
		}
		c.handCold = c.seek(c.handCold, cpCold)
		p := c.handCold
		if !c.ref[p] {
			c.settled = p
			return p
		}
		if c.inTest[p] {
			// Re-referenced within its test period: hot.
			c.removeNode(p)
			c.nCold--
			c.insertNewest(p, cpHot)
			c.ref[p] = false
			c.nHot++
			c.rebalanceHot()
		} else {
			// Referenced past its test period: second chance as a cold
			// page with a renewed test period.
			c.removeNode(p)
			c.insertNewest(p, cpCold)
			c.inTest[p] = true
			c.ref[p] = false
		}
	}
	panic("buffer: ClockPro victim search did not settle")
}

// evictOne drops one resident cold page's frame. A victim still in its
// test period stays in the ring as a non-resident test entry; one past
// it vanishes.
func (c *ClockPro) evictOne() {
	v := c.settleVictim()
	if v == sentinel {
		panic(noEvictableErr(c.capacity, c.nPinned))
	}
	c.settled = sentinel
	if c.inTest[v] {
		// Keep the entry, advance the eviction hand past it.
		if c.handCold == v {
			c.handCold = c.advance(v)
		}
		c.state[v] = cpGhost
		c.inTest[v] = false
		c.nGhost++
	} else {
		c.removeNode(v)
		c.state[v] = cpNone
	}
	c.nCold--
	c.size--
	c.evictPage(int(v))
	for c.nGhost > c.capacity {
		c.expireOneTest()
	}
}

// rebalanceHot demotes hot pages while they exceed the adaptive hot
// allowance.
func (c *ClockPro) rebalanceHot() {
	for c.nHot > 0 && c.nHot > c.hotTarget() {
		c.demoteOneHot()
	}
}

// demoteOneHot runs handHot until one hot page is demoted to cold.
// Passing the hand over a cold or non-resident entry terminates its test
// period (shrinking the cold allocation — the page aged out of the hot
// clock without re-access); referenced hot pages get a second chance at
// the newest position.
func (c *ClockPro) demoteOneHot() {
	bound := 4*c.capacity + 4*(c.nHot+c.nCold+c.nGhost) + 16
	for i := 0; i < bound; i++ {
		if c.handHot == sentinel {
			c.handHot = c.oldest
		}
		p := c.handHot
		switch c.state[p] {
		case cpGhost:
			c.removeNode(p) // advances handHot
			c.nGhost--
			c.state[p] = cpNone
			c.coldTarget--
			c.clampColdTarget()
		case cpCold:
			if c.inTest[p] {
				c.inTest[p] = false
				c.coldTarget--
				c.clampColdTarget()
			}
			c.handHot = c.advance(p)
		default: // cpHot
			if c.ref[p] {
				c.ref[p] = false
				c.removeNode(p)
				c.insertNewest(p, cpHot)
				continue
			}
			c.state[p] = cpCold
			c.inTest[p] = false
			c.nHot--
			c.nCold++
			c.handHot = c.advance(p)
			return
		}
	}
	panic("buffer: ClockPro hot hand did not settle")
}

// expireOneTest retires the oldest non-resident test entry.
func (c *ClockPro) expireOneTest() {
	c.handTest = c.seek(c.handTest, cpGhost)
	p := c.handTest
	c.removeNode(p)
	c.nGhost--
	c.state[p] = cpNone
	c.coldTarget--
	c.clampColdTarget()
}

// Pin makes page permanently resident (a miss if absent). Pinned pages
// leave the clock; Unpin returns them as cold pages in a fresh test
// period.
func (c *ClockPro) Pin(page int) error {
	if c.pinned[page] {
		return nil
	}
	if err := c.checkPin(page); err != nil {
		return err
	}
	switch c.state[page] {
	case cpHot:
		c.removeNode(int32(page))
		c.nHot--
		c.state[page] = cpNone
	case cpCold:
		c.removeNode(int32(page))
		c.nCold--
		c.inTest[page] = false
		c.state[page] = cpNone
	default:
		if c.state[page] == cpGhost {
			c.removeNode(int32(page))
			c.nGhost--
			c.state[page] = cpNone
		}
		c.miss(page)
		if c.size >= c.capacity {
			c.evictOne()
		}
		c.size++
	}
	c.ref[page] = false
	c.pinned[page] = true
	c.nPinned++
	c.clampColdTarget()
	c.rebalanceHot()
	return nil
}

// Unpin returns a pinned page to replacement management as a cold page
// in a fresh test period.
func (c *ClockPro) Unpin(page int) {
	if !c.pinned[page] {
		return
	}
	c.pinned[page] = false
	c.nPinned--
	c.insertNewest(int32(page), cpCold)
	c.inTest[page] = true
	c.ref[page] = false
	c.nCold++
	c.clampColdTarget()
}

// Remove drops page without counting an eviction — backing out a failed
// fault. No test entry is left behind: the page was never really read.
func (c *ClockPro) Remove(page int) bool {
	if c.pinned[page] {
		return false
	}
	switch c.state[page] {
	case cpHot:
		c.removeNode(int32(page))
		c.nHot--
	case cpCold:
		c.removeNode(int32(page))
		c.nCold--
		c.inTest[page] = false
	default:
		return false
	}
	c.state[page] = cpNone
	c.size--
	return true
}

// Grow extends the page-number space to numPages (no-op if not larger).
func (c *ClockPro) Grow(numPages int) {
	old := c.numPages
	if !c.grow(numPages) {
		return
	}
	extra := numPages - old
	c.prev = append(c.prev, make([]int32, extra)...)
	c.next = append(c.next, make([]int32, extra)...)
	c.state = append(c.state, make([]uint8, extra)...)
	c.inTest = append(c.inTest, make([]bool, extra)...)
	c.ref = append(c.ref, make([]bool, extra)...)
}

// Stats, ResetStats, HitRatio, SetMetrics, Capacity, Len, Full, Pinned,
// NumPages, and SetOnEvict are promoted from the embedded policyCore.

// insertNewest links p into the ring as the youngest entry with the
// given state.
func (c *ClockPro) insertNewest(p int32, st uint8) {
	c.state[p] = st
	if c.oldest == sentinel {
		c.oldest = p
		c.next[p] = p
		c.prev[p] = p
		return
	}
	newest := c.prev[c.oldest]
	c.next[newest] = p
	c.prev[p] = newest
	c.next[p] = c.oldest
	c.prev[c.oldest] = p
}

// removeNode unlinks p from the ring, advancing any hand (and the oldest
// pointer) that sits on it.
func (c *ClockPro) removeNode(p int32) {
	np := c.next[p]
	single := np == p
	adv := np
	if single {
		adv = sentinel
	}
	if c.handHot == p {
		c.handHot = adv
	}
	if c.handCold == p {
		c.handCold = adv
	}
	if c.handTest == p {
		c.handTest = adv
	}
	if c.settled == p {
		c.settled = sentinel
	}
	if c.oldest == p {
		c.oldest = adv
	}
	c.next[c.prev[p]] = np
	c.prev[np] = c.prev[p]
	c.next[p], c.prev[p] = sentinel, sentinel
}

// advance returns the ring entry after p (sentinel on an empty ring).
func (c *ClockPro) advance(p int32) int32 {
	if c.oldest == sentinel {
		return sentinel
	}
	return c.next[p]
}

// seek positions a hand on the next entry of the wanted state, starting
// from the hand's current position (or the oldest entry).
func (c *ClockPro) seek(h int32, want uint8) int32 {
	if h == sentinel {
		h = c.oldest
	}
	bound := c.nHot + c.nCold + c.nGhost + 1
	for i := 0; i < bound; i++ {
		if c.state[h] == want {
			return h
		}
		h = c.next[h]
	}
	panic("buffer: ClockPro hand seek found no entry")
}
