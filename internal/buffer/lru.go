// Package buffer implements the buffering mechanism under study: an LRU
// page buffer with optional pinning of pages (e.g. the top levels of an
// R-tree, Section 5.5 of the paper). The core LRU is specialized for dense
// integer page numbers, which both the validation simulator and the real
// page pool use; Pool layers it over a storage.DiskManager to serve actual
// page contents with hit/miss accounting, and ShardedPool stripes pools
// across shards for concurrent callers.
package buffer

// LRU is a fixed-capacity least-recently-used cache over dense page
// numbers 0..numPages-1. It is implemented with slice-backed intrusive
// prev/next links, so Access is O(1) with no allocation — the validation
// simulator calls it hundreds of millions of times.
//
// Pages can be pinned: a pinned page is always resident, never evicted,
// and counts against capacity. Pinning a non-resident page faults it in.
type LRU struct {
	policyCore

	prev, next []int32 // intrusive list links
	head, tail int32   // most / least recently used, or sentinel
	resident   []bool
}

const sentinel = -1

// NewLRU returns an empty cache of the given page capacity over page
// numbers [0, numPages). capacity must be positive and numPages
// non-negative; violations panic, as both always come from experiment
// configuration bugs, not data.
func NewLRU(capacity, numPages int) *LRU {
	l := &LRU{ //lint:allow hotalloc constructor: one-time setup of a hot type
		policyCore: newPolicyCore("LRU", capacity, numPages),
		prev:       make([]int32, numPages), //lint:allow hotalloc constructor: one-time setup of a hot type
		next:       make([]int32, numPages), //lint:allow hotalloc constructor: one-time setup of a hot type
		resident:   make([]bool, numPages),  //lint:allow hotalloc constructor: one-time setup of a hot type
		head:       sentinel,
		tail:       sentinel,
	}
	return l
}

// Contains reports whether page is resident without touching recency.
func (l *LRU) Contains(page int) bool { return l.resident[page] }

// Access touches page, returning true on a hit and false on a miss (the
// page is then faulted in, evicting the least recently used unpinned page
// if needed). A miss models one disk access.
func (l *LRU) Access(page int) bool {
	if l.pinned[page] {
		l.pinHit(page)
		return true
	}
	if l.resident[page] {
		l.hit(page)
		l.moveToFront(int32(page))
		return true
	}
	l.miss(page)
	if l.size >= l.capacity {
		l.evictLRU()
	}
	l.resident[page] = true
	l.size++
	l.pushFront(int32(page))
	return false
}

// Pin makes page permanently resident. Pinning a non-resident page counts
// as a miss (it must be read once). Pin fails if every unpinned slot is
// exhausted — the caller asked to pin more pages than the buffer holds.
func (l *LRU) Pin(page int) error {
	if l.pinned[page] {
		return nil
	}
	if err := l.checkPin(page); err != nil {
		return err
	}
	if l.resident[page] {
		l.unlink(int32(page))
	} else {
		l.miss(page)
		if l.size >= l.capacity {
			if err := l.tryEvict(); err != nil {
				return err
			}
		}
		l.resident[page] = true
		l.size++
	}
	l.pinned[page] = true
	l.nPinned++
	return nil
}

// Unpin returns a pinned page to normal LRU management (as most recently
// used). Unpinning an unpinned page is a no-op.
func (l *LRU) Unpin(page int) {
	if !l.pinned[page] {
		return
	}
	l.pinned[page] = false
	l.nPinned--
	l.pushFront(int32(page))
}

// Victim returns the page the next capacity eviction would drop (the
// least recently used unpinned page) without touching anything. ok is
// false when every resident page is pinned or the cache is empty. A pool
// that tracks dirty pages peeks the victim before a fault so it can
// write the contents back while they are still resident.
func (l *LRU) Victim() (page int, ok bool) {
	if l.tail == sentinel {
		return 0, false
	}
	return int(l.tail), true
}

// Install makes page resident as most recently used without counting a
// hit or a miss — the caller is writing the page, not reading it, so no
// physical read is implied (Stats' "misses equal source reads" contract
// survives the update path). A capacity eviction still counts. Returns
// whether the page was already resident.
func (l *LRU) Install(page int) bool {
	if l.pinned[page] {
		return true
	}
	if l.resident[page] {
		l.moveToFront(int32(page))
		return true
	}
	if l.size >= l.capacity {
		l.evictLRU()
	}
	l.resident[page] = true
	l.size++
	l.pushFront(int32(page))
	return false
}

// Grow extends the page-number space to numPages (a no-op if not larger).
// Capacity is unchanged: growth admits higher page numbers, not more
// resident pages. The update path calls this when node splits allocate
// pages past the tree's original extent.
func (l *LRU) Grow(numPages int) {
	old := l.numPages
	if !l.grow(numPages) {
		return
	}
	extra := numPages - old
	l.prev = append(l.prev, make([]int32, extra)...)
	l.next = append(l.next, make([]int32, extra)...)
	l.resident = append(l.resident, make([]bool, extra)...)
}

// Remove drops page from the cache without invoking the evict hook or
// counting an eviction. Used by pools to back out a fault whose source
// read failed. Removing a pinned or absent page is a no-op returning
// false.
func (l *LRU) Remove(page int) bool {
	if l.pinned[page] || !l.resident[page] {
		return false
	}
	l.unlink(int32(page))
	l.resident[page] = false
	l.size--
	return true
}

// Stats, ResetStats, HitRatio, SetMetrics, Capacity, Len, Full, Pinned,
// NumPages, and SetOnEvict are promoted from the embedded policyCore,
// the bookkeeping shared by every Policy.

func (l *LRU) evictLRU() {
	if err := l.tryEvict(); err != nil {
		// Access only evicts when size >= capacity and unpinned pages
		// exist; exhaustion here means internal bookkeeping broke.
		panic(err)
	}
}

func (l *LRU) tryEvict() error {
	victim := l.tail
	if victim == sentinel {
		return noEvictableErr(l.capacity, l.nPinned)
	}
	l.unlink(victim)
	l.resident[victim] = false
	l.size--
	l.evictPage(int(victim))
	return nil
}

func (l *LRU) pushFront(p int32) {
	l.prev[p] = sentinel
	l.next[p] = l.head
	if l.head != sentinel {
		l.prev[l.head] = p
	}
	l.head = p
	if l.tail == sentinel {
		l.tail = p
	}
}

func (l *LRU) unlink(p int32) {
	if l.prev[p] != sentinel {
		l.next[l.prev[p]] = l.next[p]
	} else {
		l.head = l.next[p]
	}
	if l.next[p] != sentinel {
		l.prev[l.next[p]] = l.prev[p]
	} else {
		l.tail = l.prev[p]
	}
	l.prev[p], l.next[p] = sentinel, sentinel
}

func (l *LRU) moveToFront(p int32) {
	if l.head == p {
		return
	}
	l.unlink(p)
	l.pushFront(p)
}
