package buffer

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// concSource is a PageSource safe for concurrent reads on distinct (or
// identical) pages, as ShardedPool requires: page p is filled with
// byte(p), reads are counted atomically, and failures can be injected
// per page.
type concSource struct {
	pageSize int
	numPages int
	reads    atomic.Uint64
	failOn   map[int]bool // immutable after construction
}

func (c *concSource) PageSize() int { return c.pageSize }

func (c *concSource) ReadPage(page int, dst []byte) error {
	if c.failOn[page] {
		return fmt.Errorf("injected read failure on page %d", page)
	}
	if page < 0 || page >= c.numPages {
		return fmt.Errorf("page %d out of range", page)
	}
	for i := range dst[:c.pageSize] {
		dst[i] = byte(page)
	}
	c.reads.Add(1)
	return nil
}

// concSink is a PageSink safe for concurrent writes.
type concSink struct {
	mu     sync.Mutex
	pages  map[int][]byte
	writes int
	failOn map[int]bool
}

func newConcSink() *concSink {
	return &concSink{pages: make(map[int][]byte), failOn: make(map[int]bool)}
}

func (s *concSink) WritePage(page int, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failOn[page] {
		return fmt.Errorf("injected write failure on page %d", page)
	}
	s.pages[page] = append([]byte(nil), data...)
	s.writes++
	return nil
}

func TestShardedPoolServesContent(t *testing.T) {
	for _, shards := range []int{1, 3, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			src := &concSource{pageSize: 64, numPages: 40}
			p := NewShardedPool(src, 8, 40, shards)
			for _, page := range []int{0, 5, 39, 5, 0, 17} {
				data, err := p.Get(page)
				if err != nil {
					t.Fatal(err)
				}
				if len(data) != 64 || data[0] != byte(page) || data[63] != byte(page) {
					t.Fatalf("page %d content wrong", page)
				}
			}
			hits, misses, _ := p.Stats()
			if hits != 2 || misses != 4 {
				t.Errorf("stats = %d/%d, want 2/4", hits, misses)
			}
			if got := p.Capacity(); got != 8 {
				t.Errorf("Capacity = %d", got)
			}
		})
	}
}

func TestShardedPoolClampsShards(t *testing.T) {
	src := &concSource{pageSize: 32, numPages: 10}
	if got := NewShardedPool(src, 4, 10, 64).Shards(); got != 4 {
		t.Errorf("shards clamped to %d, want capacity 4", got)
	}
	if got := NewShardedPool(src, 4, 10, 0).Shards(); got != 1 {
		t.Errorf("shards clamped to %d, want 1", got)
	}
}

func TestShardedPoolBounds(t *testing.T) {
	src := &concSource{pageSize: 32, numPages: 20}
	p := NewShardedPool(src, 4, 10, 2)
	if _, err := p.Get(-1); err == nil {
		t.Error("Get(-1) succeeded")
	}
	if _, err := p.Get(10); err == nil {
		t.Error("Get past extent succeeded")
	}
	p.Grow(20)
	if _, err := p.Get(15); err != nil {
		t.Errorf("Get after Grow failed: %v", err)
	}
}

func TestShardedPoolReadFailure(t *testing.T) {
	src := &concSource{pageSize: 32, numPages: 10, failOn: map[int]bool{7: true}}
	p := NewShardedPool(src, 4, 10, 2)
	if _, err := p.Get(7); err == nil {
		t.Fatal("read failure not surfaced")
	}
	if p.FailedReads() != 1 {
		t.Errorf("FailedReads = %d", p.FailedReads())
	}
	if _, err := p.Get(3); err != nil {
		t.Fatal(err)
	}
}

// oracleOps drives the same deterministic mixed operation sequence
// against any pool; the oracle test runs it on the legacy SyncPool and
// on ShardedPool with one shard and demands identical accounting.
type oraclePool interface {
	Get(page int) ([]byte, error)
	Pin(page int) error
	Unpin(page int)
	Put(page int, data []byte) error
	FlushDirty() error
	Grow(numPages int)
	Stats() (hits, misses, evictions uint64)
	DirtyPages() int
	FailedReads() uint64
	FailedWrites() uint64
}

func driveOracle(t *testing.T, p oraclePool, pageSize int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	numPages := 64
	if err := p.Pin(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		page := rng.Intn(numPages)
		switch op := rng.Intn(20); {
		case op < 14:
			data, err := p.Get(page)
			if err != nil {
				if page != 13 { // the injected failure page
					t.Fatalf("op %d: Get(%d): %v", i, page, err)
				}
			} else if data[0] != byte(page) && data[0] != byte(page)^0xAA {
				t.Fatalf("op %d: page %d content %x", i, page, data[0])
			}
		case op < 17:
			if err := p.Put(page, bytes.Repeat([]byte{byte(page) ^ 0xAA}, pageSize)); err != nil {
				t.Fatalf("op %d: Put(%d): %v", i, page, err)
			}
		case op == 17:
			if err := p.FlushDirty(); err != nil {
				t.Fatalf("op %d: FlushDirty: %v", i, err)
			}
		case op == 18:
			if rng.Intn(2) == 0 {
				p.Unpin(0)
			} else {
				_ = p.Pin(0)
			}
		default:
			if rng.Intn(8) == 0 && numPages < 96 {
				numPages += 8
				p.Grow(numPages)
			}
		}
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPoolOracleAgainstSyncPool: with one shard, the sharded pool
// must agree with the legacy single-lock SyncPool hit for hit, miss for
// miss, evict for evict, on a mixed read/write/pin/grow/flush workload
// with injected read failures.
func TestShardedPoolOracleAgainstSyncPool(t *testing.T) {
	const pageSize = 48
	mkSrc := func() *concSource {
		return &concSource{pageSize: pageSize, numPages: 96, failOn: map[int]bool{13: true}}
	}
	legacySink, shardedSink := newConcSink(), newConcSink()

	legacy := NewSyncPool(mkSrc(), 10, 64)
	legacy.SetSink(legacySink)
	driveOracle(t, legacy, pageSize)

	sharded := NewShardedPool(mkSrc(), 10, 64, 1)
	sharded.SetSink(shardedSink)
	driveOracle(t, sharded, pageSize)

	lh, lm, le := legacy.Stats()
	sh, sm, se := sharded.Stats()
	if lh != sh || lm != sm || le != se {
		t.Errorf("stats diverged: legacy %d/%d/%d, sharded %d/%d/%d", lh, lm, le, sh, sm, se)
	}
	if legacy.DirtyPages() != sharded.DirtyPages() {
		t.Errorf("dirty pages: %d vs %d", legacy.DirtyPages(), sharded.DirtyPages())
	}
	if legacy.FailedReads() != sharded.FailedReads() {
		t.Errorf("failed reads: %d vs %d", legacy.FailedReads(), sharded.FailedReads())
	}
	if legacy.FailedWrites() != sharded.FailedWrites() {
		t.Errorf("failed writes: %d vs %d", legacy.FailedWrites(), sharded.FailedWrites())
	}
	legacySink.mu.Lock()
	shardedSink.mu.Lock()
	defer legacySink.mu.Unlock()
	defer shardedSink.mu.Unlock()
	if len(legacySink.pages) != len(shardedSink.pages) {
		t.Fatalf("sink page sets diverged: %d vs %d", len(legacySink.pages), len(shardedSink.pages))
	}
	for page, want := range legacySink.pages {
		if !bytes.Equal(want, shardedSink.pages[page]) {
			t.Errorf("sink page %d contents diverged", page)
		}
	}
}

// The same oracle workload must also hold per policy: ShardedPool with
// one shard over each policy versus a plain single-threaded Pool with
// that policy.
func TestShardedPoolSingleShardMatchesPoolPerPolicy(t *testing.T) {
	const pageSize = 48
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			factory, _ := FactoryFor(name)
			plainSrc := &concSource{pageSize: pageSize, numPages: 64}
			plain := NewPoolWith(plainSrc, 8, 64, factory)
			shardSrc := &concSource{pageSize: pageSize, numPages: 64}
			sharded := NewShardedPoolWith(shardSrc, 8, 64, 1, factory)
			rng := rand.New(rand.NewSource(21))
			for i := 0; i < 3000; i++ {
				page := rng.Intn(64)
				a, errA := plain.Get(page)
				b, errB := sharded.Get(page)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("op %d: error divergence: %v vs %v", i, errA, errB)
				}
				if errA == nil && !bytes.Equal(a, b) {
					t.Fatalf("op %d: content divergence on page %d", i, page)
				}
			}
			ph, pm, pe := plain.Stats()
			sh, sm, se := sharded.Stats()
			if ph != sh || pm != sm || pe != se {
				t.Fatalf("stats diverged: pool %d/%d/%d, sharded %d/%d/%d", ph, pm, pe, sh, sm, se)
			}
			if plainSrc.reads.Load() != shardSrc.reads.Load() {
				t.Fatalf("source reads diverged: %d vs %d", plainSrc.reads.Load(), shardSrc.reads.Load())
			}
		})
	}
}

// concStore is a combined PageSource/PageSink over one backing store,
// like a real disk manager: write-backs land where later faults read.
// Page contents carry a (page, version) stamp — see stampPage — so the
// stress test can detect a lost update: a stale fault or write-back
// reverting a page that a committed Put moved forward. (The previous
// incarnation of this test had writers Put bytes identical to the
// source pattern, which masked exactly that bug class.)
type concStore struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte
}

func newConcStore(pageSize, numPages int) *concStore {
	st := &concStore{pageSize: pageSize, pages: make([][]byte, numPages)}
	for pg := range st.pages {
		st.pages[pg] = stampPage(pageSize, pg, 0)
	}
	return st
}

func (c *concStore) PageSize() int { return c.pageSize }

func (c *concStore) ReadPage(page int, dst []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if page < 0 || page >= len(c.pages) {
		return fmt.Errorf("page %d out of range", page)
	}
	copy(dst, c.pages[page])
	return nil
}

func (c *concStore) WritePage(page int, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if page < 0 || page >= len(c.pages) {
		return fmt.Errorf("page %d out of range", page)
	}
	copy(c.pages[page], data)
	return nil
}

func (c *concStore) contents(page int) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.pages[page]...)
}

// stampPage builds page contents carrying (page, version) in the first
// eight bytes plus a fill derived from both, so checkStamp can detect
// torn or mixed frames, not just wrong versions.
func stampPage(pageSize, page int, ver uint32) []byte {
	b := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(b[0:4], uint32(page))
	binary.LittleEndian.PutUint32(b[4:8], ver)
	for i := 8; i < pageSize; i++ {
		b[i] = byte(page) + byte(ver)*31 + byte(i)*7
	}
	return b
}

// checkStamp validates data as a well-formed stamp of page and returns
// its version.
func checkStamp(data []byte, page int) (uint32, error) {
	if got := binary.LittleEndian.Uint32(data[0:4]); got != uint32(page) {
		return 0, fmt.Errorf("page %d frame stamped for page %d", page, got)
	}
	ver := binary.LittleEndian.Uint32(data[4:8])
	if want := stampPage(len(data), page, ver); !bytes.Equal(data[8:], want[8:]) {
		return 0, fmt.Errorf("page %d version %d frame torn", page, ver)
	}
	return ver, nil
}

// TestShardedPoolConcurrentStress hammers a sharded pool from many
// goroutines mixing Get/Put/Pin/Unpin/MarkDirty/FlushDirty with pinned
// pages present, over a shared source+sink store with version-stamped
// contents. Every Get must observe a well-formed version no newer than
// the page's version counter; after the run quiesces and flushes, every
// page the writers moved forward must be forward in the store too (a
// lost update would show as a reverted version), and resident frames
// must agree with the store. Run under -race in CI.
func TestShardedPoolConcurrentStress(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, policy := range []string{"lru", "2q", "clockpro"} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, policy), func(t *testing.T) {
				const pageSize = 64
				const numPages = 128
				store := newConcStore(pageSize, numPages)
				factory, _ := FactoryFor(policy)
				p := NewShardedPoolWith(store, 16, numPages, shards, factory)
				p.SetSink(store)
				for _, pin := range []int{0, 1} {
					if err := p.Pin(pin); err != nil {
						t.Fatal(err)
					}
				}
				var ver [numPages]atomic.Uint32
				const goroutines = 8
				const opsPer = 2000
				var wg sync.WaitGroup
				errs := make(chan error, goroutines)
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					// Each goroutine owns one pin page (2+g): pin/unpin pairs
					// race writers Putting the same page, exercising the
					// preparePin/installPinned window.
					go func(seed int64, pinPage int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						pinned := false
						defer func() {
							if pinned {
								p.Unpin(pinPage)
							}
						}()
						for i := 0; i < opsPer; i++ {
							page := rng.Intn(numPages)
							switch op := rng.Intn(100); {
							case op < 72:
								data, err := p.Get(page)
								if err != nil {
									errs <- err
									return
								}
								v, err := checkStamp(data, page)
								if err != nil {
									errs <- err
									return
								}
								if bound := ver[page].Load(); v > bound {
									errs <- fmt.Errorf("page %d read version %d > issued %d", page, v, bound)
									return
								}
							case op < 88:
								v := ver[page].Add(1)
								if err := p.Put(page, stampPage(pageSize, page, v)); err != nil {
									errs <- err
									return
								}
							case op < 93:
								if err := p.FlushDirty(); err != nil {
									errs <- err
									return
								}
							case op < 97:
								if pinned {
									p.Unpin(pinPage)
									pinned = false
								} else if err := p.Pin(pinPage); err != nil {
									errs <- err
									return
								} else {
									pinned = true
								}
							default:
								// Errors on non-resident pages are expected; a resident
								// page's frame holds a committed stamp, so re-queuing it
								// for write-back is always safe.
								_ = p.MarkDirty(page)
							}
						}
					}(int64(g)+1, 2+g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				if err := p.FlushDirty(); err != nil {
					t.Fatal(err)
				}
				if p.DirtyPages() != 0 {
					t.Errorf("DirtyPages = %d after quiesced flush", p.DirtyPages())
				}
				for pg := 0; pg < numPages; pg++ {
					sv, err := checkStamp(store.contents(pg), pg)
					if err != nil {
						t.Fatalf("store: %v", err)
					}
					if ver[pg].Load() > 0 && sv == 0 {
						t.Errorf("page %d: committed Puts lost — store reverted to the seed version", pg)
					}
					data, err := p.Get(pg)
					if err != nil {
						t.Fatal(err)
					}
					gv, err := checkStamp(data, pg)
					if err != nil {
						t.Fatalf("pool: %v", err)
					}
					if gv != sv {
						t.Errorf("page %d: clean frame at version %d diverges from store version %d", pg, gv, sv)
					}
				}
				hits, misses, _ := p.Stats()
				if hits+misses == 0 {
					t.Error("no accesses recorded")
				}
				if !p.Contains(0) {
					t.Error("pinned page evicted")
				}
			})
		}
	}
}

// TestShardedPoolNotSlower is the CI speedup guard: on the same
// single-threaded workload, ShardedPool with one shard must not be
// meaningfully slower than the legacy SyncPool (generous tolerance, best
// of several trials, to absorb scheduler noise).
func TestShardedPoolNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const pageSize = 256
	const numPages = 512
	const capacity = 128
	workload := func(p oraclePool) {
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 60000; i++ {
			if _, err := p.Get(rng.Intn(numPages)); err != nil {
				panic(err)
			}
		}
	}
	timeOne := func(mk func() oraclePool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 5; trial++ {
			p := mk()
			start := time.Now()
			workload(p)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	legacy := timeOne(func() oraclePool {
		return NewSyncPool(&concSource{pageSize: pageSize, numPages: numPages}, capacity, numPages)
	})
	sharded := timeOne(func() oraclePool {
		return NewShardedPool(&concSource{pageSize: pageSize, numPages: numPages}, capacity, numPages, 1)
	})
	t.Logf("legacy=%v sharded=%v ratio=%.2f", legacy, sharded, float64(sharded)/float64(legacy))
	if float64(sharded) > float64(legacy)*1.35 {
		t.Errorf("sharded pool (1 shard) %v vs legacy %v: more than 35%% slower", sharded, legacy)
	}
}

// Contains reports residency for tests (not part of PagePool).
func (s *ShardedPool) Contains(page int) bool {
	if page < 0 || int64(page) >= s.numPages.Load() {
		return false
	}
	sh, local := s.locate(page)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.pool.policy.Contains(local)
}

// --- benchmarks (recorded in BENCH_PR9.json) ---

type benchPool interface {
	Get(page int) ([]byte, error)
}

func benchPools(b *testing.B, capacity, numPages, pageSize int) map[string]func() benchPool {
	b.Helper()
	return map[string]func() benchPool{
		"syncpool": func() benchPool {
			return NewSyncPool(&concSource{pageSize: pageSize, numPages: numPages}, capacity, numPages)
		},
		"sharded8": func() benchPool {
			return NewShardedPool(&concSource{pageSize: pageSize, numPages: numPages}, capacity, numPages, 8)
		},
	}
}

// BenchmarkPoolGetHit measures the contended hit path: every page is
// resident, so each Get is lock + policy touch + copy.
func BenchmarkPoolGetHit(b *testing.B) {
	const pageSize = 256
	const numPages = 64
	for name, mk := range benchPools(b, numPages, numPages, pageSize) {
		for _, par := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", name, par), func(b *testing.B) {
				p := mk()
				for pg := 0; pg < numPages; pg++ {
					if _, err := p.Get(pg); err != nil {
						b.Fatal(err)
					}
				}
				b.SetParallelism(par)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(42))
					for pb.Next() {
						if _, err := p.Get(rng.Intn(numPages)); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkPoolGetMiss measures the fault path: the page set is far
// larger than capacity, so most Gets read the source.
func BenchmarkPoolGetMiss(b *testing.B) {
	const pageSize = 256
	const numPages = 4096
	for name, mk := range benchPools(b, 64, numPages, pageSize) {
		for _, par := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", name, par), func(b *testing.B) {
				p := mk()
				b.SetParallelism(par)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(42))
					for pb.Next() {
						if _, err := p.Get(rng.Intn(numPages)); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}
