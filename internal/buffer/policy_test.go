package buffer

import (
	"math/rand"
	"testing"
)

// --- 2Q ---

func TestTwoQQueueTransitions(t *testing.T) {
	// capacity 3, Kin 2, Kout 4: small enough to trace by hand.
	q := NewTwoQK(3, 16, 2, 4)
	for _, p := range []int{0, 1, 2} {
		if q.Access(p) {
			t.Fatalf("first access of %d hit", p)
		}
	}
	// A1in = [2 1 0]; over Kin, so the next eviction drains its tail.
	if v, ok := q.Victim(); !ok || v != 0 {
		t.Fatalf("Victim = %d,%v, want 0", v, ok)
	}
	if q.Access(3) {
		t.Fatal("access of 3 hit")
	}
	if q.Contains(0) {
		t.Fatal("0 still resident after eviction")
	}
	// 0 is now a ghost: re-access promotes it to Am (still a miss).
	if q.Access(0) {
		t.Fatal("ghost re-access of 0 counted as hit")
	}
	if !q.Contains(0) {
		t.Fatal("0 not resident after ghost promotion")
	}
	if q.Access(0) != true {
		t.Fatal("Am page 0 did not hit")
	}
	// A1in hits do not refresh FIFO position (correlated-reference
	// filter): 2 hits but stays in place.
	if !q.Access(2) {
		t.Fatal("A1in page 2 did not hit")
	}
	hits, misses, evictions := q.Stats()
	if hits != 2 || misses != 5 || evictions != 2 {
		t.Fatalf("stats = %d/%d/%d, want 2/5/2", hits, misses, evictions)
	}
}

func TestTwoQGhostTrim(t *testing.T) {
	// Kout 1: only the most recent ghost survives.
	q := NewTwoQK(2, 16, 1, 1)
	q.Access(0)
	q.Access(1)
	q.Access(2) // evicts 0 -> ghost
	q.Access(3) // evicts 1 -> ghost, trims ghost 0
	if q.where[0] != qNone {
		t.Fatal("ghost 0 not trimmed past Kout")
	}
	if q.where[1] != qA1out {
		t.Fatal("ghost 1 missing")
	}
	// 0 lost its ghost: re-access is a cold miss into A1in, not Am.
	q.Access(4) // evict 2 first so there is room to observe placement
	q.Access(0)
	if q.where[0] != qA1in {
		t.Fatalf("re-access of trimmed ghost placed in %d, want A1in", q.where[0])
	}
}

func TestTwoQAmEvictionLeavesNoGhost(t *testing.T) {
	q := NewTwoQK(2, 16, 1, 4)
	q.Access(0)
	q.Access(1)
	q.Access(2)            // evicts 0 (A1in over Kin) -> ghost
	q.Access(0)            // ghost -> Am, evicts 1 -> ghost; resident {0(Am), 2(A1in)}
	q.Access(3)            // A1in at Kin=1: evicts 2 -> ghost
	q.Access(2)            // ghost -> Am, evicts 3 -> ghost; resident {0, 2} both Am
	q.Access(4)            // A1in empty -> evicts Am tail 0, NO ghost
	if q.where[0] != qNone {
		t.Fatalf("Am eviction left state %d for page 0, want none", q.where[0])
	}
	if q.Access(0) {
		t.Fatal("evicted Am page 0 hit")
	}
	if q.where[0] != qA1in {
		t.Fatal("re-access of evicted Am page did not go through A1in")
	}
}

func TestTwoQDefaultTuning(t *testing.T) {
	q := NewTwoQ(16, 64)
	if q.Kin() != 4 || q.Kout() != 8 {
		t.Fatalf("Kin/Kout = %d/%d, want 4/8 (capacity/4, capacity/2)", q.Kin(), q.Kout())
	}
	q = NewTwoQ(1, 4)
	if q.Kin() != 1 || q.Kout() != 1 {
		t.Fatalf("Kin/Kout = %d/%d, want 1/1 at capacity 1", q.Kin(), q.Kout())
	}
}

func TestTwoQPinning(t *testing.T) {
	q := NewTwoQK(3, 16, 1, 2)
	if err := q.Pin(5); err != nil {
		t.Fatal(err)
	}
	_, misses, _ := q.Stats()
	if misses != 1 {
		t.Fatalf("pin of absent page counted %d misses, want 1", misses)
	}
	for i := 0; i < 10; i++ {
		if !q.Access(5) {
			t.Fatal("pinned page missed")
		}
	}
	q.Access(0)
	q.Access(1)
	q.Access(2) // must evict around the pinned page
	if !q.Contains(5) {
		t.Fatal("pinned page evicted")
	}
	q.Unpin(5)
	if q.where[5] != qAm {
		t.Fatal("unpinned page not returned to Am")
	}
}

// --- Clock-Pro ---

func TestClockProBasics(t *testing.T) {
	c := NewClockPro(2, 16)
	if c.Access(0) || c.Access(1) {
		t.Fatal("cold miss hit")
	}
	if !c.Access(0) {
		t.Fatal("resident page missed")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
	if c.Len() != 2 || !c.Full() {
		t.Fatal("cache not full after two inserts")
	}
}

func TestClockProGhostPromotion(t *testing.T) {
	// capacity 4 keeps hotTarget positive after the ghost hit grows the
	// cold allocation (at capacity 2 the adaptation legitimately demotes
	// the promoted page straight back to cold).
	c := NewClockPro(4, 16)
	for p := 0; p < 4; p++ {
		c.Access(p)
	}
	c.Access(4) // evicts 0 (oldest unreferenced cold, in test) -> ghost
	if c.Contains(0) {
		t.Fatal("0 resident after eviction")
	}
	if c.state[0] != cpGhost {
		t.Fatal("evicted in-test page 0 left no ghost")
	}
	if c.Access(0) {
		t.Fatal("ghost re-access of 0 counted as hit")
	}
	if !c.Contains(0) || c.state[0] != cpHot {
		t.Fatalf("ghost re-access did not promote 0 to hot (state %d)", c.state[0])
	}
	if !c.Access(0) {
		t.Fatal("promoted page 0 missed")
	}
	checkClockProRing(t, c)
}

func TestClockProVictimStableAcrossPeeks(t *testing.T) {
	c := NewClockPro(4, 64)
	for p := 0; p < 4; p++ {
		c.Access(p)
	}
	v1, ok1 := c.Victim()
	v2, ok2 := c.Victim()
	if !ok1 || !ok2 || v1 != v2 {
		t.Fatalf("Victim not stable: %d,%v then %d,%v", v1, ok1, v2, ok2)
	}
	var evicted []int
	c.SetOnEvict(func(p int) { evicted = append(evicted, p) })
	c.Access(9) // miss: must evict exactly the peeked victim
	if len(evicted) != 1 || evicted[0] != v1 {
		t.Fatalf("evicted %v, peeked %d", evicted, v1)
	}
}

func TestClockProPinning(t *testing.T) {
	c := NewClockPro(3, 32)
	if err := c.Pin(7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Access(i % 8)
	}
	if !c.Contains(7) {
		t.Fatal("pinned page evicted")
	}
	if !c.Access(7) {
		t.Fatal("pinned page missed")
	}
	c.Unpin(7)
	if c.state[7] != cpCold || !c.inTest[7] {
		t.Fatal("unpinned page not returned as cold page in test")
	}
	checkClockProRing(t, c)
}

func TestClockProRemove(t *testing.T) {
	c := NewClockPro(3, 16)
	c.Access(0)
	c.Access(1)
	if !c.Remove(0) {
		t.Fatal("Remove of resident page failed")
	}
	if c.Contains(0) || c.state[0] != cpNone {
		t.Fatal("removed page still tracked")
	}
	if c.Remove(0) {
		t.Fatal("Remove of absent page succeeded")
	}
	_, _, evictions := c.Stats()
	if evictions != 0 {
		t.Fatalf("Remove counted %d evictions", evictions)
	}
	checkClockProRing(t, c)
}

func TestClockProRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		capacity := 1 + rng.Intn(12)
		numPages := capacity + 1 + rng.Intn(80)
		c := NewClockPro(capacity, numPages)
		pinned := map[int]bool{}
		var accesses, expectHits uint64
		for i := 0; i < 600; i++ {
			p := rng.Intn(numPages)
			switch op := rng.Intn(10); {
			case op < 7:
				if pinned[p] || c.Contains(p) {
					expectHits++
				}
				c.Access(p)
				accesses++
				if !c.Contains(p) {
					t.Fatal("page absent right after access")
				}
			case op == 7 && len(pinned) < capacity-1:
				if err := c.Pin(p); err != nil {
					t.Fatal(err)
				}
				if !pinned[p] {
					pinned[p] = true
					accesses++ // absent pin counts a miss... only if it was absent
				}
			case op == 8:
				if pinned[p] {
					c.Unpin(p)
					delete(pinned, p)
				}
			default:
				if !pinned[p] {
					c.Remove(p)
				}
			}
			if c.Len() > capacity {
				t.Fatalf("Len %d > capacity %d", c.Len(), capacity)
			}
			checkClockProRing(t, c)
		}
		for p := range pinned {
			if !c.Access(p) {
				t.Fatal("pinned page missed")
			}
		}
	}
}

// checkClockProRing validates the clock ring against the counts: the
// ring is a closed doubly-linked cycle whose per-state population
// matches nHot/nCold/nGhost, residency adds up, and the ghost set is
// bounded.
func checkClockProRing(t *testing.T, c *ClockPro) {
	t.Helper()
	nHot, nCold, nGhost := 0, 0, 0
	if c.oldest != sentinel {
		p := c.oldest
		for i := 0; ; i++ {
			if i > c.numPages+1 {
				t.Fatal("ring walk did not close")
			}
			switch c.state[p] {
			case cpHot:
				nHot++
			case cpCold:
				nCold++
			case cpGhost:
				nGhost++
			default:
				t.Fatalf("ring entry %d has state none", p)
			}
			if c.next[c.prev[p]] != p || c.prev[c.next[p]] != p {
				t.Fatalf("broken links at %d", p)
			}
			p = c.next[p]
			if p == c.oldest {
				break
			}
		}
	}
	if nHot != c.nHot || nCold != c.nCold || nGhost != c.nGhost {
		t.Fatalf("ring counts %d/%d/%d != tracked %d/%d/%d", nHot, nCold, nGhost, c.nHot, c.nCold, c.nGhost)
	}
	if c.nHot+c.nCold+c.nPinned != c.size {
		t.Fatalf("residency %d+%d+%d != size %d", c.nHot, c.nCold, c.nPinned, c.size)
	}
	if c.size > c.capacity {
		t.Fatalf("size %d > capacity %d", c.size, c.capacity)
	}
	if c.nGhost > c.capacity {
		t.Fatalf("ghosts %d > capacity %d", c.nGhost, c.capacity)
	}
}

// --- cross-policy contracts ---

// Every policy must evict exactly the page Victim peeked when the only
// intervening mutation is the faulting access — the pool's dirty
// write-back protocol depends on it.
func TestPolicyVictimEvictContract(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			factory, err := FactoryFor(name)
			if err != nil {
				t.Fatal(err)
			}
			p := factory(8, 64)
			var evicted []int
			p.SetOnEvict(func(pg int) { evicted = append(evicted, pg) })
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 4000; i++ {
				pg := rng.Intn(64)
				want, wantOK := 0, false
				if p.Full() && !p.Contains(pg) {
					want, wantOK = p.Victim()
					if !wantOK {
						t.Fatal("full unpinned cache has no victim")
					}
				}
				before := len(evicted)
				p.Access(pg)
				if wantOK {
					if len(evicted) != before+1 {
						t.Fatalf("op %d: miss on full cache evicted %d pages", i, len(evicted)-before)
					}
					if evicted[before] != want {
						t.Fatalf("op %d: evicted %d, Victim peeked %d", i, evicted[before], want)
					}
				}
				if p.Len() > p.Capacity() {
					t.Fatalf("Len %d > capacity", p.Len())
				}
			}
			hits, misses, _ := p.Stats()
			if hits+misses != 4000 {
				t.Fatalf("hits+misses = %d, want 4000", hits+misses)
			}
		})
	}
}

// Every policy must keep pinned pages resident and always hitting, obey
// capacity, and reject pinning past capacity.
func TestPolicyPinContract(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			factory, err := FactoryFor(name)
			if err != nil {
				t.Fatal(err)
			}
			const capacity = 6
			p := factory(capacity, 48)
			for _, pg := range []int{10, 20, 30} {
				if err := p.Pin(pg); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 2000; i++ {
				p.Access(rng.Intn(48))
				for _, pg := range []int{10, 20, 30} {
					if !p.Contains(pg) {
						t.Fatalf("pinned page %d not resident", pg)
					}
				}
				if p.Len() > capacity {
					t.Fatalf("Len %d > capacity", p.Len())
				}
			}
			for _, pg := range []int{10, 20, 30} {
				if !p.Access(pg) {
					t.Fatalf("pinned page %d missed", pg)
				}
			}
			// Fill the remaining slots with pins, then one more must fail.
			for _, pg := range []int{40, 41, 42} {
				if err := p.Pin(pg); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Pin(43); err == nil {
				t.Fatal("pin past capacity succeeded")
			}
		})
	}
}

// Install must make pages resident with eviction accounting but no
// hit/miss accounting, for every policy.
func TestPolicyInstallContract(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			factory, err := FactoryFor(name)
			if err != nil {
				t.Fatal(err)
			}
			p := factory(4, 32)
			for pg := 0; pg < 6; pg++ {
				p.Install(pg)
				if !p.Contains(pg) {
					t.Fatalf("page %d absent after Install", pg)
				}
			}
			hits, misses, evictions := p.Stats()
			if hits != 0 || misses != 0 {
				t.Fatalf("Install counted %d hits / %d misses", hits, misses)
			}
			if evictions != 2 {
				t.Fatalf("evictions = %d, want 2", evictions)
			}
			if p.Len() != 4 {
				t.Fatalf("Len = %d, want 4", p.Len())
			}
		})
	}
}

func TestFactoryForUnknown(t *testing.T) {
	if _, err := FactoryFor("arc"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
	for _, name := range PolicyNames() {
		if _, err := FactoryFor(name); err != nil {
			t.Fatalf("registered policy %q rejected: %v", name, err)
		}
	}
}

// Sharded with one shard must be access-for-access identical to the
// policy it wraps.
func TestShardedSingleShardIdentity(t *testing.T) {
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			factory, _ := FactoryFor(name)
			ref := factory(8, 64)
			sh := NewSharded(factory, 8, 64, 1)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 3000; i++ {
				pg := rng.Intn(64)
				if ref.Access(pg) != sh.Access(pg) {
					t.Fatalf("op %d: outcome diverged", i)
				}
			}
			rh, rm, re := ref.Stats()
			sh2, sm, se := sh.Stats()
			if rh != sh2 || rm != sm || re != se {
				t.Fatalf("stats diverged: %d/%d/%d vs %d/%d/%d", rh, rm, re, sh2, sm, se)
			}
		})
	}
}

// Sharding changes which pages compete for which frames but must keep
// the counters consistent and the per-shard capacities summing to the
// configured total.
func TestShardedMultiShardAccounting(t *testing.T) {
	factory, _ := FactoryFor("lru")
	sh := NewSharded(factory, 10, 100, 4)
	if sh.Capacity() != 10 {
		t.Fatalf("Capacity = %d, want 10", sh.Capacity())
	}
	if sh.Shards() != 4 {
		t.Fatalf("Shards = %d", sh.Shards())
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		sh.Access(rng.Intn(100))
	}
	hits, misses, _ := sh.Stats()
	if hits+misses != 5000 {
		t.Fatalf("hits+misses = %d, want 5000", hits+misses)
	}
	if sh.Len() > 10 {
		t.Fatalf("Len %d > capacity", sh.Len())
	}
}
