package buffer

import (
	"errors"
	"sync"
	"testing"
)

func TestSyncPoolBasics(t *testing.T) {
	src := &fakeSource{pageSize: 32, numPages: 20}
	p := NewSyncPool(src, 4, 20)
	frame, err := p.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != 7 {
		t.Fatalf("content = %d", frame[0])
	}
	// The returned slice is a copy: mutating it must not poison the pool.
	frame[0] = 99
	again, err := p.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != 7 {
		t.Error("caller mutation leaked into the buffer")
	}
	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if p.Capacity() != 4 || p.Resident() != 1 {
		t.Errorf("capacity/resident = %d/%d", p.Capacity(), p.Resident())
	}
}

func TestSyncPoolView(t *testing.T) {
	src := &fakeSource{pageSize: 32, numPages: 20}
	p := NewSyncPool(src, 4, 20)
	called := false
	err := p.View(3, func(frame []byte) error {
		called = true
		if frame[0] != 3 {
			t.Errorf("frame content %d", frame[0])
		}
		return nil
	})
	if err != nil || !called {
		t.Fatalf("View: %v, called=%v", err, called)
	}
	wantErr := errors.New("sentinel")
	if err := p.View(3, func([]byte) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("View error = %v", err)
	}
}

func TestSyncPoolPinning(t *testing.T) {
	src := &fakeSource{pageSize: 32, numPages: 20}
	p := NewSyncPool(src, 2, 20)
	if err := p.Pin(5); err != nil {
		t.Fatal(err)
	}
	p.Get(1)
	p.Get(2)
	reads := src.reads
	if _, err := p.Get(5); err != nil {
		t.Fatal(err)
	}
	if src.reads != reads {
		t.Error("pinned page re-read")
	}
	p.Unpin(5)
	p.ResetStats()
	if h, m, _ := p.Stats(); h != 0 || m != 0 {
		t.Error("ResetStats failed")
	}
}

// Hammer the pool from many goroutines; run with -race in CI. Content
// integrity is checked on every read.
func TestSyncPoolConcurrent(t *testing.T) {
	src := &fakeSource{pageSize: 64, numPages: 50}
	p := NewSyncPool(src, 8, 50)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				page := (g*31 + i*17) % 50
				frame, err := p.Get(page)
				if err != nil {
					errs <- err
					return
				}
				if frame[0] != byte(page) || frame[63] != byte(page) {
					errs <- errors.New("corrupt frame under concurrency")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses, _ := p.Stats()
	if hits+misses != 8*2000 {
		t.Errorf("accounted %d of %d accesses", hits+misses, 8*2000)
	}
}

// Mixed-operation stress: readers, zero-copy viewers, pin/unpin cyclers,
// and stats pollers all share one pool. The assertions are content
// integrity and sane accounting; the real check is the race detector,
// which CI runs over this package (-race turns any unsynchronized access
// into a failure).
func TestSyncPoolStressMixedOps(t *testing.T) {
	const (
		numPages = 40
		capacity = 16
		iters    = 1500
	)
	src := &fakeSource{pageSize: 64, numPages: numPages}
	p := NewSyncPool(src, capacity, numPages)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Readers: full-copy Get over the whole page range.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				page := (g*13 + i*7) % numPages
				frame, err := p.Get(page)
				if err != nil {
					fail(err)
					return
				}
				if frame[0] != byte(page) || frame[len(frame)-1] != byte(page) {
					fail(errors.New("Get returned corrupt frame"))
					return
				}
			}
		}(g)
	}

	// Viewers: zero-copy reads under the pool lock.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				page := (g*19 + i*11) % numPages
				err := p.View(page, func(frame []byte) error {
					if frame[0] != byte(page) {
						return errors.New("View saw corrupt frame")
					}
					return nil
				})
				if err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}

	// Pinners: cycle pins over disjoint page pairs, reading the pinned
	// page while it is guaranteed resident. Disjoint pairs keep the
	// total concurrent pin count far below capacity.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pages := [2]int{2 * g, 2*g + 1}
			for i := 0; i < iters; i++ {
				page := pages[i%2]
				if err := p.Pin(page); err != nil {
					fail(err)
					return
				}
				frame, err := p.Get(page)
				if err != nil {
					fail(err)
					return
				}
				if frame[0] != byte(page) {
					fail(errors.New("pinned page corrupt"))
					return
				}
				p.Unpin(page)
			}
		}(g)
	}

	// Stats pollers: exercise every read-only accessor concurrently.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				hits, misses, evictions := p.Stats()
				if misses > hits+misses || evictions > misses {
					fail(errors.New("impossible stats snapshot"))
					return
				}
				if r := p.HitRatio(); r < 0 || r > 1 {
					fail(errors.New("hit ratio outside [0,1]"))
					return
				}
				if res := p.Resident(); res < 0 || res > numPages {
					fail(errors.New("resident count out of range"))
					return
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent state: accounting covers every faulting access and the
	// pool still serves correct content.
	hits, misses, evictions := p.Stats()
	if total := hits + misses; total < 4*iters {
		t.Errorf("accounted %d accesses, expected at least %d", total, 4*iters)
	}
	if evictions > misses {
		t.Errorf("evictions %d exceed misses %d", evictions, misses)
	}
	frame, err := p.Get(numPages - 1)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != byte(numPages-1) {
		t.Error("pool corrupt after stress")
	}
}
