package buffer

import (
	"errors"
	"sync"
	"testing"
)

func TestSyncPoolBasics(t *testing.T) {
	src := &fakeSource{pageSize: 32, numPages: 20}
	p := NewSyncPool(src, 4, 20)
	frame, err := p.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != 7 {
		t.Fatalf("content = %d", frame[0])
	}
	// The returned slice is a copy: mutating it must not poison the pool.
	frame[0] = 99
	again, err := p.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != 7 {
		t.Error("caller mutation leaked into the buffer")
	}
	hits, misses, _ := p.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
	if p.Capacity() != 4 || p.Resident() != 1 {
		t.Errorf("capacity/resident = %d/%d", p.Capacity(), p.Resident())
	}
}

func TestSyncPoolView(t *testing.T) {
	src := &fakeSource{pageSize: 32, numPages: 20}
	p := NewSyncPool(src, 4, 20)
	called := false
	err := p.View(3, func(frame []byte) error {
		called = true
		if frame[0] != 3 {
			t.Errorf("frame content %d", frame[0])
		}
		return nil
	})
	if err != nil || !called {
		t.Fatalf("View: %v, called=%v", err, called)
	}
	wantErr := errors.New("sentinel")
	if err := p.View(3, func([]byte) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("View error = %v", err)
	}
}

func TestSyncPoolPinning(t *testing.T) {
	src := &fakeSource{pageSize: 32, numPages: 20}
	p := NewSyncPool(src, 2, 20)
	if err := p.Pin(5); err != nil {
		t.Fatal(err)
	}
	p.Get(1)
	p.Get(2)
	reads := src.reads
	if _, err := p.Get(5); err != nil {
		t.Fatal(err)
	}
	if src.reads != reads {
		t.Error("pinned page re-read")
	}
	p.Unpin(5)
	p.ResetStats()
	if h, m, _ := p.Stats(); h != 0 || m != 0 {
		t.Error("ResetStats failed")
	}
}

// Hammer the pool from many goroutines; run with -race in CI. Content
// integrity is checked on every read.
func TestSyncPoolConcurrent(t *testing.T) {
	src := &fakeSource{pageSize: 64, numPages: 50}
	p := NewSyncPool(src, 8, 50)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				page := (g*31 + i*17) % 50
				frame, err := p.Get(page)
				if err != nil {
					errs <- err
					return
				}
				if frame[0] != byte(page) || frame[63] != byte(page) {
					errs <- errors.New("corrupt frame under concurrency")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses, _ := p.Stats()
	if hits+misses != 8*2000 {
		t.Errorf("accounted %d of %d accesses", hits+misses, 8*2000)
	}
}
