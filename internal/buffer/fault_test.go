package buffer

import (
	"errors"
	"fmt"
	"testing"
)

// faultySource fails reads of chosen pages (optionally only the first
// n attempts) and otherwise serves a recognizable pattern.
type faultySource struct {
	pageSize  int
	failPages map[int]int // page -> remaining failures (-1 = forever)
	reads     int
}

var errDisk = errors.New("simulated disk error")

func (s *faultySource) PageSize() int { return s.pageSize }

func (s *faultySource) ReadPage(page int, dst []byte) error {
	s.reads++
	if left, ok := s.failPages[page]; ok && left != 0 {
		if left > 0 {
			s.failPages[page] = left - 1
		}
		return fmt.Errorf("reading page %d: %w", page, errDisk)
	}
	for i := range dst[:s.pageSize] {
		dst[i] = byte(page)
	}
	return nil
}

func TestPoolPropagatesSourceErrors(t *testing.T) {
	src := &faultySource{pageSize: 64, failPages: map[int]int{3: 1}}
	p := NewPool(src, 4, 10)

	// The failed read surfaces with the source error intact in the chain
	// (the storage layer classifies transient vs permanent through it).
	_, err := p.Get(3)
	if err == nil {
		t.Fatal("failed read returned no error")
	}
	if !errors.Is(err, errDisk) {
		t.Fatalf("source error lost from chain: %v", err)
	}
	if p.FailedReads() != 1 {
		t.Errorf("FailedReads = %d, want 1", p.FailedReads())
	}
	// The failure left no garbage frame resident.
	if p.Resident() != 0 {
		t.Errorf("resident %d after failed read", p.Resident())
	}
	// A retry (the injected failure was one-shot) succeeds and delivers
	// correct contents.
	frame, err := p.Get(3)
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if frame[0] != 3 {
		t.Errorf("frame content %d", frame[0])
	}
	if p.Resident() != 1 {
		t.Errorf("resident %d after recovery", p.Resident())
	}
	// Both attempts were physical reads, so both count as misses.
	_, misses, _ := p.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (failed read still issued I/O)", misses)
	}
}

func TestPoolPinPropagatesSourceErrors(t *testing.T) {
	src := &faultySource{pageSize: 64, failPages: map[int]int{2: -1}}
	p := NewPool(src, 4, 10)
	if err := p.Pin(2); err == nil || !errors.Is(err, errDisk) {
		t.Fatalf("pin of unreadable page = %v", err)
	}
	if p.FailedReads() != 1 {
		t.Errorf("FailedReads = %d", p.FailedReads())
	}
	// The failed pin left the page neither pinned nor resident: it can
	// still be pinned later if the medium heals.
	if p.Resident() != 0 {
		t.Errorf("resident %d after failed pin", p.Resident())
	}
	delete(src.failPages, 2)
	if err := p.Pin(2); err != nil {
		t.Fatalf("pin after heal failed: %v", err)
	}
}

func TestPoolFailedReadsSurviveHeavyTraffic(t *testing.T) {
	src := &faultySource{pageSize: 64, failPages: map[int]int{7: -1}}
	p := NewPool(src, 3, 20)
	var failures int
	for i := 0; i < 200; i++ {
		if _, err := p.Get(i % 20); err != nil {
			if i%20 != 7 {
				t.Fatalf("healthy page %d failed: %v", i%20, err)
			}
			failures++
		}
	}
	if failures != 10 {
		t.Errorf("failures = %d, want 10", failures)
	}
	if p.FailedReads() != 10 {
		t.Errorf("FailedReads = %d, want 10", p.FailedReads())
	}
	if p.Resident() > 3 {
		t.Errorf("resident %d exceeds capacity", p.Resident())
	}
	p.ResetStats()
	if p.FailedReads() != 0 {
		t.Errorf("ResetStats kept FailedReads = %d", p.FailedReads())
	}
}
