package buffer

import (
	"errors"
	"fmt"
	"testing"
)

// fakeSource is a PageSource whose page p is filled with byte(p); it can
// be told to fail for specific pages.
type fakeSource struct {
	pageSize int
	numPages int
	reads    int
	failOn   map[int]bool
}

func (f *fakeSource) PageSize() int { return f.pageSize }

func (f *fakeSource) ReadPage(page int, dst []byte) error {
	if f.failOn[page] {
		return errors.New("injected read failure")
	}
	if page < 0 || page >= f.numPages {
		return fmt.Errorf("page %d out of range", page)
	}
	for i := range dst[:f.pageSize] {
		dst[i] = byte(page)
	}
	f.reads++
	return nil
}

func TestPoolServesContent(t *testing.T) {
	src := &fakeSource{pageSize: 64, numPages: 10}
	p := NewPool(src, 3, 10)
	for _, page := range []int{0, 5, 9, 5, 0} {
		frame, err := p.Get(page)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) != 64 || frame[0] != byte(page) || frame[63] != byte(page) {
			t.Fatalf("page %d content wrong", page)
		}
	}
	if src.reads != 3 {
		t.Errorf("source reads = %d, want 3 (two hits)", src.reads)
	}
	hits, misses, _ := p.Stats()
	if hits != 2 || misses != 3 {
		t.Errorf("stats = %d/%d", hits, misses)
	}
}

func TestPoolEvictionRereads(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 10}
	p := NewPool(src, 2, 10)
	p.Get(1)
	p.Get(2)
	p.Get(3) // evicts 1
	if _, err := p.Get(1); err != nil {
		t.Fatal(err)
	}
	if src.reads != 4 {
		t.Errorf("reads = %d, want 4", src.reads)
	}
	if p.Resident() != 2 || p.Capacity() != 2 {
		t.Errorf("resident/capacity = %d/%d", p.Resident(), p.Capacity())
	}
}

func TestPoolFrameRecycling(t *testing.T) {
	src := &fakeSource{pageSize: 32, numPages: 100}
	p := NewPool(src, 2, 100)
	// Cycle through many pages; the pool should not grow frames unboundedly
	// (observable indirectly: contents stay correct after heavy recycling).
	for i := 0; i < 100; i++ {
		frame, err := p.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if frame[0] != byte(i) {
			t.Fatalf("page %d served stale frame %d", i, frame[0])
		}
	}
}

func TestPoolReadFailureBacksOut(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 10, failOn: map[int]bool{7: true}}
	p := NewPool(src, 3, 10)
	if _, err := p.Get(7); err == nil {
		t.Fatal("expected read error")
	}
	// The failed page must not be resident; fixing the source makes it
	// readable without serving garbage.
	src.failOn = nil
	frame, err := p.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != 7 {
		t.Fatalf("served garbage after failed read: %d", frame[0])
	}
}

func TestPoolGetOutOfRange(t *testing.T) {
	p := NewPool(&fakeSource{pageSize: 16, numPages: 4}, 2, 4)
	if _, err := p.Get(-1); err == nil {
		t.Error("negative page accepted")
	}
	if _, err := p.Get(4); err == nil {
		t.Error("out-of-range page accepted")
	}
}

func TestPoolPinning(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 10}
	p := NewPool(src, 2, 10)
	if err := p.Pin(4); err != nil {
		t.Fatal(err)
	}
	reads := src.reads
	p.Get(1)
	p.Get(2) // eviction happens among unpinned pages only
	frame, err := p.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != 4 {
		t.Fatal("pinned frame corrupted")
	}
	if src.reads != reads+2 {
		t.Errorf("pinned page re-read from source (%d reads)", src.reads)
	}
	// Re-pin is a no-op; pin failure when slots exhausted.
	if err := p.Pin(4); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(5); err != nil {
		t.Fatal(err)
	}
	if err := p.Pin(6); err == nil {
		t.Error("overpin accepted")
	}
	p.Unpin(5)
	if err := p.Pin(6); err != nil {
		t.Errorf("pin after unpin failed: %v", err)
	}
}

func TestPoolPinReadFailure(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 10, failOn: map[int]bool{3: true}}
	p := NewPool(src, 4, 10)
	if err := p.Pin(3); err == nil {
		t.Fatal("pin of unreadable page succeeded")
	}
	src.failOn = nil
	// The failed pin must not leave the page pinned or resident.
	frame, err := p.Get(3)
	if err != nil || frame[0] != 3 {
		t.Fatalf("recovery read: %v, frame[0]=%v", err, frame[0])
	}
}

func TestPoolHitRatioAndReset(t *testing.T) {
	src := &fakeSource{pageSize: 16, numPages: 10}
	p := NewPool(src, 4, 10)
	p.Get(1)
	p.Get(1)
	if got := p.HitRatio(); got != 0.5 {
		t.Errorf("HitRatio = %g", got)
	}
	p.ResetStats()
	if got := p.HitRatio(); got != 0 {
		t.Errorf("HitRatio after reset = %g", got)
	}
}
