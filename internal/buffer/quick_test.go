package buffer

import (
	"testing"
	"testing/quick"
)

// Property (testing/quick): for arbitrary access traces, the intrusive
// LRU matches the reference implementation hit for hit, never exceeds
// capacity, and its counters add up.
func TestQuickLRUMatchesReference(t *testing.T) {
	f := func(trace []uint16, capSeed, pageSeed uint8) bool {
		capacity := 1 + int(capSeed%16)
		numPages := capacity + 1 + int(pageSeed%64)
		l := NewLRU(capacity, numPages)
		ref := newRefLRU(capacity)
		var accesses uint64
		for _, raw := range trace {
			p := int(raw) % numPages
			if l.Access(p) != ref.access(p) {
				return false
			}
			accesses++
			if l.Len() > capacity {
				return false
			}
		}
		hits, misses, _ := l.Stats()
		return hits+misses == accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: pinning any subset of pages never changes the hit/miss
// outcome for the pinned pages (always hits after the pin), and unpinned
// behaviour still respects capacity.
func TestQuickLRUPinnedAlwaysHit(t *testing.T) {
	f := func(trace []uint16, pinned []uint8, capSeed uint8) bool {
		capacity := 4 + int(capSeed%16)
		const numPages = 128
		l := NewLRU(capacity, numPages)
		pinSet := map[int]bool{}
		for _, p := range pinned {
			page := int(p) % numPages
			if len(pinSet) >= capacity-2 { // leave room for regular traffic
				break
			}
			if l.Pin(page) != nil {
				return false
			}
			pinSet[page] = true
		}
		for _, raw := range trace {
			p := int(raw) % numPages
			hit := l.Access(p)
			if pinSet[p] && !hit {
				return false
			}
			if l.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
