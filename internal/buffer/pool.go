package buffer

import "fmt"

// PageSource supplies page contents on buffer misses. It is satisfied by
// the disk managers of internal/storage; declaring it here keeps the
// dependency pointing from storage to buffer only at the call site.
type PageSource interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// ReadPage fills dst (of PageSize bytes) with the page's contents.
	ReadPage(page int, dst []byte) error
}

// Pool is an LRU page buffer serving page contents from a PageSource —
// the database buffer pool the paper assumes around the R-tree. Every
// miss costs one PageSource read, which is the "disk access" the paper's
// EDT metric counts.
//
// Pool is intended for read-mostly index workloads: pages are immutable
// once written (the R-tree is rebuilt or re-saved to change it), so there
// is no dirty-page tracking or write-back.
type Pool struct {
	src    PageSource
	lru    *LRU
	frames [][]byte
	free   [][]byte // recycled frames from evictions
	// readFailures counts source reads that returned an error. Failed
	// reads still count as misses (a physical read was issued) but leave
	// no frame resident, so callers watching for degraded storage can
	// tell "cold buffer" apart from "sick disk".
	readFailures uint64
	metrics      *Metrics
}

// SetMetrics attaches an obs mirror: buffer events flow to the mirror's
// registry alongside the pool's own counters. Nil detaches.
func (p *Pool) SetMetrics(m *Metrics) {
	p.metrics = m
	p.lru.SetMetrics(m)
}

func (p *Pool) noteReadFailure() {
	p.readFailures++
	p.metrics.onReadFailure()
}

// NewPool returns a pool of the given capacity (in pages) over pages
// [0, numPages) of src.
func NewPool(src PageSource, capacity, numPages int) *Pool {
	p := &Pool{
		src:    src,
		lru:    NewLRU(capacity, numPages),
		frames: make([][]byte, numPages),
	}
	p.lru.OnEvict = func(page int) {
		p.free = append(p.free, p.frames[page])
		p.frames[page] = nil
	}
	return p
}

// Get returns the contents of page, reading it from the source on a miss.
// The returned slice aliases the buffer frame: it is valid until the page
// is evicted and must not be modified.
func (p *Pool) Get(page int) ([]byte, error) {
	if page < 0 || page >= len(p.frames) {
		return nil, fmt.Errorf("buffer: page %d outside [0,%d)", page, len(p.frames))
	}
	if p.lru.Access(page) {
		return p.frames[page], nil
	}
	frame := p.takeFrame()
	if err := p.src.ReadPage(page, frame); err != nil {
		// Back out the fault so a failed read never leaves a garbage
		// frame resident. The source error stays in the chain so the
		// storage layer's fault classification (transient vs permanent)
		// survives the trip through the pool.
		p.noteReadFailure()
		p.lru.Remove(page)
		p.free = append(p.free, frame)
		return nil, fmt.Errorf("buffer: reading page %d: %w", page, err)
	}
	p.frames[page] = frame
	return frame, nil
}

func (p *Pool) takeFrame() []byte {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	//lint:allow hotalloc frame allocation is the one-time cost of growing the buffer
	return make([]byte, p.src.PageSize())
}

// The methods below split Get's fault path into phases so a locked
// wrapper (SyncPool) can interleave its own synchronization: probe the
// cache (TryGet), read the source with no pool state touched (readPage),
// then commit the fault (install) or back it out (failedFault) — without
// ever holding a state lock across the source read.

// TryGet returns the frame if page is resident, counting a hit; on a miss
// it performs no accounting, leaving the fault to the caller. Pages being
// concurrently faulted (resident but frameless) report as missing so
// callers route through the fault path.
func (p *Pool) TryGet(page int) ([]byte, bool, error) {
	if page < 0 || page >= len(p.frames) {
		return nil, false, fmt.Errorf("buffer: page %d outside [0,%d)", page, len(p.frames))
	}
	if !p.lru.Contains(page) || p.frames[page] == nil {
		return nil, false, nil
	}
	p.lru.Access(page) // resident: counts the hit and touches recency
	return p.frames[page], true, nil
}

// readPage fills dst from the source. It touches no pool state, so a
// wrapper may call it without holding the lock guarding the pool.
func (p *Pool) readPage(page int, dst []byte) error {
	return p.src.ReadPage(page, dst)
}

// install commits a successful fault: counts the miss (evicting if
// needed) and copies data into a frame.
func (p *Pool) install(page int, data []byte) {
	if p.lru.Access(page) {
		copy(p.frames[page], data) // lost a fault race: refresh in place
		return
	}
	frame := p.takeFrame()
	copy(frame, data)
	p.frames[page] = frame
}

// failedFault accounts for a fault whose source read failed: the miss
// still counts (a physical read was issued) but nothing stays resident.
// The returned error matches Get's wrapping.
func (p *Pool) failedFault(page int, err error) error {
	p.lru.Access(page)
	p.noteReadFailure()
	p.lru.Remove(page)
	return fmt.Errorf("buffer: reading page %d: %w", page, err)
}

// preparePin pins the page slot and reports whether the caller must read
// its contents (it was not resident). See Pin for single-step use.
func (p *Pool) preparePin(page int) (needRead bool, err error) {
	if page < 0 || page >= len(p.frames) {
		return false, fmt.Errorf("buffer: page %d outside [0,%d)", page, len(p.frames))
	}
	if p.lru.pinned[page] {
		return false, nil
	}
	resident := p.lru.Contains(page)
	if err := p.lru.Pin(page); err != nil {
		return false, err
	}
	return !resident, nil
}

// installPinned stores the contents of a freshly pinned page.
func (p *Pool) installPinned(page int, data []byte) {
	frame := p.takeFrame()
	copy(frame, data)
	p.frames[page] = frame
}

// failedPin backs out preparePin after a failed source read, matching
// Pin's error wrapping.
func (p *Pool) failedPin(page int, err error) error {
	p.noteReadFailure()
	p.lru.Unpin(page)
	p.lru.Remove(page)
	return fmt.Errorf("buffer: pinning page %d: %w", page, err)
}

// Pin makes page permanently resident (reading it if absent).
func (p *Pool) Pin(page int) error {
	if p.lru.pinned[page] {
		return nil
	}
	resident := p.lru.Contains(page)
	if err := p.lru.Pin(page); err != nil {
		return err
	}
	if !resident {
		frame := p.takeFrame()
		if err := p.src.ReadPage(page, frame); err != nil {
			p.noteReadFailure()
			p.lru.Unpin(page)
			p.lru.Remove(page)
			p.free = append(p.free, frame)
			return fmt.Errorf("buffer: pinning page %d: %w", page, err)
		}
		p.frames[page] = frame
	}
	return nil
}

// FailedReads returns how many source reads errored. These reads count
// as misses but deliver no page.
func (p *Pool) FailedReads() uint64 { return p.readFailures }

// Unpin returns a pinned page to LRU management.
func (p *Pool) Unpin(page int) { p.lru.Unpin(page) }

// Stats returns cumulative hits, misses, and evictions. Misses equal the
// number of source reads issued.
func (p *Pool) Stats() (hits, misses, evictions uint64) { return p.lru.Stats() }

// ResetStats zeroes the counters without disturbing contents.
func (p *Pool) ResetStats() {
	p.lru.ResetStats()
	p.readFailures = 0
}

// HitRatio returns the cumulative hit ratio.
func (p *Pool) HitRatio() float64 { return p.lru.HitRatio() }

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.lru.Capacity() }

// Resident returns the number of pages currently buffered.
func (p *Pool) Resident() int { return p.lru.Len() }
