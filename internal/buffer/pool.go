package buffer

import (
	"fmt"
	"slices"
)

// PageSource supplies page contents on buffer misses. It is satisfied by
// the disk managers of internal/storage; declaring it here keeps the
// dependency pointing from storage to buffer only at the call site.
type PageSource interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// ReadPage fills dst (of PageSize bytes) with the page's contents.
	ReadPage(page int, dst []byte) error
}

// PageSink receives dirty-page write-backs. The storage disk managers
// satisfy it; a pool with no sink attached rejects dirty-page operations
// rather than losing writes.
type PageSink interface {
	// WritePage persists the page's contents.
	WritePage(page int, data []byte) error
}

// Pool is a page buffer serving page contents from a PageSource — the
// database buffer pool the paper assumes around the R-tree. Replacement
// decisions delegate to a PoolPolicy (LRU by default; see NewPoolWith).
// Every miss costs one PageSource read, which is the "disk access" the
// paper's EDT metric counts.
//
// The read path treats pages as immutable, matching the paper's
// query-only experiments. The update path adds dirty-page tracking on
// top: Put and MarkDirty flag resident pages as ahead of the source,
// FlushDirty writes them back to the attached PageSink in page order,
// and a fault that must evict a dirty victim writes it back first (the
// write-back failing fails the fault — a dirty page is never silently
// dropped). Crash atomicity is not the pool's job: callers WAL-log a
// batch before putting its pages, so a write-back at any moment is
// redo-covered.
type Pool struct {
	src    PageSource
	sink   PageSink
	policy PoolPolicy
	frames [][]byte
	free   [][]byte // recycled frames from evictions

	dirty     []bool // page -> contents ahead of the source
	dirtyList []int  // pages flagged dirty, unordered, may hold cleaned entries
	nDirty    int

	// dirtyVer is bumped on every Put/MarkDirty of a page. A locked
	// wrapper that copies a dirty frame out, writes it back with no lock
	// held, and then commits the outcome (wroteBackVer) uses it to detect
	// a concurrent re-dirty: a stale write-back must not clear the flag.
	dirtyVer []uint32

	// readFailures counts source reads that returned an error. Failed
	// reads still count as misses (a physical read was issued) but leave
	// no frame resident, so callers watching for degraded storage can
	// tell "cold buffer" apart from "sick disk".
	readFailures uint64
	// failedWrites counts sink writes that returned an error. The page
	// stays resident and dirty, so no data is lost; the operation that
	// needed the write-back surfaces the error.
	failedWrites uint64
	metrics      *Metrics
}

// SetMetrics attaches an obs mirror: buffer events flow to the mirror's
// registry alongside the pool's own counters. Nil detaches.
func (p *Pool) SetMetrics(m *Metrics) {
	p.metrics = m
	p.policy.SetMetrics(m)
}

func (p *Pool) noteReadFailure() {
	p.readFailures++
	p.metrics.onReadFailure()
}

func (p *Pool) noteFailedWrite() {
	p.failedWrites++
	p.metrics.onWriteFailure()
}

// NewPool returns an LRU pool of the given capacity (in pages) over
// pages [0, numPages) of src.
func NewPool(src PageSource, capacity, numPages int) *Pool {
	return NewPoolWith(src, capacity, numPages, func(capacity, numPages int) PoolPolicy {
		return NewLRU(capacity, numPages)
	})
}

// NewPoolWith returns a pool whose replacement decisions are made by the
// policy the factory constructs (see FactoryFor for the built-in names).
func NewPoolWith(src PageSource, capacity, numPages int, factory PolicyFactory) *Pool {
	p := &Pool{
		src:      src,
		policy:   factory(capacity, numPages),
		frames:   make([][]byte, numPages),
		dirty:    make([]bool, numPages),
		dirtyVer: make([]uint32, numPages),
	}
	p.policy.SetOnEvict(func(page int) {
		if p.dirty[page] {
			// Every eviction point writes the victim back first; a dirty
			// page reaching here means the write-back protocol was
			// bypassed and its contents are about to be lost.
			panic(fmt.Sprintf("buffer: evicting dirty page %d", page))
		}
		p.free = append(p.free, p.frames[page])
		p.frames[page] = nil
	})
	return p
}

// SetSink attaches the write-back target for dirty pages; nil detaches.
func (p *Pool) SetSink(sink PageSink) { p.sink = sink }

// Grow extends the pool's page-number space to numPages (no-op if not
// larger). Capacity is unchanged. The update path calls this when node
// splits allocate pages past the tree's original extent.
func (p *Pool) Grow(numPages int) {
	if numPages <= len(p.frames) {
		return
	}
	extra := numPages - len(p.frames)
	p.frames = append(p.frames, make([][]byte, extra)...)
	p.dirty = append(p.dirty, make([]bool, extra)...)
	p.dirtyVer = append(p.dirtyVer, make([]uint32, extra)...)
	p.policy.Grow(numPages)
}

// Get returns the contents of page, reading it from the source on a miss.
// The returned slice aliases the buffer frame: it is valid until the page
// is evicted and must not be modified.
func (p *Pool) Get(page int) ([]byte, error) {
	data, _, err := p.GetTracked(page)
	return data, err
}

// GetTracked is Get plus per-access attribution: whether the page was
// resident and how many dirty victims the miss had to write back.
func (p *Pool) GetTracked(page int) ([]byte, AccessInfo, error) {
	if page < 0 || page >= len(p.frames) {
		return nil, AccessInfo{}, fmt.Errorf("buffer: page %d outside [0,%d)", page, len(p.frames))
	}
	if p.policy.Contains(page) && p.frames[page] != nil {
		p.policy.Access(page)
		return p.frames[page], AccessInfo{Hit: true}, nil
	}
	wrote, err := p.writeBackVictimTracked()
	info := AccessInfo{}
	if wrote {
		info.WriteBacks = 1
	}
	if err != nil {
		return nil, info, err
	}
	p.policy.Access(page)
	frame := p.takeFrame()
	if err := p.src.ReadPage(page, frame); err != nil {
		// Back out the fault so a failed read never leaves a garbage
		// frame resident. The source error stays in the chain so the
		// storage layer's fault classification (transient vs permanent)
		// survives the trip through the pool.
		p.noteReadFailure()
		p.policy.Remove(page)
		p.free = append(p.free, frame)
		return nil, info, fmt.Errorf("buffer: reading page %d: %w", page, err)
	}
	p.frames[page] = frame
	return frame, info, nil
}

func (p *Pool) takeFrame() []byte {
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	//lint:allow hotalloc frame allocation is the one-time cost of growing the buffer
	return make([]byte, p.src.PageSize())
}

// The methods below split Get's fault path into phases so a locked
// wrapper (SyncPool) can interleave its own synchronization: probe the
// cache (TryGet), read the source with no pool state touched (readPage),
// then commit the fault (install) or back it out (failedFault) — without
// ever holding a state lock across the source read.

// TryGet returns the frame if page is resident, counting a hit; on a miss
// it performs no accounting, leaving the fault to the caller. Pages being
// concurrently faulted (resident but frameless) report as missing so
// callers route through the fault path.
func (p *Pool) TryGet(page int) ([]byte, bool, error) {
	if page < 0 || page >= len(p.frames) {
		return nil, false, fmt.Errorf("buffer: page %d outside [0,%d)", page, len(p.frames))
	}
	if !p.policy.Contains(page) || p.frames[page] == nil {
		return nil, false, nil
	}
	p.policy.Access(page) // resident: counts the hit and touches recency
	return p.frames[page], true, nil
}

// readPage fills dst from the source. It touches no pool state, so a
// wrapper may call it without holding the lock guarding the pool.
func (p *Pool) readPage(page int, dst []byte) error {
	return p.src.ReadPage(page, dst)
}

// faultVersion returns page's dirty version. A wrapper about to fault
// page in with no lock held captures it (under the state lock, page not
// resident) and hands it back to install, which uses it to tell a
// harmless duplicate fault from a stale read racing a concurrent Put.
func (p *Pool) faultVersion(page int) uint32 { return p.dirtyVer[page] }

// install commits a successful fault: counts the miss (evicting if
// needed) and copies data into a frame. ver is the page's dirty version
// as captured by faultVersion when the fault began. If the fault lost a
// race — the page became resident while the source read was in flight —
// the frame is refreshed in place only when no Put or MarkDirty landed
// meanwhile (version unchanged: the resident bytes came from an
// equivalent source read, so the refresh is a no-op in contents). A
// frame that is dirty, or clean because the newer contents were already
// flushed, is ahead of the stale source bytes and keeps them.
func (p *Pool) install(page int, data []byte, ver uint32) {
	if p.policy.Access(page) {
		if !p.dirty[page] && p.dirtyVer[page] == ver {
			copy(p.frames[page], data) // lost a duplicate-fault race: refresh in place
		}
		return
	}
	frame := p.takeFrame()
	copy(frame, data)
	p.frames[page] = frame
}

// failedFault accounts for a fault whose source read failed: the miss
// still counts (a physical read was issued) but nothing becomes
// resident. It deliberately avoids Policy.Access — a fault here could
// evict a victim no one wrote back (the caller only cleans victims on
// the success path). The returned error matches Get's wrapping.
func (p *Pool) failedFault(page int, err error) error {
	p.policy.NoteMiss(page)
	p.noteReadFailure()
	return fmt.Errorf("buffer: reading page %d: %w", page, err)
}

// preparePin pins the page slot and reports whether the caller must read
// its contents (it was not resident), plus the page's dirty version for
// installPinned's race guard. See Pin for single-step use.
func (p *Pool) preparePin(page int) (needRead bool, ver uint32, err error) {
	if page < 0 || page >= len(p.frames) {
		return false, 0, fmt.Errorf("buffer: page %d outside [0,%d)", page, len(p.frames))
	}
	if p.policy.Pinned(page) {
		return false, 0, nil
	}
	resident := p.policy.Contains(page)
	if err := p.policy.Pin(page); err != nil {
		return false, 0, err
	}
	return !resident, p.dirtyVer[page], nil
}

// installPinned stores the contents of a freshly pinned page. ver is
// the dirty version preparePin reported. A concurrent Put landing while
// the pin's source read was in flight already gave the page a frame
// whose contents are ahead of the source — that frame is kept (never
// replaced or dropped); only a frame still at the pinned version is
// refreshed, and a missing frame is filled.
func (p *Pool) installPinned(page int, data []byte, ver uint32) {
	if p.frames[page] != nil {
		if !p.dirty[page] && p.dirtyVer[page] == ver {
			copy(p.frames[page], data)
		}
		return
	}
	frame := p.takeFrame()
	copy(frame, data)
	p.frames[page] = frame
}

// failedPin backs out preparePin after a failed source read, matching
// Pin's error wrapping.
func (p *Pool) failedPin(page int, err error) error {
	p.noteReadFailure()
	p.policy.Unpin(page)
	p.policy.Remove(page)
	return fmt.Errorf("buffer: pinning page %d: %w", page, err)
}

// Pin makes page permanently resident (reading it if absent).
func (p *Pool) Pin(page int) error {
	if p.policy.Pinned(page) {
		return nil
	}
	resident := p.policy.Contains(page)
	if !resident {
		if err := p.writeBackVictim(); err != nil {
			return err
		}
	}
	if err := p.policy.Pin(page); err != nil {
		return err
	}
	if !resident {
		frame := p.takeFrame()
		if err := p.src.ReadPage(page, frame); err != nil {
			p.noteReadFailure()
			p.policy.Unpin(page)
			p.policy.Remove(page)
			p.free = append(p.free, frame)
			return fmt.Errorf("buffer: pinning page %d: %w", page, err)
		}
		p.frames[page] = frame
	}
	return nil
}

// FailedReads returns how many source reads errored. These reads count
// as misses but deliver no page.
func (p *Pool) FailedReads() uint64 { return p.readFailures }

// FailedWrites returns how many sink write-backs errored. The pages
// stayed resident and dirty, so nothing was lost — but the storage
// underneath is sick and the operations that needed the write-backs
// failed.
func (p *Pool) FailedWrites() uint64 { return p.failedWrites }

// DirtyPages returns how many resident pages are ahead of the source.
func (p *Pool) DirtyPages() int { return p.nDirty }

// Put installs data as the contents of page, resident and dirty — the
// update path's entry point after its batch is WAL-committed. The page
// becomes most recently used; no read miss is counted (no physical read
// happens). Installing into a full pool may evict, writing a dirty
// victim back first.
func (p *Pool) Put(page int, data []byte) error {
	if page < 0 || page >= len(p.frames) {
		return fmt.Errorf("buffer: page %d outside [0,%d)", page, len(p.frames))
	}
	if len(data) != p.src.PageSize() {
		return fmt.Errorf("buffer: put of %d bytes != page size %d", len(data), p.src.PageSize())
	}
	if !p.policy.Contains(page) {
		if err := p.writeBackVictim(); err != nil {
			return err
		}
	}
	p.policy.Install(page)
	if p.frames[page] == nil {
		p.frames[page] = p.takeFrame()
	}
	copy(p.frames[page], data)
	p.setDirty(page)
	return nil
}

// MarkDirty flags a resident page whose frame the caller mutated in
// place. The pool will write it back on FlushDirty or before evicting it.
func (p *Pool) MarkDirty(page int) error {
	if page < 0 || page >= len(p.frames) {
		return fmt.Errorf("buffer: page %d outside [0,%d)", page, len(p.frames))
	}
	if !p.policy.Contains(page) || p.frames[page] == nil {
		return fmt.Errorf("buffer: MarkDirty of non-resident page %d", page)
	}
	p.setDirty(page)
	return nil
}

// FlushDirty writes every dirty page back to the sink in ascending page
// order (deterministic for a given dirty set) and clears the dirty
// flags. On a write failure it stops: the failed page and everything
// after it stay dirty and resident, and the error surfaces. Callers
// ordering a WAL commit call this after logging, so a partial flush is
// always redo-covered.
func (p *Pool) FlushDirty() error {
	if p.nDirty == 0 {
		p.dirtyList = p.dirtyList[:0]
		return nil
	}
	slices.Sort(p.dirtyList)
	for i, page := range p.dirtyList {
		if !p.dirty[page] {
			continue // cleaned earlier (write-back on eviction) or a duplicate entry
		}
		if err := p.flushPage(page); err != nil {
			rest := p.dirtyList[i:]
			n := copy(p.dirtyList, rest)
			p.dirtyList = p.dirtyList[:n]
			return err
		}
	}
	p.dirtyList = p.dirtyList[:0]
	return nil
}

func (p *Pool) setDirty(page int) {
	p.dirtyVer[page]++
	if p.dirty[page] {
		return
	}
	p.dirty[page] = true
	p.nDirty++
	p.dirtyList = append(p.dirtyList, page)
	p.metrics.onDirty()
}

func (p *Pool) clearDirty(page int) {
	if !p.dirty[page] {
		return
	}
	p.dirty[page] = false
	p.nDirty--
}

// flushPage writes one dirty page to the sink and clears its flag.
func (p *Pool) flushPage(page int) error {
	return p.wroteBack(page, p.sinkWrite(page, p.frames[page]))
}

// sinkWrite performs the physical write-back. It touches no pool state,
// so a locked wrapper may call it without holding the state lock.
func (p *Pool) sinkWrite(page int, data []byte) error {
	return sinkWriteTo(p.sink, page, data)
}

// sinkSnapshot returns the attached sink (possibly nil). A wrapper that
// writes with no lock held snapshots the sink under its lock first, so a
// concurrent SetSink cannot race the field read.
func (p *Pool) sinkSnapshot() PageSink { return p.sink }

// sinkWriteTo writes data to sink, sharing the no-sink error with every
// write-back path.
func sinkWriteTo(sink PageSink, page int, data []byte) error {
	if sink == nil {
		return fmt.Errorf("buffer: no write-back sink attached")
	}
	return sink.WritePage(page, data)
}

// wroteBack commits the outcome of a sink write: success clears the
// dirty flag and counts a write-back, failure counts a failed write and
// leaves the page dirty.
func (p *Pool) wroteBack(page int, err error) error {
	if err != nil {
		p.noteFailedWrite()
		return fmt.Errorf("buffer: writing back page %d: %w", page, err)
	}
	p.clearDirty(page)
	p.metrics.onWriteBack()
	return nil
}

// writeBackVictim cleans the page the next capacity eviction would drop,
// so the eviction (inside LRU.Access/Install/Pin) never loses a dirty
// page. Single-threaded pools call it immediately before any operation
// that may evict.
func (p *Pool) writeBackVictim() error {
	_, err := p.writeBackVictimTracked()
	return err
}

// writeBackVictimTracked is writeBackVictim plus whether a dirty victim
// was actually written back (false when the pool isn't full or the
// victim is clean).
func (p *Pool) writeBackVictimTracked() (wrote bool, err error) {
	if !p.policy.Full() {
		return false, nil
	}
	v, ok := p.policy.Victim()
	if !ok || !p.dirty[v] {
		return false, nil
	}
	if err := p.flushPage(v); err != nil {
		return false, err
	}
	return true, nil
}

// hasDirtyVictim reports whether the next capacity eviction would drop
// a dirty page — the cheap probe half of dirtyVictim, for a wrapper
// deciding whether it must enter its write-back path at all.
func (p *Pool) hasDirtyVictim() bool {
	if !p.policy.Full() {
		return false
	}
	v, ok := p.policy.Victim()
	return ok && p.dirty[v]
}

// dirtyVictim is writeBackVictim's probe half for a locked wrapper:
// when the next eviction victim is dirty it copies the victim's frame
// into dst and returns its page number; otherwise it returns -1 and the
// caller may evict freely (until it releases its write serialization).
func (p *Pool) dirtyVictim(dst []byte) int {
	if !p.policy.Full() {
		return -1
	}
	v, ok := p.policy.Victim()
	if !ok || !p.dirty[v] {
		return -1
	}
	copy(dst, p.frames[v])
	return v
}

// dirtyVictimVer is dirtyVictim plus the victim's dirty version, for a
// wrapper that releases its lock between the copy and the commit.
func (p *Pool) dirtyVictimVer(dst []byte) (page int, ver uint32) {
	v := p.dirtyVictim(dst)
	if v < 0 {
		return -1, 0
	}
	return v, p.dirtyVer[v]
}

// copyDirtyVer is copyDirty plus the page's dirty version.
func (p *Pool) copyDirtyVer(page int, dst []byte) (ver uint32, ok bool) {
	if !p.copyDirty(page, dst) {
		return 0, false
	}
	return p.dirtyVer[page], true
}

// wroteBackVer commits the outcome of an unlocked sink write that was
// fed from a versioned copy. If the page was re-dirtied since the copy
// (version moved), a successful write still counts as a write-back but
// must not clear the flag — the fresher contents remain to be written.
// The stale on-disk state is safe: callers WAL-log before dirtying, so
// it is redo-covered.
func (p *Pool) wroteBackVer(page int, ver uint32, err error) error {
	if err != nil {
		p.noteFailedWrite()
		return fmt.Errorf("buffer: writing back page %d: %w", page, err)
	}
	p.metrics.onWriteBack()
	if p.dirtyVer[page] == ver {
		p.clearDirty(page)
	}
	return nil
}

// dirtySnapshot returns the dirty pages in ascending order, for a locked
// wrapper that flushes them one at a time.
func (p *Pool) dirtySnapshot() []int {
	out := make([]int, 0, p.nDirty)
	for _, page := range p.dirtyList {
		if p.dirty[page] {
			out = append(out, page)
		}
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// copyDirty copies page's frame into dst if it is still dirty, reporting
// whether it was.
func (p *Pool) copyDirty(page int, dst []byte) bool {
	if page >= len(p.frames) || !p.dirty[page] || p.frames[page] == nil {
		return false
	}
	copy(dst, p.frames[page])
	return true
}

// Unpin returns a pinned page to replacement management.
func (p *Pool) Unpin(page int) { p.policy.Unpin(page) }

// Stats returns cumulative hits, misses, and evictions. Misses equal the
// number of source reads issued.
func (p *Pool) Stats() (hits, misses, evictions uint64) { return p.policy.Stats() }

// ResetStats zeroes the counters without disturbing contents.
func (p *Pool) ResetStats() {
	p.policy.ResetStats()
	p.readFailures = 0
	p.failedWrites = 0
}

// HitRatio returns the cumulative hit ratio.
func (p *Pool) HitRatio() float64 { return p.policy.HitRatio() }

// Capacity returns the pool capacity in pages.
func (p *Pool) Capacity() int { return p.policy.Capacity() }

// Resident returns the number of pages currently buffered.
func (p *Pool) Resident() int { return p.policy.Len() }
