package buffer

import "testing"

// TestGetTrackedAttribution checks the per-access attribution both pool
// implementations report: hits flag Hit, misses don't, and a miss that
// must evict a dirty victim counts its write-back.
func TestGetTrackedAttribution(t *testing.T) {
	const pageSize = 32
	const numPages = 8
	mk := map[string]func() PagePool{
		"pool": func() PagePool {
			return NewPool(&fakeSource{pageSize: pageSize, numPages: numPages}, 2, numPages)
		},
		"sharded": func() PagePool {
			return NewShardedPool(&concSource{pageSize: pageSize, numPages: numPages}, 2, numPages, 1)
		},
	}
	for name, mkPool := range mk {
		t.Run(name, func(t *testing.T) {
			p := mkPool()
			sink := newFakeSink(pageSize)
			p.SetSink(sink)

			if _, info, err := p.GetTracked(0); err != nil || info.Hit || info.WriteBacks != 0 {
				t.Errorf("cold miss: info=%+v err=%v, want miss with no write-backs", info, err)
			}
			if _, info, err := p.GetTracked(0); err != nil || !info.Hit || info.WriteBacks != 0 {
				t.Errorf("hit: info=%+v err=%v, want clean hit", info, err)
			}
			// Dirty page 0, fill the 2-page pool, then force an eviction of
			// the dirty victim: the faulting access must report the write-back.
			if err := p.MarkDirty(0); err != nil {
				t.Fatal(err)
			}
			if _, _, err := p.GetTracked(1); err != nil {
				t.Fatal(err)
			}
			_, info, err := p.GetTracked(2)
			if err != nil {
				t.Fatal(err)
			}
			if info.Hit || info.WriteBacks != 1 {
				t.Errorf("evicting miss: info=%+v, want miss with one write-back", info)
			}
			if len(sink.order) != 1 || sink.order[0] != 0 {
				t.Errorf("sink received %v, want the dirty victim page 0", sink.order)
			}

			// Out-of-range access reports the error with empty attribution.
			if _, info, err := p.GetTracked(numPages + 5); err == nil || info.Hit || info.WriteBacks != 0 {
				t.Errorf("out of range: info=%+v err=%v", info, err)
			}

			// Get must agree with GetTracked's data path.
			data, err := p.Get(1)
			if err != nil {
				t.Fatal(err)
			}
			if data[0] != 1 {
				t.Errorf("Get content = %d, want 1", data[0])
			}
		})
	}
}
