package buffer

import "sync"

// SyncPool is a mutex-guarded Pool for concurrent readers. The paper's
// experiments are single-threaded, but a database serving the query
// workloads it models is not; SyncPool lets multiple goroutines share one
// buffer (and its statistics) safely.
//
// Two mutexes split the two jobs a naive wrapper gives one lock:
//
//   - mu guards the pool's state (LRU lists, frames, counters) and is
//     never held across a PageSource read — a slow or retrying disk read
//     must not stall hits on resident pages (rtreelint's lockcheck
//     enforces this);
//   - ioMu serializes PageSource access (the storage managers are not
//     concurrency-safe) and doubles as single-flight for concurrent
//     misses on the same page: the second misser blocks on ioMu, then
//     re-checks residency and hits. ioMu is always acquired before mu.
//
// Get copies the frame out under mu instead of returning an alias: an
// aliased frame could be evicted and recycled by a concurrent miss while
// the caller still reads it. The copy costs one page-size memcpy per
// access — the honest price of a shared buffer without page latches;
// callers that need zero-copy should use View, or shard trees across
// per-goroutine Pools.
type SyncPool struct {
	mu       sync.Mutex // pool state; never held across source I/O
	ioMu     sync.Mutex // serializes source reads; acquired before mu
	pool     *Pool
	readBuf  []byte // fault staging buffer, guarded by ioMu
	writeBuf []byte // write-back staging buffer, guarded by ioMu
}

// NewSyncPool wraps src in a thread-safe pool of the given capacity.
func NewSyncPool(src PageSource, capacity, numPages int) *SyncPool {
	return &SyncPool{
		pool:     NewPool(src, capacity, numPages),
		readBuf:  make([]byte, src.PageSize()),
		writeBuf: make([]byte, src.PageSize()),
	}
}

// Get returns a copy of the page contents, faulting it in on a miss.
// The returned slice is owned by the caller.
func (s *SyncPool) Get(page int) ([]byte, error) {
	s.mu.Lock()
	frame, ok, err := s.pool.TryGet(page)
	var out []byte
	if ok {
		out = append([]byte(nil), frame...)
	}
	s.mu.Unlock()
	if ok || err != nil {
		return out, err
	}
	return s.fault(page)
}

// View invokes f with the page contents — zero-copy (the buffer frame,
// under the pool lock) when the page is resident, a private copy when it
// had to be faulted in. f must not retain the slice or call back into
// the pool.
func (s *SyncPool) View(page int, f func([]byte) error) error {
	s.mu.Lock()
	frame, ok, err := s.pool.TryGet(page)
	if ok {
		err = f(frame)
	}
	s.mu.Unlock()
	if ok || err != nil {
		return err
	}
	data, err := s.fault(page)
	if err != nil {
		return err
	}
	return f(data)
}

// fault reads page from the source and installs it, returning a copy the
// caller owns. The read happens under ioMu only; pool state is touched
// under mu before and after.
func (s *SyncPool) fault(page int) ([]byte, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()

	// Re-check residency: a concurrent fault of the same page completed
	// while this goroutine waited on ioMu.
	s.mu.Lock()
	frame, ok, err := s.pool.TryGet(page)
	var out []byte
	var ver uint32
	if ok {
		out = append([]byte(nil), frame...)
	} else if err == nil {
		ver = s.pool.faultVersion(page)
	}
	s.mu.Unlock()
	if ok || err != nil {
		return out, err
	}

	err = s.pool.readPage(page, s.readBuf) //lint:allow lockcheck serializing source I/O is ioMu's purpose
	if err != nil {
		s.mu.Lock()
		err = s.pool.failedFault(page, err)
		s.mu.Unlock()
		return nil, err
	}
	out = append([]byte(nil), s.readBuf...)
	if err := s.installClean(func() { s.pool.install(page, s.readBuf, ver) }); err != nil { //lint:allow lockcheck dirty write-back under ioMu is the no-steal protocol
		return nil, err
	}
	return out, nil
}

// installClean runs install (under mu) once no dirty page can be the
// eviction victim, writing dirty victims back first. It must be called
// with ioMu held and mu not held: ioMu blocks every mutator (Put,
// FlushDirty, other faults), so the dirty set is frozen — concurrent
// hits may reorder recency and surface a different dirty tail, which is
// why this loops rather than checking once. Each iteration cleans one
// page, so it terminates. A write-back failure fails the caller's
// operation; the victim stays resident and dirty.
func (s *SyncPool) installClean(install func()) error {
	for {
		s.mu.Lock()
		v := s.pool.dirtyVictim(s.writeBuf)
		if v < 0 {
			install()
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		err := s.pool.sinkWrite(v, s.writeBuf) //lint:allow lockcheck serializing sink I/O is ioMu's purpose
		s.mu.Lock()
		err = s.pool.wroteBack(v, err)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
}

// Pin makes page permanently resident.
func (s *SyncPool) Pin(page int) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var need bool
	var ver uint32
	var perr error
	if err := s.installClean(func() { need, ver, perr = s.pool.preparePin(page) }); err != nil { //lint:allow lockcheck dirty write-back under ioMu is the no-steal protocol
		return err
	}
	if perr != nil || !need {
		return perr
	}
	err := s.pool.readPage(page, s.readBuf) //lint:allow lockcheck serializing source I/O is ioMu's purpose
	if err != nil {
		s.mu.Lock()
		err = s.pool.failedPin(page, err)
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.pool.installPinned(page, s.readBuf, ver)
	s.mu.Unlock()
	return nil
}

// Unpin returns a pinned page to LRU management.
func (s *SyncPool) Unpin(page int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.Unpin(page)
}

// SetSink attaches the write-back target for dirty pages; nil detaches.
func (s *SyncPool) SetSink(sink PageSink) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.SetSink(sink)
}

// Grow extends the pool's page-number space to numPages.
func (s *SyncPool) Grow(numPages int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.Grow(numPages)
}

// Put installs data as the contents of page, resident and dirty.
// SyncPool's Get hands out copies, so in-place mutation (Pool.MarkDirty)
// has no shared-pool equivalent: Put is the whole write path. Writers
// are serialized by ioMu; concurrent readers keep hitting.
func (s *SyncPool) Put(page int, data []byte) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var perr error
	// Under installClean's no-dirty-victim guarantee Pool.Put's own
	// victim write-back finds nothing to do, so no I/O runs under mu.
	if err := s.installClean(func() { perr = s.pool.Put(page, data) }); err != nil { //lint:allow lockcheck dirty write-back under ioMu is the no-steal protocol
		return err
	}
	return perr
}

// FlushDirty writes every dirty page back to the sink in ascending page
// order, stopping at the first failure (the failed page and everything
// after stay dirty). Each page is copied out under mu and written under
// ioMu only, so resident reads proceed during the flush.
func (s *SyncPool) FlushDirty() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	pages := s.pool.dirtySnapshot()
	s.mu.Unlock()
	for _, page := range pages {
		s.mu.Lock()
		ok := s.pool.copyDirty(page, s.writeBuf)
		s.mu.Unlock()
		if !ok {
			continue // cleaned by an eviction write-back meanwhile
		}
		err := s.pool.sinkWrite(page, s.writeBuf) //lint:allow lockcheck serializing sink I/O is ioMu's purpose
		s.mu.Lock()
		err = s.pool.wroteBack(page, err)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// DirtyPages returns how many resident pages are ahead of the source.
func (s *SyncPool) DirtyPages() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.DirtyPages()
}

// FailedWrites returns how many sink write-backs errored.
func (s *SyncPool) FailedWrites() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.FailedWrites()
}

// FailedReads returns how many source reads errored.
func (s *SyncPool) FailedReads() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.FailedReads()
}

// SetMetrics attaches an obs mirror to the wrapped pool. The obs
// counters are themselves atomic, so mirrored events stay race-free
// even though readers may snapshot the registry concurrently.
func (s *SyncPool) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.SetMetrics(m)
}

// Stats returns cumulative hits, misses, and evictions.
func (s *SyncPool) Stats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Stats()
}

// ResetStats zeroes the counters.
func (s *SyncPool) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.ResetStats()
}

// HitRatio returns the cumulative hit ratio.
func (s *SyncPool) HitRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.HitRatio()
}

// Capacity returns the pool capacity in pages.
func (s *SyncPool) Capacity() int { return s.pool.Capacity() }

// Resident returns the number of buffered pages.
func (s *SyncPool) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Resident()
}
