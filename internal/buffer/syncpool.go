package buffer

import "sync"

// SyncPool is a mutex-guarded Pool for concurrent readers. The paper's
// experiments are single-threaded, but a database serving the query
// workloads it models is not; SyncPool lets multiple goroutines share one
// buffer (and its statistics) safely.
//
// Get copies the frame out under the lock instead of returning an alias:
// an aliased frame could be evicted and recycled by a concurrent miss
// while the caller still reads it. The copy costs one page-size memcpy
// per access — the honest price of a shared buffer without page latches;
// callers that need zero-copy should shard trees across per-goroutine
// Pools instead.
type SyncPool struct {
	mu   sync.Mutex
	pool *Pool
}

// NewSyncPool wraps src in a thread-safe pool of the given capacity.
func NewSyncPool(src PageSource, capacity, numPages int) *SyncPool {
	return &SyncPool{pool: NewPool(src, capacity, numPages)}
}

// Get returns a copy of the page contents, faulting it in on a miss.
// The returned slice is owned by the caller.
func (s *SyncPool) Get(page int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	frame, err := s.pool.Get(page)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), frame...), nil
}

// View invokes f with the buffer frame under the pool lock — zero-copy
// access for callers that only need to read briefly. f must not retain
// the slice or call back into the pool.
func (s *SyncPool) View(page int, f func([]byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	frame, err := s.pool.Get(page)
	if err != nil {
		return err
	}
	return f(frame)
}

// Pin makes page permanently resident.
func (s *SyncPool) Pin(page int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Pin(page)
}

// Unpin returns a pinned page to LRU management.
func (s *SyncPool) Unpin(page int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.Unpin(page)
}

// Stats returns cumulative hits, misses, and evictions.
func (s *SyncPool) Stats() (hits, misses, evictions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Stats()
}

// ResetStats zeroes the counters.
func (s *SyncPool) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.ResetStats()
}

// HitRatio returns the cumulative hit ratio.
func (s *SyncPool) HitRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.HitRatio()
}

// Capacity returns the pool capacity in pages.
func (s *SyncPool) Capacity() int { return s.pool.Capacity() }

// Resident returns the number of buffered pages.
func (s *SyncPool) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.Resident()
}
