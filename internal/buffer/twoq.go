package buffer

// TwoQ is the 2Q replacement policy (Johnson & Shasha, VLDB '94) in its
// full version: a small FIFO of first-time pages (A1in), a ghost queue
// of recently evicted first-timers (A1out, page numbers only — no
// frames), and a main LRU of proven-hot pages (Am). A page's first
// reference parks it in A1in; only a re-reference after it has aged out
// into A1out promotes it to Am. Correlated references within A1in do not
// promote — that is the scan resistance LRU lacks.
//
// Queue sizing follows the paper's tuning: Kin = capacity/4 frames for
// A1in, Kout = capacity/2 page numbers for A1out (both at least one).
// Resident pages (A1in + Am + pinned) never exceed capacity; A1out holds
// metadata only.
//
// The paper under study models LRU; TwoQ is one of the two modern
// policies experiment ext-policy validates the extended model against.
type TwoQ struct {
	policyCore

	kin, kout int

	prev, next []int32 // intrusive links, shared: a page is in one queue
	where      []uint8 // page -> queue
	a1in       pageQueue
	am         pageQueue
	a1out      pageQueue // ghost entries: no frames, not resident
}

// Queue tags for TwoQ.where.
const (
	qNone  uint8 = iota
	qA1in        // resident FIFO of first-time pages
	qAm          // resident LRU of re-referenced pages
	qA1out       // non-resident ghost queue
)

// pageQueue is a doubly-linked queue threaded through shared link
// slices: head is the newest entry, tail the oldest.
type pageQueue struct {
	head, tail int32
	n          int
}

// NewTwoQ returns an empty 2Q cache of the given page capacity over page
// numbers [0, numPages), with the paper's Kin=capacity/4 and
// Kout=capacity/2 tuning.
func NewTwoQ(capacity, numPages int) *TwoQ {
	return NewTwoQK(capacity, numPages, max(1, capacity/4), max(1, capacity/2))
}

// NewTwoQK returns a 2Q cache with explicit A1in capacity (kin, frames)
// and A1out capacity (kout, ghost entries); both are clamped to at least
// one, kin to at most capacity.
func NewTwoQK(capacity, numPages, kin, kout int) *TwoQ {
	t := &TwoQ{
		policyCore: newPolicyCore("TwoQ", capacity, numPages),
		kin:        min(max(1, kin), capacity),
		kout:       max(1, kout),
		prev:       make([]int32, numPages),
		next:       make([]int32, numPages),
		where:      make([]uint8, numPages),
		a1in:       pageQueue{head: sentinel, tail: sentinel},
		am:         pageQueue{head: sentinel, tail: sentinel},
		a1out:      pageQueue{head: sentinel, tail: sentinel},
	}
	return t
}

// Kin returns the A1in (first-timer FIFO) capacity in frames.
func (t *TwoQ) Kin() int { return t.kin }

// Kout returns the A1out (ghost) capacity in page numbers.
func (t *TwoQ) Kout() int { return t.kout }

// Contains reports whether page is resident (A1in, Am, or pinned —
// ghosts hold no frame).
func (t *TwoQ) Contains(page int) bool {
	return t.pinned[page] || t.where[page] == qA1in || t.where[page] == qAm
}

// Access touches page, returning true on a hit. A hit in Am refreshes
// recency; a hit in A1in deliberately does not (the FIFO position is the
// correlated-reference filter). A miss on a ghost promotes the page to
// Am; a cold miss enters A1in.
func (t *TwoQ) Access(page int) bool {
	if t.pinned[page] {
		t.pinHit(page)
		return true
	}
	switch t.where[page] {
	case qAm:
		t.hit(page)
		t.qMoveToFront(&t.am, int32(page))
		return true
	case qA1in:
		t.hit(page)
		return true
	case qA1out:
		t.miss(page)
		t.admit(page, true)
		return false
	default:
		t.miss(page)
		t.admit(page, false)
		return false
	}
}

// Install makes page resident without counting a hit or a miss (see
// PoolPolicy). The queue transitions match Access exactly — only the
// accounting differs — so the update path shapes the queues the same way
// reads do.
func (t *TwoQ) Install(page int) bool {
	if t.pinned[page] {
		return true
	}
	switch t.where[page] {
	case qAm:
		t.qMoveToFront(&t.am, int32(page))
		return true
	case qA1in:
		return true
	case qA1out:
		t.admit(page, true)
		return false
	default:
		t.admit(page, false)
		return false
	}
}

// admit makes a non-resident page resident: ghosts (and ghost-promoted
// installs) go to the front of Am, cold pages to the front of A1in,
// evicting first when at capacity.
func (t *TwoQ) admit(page int, ghost bool) {
	if ghost {
		t.qRemove(&t.a1out, int32(page))
		t.where[page] = qNone
	}
	if t.size >= t.capacity {
		t.evictOne()
	}
	t.size++
	if ghost {
		t.where[page] = qAm
		t.qPushFront(&t.am, int32(page))
	} else {
		t.where[page] = qA1in
		t.qPushFront(&t.a1in, int32(page))
	}
}

// evictChoice returns the queue the next eviction drains: A1in while it
// holds more than Kin pages (or Am is empty), Am otherwise — the 2Q
// paper's reclaim rule.
func (t *TwoQ) evictChoice() *pageQueue {
	if t.a1in.n >= t.kin && t.a1in.n > 0 || t.am.n == 0 {
		if t.a1in.n > 0 {
			return &t.a1in
		}
	}
	if t.am.n > 0 {
		return &t.am
	}
	return nil
}

// Victim returns the page the next eviction will drop: the tail of the
// queue evictChoice selects.
func (t *TwoQ) Victim() (page int, ok bool) {
	q := t.evictChoice()
	if q == nil {
		return 0, false
	}
	return int(q.tail), true
}

// evictOne drops one resident page. An A1in victim leaves a ghost in
// A1out (trimming its tail past Kout); an Am victim vanishes.
func (t *TwoQ) evictOne() {
	q := t.evictChoice()
	if q == nil {
		panic(noEvictableErr(t.capacity, t.nPinned))
	}
	victim := q.tail
	fromA1in := q == &t.a1in
	t.qRemove(q, victim)
	t.size--
	if fromA1in {
		t.where[victim] = qA1out
		t.qPushFront(&t.a1out, victim)
		if t.a1out.n > t.kout {
			old := t.a1out.tail
			t.qRemove(&t.a1out, old)
			t.where[old] = qNone
		}
	} else {
		t.where[victim] = qNone
	}
	t.evictPage(int(victim))
}

// Remove drops page without counting an eviction — backing out a failed
// fault. No ghost is left behind: the page was never really read.
func (t *TwoQ) Remove(page int) bool {
	if t.pinned[page] {
		return false
	}
	switch t.where[page] {
	case qA1in:
		t.qRemove(&t.a1in, int32(page))
	case qAm:
		t.qRemove(&t.am, int32(page))
	default:
		return false
	}
	t.where[page] = qNone
	t.size--
	return true
}

// Pin makes page permanently resident (a miss if absent). Pinned pages
// leave the queues; Unpin returns them to the front of Am.
func (t *TwoQ) Pin(page int) error {
	if t.pinned[page] {
		return nil
	}
	if err := t.checkPin(page); err != nil {
		return err
	}
	switch t.where[page] {
	case qA1in:
		t.qRemove(&t.a1in, int32(page))
		t.where[page] = qNone
	case qAm:
		t.qRemove(&t.am, int32(page))
		t.where[page] = qNone
	default:
		if t.where[page] == qA1out {
			t.qRemove(&t.a1out, int32(page))
			t.where[page] = qNone
		}
		t.miss(page)
		if t.size >= t.capacity {
			t.evictOne()
		}
		t.size++
	}
	t.pinned[page] = true
	t.nPinned++
	return nil
}

// Unpin returns a pinned page to replacement management, at the front of
// Am: a page someone pinned has proven its heat.
func (t *TwoQ) Unpin(page int) {
	if !t.pinned[page] {
		return
	}
	t.pinned[page] = false
	t.nPinned--
	t.where[page] = qAm
	t.qPushFront(&t.am, int32(page))
}

// Grow extends the page-number space to numPages (no-op if not larger).
func (t *TwoQ) Grow(numPages int) {
	old := t.numPages
	if !t.grow(numPages) {
		return
	}
	extra := numPages - old
	t.prev = append(t.prev, make([]int32, extra)...)
	t.next = append(t.next, make([]int32, extra)...)
	t.where = append(t.where, make([]uint8, extra)...)
}

// Stats, ResetStats, HitRatio, SetMetrics, Capacity, Len, Full, Pinned,
// NumPages, and SetOnEvict are promoted from the embedded policyCore.

func (t *TwoQ) qPushFront(q *pageQueue, p int32) {
	t.prev[p] = sentinel
	t.next[p] = q.head
	if q.head != sentinel {
		t.prev[q.head] = p
	}
	q.head = p
	if q.tail == sentinel {
		q.tail = p
	}
	q.n++
}

func (t *TwoQ) qRemove(q *pageQueue, p int32) {
	if t.prev[p] != sentinel {
		t.next[t.prev[p]] = t.next[p]
	} else {
		q.head = t.next[p]
	}
	if t.next[p] != sentinel {
		t.prev[t.next[p]] = t.prev[p]
	} else {
		q.tail = t.prev[p]
	}
	t.prev[p], t.next[p] = sentinel, sentinel
	q.n--
}

func (t *TwoQ) qMoveToFront(q *pageQueue, p int32) {
	if q.head == p {
		return
	}
	t.qRemove(q, p)
	t.qPushFront(q, p)
}
