package buffer

import (
	"strconv"

	"rtreebuf/internal/obs"
)

// This file routes buffer accounting into the observability layer. Every
// replacement policy embeds one shared policyCounters struct (replacing
// the hand-rolled hits/misses/evictions triples each policy used to
// carry); policyCounters keeps the exact counters the Stats contract
// reports and, when a *Metrics is attached, mirrors each event into
// obs-backed per-policy and per-tree-level counters. With no Metrics
// attached the mirror is a nil-receiver no-op — zero allocations, one
// predictable branch — so uninstrumented runs pay nothing on the
// Access/Get hot path (guarded by BenchmarkObsDisabled and rtreelint's
// hotalloc analyzer).

// Metrics mirrors one policy's buffer events into an obs.Registry:
// hits, misses, evictions, pin hits (hits on pinned pages), failed
// source reads, and — when the page→level mapping is known — per-tree-
// level hit/miss splits. A nil *Metrics disables mirroring; all methods
// are nil-safe.
type Metrics struct {
	reg    *obs.Registry
	policy obs.Label

	hits          *obs.Counter
	misses        *obs.Counter
	evictions     *obs.Counter
	pinHits       *obs.Counter
	readFailures  *obs.Counter
	dirtied       *obs.Counter
	writeBacks    *obs.Counter
	writeFailures *obs.Counter

	levelOf     []int // page -> tree level (root = 0); nil disables per-level series
	levelHits   []*obs.Counter
	levelMisses []*obs.Counter
}

// NewMetrics registers the per-policy buffer counters in reg, labeled
// with the policy name ("lru", "clock", ...). A nil registry returns a
// nil (disabled) Metrics, so call sites need no conditional wiring.
func NewMetrics(reg *obs.Registry, policy string) *Metrics {
	if reg == nil {
		return nil
	}
	p := obs.L("policy", policy)
	return &Metrics{ //lint:allow hotalloc one-time mirror setup when a registry is attached
		reg:           reg,
		policy:        p,
		hits:          reg.Counter("buffer_hits_total", p),
		misses:        reg.Counter("buffer_misses_total", p),
		evictions:     reg.Counter("buffer_evictions_total", p),
		pinHits:       reg.Counter("buffer_pin_hits_total", p),
		readFailures:  reg.Counter("buffer_read_failures_total", p),
		dirtied:       reg.Counter("buffer_pages_dirtied_total", p),
		writeBacks:    reg.Counter("buffer_write_backs_total", p),
		writeFailures: reg.Counter("buffer_write_failures_total", p),
	}
}

// WithLevels attaches a page→level mapping (root = 0, as produced by the
// level-order page numbering every tree save uses) enabling the
// buffer_level_{hits,misses}_total{policy,level} series. levels is the
// number of tree levels. Returns m for chaining; nil-safe.
func (m *Metrics) WithLevels(levelOf []int, levels int) *Metrics {
	if m == nil || levels <= 0 {
		return m
	}
	m.levelOf = levelOf
	m.levelHits = make([]*obs.Counter, levels)   //lint:allow hotalloc one-time mirror setup when a registry is attached
	m.levelMisses = make([]*obs.Counter, levels) //lint:allow hotalloc one-time mirror setup when a registry is attached
	for lvl := 0; lvl < levels; lvl++ {
		l := obs.L("level", strconv.Itoa(lvl))
		m.levelHits[lvl] = m.reg.Counter("buffer_level_hits_total", m.policy, l)
		m.levelMisses[lvl] = m.reg.Counter("buffer_level_misses_total", m.policy, l)
	}
	return m
}

// LevelsFromCounts expands per-level page counts (root first, the
// storage.TreeMeta.Levels shape) into the page→level mapping WithLevels
// takes.
func LevelsFromCounts(counts []int) []int {
	total := 0
	for _, c := range counts {
		total += c
	}
	out := make([]int, 0, total)
	for lvl, c := range counts {
		for i := 0; i < c; i++ {
			out = append(out, lvl)
		}
	}
	return out
}

func (m *Metrics) levelHit(page int) {
	if m.levelOf == nil || page >= len(m.levelOf) {
		return
	}
	if lvl := m.levelOf[page]; lvl >= 0 && lvl < len(m.levelHits) {
		m.levelHits[lvl].Inc()
	}
}

func (m *Metrics) levelMiss(page int) {
	if m.levelOf == nil || page >= len(m.levelOf) {
		return
	}
	if lvl := m.levelOf[page]; lvl >= 0 && lvl < len(m.levelMisses) {
		m.levelMisses[lvl].Inc()
	}
}

func (m *Metrics) onHit(page int) {
	if m == nil {
		return
	}
	m.hits.Inc()
	m.levelHit(page)
}

func (m *Metrics) onPinHit(page int) {
	if m == nil {
		return
	}
	m.hits.Inc()
	m.pinHits.Inc()
	m.levelHit(page)
}

func (m *Metrics) onMiss(page int) {
	if m == nil {
		return
	}
	m.misses.Inc()
	m.levelMiss(page)
}

func (m *Metrics) onEvict() {
	if m == nil {
		return
	}
	m.evictions.Inc()
}

func (m *Metrics) onReadFailure() {
	if m == nil {
		return
	}
	m.readFailures.Inc()
}

func (m *Metrics) onDirty() {
	if m == nil {
		return
	}
	m.dirtied.Inc()
}

func (m *Metrics) onWriteBack() {
	if m == nil {
		return
	}
	m.writeBacks.Inc()
}

func (m *Metrics) onWriteFailure() {
	if m == nil {
		return
	}
	m.writeFailures.Inc()
}

// policyCounters is the hit/miss/evict accounting shared by every Policy
// implementation. The uint64 fields are the result-bearing counters the
// Stats/HitRatio contract exposes (and experiments consume); the obs
// mirror is additive observability that never feeds back into results —
// in particular ResetStats (used to discard warm-up) zeroes only the
// result counters, while the obs series stay cumulative.
type policyCounters struct {
	hits, misses, evictions uint64
	metrics                 *Metrics
}

// SetMetrics attaches (or with nil detaches) the obs mirror.
func (c *policyCounters) SetMetrics(m *Metrics) { c.metrics = m }

func (c *policyCounters) hit(page int) {
	c.hits++
	c.metrics.onHit(page)
}

func (c *policyCounters) pinHit(page int) {
	c.hits++
	c.metrics.onPinHit(page)
}

func (c *policyCounters) miss(page int) {
	c.misses++
	c.metrics.onMiss(page)
}

func (c *policyCounters) evict() {
	c.evictions++
	c.metrics.onEvict()
}

// Stats returns cumulative hits, misses, and evictions.
func (c *policyCounters) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// ResetStats zeroes the counters without disturbing cache contents —
// used to discard warm-up before measuring steady state. The obs mirror
// (if attached) is cumulative and unaffected.
func (c *policyCounters) ResetStats() { c.hits, c.misses, c.evictions = 0, 0, 0 }

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (c *policyCounters) HitRatio() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// shardView returns a shallow clone of m for shard number `shard` of n:
// the obs counters are shared (shards sum into one per-policy series),
// but the page→level mapping is remapped so a shard reporting its local
// page numbers still increments the right global level. Nil-safe; with
// n == 1 the mapping is the identity and m itself is returned.
func (m *Metrics) shardView(shard, n int) *Metrics {
	if m == nil || n <= 1 {
		return m
	}
	v := *m
	if m.levelOf != nil {
		locals := shardPages(len(m.levelOf), n, shard)
		v.levelOf = make([]int, locals) //lint:allow hotalloc one-time mirror setup when a registry is attached
		for local := 0; local < locals; local++ {
			v.levelOf[local] = m.levelOf[local*n+shard]
		}
	}
	return &v
}

// PolicyName returns the metrics label of a replacement policy.
func PolicyName(p Policy) string {
	switch p := p.(type) {
	case *LRU:
		return "lru"
	case *Clock:
		return "clock"
	case *TwoQ:
		return "2q"
	case *ClockPro:
		return "clockpro"
	case *Sharded:
		return PolicyName(p.shards[0])
	default:
		return "custom"
	}
}
