package buffer

import "fmt"

// This file holds the replacement-policy contracts and the bookkeeping
// every policy shares. The paper studies LRU; Clock, 2Q, and Clock-Pro
// exist to test how far its buffer model transfers to the policies real
// database buffer managers ship (experiments ext-clock and ext-policy).
//
// Two interfaces split the two consumers:
//
//   - Policy is the access-level contract the validation simulator
//     drives: touch a page, pin a page, read the counters.
//   - PoolPolicy adds the frame-manager hooks a page pool needs — peek
//     the next eviction victim (for dirty write-back before the frame is
//     lost), install a written page without read accounting, back out a
//     failed fault, grow the page-number space, observe evictions.
//
// All four built-in policies (LRU, Clock, TwoQ, ClockPro) implement
// PoolPolicy; the Sharded wrapper, which routes accesses across
// per-shard sub-policies for the simulator, implements only Policy
// (a cross-shard eviction victim is not well defined).

// Policy is the replacement-policy contract the validation simulator
// drives, letting it swap policies under one workload.
type Policy interface {
	Access(page int) bool
	Pin(page int) error
	Unpin(page int)
	Contains(page int) bool
	Full() bool
	Len() int
	Capacity() int
	Stats() (hits, misses, evictions uint64)
	ResetStats()
	HitRatio() float64
	// SetMetrics attaches (or with nil detaches) an obs mirror that
	// shadows every hit/miss/evict into a metrics registry.
	SetMetrics(*Metrics)
}

// PoolPolicy extends Policy with the hooks Pool needs to manage page
// frames around the policy's decisions.
type PoolPolicy interface {
	Policy
	// Victim returns the page the next capacity eviction will drop,
	// given that the only intervening policy mutation is the faulting
	// access (or install) that triggers the eviction. ok is false when
	// every resident page is pinned or the cache is empty.
	Victim() (page int, ok bool)
	// Install makes page resident as most recently used without
	// counting a hit or a miss — the caller is writing the page, not
	// reading it, so no physical read is implied. A capacity eviction
	// still counts. Returns whether the page was already resident.
	Install(page int) bool
	// Remove drops page without invoking the evict hook or counting an
	// eviction — pools back out a fault whose source read failed.
	// Removing a pinned or absent page is a no-op returning false.
	Remove(page int) bool
	// Pinned reports whether page is pinned.
	Pinned(page int) bool
	// NoteMiss counts a miss without making the page resident — the
	// accounting for a fault whose source read failed. Unlike Access it
	// can never evict, so it is safe when a dirty victim has not been
	// written back.
	NoteMiss(page int)
	// Grow extends the page-number space (no-op if not larger).
	Grow(numPages int)
	// NumPages returns the current page-number space bound.
	NumPages() int
	// SetOnEvict registers a hook called with each evicted page, letting
	// a pool release the frame. The hook must not call back into the
	// policy.
	SetOnEvict(func(page int))
}

// Compile-time conformance.
var (
	_ PoolPolicy = (*LRU)(nil)
	_ PoolPolicy = (*Clock)(nil)
	_ PoolPolicy = (*TwoQ)(nil)
	_ PoolPolicy = (*ClockPro)(nil)
	_ Policy     = (*Sharded)(nil)
)

// policyCore is the bookkeeping shared by every built-in policy:
// capacity/numPages bounds (validated once, in one place), the pinned
// set, resident/pinned counts, the eviction hook, and the embedded
// policyCounters accounting. Embedding it keeps new policies from
// drifting on the parts of the contract that must stay identical.
type policyCore struct {
	capacity int
	numPages int
	pinned   []bool // page -> pinned
	size     int    // resident pages, including pinned
	nPinned  int
	onEvict  func(page int)

	policyCounters
}

// newPolicyCore validates the shared constructor arguments. capacity
// must be positive and numPages non-negative; violations panic, as both
// always come from experiment configuration bugs, not data.
func newPolicyCore(kind string, capacity, numPages int) policyCore {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: %s capacity %d < 1", kind, capacity))
	}
	if numPages < 0 {
		panic(fmt.Sprintf("buffer: negative page count %d", numPages))
	}
	return policyCore{
		capacity: capacity,
		numPages: numPages,
		pinned:   make([]bool, numPages), //lint:allow hotalloc constructor: one-time setup of a hot type
	}
}

// Capacity returns the page capacity.
func (c *policyCore) Capacity() int { return c.capacity }

// NumPages returns the page-number space bound.
func (c *policyCore) NumPages() int { return c.numPages }

// Len returns the number of resident pages (pinned included).
func (c *policyCore) Len() int { return c.size }

// Full reports whether the cache is at capacity — the warm-up boundary
// of the Bhide/Dan/Dias analysis.
func (c *policyCore) Full() bool { return c.size >= c.capacity }

// Pinned reports whether page is pinned.
func (c *policyCore) Pinned(page int) bool { return c.pinned[page] }

// SetOnEvict registers the eviction hook (nil clears it).
func (c *policyCore) SetOnEvict(f func(page int)) { c.onEvict = f }

// NoteMiss counts a miss without touching residency (see PoolPolicy).
func (c *policyCore) NoteMiss(page int) { c.miss(page) }

// checkPin rejects pinning when every slot is already pinned.
func (c *policyCore) checkPin(page int) error {
	if c.nPinned >= c.capacity {
		return fmt.Errorf("buffer: cannot pin page %d: all %d slots pinned", page, c.capacity)
	}
	return nil
}

// evictPage records one eviction: the counter, the obs mirror, and the
// frame-release hook.
func (c *policyCore) evictPage(page int) {
	c.evict()
	if c.onEvict != nil {
		c.onEvict(page)
	}
}

// grow extends the pinned set and the page-number bound, reporting
// whether there was anything to do (policies extend their own arrays on
// true).
func (c *policyCore) grow(numPages int) bool {
	if numPages <= c.numPages {
		return false
	}
	extra := numPages - c.numPages
	c.pinned = append(c.pinned, make([]bool, extra)...)
	c.numPages = numPages
	return true
}

// noEvictableErr is the shared exhaustion error: an eviction was needed
// but every resident page is pinned.
func noEvictableErr(capacity, nPinned int) error {
	return fmt.Errorf("buffer: no evictable page (capacity %d, %d pinned)", capacity, nPinned)
}

// PolicyFactory constructs a replacement policy for a capacity over the
// dense page numbers [0, numPages). sim.Config.Policy and the sharded
// pool's per-shard construction both take this shape.
type PolicyFactory func(capacity, numPages int) PoolPolicy

// PolicyNames lists the built-in replacement policies in the order the
// CLIs document them.
func PolicyNames() []string { return []string{"lru", "clock", "2q", "clockpro"} }

// FactoryFor resolves a policy name ("lru", "clock", "2q", "clockpro")
// to its constructor.
func FactoryFor(name string) (PolicyFactory, error) {
	switch name {
	case "", "lru":
		return func(capacity, numPages int) PoolPolicy { return NewLRU(capacity, numPages) }, nil
	case "clock":
		return func(capacity, numPages int) PoolPolicy { return NewClock(capacity, numPages) }, nil
	case "2q":
		return func(capacity, numPages int) PoolPolicy { return NewTwoQ(capacity, numPages) }, nil
	case "clockpro":
		return func(capacity, numPages int) PoolPolicy { return NewClockPro(capacity, numPages) }, nil
	default:
		return nil, fmt.Errorf("buffer: unknown policy %q (have %v)", name, PolicyNames())
	}
}

// Sharded routes accesses across per-shard sub-policies exactly the way
// ShardedPool routes pages — shard = page mod n, local page = page div
// n, capacity split round-robin — so the single-threaded validation
// simulator can measure the hit-rate cost of sharding deterministically.
// With shards=1 it delegates to the inner policy over an identity
// mapping and is behavior-identical to it.
type Sharded struct {
	shards []PoolPolicy
	n      int
}

// NewSharded builds a sharded policy over n shards, each constructed by
// factory with its share of the capacity. n is clamped to [1, capacity]
// so every shard has at least one frame.
func NewSharded(factory PolicyFactory, capacity, numPages, n int) *Sharded {
	if capacity < 1 {
		panic(fmt.Sprintf("buffer: Sharded capacity %d < 1", capacity))
	}
	if n < 1 {
		n = 1
	}
	if n > capacity {
		n = capacity
	}
	s := &Sharded{n: n, shards: make([]PoolPolicy, n)}
	for i := 0; i < n; i++ {
		s.shards[i] = factory(shardCapacity(capacity, n, i), shardPages(numPages, n, i))
	}
	return s
}

// shardCapacity splits capacity round-robin: shard s gets cap/n plus one
// of the cap mod n leftovers.
func shardCapacity(capacity, n, s int) int {
	c := capacity / n
	if s < capacity%n {
		c++
	}
	return c
}

// shardPages counts the global pages p < numPages with p mod n == s.
func shardPages(numPages, n, s int) int {
	if numPages <= s {
		return 0
	}
	return (numPages - s + n - 1) / n
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return s.n }

func (s *Sharded) locate(page int) (PoolPolicy, int) {
	return s.shards[page%s.n], page / s.n
}

// Access touches page in its shard.
func (s *Sharded) Access(page int) bool {
	p, local := s.locate(page)
	return p.Access(local)
}

// Pin pins page in its shard.
func (s *Sharded) Pin(page int) error {
	p, local := s.locate(page)
	return p.Pin(local)
}

// Unpin unpins page in its shard.
func (s *Sharded) Unpin(page int) {
	p, local := s.locate(page)
	p.Unpin(local)
}

// Contains reports residency in the page's shard.
func (s *Sharded) Contains(page int) bool {
	p, local := s.locate(page)
	return p.Contains(local)
}

// Full reports whether every shard is at capacity.
func (s *Sharded) Full() bool {
	for _, p := range s.shards {
		if !p.Full() {
			return false
		}
	}
	return true
}

// Len sums resident pages across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, p := range s.shards {
		n += p.Len()
	}
	return n
}

// Capacity sums shard capacities (the configured total).
func (s *Sharded) Capacity() int {
	n := 0
	for _, p := range s.shards {
		n += p.Capacity()
	}
	return n
}

// Stats sums the shard counters.
func (s *Sharded) Stats() (hits, misses, evictions uint64) {
	for _, p := range s.shards {
		h, m, e := p.Stats()
		hits += h
		misses += m
		evictions += e
	}
	return hits, misses, evictions
}

// ResetStats zeroes every shard's counters.
func (s *Sharded) ResetStats() {
	for _, p := range s.shards {
		p.ResetStats()
	}
}

// HitRatio returns the pooled hit ratio across shards.
func (s *Sharded) HitRatio() float64 {
	h, m, _ := s.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// SetMetrics attaches the obs mirror to every shard. Per-level series
// need global page numbers, so each shard gets a view that remaps its
// local pages back through the shard stride.
func (s *Sharded) SetMetrics(m *Metrics) {
	for i, p := range s.shards {
		p.SetMetrics(m.shardView(i, s.n))
	}
}
