package buffer

import (
	"bytes"
	"testing"
)

// These tests replay, deterministically, the interleavings ShardedPool
// can produce between an unlocked source read and a concurrent Put —
// the lost-update class REVIEW.md flagged. The fault's install must
// never clobber a frame whose contents are ahead of the source (dirty,
// or clean because the newer contents were already flushed), and a
// pin's install must never replace a frame a concurrent Put created.

func repeatByte(pageSize int, b byte) []byte {
	return bytes.Repeat([]byte{b}, pageSize)
}

// beginFault replays the unlocked half of ShardedPool's fault path up
// to the point where the source bytes are staged but not yet committed:
// probe the miss, capture the dirty version, read the source.
func beginFault(t *testing.T, p *Pool, page int) (stale []byte, ver uint32) {
	t.Helper()
	if _, ok, err := p.TryGet(page); ok || err != nil {
		t.Fatalf("TryGet(%d) = resident %v, err %v; want a clean miss", page, ok, err)
	}
	ver = p.faultVersion(page)
	stale = make([]byte, p.src.PageSize())
	if err := p.readPage(page, stale); err != nil {
		t.Fatalf("staging source read: %v", err)
	}
	return stale, ver
}

func TestInstallKeepsDirtyFrameOverStaleFault(t *testing.T) {
	const pageSize = 32
	src := &faultySource{pageSize: pageSize}
	p := NewPool(src, 4, 8)
	sink := newConcSink()
	p.SetSink(sink)

	// A fault of page 3 stages its source read; then a Put lands before
	// the fault commits.
	stale, ver := beginFault(t, p, 3)
	want := repeatByte(pageSize, 0xEE)
	if err := p.Put(3, want); err != nil {
		t.Fatal(err)
	}
	p.install(3, stale, ver)

	got, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stale fault clobbered the dirty frame: got %x, want %x", got[0], want[0])
	}
	if !p.dirty[3] {
		t.Error("page 3 no longer dirty after losing install")
	}
	// The committed contents — not the stale source bytes — reach the sink.
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if !bytes.Equal(sink.pages[3], want) {
		t.Fatalf("sink got %x, want the Put contents %x", sink.pages[3][0], want[0])
	}
}

func TestInstallSkipsStaleRefreshAfterFlush(t *testing.T) {
	const pageSize = 32
	src := &faultySource{pageSize: pageSize}
	p := NewPool(src, 4, 8)
	p.SetSink(newConcSink())

	// Same race, but the Put is flushed before the stale install commits:
	// the frame is clean again, yet still ahead of the staged source
	// bytes. The dirty-version capture is what catches this variant.
	stale, ver := beginFault(t, p, 3)
	want := repeatByte(pageSize, 0xEE)
	if err := p.Put(3, want); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	p.install(3, stale, ver)

	got, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stale fault clobbered the flushed frame: got %x, want %x", got[0], want[0])
	}
}

func TestInstallStillRefreshesDuplicateFault(t *testing.T) {
	const pageSize = 32
	src := &faultySource{pageSize: pageSize}
	p := NewPool(src, 4, 8)

	// The benign race: two faults of one page, no write in the window.
	// The loser commits second, counts a hit, and the contents stay the
	// canonical source bytes.
	stale, ver := beginFault(t, p, 5)
	winner := make([]byte, pageSize)
	if err := p.readPage(5, winner); err != nil {
		t.Fatal(err)
	}
	p.install(5, winner, ver)
	p.install(5, stale, ver)

	got, err := p.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatalf("page 5 contents %x after duplicate fault", got[0])
	}
	// Winner's install: one miss. Loser's install and the Get: two hits.
	hits, misses, _ := p.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2 hits, 1 miss", hits, misses)
	}
}

func TestInstallPinnedKeepsConcurrentPutFrame(t *testing.T) {
	const pageSize = 32
	src := &faultySource{pageSize: pageSize}
	p := NewPool(src, 4, 8)
	sink := newConcSink()
	p.SetSink(sink)

	// A Pin of page 2 stages its source read; a Put lands in the window.
	need, ver, err := p.preparePin(2)
	if err != nil || !need {
		t.Fatalf("preparePin = %v/%v, want a read needed", need, err)
	}
	stale := make([]byte, pageSize)
	if err := p.readPage(2, stale); err != nil {
		t.Fatal(err)
	}
	want := repeatByte(pageSize, 0xCD)
	if err := p.Put(2, want); err != nil {
		t.Fatal(err)
	}
	p.installPinned(2, stale, ver)

	got, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("installPinned clobbered the dirty frame: got %x, want %x", got[0], want[0])
	}
	if !p.dirty[2] {
		t.Error("page 2 no longer dirty after pin install")
	}
	if !p.policy.Pinned(2) {
		t.Error("page 2 not pinned")
	}
	if err := p.FlushDirty(); err != nil {
		t.Fatal(err)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if !bytes.Equal(sink.pages[2], want) {
		t.Fatalf("sink got %x, want the Put contents %x", sink.pages[2][0], want[0])
	}
}

func TestInstallPinnedFillsMissingFrame(t *testing.T) {
	const pageSize = 32
	src := &faultySource{pageSize: pageSize}
	p := NewPool(src, 4, 8)

	// No race: the normal pin path still installs the read bytes.
	need, ver, err := p.preparePin(6)
	if err != nil || !need {
		t.Fatalf("preparePin = %v/%v", need, err)
	}
	buf := make([]byte, pageSize)
	if err := p.readPage(6, buf); err != nil {
		t.Fatal(err)
	}
	p.installPinned(6, buf, ver)
	got, err := p.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 {
		t.Fatalf("pinned page contents %x", got[0])
	}
}
