// Package monitor compares the live buffer behavior of a running system
// against the paper's analytic prediction, online. The model (core)
// predicts steady-state disk accesses per query for a given policy and
// buffer size; the buffer layer (via obs) counts what actually happens.
// This package closes the loop: it consumes the obs counters in sliding
// windows of queries, computes the normalized model residual per window
// (total and per tree level), tracks an EWMA of the residual, and runs a
// two-sided CUSUM drift detector that raises an alarm when observed
// behavior departs from the model — the signature of a workload shift,
// a mis-sized buffer, or a policy mismatch. It is the measurement
// substrate for the ROADMAP self-tuning advisor: the advisor needs to
// know the model has stopped describing reality before re-planning.
//
// Contracts (inherited from the obs layer): a nil *Monitor is the
// disabled monitor — OnQuery and Rebase are allocation-free no-ops; an
// enabled monitor is race-safe; monitoring never changes query results,
// only observes counters the buffer layer already maintains.
package monitor

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"rtreebuf/internal/core"
	"rtreebuf/internal/obs"
)

// Prediction is a policy-matched model evaluation frozen at monitor
// construction: the expected disk accesses and node accesses per query,
// total and per tree level, for one (policy, buffer, pinning, sharding)
// configuration.
type Prediction struct {
	// Policy is the metrics label the buffer layer reports under
	// ("lru", "2q", "clockpro", ...).
	Policy string
	// Model names the analytic model the prediction came from.
	Model string

	BufferSize int
	PinLevels  int
	Shards     int

	// DiskPerQuery is the predicted steady-state EDT.
	DiskPerQuery float64
	// NodesPerQuery is the bufferless EPT (accesses, hit or miss).
	NodesPerQuery float64
	// LevelDisk and LevelNodes split the two by tree level, root first.
	LevelDisk  []float64
	LevelNodes []float64

	// BracketLo/BracketHi carry the Clock-Pro bounds when the policy
	// only has a bracket, not a point prediction (both zero otherwise).
	// DiskPerQuery is then the bracket's upper edge and residuals are
	// measured against it, so a Clock-Pro run that beats the LRU edge
	// shows as a negative residual rather than an alarm.
	BracketLo, BracketHi float64
}

// PredictionFor picks the analytic model matching the configured policy,
// pinning, and sharding — the same dispatch the CLIs use for their
// model-vs-measurement tables. Pinning analysis exists only for the LRU
// model; Clock-Pro is monitored against the upper edge of its bracket;
// CLOCK uses the LRU model (experiment ext-clock validates that); a
// sharded pool gets the per-shard partition model.
func PredictionFor(pred *core.Predictor, policy string, bufferSize, pinLevels, shards int) (Prediction, error) {
	p := Prediction{
		Policy:        policy,
		BufferSize:    bufferSize,
		PinLevels:     pinLevels,
		Shards:        shards,
		NodesPerQuery: pred.NodesVisited(),
		LevelNodes:    pred.NodesVisitedPerLevel(),
	}
	if policy == "" {
		p.Policy = "lru"
	}
	if pinLevels > 0 {
		edt, err := pred.DiskAccessesPinned(bufferSize, pinLevels)
		if err != nil {
			return Prediction{}, err
		}
		split, err := pred.DiskAccessesPinnedPerLevel(bufferSize, pinLevels)
		if err != nil {
			return Prediction{}, err
		}
		p.Model = "lru model (pinned)"
		p.DiskPerQuery = edt
		p.LevelDisk = split
		return p, nil
	}
	switch policy {
	case "2q":
		p.Model = "2q renewal model"
		p.DiskPerQuery = pred.DiskAccesses2Q(bufferSize)
		p.LevelDisk = pred.DiskAccesses2QPerLevel(bufferSize)
		return p, nil
	case "clockpro":
		lo, hi := pred.ClockProBounds(bufferSize)
		p.Model = "clockpro bracket upper edge"
		p.DiskPerQuery = hi
		p.BracketLo, p.BracketHi = lo, hi
		// The bracket has no per-level split of its own; the LRU split is
		// the monitored per-level reference (the bracket's upper edge).
		p.LevelDisk = pred.DiskAccessesPerLevel(bufferSize)
		return p, nil
	}
	if shards > 1 {
		p.Model = fmt.Sprintf("sharded(%d) lru model", shards)
		p.DiskPerQuery = pred.DiskAccessesSharded(bufferSize, shards)
		p.LevelDisk = pred.DiskAccessesShardedPerLevel(bufferSize, shards)
		return p, nil
	}
	p.Model = "lru model"
	p.DiskPerQuery = pred.DiskAccesses(bufferSize)
	p.LevelDisk = pred.DiskAccessesPerLevel(bufferSize)
	return p, nil
}

// Config tunes the monitor's window and drift detector. The zero value
// selects the defaults.
type Config struct {
	// Window is how many queries one residual window spans.
	Window int
	// EWMAAlpha weights the newest window in the residual EWMA.
	EWMAAlpha float64
	// CUSUMK is the per-window slack (drift below it is absorbed);
	// CUSUMH is the alarm threshold on the accumulated statistic.
	CUSUMK, CUSUMH float64
	// ResidualFloor bounds the normalization denominator away from zero
	// so near-zero predictions don't blow tiny absolute errors up into
	// huge relative ones.
	ResidualFloor float64
}

// Defaults for Config's zero fields.
const (
	DefaultWindow        = 1000
	DefaultEWMAAlpha     = 0.2
	DefaultCUSUMK        = 0.25
	DefaultCUSUMH        = 1.0
	DefaultResidualFloor = 0.05
)

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = DefaultEWMAAlpha
	}
	if c.CUSUMK <= 0 {
		c.CUSUMK = DefaultCUSUMK
	}
	if c.CUSUMH <= 0 {
		c.CUSUMH = DefaultCUSUMH
	}
	if c.ResidualFloor <= 0 {
		c.ResidualFloor = DefaultResidualFloor
	}
	return c
}

// Monitor is the online residual monitor. It reads the buffer counters
// the metrics mirror already maintains (grabbing each handle once — the
// registry returns the same handle for the same identity, so reads are
// plain atomic loads) and publishes its own series into the same
// registry: model_residual{policy,level}, model_residual_ewma{policy},
// drift_alarm_total{policy}, monitor_windows_total{policy}, and the two
// CUSUM statistics.
type Monitor struct {
	cfg  Config
	pred Prediction

	// Inputs: the buffer layer's counters (cumulative, never reset).
	hits, misses           *obs.Counter
	levelHits, levelMisses []*obs.Counter

	// Outputs.
	residual    *obs.Gauge // level="all"
	levelResids []*obs.Gauge
	ewmaGauge   *obs.Gauge
	cusumPosG   *obs.Gauge
	cusumNegG   *obs.Gauge
	alarmsC     *obs.Counter
	windowsC    *obs.Counter

	// queries ticks the window boundary; Add is lock-free so OnQuery
	// stays cheap off-boundary.
	queries atomic.Uint64

	mu             sync.Mutex
	baseHits       uint64
	baseMisses     uint64
	baseLevelHits  []uint64
	baseLevelMiss  []uint64
	ewma           float64
	ewmaPrimed     bool
	pos, neg       float64
	windows        uint64
	alarms         uint64
	lastResidual   float64
	residualSum    float64
	maxAbsResidual float64
	lastObserved   float64
	levelResidVals []float64
}

// New builds a monitor for the given prediction over the registry the
// buffer metrics report into. A nil registry returns a nil (disabled)
// monitor, so call sites need no conditional wiring.
func New(reg *obs.Registry, pred Prediction, cfg Config) *Monitor {
	if reg == nil {
		return nil
	}
	cfg = cfg.withDefaults()
	pol := obs.L("policy", pred.Policy)
	levels := len(pred.LevelDisk)
	m := &Monitor{
		cfg:            cfg,
		pred:           pred,
		hits:           reg.Counter("buffer_hits_total", pol),
		misses:         reg.Counter("buffer_misses_total", pol),
		residual:       reg.Gauge("model_residual", pol, obs.L("level", "all")),
		ewmaGauge:      reg.Gauge("model_residual_ewma", pol),
		cusumPosG:      reg.Gauge("model_cusum_pos", pol),
		cusumNegG:      reg.Gauge("model_cusum_neg", pol),
		alarmsC:        reg.Counter("drift_alarm_total", pol),
		windowsC:       reg.Counter("monitor_windows_total", pol),
		levelHits:      make([]*obs.Counter, levels),
		levelMisses:    make([]*obs.Counter, levels),
		levelResids:    make([]*obs.Gauge, levels),
		baseLevelHits:  make([]uint64, levels),
		baseLevelMiss:  make([]uint64, levels),
		levelResidVals: make([]float64, levels),
	}
	for lvl := 0; lvl < levels; lvl++ {
		l := obs.L("level", strconv.Itoa(lvl))
		m.levelHits[lvl] = reg.Counter("buffer_level_hits_total", pol, l)
		m.levelMisses[lvl] = reg.Counter("buffer_level_misses_total", pol, l)
		m.levelResids[lvl] = reg.Gauge("model_residual", pol, l)
	}
	return m
}

// Prediction returns the frozen model evaluation the monitor compares
// against (zero value on a nil monitor).
func (m *Monitor) Prediction() Prediction {
	if m == nil {
		return Prediction{}
	}
	return m.pred
}

// Rebase restarts the monitor's windows from the counters' current
// values — called after warm-up so the first window measures steady
// state, not the fill transient. Drift state (EWMA, CUSUM) is cleared.
func (m *Monitor) Rebase() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries.Store(0)
	m.baseHits = m.hits.Value()
	m.baseMisses = m.misses.Value()
	for lvl := range m.levelHits {
		m.baseLevelHits[lvl] = m.levelHits[lvl].Value()
		m.baseLevelMiss[lvl] = m.levelMisses[lvl].Value()
	}
	m.ewma, m.ewmaPrimed = 0, false
	m.pos, m.neg = 0, 0
	m.windows, m.alarms = 0, 0
	m.lastResidual, m.residualSum, m.maxAbsResidual, m.lastObserved = 0, 0, 0, 0
	for i := range m.levelResidVals {
		m.levelResidVals[i] = 0
	}
}

// OnQuery counts one finished query and, at each window boundary,
// evaluates the window. Nil-safe and allocation-free when disabled;
// off-boundary it is one atomic add.
func (m *Monitor) OnQuery() {
	if m == nil {
		return
	}
	if q := m.queries.Add(1); q%uint64(m.cfg.Window) == 0 {
		m.tick()
	}
}

// residualOf normalizes observed-vs-predicted into a relative residual,
// with the denominator floored so near-zero predictions stay sane.
func (m *Monitor) residualOf(observed, predicted float64) float64 {
	return (observed - predicted) / math.Max(predicted, m.cfg.ResidualFloor)
}

// tick evaluates the window that just closed.
func (m *Monitor) tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := float64(m.cfg.Window)

	curHits, curMisses := m.hits.Value(), m.misses.Value()
	dMiss := curMisses - m.baseMisses
	m.baseHits, m.baseMisses = curHits, curMisses

	observed := float64(dMiss) / w
	r := m.residualOf(observed, m.pred.DiskPerQuery)

	m.windows++
	m.lastResidual = r
	m.lastObserved = observed
	m.residualSum += r
	if a := math.Abs(r); a > m.maxAbsResidual {
		m.maxAbsResidual = a
	}
	if m.ewmaPrimed {
		m.ewma = m.cfg.EWMAAlpha*r + (1-m.cfg.EWMAAlpha)*m.ewma
	} else {
		m.ewma, m.ewmaPrimed = r, true
	}
	// Two-sided CUSUM on the normalized residual: pos accumulates
	// "worse than the model", neg "better than the model" (a workload
	// collapsing into the buffer is drift too). Alarm resets both sides
	// so sustained drift re-alarms once per excursion past the
	// threshold, not once per window.
	m.pos = math.Max(0, m.pos+r-m.cfg.CUSUMK)
	m.neg = math.Max(0, m.neg-r-m.cfg.CUSUMK)
	if m.pos > m.cfg.CUSUMH || m.neg > m.cfg.CUSUMH {
		m.alarms++
		m.alarmsC.Inc()
		m.pos, m.neg = 0, 0
	}

	for lvl := range m.levelMisses {
		cur := m.levelMisses[lvl].Value()
		d := cur - m.baseLevelMiss[lvl]
		m.baseLevelMiss[lvl] = cur
		m.baseLevelHits[lvl] = m.levelHits[lvl].Value()
		lr := m.residualOf(float64(d)/w, m.pred.LevelDisk[lvl])
		m.levelResidVals[lvl] = lr
		m.levelResids[lvl].Set(lr)
	}

	m.residual.Set(r)
	m.ewmaGauge.Set(m.ewma)
	m.cusumPosG.Set(m.pos)
	m.cusumNegG.Set(m.neg)
	m.windowsC.Inc()
}

// Status is a point-in-time copy of the monitor's drift state.
type Status struct {
	Prediction Prediction
	Window     int

	Queries uint64 // since the last Rebase
	Windows uint64 // completed windows

	LastObservedDisk float64 // disk accesses per query, last window
	LastResidual     float64
	MeanResidual     float64 // over all completed windows
	MaxAbsResidual   float64
	EWMA             float64
	CUSUMPos         float64
	CUSUMNeg         float64
	Alarms           uint64

	LevelResiduals []float64 // last window, root first
}

// Status snapshots the drift state (zero value on a nil monitor).
func (m *Monitor) Status() Status {
	if m == nil {
		return Status{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		Prediction:       m.pred,
		Window:           m.cfg.Window,
		Queries:          m.queries.Load(),
		Windows:          m.windows,
		LastObservedDisk: m.lastObserved,
		LastResidual:     m.lastResidual,
		MaxAbsResidual:   m.maxAbsResidual,
		EWMA:             m.ewma,
		CUSUMPos:         m.pos,
		CUSUMNeg:         m.neg,
		Alarms:           m.alarms,
		LevelResiduals:   append([]float64(nil), m.levelResidVals...),
	}
	if m.windows > 0 {
		s.MeanResidual = m.residualSum / float64(m.windows)
	}
	return s
}

// WriteText renders the -monitor report: the prediction being tracked,
// the residual statistics, and the per-level residuals of the last
// window. Nil monitors write nothing.
func (m *Monitor) WriteText(w io.Writer) error {
	if m == nil {
		return nil
	}
	s := m.Status()
	if _, err := fmt.Fprintf(w, "model monitor: %s (policy=%s buffer=%d", s.Prediction.Model,
		s.Prediction.Policy, s.Prediction.BufferSize); err != nil {
		return err
	}
	if s.Prediction.PinLevels > 0 {
		if _, err := fmt.Fprintf(w, " pin=%d", s.Prediction.PinLevels); err != nil {
			return err
		}
	}
	if s.Prediction.Shards > 1 {
		if _, err := fmt.Fprintf(w, " shards=%d", s.Prediction.Shards); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, ")\n  predicted disk/query: %.4f", s.Prediction.DiskPerQuery); err != nil {
		return err
	}
	if s.Prediction.BracketHi > s.Prediction.BracketLo {
		if _, err := fmt.Fprintf(w, "  (bracket [%.4f, %.4f])",
			s.Prediction.BracketLo, s.Prediction.BracketHi); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n  windows: %d x %d queries (%d queries since rebase)\n",
		s.Windows, s.Window, s.Queries); err != nil {
		return err
	}
	if s.Windows == 0 {
		_, err := fmt.Fprintln(w, "  no completed windows yet")
		return err
	}
	if _, err := fmt.Fprintf(w,
		"  observed disk/query (last window): %.4f\n"+
			"  residual: last %+.3f  mean %+.3f  max|r| %.3f  ewma %+.3f\n"+
			"  cusum: pos %.3f neg %.3f (k=%.2f h=%.2f)  drift alarms: %d\n",
		s.LastObservedDisk, s.LastResidual, s.MeanResidual, s.MaxAbsResidual, s.EWMA,
		s.CUSUMPos, s.CUSUMNeg, m.cfg.CUSUMK, m.cfg.CUSUMH, s.Alarms); err != nil {
		return err
	}
	for lvl, lr := range s.LevelResiduals {
		if _, err := fmt.Fprintf(w, "  level %d residual: %+.3f (model %.4f/query)\n",
			lvl, lr, s.Prediction.LevelDisk[lvl]); err != nil {
			return err
		}
	}
	return nil
}
