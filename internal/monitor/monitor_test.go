package monitor

import (
	"math"
	"strings"
	"sync"
	"testing"

	"rtreebuf/internal/core"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/obs"
)

// testPredictor builds a 3-level point-query predictor over an exact
// tiling (root, 4x4 mid, 16x16 leaves) — EPT is exactly 3.
func testPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	tile := func(n int) []geom.Rect {
		out := make([]geom.Rect, 0, n*n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				out = append(out, geom.Rect{
					MinX: float64(x) / float64(n), MinY: float64(y) / float64(n),
					MaxX: float64(x+1) / float64(n), MaxY: float64(y+1) / float64(n)})
			}
		}
		return out
	}
	qm, err := core.NewUniformQueries(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewPredictor([][]geom.Rect{{geom.UnitSquare}, tile(4), tile(16)}, qm)
}

func TestPredictionForDispatch(t *testing.T) {
	pred := testPredictor(t)
	const b = 40
	cases := []struct {
		policy      string
		pin, shards int
		wantModel   string
		wantEDT     float64
	}{
		{"", 0, 1, "lru model", pred.DiskAccesses(b)},
		{"lru", 0, 1, "lru model", pred.DiskAccesses(b)},
		{"clock", 0, 1, "lru model", pred.DiskAccesses(b)},
		{"2q", 0, 1, "2q renewal model", pred.DiskAccesses2Q(b)},
		{"lru", 0, 4, "sharded(4) lru model", pred.DiskAccessesSharded(b, 4)},
	}
	for _, c := range cases {
		p, err := PredictionFor(pred, c.policy, b, c.pin, c.shards)
		if err != nil {
			t.Fatalf("%q: %v", c.policy, err)
		}
		if p.Model != c.wantModel {
			t.Errorf("%q: model %q, want %q", c.policy, p.Model, c.wantModel)
		}
		if math.Abs(p.DiskPerQuery-c.wantEDT) > 1e-12 {
			t.Errorf("%q: EDT %g, want %g", c.policy, p.DiskPerQuery, c.wantEDT)
		}
		if len(p.LevelDisk) != pred.LevelCount() || len(p.LevelNodes) != pred.LevelCount() {
			t.Errorf("%q: per-level splits have %d/%d entries, want %d",
				c.policy, len(p.LevelDisk), len(p.LevelNodes), pred.LevelCount())
		}
		var sum float64
		for _, v := range p.LevelDisk {
			sum += v
		}
		if c.policy != "clockpro" && math.Abs(sum-p.DiskPerQuery) > 1e-9 {
			t.Errorf("%q: level split sums to %g, want %g", c.policy, sum, p.DiskPerQuery)
		}
	}

	// Clock-Pro: monitored against the bracket's upper edge.
	p, err := PredictionFor(pred, "clockpro", b, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := pred.ClockProBounds(b)
	if p.BracketLo != lo || p.BracketHi != hi || p.DiskPerQuery != hi {
		t.Errorf("clockpro bracket = [%g,%g] edt=%g, want [%g,%g] and hi", p.BracketLo, p.BracketHi, p.DiskPerQuery, lo, hi)
	}

	// Pinning wins over the policy dispatch and propagates errors.
	pp, err := PredictionFor(pred, "lru", b, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := pred.DiskAccessesPinned(b, 1)
	if pp.Model != "lru model (pinned)" || math.Abs(pp.DiskPerQuery-want) > 1e-12 {
		t.Errorf("pinned prediction = %+v", pp)
	}
	if _, err := PredictionFor(pred, "lru", 2, 2, 1); err == nil {
		t.Error("infeasible pinning accepted")
	}
	// Default policy label.
	if p, _ := PredictionFor(pred, "", b, 0, 1); p.Policy != "lru" {
		t.Errorf("empty policy labeled %q, want lru", p.Policy)
	}
}

// driveWindow simulates the buffer layer: bump the counters the monitor
// watches as if `misses` of the window's queries missed, split across
// levels by share, then tick the monitor through one window of queries.
func driveWindow(reg *obs.Registry, m *Monitor, window int, misses uint64, levelMisses []uint64) {
	pol := obs.L("policy", "lru")
	reg.Counter("buffer_misses_total", pol).Add(misses)
	reg.Counter("buffer_hits_total", pol).Add(uint64(window)*3 - misses)
	for lvl, lm := range levelMisses {
		reg.Counter("buffer_level_misses_total", pol, obs.L("level", levelLabel(lvl))).Add(lm)
	}
	for i := 0; i < window; i++ {
		m.OnQuery()
	}
}

func levelLabel(lvl int) string { return string(rune('0' + lvl)) }

func newTestMonitor(t *testing.T, reg *obs.Registry, window int) *Monitor {
	t.Helper()
	pred := Prediction{
		Policy:       "lru",
		Model:        "lru model",
		BufferSize:   40,
		DiskPerQuery: 1.0,
		LevelDisk:    []float64{0, 0.2, 0.8},
	}
	m := New(reg, pred, Config{Window: window})
	if m == nil {
		t.Fatal("New returned nil for a non-nil registry")
	}
	m.Rebase()
	return m
}

func TestMonitorResidualAndLevels(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestMonitor(t, reg, 10)

	// Window exactly on model: 10 misses over 10 queries = 1.0/query.
	driveWindow(reg, m, 10, 10, []uint64{0, 2, 8})
	s := m.Status()
	if s.Windows != 1 {
		t.Fatalf("windows = %d, want 1", s.Windows)
	}
	if s.LastObservedDisk != 1.0 || s.LastResidual != 0 {
		t.Errorf("on-model window: observed=%g residual=%g, want 1.0 and 0", s.LastObservedDisk, s.LastResidual)
	}
	for lvl, lr := range s.LevelResiduals {
		if lr != 0 {
			t.Errorf("on-model level %d residual = %g, want 0", lvl, lr)
		}
	}
	if s.Alarms != 0 {
		t.Errorf("on-model window alarmed")
	}

	// Window 50%% over model: residual = (1.5-1.0)/1.0 = +0.5, leaf level
	// carries all the excess: (1.3-0.8)/0.8 = +0.625.
	driveWindow(reg, m, 10, 15, []uint64{0, 2, 13})
	s = m.Status()
	if math.Abs(s.LastResidual-0.5) > 1e-12 {
		t.Errorf("over-model residual = %g, want 0.5", s.LastResidual)
	}
	if math.Abs(s.LevelResiduals[2]-0.625) > 1e-12 {
		t.Errorf("leaf residual = %g, want 0.625", s.LevelResiduals[2])
	}
	if s.LevelResiduals[1] != 0 {
		t.Errorf("mid residual = %g, want 0", s.LevelResiduals[1])
	}
	if s.MaxAbsResidual != 0.5 || math.Abs(s.MeanResidual-0.25) > 1e-12 {
		t.Errorf("max=%g mean=%g, want 0.5 and 0.25", s.MaxAbsResidual, s.MeanResidual)
	}
	// The residual gauges mirror into the registry.
	if got := reg.Gauge("model_residual", obs.L("policy", "lru"), obs.L("level", "all")).Value(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("model_residual gauge = %g, want 0.5", got)
	}
}

func TestMonitorCUSUMAlarmAndReset(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestMonitor(t, reg, 10)

	// Sustained +1.0 residual: pos goes 0.75 after window 1, 1.5 after
	// window 2 — over the h=1.0 threshold, one alarm, statistic reset.
	driveWindow(reg, m, 10, 20, nil)
	if s := m.Status(); s.Alarms != 0 || math.Abs(s.CUSUMPos-0.75) > 1e-12 {
		t.Fatalf("after window 1: %+v", s)
	}
	driveWindow(reg, m, 10, 20, nil)
	s := m.Status()
	if s.Alarms != 1 {
		t.Fatalf("after window 2: alarms = %d, want 1", s.Alarms)
	}
	if s.CUSUMPos != 0 || s.CUSUMNeg != 0 {
		t.Errorf("statistics not reset after alarm: pos=%g neg=%g", s.CUSUMPos, s.CUSUMNeg)
	}
	if got := reg.Counter("drift_alarm_total", obs.L("policy", "lru")).Value(); got != 1 {
		t.Errorf("drift_alarm_total = %d, want 1", got)
	}

	// The negative side alarms too: observed 0 vs predicted 1.
	driveWindow(reg, m, 10, 0, nil)
	driveWindow(reg, m, 10, 0, nil)
	if s := m.Status(); s.Alarms != 2 {
		t.Errorf("negative drift: alarms = %d, want 2", s.Alarms)
	}

	// Rebase clears everything.
	m.Rebase()
	s = m.Status()
	if s.Windows != 0 || s.Alarms != 0 || s.EWMA != 0 || s.CUSUMPos != 0 || s.Queries != 0 {
		t.Errorf("post-rebase status = %+v, want zeroed", s)
	}
}

func TestMonitorStationaryStaysSilent(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestMonitor(t, reg, 10)
	// 20 windows with small ±10% wobble around the model: inside the
	// CUSUM slack, so never an alarm.
	for i := 0; i < 20; i++ {
		misses := uint64(10)
		if i%2 == 0 {
			misses = 11
		} else {
			misses = 9
		}
		driveWindow(reg, m, 10, misses, nil)
	}
	s := m.Status()
	if s.Alarms != 0 {
		t.Errorf("stationary run alarmed %d times", s.Alarms)
	}
	if s.Windows != 20 {
		t.Errorf("windows = %d, want 20", s.Windows)
	}
	if math.Abs(s.MeanResidual) > 0.05 {
		t.Errorf("stationary mean residual = %g, want ~0", s.MeanResidual)
	}
}

func TestMonitorEWMAConverges(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestMonitor(t, reg, 10)
	driveWindow(reg, m, 10, 15, nil) // r = 0.5: EWMA primes to it
	if s := m.Status(); math.Abs(s.EWMA-0.5) > 1e-12 {
		t.Fatalf("EWMA primed to %g, want 0.5", s.EWMA)
	}
	driveWindow(reg, m, 10, 10, nil) // r = 0: EWMA = 0.2*0 + 0.8*0.5
	if s := m.Status(); math.Abs(s.EWMA-0.4) > 1e-12 {
		t.Errorf("EWMA = %g, want 0.4", s.EWMA)
	}
}

func TestMonitorWriteText(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestMonitor(t, reg, 10)
	var empty strings.Builder
	if err := m.WriteText(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no completed windows") {
		t.Errorf("pre-window report:\n%s", empty.String())
	}
	driveWindow(reg, m, 10, 15, []uint64{0, 2, 13})
	var b strings.Builder
	if err := m.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"model monitor: lru model", "policy=lru buffer=40",
		"predicted disk/query: 1.0000", "observed disk/query (last window): 1.5000",
		"residual: last +0.500", "drift alarms: 0", "level 2 residual: +0.625",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	var nilB strings.Builder
	var nilM *Monitor
	if err := nilM.WriteText(&nilB); err != nil || nilB.Len() != 0 {
		t.Errorf("nil monitor wrote %q, err %v", nilB.String(), err)
	}
}

// TestMonitorDisabledZeroAlloc is the disabled-path contract CI guards:
// a nil monitor's per-query hooks must be allocation-free.
func TestMonitorDisabledZeroAlloc(t *testing.T) {
	var m *Monitor
	if allocs := testing.AllocsPerRun(1000, func() {
		m.OnQuery()
		m.Rebase()
		_ = m.Status()
	}); allocs != 0 {
		t.Errorf("disabled monitor allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestMonitorConcurrency drives OnQuery from many goroutines with a
// concurrent Status reader; run under -race this is the monitor's race
// test.
func TestMonitorConcurrency(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestMonitor(t, reg, 100)
	misses := reg.Counter("buffer_misses_total", obs.L("policy", "lru"))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = m.Status()
			}
		}
	}()
	var qwg sync.WaitGroup
	for g := 0; g < 8; g++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for i := 0; i < 5000; i++ {
				misses.Inc()
				m.OnQuery()
			}
		}()
	}
	qwg.Wait()
	close(stop)
	wg.Wait()
	s := m.Status()
	if s.Windows != 8*5000/100 {
		t.Errorf("windows = %d, want %d", s.Windows, 8*5000/100)
	}
}
