// Package hilbert implements the two-dimensional Hilbert space-filling
// curve used by the Hilbert Sort (HS) packing algorithm of Kamel and
// Faloutsos. The curve of order k visits every cell of a 2^k x 2^k grid
// exactly once, without self-intersections, and has the locality property
// the paper relies on: points close along the curve are geographically
// close in the plane.
//
// Both directions are provided: Encode maps grid coordinates to the
// distance along the curve, Decode inverts it. EncodePoint maps a point of
// the unit square onto the curve at a given order.
package hilbert

import "fmt"

// MaxOrder is the largest supported curve order. Encode returns a uint64
// distance of 2*order bits, so orders up to 31 keep the distance within
// 62 bits with headroom for arithmetic.
const MaxOrder = 31

// DefaultOrder is the grid resolution used by the HS packing algorithm:
// a 2^16 x 2^16 grid is far finer than any of the paper's data sets need,
// while keeping sort keys cheap.
const DefaultOrder = 16

// Encode returns the distance along the order-k Hilbert curve of the grid
// cell (x, y). x and y must lie in [0, 2^order). It panics on out-of-range
// input: callers always control the grid mapping, so a violation is a bug.
func Encode(order uint, x, y uint32) uint64 {
	side := checkOrder(order)
	if uint64(x) >= side || uint64(y) >= side {
		panic(fmt.Sprintf("hilbert: cell (%d,%d) outside order-%d grid", x, y, order))
	}
	var d uint64
	for s := uint32(side / 2); s > 0; s /= 2 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rotate(s, x, y, rx, ry)
	}
	return d
}

// Decode returns the grid cell (x, y) at distance d along the order-k
// Hilbert curve. d must lie in [0, 4^order); Decode panics otherwise.
func Decode(order uint, d uint64) (x, y uint32) {
	side := checkOrder(order)
	if d >= side*side {
		panic(fmt.Sprintf("hilbert: distance %d outside order-%d curve", d, order))
	}
	t := d
	for s := uint64(1); s < side; s *= 2 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rotate(uint32(s), x, y, rx, ry)
		x += uint32(s) * rx
		y += uint32(s) * ry
		t /= 4
	}
	return x, y
}

// EncodePoint maps a point of the unit square onto the order-k curve,
// snapping the point to the enclosing grid cell. Coordinates outside
// [0,1] are clamped: data is normalized to the unit square upstream, but
// floating-point noise at the boundary must not panic.
func EncodePoint(order uint, px, py float64) uint64 {
	side := checkOrder(order)
	return Encode(order, toCell(px, side), toCell(py, side))
}

func toCell(v float64, side uint64) uint32 {
	if v < 0 {
		v = 0
	}
	c := uint64(v * float64(side))
	if c >= side {
		c = side - 1
	}
	return uint32(c)
}

// rotate applies the quadrant rotation/reflection of the standard
// Hilbert-curve construction.
func rotate(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

func checkOrder(order uint) uint64 {
	if order < 1 || order > MaxOrder {
		panic(fmt.Sprintf("hilbert: order %d outside [1,%d]", order, MaxOrder))
	}
	return uint64(1) << order
}
