package hilbert

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripExhaustive(t *testing.T) {
	for order := uint(1); order <= 5; order++ {
		side := uint32(1) << order
		for y := uint32(0); y < side; y++ {
			for x := uint32(0); x < side; x++ {
				d := Encode(order, x, y)
				gx, gy := Decode(order, d)
				if gx != x || gy != y {
					t.Fatalf("order %d: Decode(Encode(%d,%d)=%d) = (%d,%d)", order, x, y, d, gx, gy)
				}
			}
		}
	}
}

func TestEncodeIsBijectionSmallOrders(t *testing.T) {
	for order := uint(1); order <= 5; order++ {
		side := uint64(1) << order
		seen := make([]bool, side*side)
		for y := uint32(0); y < uint32(side); y++ {
			for x := uint32(0); x < uint32(side); x++ {
				d := Encode(order, x, y)
				if d >= side*side {
					t.Fatalf("order %d: distance %d out of range", order, d)
				}
				if seen[d] {
					t.Fatalf("order %d: distance %d visited twice", order, d)
				}
				seen[d] = true
			}
		}
	}
}

// The defining continuity property: consecutive curve positions are
// adjacent grid cells (Manhattan distance exactly 1).
func TestCurveContinuity(t *testing.T) {
	for order := uint(1); order <= 7; order++ {
		side := uint64(1) << order
		px, py := Decode(order, 0)
		for d := uint64(1); d < side*side; d++ {
			x, y := Decode(order, d)
			dist := absDiff(x, px) + absDiff(y, py)
			if dist != 1 {
				t.Fatalf("order %d: step %d jumps from (%d,%d) to (%d,%d)", order, d, px, py, x, y)
			}
			px, py = x, y
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestRoundTripRandomHighOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 34))
	for _, order := range []uint{8, 16, 24, 31} {
		side := uint64(1) << order
		for i := 0; i < 2000; i++ {
			x := uint32(rng.Uint64N(side))
			y := uint32(rng.Uint64N(side))
			gx, gy := Decode(order, Encode(order, x, y))
			if gx != x || gy != y {
				t.Fatalf("order %d: roundtrip (%d,%d) -> (%d,%d)", order, x, y, gx, gy)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	const order = 16
	side := uint32(1) << order
	f := func(x, y uint32) bool {
		x, y = x%side, y%side
		gx, gy := Decode(order, Encode(order, x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Locality: points close along the curve are geographically close — the
// property HS packing relies on. Verify the average Euclidean distance of
// curve-adjacent cells is far below that of random pairs.
func TestLocality(t *testing.T) {
	const order = 8
	side := uint64(1) << order
	total := side * side
	rng := rand.New(rand.NewPCG(9, 9))

	var adjacent, random float64
	const samples = 5000
	for i := 0; i < samples; i++ {
		d := rng.Uint64N(total - 1)
		x1, y1 := Decode(order, d)
		x2, y2 := Decode(order, d+1)
		adjacent += dist2(x1, y1, x2, y2)

		xa, ya := Decode(order, rng.Uint64N(total))
		xb, yb := Decode(order, rng.Uint64N(total))
		random += dist2(xa, ya, xb, yb)
	}
	if adjacent*100 > random {
		t.Errorf("curve locality weak: adjacent mean sq dist %g vs random %g",
			adjacent/samples, random/samples)
	}
}

func dist2(x1, y1, x2, y2 uint32) float64 {
	dx := float64(x1) - float64(x2)
	dy := float64(y1) - float64(y2)
	return dx*dx + dy*dy
}

func TestEncodePoint(t *testing.T) {
	// Corner cells.
	if got := EncodePoint(1, 0, 0); got != Encode(1, 0, 0) {
		t.Errorf("EncodePoint(0,0) = %d", got)
	}
	// Clamping: coordinates at and beyond 1.0 map to the last cell.
	if got, want := EncodePoint(4, 1.0, 1.0), Encode(4, 15, 15); got != want {
		t.Errorf("EncodePoint(1,1) = %d, want %d", got, want)
	}
	if got, want := EncodePoint(4, 2.5, -1), Encode(4, 15, 0); got != want {
		t.Errorf("EncodePoint(2.5,-1) = %d, want %d", got, want)
	}
	// Mid-square lands in a middle cell.
	x, y := Decode(8, EncodePoint(8, 0.5, 0.5))
	if x != 128 || y != 128 {
		t.Errorf("EncodePoint(0.5,0.5) decodes to (%d,%d)", x, y)
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"order 0", func() { Encode(0, 0, 0) }},
		{"order too large", func() { Encode(MaxOrder+1, 0, 0) }},
		{"x out of range", func() { Encode(2, 4, 0) }},
		{"y out of range", func() { Encode(2, 0, 4) }},
		{"distance out of range", func() { Decode(2, 16) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(DefaultOrder, uint32(i)&0xffff, uint32(i>>16)&0xffff)
	}
}

func BenchmarkEncodePoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EncodePoint(DefaultOrder, float64(i%1000)/1000, float64(i%997)/997)
	}
}
