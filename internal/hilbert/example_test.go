package hilbert_test

import (
	"fmt"

	"rtreebuf/internal/hilbert"
)

// ExampleEncode walks the order-2 curve over a 4x4 grid: sixteen cells,
// each visited exactly once, adjacent cells one step apart.
func ExampleEncode() {
	for d := uint64(0); d < 8; d++ {
		x, y := hilbert.Decode(2, d)
		fmt.Printf("d=%d -> (%d,%d)\n", d, x, y)
	}
	// Output:
	// d=0 -> (0,0)
	// d=1 -> (1,0)
	// d=2 -> (1,1)
	// d=3 -> (0,1)
	// d=4 -> (0,2)
	// d=5 -> (0,3)
	// d=6 -> (1,3)
	// d=7 -> (1,2)
}

// ExampleEncodePoint shows the sort key the HS packing algorithm uses:
// points close in the plane get close curve positions.
func ExampleEncodePoint() {
	a := hilbert.EncodePoint(8, 0.10, 0.10)
	b := hilbert.EncodePoint(8, 0.11, 0.10) // near a
	c := hilbert.EncodePoint(8, 0.90, 0.90) // far away
	near := diff(a, b)
	far := diff(a, c)
	fmt.Println("near pair closer on the curve than far pair:", near < far)
	// Output:
	// near pair closer on the curve than far pair: true
}

func diff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
