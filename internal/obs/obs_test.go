package obs

import (
	"io"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", L("kind", "read"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", L("kind", "read")); again != c {
		t.Error("same identity returned a different counter")
	}
	if other := r.Counter("reqs_total", L("kind", "write")); other == c {
		t.Error("different labels returned the same counter")
	}

	g := r.Gauge("fill")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("latency_seconds")
	for _, v := range []float64{0.5, 1, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 104.5 {
		t.Errorf("hist sum = %g, want 104.5", h.Sum())
	}
}

func TestLabelOrderIsIdentityIrrelevant(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("a", "1"), L("b", "2"))
	b := r.Counter("x_total", L("b", "2"), L("a", "1"))
	if a != b {
		t.Error("label order changed metric identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("gauge lookup of a counter name did not panic")
		}
	}()
	r.Gauge("m")
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {0.999, 0},
		{1, 1}, {1.5, 1}, {2, 2}, {3, 2}, {4, 3},
		{math.MaxFloat64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_hist")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil metrics")
	}
	c.Inc()
	c.Add(10)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics reported non-zero values")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot is non-nil")
	}
	r.Merge(NewRegistry()) // must not panic
	NewRegistry().Merge(r) // must not panic
}

// TestObsDisabledZeroAlloc is the disabled-path contract: every operation
// instrumented code performs against nil metrics must be allocation-free.
// CI runs this test (and BenchmarkObsDisabled) in the obs job.
func TestObsDisabledZeroAlloc(t *testing.T) {
	var r *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(1)
		h.Observe(2)
		sp := tr.Start("q")
		sp.End()
		tr.Event("e")
		_ = r.Snapshot()
	}); allocs != 0 {
		t.Errorf("disabled obs path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkObsDisabled measures the disabled hot path (what every
// uninstrumented run pays). The zero-alloc guard is the allocs/op column.
func BenchmarkObsDisabled(b *testing.B) {
	var c *Counter
	var h *Histogram
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
		sp := tr.Start("q")
		sp.End()
	}
}

// BenchmarkObsEnabled documents the enabled-path cost for comparison.
func BenchmarkObsEnabled(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("x_total")
	h := r.Histogram("x_hist")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(1)
	}
}

// TestRegistryConcurrency drives registration and updates from many
// goroutines; run under -race this is the registry's race test.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("shared_total").Inc()
				r.Counter("mod_total", L("m", string(rune('a'+i%3)))).Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h").Observe(float64(i % 7))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != goroutines*perG {
		t.Errorf("shared counter = %d, want %d", got, goroutines*perG)
	}
	var mod uint64
	for _, m := range []string{"a", "b", "c"} {
		mod += r.Counter("mod_total", L("m", m)).Value()
	}
	if mod != goroutines*perG {
		t.Errorf("labeled counters sum to %d, want %d", mod, goroutines*perG)
	}
	if got := r.Histogram("h").Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestMergeAddsCountersAndHistograms(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("c_total").Add(10)
	dst.Histogram("h").Observe(1)
	dst.Gauge("g").Set(1)

	src := NewRegistry()
	src.Counter("c_total").Add(5)
	src.Counter("only_src_total").Add(7)
	src.Histogram("h").Observe(3)
	src.Gauge("g").Set(9)

	dst.Merge(src)
	if got := dst.Counter("c_total").Value(); got != 15 {
		t.Errorf("merged counter = %d, want 15", got)
	}
	if got := dst.Counter("only_src_total").Value(); got != 7 {
		t.Errorf("merged new counter = %d, want 7", got)
	}
	h := dst.Histogram("h")
	if h.Count() != 2 || h.Sum() != 4 {
		t.Errorf("merged histogram count=%d sum=%g, want 2 and 4", h.Count(), h.Sum())
	}
	if got := dst.Gauge("g").Value(); got != 9 {
		t.Errorf("merged gauge = %g, want 9 (src wins)", got)
	}
}

// TestMergeDisjointAndOverlappingLabelSets: merging registries whose
// (name, labels) identities partially overlap must add the overlapping
// series (down to histogram buckets) and copy the disjoint ones.
func TestMergeDisjointAndOverlappingLabelSets(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("hits_total", L("policy", "lru")).Add(3)
	dst.Counter("hits_total", L("policy", "2q")).Add(5)
	dh := dst.Histogram("lat", L("policy", "lru"))
	dh.Observe(1)
	dh.Observe(3)

	src := NewRegistry()
	src.Counter("hits_total", L("policy", "lru")).Add(4)      // overlaps
	src.Counter("hits_total", L("policy", "clockpro")).Add(9) // disjoint
	sh := src.Histogram("lat", L("policy", "lru"))            // overlaps
	sh.Observe(3)
	sh.Observe(100)
	src.Histogram("lat", L("policy", "2q")).Observe(7) // disjoint

	dst.Merge(src)

	if got := dst.Counter("hits_total", L("policy", "lru")).Value(); got != 7 {
		t.Errorf("overlapping counter = %d, want 7", got)
	}
	if got := dst.Counter("hits_total", L("policy", "2q")).Value(); got != 5 {
		t.Errorf("dst-only counter = %d, want 5 (untouched)", got)
	}
	if got := dst.Counter("hits_total", L("policy", "clockpro")).Value(); got != 9 {
		t.Errorf("src-only counter = %d, want 9 (copied)", got)
	}
	merged := dst.Histogram("lat", L("policy", "lru"))
	if merged.Count() != 4 || merged.Sum() != 107 {
		t.Errorf("overlapping histogram count=%d sum=%g, want 4 and 107", merged.Count(), merged.Sum())
	}
	if got := dst.Histogram("lat", L("policy", "2q")).Count(); got != 1 {
		t.Errorf("src-only histogram count = %d, want 1 (copied)", got)
	}
	// Bucket-level check on the overlapping histogram: 1 → bucket le=2,
	// 3+3 → bucket le=4, 100 → bucket le=128.
	for _, s := range dst.Snapshot() {
		if s.Kind != KindHistogram || len(s.Labels) == 0 || s.Labels[0].Value != "lru" {
			continue
		}
		got := map[float64]uint64{}
		for _, b := range s.Buckets {
			got[b.UpperBound] = b.Count
		}
		want := map[float64]uint64{2: 1, 4: 2, 128: 1}
		for ub, n := range want {
			if got[ub] != n {
				t.Errorf("merged bucket le=%g count = %d, want %d", ub, got[ub], n)
			}
		}
	}
}

// TestRegistryConcurrentMergeExport drives two goroutines merging replica
// registries into one destination while a third continuously snapshots
// and renders it; run under -race this exercises the Merge/export locking
// (Merge holds only the source lock while copying, then folds through the
// destination's own locked lookups — an exporter must be able to run
// mid-merge without tearing). Final counter totals check no increment was
// lost.
func TestRegistryConcurrentMergeExport(t *testing.T) {
	dst := NewRegistry()
	const mergers = 2
	const merges = 200
	const perSrc = 17
	var mergeWG, exportWG sync.WaitGroup
	stop := make(chan struct{})
	exportWG.Add(1)
	go func() {
		defer exportWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := WriteText(io.Discard, dst); err != nil {
				t.Errorf("WriteText during merges: %v", err)
				return
			}
			_ = dst.Snapshot()
		}
	}()
	for g := 0; g < mergers; g++ {
		mergeWG.Add(1)
		go func(g int) {
			defer mergeWG.Done()
			for i := 0; i < merges; i++ {
				src := NewRegistry()
				src.Counter("merged_total").Add(perSrc)
				src.Histogram("lat").Observe(float64(g*merges + i))
				dst.Merge(src)
			}
		}(g)
	}
	mergeWG.Wait()
	close(stop)
	exportWG.Wait()
	if got := dst.Counter("merged_total").Value(); got != mergers*merges*perSrc {
		t.Errorf("merged counter = %d, want %d", got, mergers*merges*perSrc)
	}
	if got := dst.Histogram("lat").Count(); got != mergers*merges {
		t.Errorf("merged histogram count = %d, want %d", got, mergers*merges)
	}
}

// TestMergeDeterministic: merging the same replica registries in the same
// order yields identical snapshots — the property RunParallel relies on.
func TestMergeDeterministic(t *testing.T) {
	build := func() *Registry {
		root := NewRegistry()
		for rep := 0; rep < 4; rep++ {
			r := NewRegistry()
			for i := 0; i <= rep; i++ {
				r.Counter("replica_total").Inc()
				r.Histogram("work").Observe(float64(rep))
			}
			root.Merge(r)
		}
		return root
	}
	a, b := build(), build()
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("snapshot lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].FullName() != sb[i].FullName() || sa[i].Value != sb[i].Value ||
			sa[i].Count != sb[i].Count || sa[i].Sum != sb[i].Sum {
			t.Errorf("sample %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}
