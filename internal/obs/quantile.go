package obs

import "math"

// Quantile estimation over the log-bucketed histograms. The fixed
// power-of-two buckets locate an observation only to within a factor of
// two; interpolating the rank linearly in log space inside the landing
// bucket recovers a point estimate whose worst-case relative error is
// bounded by the bucket ratio — good enough for the p50/p95/p99 latency
// lines the CLIs print, without per-observation storage.

// Quantile estimates the q-th quantile (q in [0,1]) of a histogram
// sample from its buckets. Within the bucket the requested rank lands
// in, the value is interpolated geometrically between the bucket edges
// (linearly for the first bucket, whose lower edge is zero). The +Inf
// tail bucket has no finite upper edge, so ranks landing there report
// its lower edge. Non-histogram or empty samples report zero.
func (s Sample) Quantile(q float64) float64 {
	if s.Kind != KindHistogram || s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, b := range s.Buckets {
		inBucket := float64(b.Count)
		if rank > cum+inBucket && i < len(s.Buckets)-1 {
			cum += inBucket
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			return histLowerEdge(b.UpperBound)
		}
		frac := (rank - cum) / inBucket
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		lo := histLowerEdge(b.UpperBound)
		if lo <= 0 {
			return b.UpperBound * frac
		}
		return lo * math.Pow(b.UpperBound/lo, frac)
	}
	return 0 // unreachable: the loop always returns from its last bucket
}

// histLowerEdge returns the inclusive lower edge of the bucket with the
// given exclusive upper bound: 0 for the first bucket (v < 1), half the
// bound for the power-of-two buckets, and the last finite edge for the
// +Inf tail.
func histLowerEdge(upperBound float64) float64 {
	if math.IsInf(upperBound, 1) {
		return math.Pow(2, float64(histBuckets-2))
	}
	if upperBound <= 1 {
		return 0
	}
	return upperBound / 2
}

// Percentiles returns the p50, p95, and p99 estimates of a histogram
// sample — the trio the CLIs print for latency series.
func (s Sample) Percentiles() (p50, p95, p99 float64) {
	return s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
}
