package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// FlightRecorder is the query-path counterpart of Tracer: instead of a
// flat span timeline it retains one structured record per query — ID,
// duration, result count, and per-level node-access/fault/write-back
// attribution — in a fixed ring of the most recent queries plus a
// small board of the most expensive ones seen so far. It answers "what
// did the slow queries actually touch" after the fact, which a metrics
// registry (aggregates only) cannot.
//
// A nil *FlightRecorder is the disabled recorder: Begin returns a nil
// *ActiveQuery whose methods are allocation-free no-ops, so
// instrumented code calls it unconditionally.
type FlightRecorder struct {
	mu      sync.Mutex
	recent  []QueryRecord // ring, oldest first once full
	start   int           // ring head index
	full    bool
	top     []QueryRecord // most expensive, sorted by costLess
	topCap  int
	nextID  uint64
	total   uint64
	dropped uint64
	clock   func() time.Time
}

// Default retention for the flight recorder ring and expensive-query board.
const (
	DefaultFlightRecent = 256
	DefaultFlightTop    = 16
)

// NewFlightRecorder returns an enabled recorder retaining the last
// `recent` queries and the `top` most expensive ones (non-positive
// arguments select the defaults).
func NewFlightRecorder(recent, top int) *FlightRecorder {
	if recent <= 0 {
		recent = DefaultFlightRecent
	}
	if top <= 0 {
		top = DefaultFlightTop
	}
	return &FlightRecorder{
		recent: make([]QueryRecord, 0, recent),
		top:    make([]QueryRecord, 0, top),
		topCap: top,
		clock:  time.Now,
	}
}

// LevelStat is the per-tree-level access attribution of one query.
type LevelStat struct {
	Level      int `json:"level"`
	Accesses   int `json:"accesses"`
	Misses     int `json:"misses"`
	WriteBacks int `json:"write_backs"`
}

// QueryRecord is one finished query as retained by the recorder.
type QueryRecord struct {
	ID         uint64        `json:"id"`
	Name       string        `json:"name"`
	Start      time.Time     `json:"start"`
	Duration   time.Duration `json:"duration_ns"`
	Results    int           `json:"results"`
	Accesses   int           `json:"accesses"`
	Misses     int           `json:"misses"`
	WriteBacks int           `json:"write_backs"`
	Levels     []LevelStat   `json:"levels,omitempty"`
}

// ActiveQuery is an in-progress query handle. A nil handle (from a nil
// recorder) is inert and allocation-free.
type ActiveQuery struct {
	fr  *FlightRecorder
	rec QueryRecord
}

// Begin starts recording a query. On a nil recorder it returns nil,
// which every ActiveQuery method tolerates.
func (fr *FlightRecorder) Begin(name string) *ActiveQuery {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	fr.nextID++
	id := fr.nextID
	fr.mu.Unlock()
	return &ActiveQuery{fr: fr, rec: QueryRecord{ID: id, Name: name, Start: fr.clock()}}
}

// Access attributes one node access at the given tree level (level 0 is
// the root). hit reports whether the page was resident; writeBacks is
// how many dirty victims the access had to flush.
func (q *ActiveQuery) Access(level int, hit bool, writeBacks int) {
	if q == nil {
		return
	}
	q.rec.Accesses++
	if !hit {
		q.rec.Misses++
	}
	q.rec.WriteBacks += writeBacks
	for len(q.rec.Levels) <= level {
		q.rec.Levels = append(q.rec.Levels, LevelStat{Level: len(q.rec.Levels)})
	}
	ls := &q.rec.Levels[level]
	ls.Accesses++
	if !hit {
		ls.Misses++
	}
	ls.WriteBacks += writeBacks
}

// SetResults records how many results the query returned.
func (q *ActiveQuery) SetResults(n int) {
	if q == nil {
		return
	}
	q.rec.Results = n
}

// End finishes the query and commits it to the recorder.
func (q *ActiveQuery) End() {
	if q == nil {
		return
	}
	q.rec.Duration = q.fr.clock().Sub(q.rec.Start)
	q.fr.commit(q.rec)
}

// costLess orders records by expense: more misses first, then more
// accesses, then longer duration, then lower ID. The duration tiebreak
// comes last so that identical logical work ranks deterministically
// regardless of wall-clock jitter.
func costLess(a, b QueryRecord) bool {
	if a.Misses != b.Misses {
		return a.Misses > b.Misses
	}
	if a.Accesses != b.Accesses {
		return a.Accesses > b.Accesses
	}
	if a.Duration != b.Duration {
		return a.Duration > b.Duration
	}
	return a.ID < b.ID
}

func (fr *FlightRecorder) commit(r QueryRecord) {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.total++
	if !fr.full && len(fr.recent) < cap(fr.recent) {
		fr.recent = append(fr.recent, r)
	} else {
		fr.full = true
		fr.dropped++
		fr.recent[fr.start] = r
		fr.start = (fr.start + 1) % len(fr.recent)
	}
	// Maintain the expensive-query board: insert in cost order, trim to cap.
	i := sort.Search(len(fr.top), func(i int) bool { return !costLess(fr.top[i], r) })
	if i < fr.topCap {
		fr.top = append(fr.top, QueryRecord{})
		copy(fr.top[i+1:], fr.top[i:])
		fr.top[i] = r
		if len(fr.top) > fr.topCap {
			fr.top = fr.top[:fr.topCap]
		}
	}
}

// FlightSnapshot is a point-in-time copy of the recorder state.
type FlightSnapshot struct {
	Queries uint64        `json:"queries"`
	Dropped uint64        `json:"dropped"`
	Recent  []QueryRecord `json:"recent"`
	Top     []QueryRecord `json:"top"`
}

// Snapshot copies out the retained records: Recent in completion order
// (oldest first), Top in cost order. Nil recorders return an empty
// snapshot.
func (fr *FlightRecorder) Snapshot() FlightSnapshot {
	if fr == nil {
		return FlightSnapshot{}
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	snap := FlightSnapshot{Queries: fr.total, Dropped: fr.dropped}
	if fr.full {
		snap.Recent = make([]QueryRecord, 0, len(fr.recent))
		snap.Recent = append(snap.Recent, fr.recent[fr.start:]...)
		snap.Recent = append(snap.Recent, fr.recent[:fr.start]...)
	} else {
		snap.Recent = append([]QueryRecord(nil), fr.recent...)
	}
	snap.Top = append([]QueryRecord(nil), fr.top...)
	return snap
}

// WriteJSON renders the snapshot as one indented JSON object with a
// trailing newline. Nil recorders render an empty (but valid) dump.
func (fr *FlightRecorder) WriteJSON(w io.Writer) error {
	snap := fr.Snapshot()
	if snap.Recent == nil {
		snap.Recent = []QueryRecord{}
	}
	if snap.Top == nil {
		snap.Top = []QueryRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// WriteText renders a short human-readable report: retention summary
// plus the expensive-query board, one line per query with its per-level
// attribution. Durations are rounded for readability; pass a zero round
// to keep full precision. Nil recorders write nothing.
func (fr *FlightRecorder) WriteText(w io.Writer, round time.Duration) error {
	if fr == nil {
		return nil
	}
	snap := fr.Snapshot()
	if _, err := fmt.Fprintf(w, "flight recorder: %d queries, %d retained, %d dropped\n",
		snap.Queries, len(snap.Recent), snap.Dropped); err != nil {
		return err
	}
	if len(snap.Top) > 0 {
		if _, err := fmt.Fprintln(w, "most expensive:"); err != nil {
			return err
		}
	}
	for _, r := range snap.Top {
		d := r.Duration
		if round > 0 {
			d = d.Round(round)
		}
		var lv strings.Builder
		for i, ls := range r.Levels {
			if i > 0 {
				lv.WriteByte(' ')
			}
			fmt.Fprintf(&lv, "L%d:%d/%d", ls.Level, ls.Misses, ls.Accesses)
		}
		if _, err := fmt.Fprintf(w, "  #%-6d %-10s %12s  results=%-5d misses=%-3d accesses=%-3d writebacks=%-2d  %s\n",
			r.ID, r.Name, d, r.Results, r.Misses, r.Accesses, r.WriteBacks, lv.String()); err != nil {
			return err
		}
	}
	return nil
}
