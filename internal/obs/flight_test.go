package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderNilIsInert(t *testing.T) {
	var fr *FlightRecorder
	q := fr.Begin("window")
	q.Access(0, true, 0)
	q.SetResults(3)
	q.End()
	snap := fr.Snapshot()
	if snap.Queries != 0 || len(snap.Recent) != 0 || len(snap.Top) != 0 {
		t.Errorf("nil recorder snapshot = %+v, want empty", snap)
	}
	var text strings.Builder
	if err := fr.WriteText(&text, 0); err != nil || text.Len() != 0 {
		t.Errorf("nil WriteText = (%q, %v), want empty and nil", text.String(), err)
	}
	var js strings.Builder
	if err := fr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var dump map[string]any
	if err := json.Unmarshal([]byte(js.String()), &dump); err != nil {
		t.Fatalf("nil recorder JSON invalid: %v", err)
	}
	if dump["queries"].(float64) != 0 {
		t.Errorf("nil recorder JSON dump not empty: %v", dump)
	}
}

// TestFlightRecorderDisabledZeroAlloc: the nil-recorder hot path must be
// allocation-free, like every other disabled obs surface.
func TestFlightRecorderDisabledZeroAlloc(t *testing.T) {
	var fr *FlightRecorder
	if allocs := testing.AllocsPerRun(1000, func() {
		q := fr.Begin("window")
		q.Access(1, false, 1)
		q.SetResults(2)
		q.End()
	}); allocs != 0 {
		t.Errorf("disabled flight recorder allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestFlightRecorderAttribution(t *testing.T) {
	fr := NewFlightRecorder(8, 4)
	fr.clock = fakeClock(time.Unix(0, 0), time.Second)
	q := fr.Begin("window")
	q.Access(0, true, 0)  // root hit
	q.Access(1, false, 2) // internal miss, two write-backs
	q.Access(2, false, 0) // leaf miss
	q.Access(2, true, 0)  // leaf hit
	q.SetResults(5)
	q.End()

	snap := fr.Snapshot()
	if snap.Queries != 1 || len(snap.Recent) != 1 {
		t.Fatalf("snapshot = %+v, want exactly one query", snap)
	}
	r := snap.Recent[0]
	if r.ID != 1 || r.Name != "window" || r.Results != 5 {
		t.Errorf("record header = %+v", r)
	}
	if r.Accesses != 4 || r.Misses != 2 || r.WriteBacks != 2 {
		t.Errorf("totals = accesses %d misses %d writebacks %d, want 4/2/2", r.Accesses, r.Misses, r.WriteBacks)
	}
	if r.Duration != time.Second {
		t.Errorf("duration = %v, want 1s (one clock step)", r.Duration)
	}
	want := []LevelStat{
		{Level: 0, Accesses: 1, Misses: 0, WriteBacks: 0},
		{Level: 1, Accesses: 1, Misses: 1, WriteBacks: 2},
		{Level: 2, Accesses: 2, Misses: 1, WriteBacks: 0},
	}
	if len(r.Levels) != len(want) {
		t.Fatalf("levels = %+v, want %+v", r.Levels, want)
	}
	for i := range want {
		if r.Levels[i] != want[i] {
			t.Errorf("level %d = %+v, want %+v", i, r.Levels[i], want[i])
		}
	}
}

// TestFlightRecorderRingAndTop overflows the ring and checks that Recent
// keeps the newest records in order while Top keeps the most expensive
// ones regardless of age.
func TestFlightRecorderRingAndTop(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	fr.clock = fakeClock(time.Unix(0, 0), time.Millisecond)
	// Query i performs i misses; the most expensive are the earliest two
	// (9 and 8 misses) once we count down.
	for i := 10; i >= 1; i-- {
		q := fr.Begin("q")
		for m := 0; m < i; m++ {
			q.Access(0, false, 0)
		}
		q.End()
	}
	snap := fr.Snapshot()
	if snap.Queries != 10 || snap.Dropped != 6 {
		t.Errorf("queries=%d dropped=%d, want 10 and 6", snap.Queries, snap.Dropped)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("recent holds %d, want 4", len(snap.Recent))
	}
	// Ring keeps the newest four (IDs 7..10), oldest first.
	for i, r := range snap.Recent {
		if want := uint64(7 + i); r.ID != want {
			t.Errorf("recent[%d].ID = %d, want %d", i, r.ID, want)
		}
	}
	// Top keeps the two most expensive: the first two committed (10 and 9
	// misses), even though the ring has long evicted them.
	if len(snap.Top) != 2 {
		t.Fatalf("top holds %d, want 2", len(snap.Top))
	}
	if snap.Top[0].Misses != 10 || snap.Top[1].Misses != 9 {
		t.Errorf("top misses = %d, %d; want 10, 9", snap.Top[0].Misses, snap.Top[1].Misses)
	}
}

// TestFlightRecorderCostOrderDeterministic: ties on misses/accesses/
// duration break by ID, so equal logical work ranks reproducibly.
func TestFlightRecorderCostOrderDeterministic(t *testing.T) {
	fr := NewFlightRecorder(8, 4)
	fr.clock = func() time.Time { return time.Unix(0, 0) } // zero durations
	for i := 0; i < 6; i++ {
		q := fr.Begin("q")
		q.Access(0, false, 0)
		q.End()
	}
	snap := fr.Snapshot()
	for i, r := range snap.Top {
		if want := uint64(i + 1); r.ID != want {
			t.Errorf("top[%d].ID = %d, want %d (ID ascending on ties)", i, r.ID, want)
		}
	}
}

func TestFlightRecorderWriteText(t *testing.T) {
	fr := NewFlightRecorder(4, 2)
	fr.clock = fakeClock(time.Unix(0, 0), time.Millisecond)
	q := fr.Begin("window")
	q.Access(0, true, 0)
	q.Access(1, false, 0)
	q.SetResults(7)
	q.End()
	var b strings.Builder
	if err := fr.WriteText(&b, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"flight recorder: 1 queries", "most expensive:", "window", "results=7", "L1:1/1"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q:\n%s", want, out)
		}
	}
}

// TestFlightRecorderConcurrency drives overlapping queries from many
// goroutines; run under -race this is the recorder's race test.
func TestFlightRecorderConcurrency(t *testing.T) {
	fr := NewFlightRecorder(32, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fr.Begin("q")
				q.Access(i%3, i%2 == 0, 0)
				q.End()
			}
		}()
	}
	wg.Wait()
	snap := fr.Snapshot()
	if snap.Queries != 8*200 {
		t.Errorf("recorded %d queries, want %d", snap.Queries, 8*200)
	}
	ids := map[uint64]bool{}
	for _, r := range snap.Recent {
		if ids[r.ID] {
			t.Errorf("duplicate query ID %d in ring", r.ID)
		}
		ids[r.ID] = true
	}
}
