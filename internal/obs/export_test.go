package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// goldenRegistry builds the fixed registry every exporter golden test
// renders: one counter family with two label sets, a gauge, and a
// histogram with observations spanning several buckets.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("buffer_hits_total", L("policy", "lru"), L("level", "0")).Add(42)
	r.Counter("buffer_hits_total", L("policy", "lru"), L("level", "1")).Add(7)
	r.Gauge("sim_fill_query").Set(1234)
	h := r.Histogram("query_nodes")
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	return r
}

func TestWriteTextGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	want := `buffer_hits_total{level="0",policy="lru"}  42
buffer_hits_total{level="1",policy="lru"}  7
query_nodes                                count=4 sum=7.5 mean=1.875 p50=2 p95=3.73 p99=3.94
sim_fill_query                             1234
`
	if b.String() != want {
		t.Errorf("text export:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteTextEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteText(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "(no metrics)\n" {
		t.Errorf("empty text export = %q", b.String())
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "name": "buffer_hits_total",
    "labels": {
      "level": "0",
      "policy": "lru"
    },
    "kind": "counter",
    "value": 42
  },
  {
    "name": "buffer_hits_total",
    "labels": {
      "level": "1",
      "policy": "lru"
    },
    "kind": "counter",
    "value": 7
  },
  {
    "name": "query_nodes",
    "kind": "histogram",
    "count": 4,
    "sum": 7.5,
    "buckets": [
      {
        "le": "1",
        "count": 1
      },
      {
        "le": "2",
        "count": 1
      },
      {
        "le": "4",
        "count": 2
      }
    ]
  },
  {
    "name": "sim_fill_query",
    "kind": "gauge",
    "value": 1234
  }
]
`
	if b.String() != want {
		t.Errorf("json export:\n%s\nwant:\n%s", b.String(), want)
	}
	// And it must round-trip as valid JSON.
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(parsed) != 4 {
		t.Errorf("parsed %d metrics, want 4", len(parsed))
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE buffer_hits_total counter
buffer_hits_total{level="0",policy="lru"} 42
buffer_hits_total{level="1",policy="lru"} 7
# TYPE query_nodes histogram
query_nodes_bucket{le="1"} 1
query_nodes_bucket{le="2"} 2
query_nodes_bucket{le="4"} 4
query_nodes_bucket{le="+Inf"} 4
query_nodes_sum 7.5
query_nodes_count 4
# TYPE sim_fill_query gauge
sim_fill_query 1234
`
	if b.String() != want {
		t.Errorf("prometheus export:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestPromEscapeHostileValues pins the exact escaping of every character
// class the text-exposition 0.0.4 spec requires in label values —
// backslash, double quote, and newline — including combinations where a
// wrong replacement order would double-escape.
func TestPromEscapeHostileValues(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{`plain`, `plain`},
		{"line1\nline2", `line1\nline2`},
		{`say "hi"`, `say \"hi\"`},
		{`back\slash`, `back\\slash`},
		{`trailing\`, `trailing\\`},
		// A literal backslash-n must not collapse into an escaped newline.
		{`already\n`, `already\\n`},
		// A backslash before a quote: escape each independently.
		{`\"`, `\\\"`},
		{"\"\n\\", `\"\n\\`},
		{"", ``},
	}
	for _, c := range cases {
		if got := promEscape(c.in); got != c.want {
			t.Errorf("promEscape(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWritePrometheusHostileLabelsGolden renders a registry whose label
// values contain every escape-worthy character and pins the exact
// exposition output.
func TestWritePrometheusHostileLabelsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("hostile_total", L("path", `C:\temp\x`)).Inc()
	r.Counter("hostile_total", L("path", "two\nlines")).Add(2)
	r.Counter("hostile_total", L("path", `quote "q" end`)).Add(3)
	r.Counter("hostile_total", L("path", "mix\\\"\n")).Add(4)
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE hostile_total counter
hostile_total{path="C:\\temp\\x"} 1
hostile_total{path="mix\\\"\n"} 4
hostile_total{path="quote \"q\" end"} 3
hostile_total{path="two\nlines"} 2
`
	if b.String() != want {
		t.Errorf("hostile-label exposition:\n%s\nwant:\n%s", b.String(), want)
	}
	// No raw newline may survive inside a sample line.
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !strings.Contains(line, "hostile_total{") {
			t.Errorf("label newline leaked into exposition line %q", line)
		}
	}
}

// TestPrometheusFormatValidity asserts structural invariants of the
// exposition format on a richer registry: every non-comment line is
// `name{labels} value`, bucket counts are cumulative, and each family has
// exactly one TYPE line.
func TestPrometheusFormatValidity(t *testing.T) {
	r := goldenRegistry()
	r.Counter("odd_value_total", L("path", `C:\x "q"`)).Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			types[parts[2]]++
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated label set: %q", line)
			}
			name = name[:i]
		}
		for _, c := range name {
			if !(c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
				t.Errorf("invalid metric name char %q in %q", c, name)
			}
		}
	}
	for fam, n := range types {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", fam, n)
		}
	}
	if !strings.Contains(b.String(), `path="C:\\x \"q\""`) {
		t.Errorf("label escaping missing:\n%s", b.String())
	}
}
