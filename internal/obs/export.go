package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file renders a Registry snapshot in the three formats the tooling
// consumes: an aligned text table for humans, JSON for scripts, and the
// Prometheus text exposition format for scrapers. All three render the
// same deterministic Snapshot, so outputs are stable for golden tests.

// fmtFloat renders a float64 the same way in every exporter: shortest
// round-trip representation, integers without a decimal point.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the snapshot as an aligned two-column table
// (metric, value); histograms additionally list count, sum, mean, and
// interpolated p50/p95/p99 estimates.
func WriteText(w io.Writer, r *Registry) error {
	samples := r.Snapshot()
	if len(samples) == 0 {
		_, err := fmt.Fprintln(w, "(no metrics)")
		return err
	}
	width := 0
	for _, s := range samples {
		if n := len(s.FullName()); n > width {
			width = n
		}
	}
	for _, s := range samples {
		var val string
		switch s.Kind {
		case KindHistogram:
			mean := 0.0
			if s.Count > 0 {
				mean = s.Sum / float64(s.Count)
			}
			p50, p95, p99 := s.Percentiles()
			val = fmt.Sprintf("count=%d sum=%s mean=%s p50=%.3g p95=%.3g p99=%.3g",
				s.Count, fmtFloat(s.Sum), fmtFloat(mean), p50, p95, p99)
		default:
			val = fmtFloat(s.Value)
		}
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, s.FullName(), val); err != nil {
			return err
		}
	}
	return nil
}

// jsonSample is the JSON shape of one metric.
type jsonSample struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    string            `json:"kind"`
	Value   *float64          `json:"value,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
}

type jsonBucket struct {
	LE    string `json:"le"` // exclusive upper bound; "+Inf" for the tail
	Count uint64 `json:"count"`
}

// WriteJSON renders the snapshot as a JSON array of metric objects,
// sorted like Snapshot, with a trailing newline.
func WriteJSON(w io.Writer, r *Registry) error {
	samples := r.Snapshot()
	out := make([]jsonSample, 0, len(samples))
	for _, s := range samples {
		js := jsonSample{Name: s.Name, Kind: s.Kind.String()}
		if len(s.Labels) > 0 {
			js.Labels = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				js.Labels[l.Key] = l.Value
			}
		}
		switch s.Kind {
		case KindHistogram:
			count, sum := s.Count, s.Sum
			js.Count, js.Sum = &count, &sum
			for _, b := range s.Buckets {
				js.Buckets = append(js.Buckets, jsonBucket{LE: fmtFloat(b.UpperBound), Count: b.Count})
			}
		default:
			v := s.Value
			js.Value = &v
		}
		out = append(out, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// promEscape escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders {k="v",...} (empty string for no labels), with an
// optional extra label appended (used for histogram le).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, promEscape(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, counters and
// gauges as single samples, histograms as cumulative _bucket series plus
// _sum and _count.
func WritePrometheus(w io.Writer, r *Registry) error {
	samples := r.Snapshot()
	// Snapshot sorts by full name, so families (same bare name) are
	// contiguous; emit the TYPE header when the family changes.
	lastFamily := ""
	for _, s := range samples {
		if s.Name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastFamily = s.Name
		}
		switch s.Kind {
		case KindHistogram:
			cum := uint64(0)
			sawInf := false
			for _, b := range s.Buckets {
				cum += b.Count
				le := fmtFloat(b.UpperBound)
				if math.IsInf(b.UpperBound, 1) {
					sawInf = true
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, promLabels(s.Labels, L("le", le)), cum); err != nil {
					return err
				}
			}
			if !sawInf {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					s.Name, promLabels(s.Labels, L("le", "+Inf")), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels), fmtFloat(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels), s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels), fmtFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}
