package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsHandler(t *testing.T) {
	r := goldenRegistry()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want prometheus text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := WritePrometheus(&want, r); err != nil {
		t.Fatal(err)
	}
	if string(body) != want.String() {
		t.Errorf("handler body:\n%s\nwant:\n%s", body, want.String())
	}
}

func TestDebugServerServesMetricsAndPprof(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	ds, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + ds.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "up_total 1") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	// pprof index must answer; the 1-second CPU profile is exercised by
	// the CI smoke (too slow for a unit test).
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ status = %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline status = %d", code)
	}
	// The flight recorder endpoint exists even without a recorder wired in
	// and serves a valid empty snapshot.
	if code, body := get("/debug/flightrecorder"); code != 200 || !strings.Contains(body, `"queries": 0`) {
		t.Errorf("/debug/flightrecorder = %d %q", code, body)
	}
}

func TestDebugServerServesFlightRecorder(t *testing.T) {
	fr := NewFlightRecorder(8, 4)
	q := fr.Begin("window")
	q.Access(0, false, 0)
	q.SetResults(2)
	q.End()
	ds, err := StartDebugServerWith("127.0.0.1:0", nil, fr)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	resp, err := http.Get("http://" + ds.Addr + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q, want JSON", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Queries uint64 `json:"queries"`
		Recent  []struct {
			Name    string `json:"name"`
			Results int    `json:"results"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("endpoint body invalid JSON: %v\n%s", err, body)
	}
	if dump.Queries != 1 || len(dump.Recent) != 1 || dump.Recent[0].Name != "window" || dump.Recent[0].Results != 2 {
		t.Errorf("endpoint dump = %+v", dump)
	}
}
