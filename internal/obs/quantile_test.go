package obs

import (
	"math"
	"testing"
)

func histSample(values ...float64) Sample {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range values {
		h.Observe(v)
	}
	for _, s := range r.Snapshot() {
		if s.Kind == KindHistogram {
			return s
		}
	}
	return Sample{}
}

func TestQuantileDegenerateInputs(t *testing.T) {
	if got := (Sample{Kind: KindCounter}).Quantile(0.5); got != 0 {
		t.Errorf("counter quantile = %g, want 0", got)
	}
	if got := histSample().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All mass in one power-of-two bucket [4,8): every quantile must land
	// inside that bucket's edges.
	s := histSample(5, 5, 5, 5)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got < 4 || got > 8 {
			t.Errorf("Quantile(%g) = %g, outside landing bucket [4,8]", q, got)
		}
	}
	// Quantiles are monotone in q.
	prev := math.Inf(-1)
	for _, q := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		got := s.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%g) = %g < previous %g; not monotone", q, got, prev)
		}
		prev = got
	}
}

func TestQuantileFirstBucketLinear(t *testing.T) {
	// Bucket 0 is [0,1) with a zero lower edge, interpolated linearly.
	s := histSample(0.1, 0.2, 0.3, 0.4)
	if got := s.Quantile(0.5); got != 0.5 {
		t.Errorf("first-bucket median = %g, want 0.5 (linear midpoint of [0,1))", got)
	}
	if got := s.Quantile(1); got != 1 {
		t.Errorf("first-bucket max = %g, want the bucket's upper edge 1", got)
	}
}

func TestQuantileLogInterpolation(t *testing.T) {
	// Half the mass below 2, half in [2,4): the p75 rank lands halfway
	// through the [2,4) bucket, so log interpolation gives 2·2^0.5.
	s := histSample(1, 1, 3, 3)
	want := 2 * math.Sqrt2
	if got := s.Quantile(0.75); math.Abs(got-want) > 1e-12 {
		t.Errorf("Quantile(0.75) = %g, want %g", got, want)
	}
}

func TestQuantileInfTailReportsLowerEdge(t *testing.T) {
	s := histSample(math.MaxFloat64)
	want := math.Pow(2, float64(histBuckets-2))
	if got := s.Quantile(0.5); got != want {
		t.Errorf("+Inf-tail quantile = %g, want the tail lower edge %g", got, want)
	}
	if math.IsInf(s.Quantile(1), 1) {
		t.Error("quantile reported +Inf; must stay finite")
	}
}

func TestQuantileClampsArgument(t *testing.T) {
	s := histSample(1, 2, 3)
	if got, lo := s.Quantile(-3), s.Quantile(0); got != lo {
		t.Errorf("Quantile(-3) = %g, want Quantile(0) = %g", got, lo)
	}
	if got, hi := s.Quantile(7), s.Quantile(1); got != hi {
		t.Errorf("Quantile(7) = %g, want Quantile(1) = %g", got, hi)
	}
}

func TestPercentilesOrdered(t *testing.T) {
	s := histSample(0.5, 1, 2, 4, 8, 16, 32, 64, 128, 300)
	p50, p95, p99 := s.Percentiles()
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("percentiles not ordered: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	if p50 < 2 || p50 > 16 {
		t.Errorf("p50 = %g, implausible for the sample", p50)
	}
	if p99 < 128 || p99 > 512 {
		t.Errorf("p99 = %g, implausible for the sample", p99)
	}
}
