package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer is a lightweight span/event recorder for coarse query-path
// tracing: which phases a command or experiment went through and how long
// each took. It records into a bounded in-memory buffer (oldest spans are
// dropped once the cap is reached) and renders as text next to a metrics
// dump — no wire protocol, no sampling machinery.
//
// A nil *Tracer is the disabled tracer: Start returns an inert Span and
// Event does nothing, with zero allocations, so instrumented code calls
// it unconditionally.
type Tracer struct {
	mu      sync.Mutex
	spans   []SpanRecord
	dropped uint64
	max     int
	clock   func() time.Time
}

// DefaultTraceCap bounds how many finished spans a tracer retains.
const DefaultTraceCap = 4096

// NewTracer returns an enabled tracer retaining up to max finished spans
// (max <= 0 selects DefaultTraceCap).
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Tracer{max: max, clock: time.Now}
}

// SpanRecord is one finished span (or instantaneous event, when Duration
// is zero and Event is true).
type SpanRecord struct {
	Name     string
	Attrs    []Label
	Start    time.Time
	Duration time.Duration
	Event    bool
}

// Span is an in-progress span handle. The zero Span (from a nil tracer)
// is inert.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Start begins a span. On a nil tracer it returns the inert zero Span
// without allocating.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: t.clock()}
}

// End finishes the span, recording its duration with optional attributes.
// Safe on the zero Span.
func (s Span) End(attrs ...Label) {
	if s.t == nil {
		return
	}
	s.t.record(SpanRecord{
		Name:     s.name,
		Attrs:    attrs,
		Start:    s.start,
		Duration: s.t.clock().Sub(s.start),
	})
}

// Event records an instantaneous named event. Safe (and allocation-free)
// on a nil tracer.
func (t *Tracer) Event(name string, attrs ...Label) {
	if t == nil {
		return
	}
	t.record(SpanRecord{Name: name, Attrs: attrs, Start: t.clock(), Event: true})
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		// Drop the oldest half in one move so appends stay amortized O(1).
		half := len(t.spans) / 2
		t.dropped += uint64(half)
		t.spans = append(t.spans[:0], t.spans[half:]...)
	}
	t.spans = append(t.spans, r)
}

// DroppedSpans returns how many finished spans have been discarded to
// honor the retention cap. Nil tracers report zero.
func (t *Tracer) DroppedSpans() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns a copy of the retained records in completion order, plus
// how many older records were dropped. Nil tracers return nothing.
func (t *Tracer) Spans() (spans []SpanRecord, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...), t.dropped
}

// Text renders the retained spans as an indented timeline, one line per
// record, ordered by completion. Durations are rounded for readability;
// pass a zero round to keep full precision.
func (t *Tracer) Text(round time.Duration) string {
	spans, dropped := t.Spans()
	if len(spans) == 0 && dropped == 0 {
		return ""
	}
	var b strings.Builder
	if dropped > 0 {
		fmt.Fprintf(&b, "... %d older spans dropped ...\n", dropped)
	}
	for _, r := range spans {
		if r.Event {
			fmt.Fprintf(&b, "event %-24s", r.Name)
		} else {
			d := r.Duration
			if round > 0 {
				d = d.Round(round)
			}
			fmt.Fprintf(&b, "span  %-24s %12s", r.Name, d)
		}
		attrs := append([]Label(nil), r.Attrs...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
		for _, a := range attrs {
			fmt.Fprintf(&b, "  %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteText writes the Text timeline to w, prefixed with a one-line
// retention summary so overflow is visible even when the timeline itself
// is empty. Nil tracers write nothing.
func (t *Tracer) WriteText(w io.Writer, round time.Duration) error {
	if t == nil {
		return nil
	}
	spans, dropped := t.Spans()
	if _, err := fmt.Fprintf(w, "trace: %d spans retained, %d dropped\n", len(spans), dropped); err != nil {
		return err
	}
	_, err := io.WriteString(w, t.Text(round))
	return err
}

// jsonSpan is the JSON shape of one span record.
type jsonSpan struct {
	Name       string            `json:"name"`
	Event      bool              `json:"event,omitempty"`
	Start      time.Time         `json:"start"`
	DurationNs int64             `json:"duration_ns,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// jsonTrace is the JSON shape of a tracer dump: the retained spans plus
// the overflow accounting.
type jsonTrace struct {
	RetainedSpans int        `json:"retained_spans"`
	DroppedSpans  uint64     `json:"dropped_spans"`
	Spans         []jsonSpan `json:"spans"`
}

// WriteJSON renders the retained spans and the dropped-span count as one
// JSON object with a trailing newline. Nil tracers render an empty (but
// valid) dump.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans, dropped := t.Spans()
	out := jsonTrace{RetainedSpans: len(spans), DroppedSpans: dropped, Spans: make([]jsonSpan, 0, len(spans))}
	for _, r := range spans {
		js := jsonSpan{Name: r.Name, Event: r.Event, Start: r.Start, DurationNs: r.Duration.Nanoseconds()}
		if len(r.Attrs) > 0 {
			js.Attrs = make(map[string]string, len(r.Attrs))
			for _, a := range r.Attrs {
				js.Attrs[a.Key] = a.Value
			}
		}
		out.Spans = append(out.Spans, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
