package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock that advances a fixed step per call.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	now := start
	return func() time.Time {
		t := now
		now = now.Add(step)
		return t
	}
}

func TestTracerSpansAndEvents(t *testing.T) {
	tr := NewTracer(16)
	tr.clock = fakeClock(time.Unix(0, 0), time.Second)

	sp := tr.Start("load")
	tr.Event("checkpoint", L("page", "7"))
	sp.End(L("pages", "10"))

	spans, dropped := tr.Spans()
	if dropped != 0 {
		t.Errorf("dropped = %d, want 0", dropped)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d records, want 2", len(spans))
	}
	// The event finished first (records are in completion order).
	if !spans[0].Event || spans[0].Name != "checkpoint" {
		t.Errorf("first record = %+v, want the checkpoint event", spans[0])
	}
	if spans[1].Name != "load" || spans[1].Event {
		t.Errorf("second record = %+v, want the load span", spans[1])
	}
	// Start at t=0, event consumed t=1, End observed t=2: duration 2s.
	if spans[1].Duration != 2*time.Second {
		t.Errorf("span duration = %v, want 2s", spans[1].Duration)
	}

	text := tr.Text(time.Millisecond)
	if !strings.Contains(text, "span  load") || !strings.Contains(text, "pages=10") {
		t.Errorf("text rendering missing span line:\n%s", text)
	}
	if !strings.Contains(text, "event checkpoint") || !strings.Contains(text, "page=7") {
		t.Errorf("text rendering missing event line:\n%s", text)
	}
}

func TestTracerBoundedRetention(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Event("e")
	}
	spans, dropped := tr.Spans()
	if len(spans) > 8 {
		t.Errorf("retained %d spans, cap is 8", len(spans))
	}
	if int(dropped)+len(spans) != 20 {
		t.Errorf("dropped %d + retained %d != 20 recorded", dropped, len(spans))
	}
	if !strings.Contains(tr.Text(0), "older spans dropped") {
		t.Error("text rendering does not mention dropped spans")
	}
}

// TestTracerDroppedSpansExposed drives the tracer past its retention cap
// and checks the overflow is visible through every surface: the counter,
// the text report, and the JSON dump.
func TestTracerDroppedSpansExposed(t *testing.T) {
	tr := NewTracer(8)
	tr.clock = fakeClock(time.Unix(0, 0), time.Millisecond)
	if tr.DroppedSpans() != 0 {
		t.Errorf("fresh tracer reports %d dropped spans", tr.DroppedSpans())
	}
	const recorded = 20
	for i := 0; i < recorded; i++ {
		tr.Event("e")
	}
	dropped := tr.DroppedSpans()
	if dropped == 0 {
		t.Fatal("overflowed tracer reports zero dropped spans")
	}
	spans, fromSpans := tr.Spans()
	if fromSpans != dropped {
		t.Errorf("Spans() dropped=%d, DroppedSpans()=%d", fromSpans, dropped)
	}
	if int(dropped)+len(spans) != recorded {
		t.Errorf("dropped %d + retained %d != %d recorded", dropped, len(spans), recorded)
	}

	var text strings.Builder
	if err := tr.WriteText(&text, 0); err != nil {
		t.Fatal(err)
	}
	wantHeader := fmt.Sprintf("trace: %d spans retained, %d dropped", len(spans), dropped)
	if !strings.Contains(text.String(), wantHeader) {
		t.Errorf("WriteText missing %q:\n%s", wantHeader, text.String())
	}

	var js strings.Builder
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		RetainedSpans int    `json:"retained_spans"`
		DroppedSpans  uint64 `json:"dropped_spans"`
		Spans         []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(js.String()), &dump); err != nil {
		t.Fatalf("WriteJSON output is not valid JSON: %v", err)
	}
	if dump.DroppedSpans != dropped || dump.RetainedSpans != len(spans) || len(dump.Spans) != len(spans) {
		t.Errorf("JSON dump retained=%d dropped=%d spans=%d, want %d/%d/%d",
			dump.RetainedSpans, dump.DroppedSpans, len(dump.Spans), len(spans), dropped, len(spans))
	}
}

// TestTracerWritersNilSafe: the writer surfaces follow the nil-tracer
// contract — text writes nothing, JSON writes a valid empty dump.
func TestTracerWritersNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.DroppedSpans() != 0 {
		t.Error("nil tracer reports dropped spans")
	}
	var text strings.Builder
	if err := tr.WriteText(&text, 0); err != nil || text.Len() != 0 {
		t.Errorf("nil WriteText = (%q, %v), want empty and nil", text.String(), err)
	}
	var js strings.Builder
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var dump map[string]any
	if err := json.Unmarshal([]byte(js.String()), &dump); err != nil {
		t.Fatalf("nil WriteJSON output invalid: %v", err)
	}
	if dump["retained_spans"].(float64) != 0 || dump["dropped_spans"].(float64) != 0 {
		t.Errorf("nil tracer JSON dump not empty: %v", dump)
	}
}

func TestTracerNilIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.End()
	tr.Event("y")
	if spans, dropped := tr.Spans(); spans != nil || dropped != 0 {
		t.Error("nil tracer returned records")
	}
	if tr.Text(0) != "" {
		t.Error("nil tracer rendered text")
	}
}

// TestTracerConcurrency exercises the tracer from many goroutines; run
// under -race this is its race test.
func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start("work")
				tr.Event("tick")
				sp.End()
			}
		}()
	}
	wg.Wait()
	spans, dropped := tr.Spans()
	if int(dropped)+len(spans) != 8*500*2 {
		t.Errorf("dropped %d + retained %d != %d recorded", dropped, len(spans), 8*500*2)
	}
}
