package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — the /metrics endpoint of the debug server. A
// nil registry serves an empty (but valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r) // client went away; nothing useful to do
	})
}

// DebugMux builds the debug endpoint surface the -debug-addr flag serves:
// /metrics in Prometheus format plus the standard net/http/pprof handlers
// under /debug/pprof/. The pprof handlers are registered explicitly on a
// private mux (importing net/http/pprof for its side effect would pollute
// http.DefaultServeMux for every embedder).
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	// Addr is the actual listen address (resolves ":0" to the bound port).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartDebugServer binds addr (e.g. "localhost:6060" or ":0") and serves
// DebugMux(r) in a background goroutine until Close.
func StartDebugServer(addr string, r *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugMux(r)}
	ds := &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() {
		_ = srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return ds, nil
}

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
