package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — the /metrics endpoint of the debug server. A
// nil registry serves an empty (but valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r) // client went away; nothing useful to do
	})
}

// FlightHandler returns an http.Handler serving the flight recorder
// snapshot as JSON — the /debug/flightrecorder endpoint. A nil recorder
// serves an empty (but valid) snapshot, so the route exists whether or
// not recording is on.
func FlightHandler(fr *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = fr.WriteJSON(w) // client went away; nothing useful to do
	})
}

// DebugMux builds the debug endpoint surface the -debug-addr flag serves:
// /metrics in Prometheus format plus the standard net/http/pprof handlers
// under /debug/pprof/. The pprof handlers are registered explicitly on a
// private mux (importing net/http/pprof for its side effect would pollute
// http.DefaultServeMux for every embedder).
func DebugMux(r *Registry) *http.ServeMux {
	return DebugMuxWith(r, nil)
}

// DebugMuxWith is DebugMux plus the /debug/flightrecorder endpoint
// backed by fr (nil fr serves an empty snapshot).
func DebugMuxWith(r *Registry, fr *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/flightrecorder", FlightHandler(fr))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	// Addr is the actual listen address (resolves ":0" to the bound port).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// StartDebugServer binds addr (e.g. "localhost:6060" or ":0") and serves
// DebugMux(r) in a background goroutine until Close.
func StartDebugServer(addr string, r *Registry) (*DebugServer, error) {
	return StartDebugServerWith(addr, r, nil)
}

// StartDebugServerWith is StartDebugServer with a flight recorder wired
// into /debug/flightrecorder (nil fr serves an empty snapshot).
func StartDebugServerWith(addr string, r *Registry, fr *FlightRecorder) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugMuxWith(r, fr)}
	ds := &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}
	go func() {
		_ = srv.Serve(ln) // returns http.ErrServerClosed on Close
	}()
	return ds, nil
}

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
