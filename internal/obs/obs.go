// Package obs is the repository's observability layer: a labeled metrics
// registry (counters, gauges, log-bucketed histograms) plus a lightweight
// span/event tracer, built on the standard library only.
//
// The package contract, which every instrumented layer relies on:
//
//   - Disabled is free. A nil *Registry is a valid disabled registry:
//     every metric it hands out is nil, and every method on a nil metric
//     is a no-op that performs zero heap allocations. Hot paths hold the
//     (possibly nil) metric pointer and call it unconditionally — the
//     cost of "off" is one predictable branch, guarded by
//     BenchmarkObsDisabled and rtreelint's hotalloc analyzer.
//   - Enabled is race-safe. Counters, gauges, and histogram buckets are
//     atomics; registration takes the registry lock. Independent
//     collectors (e.g. one per simulation replica) merge deterministically
//     with Merge.
//   - Observability never changes results. Metrics mirror existing
//     accounting; they are never read back into a computation, so every
//     numeric result and report byte is identical with instrumentation on
//     or off (asserted by tests in sim and experiments).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64 metric. The zero value is
// usable; a nil *Counter is the disabled no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe (and free) on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Safe (and free) on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. A nil *Gauge is the
// disabled no-op.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits of the value
}

// Set stores v. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds v (CAS loop). Safe on a nil receiver.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the fixed bucket count of Histogram: bucket i counts
// observations v with 2^(i-1) <= v < 2^i (bucket 0 takes v < 1), plus one
// implicit +Inf tail for anything at or above 2^(histBuckets-2).
const histBuckets = 40

// Histogram is a log-bucketed (powers of two) histogram of non-negative
// observations. Log bucketing keeps it allocation-free and fixed-size
// while spanning nanoseconds to hours, which is all the precision the
// experiments need. A nil *Histogram is the disabled no-op.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v float64) int {
	if v < 1 || math.IsNaN(v) {
		return 0
	}
	b := 1 + int(math.Floor(math.Log2(v)))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records v (negatives clamp to 0). Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Kind distinguishes metric types in snapshots and exports.
type Kind int

// The metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// metric is one registered metric with its identity.
type metric struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Metrics are identified by (name, labels);
// asking for the same identity twice returns the same metric, so layers
// that are constructed repeatedly (one pool per replica) accumulate into
// one series unless they use separate registries and Merge.
//
// A nil *Registry is the disabled registry: every lookup returns a nil
// metric and every method is a no-op.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order kept for stable iteration pre-sort
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)} //lint:allow hotalloc one registry per run, not per query
}

// keyOf builds the map identity of (name, labels). Labels are sorted so
// identity is order-independent.
func keyOf(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)                                //lint:allow hotalloc registration-time identity build, once per series
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key }) //lint:allow hotalloc registration-time identity build, once per series
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('{')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte('}')
	}
	return b.String()
}

// lookup returns the metric of the given identity, creating it with mk on
// first use. Mismatched kinds panic: two call sites disagreeing on what a
// name means is a programming error worth failing loudly on.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *metric {
	key := keyOf(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, labels: append([]Label(nil), labels...), kind: kind} //lint:allow hotalloc first-use registration, once per series
	switch kind {
	case KindCounter:
		m.c = &Counter{} //lint:allow hotalloc first-use registration, once per series
	case KindGauge:
		m.g = &Gauge{} //lint:allow hotalloc first-use registration, once per series
	case KindHistogram:
		m.h = &Histogram{} //lint:allow hotalloc first-use registration, once per series
	}
	r.metrics[key] = m
	r.order = append(r.order, key) //lint:allow hotalloc first-use registration, once per series
	return m
}

// Counter returns the counter of the given identity, registering it on
// first use. Returns nil (the no-op counter) on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, labels).c
}

// Gauge returns the gauge of the given identity, registering it on first
// use. Returns nil on a nil registry.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, labels).g
}

// Histogram returns the histogram of the given identity, registering it
// on first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, labels).h
}

// Merge folds src's metrics into r: counters and histograms add, gauges
// take src's value when src has one registered (last merge wins). Merging
// a nil src, or into a nil r, is a no-op. Merge order is up to the caller;
// merging replica registries in replica order keeps results deterministic.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	src.mu.Lock()
	keys := append([]string(nil), src.order...) //lint:allow hotalloc once-per-run replica merge
	ms := make([]*metric, len(keys))            //lint:allow hotalloc once-per-run replica merge
	for i, k := range keys {
		ms[i] = src.metrics[k]
	}
	src.mu.Unlock()
	for _, m := range ms {
		switch m.kind {
		case KindCounter:
			r.Counter(m.name, m.labels...).Add(m.c.Value())
		case KindGauge:
			r.Gauge(m.name, m.labels...).Set(m.g.Value())
		case KindHistogram:
			dst := r.Histogram(m.name, m.labels...)
			dst.count.Add(m.h.count.Load())
			for {
				old := dst.sumBits.Load()
				nw := math.Float64bits(math.Float64frombits(old) + m.h.Sum())
				if dst.sumBits.CompareAndSwap(old, nw) {
					break
				}
			}
			for i := range dst.buckets {
				dst.buckets[i].Add(m.h.buckets[i].Load())
			}
		}
	}
}

// BucketCount is one non-empty histogram bucket in a snapshot: Count
// observations with UpperBound as the exclusive upper edge (+Inf for the
// tail bucket).
type BucketCount struct {
	UpperBound float64
	Count      uint64
}

// Sample is one metric's state in a Snapshot.
type Sample struct {
	Name    string
	Labels  []Label // sorted by key
	Kind    Kind
	Value   float64       // counter count or gauge value
	Count   uint64        // histogram observation count
	Sum     float64       // histogram observation sum
	Buckets []BucketCount // non-empty histogram buckets, ascending
}

// FullName renders name{k="v",...} with labels sorted by key.
func (s Sample) FullName() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot returns the current state of every registered metric, sorted
// by name then label values, so exports are deterministic. A nil registry
// snapshots to nil.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, key := range r.order {
		ms = append(ms, r.metrics[key])
	}
	r.mu.Unlock()
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Kind: m.kind}
		s.Labels = append([]Label(nil), m.labels...)
		sort.Slice(s.Labels, func(i, j int) bool { return s.Labels[i].Key < s.Labels[j].Key })
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Value = m.g.Value()
		case KindHistogram:
			s.Count = m.h.count.Load()
			s.Sum = m.h.Sum()
			for i := range m.h.buckets {
				if n := m.h.buckets[i].Load(); n > 0 {
					ub := math.Inf(1)
					if i < histBuckets-1 {
						ub = math.Pow(2, float64(i))
					}
					s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Count: n})
				}
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}
