package pack

import (
	"math/rand/v2"
	"testing"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/hilbert"
	"rtreebuf/internal/rtree"
)

func randItems(rng *rand.Rand, n int) []rtree.Item {
	out := make([]rtree.Item, n)
	for i := range out {
		c := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		out[i] = rtree.Item{
			Rect: geom.RectAround(c, rng.Float64()*0.02, rng.Float64()*0.02).Clamp(geom.UnitSquare),
			ID:   int64(i),
		}
	}
	return out
}

func randRects(rng *rand.Rand, n int) []geom.Rect {
	items := randItems(rng, n)
	out := make([]geom.Rect, n)
	for i, it := range items {
		out[i] = it.Rect
	}
	return out
}

func TestLoadAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 202))
	items := randItems(rng, 1500)
	for _, alg := range Algorithms() {
		t.Run(string(alg), func(t *testing.T) {
			tr, err := Load(alg, rtree.Params{MaxEntries: 16}, items)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() != len(items) {
				t.Errorf("Len = %d", tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := rtree.ValidateTree(tr); err != nil {
				t.Fatal(err)
			}
			// Every item findable by point query at its center.
			for i := 0; i < 200; i += 7 {
				hits := tr.SearchPoint(items[i].Rect.Center())
				found := false
				for _, h := range hits {
					if h.ID == items[i].ID {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("item %d not found at its center", i)
				}
			}
		})
	}
}

func TestLoadUnknownAlgorithm(t *testing.T) {
	if _, err := Load(Algorithm("bogus"), rtree.Params{MaxEntries: 4}, nil); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPaperAlgorithms(t *testing.T) {
	got := PaperAlgorithms()
	want := []Algorithm{TATQuadratic, NearestX, HilbertSort}
	if len(got) != len(want) {
		t.Fatalf("PaperAlgorithms = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PaperAlgorithms = %v", got)
		}
	}
}

func TestNearestXOrderingSortsByCenterX(t *testing.T) {
	rng := rand.New(rand.NewPCG(203, 204))
	rects := randRects(rng, 500)
	perm := NearestXOrdering().Order(rects, 10)
	for i := 1; i < len(perm); i++ {
		if rects[perm[i-1]].Center().X > rects[perm[i]].Center().X {
			t.Fatalf("NX ordering not sorted at %d", i)
		}
	}
}

func TestHilbertOrderingSortsByHilbertKey(t *testing.T) {
	rng := rand.New(rand.NewPCG(205, 206))
	rects := randRects(rng, 500)
	perm := HilbertOrdering(hilbert.DefaultOrder).Order(rects, 10)
	prev := uint64(0)
	for i, idx := range perm {
		c := rects[idx].Center()
		key := hilbert.EncodePoint(hilbert.DefaultOrder, c.X, c.Y)
		if key < prev {
			t.Fatalf("HS ordering not sorted at %d", i)
		}
		prev = key
	}
}

func TestSTROrderingStructure(t *testing.T) {
	// A perfect 16x16 grid of points, capacity 16: STR should produce 16
	// leaves, each a 4x4 tile (slab of 4 columns x runs of 16).
	var rects []geom.Rect
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			p := geom.Point{X: (float64(x) + 0.5) / 16, Y: (float64(y) + 0.5) / 16}
			rects = append(rects, geom.PointRect(p))
		}
	}
	perm := STROrdering().Order(rects, 16)
	if len(perm) != 256 {
		t.Fatalf("perm length %d", len(perm))
	}
	// Every run of 16 should span exactly a 0.25 x 0.25 tile.
	for g := 0; g < 16; g++ {
		var tile []geom.Rect
		for _, idx := range perm[g*16 : (g+1)*16] {
			tile = append(tile, rects[idx])
		}
		mbr := geom.MBR(tile)
		if mbr.Width() > 0.20 || mbr.Height() > 0.20 {
			t.Fatalf("group %d spans %v — not a compact STR tile", g, mbr)
		}
	}
}

func TestOrderingsArePermutations(t *testing.T) {
	rng := rand.New(rand.NewPCG(207, 208))
	rects := randRects(rng, 333)
	orderings := map[string]rtree.Ordering{
		"nx":  NearestXOrdering(),
		"hs":  HilbertOrdering(hilbert.DefaultOrder),
		"str": STROrdering(),
	}
	for name, ord := range orderings {
		perm := ord.Order(rects, 10)
		if len(perm) != len(rects) {
			t.Fatalf("%s: length %d", name, len(perm))
		}
		seen := make([]bool, len(rects))
		for _, idx := range perm {
			if idx < 0 || idx >= len(rects) || seen[idx] {
				t.Fatalf("%s: not a permutation", name)
			}
			seen[idx] = true
		}
	}
}

// Tree-quality comparison, the structural fact behind Equation 2 of the
// paper: region-query cost grows with the total extent sums Lx + Ly, where
// Hilbert/STR tiles (compact squares) beat Nearest-X slivers (full-height
// columns) decisively on uniform data. Total *area* is nearly identical
// for point data regardless of ordering, which is exactly why the paper's
// point-query rankings differ from its region-query rankings.
func TestPackingQualityOrdering(t *testing.T) {
	rng := rand.New(rand.NewPCG(209, 210))
	var items []rtree.Item
	for i := 0; i < 4000; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		items = append(items, rtree.Item{Rect: geom.PointRect(p), ID: int64(i)})
	}
	perimeter := map[Algorithm]float64{}
	for _, alg := range []Algorithm{NearestX, HilbertSort, STR} {
		tr, err := Load(alg, rtree.Params{MaxEntries: 20}, items)
		if err != nil {
			t.Fatal(err)
		}
		st := tr.ComputeStats()
		perimeter[alg] = st.TotalXExtent + st.TotalYExtent
	}
	if perimeter[HilbertSort] >= perimeter[NearestX]/2 {
		t.Errorf("HS extent sum %.2f not well below NX %.2f on uniform data",
			perimeter[HilbertSort], perimeter[NearestX])
	}
	if perimeter[STR] >= perimeter[NearestX]/2 {
		t.Errorf("STR extent sum %.2f not well below NX %.2f",
			perimeter[STR], perimeter[NearestX])
	}
}

func TestSTRVariousSizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(211, 212))
	for _, n := range []int{1, 5, 16, 17, 100, 257, 1000} {
		items := randItems(rng, n)
		tr, err := Load(STR, rtree.Params{MaxEntries: 16}, items)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestTATSplitVariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(213, 214))
	items := randItems(rng, 400)
	quad, err := Load(TATQuadratic, rtree.Params{MaxEntries: 8}, items)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Load(TATLinear, rtree.Params{MaxEntries: 8}, items)
	if err != nil {
		t.Fatal(err)
	}
	if quad.Params().Split != rtree.SplitQuadratic || lin.Params().Split != rtree.SplitLinear {
		t.Error("split parameter not propagated")
	}
	if err := quad.CheckMinFill(); err != nil {
		t.Error(err)
	}
	if err := lin.CheckMinFill(); err != nil {
		t.Error(err)
	}
}

func TestCeilSqrt(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 2}, {5, 3}, {9, 3}, {10, 4}, {16, 4}, {17, 5}, {10000, 100},
	}
	for _, tc := range cases {
		if got := ceilSqrt(tc.in); got != tc.want {
			t.Errorf("ceilSqrt(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// Determinism: identical inputs yield identical trees (orderings use
// stable sorts and no randomness).
func TestLoadDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(215, 216))
	items := randItems(rng, 700)
	for _, alg := range Algorithms() {
		a, err := Load(alg, rtree.Params{MaxEntries: 12}, items)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Load(alg, rtree.Params{MaxEntries: 12}, items)
		if err != nil {
			t.Fatal(err)
		}
		la, lb := a.Levels(), b.Levels()
		if len(la) != len(lb) {
			t.Fatalf("%s: heights differ", alg)
		}
		for i := range la {
			if len(la[i]) != len(lb[i]) {
				t.Fatalf("%s: level %d sizes differ", alg, i)
			}
			for j := range la[i] {
				if !la[i][j].Equal(lb[i][j]) {
					t.Fatalf("%s: MBR %d/%d differs", alg, i, j)
				}
			}
		}
	}
}
