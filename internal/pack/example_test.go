package pack_test

import (
	"fmt"

	"rtreebuf/internal/datagen"
	"rtreebuf/internal/pack"
	"rtreebuf/internal/rtree"
)

// ExampleLoad builds the same data with each of the paper's loading
// algorithms and prints the structural quantities that drive Equation 2:
// total MBR area (point-query cost) and extent sums (region-query cost).
func ExampleLoad() {
	items := datagen.Items(datagen.SyntheticRegions(5000, 7))
	for _, alg := range []pack.Algorithm{pack.TATQuadratic, pack.NearestX, pack.HilbertSort} {
		tree, err := pack.Load(alg, rtree.Params{MaxEntries: 50}, items)
		if err != nil {
			panic(err)
		}
		st := tree.ComputeStats()
		fmt.Printf("%-4s nodes=%-4d area=%.2f extents=%.1f\n",
			alg, st.Nodes, st.TotalArea, st.TotalXExtent+st.TotalYExtent)
	}
	// The packed loaders use ~100 full nodes; TAT needs ~50% more of them
	// at ~2/3 fill. NX's full-height slivers give it triple the extent sum
	// of HS — the structural reason Fig. 6's region-query curves are
	// ordered the way they are.

	// Output:
	// tat  nodes=147  area=3.30 extents=35.5
	// nx   nodes=103  area=3.70 extents=102.8
	// hs   nodes=103  area=3.48 extents=29.4
}
