// Package pack implements the R-tree loading algorithms the paper studies
// (Section 2.2): Tuple-At-a-Time insertion (TAT) with Guttman's quadratic
// split, Nearest-X packing (NX, Roussopoulos–Leifker), and Hilbert Sort
// packing (HS, Kamel–Faloutsos). Sort-Tile-Recursive (STR) from the
// authors' companion paper is included as an extension/ablation.
//
// The packed loaders share the paper's "General Algorithm": order the
// rectangles of a level, fill nodes with consecutive groups of n, and
// recurse on the node MBRs until a single root remains. Each algorithm is
// just a different Ordering plugged into rtree.Pack.
package pack

import (
	"fmt"
	"sort"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/hilbert"
	"rtreebuf/internal/rtree"
)

// Algorithm names a loading algorithm.
type Algorithm string

// The loading algorithms available to experiments and tools.
const (
	TATQuadratic Algorithm = "tat"        // tuple-at-a-time, quadratic split
	TATLinear    Algorithm = "tat-linear" // tuple-at-a-time, linear split (ablation)
	RStar        Algorithm = "rstar"      // tuple-at-a-time, R* heuristics (extension)
	NearestX     Algorithm = "nx"         // sort by center x, pack
	HilbertSort  Algorithm = "hs"         // sort by Hilbert value of center, pack
	STR          Algorithm = "str"        // sort-tile-recursive (extension)
)

// Algorithms lists every supported algorithm in the order the paper
// introduces them (extensions last).
func Algorithms() []Algorithm {
	return []Algorithm{TATQuadratic, NearestX, HilbertSort, TATLinear, RStar, STR}
}

// PaperAlgorithms lists only the three algorithms compared in the paper.
func PaperAlgorithms() []Algorithm {
	return []Algorithm{TATQuadratic, NearestX, HilbertSort}
}

// Load builds an R-tree over items with the named algorithm.
func Load(alg Algorithm, p rtree.Params, items []rtree.Item) (*rtree.Tree, error) {
	switch alg {
	case TATQuadratic:
		p.Split = rtree.SplitQuadratic
		return loadTAT(p, items)
	case TATLinear:
		p.Split = rtree.SplitLinear
		return loadTAT(p, items)
	case RStar:
		p.Split = rtree.SplitRStar
		return loadTAT(p, items)
	case NearestX:
		return rtree.Pack(p, items, NearestXOrdering())
	case HilbertSort:
		return rtree.Pack(p, items, HilbertOrdering(hilbert.DefaultOrder))
	case STR:
		return rtree.Pack(p, items, STROrdering())
	default:
		return nil, fmt.Errorf("pack: unknown algorithm %q", alg)
	}
}

func loadTAT(p rtree.Params, items []rtree.Item) (*rtree.Tree, error) {
	t, err := rtree.New(p)
	if err != nil {
		return nil, err
	}
	t.InsertAll(items)
	return t, nil
}

// NearestXOrdering returns the NX ordering: rectangles sorted by the
// x-coordinate of their center. (The original paper gives no details; like
// Leutenegger–López we assume the rectangle's center is used.)
func NearestXOrdering() rtree.Ordering {
	return rtree.OrderingFunc(func(rects []geom.Rect, _ int) []int {
		perm := identity(len(rects))
		sort.SliceStable(perm, func(a, b int) bool {
			ca, cb := rects[perm[a]].Center(), rects[perm[b]].Center()
			if ca.X != cb.X {
				return ca.X < cb.X
			}
			return ca.Y < cb.Y // deterministic tie-break
		})
		return perm
	})
}

// HilbertOrdering returns the HS ordering: rectangles sorted by the
// Hilbert-curve distance of their center on a 2^order x 2^order grid over
// the unit square.
func HilbertOrdering(order uint) rtree.Ordering {
	return rtree.OrderingFunc(func(rects []geom.Rect, _ int) []int {
		keys := make([]uint64, len(rects))
		for i, r := range rects {
			c := r.Center()
			keys[i] = hilbert.EncodePoint(order, c.X, c.Y)
		}
		perm := identity(len(rects))
		sort.SliceStable(perm, func(a, b int) bool {
			return keys[perm[a]] < keys[perm[b]]
		})
		return perm
	})
}

// STROrdering returns the Sort-Tile-Recursive ordering of
// Leutenegger–López–Edgington: sort by center x, cut the sequence into
// ceil(sqrt(P/n)) vertical slabs of n*ceil(sqrt(P/n)) rectangles, and sort
// each slab by center y. Grouping consecutive runs of n afterwards yields
// the STR tiling exactly.
func STROrdering() rtree.Ordering {
	return rtree.OrderingFunc(func(rects []geom.Rect, groupSize int) []int {
		p := len(rects)
		perm := identity(p)
		sort.SliceStable(perm, func(a, b int) bool {
			ca, cb := rects[perm[a]].Center(), rects[perm[b]].Center()
			if ca.X != cb.X {
				return ca.X < cb.X
			}
			return ca.Y < cb.Y
		})
		if groupSize < 1 {
			return perm
		}
		leaves := (p + groupSize - 1) / groupSize
		slabs := ceilSqrt(leaves)
		slabSize := slabs * groupSize
		for start := 0; start < p; start += slabSize {
			end := start + slabSize
			if end > p {
				end = p
			}
			slab := perm[start:end]
			sort.SliceStable(slab, func(a, b int) bool {
				ca, cb := rects[slab[a]].Center(), rects[slab[b]].Center()
				if ca.Y != cb.Y {
					return ca.Y < cb.Y
				}
				return ca.X < cb.X
			})
		}
		return perm
	})
}

func identity(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// ceilSqrt returns ceil(sqrt(n)) for n >= 0 using integer arithmetic.
func ceilSqrt(n int) int {
	if n <= 0 {
		return 0
	}
	r := 1
	for r*r < n {
		r++
	}
	return r
}
