// Package stats provides the small statistical toolkit the validation
// experiments need: summary statistics and batch-means confidence
// intervals. The paper collects confidence intervals "using batch means
// with 20 batches of 1,000,000 queries each, resulting in confidence
// intervals of less than 3 percent at a 90 percent confidence level";
// BatchMeans reproduces exactly that methodology.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics of xs. An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean       float64
	HalfWidth  float64
	Confidence float64 // e.g. 0.90
	Batches    int
}

// Lo returns the lower endpoint of the interval.
func (iv Interval) Lo() float64 { return iv.Mean - iv.HalfWidth }

// Hi returns the upper endpoint of the interval.
func (iv Interval) Hi() float64 { return iv.Mean + iv.HalfWidth }

// RelativeHalfWidth returns HalfWidth / |Mean|, the "percent" figure the
// paper quotes ("confidence intervals of less than 3 percent"). It returns
// +Inf for a zero mean with a non-zero half width, and 0 when both are zero.
func (iv Interval) RelativeHalfWidth() float64 {
	if iv.Mean == 0 {
		if iv.HalfWidth == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return iv.HalfWidth / math.Abs(iv.Mean)
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	return v >= iv.Lo() && v <= iv.Hi()
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%, %d batches)",
		iv.Mean, iv.HalfWidth, iv.Confidence*100, iv.Batches)
}

// BatchMeans computes a confidence interval from per-batch means using the
// Student t distribution with len(batchMeans)-1 degrees of freedom. It
// needs at least two batches; with fewer it returns the mean with an
// infinite half width rather than pretending to certainty.
func BatchMeans(batchMeans []float64, confidence float64) Interval {
	s := Summarize(batchMeans)
	iv := Interval{Mean: s.Mean, Confidence: confidence, Batches: s.N}
	if s.N < 2 {
		iv.HalfWidth = math.Inf(1)
		return iv
	}
	t := TQuantile(s.N-1, 1-(1-confidence)/2)
	iv.HalfWidth = t * s.StdDev / math.Sqrt(float64(s.N))
	return iv
}

// TQuantile returns the p-quantile of the Student t distribution with df
// degrees of freedom, computed via the Cornish–Fisher style expansion of
// the normal quantile (Peizer–Pratt refinement). Accuracy is better than
// 1e-3 for df >= 3, ample for confidence-interval reporting.
func TQuantile(df int, p float64) float64 {
	if df <= 0 {
		panic(fmt.Sprintf("stats: t quantile with df=%d", df))
	}
	z := NormQuantile(p)
	n := float64(df)
	// Hill's asymptotic expansion of the t quantile in powers of 1/df.
	z2 := z * z
	g1 := (z2 + 1) / 4
	g2 := ((5*z2+16)*z2 + 3) / 96
	g3 := (((3*z2+19)*z2+17)*z2 - 15) / 384
	g4 := ((((79*z2+776)*z2+1482)*z2-1920)*z2 - 945) / 92160
	return z * (1 + g1/n + g2/(n*n) + g3/(n*n*n) + g4/(n*n*n*n))
}

// NormQuantile returns the p-quantile of the standard normal distribution
// using the Acklam rational approximation (relative error < 1.15e-9).
func NormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: normal quantile of p=%g", p))
	}
	// Coefficients of Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// PercentDiff returns (got-want)/want as the signed relative difference
// the paper reports in Table 1 ("percent difference relative to the
// simulation"). A zero want with non-zero got yields +/-Inf.
func PercentDiff(want, got float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(sign(got))
	}
	return (got - want) / want
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Median returns the median of xs (average of the two central elements for
// even lengths). It returns 0 for an empty sample.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}
