package stats_test

import (
	"fmt"

	"rtreebuf/internal/stats"
)

// ExampleBatchMeans reproduces the paper's measurement methodology:
// batch-means confidence intervals at 90% confidence.
func ExampleBatchMeans() {
	batchMeans := []float64{2.10, 2.05, 2.12, 2.08, 2.11, 2.06, 2.09, 2.07}
	iv := stats.BatchMeans(batchMeans, 0.90)
	fmt.Printf("mean=%.3f halfwidth=%.3f relative=%.2f%%\n",
		iv.Mean, iv.HalfWidth, 100*iv.RelativeHalfWidth())
	fmt.Println("covers 2.08:", iv.Contains(2.08))
	// Output:
	// mean=2.085 halfwidth=0.016 relative=0.79%
	// covers 2.08: true
}
