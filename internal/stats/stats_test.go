package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("Summary = %+v", s)
	}
	// Sample std dev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", s.StdDev, want)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.N != 1 || s.Mean != 3 || s.StdDev != 0 || s.Min != 3 || s.Max != 3 {
		t.Errorf("single Summary = %+v", s)
	}
}

func TestNormQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.95, 1.644854},
		{0.90, 1.281552},
		{0.025, -1.959964},
		{0.0001, -3.719016},
		{0.9999, 3.719016},
	}
	for _, tc := range cases {
		if got := NormQuantile(tc.p); math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("NormQuantile(%g) = %g, want %g", tc.p, got, tc.want)
		}
	}
}

func TestNormQuantileMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 1; p += 0.001 {
		v := NormQuantile(p)
		if v < prev {
			t.Fatalf("NormQuantile not monotone at p=%g", p)
		}
		prev = v
	}
}

func TestNormQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormQuantile(%g) did not panic", p)
				}
			}()
			NormQuantile(p)
		}()
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Standard t-table, two-sided 90% (p = 0.95) and 95% (p = 0.975).
	cases := []struct {
		df   int
		p    float64
		want float64
		tol  float64
	}{
		{19, 0.95, 1.729, 0.01}, // the paper's 20 batches
		{19, 0.975, 2.093, 0.01},
		{9, 0.95, 1.833, 0.01},
		{30, 0.95, 1.697, 0.01},
		{100, 0.975, 1.984, 0.01},
		{5, 0.95, 2.015, 0.02},
	}
	for _, tc := range cases {
		if got := TQuantile(tc.df, tc.p); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("TQuantile(%d, %g) = %g, want %g", tc.df, tc.p, got, tc.want)
		}
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	if got, want := TQuantile(100000, 0.95), NormQuantile(0.95); math.Abs(got-want) > 1e-4 {
		t.Errorf("TQuantile(1e5) = %g, normal = %g", got, want)
	}
}

func TestBatchMeans(t *testing.T) {
	batches := []float64{10, 11, 9, 10.5, 9.5, 10, 10.2, 9.8}
	iv := BatchMeans(batches, 0.90)
	if math.Abs(iv.Mean-10) > 1e-12 {
		t.Errorf("Mean = %g", iv.Mean)
	}
	if iv.Batches != 8 || iv.Confidence != 0.90 {
		t.Errorf("Interval = %+v", iv)
	}
	if iv.HalfWidth <= 0 || iv.HalfWidth > 1 {
		t.Errorf("HalfWidth = %g outside plausible range", iv.HalfWidth)
	}
	if !iv.Contains(10) || iv.Contains(20) {
		t.Error("Contains misbehaves")
	}
	if iv.Lo() >= iv.Hi() {
		t.Error("degenerate interval")
	}
}

func TestBatchMeansTooFew(t *testing.T) {
	iv := BatchMeans([]float64{5}, 0.9)
	if !math.IsInf(iv.HalfWidth, 1) {
		t.Errorf("single batch HalfWidth = %g, want +Inf", iv.HalfWidth)
	}
}

// Statistical property: the 90% interval from batch means of a known
// distribution covers the true mean in roughly 90% of repetitions.
func TestBatchMeansCoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 78))
	const trials = 400
	covered := 0
	for trial := 0; trial < trials; trial++ {
		batches := make([]float64, 20)
		for b := range batches {
			var sum float64
			for i := 0; i < 50; i++ {
				sum += rng.Float64() // mean 0.5
			}
			batches[b] = sum / 50
		}
		if BatchMeans(batches, 0.90).Contains(0.5) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.82 || rate > 0.97 {
		t.Errorf("90%% interval covered the mean %.1f%% of the time", 100*rate)
	}
}

func TestRelativeHalfWidth(t *testing.T) {
	iv := Interval{Mean: 10, HalfWidth: 0.3}
	if got := iv.RelativeHalfWidth(); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("RelativeHalfWidth = %g", got)
	}
	if got := (Interval{Mean: 0, HalfWidth: 1}).RelativeHalfWidth(); !math.IsInf(got, 1) {
		t.Errorf("zero-mean RelativeHalfWidth = %g", got)
	}
	if got := (Interval{}).RelativeHalfWidth(); got != 0 {
		t.Errorf("zero interval RelativeHalfWidth = %g", got)
	}
}

func TestPercentDiff(t *testing.T) {
	if got := PercentDiff(10, 11); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("PercentDiff = %g", got)
	}
	if got := PercentDiff(10, 9); math.Abs(got+0.1) > 1e-12 {
		t.Errorf("PercentDiff = %g", got)
	}
	if got := PercentDiff(0, 0); got != 0 {
		t.Errorf("PercentDiff(0,0) = %g", got)
	}
	if got := PercentDiff(0, 5); !math.IsInf(got, 1) {
		t.Errorf("PercentDiff(0,5) = %g", got)
	}
	if got := PercentDiff(0, -5); !math.IsInf(got, -1) {
		t.Errorf("PercentDiff(0,-5) = %g", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %g", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median empty = %g", got)
	}
	// Median must not mutate its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated input")
	}
}

// Property: the interval mean equals the sample mean and half width is
// non-negative for any finite sample.
func TestBatchMeansQuick(t *testing.T) {
	f := func(raw []float64) bool {
		batches := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				batches = append(batches, v)
			}
		}
		if len(batches) < 2 {
			return true
		}
		iv := BatchMeans(batches, 0.9)
		return iv.HalfWidth >= 0 && iv.Contains(iv.Mean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
