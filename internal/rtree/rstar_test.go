package rtree

import (
	"math/rand/v2"
	"testing"

	"rtreebuf/internal/geom"
)

func rstarTree() *Tree {
	return MustNew(Params{MaxEntries: 10, Split: SplitRStar})
}

func TestRStarInsertMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(700, 701))
	for _, cap := range []int{4, 10, 32} {
		tr := MustNew(Params{MaxEntries: cap, Split: SplitRStar})
		items := testItems(rng, 1000)
		tr.InsertAll(items)
		if tr.Len() != len(items) {
			t.Fatalf("cap %d: Len = %d", cap, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		if err := tr.CheckMinFill(); err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		if err := ValidateTreeStrict(tr); err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		for i := 0; i < 80; i++ {
			q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()},
				rng.Float64()*0.2, rng.Float64()*0.2)
			got := idsOf(tr.SearchWindow(q))
			want := bruteSearch(items, q)
			if !equalIDs(got, want) {
				t.Fatalf("cap %d: query %v mismatch (%d vs %d)", cap, q, len(got), len(want))
			}
		}
	}
}

func TestRStarDelete(t *testing.T) {
	rng := rand.New(rand.NewPCG(702, 703))
	tr := rstarTree()
	items := testItems(rng, 600)
	tr.InsertAll(items)
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for i, it := range items[:500] {
		if !tr.Delete(it) {
			t.Fatalf("delete %d failed", i)
		}
		if i%101 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i+1, err)
			}
		}
	}
	if err := ValidateTree(tr); err != nil {
		t.Fatal(err)
	}
	if !equalIDs(idsOf(tr.Items()), idsOf(items[500:])) {
		t.Fatal("survivors mismatch")
	}
}

// The point of R*: better tree quality than Guttman insertion. On
// clustered data, the R* tree's total MBR area and overlap should be
// clearly below the quadratic-split tree's.
func TestRStarQualityBeatsQuadratic(t *testing.T) {
	rng := rand.New(rand.NewPCG(704, 705))
	var items []Item
	id := int64(0)
	for c := 0; c < 25; c++ {
		cx, cy := rng.Float64(), rng.Float64()
		for i := 0; i < 120; i++ {
			p := geom.Point{
				X: cx + (rng.Float64()-0.5)*0.08,
				Y: cy + (rng.Float64()-0.5)*0.08,
			}
			items = append(items, Item{Rect: geom.PointRect(p).Clamp(geom.UnitSquare), ID: id})
			id++
		}
	}
	quad := MustNew(Params{MaxEntries: 20})
	quad.InsertAll(items)
	rs := MustNew(Params{MaxEntries: 20, Split: SplitRStar})
	rs.InsertAll(items)

	qa, ra := quad.ComputeStats().TotalArea, rs.ComputeStats().TotalArea
	if ra >= qa {
		t.Errorf("R* total area %.4f not below quadratic %.4f", ra, qa)
	}
}

func TestRStarForcedReinsertHappens(t *testing.T) {
	// With capacity 4 and 50 inserts, overflows are guaranteed; the tree
	// must stay valid throughout (reinsertion exercises insertEntryCtx
	// recursion at non-leaf heights once the tree is deep enough).
	rng := rand.New(rand.NewPCG(706, 707))
	tr := MustNew(Params{MaxEntries: 4, Split: SplitRStar})
	for i := 0; i < 400; i++ {
		tr.Insert(testItems(rng, 1)[0])
		if i%37 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Height() < 3 {
		t.Fatalf("tree too shallow (%d) to have exercised upper-level overflow", tr.Height())
	}
}

func TestSplitRStarRespectsMinFill(t *testing.T) {
	rng := rand.New(rand.NewPCG(708, 709))
	tr := MustNew(Params{MaxEntries: 8, MinEntries: 4, Split: SplitRStar})
	n := &node{height: 0}
	for _, it := range testItems(rng, 9) {
		n.entries = append(n.entries, entry{rect: it.Rect, id: it.ID})
	}
	left, right := tr.splitRStar(n)
	if len(left.entries) < 4 || len(right.entries) < 4 {
		t.Errorf("split sizes %d/%d violate min fill 4", len(left.entries), len(right.entries))
	}
	if len(left.entries)+len(right.entries) != 9 {
		t.Errorf("split lost entries: %d + %d", len(left.entries), len(right.entries))
	}
}

func TestOverlapEnlargement(t *testing.T) {
	entries := []entry{
		{rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 0.4, MaxY: 0.4}},
		{rect: geom.Rect{MinX: 0.6, MinY: 0.6, MaxX: 1, MaxY: 1}},
	}
	// Growing entry 0 to include a rect near entry 1 creates overlap.
	r := geom.Rect{MinX: 0.7, MinY: 0.7, MaxX: 0.8, MaxY: 0.8}
	if got := overlapEnlargement(entries, 0, r); got <= 0 {
		t.Errorf("overlap enlargement = %g, want > 0", got)
	}
	// Growing entry 0 within its own corner creates none.
	r2 := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}
	if got := overlapEnlargement(entries, 0, r2); got != 0 {
		t.Errorf("overlap enlargement = %g, want 0", got)
	}
}

func TestRStarDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(710, 711))
	items := testItems(rng, 500)
	a := rstarTree()
	a.InsertAll(items)
	b := rstarTree()
	b.InsertAll(items)
	la, lb := a.Levels(), b.Levels()
	if len(la) != len(lb) {
		t.Fatal("heights differ")
	}
	for i := range la {
		if len(la[i]) != len(lb[i]) {
			t.Fatal("level sizes differ")
		}
		for j := range la[i] {
			if !la[i][j].Equal(lb[i][j]) {
				t.Fatal("MBRs differ")
			}
		}
	}
}
