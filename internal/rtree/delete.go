package rtree

// Delete removes one stored item matching both rectangle and ID and
// reports whether it was found. Removal follows Guttman's algorithm:
// FindLeaf, remove the entry, CondenseTree (eliminate under-full nodes and
// reinsert their orphaned entries at the correct height), and shrink the
// root when it is a non-leaf with a single child.
func (t *Tree) Delete(item Item) bool {
	leaf, idx := t.findLeaf(t.root, item)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.pagesValid = false
	t.condense(leaf)
	// Shrink the root while it is an internal node with exactly one child.
	for !t.root.isLeaf() && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	return true
}

// findLeaf locates the leaf holding an entry equal to item (same rectangle
// and ID), returning the leaf and entry index, or (nil, -1).
func (t *Tree) findLeaf(n *node, item Item) (*node, int) {
	if n.isLeaf() {
		for i, e := range n.entries {
			if e.id == item.ID && e.rect.Equal(item.Rect) {
				return n, i
			}
		}
		return nil, -1
	}
	for _, e := range n.entries {
		if e.rect.ContainsRect(item.Rect) {
			if leaf, i := t.findLeaf(e.child, item); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, -1
}

// condense walks from n to the root, removing under-full nodes and
// collecting their entries for reinsertion, then reinserts orphans at
// their original height (leaf entries at height 0, subtrees higher up).
func (t *Tree) condense(n *node) {
	type orphan struct {
		e      entry
		height int
	}
	var orphans []orphan

	for n.parent != nil {
		p := n.parent
		i := p.entryIndexOf(n)
		if len(n.entries) < t.params.MinEntries {
			// Eliminate the node, orphaning its entries.
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, n.height})
			}
			p.entries = append(p.entries[:i], p.entries[i+1:]...)
		} else {
			p.entries[i].rect = n.mbr()
		}
		n = p
	}

	// Reinsert deepest-first so leaf entries see a settled upper tree.
	for i := len(orphans) - 1; i >= 0; i-- {
		o := orphans[i]
		t.insertEntry(o.e, o.height)
	}
}
