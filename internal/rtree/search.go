package rtree

import "rtreebuf/internal/geom"

// SearchWindow reports every stored item whose rectangle intersects q,
// in depth-first order. This is the paper's region (window) query.
func (t *Tree) SearchWindow(q geom.Rect) []Item {
	var out []Item
	t.searchNode(t.root, q, &out)
	return out
}

// SearchPoint reports every stored item whose rectangle contains p — the
// paper's point query (a region query of size 0 x 0).
func (t *Tree) SearchPoint(p geom.Point) []Item {
	return t.SearchWindow(geom.PointRect(p))
}

// SearchWindowFunc streams every item intersecting q to visit, in
// depth-first order, without materializing a result slice. Returning
// false from visit stops the search early (existence tests, LIMIT-style
// queries). It reports whether the search ran to completion.
func (t *Tree) SearchWindowFunc(q geom.Rect, visit func(Item) bool) bool {
	return t.searchFunc(t.root, q, visit)
}

// searchFunc is the recursive worker of SearchWindowFunc. It is a method,
// not a per-query recursive closure, so a streaming search allocates
// nothing beyond what visit itself does (hotalloc keeps it that way).
func (t *Tree) searchFunc(n *node, q geom.Rect, visit func(Item) bool) bool {
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if n.isLeaf() {
			if !visit(Item{Rect: e.rect, ID: e.id}) {
				return false
			}
		} else if !t.searchFunc(e.child, q, visit) {
			return false
		}
	}
	return true
}

// Intersecting reports whether any stored item intersects q, descending
// only until the first hit.
func (t *Tree) Intersecting(q geom.Rect) bool {
	found := false
	t.SearchWindowFunc(q, func(Item) bool {
		found = true
		return false
	})
	return found
}

func (t *Tree) searchNode(n *node, q geom.Rect, out *[]Item) {
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if n.isLeaf() {
			//lint:allow hotalloc materializing the result slice is SearchWindow's contract
			*out = append(*out, Item{Rect: e.rect, ID: e.id})
		} else {
			t.searchNode(e.child, q, out)
		}
	}
}

// TraceOrder selects the node-visit order reported by TraceWindow.
type TraceOrder int

const (
	// TraceDFS visits nodes in the order a recursive R-tree search reads
	// pages from disk: parent before children, children in entry order.
	TraceDFS TraceOrder = iota
	// TraceLevelOrder visits intersecting nodes level by level from the
	// root, matching the paper's validation simulator, which "checks each
	// node's MBR" per level rather than recursing.
	TraceLevelOrder
)

// NodeVisit describes one node touched by a traced query.
type NodeVisit struct {
	// Page is the node's page number as assigned by AssignPageIDs
	// (level-order, root = 0).
	Page int
	// Level is the paper-convention level (0 = root).
	Level int
}

// TraceWindow reports every node whose MBR intersects q, in the given
// order, invoking visit once per node. Consistent with the paper's model
// and simulator, a node is reported iff its own MBR intersects the query —
// including the root. (A real search always reads the root page; the model
// instead assigns the root an access probability equal to its MBR's reach,
// which for realistic trees is nearly 1. Both semantics are available:
// pass strictRoot=true to force the root visit.)
//
// TraceWindow requires AssignPageIDs to have been called after the last
// structural change; it panics otherwise, since silent page-number reuse
// would corrupt buffer statistics.
func (t *Tree) TraceWindow(q geom.Rect, order TraceOrder, strictRoot bool, visit func(NodeVisit)) {
	if !t.pagesValid {
		panic("rtree: TraceWindow before AssignPageIDs")
	}
	rootMBR := geom.Rect{}
	rootHit := false
	if len(t.root.entries) > 0 {
		rootMBR = t.root.mbr()
		rootHit = rootMBR.Intersects(q)
	}
	if strictRoot {
		rootHit = true
	}
	if !rootHit {
		return
	}
	switch order {
	case TraceLevelOrder:
		frontier := []*node{t.root}
		for len(frontier) > 0 {
			var next []*node
			for _, n := range frontier {
				visit(NodeVisit{Page: n.page, Level: t.root.height - n.height})
				if n.isLeaf() {
					continue
				}
				for _, e := range n.entries {
					if e.rect.Intersects(q) {
						next = append(next, e.child)
					}
				}
			}
			frontier = next
		}
	default:
		var rec func(n *node)
		rec = func(n *node) {
			visit(NodeVisit{Page: n.page, Level: t.root.height - n.height})
			if n.isLeaf() {
				return
			}
			for _, e := range n.entries {
				if e.rect.Intersects(q) {
					rec(e.child)
				}
			}
		}
		rec(t.root)
	}
}

// CountWindow returns the number of items intersecting q without
// materializing them — handy for benchmarks that must not measure
// allocation of result slices.
func (t *Tree) CountWindow(q geom.Rect) int {
	count := 0
	var rec func(n *node)
	rec = func(n *node) {
		for _, e := range n.entries {
			if !e.rect.Intersects(q) {
				continue
			}
			if n.isLeaf() {
				count++
			} else {
				rec(e.child)
			}
		}
	}
	rec(t.root)
	return count
}

// NodesTouched returns the number of tree nodes whose MBR intersects q —
// the bufferless "nodes visited" metric of the Kamel–Faloutsos model that
// the paper argues is insufficient.
func (t *Tree) NodesTouched(q geom.Rect) int {
	count := 0
	var rec func(n *node, mbr geom.Rect)
	rec = func(n *node, mbr geom.Rect) {
		if !mbr.Intersects(q) {
			return
		}
		count++
		if n.isLeaf() {
			return
		}
		for _, e := range n.entries {
			rec(e.child, e.rect)
		}
	}
	if len(t.root.entries) > 0 {
		rec(t.root, t.root.mbr())
	}
	return count
}
