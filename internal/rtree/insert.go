package rtree

import "rtreebuf/internal/geom"

// Insert adds one data rectangle to the tree using Guttman's insertion
// algorithm (ChooseLeaf, split on overflow, AdjustTree), or the R*-tree
// variant when Params.Split is SplitRStar. This is the primitive behind
// the paper's Tuple-At-a-Time (TAT) loading algorithm.
func (t *Tree) Insert(item Item) {
	var ctx *insertCtx
	if t.params.Split == SplitRStar {
		ctx = &insertCtx{reinserted: make(map[int]bool)}
	}
	t.insertEntryCtx(entry{rect: item.Rect, id: item.ID}, 0, ctx)
	t.size++
	t.pagesValid = false
}

// InsertAll inserts items in order.
func (t *Tree) InsertAll(items []Item) {
	for _, it := range items {
		t.Insert(it)
	}
}

// insertEntry places e at the given height (0 = leaf level) without
// forced-reinsertion bookkeeping. CondenseTree uses it: its reinsertions
// must not trigger further R* reinsertion cascades.
func (t *Tree) insertEntry(e entry, height int) {
	t.insertEntryCtx(e, height, nil)
}

// insertEntryCtx places e at the given height, consulting ctx for the R*
// overflow treatment.
func (t *Tree) insertEntryCtx(e entry, height int, ctx *insertCtx) {
	n := t.chooseNode(e.rect, height)
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	}
	if len(n.entries) > t.params.MaxEntries {
		t.overflow(n, ctx)
	} else {
		t.adjustUpward(n)
	}
}

// overflow applies the configured overflow treatment to node n: R* forced
// reinsertion on the first overflow per height per insertion (never at
// the root), a split otherwise.
func (t *Tree) overflow(n *node, ctx *insertCtx) {
	if t.params.Split == SplitRStar && ctx != nil && n.parent != nil && !ctx.reinserted[n.height] {
		ctx.reinserted[n.height] = true
		t.forcedReinsert(n, ctx)
		return
	}
	t.splitAndAdjust(n, ctx)
}

// chooseNode descends from the root to the node at the target height whose
// MBR needs the least area enlargement to include r, breaking ties by
// smallest area (Guttman's ChooseLeaf, generalized to any level). Under
// SplitRStar, the step onto the target level instead minimizes overlap
// enlargement (the R* ChooseSubtree refinement).
func (t *Tree) chooseNode(r geom.Rect, height int) *node {
	n := t.root
	for n.height > height {
		var best int
		if t.params.Split == SplitRStar && n.height == height+1 {
			best = chooseSubtreeRStar(n, r)
		} else {
			best = -1
			var bestEnl, bestArea float64
			for i := range n.entries {
				enl := n.entries[i].rect.Enlargement(r)
				area := n.entries[i].rect.Area()
				if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
					best, bestEnl, bestArea = i, enl, area
				}
			}
		}
		// Extend the chosen subtree's MBR on the way down so ancestors are
		// already correct when the entry lands (AdjustTree handles splits).
		n.entries[best].rect = n.entries[best].rect.Union(r)
		n = n.entries[best].child
	}
	return n
}

// splitAndAdjust splits the overflowing node n and propagates splits and
// MBR updates toward the root (Guttman's AdjustTree). Overflows of
// ancestors go back through the overflow treatment, so R* forced
// reinsertion applies at upper levels too.
func (t *Tree) splitAndAdjust(n *node, ctx *insertCtx) {
	left, right := t.split(n)
	p := n.parent
	if p == nil {
		// Root split: grow the tree by one level.
		newRoot := &node{height: n.height + 1}
		newRoot.entries = []entry{
			{rect: left.mbr(), child: left},
			{rect: right.mbr(), child: right},
		}
		left.parent, right.parent = newRoot, newRoot
		t.root = newRoot
		return
	}
	// Replace n's entry in the parent with the left half, add the right.
	i := p.entryIndexOf(n)
	p.entries[i] = entry{rect: left.mbr(), child: left}
	left.parent = p
	p.entries = append(p.entries, entry{rect: right.mbr(), child: right})
	right.parent = p
	if len(p.entries) > t.params.MaxEntries {
		t.overflow(p, ctx)
	} else {
		t.adjustUpward(p)
	}
}

// adjustUpward recomputes MBRs from n to the root after a change that did
// not overflow.
func (t *Tree) adjustUpward(n *node) {
	for n.parent != nil {
		p := n.parent
		i := p.entryIndexOf(n)
		p.entries[i].rect = n.mbr()
		n = p
	}
}

// entryIndexOf returns the index of the entry pointing at child. It panics
// if child is not among p's entries: parent pointers are maintained by
// this package, so a miss is a structural bug, not a user error.
func (p *node) entryIndexOf(child *node) int {
	for i := range p.entries {
		if p.entries[i].child == child {
			return i
		}
	}
	panic("rtree: parent does not reference child")
}
