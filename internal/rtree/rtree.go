// Package rtree implements the R-tree of Guttman as used by the paper: a
// height-balanced tree of axis-parallel rectangles supporting intersection
// queries, tuple-at-a-time insertion with the quadratic (and, as an
// ablation, linear) node-splitting heuristic, deletion with tree
// condensation, and the per-level MBR extraction that feeds the buffer
// cost model.
//
// Level numbering follows the paper: level 0 is the root and level H is
// the leaf level of a tree with H+1 levels. Internally nodes store their
// height above the leaves (leaf = 0), which survives root growth; the
// public accessors convert.
package rtree

import (
	"fmt"

	"rtreebuf/internal/geom"
)

// SplitAlgorithm selects the node-splitting heuristic used on overflow.
type SplitAlgorithm int

const (
	// SplitQuadratic is Guttman's quadratic-cost split, the heuristic the
	// paper's TAT loading algorithm uses.
	SplitQuadratic SplitAlgorithm = iota
	// SplitLinear is Guttman's linear-cost split, provided as an ablation.
	SplitLinear
	// SplitRStar selects the R*-tree insertion heuristics of Beckmann et
	// al. (reference [1] of the paper): overlap-minimizing ChooseSubtree
	// above the leaf level, the margin-driven topological split, and
	// forced reinsertion of 30% of an overflowing node's entries before
	// the first split at each level. The paper's model evaluates "any
	// R-tree update operation"; this is the strongest contemporary one.
	SplitRStar
)

// String implements fmt.Stringer.
func (s SplitAlgorithm) String() string {
	switch s {
	case SplitQuadratic:
		return "quadratic"
	case SplitLinear:
		return "linear"
	case SplitRStar:
		return "rstar"
	default:
		return fmt.Sprintf("SplitAlgorithm(%d)", int(s))
	}
}

// Params configures an R-tree.
type Params struct {
	// MaxEntries is the node capacity n: the maximum number of entries
	// per node. It must be at least 2.
	MaxEntries int
	// MinEntries is the minimum fill m <= MaxEntries/2 enforced by splits
	// and deletions (except at the root). Zero selects the conventional
	// 40% of MaxEntries (at least 2, and at most MaxEntries/2).
	MinEntries int
	// Split selects the overflow splitting heuristic.
	Split SplitAlgorithm
}

// DefaultParams returns parameters with node capacity max and conventional
// defaults for everything else.
func DefaultParams(max int) Params {
	return Params{MaxEntries: max}
}

// normalized validates p and fills defaults. It returns an error rather
// than panicking: capacities frequently come from user flags.
func (p Params) normalized() (Params, error) {
	if p.MaxEntries < 2 {
		return p, fmt.Errorf("rtree: MaxEntries %d < 2", p.MaxEntries)
	}
	if p.MinEntries == 0 {
		p.MinEntries = p.MaxEntries * 2 / 5 // Guttman's 40% convention
		if p.MinEntries < 1 {
			p.MinEntries = 1
		}
	}
	if p.MinEntries < 1 || p.MinEntries > p.MaxEntries/2 {
		return p, fmt.Errorf("rtree: MinEntries %d outside [1, MaxEntries/2=%d]",
			p.MinEntries, p.MaxEntries/2)
	}
	if p.Split != SplitQuadratic && p.Split != SplitLinear && p.Split != SplitRStar {
		return p, fmt.Errorf("rtree: unknown split algorithm %d", int(p.Split))
	}
	return p, nil
}

// Item is a data rectangle stored at the leaf level together with the
// caller's identifier (typically the index of the rectangle in the input
// data set).
type Item struct {
	Rect geom.Rect
	ID   int64
}

// entry is one slot of a node: a rectangle plus either a child pointer
// (internal nodes) or a data identifier (leaves).
type entry struct {
	rect  geom.Rect
	child *node // nil at leaves
	id    int64 // meaningful at leaves only
}

// node is an R-tree node. height is the node's height above the leaf
// level (leaf = 0).
type node struct {
	parent  *node
	entries []entry
	height  int
	page    int // level-order page number; valid while Tree.pagesValid
}

func (n *node) isLeaf() bool { return n.height == 0 }

// mbr returns the minimum bounding rectangle of the node's entries.
// It panics on an empty node: only a freshly split or root node may be
// momentarily empty, and neither should have its MBR taken.
func (n *node) mbr() geom.Rect {
	if len(n.entries) == 0 {
		panic("rtree: MBR of empty node")
	}
	out := n.entries[0].rect
	for _, e := range n.entries[1:] {
		out = out.Union(e.rect)
	}
	return out
}

// Tree is an R-tree. The zero value is not usable; construct with New or
// a bulk loader from package pack.
type Tree struct {
	root       *node
	params     Params
	size       int  // number of data items
	pagesValid bool // page numbers current since last AssignPageIDs
}

// New returns an empty R-tree with the given parameters.
func New(p Params) (*Tree, error) {
	np, err := p.normalized()
	if err != nil {
		return nil, err
	}
	return &Tree{
		root:   &node{height: 0},
		params: np,
	}, nil
}

// MustNew is New for parameters known correct at compile time; it panics
// on error.
func MustNew(p Params) *Tree {
	t, err := New(p)
	if err != nil {
		panic(err)
	}
	return t
}

// Params returns the tree's (normalized) parameters.
func (t *Tree) Params() Params { return t.params }

// Len returns the number of data items stored.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels H+1 of the tree (a tree holding a
// single leaf node has height 1). An empty tree has height 1: the empty
// root is still a leaf page.
func (t *Tree) Height() int { return t.root.height + 1 }

// Bounds returns the MBR of all stored items and false if the tree is empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if len(t.root.entries) == 0 {
		return geom.Rect{}, false
	}
	return t.root.mbr(), true
}

// NodeCount returns the total number of nodes M in the tree.
func (t *Tree) NodeCount() int {
	total := 0
	t.walk(func(*node) { total++ })
	return total
}

// walk visits every node in depth-first pre-order.
func (t *Tree) walk(visit func(*node)) {
	var rec func(*node)
	rec = func(n *node) {
		visit(n)
		if n.isLeaf() {
			return
		}
		for _, e := range n.entries {
			rec(e.child)
		}
	}
	rec(t.root)
}
