package rtree

import (
	"fmt"

	"rtreebuf/internal/geom"
)

// Ordering arranges the rectangles of one tree level prior to grouping
// them into nodes. Order returns a permutation of indices of rects; the
// packer then fills nodes with groupSize consecutive rectangles in that
// order. groupSize is the node capacity n, which slab-based orderings
// (STR) need to shape their tiles.
//
// Implementations live in internal/pack (Nearest-X, Hilbert Sort, STR).
type Ordering interface {
	Order(rects []geom.Rect, groupSize int) []int
}

// OrderingFunc adapts a function to the Ordering interface.
type OrderingFunc func(rects []geom.Rect, groupSize int) []int

// Order implements Ordering.
func (f OrderingFunc) Order(rects []geom.Rect, groupSize int) []int {
	return f(rects, groupSize)
}

// Pack bulk-loads an R-tree bottom-up, implementing the paper's "General
// Algorithm" for packing: order the R data rectangles, place each
// consecutive group of n into a leaf, then recursively pack the leaf MBRs
// into nodes one level up until a single root remains. The ordering is
// re-applied at every level, as in the packing algorithms of
// Roussopoulos–Leifker and Kamel–Faloutsos.
//
// Packed nodes are filled to capacity (the last node of each level may be
// short), so MinEntries violations cannot arise during loading; the
// resulting tree is a valid R-tree for all subsequent Insert/Delete calls.
func Pack(p Params, items []Item, ord Ordering) (*Tree, error) {
	np, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if ord == nil {
		return nil, fmt.Errorf("rtree: Pack requires an ordering")
	}
	t := &Tree{params: np}
	if len(items) == 0 {
		t.root = &node{height: 0}
		return t, nil
	}

	// Leaf level.
	rects := make([]geom.Rect, len(items))
	for i, it := range items {
		rects[i] = it.Rect
	}
	perm := ord.Order(rects, np.MaxEntries)
	if err := checkPermutation(perm, len(items)); err != nil {
		return nil, err
	}
	level := make([]*node, 0, (len(items)+np.MaxEntries-1)/np.MaxEntries)
	for start := 0; start < len(perm); start += np.MaxEntries {
		end := min(start+np.MaxEntries, len(perm))
		n := &node{height: 0, entries: make([]entry, 0, end-start)}
		for _, idx := range perm[start:end] {
			n.entries = append(n.entries, entry{rect: items[idx].Rect, id: items[idx].ID})
		}
		level = append(level, n)
	}

	// Upper levels.
	height := 0
	for len(level) > 1 {
		height++
		mbrs := make([]geom.Rect, len(level))
		for i, n := range level {
			mbrs[i] = n.mbr()
		}
		perm := ord.Order(mbrs, np.MaxEntries)
		if err := checkPermutation(perm, len(level)); err != nil {
			return nil, err
		}
		var next []*node
		for start := 0; start < len(perm); start += np.MaxEntries {
			end := min(start+np.MaxEntries, len(perm))
			n := &node{height: height, entries: make([]entry, 0, end-start)}
			for _, idx := range perm[start:end] {
				child := level[idx]
				child.parent = n
				n.entries = append(n.entries, entry{rect: mbrs[idx], child: child})
			}
			next = append(next, n)
		}
		level = next
	}

	t.root = level[0]
	t.size = len(items)
	return t, nil
}

func checkPermutation(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("rtree: ordering returned %d indices for %d rects", len(perm), n)
	}
	seen := make([]bool, n)
	for _, idx := range perm {
		if idx < 0 || idx >= n || seen[idx] {
			return fmt.Errorf("rtree: ordering is not a permutation (index %d)", idx)
		}
		seen[idx] = true
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
