package rtree

import (
	"fmt"

	"rtreebuf/internal/geom"
)

// Levels returns the MBRs of every node, grouped by paper-convention level
// (index 0 = root, last index = leaf level). This is exactly the input the
// buffer cost model of internal/core consumes: "the minimum bounding
// rectangles of all nodes in the tree".
func (t *Tree) Levels() [][]geom.Rect {
	if len(t.root.entries) == 0 {
		return [][]geom.Rect{{}}
	}
	levels := make([][]geom.Rect, t.root.height+1)
	t.walk(func(n *node) {
		lvl := t.root.height - n.height
		levels[lvl] = append(levels[lvl], n.mbr())
	})
	return levels
}

// NodesPerLevel returns the node count of each level, root first — the
// M_i of the paper (and the contents of its Table 2).
func (t *Tree) NodesPerLevel() []int {
	counts := make([]int, t.root.height+1)
	t.walk(func(n *node) {
		counts[t.root.height-n.height]++
	})
	return counts
}

// AssignPageIDs numbers every node in level order (root = page 0, then
// level 1 left to right, and so on) and returns the total page count.
// Page numbers feed the trace/buffer machinery and the storage codec.
// Structural updates (Insert/Delete) invalidate the assignment.
func (t *Tree) AssignPageIDs() int {
	next := 0
	frontier := []*node{t.root}
	for len(frontier) > 0 {
		var nextLevel []*node
		for _, n := range frontier {
			n.page = next
			next++
			if n.isLeaf() {
				continue
			}
			for _, e := range n.entries {
				nextLevel = append(nextLevel, e.child)
			}
		}
		frontier = nextLevel
	}
	t.pagesValid = true
	return next
}

// PageLevels returns, for each page number assigned by AssignPageIDs, the
// paper-convention level of that node. It panics if page IDs are stale.
func (t *Tree) PageLevels() []int {
	if !t.pagesValid {
		panic("rtree: PageLevels before AssignPageIDs")
	}
	out := make([]int, 0, t.NodeCount())
	t.walk(func(*node) { out = append(out, 0) })
	t.walk(func(n *node) { out[n.page] = t.root.height - n.height })
	return out
}

// Stats summarizes the geometric quality of a tree, the quantities the
// Kamel–Faloutsos model is built from.
type Stats struct {
	Levels        int     // number of levels H+1
	Nodes         int     // M, total node count
	Items         int     // data rectangles stored
	TotalArea     float64 // A: sum of areas of all node MBRs
	TotalXExtent  float64 // Lx: sum of x-extents of all node MBRs
	TotalYExtent  float64 // Ly: sum of y-extents of all node MBRs
	LeafArea      float64 // sum of areas of leaf MBRs only
	AvgFill       float64 // mean entries per node / capacity
	NodesPerLevel []int   // root first
}

// ComputeStats gathers Stats in one pass.
func (t *Tree) ComputeStats() Stats {
	s := Stats{
		Levels:        t.root.height + 1,
		Items:         t.size,
		NodesPerLevel: make([]int, t.root.height+1),
	}
	var fillSum float64
	t.walk(func(n *node) {
		s.Nodes++
		s.NodesPerLevel[t.root.height-n.height]++
		mbr := n.mbr()
		s.TotalArea += mbr.Area()
		s.TotalXExtent += mbr.Width()
		s.TotalYExtent += mbr.Height()
		if n.isLeaf() {
			s.LeafArea += mbr.Area()
		}
		fillSum += float64(len(n.entries)) / float64(t.params.MaxEntries)
	})
	if s.Nodes > 0 {
		s.AvgFill = fillSum / float64(s.Nodes)
	}
	return s
}

// CheckInvariants verifies the structural invariants of the R-tree and
// returns the first violation found, or nil. Checked: every internal
// entry's rectangle equals the MBR of its child; parent pointers are
// consistent; all leaves sit at height zero; no node exceeds MaxEntries;
// an internal root has at least two entries; node heights decrease by one
// per level. Minimum fill is deliberately not checked here — packed trees
// legitimately leave the trailing node of each level short; use
// CheckMinFill for trees built by insertion. Tests and loaders call this
// after every build.
func (t *Tree) CheckInvariants() error {
	var check func(n *node, isRoot bool) error
	check = func(n *node, isRoot bool) error {
		if len(n.entries) > t.params.MaxEntries {
			return fmt.Errorf("rtree: node at height %d has %d entries > max %d",
				n.height, len(n.entries), t.params.MaxEntries)
		}
		if isRoot && !n.isLeaf() && len(n.entries) < 2 {
			return fmt.Errorf("rtree: internal root has %d entries < 2", len(n.entries))
		}
		if n.isLeaf() {
			for i, e := range n.entries {
				if e.child != nil {
					return fmt.Errorf("rtree: leaf entry %d has a child", i)
				}
				if !e.rect.Valid() {
					return fmt.Errorf("rtree: leaf entry %d has invalid rect %v", i, e.rect)
				}
			}
			return nil
		}
		for i, e := range n.entries {
			c := e.child
			if c == nil {
				return fmt.Errorf("rtree: internal entry %d has nil child", i)
			}
			if c.parent != n {
				return fmt.Errorf("rtree: child %d parent pointer mismatch", i)
			}
			if c.height != n.height-1 {
				return fmt.Errorf("rtree: child %d at height %d under node at height %d",
					i, c.height, n.height)
			}
			if len(c.entries) == 0 {
				return fmt.Errorf("rtree: child %d is empty", i)
			}
			if got := c.mbr(); !e.rect.Equal(got) {
				return fmt.Errorf("rtree: entry %d rect %v != child MBR %v", i, e.rect, got)
			}
			if err := check(c, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(t.root, true); err != nil {
		return err
	}
	// Item count must match.
	items := 0
	t.walk(func(n *node) {
		if n.isLeaf() {
			items += len(n.entries)
		}
	})
	if items != t.size {
		return fmt.Errorf("rtree: size %d but %d leaf entries", t.size, items)
	}
	return nil
}

// CheckMinFill verifies that every non-root node holds at least
// MinEntries entries — the Guttman invariant maintained by Insert and
// Delete. Packed trees may legally violate it in their trailing nodes, so
// it is separate from CheckInvariants.
func (t *Tree) CheckMinFill() error {
	var err error
	t.walk(func(n *node) {
		if err != nil || n == t.root {
			return
		}
		if len(n.entries) < t.params.MinEntries {
			err = fmt.Errorf("rtree: node at height %d has %d entries < min %d",
				n.height, len(n.entries), t.params.MinEntries)
		}
	})
	return err
}

// Items returns every stored item in depth-first order. Intended for tests
// and tooling; it allocates the full result.
func (t *Tree) Items() []Item {
	out := make([]Item, 0, t.size)
	t.walk(func(n *node) {
		if !n.isLeaf() {
			return
		}
		for _, e := range n.entries {
			out = append(out, Item{Rect: e.rect, ID: e.id})
		}
	})
	return out
}
