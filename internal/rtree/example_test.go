package rtree_test

import (
	"fmt"
	"sort"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/rtree"
)

// ExampleTree_Insert builds a small tree with Guttman insertion (the
// paper's TAT primitive), queries it, then deletes.
func ExampleTree_Insert() {
	tree := rtree.MustNew(rtree.Params{MaxEntries: 4})
	boxes := []geom.Rect{
		{MinX: 0.0, MinY: 0.0, MaxX: 0.2, MaxY: 0.2},
		{MinX: 0.1, MinY: 0.1, MaxX: 0.3, MaxY: 0.3},
		{MinX: 0.7, MinY: 0.7, MaxX: 0.9, MaxY: 0.9},
		{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6},
	}
	for i, b := range boxes {
		tree.Insert(rtree.Item{Rect: b, ID: int64(i)})
	}

	hits := tree.SearchPoint(geom.Point{X: 0.15, Y: 0.15})
	ids := make([]int, 0, len(hits))
	for _, h := range hits {
		ids = append(ids, int(h.ID))
	}
	sort.Ints(ids)
	fmt.Println("point query hits:", ids)

	tree.Delete(rtree.Item{Rect: boxes[1], ID: 1})
	fmt.Println("after delete:", len(tree.SearchPoint(geom.Point{X: 0.15, Y: 0.15})), "hit(s)")
	fmt.Println("invariants ok:", tree.CheckInvariants() == nil)
	// Output:
	// point query hits: [0 1]
	// after delete: 1 hit(s)
	// invariants ok: true
}

// ExamplePack bulk-loads with the paper's General Algorithm and shows the
// level structure the cost model consumes.
func ExamplePack() {
	var items []rtree.Item
	for i := 0; i < 64; i++ {
		x, y := float64(i%8)/8, float64(i/8)/8
		items = append(items, rtree.Item{
			Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + 0.05, MaxY: y + 0.05},
			ID:   int64(i),
		})
	}
	// Order by center-x: the Nearest-X packing of Roussopoulos–Leifker.
	byX := rtree.OrderingFunc(func(rects []geom.Rect, _ int) []int {
		perm := make([]int, len(rects))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(a, b int) bool {
			return rects[perm[a]].Center().X < rects[perm[b]].Center().X
		})
		return perm
	})
	tree, err := rtree.Pack(rtree.Params{MaxEntries: 8}, items, byX)
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes per level (root..leaf):", tree.NodesPerLevel())
	fmt.Println("pages:", tree.AssignPageIDs())
	// Output:
	// nodes per level (root..leaf): [1 8]
	// pages: 9
}
