package rtree

import (
	"math"

	"rtreebuf/internal/geom"
)

// SplitIndices distributes the rectangles of an overflowing node into
// two groups, returned as index lists into rects, using Guttman's
// PickSeeds/PickNext with the given minimum fill. It is the node-split
// heuristic decoupled from tree internals, for callers that operate on
// serialized nodes (the paged update path) rather than linked ones.
//
// alg selects the seed heuristic: SplitLinear uses the linear PickSeeds,
// everything else (including SplitRStar, whose forced-reinsertion
// machinery needs whole-tree context a page-at-a-time updater does not
// have) uses the quadratic one. Both index lists are non-empty and
// together cover every index exactly once.
func SplitIndices(alg SplitAlgorithm, minFill int, rects []geom.Rect) (left, right []int) {
	entries := make([]entry, len(rects))
	for i, r := range rects {
		entries[i] = entry{rect: r}
	}
	var s1, s2 int
	if alg == SplitLinear {
		s1, s2 = linearSeeds(entries)
	} else {
		s1, s2 = quadraticSeeds(entries)
	}

	left = append(left, s1)
	right = append(right, s2)
	leftMBR, rightMBR := rects[s1], rects[s2]

	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}

	// PickNext/Distribute, in lockstep with Tree.splitSeeded so the
	// paged and in-memory update paths produce the same groupings.
	for len(remaining) > 0 {
		if len(left)+len(remaining) == minFill {
			left = append(left, remaining...)
			break
		}
		if len(right)+len(remaining) == minFill {
			right = append(right, remaining...)
			break
		}
		bestIdx, bestDiff := 0, -1.0
		for i, ri := range remaining {
			d1 := leftMBR.Union(rects[ri]).Area() - leftMBR.Area()
			d2 := rightMBR.Union(rects[ri]).Area() - rightMBR.Area()
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		ri := remaining[bestIdx]
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]

		d1 := leftMBR.Union(rects[ri]).Area() - leftMBR.Area()
		d2 := rightMBR.Union(rects[ri]).Area() - rightMBR.Area()
		toLeft := d1 < d2
		if d1 == d2 {
			a1, a2 := leftMBR.Area(), rightMBR.Area()
			if a1 != a2 {
				toLeft = a1 < a2
			} else {
				toLeft = len(left) <= len(right)
			}
		}
		if toLeft {
			left = append(left, ri)
			leftMBR = leftMBR.Union(rects[ri])
		} else {
			right = append(right, ri)
			rightMBR = rightMBR.Union(rects[ri])
		}
	}
	return left, right
}
