package rtree

import (
	"math/rand/v2"
	"testing"

	"rtreebuf/internal/geom"
)

func TestDeleteBasic(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	items := []Item{
		{Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}, ID: 1},
		{Rect: geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.4, MaxY: 0.4}, ID: 2},
		{Rect: geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.6, MaxY: 0.6}, ID: 3},
	}
	tr.InsertAll(items)
	if !tr.Delete(items[1]) {
		t.Fatal("Delete of present item returned false")
	}
	if tr.Len() != 2 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
	if got := tr.SearchPoint(geom.Point{X: 0.35, Y: 0.35}); len(got) != 0 {
		t.Errorf("deleted item still found: %v", got)
	}
	if tr.Delete(items[1]) {
		t.Error("Delete of absent item returned true")
	}
	// Wrong ID with right rectangle must not match.
	if tr.Delete(Item{Rect: items[0].Rect, ID: 999}) {
		t.Error("Delete matched wrong ID")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(60, 61))
	tr := MustNew(Params{MaxEntries: 5})
	items := testItems(rng, 400)
	tr.InsertAll(items)
	// Delete in random order.
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for i, it := range items {
		if !tr.Delete(it) {
			t.Fatalf("item %d not found for deletion", i)
		}
		if i%53 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletions: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len after deleting all = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("height after deleting all = %d, want 1 (root shrinks back)", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTree(tr); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteCondensesRoot(t *testing.T) {
	rng := rand.New(rand.NewPCG(70, 71))
	tr := MustNew(Params{MaxEntries: 4, MinEntries: 2})
	items := testItems(rng, 200)
	tr.InsertAll(items)
	h := tr.Height()
	if h < 4 {
		t.Fatalf("setup: height %d too small to observe shrinking", h)
	}
	for _, it := range items[:190] {
		if !tr.Delete(it) {
			t.Fatal("delete failed")
		}
	}
	if tr.Height() >= h {
		t.Errorf("height did not shrink: %d -> %d", h, tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := idsOf(tr.Items()); !equalIDs(got, idsOf(items[190:])) {
		t.Error("survivors mismatch")
	}
}

// Mixed random inserts and deletes tracked against a reference map — the
// workhorse property test for update correctness.
func TestRandomInsertDeleteMix(t *testing.T) {
	rng := rand.New(rand.NewPCG(80, 81))
	for _, cap := range []int{3, 6, 12} {
		tr := MustNew(Params{MaxEntries: cap})
		live := map[int64]Item{}
		nextID := int64(0)
		for step := 0; step < 3000; step++ {
			if len(live) == 0 || rng.Float64() < 0.6 {
				it := testItems(rng, 1)[0]
				it.ID = nextID
				nextID++
				tr.Insert(it)
				live[it.ID] = it
			} else {
				// Delete a random live item.
				var victim Item
				k := rng.IntN(len(live))
				for _, it := range live {
					if k == 0 {
						victim = it
						break
					}
					k--
				}
				if !tr.Delete(victim) {
					t.Fatalf("cap %d step %d: live item %d not deletable", cap, step, victim.ID)
				}
				delete(live, victim.ID)
			}
			if step%271 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("cap %d step %d: %v", cap, step, err)
				}
				if err := ValidateTree(tr); err != nil {
					t.Fatalf("cap %d step %d: %v", cap, step, err)
				}
				if tr.Len() != len(live) {
					t.Fatalf("cap %d step %d: Len %d != live %d", cap, step, tr.Len(), len(live))
				}
			}
		}
		// Final check: search agrees with the reference.
		var ref []Item
		for _, it := range live {
			ref = append(ref, it)
		}
		for i := 0; i < 50; i++ {
			q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 0.25, 0.25)
			if got, want := idsOf(tr.SearchWindow(q)), bruteSearch(ref, q); !equalIDs(got, want) {
				t.Fatalf("cap %d: final search mismatch (%d vs %d)", cap, len(got), len(want))
			}
		}
	}
}

func TestDeleteFromEmptyTree(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	if tr.Delete(Item{Rect: geom.UnitSquare, ID: 1}) {
		t.Error("Delete on empty tree returned true")
	}
}

func TestDeleteInvalidatesPages(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	it := Item{Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}, ID: 1}
	tr.Insert(it)
	tr.AssignPageIDs()
	tr.Delete(it)
	defer func() {
		if recover() == nil {
			t.Fatal("TraceWindow after Delete did not panic on stale pages")
		}
	}()
	tr.TraceWindow(geom.UnitSquare, TraceDFS, false, func(NodeVisit) {})
}
