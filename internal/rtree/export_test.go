package rtree

import (
	"math/rand/v2"
	"testing"

	"rtreebuf/internal/geom"
)

func TestExportImportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(121, 122))
	for _, build := range []string{"packed", "inserted"} {
		items := testItems(rng, 600)
		var tr *Tree
		var err error
		if build == "packed" {
			tr, err = Pack(Params{MaxEntries: 8}, items, xOrdering)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			tr = MustNew(Params{MaxEntries: 8})
			tr.InsertAll(items)
		}

		nodes := tr.ExportNodes()
		if len(nodes) != tr.NodeCount() {
			t.Fatalf("%s: exported %d nodes, tree has %d", build, len(nodes), tr.NodeCount())
		}
		got, err := ImportNodes(tr.Params(), nodes)
		if err != nil {
			t.Fatalf("%s: import: %v", build, err)
		}
		if got.Len() != tr.Len() || got.Height() != tr.Height() || got.NodeCount() != tr.NodeCount() {
			t.Fatalf("%s: shape mismatch after round trip", build)
		}
		if !equalIDs(idsOf(got.Items()), idsOf(items)) {
			t.Fatalf("%s: item set mismatch after round trip", build)
		}
		// Searches agree.
		for i := 0; i < 30; i++ {
			q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 0.2, 0.2)
			if !equalIDs(idsOf(got.SearchWindow(q)), idsOf(tr.SearchWindow(q))) {
				t.Fatalf("%s: search mismatch after round trip", build)
			}
		}
	}
}

func TestExportAssignsPagesIfStale(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	tr.Insert(Item{Rect: geom.UnitSquare, ID: 1})
	// No AssignPageIDs call: ExportNodes must handle it.
	nodes := tr.ExportNodes()
	if len(nodes) != 1 || nodes[0].Page != 0 {
		t.Errorf("export = %+v", nodes)
	}
}

func TestImportRejectsCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewPCG(123, 124))
	tr, err := Pack(Params{MaxEntries: 4}, testItems(rng, 40), xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	good := tr.ExportNodes()
	p := tr.Params()

	corrupt := []struct {
		name   string
		mutate func([]NodeData) []NodeData
	}{
		{"empty", func(ns []NodeData) []NodeData { return nil }},
		{"missing root", func(ns []NodeData) []NodeData { return ns[1:] }},
		{"duplicate page", func(ns []NodeData) []NodeData {
			ns[1].Page = ns[2].Page
			return ns
		}},
		{"dangling child", func(ns []NodeData) []NodeData {
			ns[0].Children[0] = 9999
			return ns
		}},
		{"unreachable node", func(ns []NodeData) []NodeData {
			extra := ns[len(ns)-1]
			extra.Page = 10000
			return append(ns, extra)
		}},
		{"leaf id count mismatch", func(ns []NodeData) []NodeData {
			for i := range ns {
				if ns[i].Leaf {
					ns[i].IDs = ns[i].IDs[:len(ns[i].IDs)-1]
					break
				}
			}
			return ns
		}},
		{"wrong child mbr", func(ns []NodeData) []NodeData {
			ns[0].Rects[0] = geom.Rect{MinX: 0, MinY: 0, MaxX: 1e-9, MaxY: 1e-9}
			return ns
		}},
		{"shared child (cycle)", func(ns []NodeData) []NodeData {
			if len(ns[0].Children) >= 2 {
				ns[0].Children[1] = ns[0].Children[0]
			}
			return ns
		}},
	}
	for _, tc := range corrupt {
		cp := make([]NodeData, len(good))
		for i, nd := range good {
			cp[i] = nd
			cp[i].Rects = append([]geom.Rect(nil), nd.Rects...)
			cp[i].Children = append([]int(nil), nd.Children...)
			cp[i].IDs = append([]int64(nil), nd.IDs...)
		}
		if _, err := ImportNodes(p, tc.mutate(cp)); err == nil {
			t.Errorf("%s: import accepted corrupt data", tc.name)
		}
	}
}

func TestImportSingleLeaf(t *testing.T) {
	nodes := []NodeData{{
		Page: 0, Level: 0, Leaf: true,
		Rects: []geom.Rect{{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}},
		IDs:   []int64{42},
	}}
	tr, err := ImportNodes(Params{MaxEntries: 4}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Errorf("imported leaf tree: len %d height %d", tr.Len(), tr.Height())
	}
}
