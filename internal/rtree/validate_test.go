package rtree

import (
	"math/rand/v2"
	"strings"
	"testing"

	"rtreebuf/internal/geom"
)

// validTree builds a three-level tree by insertion so corruption tests
// have internal nodes to damage.
func validTree(t *testing.T) *Tree {
	t.Helper()
	rng := rand.New(rand.NewPCG(11, 13))
	tr := MustNew(Params{MaxEntries: 4, MinEntries: 2})
	tr.InsertAll(testItems(rng, 200))
	if tr.Height() < 3 {
		t.Fatalf("fixture tree too shallow: height %d", tr.Height())
	}
	if err := ValidateTreeStrict(tr); err != nil {
		t.Fatalf("fixture tree invalid before corruption: %v", err)
	}
	return tr
}

// firstLeaf returns the leftmost leaf of the tree.
func firstLeaf(tr *Tree) *node {
	n := tr.root
	for !n.isLeaf() {
		n = n.entries[0].child
	}
	return n
}

func TestValidateTreeDetectsSeededCorruptions(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(tr *Tree)
		want    string // substring of the expected error
	}{
		{
			name: "stale parent MBR",
			corrupt: func(tr *Tree) {
				e := &tr.root.entries[0]
				e.rect = e.rect.Expand(0.05, 0.05)
			},
			want: "child MBR",
		},
		{
			name: "leaf entry escapes ancestor MBR",
			corrupt: func(tr *Tree) {
				leaf := firstLeaf(tr)
				leaf.entries[0].rect = leaf.entries[0].rect.Translate(2, 2)
			},
			// The immediate parent's stored rect no longer matches the
			// recomputed leaf MBR.
			want: "child MBR",
		},
		{
			name: "stale mid-level entry rect",
			corrupt: func(tr *Tree) {
				mid := tr.root.entries[0].child
				mid.entries[0].rect = mid.entries[0].rect.Expand(0.5, 0.5)
			},
			want: "child MBR",
		},
		{
			name: "overfull node",
			corrupt: func(tr *Tree) {
				leaf := firstLeaf(tr)
				for len(leaf.entries) <= tr.params.MaxEntries {
					leaf.entries = append(leaf.entries, leaf.entries[0])
				}
			},
			want: "entries > max",
		},
		{
			name: "non-uniform leaf depth",
			corrupt: func(tr *Tree) {
				// Replace a mid-level child with a leaf: the leaf now sits
				// one level higher than its siblings.
				mid := tr.root.entries[0].child
				leaf := firstLeaf(tr)
				mid.entries[0].child = &node{
					parent:  mid,
					entries: leaf.entries,
					height:  0,
				}
			},
			want: "height",
		},
		{
			name: "empty internal child",
			corrupt: func(tr *Tree) {
				tr.root.entries[0].child.entries[0].child.entries = nil
			},
			want: "empty",
		},
		{
			name: "broken parent pointer",
			corrupt: func(tr *Tree) {
				tr.root.entries[0].child.parent = nil
			},
			want: "parent",
		},
		{
			name: "leaf entry with child",
			corrupt: func(tr *Tree) {
				leaf := firstLeaf(tr)
				leaf.entries[0].child = &node{}
			},
			want: "leaf entry",
		},
		{
			name: "invalid leaf rect",
			corrupt: func(tr *Tree) {
				leaf := firstLeaf(tr)
				r := &leaf.entries[0].rect
				r.MinX, r.MaxX = r.MaxX, r.MinX // inverted extent
				// Refresh ancestor rects so only Valid() can catch it.
				for n := leaf; n.parent != nil; n = n.parent {
					for i := range n.parent.entries {
						if n.parent.entries[i].child == n {
							n.parent.entries[i].rect = n.mbr()
						}
					}
				}
			},
			want: "invalid rect",
		},
		{
			name:    "size mismatch",
			corrupt: func(tr *Tree) { tr.size++ },
			want:    "items",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := validTree(t)
			tc.corrupt(tr)
			err := ValidateTree(tr)
			if err == nil {
				t.Fatalf("ValidateTree accepted tree with %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateTreeStrictCatchesUnderfill(t *testing.T) {
	tr := validTree(t)
	leaf := firstLeaf(tr)
	// Drop leaf entries below MinEntries and refresh ancestor rects so the
	// base validator stays satisfied.
	leaf.entries = leaf.entries[:1]
	tr.size = 0
	tr.walk(func(n *node) {
		if n.isLeaf() {
			tr.size += len(n.entries)
		}
	})
	for n := leaf; n.parent != nil; n = n.parent {
		for i := range n.parent.entries {
			if n.parent.entries[i].child == n {
				n.parent.entries[i].rect = n.mbr()
			}
		}
	}
	if err := ValidateTree(tr); err != nil {
		t.Fatalf("base validator should accept underfilled node: %v", err)
	}
	if err := ValidateTreeStrict(tr); err == nil {
		t.Error("ValidateTreeStrict accepted an underfilled node")
	}
}

func TestValidateTreeAcceptsEmptyAndPackedTrees(t *testing.T) {
	if err := ValidateTree(MustNew(Params{MaxEntries: 4})); err != nil {
		t.Errorf("empty tree rejected: %v", err)
	}
	rng := rand.New(rand.NewPCG(3, 5))
	items := testItems(rng, 133) // not a multiple of capacity: trailing nodes run short
	tr, err := Pack(Params{MaxEntries: 4}, items, OrderingFunc(func(rects []geom.Rect, _ int) []int {
		out := make([]int, len(rects))
		for i := range out {
			out[i] = i
		}
		return out
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTree(tr); err != nil {
		t.Errorf("packed tree rejected: %v", err)
	}
}
