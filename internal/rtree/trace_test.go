package rtree

import (
	"math/rand/v2"
	"sort"
	"testing"

	"rtreebuf/internal/geom"
)

// collectTrace returns the visited pages of a traced query.
func collectTrace(tr *Tree, q geom.Rect, order TraceOrder, strictRoot bool) []NodeVisit {
	var out []NodeVisit
	tr.TraceWindow(q, order, strictRoot, func(v NodeVisit) { out = append(out, v) })
	return out
}

// intersectingPages computes, by brute force over Levels, the set of pages
// whose MBR intersects q — what the model counts.
func intersectingPages(tr *Tree, q geom.Rect) map[int]bool {
	tr.AssignPageIDs()
	pages := map[int]bool{}
	page := 0
	for _, lvl := range tr.Levels() {
		for _, mbr := range lvl {
			if mbr.Intersects(q) {
				pages[page] = true
			}
			page++
		}
	}
	return pages
}

func TestTraceMatchesMBRIntersections(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 112))
	tr, err := Pack(Params{MaxEntries: 9}, testItems(rng, 900), xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	tr.AssignPageIDs()
	for i := 0; i < 100; i++ {
		q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()},
			rng.Float64()*0.3, rng.Float64()*0.3)
		want := intersectingPages(tr, q)
		for _, order := range []TraceOrder{TraceDFS, TraceLevelOrder} {
			got := collectTrace(tr, q, order, false)
			if len(got) != len(want) {
				t.Fatalf("order %v: trace visited %d pages, want %d", order, len(got), len(want))
			}
			seen := map[int]bool{}
			for _, v := range got {
				if seen[v.Page] {
					t.Fatalf("page %d visited twice", v.Page)
				}
				seen[v.Page] = true
				if !want[v.Page] {
					t.Fatalf("page %d visited but MBR does not intersect", v.Page)
				}
			}
		}
		// NodesTouched agrees with the trace cardinality.
		if got := tr.NodesTouched(q); got != len(want) {
			t.Fatalf("NodesTouched = %d, want %d", got, len(want))
		}
	}
}

func TestTraceOrders(t *testing.T) {
	rng := rand.New(rand.NewPCG(113, 114))
	tr, err := Pack(Params{MaxEntries: 5}, testItems(rng, 500), xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	tr.AssignPageIDs()
	q := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}

	// DFS: every node is visited after its parent; level may zigzag.
	dfs := collectTrace(tr, q, TraceDFS, false)
	if len(dfs) == 0 || dfs[0].Level != 0 {
		t.Fatalf("DFS trace does not start at the root: %+v", dfs[:1])
	}
	// Level order: levels are non-decreasing.
	lo := collectTrace(tr, q, TraceLevelOrder, false)
	for i := 1; i < len(lo); i++ {
		if lo[i].Level < lo[i-1].Level {
			t.Fatalf("level-order trace decreased level at %d", i)
		}
	}
	// Both visit the same set.
	key := func(vs []NodeVisit) []int {
		pages := make([]int, len(vs))
		for i, v := range vs {
			pages[i] = v.Page
		}
		sort.Ints(pages)
		return pages
	}
	a, b := key(dfs), key(lo)
	if len(a) != len(b) {
		t.Fatalf("orders disagree on visit count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("orders disagree at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTraceStrictRoot(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	tr.Insert(Item{Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}, ID: 1})
	tr.AssignPageIDs()
	// Query far away from all data: model semantics visit nothing.
	q := geom.Rect{MinX: 0.8, MinY: 0.8, MaxX: 0.9, MaxY: 0.9}
	if got := collectTrace(tr, q, TraceDFS, false); len(got) != 0 {
		t.Errorf("model-semantics trace visited %d nodes", len(got))
	}
	// Strict semantics always read the root page.
	if got := collectTrace(tr, q, TraceDFS, true); len(got) != 1 || got[0].Page != 0 {
		t.Errorf("strict trace = %+v, want just the root", got)
	}
}

func TestTraceRequiresPageIDs(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	tr.Insert(Item{Rect: geom.UnitSquare, ID: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("TraceWindow without AssignPageIDs did not panic")
		}
	}()
	tr.TraceWindow(geom.UnitSquare, TraceDFS, false, func(NodeVisit) {})
}

func TestNodesTouchedEmptyTree(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	if got := tr.NodesTouched(geom.UnitSquare); got != 0 {
		t.Errorf("NodesTouched on empty tree = %d", got)
	}
}
