package rtree

import (
	"math/rand/v2"
	"testing"
)

// newTestRNG returns a deterministic generator for gap tests.
func newTestRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xabc))
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(50)
	if p.MaxEntries != 50 || p.MinEntries != 0 || p.Split != SplitQuadratic {
		t.Errorf("DefaultParams = %+v", p)
	}
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Params().MinEntries; got != 20 {
		t.Errorf("normalized MinEntries = %d, want 20 (40%%)", got)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad params did not panic")
		}
	}()
	MustNew(Params{MaxEntries: 0})
}

func TestParamsPreservedAcrossPack(t *testing.T) {
	rng := newTestRNG(42)
	items := testItems(rng, 100)
	tr, err := Pack(Params{MaxEntries: 10, MinEntries: 3, Split: SplitLinear}, items, xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Params()
	if p.MaxEntries != 10 || p.MinEntries != 3 || p.Split != SplitLinear {
		t.Errorf("packed params = %+v", p)
	}
	// Updates after packing honour the preserved split heuristic.
	tr.Insert(items[0])
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
