package rtree

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"rtreebuf/internal/geom"
)

func bruteNearest(items []Item, p geom.Point, k int) []Neighbor {
	ns := make([]Neighbor, len(items))
	for i, it := range items {
		ns[i] = Neighbor{Item: it, Dist: math.Sqrt(minDistSq(p, it.Rect))}
	}
	sort.SliceStable(ns, func(a, b int) bool { return ns[a].Dist < ns[b].Dist })
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

func TestMinDistSq(t *testing.T) {
	r := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}
	cases := []struct {
		p    geom.Point
		want float64
	}{
		{geom.Point{X: 0.5, Y: 0.5}, 0},           // inside
		{geom.Point{X: 0.4, Y: 0.4}, 0},           // corner
		{geom.Point{X: 0.2, Y: 0.5}, 0.04},        // left of
		{geom.Point{X: 0.5, Y: 0.9}, 0.09},        // above
		{geom.Point{X: 0.2, Y: 0.2}, 0.04 + 0.04}, // diagonal
	}
	for _, tc := range cases {
		if got := minDistSq(tc.p, r); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("minDistSq(%v) = %g, want %g", tc.p, got, tc.want)
		}
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(801, 802))
	items := testItems(rng, 2000)
	for _, build := range []string{"insert", "pack"} {
		var tr *Tree
		if build == "insert" {
			tr = MustNew(Params{MaxEntries: 10})
			tr.InsertAll(items)
		} else {
			var err error
			tr, err = Pack(Params{MaxEntries: 10}, items, xOrdering)
			if err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 50; trial++ {
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			k := 1 + rng.IntN(20)
			got := tr.Nearest(p, k)
			want := bruteNearest(items, p, k)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d neighbors, want %d", build, len(got), len(want))
			}
			for i := range got {
				// Distances must match exactly in order; IDs may differ only
				// between equidistant items.
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-12 {
					t.Fatalf("%s: neighbor %d dist %g, want %g", build, i, got[i].Dist, want[i].Dist)
				}
			}
			// Ascending order.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist {
					t.Fatalf("%s: results not sorted", build)
				}
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	if got := tr.Nearest(geom.Point{X: 0.5, Y: 0.5}, 3); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	tr.Insert(Item{Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}, ID: 1})
	if got := tr.Nearest(geom.Point{X: 0.5, Y: 0.5}, 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	got := tr.Nearest(geom.Point{X: 0.5, Y: 0.5}, 10)
	if len(got) != 1 || got[0].Item.ID != 1 {
		t.Errorf("k>size returned %v", got)
	}
	// Query inside the rectangle: distance zero.
	got = tr.Nearest(geom.Point{X: 0.15, Y: 0.15}, 1)
	if got[0].Dist != 0 {
		t.Errorf("inside-query dist = %g", got[0].Dist)
	}
}

func TestNearestWithin(t *testing.T) {
	rng := rand.New(rand.NewPCG(803, 804))
	items := testItems(rng, 1000)
	tr := MustNew(Params{MaxEntries: 8})
	tr.InsertAll(items)
	p := geom.Point{X: 0.5, Y: 0.5}
	const radius = 0.1
	got := tr.NearestWithin(p, radius)
	want := 0
	for _, it := range items {
		if minDistSq(p, it.Rect) <= radius*radius {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("NearestWithin returned %d, brute force %d", len(got), want)
	}
	for i, n := range got {
		if n.Dist > radius+1e-12 {
			t.Fatalf("result %d at distance %g > radius", i, n.Dist)
		}
		if i > 0 && n.Dist < got[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if tr.NearestWithin(p, -1) != nil {
		t.Error("negative radius returned results")
	}
}

func TestTraceNearest(t *testing.T) {
	rng := rand.New(rand.NewPCG(805, 806))
	items := testItems(rng, 1000)
	tr, err := Pack(Params{MaxEntries: 10}, items, xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	tr.AssignPageIDs()
	var visits []NodeVisit
	p := geom.Point{X: 0.3, Y: 0.7}
	got := tr.TraceNearest(p, 5, func(v NodeVisit) { visits = append(visits, v) })
	if len(got) != 5 {
		t.Fatalf("got %d neighbors", len(got))
	}
	if len(visits) == 0 || visits[0].Page != 0 {
		t.Fatalf("trace did not start at the root: %+v", visits)
	}
	// Same answers as the untraced search.
	plain := tr.Nearest(p, 5)
	for i := range got {
		if got[i].Dist != plain[i].Dist {
			t.Fatal("traced and plain kNN disagree")
		}
	}
	// A kNN search must touch far fewer pages than the tree holds.
	if len(visits) >= tr.NodeCount()/2 {
		t.Errorf("kNN touched %d of %d pages — pruning broken?", len(visits), tr.NodeCount())
	}
	seen := map[int]bool{}
	for _, v := range visits {
		if seen[v.Page] {
			t.Fatalf("page %d visited twice", v.Page)
		}
		seen[v.Page] = true
	}
}

func TestTraceNearestRequiresPages(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	tr.Insert(Item{Rect: geom.UnitSquare, ID: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("TraceNearest without AssignPageIDs did not panic")
		}
	}()
	tr.TraceNearest(geom.Point{X: 0.5, Y: 0.5}, 1, func(NodeVisit) {})
}

func BenchmarkNearest(b *testing.B) {
	rng := rand.New(rand.NewPCG(807, 808))
	items := testItems(rng, 50000)
	tr, err := Pack(Params{MaxEntries: 100}, items, xOrdering)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{X: float64(i%997) / 997, Y: float64(i%991) / 991}
		tr.Nearest(p, 10)
	}
}
