package rtree

import (
	"math"

	"rtreebuf/internal/geom"
)

// split distributes the entries of the overflowing node n into two fresh
// nodes according to the configured heuristic. Child parent pointers are
// rewired; the caller links the new nodes into the tree.
func (t *Tree) split(n *node) (left, right *node) {
	switch t.params.Split {
	case SplitLinear:
		s1, s2 := linearSeeds(n.entries)
		left, right = t.splitSeeded(n, s1, s2)
	case SplitRStar:
		left, right = t.splitRStar(n)
	default:
		s1, s2 := quadraticSeeds(n.entries)
		left, right = t.splitSeeded(n, s1, s2)
	}
	for _, e := range left.entries {
		if e.child != nil {
			e.child.parent = left
		}
	}
	for _, e := range right.entries {
		if e.child != nil {
			e.child.parent = right
		}
	}
	return left, right
}

// quadraticSeeds implements Guttman's PickSeeds: choose the pair of
// entries that would waste the most area if placed together, i.e. the
// pair maximizing area(union) - area(a) - area(b).
func quadraticSeeds(entries []entry) (int, int) {
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	return s1, s2
}

// linearSeeds implements Guttman's linear PickSeeds: on each axis find the
// pair with the greatest normalized separation (highest low side vs lowest
// high side) and take the more separated axis.
func linearSeeds(entries []entry) (int, int) {
	type axisPick struct {
		lo, hi int     // entry with highest low side / lowest high side
		sep    float64 // normalized separation
	}
	pick := func(lowSide, highSide func(geom.Rect) float64) axisPick {
		lowestLow, highestHigh := math.Inf(1), math.Inf(-1)
		highestLowIdx, lowestHighIdx := 0, 0
		highestLow, lowestHigh := math.Inf(-1), math.Inf(1)
		for i, e := range entries {
			lo, hi := lowSide(e.rect), highSide(e.rect)
			lowestLow = math.Min(lowestLow, lo)
			highestHigh = math.Max(highestHigh, hi)
			if lo > highestLow {
				highestLow, highestLowIdx = lo, i
			}
			if hi < lowestHigh {
				lowestHigh, lowestHighIdx = hi, i
			}
		}
		width := highestHigh - lowestLow
		if width <= 0 {
			width = 1
		}
		return axisPick{highestLowIdx, lowestHighIdx, (highestLow - lowestHigh) / width}
	}
	px := pick(func(r geom.Rect) float64 { return r.MinX }, func(r geom.Rect) float64 { return r.MaxX })
	py := pick(func(r geom.Rect) float64 { return r.MinY }, func(r geom.Rect) float64 { return r.MaxY })
	best := px
	if py.sep > px.sep {
		best = py
	}
	if best.lo == best.hi {
		// All rectangles identical on the chosen axis; fall back to the
		// first two entries to guarantee distinct seeds.
		if best.lo == 0 {
			return 0, 1
		}
		return 0, best.lo
	}
	return best.lo, best.hi
}

// splitSeeded distributes entries into two groups from the given seeds
// using Guttman's PickNext/Distribute with the tree's minimum fill.
func (t *Tree) splitSeeded(n *node, seed1, seed2 int) (left, right *node) {
	left = &node{height: n.height, entries: []entry{n.entries[seed1]}}
	right = &node{height: n.height, entries: []entry{n.entries[seed2]}}
	leftMBR := n.entries[seed1].rect
	rightMBR := n.entries[seed2].rect

	remaining := make([]entry, 0, len(n.entries)-2)
	for i, e := range n.entries {
		if i != seed1 && i != seed2 {
			remaining = append(remaining, e)
		}
	}

	min := t.params.MinEntries
	for len(remaining) > 0 {
		// If one group must absorb everything left to reach minimum fill,
		// assign the remainder wholesale.
		if len(left.entries)+len(remaining) == min {
			for _, e := range remaining {
				left.entries = append(left.entries, e)
			}
			break
		}
		if len(right.entries)+len(remaining) == min {
			for _, e := range remaining {
				right.entries = append(right.entries, e)
			}
			break
		}

		// PickNext: entry with the greatest preference for one group,
		// measured by the difference in enlargement cost.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range remaining {
			d1 := leftMBR.Union(e.rect).Area() - leftMBR.Area()
			d2 := rightMBR.Union(e.rect).Area() - rightMBR.Area()
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := remaining[bestIdx]
		remaining[bestIdx] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]

		// Distribute: least enlargement, ties by smaller area, then fewer
		// entries (Guttman's resolution order).
		d1 := leftMBR.Union(e.rect).Area() - leftMBR.Area()
		d2 := rightMBR.Union(e.rect).Area() - rightMBR.Area()
		toLeft := d1 < d2
		if d1 == d2 {
			a1, a2 := leftMBR.Area(), rightMBR.Area()
			if a1 != a2 {
				toLeft = a1 < a2
			} else {
				toLeft = len(left.entries) <= len(right.entries)
			}
		}
		if toLeft {
			left.entries = append(left.entries, e)
			leftMBR = leftMBR.Union(e.rect)
		} else {
			right.entries = append(right.entries, e)
			rightMBR = rightMBR.Union(e.rect)
		}
	}
	return left, right
}
