package rtree

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rtreebuf/internal/geom"
)

// itemsFromFloats builds a deterministic item list from arbitrary quick
// input, sanitizing non-finite values into the unit square.
func itemsFromFloats(raw []float64) []Item {
	var items []Item
	for i := 0; i+3 < len(raw); i += 4 {
		v := [4]float64{}
		ok := true
		for j := 0; j < 4; j++ {
			x := raw[i+j]
			if math.IsNaN(x) || math.IsInf(x, 0) {
				ok = false
				break
			}
			x = math.Abs(x)
			v[j] = x - math.Floor(x) // into [0,1)
		}
		if !ok {
			continue
		}
		items = append(items, Item{
			Rect: geom.RectFromPoints(geom.Point{X: v[0], Y: v[1]}, geom.Point{X: v[2], Y: v[3]}),
			ID:   int64(len(items)),
		})
	}
	return items
}

// Property (testing/quick): for arbitrary rectangle sets, an
// insertion-built tree and a packed tree contain the same items, satisfy
// the invariants, and answer a probe query identically to brute force.
func TestQuickInsertAndPackAgree(t *testing.T) {
	f := func(raw []float64, capSeed uint8) bool {
		items := itemsFromFloats(raw)
		if len(items) == 0 {
			return true
		}
		capacity := 3 + int(capSeed%14)
		ins := MustNew(Params{MaxEntries: capacity})
		ins.InsertAll(items)
		packed, err := Pack(Params{MaxEntries: capacity}, items, xOrdering)
		if err != nil {
			return false
		}
		if ins.CheckInvariants() != nil || packed.CheckInvariants() != nil {
			return false
		}
		if ins.Len() != len(items) || packed.Len() != len(items) {
			return false
		}
		q := geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.75}
		want := bruteSearch(items, q)
		return equalIDs(idsOf(ins.SearchWindow(q)), want) &&
			equalIDs(idsOf(packed.SearchWindow(q)), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: inserting then deleting a batch restores the original search
// semantics for every split heuristic.
func TestQuickInsertDeleteRestores(t *testing.T) {
	rng := rand.New(rand.NewPCG(900, 901))
	for _, split := range []SplitAlgorithm{SplitQuadratic, SplitLinear, SplitRStar} {
		f := func(raw []float64) bool {
			base := itemsFromFloats(raw)
			if len(base) == 0 {
				return true
			}
			tr := MustNew(Params{MaxEntries: 6, Split: split})
			tr.InsertAll(base)
			before := idsOf(tr.Items())

			// Insert a transient batch, then delete it.
			extra := testItems(rng, 40)
			for i := range extra {
				extra[i].ID += 1 << 30
				tr.Insert(extra[i])
			}
			for _, it := range extra {
				if !tr.Delete(it) {
					return false
				}
			}
			return tr.CheckInvariants() == nil && equalIDs(idsOf(tr.Items()), before)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("split %v: %v", split, err)
		}
	}
}

// Property: Levels() is exhaustive and consistent — concatenating all
// level MBRs yields NodeCount rectangles, each containing the MBRs of its
// descendants' data that intersect it (checked via the root only, which
// must contain every item).
func TestQuickLevelsCoverItems(t *testing.T) {
	f := func(raw []float64) bool {
		items := itemsFromFloats(raw)
		if len(items) == 0 {
			return true
		}
		tr := MustNew(Params{MaxEntries: 5})
		tr.InsertAll(items)
		levels := tr.Levels()
		count := 0
		for _, lvl := range levels {
			count += len(lvl)
		}
		if count != tr.NodeCount() {
			return false
		}
		root := levels[0][0]
		for _, it := range items {
			if !root.ContainsRect(it.Rect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
