package rtree

import (
	"math"
	"sort"

	"rtreebuf/internal/geom"
)

// This file implements the R*-tree insertion heuristics of Beckmann,
// Kriegel, Schneider, and Seeger (SIGMOD 1990) — reference [1] of the
// paper. Three pieces plug into the shared insertion machinery:
//
//   - ChooseSubtree: at the level directly above the leaves, pick the
//     child whose MBR needs the least *overlap* enlargement (ties by area
//     enlargement, then area); higher up, least area enlargement as in
//     Guttman (chooseNode dispatches).
//   - OverflowTreatment: on the first overflow at each height during one
//     logical insertion, reinsert the reinsertFraction of entries
//     farthest from the node's center instead of splitting.
//   - Split: choose the split axis by minimum margin sum over all
//     distributions, then the distribution with minimum overlap between
//     the two groups (ties by minimum total area).

// reinsertFraction is the share of an overflowing node's entries removed
// by forced reinsertion — the 30% the R* authors found best.
const reinsertFraction = 0.3

// insertCtx tracks which heights already performed forced reinsertion
// during one logical insertion, so OverflowTreatment reinserts at most
// once per level and then splits (the R* rule). A nil context disables
// reinsertion (used by CondenseTree, which is itself a reinsertion).
type insertCtx struct {
	reinserted map[int]bool
}

// overlapEnlargement returns how much the overlap between entries[i] and
// its siblings grows if entries[i] is extended to include r.
func overlapEnlargement(entries []entry, i int, r geom.Rect) float64 {
	grown := entries[i].rect.Union(r)
	var delta float64
	for j := range entries {
		if j == i {
			continue
		}
		delta += intersectArea(grown, entries[j].rect) - intersectArea(entries[i].rect, entries[j].rect)
	}
	return delta
}

func intersectArea(a, b geom.Rect) float64 {
	x, ok := a.Intersect(b)
	if !ok {
		return 0
	}
	return x.Area()
}

// chooseSubtreeRStar picks the child index of n (whose children are
// leaves) for rectangle r by minimum overlap enlargement, breaking ties
// by area enlargement and then by area.
func chooseSubtreeRStar(n *node, r geom.Rect) int {
	best := -1
	var bestOverlap, bestEnl, bestArea float64
	for i := range n.entries {
		ov := overlapEnlargement(n.entries, i, r)
		enl := n.entries[i].rect.Enlargement(r)
		area := n.entries[i].rect.Area()
		better := best == -1 || ov < bestOverlap ||
			(ov == bestOverlap && (enl < bestEnl || (enl == bestEnl && area < bestArea)))
		if better {
			best, bestOverlap, bestEnl, bestArea = i, ov, enl, area
		}
	}
	return best
}

// forcedReinsert removes the reinsertFraction of n's entries whose
// centers lie farthest from the center of n's MBR, tightens the ancestors,
// and reinserts the removed entries closest-first at n's height.
func (t *Tree) forcedReinsert(n *node, ctx *insertCtx) {
	p := int(math.Ceil(reinsertFraction * float64(t.params.MaxEntries)))
	if p < 1 {
		p = 1
	}
	if p >= len(n.entries) {
		p = len(n.entries) - 1
	}
	center := n.mbr().Center()
	type distEntry struct {
		e entry
		d float64
	}
	des := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		c := e.rect.Center()
		dx, dy := c.X-center.X, c.Y-center.Y
		des[i] = distEntry{e, dx*dx + dy*dy}
	}
	sort.SliceStable(des, func(a, b int) bool { return des[a].d > des[b].d }) // farthest first

	removed := des[:p]
	n.entries = n.entries[:0]
	for _, de := range des[p:] {
		n.entries = append(n.entries, de.e)
	}
	t.adjustUpward(n)

	// Close reinsert: start with the entry closest to the node's center.
	for i := len(removed) - 1; i >= 0; i-- {
		t.insertEntryCtx(removed[i].e, n.height, ctx)
	}
}

// rstarSeparator describes one candidate distribution: the sorted entry
// sequence split after index k.
type rstarDistribution struct {
	entries []entry
	k       int // first group = entries[:k]
}

// splitRStar distributes the entries of the overflowing node n per the
// R* topological split.
func (t *Tree) splitRStar(n *node) (left, right *node) {
	m := t.params.MinEntries
	total := len(n.entries)

	// Build the four candidate sorts: by lower and upper value per axis.
	sorts := map[string][]entry{
		"xlow": sortedEntries(n.entries, func(a, b geom.Rect) bool {
			if a.MinX != b.MinX {
				return a.MinX < b.MinX
			}
			return a.MaxX < b.MaxX
		}),
		"xhigh": sortedEntries(n.entries, func(a, b geom.Rect) bool {
			if a.MaxX != b.MaxX {
				return a.MaxX < b.MaxX
			}
			return a.MinX < b.MinX
		}),
		"ylow": sortedEntries(n.entries, func(a, b geom.Rect) bool {
			if a.MinY != b.MinY {
				return a.MinY < b.MinY
			}
			return a.MaxY < b.MaxY
		}),
		"yhigh": sortedEntries(n.entries, func(a, b geom.Rect) bool {
			if a.MaxY != b.MaxY {
				return a.MaxY < b.MaxY
			}
			return a.MinY < b.MinY
		}),
	}

	// ChooseSplitAxis: margin sum over all distributions of both sorts.
	marginSum := func(es []entry) float64 {
		prefix, suffix := prefixMBRs(es), suffixMBRs(es)
		var s float64
		for k := m; k <= total-m; k++ {
			s += prefix[k-1].Margin() + suffix[k].Margin()
		}
		return s
	}
	sx := marginSum(sorts["xlow"]) + marginSum(sorts["xhigh"])
	sy := marginSum(sorts["ylow"]) + marginSum(sorts["yhigh"])
	var axisSorts [][]entry
	if sx <= sy {
		axisSorts = [][]entry{sorts["xlow"], sorts["xhigh"]}
	} else {
		axisSorts = [][]entry{sorts["ylow"], sorts["yhigh"]}
	}

	// ChooseSplitIndex: minimum overlap, ties by minimum total area.
	var best rstarDistribution
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for _, es := range axisSorts {
		prefix, suffix := prefixMBRs(es), suffixMBRs(es)
		for k := m; k <= total-m; k++ {
			ov := intersectArea(prefix[k-1], suffix[k])
			area := prefix[k-1].Area() + suffix[k].Area()
			if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = ov, area
				best = rstarDistribution{es, k}
			}
		}
	}

	left = &node{height: n.height, entries: append([]entry(nil), best.entries[:best.k]...)}
	right = &node{height: n.height, entries: append([]entry(nil), best.entries[best.k:]...)}
	return left, right
}

func sortedEntries(entries []entry, less func(a, b geom.Rect) bool) []entry {
	out := append([]entry(nil), entries...)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i].rect, out[j].rect) })
	return out
}

// prefixMBRs[i] is the MBR of es[:i+1].
func prefixMBRs(es []entry) []geom.Rect {
	out := make([]geom.Rect, len(es))
	out[0] = es[0].rect
	for i := 1; i < len(es); i++ {
		out[i] = out[i-1].Union(es[i].rect)
	}
	return out
}

// suffixMBRs[i] is the MBR of es[i:].
func suffixMBRs(es []entry) []geom.Rect {
	out := make([]geom.Rect, len(es))
	out[len(es)-1] = es[len(es)-1].rect
	for i := len(es) - 2; i >= 0; i-- {
		out[i] = out[i+1].Union(es[i].rect)
	}
	return out
}
