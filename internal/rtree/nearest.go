package rtree

import (
	"container/heap"
	"math"

	"rtreebuf/internal/geom"
)

// Nearest-neighbor search: best-first branch and bound over the tree
// using minimum distance between the query point and node MBRs
// (Hjaltason–Samet incremental distance scanning). Not part of the
// paper's evaluation, but a capability every production R-tree offers —
// and its page-access pattern is exactly the kind of workload the buffer
// model prices.

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	Item Item
	// Dist is the Euclidean distance from the query point to the item's
	// rectangle (zero if the point lies inside it).
	Dist float64
}

// minDistSq returns the squared minimum distance from p to r.
func minDistSq(p geom.Point, r geom.Rect) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return dx*dx + dy*dy
}

// nnEntry is a prioritized traversal element: either a node or a data item.
type nnEntry struct {
	distSq float64
	node   *node // nil for data items
	item   Item
}

type nnHeap []nnEntry

func (h nnHeap) Len() int           { return len(h) }
func (h nnHeap) Less(i, j int) bool { return h[i].distSq < h[j].distSq }
func (h nnHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x any)        { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Nearest returns the k stored items closest to p in ascending distance
// order (fewer if the tree holds fewer). Distance to a rectangle is the
// minimum Euclidean distance; ties are broken by traversal order.
func (t *Tree) Nearest(p geom.Point, k int) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &nnHeap{}
	if len(t.root.entries) > 0 {
		heap.Push(h, nnEntry{distSq: minDistSq(p, t.root.mbr()), node: t.root})
	}
	out := make([]Neighbor, 0, k)
	for h.Len() > 0 && len(out) < k {
		e := heap.Pop(h).(nnEntry)
		if e.node == nil {
			out = append(out, Neighbor{Item: e.item, Dist: math.Sqrt(e.distSq)})
			continue
		}
		for _, child := range e.node.entries {
			d := minDistSq(p, child.rect)
			if e.node.isLeaf() {
				heap.Push(h, nnEntry{distSq: d, item: Item{Rect: child.rect, ID: child.id}})
			} else {
				heap.Push(h, nnEntry{distSq: d, node: child.child})
			}
		}
	}
	return out
}

// NearestWithin returns every stored item whose rectangle lies within
// Euclidean distance radius of p, in ascending distance order.
func (t *Tree) NearestWithin(p geom.Point, radius float64) []Neighbor {
	if radius < 0 || t.size == 0 {
		return nil
	}
	limitSq := radius * radius
	h := &nnHeap{}
	if len(t.root.entries) > 0 {
		heap.Push(h, nnEntry{distSq: minDistSq(p, t.root.mbr()), node: t.root})
	}
	var out []Neighbor
	for h.Len() > 0 {
		e := heap.Pop(h).(nnEntry)
		if e.distSq > limitSq {
			break // everything else is farther
		}
		if e.node == nil {
			out = append(out, Neighbor{Item: e.item, Dist: math.Sqrt(e.distSq)})
			continue
		}
		for _, child := range e.node.entries {
			if d := minDistSq(p, child.rect); d <= limitSq {
				if e.node.isLeaf() {
					heap.Push(h, nnEntry{distSq: d, item: Item{Rect: child.rect, ID: child.id}})
				} else {
					heap.Push(h, nnEntry{distSq: d, node: child.child})
				}
			}
		}
	}
	return out
}

// TraceNearest reports the pages a Nearest(p, k) search reads, in access
// order — the input for pricing kNN workloads with the buffer model. It
// requires AssignPageIDs, like TraceWindow.
func (t *Tree) TraceNearest(p geom.Point, k int, visit func(NodeVisit)) []Neighbor {
	if !t.pagesValid {
		panic("rtree: TraceNearest before AssignPageIDs")
	}
	if k <= 0 || t.size == 0 {
		return nil
	}
	h := &nnHeap{}
	heap.Push(h, nnEntry{distSq: minDistSq(p, t.root.mbr()), node: t.root})
	out := make([]Neighbor, 0, k)
	for h.Len() > 0 && len(out) < k {
		e := heap.Pop(h).(nnEntry)
		if e.node == nil {
			out = append(out, Neighbor{Item: e.item, Dist: math.Sqrt(e.distSq)})
			continue
		}
		visit(NodeVisit{Page: e.node.page, Level: t.root.height - e.node.height})
		for _, child := range e.node.entries {
			d := minDistSq(p, child.rect)
			if e.node.isLeaf() {
				heap.Push(h, nnEntry{distSq: d, item: Item{Rect: child.rect, ID: child.id}})
			} else {
				heap.Push(h, nnEntry{distSq: d, node: child.child})
			}
		}
	}
	return out
}
