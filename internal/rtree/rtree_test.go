package rtree

import (
	"math/rand/v2"
	"sort"
	"testing"

	"rtreebuf/internal/geom"
)

// testItems generates n random small rectangles in the unit square.
func testItems(rng *rand.Rand, n int) []Item {
	out := make([]Item, n)
	for i := range out {
		c := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		w, h := rng.Float64()*0.02, rng.Float64()*0.02
		out[i] = Item{Rect: geom.RectAround(c, w, h).Clamp(geom.UnitSquare), ID: int64(i)}
	}
	return out
}

// bruteSearch returns the IDs of items intersecting q.
func bruteSearch(items []Item, q geom.Rect) []int64 {
	var ids []int64
	for _, it := range items {
		if it.Rect.Intersects(q) {
			ids = append(ids, it.ID)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func idsOf(items []Item) []int64 {
	ids := make([]int64, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{MaxEntries: 10}, true},
		{Params{MaxEntries: 2}, true},
		{Params{MaxEntries: 1}, false},
		{Params{MaxEntries: 0}, false},
		{Params{MaxEntries: 10, MinEntries: 5}, true},
		{Params{MaxEntries: 10, MinEntries: 6}, false}, // > max/2
		{Params{MaxEntries: 10, MinEntries: -1}, false},
		{Params{MaxEntries: 10, Split: SplitLinear}, true},
		{Params{MaxEntries: 10, Split: SplitAlgorithm(9)}, false},
	}
	for _, tc := range cases {
		_, err := New(tc.p)
		if (err == nil) != tc.ok {
			t.Errorf("New(%+v) error = %v, want ok=%v", tc.p, err, tc.ok)
		}
	}
}

func TestDefaultMinEntries(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 10})
	if got := tr.Params().MinEntries; got != 4 {
		t.Errorf("default MinEntries = %d, want 4 (40%%)", got)
	}
	tr = MustNew(Params{MaxEntries: 2})
	if got := tr.Params().MinEntries; got != 1 {
		t.Errorf("MinEntries for cap 2 = %d, want 1", got)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	if tr.Len() != 0 || tr.Height() != 1 || tr.NodeCount() != 1 {
		t.Errorf("empty tree: len=%d height=%d nodes=%d", tr.Len(), tr.Height(), tr.NodeCount())
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree has bounds")
	}
	if got := tr.SearchWindow(geom.UnitSquare); len(got) != 0 {
		t.Errorf("empty tree search returned %d items", len(got))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	items := []Item{
		{Rect: geom.Rect{MinX: 0.0, MinY: 0.0, MaxX: 0.1, MaxY: 0.1}, ID: 1},
		{Rect: geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.3, MaxY: 0.3}, ID: 2},
		{Rect: geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.25, MaxY: 0.25}, ID: 3},
		{Rect: geom.Rect{MinX: 0.8, MinY: 0.8, MaxX: 0.9, MaxY: 0.9}, ID: 4},
	}
	tr.InsertAll(items)
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := idsOf(tr.SearchWindow(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.15, MaxY: 0.15}))
	if !equalIDs(got, []int64{1, 3}) {
		t.Errorf("window search = %v", got)
	}
	got = idsOf(tr.SearchPoint(geom.Point{X: 0.85, Y: 0.85}))
	if !equalIDs(got, []int64{4}) {
		t.Errorf("point search = %v", got)
	}
	if got := tr.SearchPoint(geom.Point{X: 0.5, Y: 0.5}); len(got) != 0 {
		t.Errorf("empty-region search returned %v", got)
	}
}

func TestInsertMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	for _, cap := range []int{3, 4, 8, 25} {
		for _, split := range []SplitAlgorithm{SplitQuadratic, SplitLinear} {
			tr := MustNew(Params{MaxEntries: cap, Split: split})
			items := testItems(rng, 800)
			tr.InsertAll(items)
			if tr.Len() != len(items) {
				t.Fatalf("cap %d: Len = %d", cap, tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("cap %d split %v: %v", cap, split, err)
			}
			if err := tr.CheckMinFill(); err != nil {
				t.Fatalf("cap %d split %v: %v", cap, split, err)
			}
			if err := ValidateTreeStrict(tr); err != nil {
				t.Fatalf("cap %d split %v: %v", cap, split, err)
			}
			for i := 0; i < 100; i++ {
				q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()},
					rng.Float64()*0.2, rng.Float64()*0.2)
				got := idsOf(tr.SearchWindow(q))
				want := bruteSearch(items, q)
				if !equalIDs(got, want) {
					t.Fatalf("cap %d split %v: query %v: got %d ids, want %d", cap, split, q, len(got), len(want))
				}
			}
		}
	}
}

func TestInsertDuplicateRects(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	r := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.5, MaxY: 0.5}
	for i := 0; i < 50; i++ {
		tr.Insert(Item{Rect: r, ID: int64(i)})
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.SearchPoint(geom.Point{X: 0.45, Y: 0.45}); len(got) != 50 {
		t.Errorf("found %d of 50 duplicates", len(got))
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 2, MinEntries: 1})
	rng := rand.New(rand.NewPCG(4, 4))
	prev := tr.Height()
	for i := 0; i < 100; i++ {
		tr.Insert(testItems(rng, 1)[0])
		h := tr.Height()
		if h < prev {
			t.Fatalf("height shrank during inserts: %d -> %d", prev, h)
		}
		prev = h
	}
	if prev < 4 {
		t.Errorf("100 items at cap 2 produced height %d, expected >= 4", prev)
	}
}

func TestBounds(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	tr.Insert(Item{Rect: geom.Rect{MinX: 0.2, MinY: 0.3, MaxX: 0.4, MaxY: 0.5}, ID: 1})
	tr.Insert(Item{Rect: geom.Rect{MinX: 0.6, MinY: 0.1, MaxX: 0.9, MaxY: 0.2}, ID: 2})
	b, ok := tr.Bounds()
	if !ok || !b.Equal(geom.Rect{MinX: 0.2, MinY: 0.1, MaxX: 0.9, MaxY: 0.5}) {
		t.Errorf("Bounds = %v, %v", b, ok)
	}
}

func TestCountWindowMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	tr := MustNew(Params{MaxEntries: 8})
	items := testItems(rng, 500)
	tr.InsertAll(items)
	for i := 0; i < 50; i++ {
		q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 0.3, 0.3)
		if got, want := tr.CountWindow(q), len(tr.SearchWindow(q)); got != want {
			t.Fatalf("CountWindow = %d, SearchWindow = %d", got, want)
		}
	}
}

func TestSearchWindowFunc(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	tr := MustNew(Params{MaxEntries: 8})
	items := testItems(rng, 500)
	tr.InsertAll(items)
	q := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7}

	// Full streaming visit matches SearchWindow.
	var streamed []Item
	if done := tr.SearchWindowFunc(q, func(it Item) bool {
		streamed = append(streamed, it)
		return true
	}); !done {
		t.Fatal("full visit reported early stop")
	}
	if !equalIDs(idsOf(streamed), idsOf(tr.SearchWindow(q))) {
		t.Fatal("streamed results differ from SearchWindow")
	}

	// Early termination stops after exactly N visits.
	want := len(streamed)
	if want < 3 {
		t.Fatalf("test query too selective (%d hits)", want)
	}
	count := 0
	if done := tr.SearchWindowFunc(q, func(Item) bool {
		count++
		return count < 3
	}); done {
		t.Error("early stop reported completion")
	}
	if count != 3 {
		t.Errorf("visited %d items after stop at 3", count)
	}

	// Intersecting: true where hits exist, false in empty space.
	if !tr.Intersecting(q) {
		t.Error("Intersecting false on populated region")
	}
	if tr.Intersecting(geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}) {
		t.Error("Intersecting true outside the data space")
	}
}

func TestItemsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 16))
	tr := MustNew(Params{MaxEntries: 6})
	items := testItems(rng, 300)
	tr.InsertAll(items)
	got := tr.Items()
	if !equalIDs(idsOf(got), idsOf(items)) {
		t.Error("Items() does not round-trip the inserted set")
	}
}

func TestLevelsAndNodesPerLevel(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	tr := MustNew(Params{MaxEntries: 5})
	tr.InsertAll(testItems(rng, 400))
	levels := tr.Levels()
	counts := tr.NodesPerLevel()
	if len(levels) != tr.Height() || len(counts) != tr.Height() {
		t.Fatalf("levels %d, counts %d, height %d", len(levels), len(counts), tr.Height())
	}
	if counts[0] != 1 || len(levels[0]) != 1 {
		t.Errorf("root level has %d nodes", counts[0])
	}
	total := 0
	for i, c := range counts {
		if len(levels[i]) != c {
			t.Errorf("level %d: %d MBRs but count %d", i, len(levels[i]), c)
		}
		if i > 0 && c < counts[i-1] {
			t.Errorf("level %d has fewer nodes (%d) than its parent level (%d)", i, c, counts[i-1])
		}
		total += c
	}
	if total != tr.NodeCount() {
		t.Errorf("level counts sum to %d, NodeCount = %d", total, tr.NodeCount())
	}
	// Root MBR equals bounds; every level-i MBR is inside the root MBR.
	b, _ := tr.Bounds()
	if !levels[0][0].Equal(b) {
		t.Error("root level MBR != Bounds()")
	}
	for i, lvl := range levels {
		for _, r := range lvl {
			if !b.ContainsRect(r) {
				t.Fatalf("level %d MBR %v escapes root %v", i, r, b)
			}
		}
	}
}

func TestComputeStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	tr := MustNew(Params{MaxEntries: 10})
	tr.InsertAll(testItems(rng, 600))
	st := tr.ComputeStats()
	if st.Items != 600 || st.Nodes != tr.NodeCount() || st.Levels != tr.Height() {
		t.Errorf("stats mismatch: %+v", st)
	}
	if st.TotalArea <= 0 || st.TotalXExtent <= 0 || st.TotalYExtent <= 0 {
		t.Errorf("degenerate geometry sums: %+v", st)
	}
	if st.AvgFill <= 0.3 || st.AvgFill > 1 {
		t.Errorf("implausible fill %g", st.AvgFill)
	}
	if st.LeafArea > st.TotalArea {
		t.Errorf("leaf area %g > total %g", st.LeafArea, st.TotalArea)
	}
}

func TestSplitAlgorithmString(t *testing.T) {
	if SplitQuadratic.String() != "quadratic" || SplitLinear.String() != "linear" {
		t.Error("split names wrong")
	}
	if SplitAlgorithm(7).String() == "" {
		t.Error("unknown split has empty name")
	}
}

// Property test: after any interleaving of inserts, the tree satisfies all
// invariants and returns exactly the live set.
func TestRandomInsertInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(5150, 2112))
	for trial := 0; trial < 10; trial++ {
		cap := 3 + rng.IntN(20)
		tr := MustNew(Params{MaxEntries: cap})
		n := 100 + rng.IntN(900)
		items := testItems(rng, n)
		for i, it := range items {
			tr.Insert(it)
			if i%97 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("trial %d after %d inserts: %v", trial, i+1, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !equalIDs(idsOf(tr.Items()), idsOf(items)) {
			t.Fatalf("trial %d: item set mismatch", trial)
		}
	}
}
