package rtree

import (
	"math/rand/v2"
	"sort"
	"testing"

	"rtreebuf/internal/geom"
)

// xOrdering sorts rectangles by center x — a minimal valid Ordering
// (equivalent to NX) for exercising Pack without importing internal/pack.
var xOrdering = OrderingFunc(func(rects []geom.Rect, _ int) []int {
	perm := make([]int, len(rects))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return rects[perm[a]].Center().X < rects[perm[b]].Center().X
	})
	return perm
})

func TestPackBasic(t *testing.T) {
	rng := rand.New(rand.NewPCG(90, 91))
	items := testItems(rng, 1000)
	tr, err := Pack(Params{MaxEntries: 10}, items, xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Errorf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTree(tr); err != nil {
		t.Fatal(err)
	}
	// 1000/10 = 100 leaves, 10 level-1 nodes, 1 root.
	if got := tr.NodesPerLevel(); len(got) != 3 || got[0] != 1 || got[1] != 10 || got[2] != 100 {
		t.Errorf("NodesPerLevel = %v", got)
	}
	if !equalIDs(idsOf(tr.Items()), idsOf(items)) {
		t.Error("packed tree lost items")
	}
	// Packed search agrees with brute force.
	for i := 0; i < 50; i++ {
		q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 0.2, 0.2)
		if got, want := idsOf(tr.SearchWindow(q)), bruteSearch(items, q); !equalIDs(got, want) {
			t.Fatalf("packed search mismatch for %v", q)
		}
	}
}

func TestPackFillsNodes(t *testing.T) {
	rng := rand.New(rand.NewPCG(92, 93))
	// 1001 items at cap 10: the trailing leaf holds a single entry —
	// legal for packed trees (and why CheckInvariants skips min fill).
	items := testItems(rng, 1001)
	tr, err := Pack(Params{MaxEntries: 10}, items, xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	per := tr.NodesPerLevel()
	if per[len(per)-1] != 101 {
		t.Errorf("leaves = %d, want 101", per[len(per)-1])
	}
	if err := tr.CheckMinFill(); err == nil {
		t.Log("note: trailing nodes happen to satisfy min fill for this size")
	}
	st := tr.ComputeStats()
	if st.AvgFill < 0.9 {
		t.Errorf("packed fill = %.2f, want nearly 1", st.AvgFill)
	}
}

func TestPackSizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(94, 95))
	for _, n := range []int{0, 1, 9, 10, 11, 99, 100, 101, 2500} {
		items := testItems(rng, n)
		tr, err := Pack(Params{MaxEntries: 10}, items, xOrdering)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := ValidateTree(tr); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 0 && !equalIDs(idsOf(tr.Items()), idsOf(items)) {
			t.Fatalf("n=%d: item set mismatch", n)
		}
	}
}

func TestPackedTreeSupportsUpdates(t *testing.T) {
	rng := rand.New(rand.NewPCG(96, 97))
	items := testItems(rng, 500)
	tr, err := Pack(Params{MaxEntries: 8}, items, xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	// Inserts and deletes on a packed tree keep it valid.
	extra := testItems(rng, 100)
	for i := range extra {
		extra[i].ID += 10000
		tr.Insert(extra[i])
	}
	for _, it := range items[:100] {
		if !tr.Delete(it) {
			t.Fatal("delete of packed item failed")
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTree(tr); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Errorf("Len = %d, want 500", tr.Len())
	}
}

func TestPackRejectsBadOrderings(t *testing.T) {
	items := testItems(rand.New(rand.NewPCG(1, 1)), 10)
	bad := []struct {
		name string
		ord  Ordering
	}{
		{"nil", nil},
		{"short", OrderingFunc(func(rects []geom.Rect, _ int) []int { return []int{0} })},
		{"duplicate", OrderingFunc(func(rects []geom.Rect, _ int) []int {
			p := make([]int, len(rects))
			return p // all zeros
		})},
		{"out of range", OrderingFunc(func(rects []geom.Rect, _ int) []int {
			p := make([]int, len(rects))
			for i := range p {
				p[i] = i
			}
			p[0] = len(rects)
			return p
		})},
	}
	for _, tc := range bad {
		if _, err := Pack(Params{MaxEntries: 4}, items, tc.ord); err == nil {
			t.Errorf("%s ordering accepted", tc.name)
		}
	}
}

func TestPackInvalidParams(t *testing.T) {
	if _, err := Pack(Params{MaxEntries: 1}, nil, xOrdering); err == nil {
		t.Error("Pack accepted MaxEntries 1")
	}
}

func TestAssignPageIDsLevelOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	tr, err := Pack(Params{MaxEntries: 7}, testItems(rng, 700), xOrdering)
	if err != nil {
		t.Fatal(err)
	}
	total := tr.AssignPageIDs()
	if total != tr.NodeCount() {
		t.Fatalf("AssignPageIDs = %d, NodeCount = %d", total, tr.NodeCount())
	}
	// PageLevels must be non-decreasing (level order) and match counts.
	levels := tr.PageLevels()
	counts := tr.NodesPerLevel()
	want := 0
	idx := 0
	for lvl, c := range counts {
		for i := 0; i < c; i++ {
			if levels[idx] != lvl {
				t.Fatalf("page %d at level %d, want %d", idx, levels[idx], lvl)
			}
			idx++
		}
		want += c
	}
	if idx != total {
		t.Fatalf("covered %d of %d pages", idx, total)
	}
}

func TestPageLevelsRequiresAssignment(t *testing.T) {
	tr := MustNew(Params{MaxEntries: 4})
	tr.Insert(Item{Rect: geom.UnitSquare, ID: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("PageLevels without AssignPageIDs did not panic")
		}
	}()
	tr.PageLevels()
}
