package rtree

import (
	"fmt"

	"rtreebuf/internal/geom"
)

// NodeData is the serialization-friendly view of one node, decoupling the
// storage codec from tree internals. Page numbers are the level-order IDs
// from AssignPageIDs (root = 0).
type NodeData struct {
	Page     int
	Level    int // paper convention: 0 = root
	Leaf     bool
	Rects    []geom.Rect
	Children []int   // child page numbers; internal nodes only
	IDs      []int64 // data identifiers; leaves only
}

// ExportNodes returns every node in page order. It assigns page IDs if
// they are stale, so it is always safe to call.
func (t *Tree) ExportNodes() []NodeData {
	if !t.pagesValid {
		t.AssignPageIDs()
	}
	out := make([]NodeData, t.NodeCount())
	t.walk(func(n *node) {
		nd := NodeData{
			Page:  n.page,
			Level: t.root.height - n.height,
			Leaf:  n.isLeaf(),
			Rects: make([]geom.Rect, len(n.entries)),
		}
		for i, e := range n.entries {
			nd.Rects[i] = e.rect
			if n.isLeaf() {
				nd.IDs = append(nd.IDs, e.id)
			} else {
				nd.Children = append(nd.Children, e.child.page)
			}
		}
		out[n.page] = nd
	})
	return out
}

// ImportNodes reconstructs a tree from exported node data. The root must
// be page 0. The rebuilt tree is fully validated: malformed input (missing
// pages, cycles, inconsistent levels, child MBR mismatches) is rejected
// rather than producing a silently corrupt index.
func ImportNodes(p Params, nodes []NodeData) (*Tree, error) {
	np, err := p.normalized()
	if err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("rtree: import of zero nodes")
	}
	byPage := make(map[int]*NodeData, len(nodes))
	maxLevel := 0
	for i := range nodes {
		nd := &nodes[i]
		if _, dup := byPage[nd.Page]; dup {
			return nil, fmt.Errorf("rtree: duplicate page %d", nd.Page)
		}
		byPage[nd.Page] = nd
		if nd.Level > maxLevel {
			maxLevel = nd.Level
		}
		if nd.Leaf {
			if len(nd.IDs) != len(nd.Rects) {
				return nil, fmt.Errorf("rtree: page %d: %d IDs for %d rects", nd.Page, len(nd.IDs), len(nd.Rects))
			}
		} else if len(nd.Children) != len(nd.Rects) {
			return nil, fmt.Errorf("rtree: page %d: %d children for %d rects", nd.Page, len(nd.Children), len(nd.Rects))
		}
	}
	rootData, ok := byPage[0]
	if !ok {
		return nil, fmt.Errorf("rtree: no root page 0")
	}
	if rootData.Level != 0 {
		return nil, fmt.Errorf("rtree: root page at level %d", rootData.Level)
	}

	built := make(map[int]*node, len(nodes))
	var build func(page int) (*node, error)
	build = func(page int) (*node, error) {
		if _, cyc := built[page]; cyc {
			return nil, fmt.Errorf("rtree: page %d referenced twice (cycle or shared child)", page)
		}
		nd, ok := byPage[page]
		if !ok {
			return nil, fmt.Errorf("rtree: missing page %d", page)
		}
		n := &node{height: maxLevel - nd.Level, page: page}
		built[page] = n
		if nd.Leaf != (n.height == 0) {
			return nil, fmt.Errorf("rtree: page %d leaf flag inconsistent with level %d (tree depth %d)",
				page, nd.Level, maxLevel)
		}
		n.entries = make([]entry, len(nd.Rects))
		for i, r := range nd.Rects {
			n.entries[i] = entry{rect: r}
			if nd.Leaf {
				n.entries[i].id = nd.IDs[i]
			} else {
				child, err := build(nd.Children[i])
				if err != nil {
					return nil, err
				}
				if child.height != n.height-1 {
					return nil, fmt.Errorf("rtree: page %d child %d at wrong level", page, nd.Children[i])
				}
				child.parent = n
				n.entries[i].child = child
			}
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	if len(built) != len(nodes) {
		return nil, fmt.Errorf("rtree: %d of %d pages unreachable from root", len(nodes)-len(built), len(nodes))
	}

	t := &Tree{root: root, params: np, pagesValid: true}
	t.walk(func(n *node) {
		if n.isLeaf() {
			t.size += len(n.entries)
		}
	})
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("rtree: imported tree invalid: %w", err)
	}
	return t, nil
}
