package rtree

import (
	"fmt"
)

// ValidateTree is the runtime counterpart of the static checks in
// internal/analysis: a single deep pass asserting every structural
// invariant an R-tree must satisfy for the paper's buffer model to be
// meaningful. It returns the first violation found, or nil.
//
// Checked invariants:
//
//  1. MBR containment and exactness: each internal entry's rectangle
//     contains every rectangle of its child and equals the child's MBR
//     bit for bit (the model's access probabilities are computed from
//     these rectangles, so a stale MBR silently skews every A_ij).
//  2. Fanout bounds: no node exceeds MaxEntries; every non-root node is
//     non-empty; an internal root has at least two entries.
//  3. Uniform leaf depth: every leaf sits at the same depth, and node
//     heights decrease by exactly one per level.
//  4. Consistency with the tree's own accounting: the leaf entries found
//     by the walk match Len(), and the per-level node counts match what
//     ComputeStats and NodesPerLevel report.
//
// The Guttman minimum-fill bound (m <= entries except at the root) is
// validated by the companion ValidateTreeStrict: bulk-loaded trees
// legitimately leave the trailing node of each level short, so the base
// validator must pass on the output of every loader in internal/pack.
func ValidateTree(t *Tree) error {
	if t == nil || t.root == nil {
		return fmt.Errorf("rtree: validate: nil tree or root")
	}

	items := 0
	leaves := 0
	perHeight := make(map[int]int)

	var walk func(n *node, parent *node, isRoot bool) error
	walk = func(n *node, parent *node, isRoot bool) error {
		perHeight[n.height]++
		if n.parent != parent {
			return fmt.Errorf("rtree: validate: node at height %d has wrong parent pointer", n.height)
		}
		if len(n.entries) > t.params.MaxEntries {
			return fmt.Errorf("rtree: validate: node at height %d has %d entries > max %d",
				n.height, len(n.entries), t.params.MaxEntries)
		}
		if !isRoot && len(n.entries) == 0 {
			return fmt.Errorf("rtree: validate: empty non-root node at height %d", n.height)
		}
		if isRoot && !n.isLeaf() && len(n.entries) < 2 {
			return fmt.Errorf("rtree: validate: internal root has %d entries < 2", len(n.entries))
		}
		if n.isLeaf() {
			leaves++
			for i, e := range n.entries {
				if e.child != nil {
					return fmt.Errorf("rtree: validate: leaf entry %d has a child", i)
				}
				if !e.rect.Valid() {
					return fmt.Errorf("rtree: validate: leaf entry %d has invalid rect %v", i, e.rect)
				}
				items++
			}
			return nil
		}
		for i, e := range n.entries {
			c := e.child
			if c == nil {
				return fmt.Errorf("rtree: validate: internal entry %d at height %d has nil child",
					i, n.height)
			}
			if c.height != n.height-1 {
				return fmt.Errorf("rtree: validate: child %d at height %d under node at height %d",
					i, c.height, n.height)
			}
			if len(c.entries) == 0 {
				return fmt.Errorf("rtree: validate: child %d at height %d is empty", i, c.height)
			}
			mbr := c.mbr()
			if !e.rect.Equal(mbr) {
				return fmt.Errorf("rtree: validate: entry %d rect %v != child MBR %v", i, e.rect, mbr)
			}
			for j, ce := range c.entries {
				if !e.rect.ContainsRect(ce.rect) {
					return fmt.Errorf("rtree: validate: entry %d rect %v does not contain child entry %d rect %v",
						i, e.rect, j, ce.rect)
				}
			}
			if err := walk(c, n, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, nil, true); err != nil {
		return err
	}

	// Uniform leaf depth: the walk already enforces height-parent
	// consistency, so it suffices that every leaf-height node is a leaf
	// and leaves occur only at height zero.
	if perHeight[0] != leaves {
		return fmt.Errorf("rtree: validate: %d nodes at height 0 but %d leaves", perHeight[0], leaves)
	}

	if items != t.size {
		return fmt.Errorf("rtree: validate: tree reports %d items but leaves hold %d", t.size, items)
	}

	// The walk's per-level census must agree with the tree's own
	// accounting (Stats and NodesPerLevel are what the experiments and
	// the cost model consume). An empty tree has no MBRs to aggregate, so
	// ComputeStats cannot run on it; the checks above already cover it.
	if items == 0 {
		return nil
	}
	stats := t.ComputeStats()
	if stats.Items != items {
		return fmt.Errorf("rtree: validate: Stats.Items %d != leaf entry count %d", stats.Items, items)
	}
	counts := t.NodesPerLevel()
	if len(counts) != t.root.height+1 {
		return fmt.Errorf("rtree: validate: NodesPerLevel has %d levels, tree has %d",
			len(counts), t.root.height+1)
	}
	total := 0
	for lvl, got := range counts {
		want := perHeight[t.root.height-lvl]
		if got != want {
			return fmt.Errorf("rtree: validate: NodesPerLevel[%d] = %d but walk found %d", lvl, got, want)
		}
		if stats.NodesPerLevel[lvl] != got {
			return fmt.Errorf("rtree: validate: Stats.NodesPerLevel[%d] = %d but walk found %d",
				lvl, stats.NodesPerLevel[lvl], got)
		}
		total += got
	}
	if stats.Nodes != total {
		return fmt.Errorf("rtree: validate: Stats.Nodes %d != walked total %d", stats.Nodes, total)
	}
	return nil
}

// ValidateTreeStrict is ValidateTree plus the Guttman minimum-fill bound:
// every non-root node must hold at least MinEntries entries. Use it on
// trees maintained by Insert/Delete (including R*); bulk-loaded trees may
// legally fail it in their trailing nodes.
func ValidateTreeStrict(t *Tree) error {
	if err := ValidateTree(t); err != nil {
		return err
	}
	return t.CheckMinFill()
}
