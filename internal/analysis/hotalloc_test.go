package analysis

import "testing"

// TestHotAllocFixture seeds allocations at three distances from the hot
// root: in the root itself, in a cross-package callee, and in a function
// the roots cannot reach (which must stay silent). A lint:allow line
// checks the suppression path through Run.
func TestHotAllocFixture(t *testing.T) {
	a := &Analyzer{
		Name: "hotalloc",
		CheckModule: func(m *Module) []Finding {
			return checkHotAlloc(m, []RootSpec{
				{Path: "fixture/TestHotAllocFixture/index", Recv: "Tree", Name: "Search*"},
			})
		},
	}
	runModuleFixture(t, a, []fixtureFile{
		{
			path: "fixture/TestHotAllocFixture/mem",
			src: `package mem

// Grow rides the hot path only because index.Search calls it.
func Grow(dst []int, v int) []int {
	return append(dst, v) // WANT
}
`,
		},
		{
			path: "fixture/TestHotAllocFixture/index",
			src: `package index

import "fixture/TestHotAllocFixture/mem"

type Tree struct {
	vals []int
}

func (t *Tree) Search(q int) []int {
	out := make([]int, 0, 4) // WANT
	for _, v := range t.vals {
		if v == q {
			out = mem.Grow(out, v)
		}
	}
	return out
}

func (t *Tree) SearchAll() []int {
	//lint:allow hotalloc result materialization is the contract
	out := make([]int, len(t.vals))
	copy(out, t.vals)
	return out
}

// Size is not reachable from any Search* root; its allocation is fine.
func (t *Tree) Size() []int {
	return make([]int, len(t.vals))
}
`,
		},
	})
}
