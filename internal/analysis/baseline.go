package analysis

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Baseline is the set of findings a repository has accepted for now, so
// a new analyzer can land (and gate CI) before every pre-existing finding
// is fixed. The file format is one finding per line,
//
//	relative/path.go: analyzer[fnv32a-of-message]: message
//
// with '#' comments and blank lines ignored. Keys deliberately omit
// line/column numbers: unrelated edits above a baselined finding must not
// un-baseline it. The flip side — moving a baselined finding to another
// message or file resurfaces it — is the desired behaviour.
//
// Matching uses the (file, analyzer, hash) triple; the message after the
// bracket is carried for the human reading the file and ignored when
// matching, so messages containing ": " never make a key ambiguous. Lines
// in the pre-hash legacy format ("path: analyzer: message") still match:
// they are compared as whole lines against the legacy rendering of each
// finding.
type Baseline struct {
	path string
	keys map[string]bool
}

// BaselineKey renders a finding as its baseline-file line, with the file
// path relative to the module root and the analyzer name tagged with a
// short hash of the message.
func BaselineKey(root string, f Finding) string {
	return fmt.Sprintf("%s: %s[%08x]: %s", baselineFile(root, f), f.Analyzer, messageHash(f.Message), f.Message)
}

// legacyBaselineKey renders the pre-hash key format, used to match
// baseline files written before the format change.
func legacyBaselineKey(root string, f Finding) string {
	return fmt.Sprintf("%s: %s: %s", baselineFile(root, f), f.Analyzer, f.Message)
}

func baselineFile(root string, f Finding) string {
	name := f.Pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = filepath.ToSlash(rel)
	}
	return name
}

func messageHash(msg string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(msg))
	return h.Sum32()
}

// matchForm reduces a key or baseline line to the form used for set
// membership: hashed keys match on "file: analyzer[hash]" (the trailing
// message is display-only), legacy lines match whole.
func matchForm(key string) string {
	if i := hashEnd(key); i >= 0 {
		return key[:i+1]
	}
	return key
}

// hashEnd returns the index of ']' in the first "[8-hex]: " marker, or -1
// for a legacy-format key.
func hashEnd(key string) int {
	i := strings.Index(key, "]: ")
	if i < 9 || key[i-9] != '[' {
		return -1
	}
	for _, c := range key[i-8 : i] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return -1
		}
	}
	return i
}

// LoadBaseline reads a baseline file. A missing file is an error; pass
// the empty path to get an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{path: path, keys: make(map[string]bool)}
	if path == "" {
		return b, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.keys[matchForm(line)] = true
	}
	return b, nil
}

// Has reports whether the finding key is baselined. A nil baseline
// accepts nothing.
func (b *Baseline) Has(key string) bool { return b != nil && b.keys[matchForm(key)] }

// Match reports whether the finding is baselined, accepting entries in
// either the current hashed format or the legacy whole-line format.
func (b *Baseline) Match(root string, f Finding) bool {
	return b.Has(BaselineKey(root, f)) || b.Has(legacyBaselineKey(root, f))
}

// Len returns the number of baselined findings.
func (b *Baseline) Len() int {
	if b == nil {
		return 0
	}
	return len(b.keys)
}

// WriteBaseline writes the findings as a baseline file, sorted and
// deduplicated, with a header explaining the workflow.
func WriteBaseline(path, root string, findings []Finding) error {
	seen := make(map[string]bool)
	var keys []string
	for _, f := range findings {
		key := BaselineKey(root, f)
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# rtreelint baseline: accepted findings, one per line\n")
	sb.WriteString("# (file: analyzer[message-hash]: message — no line numbers, so edits elsewhere\n")
	sb.WriteString("# don't invalidate entries; matching uses file, analyzer, and hash only).\n")
	sb.WriteString("# Regenerate with: go run ./cmd/rtreelint -write-baseline\n")
	sb.WriteString("# Shrink it over time; never grow it without a review.\n")
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
