package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Baseline is the set of findings a repository has accepted for now, so
// a new analyzer can land (and gate CI) before every pre-existing finding
// is fixed. The file format is one finding per line,
//
//	relative/path.go: analyzer: message
//
// with '#' comments and blank lines ignored. Keys deliberately omit
// line/column numbers: unrelated edits above a baselined finding must not
// un-baseline it. The flip side — moving a baselined finding to another
// message or file resurfaces it — is the desired behaviour.
type Baseline struct {
	path string
	keys map[string]bool
}

// BaselineKey renders a finding as its baseline-file line, with the file
// path relative to the module root.
func BaselineKey(root string, f Finding) string {
	name := f.Pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s: %s: %s", name, f.Analyzer, f.Message)
}

// LoadBaseline reads a baseline file. A missing file is an error; pass
// the empty path to get an empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{path: path, keys: make(map[string]bool)}
	if path == "" {
		return b, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		b.keys[line] = true
	}
	return b, nil
}

// Has reports whether the finding key is baselined. A nil baseline
// accepts nothing.
func (b *Baseline) Has(key string) bool { return b != nil && b.keys[key] }

// Len returns the number of baselined findings.
func (b *Baseline) Len() int {
	if b == nil {
		return 0
	}
	return len(b.keys)
}

// WriteBaseline writes the findings as a baseline file, sorted and
// deduplicated, with a header explaining the workflow.
func WriteBaseline(path, root string, findings []Finding) error {
	seen := make(map[string]bool)
	var keys []string
	for _, f := range findings {
		key := BaselineKey(root, f)
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# rtreelint baseline: accepted findings, one per line\n")
	sb.WriteString("# (file: analyzer: message — no line numbers, so edits elsewhere don't invalidate entries).\n")
	sb.WriteString("# Regenerate with: go run ./cmd/rtreelint -write-baseline\n")
	sb.WriteString("# Shrink it over time; never grow it without a review.\n")
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}
