package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// This file extends the fact store from boolean facts to ORDERED effect
// summaries: per-function traces over a small alphabet of durability
// effects, composed bottom-up over the call graph. durcheck evaluates
// declarative ordering rules (rules.go) against the traces; errflow uses
// the per-site effect sets to classify error origins.
//
// The alphabet names the storage/WAL/buffer operations whose ORDER the
// §7e commit protocol constrains. Effects are recognized as intrinsics
// on well-known methods (the effect table below) rather than computed
// from those bodies: the table entry is the method's CONTRACT, the
// boundary callers reason at. WriteMeta, for instance, is fixed as
// [Sync, MetaWrite] — "the catalog publish syncs data first" — so every
// caller satisfies sync-before-publish by construction, while the
// implementations' bodies are checked against the contract separately
// (the writemeta-syncs rule).
//
// Traces are possibilistic: branches fork (union, unlike lockcheck's
// must-hold intersection), loops contribute zero, one, and two body
// iterations (two captures cross-iteration adjacency), deferred calls
// append at returns, and function literals are inlined where they appear
// (consistent with walkBody: the closure body is assumed to execute
// within the enclosing function's dynamic extent). Each trace records
// whether it reaches an error return, so rules can quantify over clean
// completions only. Known gaps, shared with the fact store: calls
// through plain function values contribute nothing, and a stored
// closure's effects are credited at its definition point.

// Effect is one durability-relevant operation in the effect alphabet.
type Effect uint8

const (
	// EffPageWrite: a data-page write on a DiskManager (WritePage).
	EffPageWrite Effect = iota
	// EffMetaWrite: a catalog/header publish (WriteMeta, writeHeader).
	EffMetaWrite
	// EffSync: an fsync barrier (Sync, syncManager).
	EffSync
	// EffLogAppend: WAL record appends (the data half of AppendBatch).
	EffLogAppend
	// EffCommit: the WAL commit point — the log device's meta-blob write
	// that moves the commit horizon (the tail of AppendBatch).
	EffCommit
	// EffWriteBack: a buffer-pool write-back (FlushDirty, Put's victim).
	EffWriteBack
	// EffCheckpoint: a WAL checkpoint (truncates the redo log).
	EffCheckpoint

	numEffects
)

var effectNames = [numEffects]string{
	"PageWrite", "MetaWrite", "Sync", "LogAppend", "Commit", "WriteBack", "Checkpoint",
}

func (e Effect) String() string {
	if int(e) < len(effectNames) {
		return effectNames[e]
	}
	return fmt.Sprintf("Effect(%d)", int(e))
}

// EffectSet is a bitmask over the effect alphabet.
type EffectSet uint16

// Bit returns the effect's set bit.
func (e Effect) Bit() EffectSet { return 1 << EffectSet(e) }

// Has reports whether the set contains the effect.
func (s EffectSet) Has(e Effect) bool { return s&e.Bit() != 0 }

// Effects returns the members in alphabet order.
func (s EffectSet) Effects() []Effect {
	var out []Effect
	for e := Effect(0); e < numEffects; e++ {
		if s.Has(e) {
			out = append(out, e)
		}
	}
	return out
}

// String renders the set as "PageWrite|Sync" ("none" when empty).
func (s EffectSet) String() string {
	if s == 0 {
		return "none"
	}
	var parts []string
	for _, e := range s.Effects() {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, "|")
}

func effects(es ...Effect) EffectSet {
	var s EffectSet
	for _, e := range es {
		s |= e.Bit()
	}
	return s
}

// effectIntrinsic fixes a method's effect trace by contract. recv is the
// receiver's named base type; "" matches package-level functions only,
// "*" matches any callee with the name (exact receiver entries win).
// Matching is by name, not package, deliberately: fixture packages model
// the protocol with their own WAL/Pool/manager shapes and participate in
// the same rules.
type effectIntrinsic struct {
	recv  string
	name  string
	trace []Effect
	what  string
}

var effectTable = []effectIntrinsic{
	{"WAL", "AppendBatch", []Effect{EffLogAppend, EffCommit},
		"WAL batch append ending at the commit-point meta write"},
	{"WAL", "Checkpoint", []Effect{EffCheckpoint},
		"WAL checkpoint (truncates the redo log)"},
	{"Pool", "Put", []Effect{EffWriteBack}, "pool install (may write back a dirty victim)"},
	{"SyncPool", "Put", []Effect{EffWriteBack}, "pool install (may write back a dirty victim)"},
	{"ShardedPool", "Put", []Effect{EffWriteBack}, "pool install (may write back a dirty victim)"},
	{"PagePool", "Put", []Effect{EffWriteBack}, "pool install through the interface (may write back a dirty victim)"},
	{"Pool", "FlushDirty", []Effect{EffWriteBack}, "pool write-back of all dirty pages"},
	{"SyncPool", "FlushDirty", []Effect{EffWriteBack}, "pool write-back of all dirty pages"},
	{"ShardedPool", "FlushDirty", []Effect{EffWriteBack}, "pool write-back of all dirty pages"},
	{"PagePool", "FlushDirty", []Effect{EffWriteBack}, "pool write-back through the interface"},
	{"Pool", "flushPage", []Effect{EffWriteBack}, "pool write-back of one page"},
	{"Pool", "writeBackVictim", []Effect{EffWriteBack}, "pool write-back of the eviction victim"},
	{"", "syncManager", []Effect{EffSync},
		"page-file sync point (no-op only for unsyncable managers)"},
	{"*", "WritePage", []Effect{EffPageWrite}, "data-page write"},
	{"*", "WriteMeta", []Effect{EffSync, EffMetaWrite},
		"catalog publish (contract: unsynced data is synced first)"},
	{"*", "writeHeader", []Effect{EffMetaWrite}, "header/catalog publish"},
	{"*", "Sync", []Effect{EffSync}, "fsync to stable storage"},
}

// effectEntry resolves a callee against the effect table. Exact receiver
// matches beat the "*" wildcards.
func effectEntry(fn *types.Func) *effectIntrinsic {
	if fn == nil {
		return nil
	}
	name, recv := fn.Name(), recvBase(fn)
	var wild *effectIntrinsic
	for i := range effectTable {
		en := &effectTable[i]
		if en.name != name {
			continue
		}
		if en.recv == recv {
			return en
		}
		if en.recv == "*" && wild == nil {
			wild = en
		}
	}
	return wild
}

// EffEvent is one effect occurrence in a trace. Fn/Pos locate the call
// (or intrinsic) in the function whose trace holds the event; Inner is
// the callee's own event when the effect arrived through composition,
// nil at the effect-table boundary. Following Inner renders the
// interprocedural witness chain.
type EffEvent struct {
	Eff   Effect
	Fn    *FuncNode
	Pos   token.Pos
	What  string
	Inner *EffEvent
}

// Innermost follows the composition chain to the event at the effect
// boundary — the call the effect is actually attributed to.
func (ev *EffEvent) Innermost() *EffEvent {
	for ev.Inner != nil {
		ev = ev.Inner
	}
	return ev
}

// EffTrace is one possible ordered effect sequence through a function
// body, from entry to one return.
type EffTrace struct {
	Events []*EffEvent
	// Err marks traces classified as reaching an error return; ordering
	// rules that promise completion (Eventually) skip them.
	Err bool
	// Approx marks traces that lost precision: a recursive callee
	// contributed its effect set as an unordered clump, or the trace or
	// fork budget was exceeded. Universal rules skip approximate traces
	// (no false positives from invented orders); existential ones keep
	// them.
	Approx bool

	// lastCall classifies the most recently composed callee trace
	// (0 unknown, 1 clean, 2 error); return classification inherits it
	// for tail calls.
	lastCall int8
}

// String renders the trace as its effect sequence plus classification.
func (t EffTrace) String() string {
	parts := make([]string, 0, len(t.Events)+2)
	for _, ev := range t.Events {
		parts = append(parts, ev.Eff.String())
	}
	if len(parts) == 0 {
		parts = append(parts, "(no effects)")
	}
	if t.Err {
		parts = append(parts, "(error return)")
	}
	if t.Approx {
		parts = append(parts, "(approx)")
	}
	return strings.Join(parts, " ")
}

// Set returns the union of the trace's effects.
func (t EffTrace) Set() EffectSet {
	var s EffectSet
	for _, ev := range t.Events {
		s |= ev.Eff.Bit()
	}
	return s
}

const (
	// maxEffTraces bounds the fork fan-out per function; beyond it the
	// surviving traces are marked approximate.
	maxEffTraces = 160
	// maxEffEvents bounds one trace's length the same way.
	maxEffEvents = 48
)

// Effects is the module's effect store: per-function transitive effect
// sets (a cheap pre-pass) and lazily computed, memoized traces.
type Effects struct {
	g      *CallGraph
	sets   map[*FuncNode]EffectSet
	bodies map[*FuncNode][]EffTrace
	inBody map[*FuncNode]bool
}

// NewEffects builds the effect store over a call graph, computing the
// per-function effect sets eagerly (traces are computed on demand).
func NewEffects(g *CallGraph) *Effects {
	e := &Effects{
		g:      g,
		sets:   make(map[*FuncNode]EffectSet),
		bodies: make(map[*FuncNode][]EffTrace),
		inBody: make(map[*FuncNode]bool),
	}
	e.computeSets()
	return e
}

// computeSets runs the effect-set fixpoint: a table-fixed function's set
// is its contract; everything else unions its call sites. Effects are
// sparse, so this converges in a few passes.
func (e *Effects) computeSets() {
	fixed := make(map[*FuncNode]bool)
	for _, n := range e.g.order {
		if en := effectEntry(n.Fn); en != nil {
			e.sets[n] = effects(en.trace...)
			fixed[n] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range e.g.order {
			if fixed[n] {
				continue
			}
			var s EffectSet
			for _, c := range n.Calls {
				s |= e.SiteEffects(c)
			}
			if s != e.sets[n] {
				e.sets[n] = s
				changed = true
			}
		}
	}
}

// EffectSet returns the function's transitive effect set: its effect
// contract when table-fixed, else the union over everything it calls.
func (e *Effects) EffectSet(n *FuncNode) EffectSet { return e.sets[n] }

// SiteEffects returns the effects one call site can perform: the effect
// table's contract for the callee when it has one, else the union of the
// possible targets' sets. Value references contribute nothing (the
// indirection gap the fact store shares).
func (e *Effects) SiteEffects(c *Call) EffectSet {
	if c.Ref {
		return 0
	}
	if en := effectEntry(c.Callee); en != nil {
		return effects(en.trace...)
	}
	var s EffectSet
	for _, t := range c.Targets {
		s |= e.sets[t]
	}
	return s
}

// BodyTraces returns the traces computed from the function's own body —
// the implementation view, checked against scoped rules even when
// callers see a table contract instead. Recursion degrades to an
// unordered, approximate effect clump.
func (e *Effects) BodyTraces(n *FuncNode) []EffTrace {
	if ts, ok := e.bodies[n]; ok {
		return ts
	}
	if n.Decl.Body == nil {
		ts := []EffTrace{{}}
		e.bodies[n] = ts
		return ts
	}
	if e.inBody[n] {
		return []EffTrace{e.clumpTrace(n)}
	}
	e.inBody[n] = true
	sc := &effScanner{e: e, n: n}
	st, terminated := sc.block(n.Decl.Body.List, []EffTrace{{}})
	if !terminated {
		sc.ret(nil, st) // fall off the end: a clean return
	}
	ts := dedupTraces(sc.returned)
	if len(ts) == 0 {
		ts = []EffTrace{{}}
	}
	delete(e.inBody, n)
	e.bodies[n] = ts
	return ts
}

// Summary returns the traces callers compose: the fixed contract for
// table entries, the body traces otherwise.
func (e *Effects) Summary(n *FuncNode) []EffTrace {
	if en := effectEntry(n.Fn); en != nil {
		evs := make([]*EffEvent, len(en.trace))
		for i, eff := range en.trace {
			evs[i] = &EffEvent{Eff: eff, Fn: n, Pos: n.Decl.Pos(), What: en.what}
		}
		return []EffTrace{{Events: evs}}
	}
	return e.BodyTraces(n)
}

// clumpTrace is the recursion fallback: the function's transitive effect
// set emitted once, in alphabet order, marked approximate.
func (e *Effects) clumpTrace(n *FuncNode) EffTrace {
	var evs []*EffEvent
	for _, eff := range e.sets[n].Effects() {
		evs = append(evs, &EffEvent{
			Eff: eff, Fn: n, Pos: n.Decl.Pos(),
			What: "recursive call cycle (effect order unknown)",
		})
	}
	return EffTrace{Events: evs, Approx: true}
}

// EventChain renders an event's interprocedural witness chain, one
// "who: why at file:line" hop per composition level, ending at the
// effect-table boundary.
func EventChain(ev *EffEvent) []string {
	var out []string
	for ev != nil {
		pos := ev.Fn.Pkg.Fset.Position(ev.Pos)
		loc := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		if ev.Inner == nil {
			out = append(out, fmt.Sprintf("%s: %s [%s] at %s", ev.Fn, ev.What, ev.Eff, loc))
		} else {
			out = append(out, fmt.Sprintf("%s: %s at %s", ev.Fn, ev.What, loc))
		}
		ev = ev.Inner
	}
	return out
}

// traceVariant is one way a call site (or inlined closure) can behave:
// an event sequence plus the callee trace's return classification.
type traceVariant struct {
	events  []*EffEvent
	errFlag int8
	approx  bool
}

// siteVariants expands one call site into its trace variants: the table
// contract when the callee has one, else every summary trace of every
// possible target.
func (e *Effects) siteVariants(n *FuncNode, c *Call) []traceVariant {
	if c.Ref {
		return []traceVariant{{}}
	}
	if en := effectEntry(c.Callee); en != nil {
		evs := make([]*EffEvent, len(en.trace))
		for i, eff := range en.trace {
			evs[i] = &EffEvent{Eff: eff, Fn: n, Pos: c.Pos, What: c.Desc + ": " + en.what}
		}
		return []traceVariant{{events: evs}}
	}
	var out []traceVariant
	for _, t := range c.Targets {
		if e.sets[t] == 0 {
			continue // effect-free: contributes only the empty variant below
		}
		for _, tr := range t.wrapTraces(e, n, c) {
			out = append(out, tr)
		}
	}
	if len(out) == 0 {
		return []traceVariant{{}}
	}
	// A dispatch site may also resolve to effect-free implementations;
	// keep the empty variant so their path is not lost.
	if len(out) > 0 && c.Dispatch {
		out = append(out, traceVariant{})
	}
	return out
}

// wrapTraces lifts the target's summary traces into the caller: each
// event is wrapped with the call site so witness chains thread through.
func (t *FuncNode) wrapTraces(e *Effects, caller *FuncNode, c *Call) []traceVariant {
	sums := e.Summary(t)
	out := make([]traceVariant, 0, len(sums))
	for _, tr := range sums {
		v := traceVariant{approx: tr.Approx}
		if tr.Err {
			v.errFlag = 2
		} else {
			v.errFlag = 1
		}
		if len(tr.Events) > 0 {
			v.events = make([]*EffEvent, len(tr.Events))
			for i, ev := range tr.Events {
				v.events[i] = &EffEvent{
					Eff: ev.Eff, Fn: caller, Pos: c.Pos,
					What: "calls " + t.String(), Inner: ev,
				}
			}
		}
		out = append(out, v)
	}
	return out
}

// dedupTraces collapses traces with identical effect signatures and
// classification, keeping the first witness of each, and enforces the
// fork budget.
func dedupTraces(ts []EffTrace) []EffTrace {
	seen := make(map[string]bool, len(ts))
	out := ts[:0:0]
	for _, t := range ts {
		var sb strings.Builder
		for _, ev := range t.Events {
			sb.WriteByte(byte(ev.Eff))
		}
		if t.Err {
			sb.WriteByte('E')
		}
		if t.Approx {
			sb.WriteByte('A')
		}
		sb.WriteByte(byte(t.lastCall))
		sig := sb.String()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		out = append(out, t)
		if len(out) >= maxEffTraces {
			for i := range out {
				out[i].Approx = true
			}
			break
		}
	}
	return out
}

// effScanner computes one function's body traces: a path-forking walk in
// source order, composing callee summaries at call sites.
type effScanner struct {
	e        *Effects
	n        *FuncNode
	returned []EffTrace
	defers   [][]traceVariant
}

// apply composes the variants of one call site onto every live trace.
func (s *effScanner) apply(st []EffTrace, variants []traceVariant) []EffTrace {
	if len(variants) == 1 && len(variants[0].events) == 0 && !variants[0].approx {
		// The common effect-free call: nothing to fork, but the return
		// classification still threads through for tail calls.
		for i := range st {
			st[i].lastCall = variants[0].errFlag
		}
		return st
	}
	out := make([]EffTrace, 0, len(st)*len(variants))
	for _, t := range st {
		for _, v := range variants {
			nt := t
			nt.lastCall = v.errFlag
			nt.Approx = nt.Approx || v.approx
			if len(v.events) > 0 {
				// Adjacent identical effects collapse (first witness
				// kept): every rule kind quantifies over the relative
				// order of DISTINCT effects, so [PageWrite PageWrite]
				// and [PageWrite] are rule-equivalent — and collapsing
				// is what keeps loop-heavy bodies (replay, flush) from
				// blowing the fork budget on iteration-count noise.
				evs := append([]*EffEvent(nil), t.Events...)
				for _, ev := range v.events {
					if len(evs) > 0 && evs[len(evs)-1].Eff == ev.Eff {
						continue
					}
					evs = append(evs, ev)
				}
				if len(evs) > maxEffEvents {
					nt.Approx = true
				} else {
					nt.Events = evs
				}
			}
			out = append(out, nt)
		}
	}
	return dedupTraces(out)
}

// expr walks an expression in approximate evaluation order (operands
// before the call that consumes them), applying call sites and inlining
// function literals where they appear.
func (s *effScanner) expr(ex ast.Expr, st []EffTrace) []EffTrace {
	switch x := ex.(type) {
	case nil:
		return st
	case *ast.CallExpr:
		st = s.expr(x.Fun, st)
		for _, a := range x.Args {
			st = s.expr(a, st)
		}
		if c := s.n.SiteAt(x.Pos()); c != nil {
			st = s.apply(st, s.e.siteVariants(s.n, c))
		}
		return st
	case *ast.FuncLit:
		// Inline the literal's effects at its definition point — the
		// same "executes within this function's dynamic extent"
		// assumption walkBody makes. Its returns are its own, so scan
		// it as a sub-function and splice the result in.
		sub := &effScanner{e: s.e, n: s.n}
		sst, term := sub.block(x.Body.List, []EffTrace{{}})
		if !term {
			sub.ret(nil, sst)
		}
		var variants []traceVariant
		for _, t := range dedupTraces(sub.returned) {
			variants = append(variants, traceVariant{events: t.Events, approx: t.Approx})
		}
		if len(variants) == 0 {
			return st
		}
		return s.apply(st, variants)
	case *ast.ParenExpr:
		return s.expr(x.X, st)
	case *ast.SelectorExpr:
		return s.expr(x.X, st)
	case *ast.StarExpr:
		return s.expr(x.X, st)
	case *ast.UnaryExpr:
		return s.expr(x.X, st)
	case *ast.BinaryExpr:
		return s.expr(x.Y, s.expr(x.X, st))
	case *ast.IndexExpr:
		return s.expr(x.Index, s.expr(x.X, st))
	case *ast.IndexListExpr:
		return s.expr(x.X, st)
	case *ast.SliceExpr:
		st = s.expr(x.X, st)
		st = s.expr(x.Low, st)
		st = s.expr(x.High, st)
		return s.expr(x.Max, st)
	case *ast.TypeAssertExpr:
		return s.expr(x.X, st)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			st = s.expr(el, st)
		}
		return st
	case *ast.KeyValueExpr:
		return s.expr(x.Value, st)
	default:
		return st
	}
}

// block scans a statement list; terminated means every path returned.
func (s *effScanner) block(list []ast.Stmt, st []EffTrace) ([]EffTrace, bool) {
	for _, stmt := range list {
		var term bool
		st, term = s.stmt(stmt, st)
		if term {
			return nil, true
		}
	}
	return st, false
}

func (s *effScanner) stmt(stmt ast.Stmt, st []EffTrace) ([]EffTrace, bool) {
	switch x := stmt.(type) {
	case *ast.ExprStmt:
		return s.expr(x.X, st), false
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			st = s.expr(r, st)
		}
		for _, l := range x.Lhs {
			st = s.expr(l, st)
		}
		return st, false
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = s.expr(v, st)
					}
				}
			}
		}
		return st, false
	case *ast.IncDecStmt:
		return s.expr(x.X, st), false
	case *ast.SendStmt:
		return s.expr(x.Value, s.expr(x.Chan, st)), false
	case *ast.ReturnStmt:
		s.ret(x, st)
		return nil, true
	case *ast.BlockStmt:
		return s.block(x.List, st)
	case *ast.IfStmt:
		if x.Init != nil {
			st, _ = s.stmt(x.Init, st)
		}
		st = s.expr(x.Cond, st)
		thenSt, thenTerm := s.block(x.Body.List, st)
		elseSt, elseTerm := st, false
		if x.Else != nil {
			elseSt, elseTerm = s.stmt(x.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return nil, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		}
		return dedupTraces(append(append([]EffTrace(nil), thenSt...), elseSt...)), false
	case *ast.ForStmt:
		if x.Init != nil {
			st, _ = s.stmt(x.Init, st)
		}
		st = s.expr(x.Cond, st)
		return s.loop(x.Body, x.Post, st), false
	case *ast.RangeStmt:
		st = s.expr(x.X, st)
		return s.loop(x.Body, nil, st), false
	case *ast.SwitchStmt:
		if x.Init != nil {
			st, _ = s.stmt(x.Init, st)
		}
		st = s.expr(x.Tag, st)
		return s.clauses(x.Body.List, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st, _ = s.stmt(x.Init, st)
		}
		st, _ = s.stmt(x.Assign, st)
		return s.clauses(x.Body.List, st)
	case *ast.SelectStmt:
		return s.clauses(x.Body.List, st)
	case *ast.DeferStmt:
		// Arguments evaluate now; the call itself runs at every return.
		st = s.expr(x.Call.Fun, st)
		for _, a := range x.Call.Args {
			st = s.expr(a, st)
		}
		if c := s.n.SiteAt(x.Call.Pos()); c != nil {
			s.defers = append(s.defers, s.e.siteVariants(s.n, c))
		}
		return st, false
	case *ast.GoStmt:
		// Spawn-point approximation: the goroutine's effects land where
		// it was started (their true interleaving is unknowable here).
		return s.expr(x.Call, st), false
	case *ast.LabeledStmt:
		return s.stmt(x.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto fall through: the possibilistic union of
		// orders keeps every real trace present, at the cost of a few
		// impossible ones.
		return st, false
	default:
		return st, false
	}
}

// loop models a loop as zero, one, or two body executions — two is the
// cheapest shape that exposes cross-iteration effect adjacency.
func (s *effScanner) loop(body *ast.BlockStmt, post ast.Stmt, st []EffTrace) []EffTrace {
	out := append([]EffTrace(nil), st...)
	b1, t1 := s.block(body.List, st)
	if !t1 {
		if post != nil {
			b1, _ = s.stmt(post, b1)
		}
		out = append(out, b1...)
		b2, t2 := s.block(body.List, b1)
		if !t2 {
			out = append(out, b2...)
		}
	}
	return dedupTraces(out)
}

// clauses forks over a switch/select's case bodies. The no-case-taken
// path is always kept: a switch without a default falls through, and
// modeling an exhaustive one the same way only adds a skip trace.
func (s *effScanner) clauses(list []ast.Stmt, st []EffTrace) ([]EffTrace, bool) {
	out := append([]EffTrace(nil), st...)
	for _, cl := range list {
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				st = s.expr(e, st)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				st, _ = s.stmt(c.Comm, st)
			}
			body = c.Body
		default:
			continue
		}
		cst, cterm := s.block(body, st)
		if !cterm {
			out = append(out, cst...)
		}
	}
	return dedupTraces(out), false
}

// return classification.
const (
	retClean int8 = iota
	retErr
	retTail
	retBoth
)

// ret records the current traces as returns of the function: result
// expressions evaluate, deferred calls run last-in-first-out, and each
// trace is classified as a clean or error return.
func (s *effScanner) ret(x *ast.ReturnStmt, st []EffTrace) {
	class := retClean
	if x != nil {
		for _, r := range x.Results {
			st = s.expr(r, st)
		}
		class = s.classify(x)
	}
	var outs []EffTrace
	for _, t := range st {
		switch class {
		case retClean:
			t.Err = false
			outs = append(outs, t)
		case retErr:
			t.Err = true
			outs = append(outs, t)
		case retTail:
			switch t.lastCall {
			case 1:
				t.Err = false
				outs = append(outs, t)
			case 2:
				t.Err = true
				outs = append(outs, t)
			default:
				c := t
				c.Err = false
				outs = append(outs, c)
				t.Err = true
				outs = append(outs, t)
			}
		case retBoth:
			c := t
			c.Err = false
			outs = append(outs, c)
			t.Err = true
			outs = append(outs, t)
		}
	}
	for i := len(s.defers) - 1; i >= 0; i-- {
		outs = s.apply(outs, s.defers[i])
	}
	s.returned = append(s.returned, outs...)
}

// classify decides how a return statement's traces split between clean
// and error returns, looking at the final (error-typed) result.
func (s *effScanner) classify(x *ast.ReturnStmt) int8 {
	sig, ok := s.n.Fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return retClean
	}
	last := sig.Results().At(sig.Results().Len() - 1)
	if !types.Identical(last.Type(), errType) {
		return retClean
	}
	if len(x.Results) == 0 {
		return retBoth // naked return of a named error result
	}
	switch r := ast.Unparen(x.Results[len(x.Results)-1]).(type) {
	case *ast.Ident:
		if r.Name == "nil" {
			return retClean
		}
		return retErr
	case *ast.CallExpr:
		if fn, ok := calleeFunc(s.n.Pkg.Info, r); ok && fn.Pkg() != nil {
			path, name := fn.Pkg().Path(), fn.Name()
			if (path == "fmt" && name == "Errorf") ||
				(path == "errors" && (name == "New" || name == "Join")) {
				return retErr
			}
		}
		return retTail // inherit the tail call's own classification
	default:
		return retErr
	}
}

// calleeFunc resolves a call expression's static callee, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := info.Uses[f].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := info.Uses[f.Sel].(*types.Func)
		return fn, ok
	}
	return nil, false
}
