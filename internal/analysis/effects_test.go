package analysis

import (
	"strings"
	"testing"
)

// effNode builds a single-package fixture module and returns its effect
// store plus the named function's node.
func effNode(t *testing.T, src, fn string) (*Effects, *FuncNode) {
	t.Helper()
	m := NewModule(fixtureModule(t, []fixtureFile{{path: "fixture/" + t.Name(), src: src}}))
	ns := m.Graph.ResolveName(fn)
	if len(ns) != 1 {
		t.Fatalf("ResolveName(%s) = %d nodes, want 1", fn, len(ns))
	}
	return m.Effects(), ns[0]
}

// traceStrings renders traces for order-insensitive containment checks.
func traceStrings(ts []EffTrace) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

func wantTrace(t *testing.T, ts []EffTrace, want string) {
	t.Helper()
	for _, s := range traceStrings(ts) {
		if s == want {
			return
		}
	}
	t.Errorf("no trace %q among %v", want, traceStrings(ts))
}

func rejectTrace(t *testing.T, ts []EffTrace, reject string) {
	t.Helper()
	for _, s := range traceStrings(ts) {
		if s == reject {
			t.Errorf("unwanted trace %q present", reject)
		}
	}
}

// TestEffectTraceShapes pins the scanner's path model: loops contribute
// zero, one, and two iterations; deferred calls land at every return
// (error returns included); error paths are classified.
func TestEffectTraceShapes(t *testing.T) {
	e, n := effNode(t, `package efffix

type Dev struct{}

func (d *Dev) WritePage(page int, b []byte) error { return nil }
func (d *Dev) Sync() error                        { return nil }

func flush(d *Dev, n int) error {
	defer d.Sync()
	for i := 0; i < n; i++ {
		if err := d.WritePage(i, nil); err != nil {
			return err
		}
	}
	return nil
}
`, "flush")
	ts := e.BodyTraces(n)
	wantTrace(t, ts, "Sync")                          // zero iterations
	wantTrace(t, ts, "PageWrite Sync")                // one or more iterations
	wantTrace(t, ts, "PageWrite Sync (error return)") // failed write, defer still runs
	rejectTrace(t, ts, "Sync PageWrite")              // defers run at returns, not eagerly
	rejectTrace(t, ts, "PageWrite PageWrite Sync")    // adjacent identical effects collapse
	if got := e.EffectSet(n); got != effects(EffPageWrite, EffSync) {
		t.Errorf("EffectSet(flush) = %s, want PageWrite|Sync", got)
	}
}

// TestEffectContractVsBody pins the two views of a table function: the
// summary callers compose is the contract, the body traces stay the
// implementation (here: one that never syncs — what writemeta-syncs
// exists to catch).
func TestEffectContractVsBody(t *testing.T) {
	e, n := effNode(t, `package efffix

type Mgr struct{}

func (m *Mgr) writeHeader() error { return nil }

func (m *Mgr) WriteMeta(b []byte) error {
	return m.writeHeader()
}
`, "WriteMeta")
	sum := e.Summary(n)
	if len(sum) != 1 || sum[0].String() != "Sync MetaWrite" {
		t.Errorf("Summary(WriteMeta) = %v, want the [Sync MetaWrite] contract", traceStrings(sum))
	}
	wantTrace(t, e.BodyTraces(n), "MetaWrite")
	rejectTrace(t, e.BodyTraces(n), "Sync MetaWrite")
}

// TestEffectFuncLitInline pins closure inlining: effects inside a func
// literal are credited at its definition point, so retry-style wrappers
// keep their inner call's effects visible.
func TestEffectFuncLitInline(t *testing.T) {
	e, n := effNode(t, `package efffix

type Dev struct{ dirty bool }

func (d *Dev) Sync() error              { d.dirty = false; return nil }
func (d *Dev) WriteMeta(b []byte) error { return nil }

type Retrier struct{ inner *Dev }

func (r *Retrier) retry(f func() error) error { return f() }

func (r *Retrier) WriteMeta(b []byte) error {
	return r.retry(func() error { return r.inner.WriteMeta(b) })
}
`, "(*Retrier).WriteMeta")
	wantTrace(t, e.BodyTraces(n), "Sync MetaWrite")
	rejectTrace(t, e.BodyTraces(n), "(no effects)")
}

// TestEffectWitnessChain pins interprocedural composition: an effect
// reached through a helper renders a multi-hop chain ending at the
// effect-table boundary.
func TestEffectWitnessChain(t *testing.T) {
	e, n := effNode(t, `package efffix

type Dev struct{}

func (d *Dev) WritePage(page int, b []byte) error { return nil }

func helper(d *Dev) error { return d.WritePage(0, nil) }

func top(d *Dev) error { return helper(d) }
`, "top")
	ts := e.BodyTraces(n)
	wantTrace(t, ts, "PageWrite")
	var chain []string
	for _, tr := range ts {
		for _, ev := range tr.Events {
			if ev.Eff == EffPageWrite {
				chain = EventChain(ev)
			}
		}
	}
	if len(chain) != 2 {
		t.Fatalf("EventChain = %v, want 2 hops (top -> helper)", chain)
	}
	if !strings.Contains(chain[0], "top") || !strings.Contains(chain[0], "calls") {
		t.Errorf("outer hop %q should name top calling helper", chain[0])
	}
	if !strings.Contains(chain[1], "helper") || !strings.Contains(chain[1], "PageWrite") {
		t.Errorf("inner hop %q should anchor the PageWrite in helper", chain[1])
	}
}

// TestEffectRecursionClump pins the recursion fallback: a cycle degrades
// to an approximate unordered clump rather than diverging, and universal
// rules will skip it.
func TestEffectRecursionClump(t *testing.T) {
	e, n := effNode(t, `package efffix

type Dev struct{}

func (d *Dev) WritePage(page int, b []byte) error { return nil }

func ping(d *Dev, n int) error {
	if n == 0 {
		return nil
	}
	if err := d.WritePage(n, nil); err != nil {
		return err
	}
	return ping(d, n-1)
}
`, "ping")
	if got := e.EffectSet(n); !got.Has(EffPageWrite) {
		t.Fatalf("EffectSet(ping) = %s, want PageWrite", got)
	}
	var sawApprox bool
	for _, tr := range e.BodyTraces(n) {
		if tr.Approx {
			sawApprox = true
		}
	}
	if !sawApprox {
		t.Error("recursive function produced no approximate trace")
	}
}
