package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the synchronization-awareness shared by the concurrency
// analyzers (lockcheck, sharecheck, atomiccheck): classifying direct
// sync.Mutex/RWMutex operations, and a lexical model of which mutexes are
// held at a given position inside one function body.

// syncLockOp classifies a call as a direct sync.Mutex/RWMutex operation.
// key identifies the lock and mode ("s.mu/w"), display is the
// human-readable form. TryLock/TryRLock report ok with empty key: they are
// lock operations but their conditional acquisition is not modelled.
func syncLockOp(info *types.Info, call *ast.CallExpr) (key, display string, acquire, release, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return
	}
	var fn *types.Func
	if selection, found := info.Selections[sel]; found {
		fn, _ = selection.Obj().(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	if base := recvBase(fn); base != "Mutex" && base != "RWMutex" {
		return
	}
	expr := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return expr + "/w", expr, true, false, true
	case "Unlock":
		return expr + "/w", expr, false, true, true
	case "RLock":
		return expr + "/r", expr + " (read)", true, false, true
	case "RUnlock":
		return expr + "/r", expr + " (read)", false, true, true
	case "TryLock", "TryRLock":
		return "", "", false, false, true // conditional acquire: not modelled
	}
	return
}

// lockEvent is one lexical lock-state transition inside a body.
type lockEvent struct {
	pos     token.Pos
	key     string
	acquire bool
}

// lockEvents collects the lock-state transitions of root in source order,
// skipping nested function literals (their bodies execute at an unknown
// time). A deferred Unlock produces no event: the lock stays held for the
// rest of the body, which is exactly the guard semantics callers want.
func lockEvents(info *types.Info, root ast.Node) []lockEvent {
	var out []lockEvent
	ast.Inspect(root, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit:
			if x != root {
				return false
			}
		case *ast.DeferStmt:
			return false // deferred unlocks keep the lock held lexically
		case *ast.CallExpr:
			if key, _, acquire, release, ok := syncLockOp(info, x); ok && key != "" {
				if acquire {
					out = append(out, lockEvent{x.Pos(), key, true})
				} else if release {
					out = append(out, lockEvent{x.Pos(), key, false})
				}
			}
		}
		return true
	})
	return out
}

// heldAt replays events lexically preceding pos and returns the keys of
// the mutexes held there. The model is linear — branches are not forked —
// which matches how this codebase writes its critical sections (lockcheck
// separately enforces balanced paths).
func heldAt(events []lockEvent, pos token.Pos) map[string]bool {
	held := make(map[string]bool)
	for _, e := range events {
		if e.pos >= pos {
			break
		}
		if e.acquire {
			held[e.key] = true
		} else {
			delete(held, e.key)
		}
	}
	return held
}

// intersects reports whether the two key sets share an element.
func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// syncPrimitive reports whether t (or the type it points to) is a named
// type from sync or sync/atomic, or a channel. Values of these types are
// synchronization primitives themselves: capturing and using them across
// goroutines is their purpose, not a data race.
func syncPrimitive(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}
