package analysis

import "testing"

// TestIOPurityFixture routes I/O into a root two packages deep: Run ->
// store.Dump -> os.WriteFile. The finding lands on the root declaration,
// and the pure sibling matched by the same Run* spec stays silent.
func TestIOPurityFixture(t *testing.T) {
	a := &Analyzer{
		Name: "iopurity",
		CheckModule: func(m *Module) []Finding {
			return checkIOPurity(m, []RootSpec{
				{Path: "fixture/TestIOPurityFixture/simx", Name: "Run*"},
			})
		},
	}
	runModuleFixture(t, a, []fixtureFile{
		{
			path: "fixture/TestIOPurityFixture/store",
			src: `package store

import "os"

func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
`,
		},
		{
			path: "fixture/TestIOPurityFixture/simx",
			src: `package simx

import "fixture/TestIOPurityFixture/store"

func Run(path string) error { // WANT
	return store.Dump(path, nil)
}

func RunPure(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
`,
		},
	})
}
