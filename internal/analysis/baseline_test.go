package analysis

import (
	"go/token"
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	inTree := filepath.Join(root, "a", "b.go")
	findings := []Finding{
		{Pos: token.Position{Filename: inTree, Line: 10, Column: 2}, Analyzer: "lockcheck", Message: "mu held across call"},
		// Same file/analyzer/message at another line: must dedupe to one key.
		{Pos: token.Position{Filename: inTree, Line: 99, Column: 1}, Analyzer: "lockcheck", Message: "mu held across call"},
		// Outside the root: the key falls back to the absolute path.
		{Pos: token.Position{Filename: filepath.Join(string(filepath.Separator), "elsewhere", "c.go"), Line: 3, Column: 1}, Analyzer: "hotalloc", Message: "make in hot function"},
	}
	path := filepath.Join(root, ".rtreelint-baseline")
	if err := WriteBaseline(path, root, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("baseline has %d keys, want 2 (deduplicated)", b.Len())
	}
	for _, f := range findings {
		if !b.Has(BaselineKey(root, f)) {
			t.Errorf("baseline lacks key for %s", f)
		}
	}
	// Keys are line-insensitive: the same finding after unrelated edits
	// above it stays baselined.
	moved := findings[0]
	moved.Pos.Line = 500
	if !b.Has(BaselineKey(root, moved)) {
		t.Error("moving a finding to another line un-baselined it")
	}
	// A different message resurfaces.
	changed := findings[0]
	changed.Message = "mu held across other call"
	if b.Has(BaselineKey(root, changed)) {
		t.Error("a changed message must not stay baselined")
	}
}

func TestBaselineEmptyAndMissing(t *testing.T) {
	b, err := LoadBaseline("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 || b.Has("anything") {
		t.Error("empty-path baseline must accept nothing")
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("a missing baseline file must be an error, not an empty baseline")
	}
}

func TestBaselineSkipsComments(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "bl")
	f := Finding{Pos: token.Position{Filename: filepath.Join(root, "x.go"), Line: 1, Column: 1}, Analyzer: "errcheck", Message: "discarded error"}
	if err := WriteBaseline(path, root, []Finding{f}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// The written file carries a comment header; only the finding counts.
	if b.Len() != 1 {
		t.Errorf("baseline has %d keys, want 1 (header comments ignored)", b.Len())
	}
	if !b.Has(BaselineKey(root, f)) {
		t.Error("round-tripped finding not found")
	}
}
