package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	inTree := filepath.Join(root, "a", "b.go")
	findings := []Finding{
		{Pos: token.Position{Filename: inTree, Line: 10, Column: 2}, Analyzer: "lockcheck", Message: "mu held across call"},
		// Same file/analyzer/message at another line: must dedupe to one key.
		{Pos: token.Position{Filename: inTree, Line: 99, Column: 1}, Analyzer: "lockcheck", Message: "mu held across call"},
		// Outside the root: the key falls back to the absolute path.
		{Pos: token.Position{Filename: filepath.Join(string(filepath.Separator), "elsewhere", "c.go"), Line: 3, Column: 1}, Analyzer: "hotalloc", Message: "make in hot function"},
	}
	path := filepath.Join(root, ".rtreelint-baseline")
	if err := WriteBaseline(path, root, findings); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Errorf("baseline has %d keys, want 2 (deduplicated)", b.Len())
	}
	for _, f := range findings {
		if !b.Has(BaselineKey(root, f)) {
			t.Errorf("baseline lacks key for %s", f)
		}
	}
	// Keys are line-insensitive: the same finding after unrelated edits
	// above it stays baselined.
	moved := findings[0]
	moved.Pos.Line = 500
	if !b.Has(BaselineKey(root, moved)) {
		t.Error("moving a finding to another line un-baselined it")
	}
	// A different message resurfaces.
	changed := findings[0]
	changed.Message = "mu held across other call"
	if b.Has(BaselineKey(root, changed)) {
		t.Error("a changed message must not stay baselined")
	}
}

// TestBaselineLegacyMigration reads a baseline file hand-written in the
// pre-hash format ("path: analyzer: message") and asserts Match still
// accepts the corresponding findings: repositories carry baseline files
// across tool upgrades, so the old format must keep working unchanged.
func TestBaselineLegacyMigration(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, ".rtreelint-baseline")
	legacy := "# legacy-format baseline\n" +
		"a/b.go: lockcheck: mu held across call\n" +
		"a/c.go: hotalloc: make([]int) in hot function\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("baseline has %d keys, want 2", b.Len())
	}
	held := Finding{Pos: token.Position{Filename: filepath.Join(root, "a", "b.go"), Line: 7, Column: 2}, Analyzer: "lockcheck", Message: "mu held across call"}
	alloc := Finding{Pos: token.Position{Filename: filepath.Join(root, "a", "c.go"), Line: 3, Column: 1}, Analyzer: "hotalloc", Message: "make([]int) in hot function"}
	for _, f := range []Finding{held, alloc} {
		if !b.Match(root, f) {
			t.Errorf("legacy baseline entry does not match finding %s", f)
		}
		// The new-format key alone must NOT match a legacy file (Has takes
		// raw keys; migration happens only through Match).
		if b.Has(BaselineKey(root, f)) {
			t.Errorf("hashed key unexpectedly present in legacy file for %s", f)
		}
	}
	other := held
	other.Message = "mu held across other call"
	if b.Match(root, other) {
		t.Error("a different message must not match a legacy entry")
	}
	// And the converse: a new-format file matches via Match as well.
	if err := WriteBaseline(path, root, []Finding{held}); err != nil {
		t.Fatal(err)
	}
	if b, err = LoadBaseline(path); err != nil {
		t.Fatal(err)
	}
	if !b.Match(root, held) {
		t.Error("hashed-format baseline entry does not match its finding")
	}
	if b.Match(root, other) {
		t.Error("hashed-format entry must not match a different message")
	}
}

// TestBaselineHashedMatchIgnoresMessageTail pins the matching contract of
// the hashed format: the message after "analyzer[hash]: " is for humans;
// membership is decided by file, analyzer, and hash.
func TestBaselineHashedMatchIgnoresMessageTail(t *testing.T) {
	root := t.TempDir()
	f := Finding{Pos: token.Position{Filename: filepath.Join(root, "x.go"), Line: 1, Column: 1}, Analyzer: "errcheck", Message: "discarded error: os.Remove"}
	key := BaselineKey(root, f)
	// Truncate the display message in the file; the entry must still match.
	trimmed := key[:strings.Index(key, "]: ")+3] + "…"
	path := filepath.Join(root, "bl")
	if err := os.WriteFile(path, []byte(trimmed+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Match(root, f) {
		t.Error("hashed entry with edited message tail must still match")
	}
}

func TestBaselineEmptyAndMissing(t *testing.T) {
	b, err := LoadBaseline("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 || b.Has("anything") {
		t.Error("empty-path baseline must accept nothing")
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("a missing baseline file must be an error, not an empty baseline")
	}
}

func TestBaselineSkipsComments(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "bl")
	f := Finding{Pos: token.Position{Filename: filepath.Join(root, "x.go"), Line: 1, Column: 1}, Analyzer: "errcheck", Message: "discarded error"}
	if err := WriteBaseline(path, root, []Finding{f}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// The written file carries a comment header; only the finding counts.
	if b.Len() != 1 {
		t.Errorf("baseline has %d keys, want 1 (header comments ignored)", b.Len())
	}
	if !b.Has(BaselineKey(root, f)) {
		t.Error("round-tripped finding not found")
	}
}
