package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// lockcheck tracks sync.Mutex/RWMutex acquisition through each function
// body and reports two classes of bugs the buffer and storage layers are
// prone to:
//
//   - a return path (or the function end) reached with a lock still held
//     and no deferred Unlock pending;
//   - a lock held across a call whose transitive facts include doesIO or
//     mayBlock — the call-graph facts make this work across package
//     boundaries and interface dispatch (e.g. a DiskManager.ReadPage
//     behind two wrappers).
//
// Direct sync.* Lock/Unlock calls are modelled as state transitions, not
// as blocking callees, so ordered multi-mutex acquisition inside one
// function does not self-report. The scan is lexical and conservative:
// branches fork the lock state and merge by intersection, loops are
// scanned once with the entry state, and closure bodies are skipped
// (a deferred closure's unlock is not credited — prefer the direct
// `defer mu.Unlock()` form this codebase uses).
func checkLock(m *Module) []Finding {
	var out []Finding
	for _, n := range m.Graph.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		s := &lockScanner{pkg: n.Pkg, node: n}
		exit, term := s.block(n.Decl.Body.List, nil)
		if !term {
			s.leak(n.Decl.Body.Rbrace, exit, "function end")
		}
		out = append(out, s.findings...)
	}
	return out
}

// heldLock is the state of one acquired lock on the current path.
type heldLock struct {
	display  string    // "s.mu" or "s.mu (read)"
	pos      token.Pos // acquisition site
	deferred bool      // a matching deferred Unlock is pending
}

type lockScanner struct {
	pkg      *Package
	node     *FuncNode
	findings []Finding
}

func (s *lockScanner) report(pos token.Pos, format string, args ...any) {
	s.findings = append(s.findings, Finding{
		Pos:      s.pkg.Fset.Position(pos),
		Analyzer: "lockcheck",
		Message:  fmt.Sprintf(format, args...),
	})
}

// leak reports every lock still held (without a pending deferred Unlock)
// when a path leaves the function.
func (s *lockScanner) leak(pos token.Pos, held map[string]*heldLock, where string) {
	for _, key := range sortedKeys(held) {
		l := held[key]
		if !l.deferred {
			line := s.pkg.Fset.Position(l.pos).Line
			s.report(pos, "%s reached with %s still locked (acquired at line %d; no Unlock on this path)", where, l.display, line)
		}
	}
}

// block scans a statement list with the given entry state and returns the
// exit state plus whether the path terminates (return/branch).
func (s *lockScanner) block(stmts []ast.Stmt, held map[string]*heldLock) (map[string]*heldLock, bool) {
	for _, st := range stmts {
		var term bool
		held, term = s.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *lockScanner) stmt(st ast.Stmt, held map[string]*heldLock) (map[string]*heldLock, bool) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if key, display, acquire, release, ok := s.lockOp(call); ok {
				if acquire {
					if _, dup := held[key]; dup {
						s.report(call.Pos(), "%s locked again while already held (self-deadlock)", display)
					}
					held = copyHeld(held)
					held[key] = &heldLock{display: display, pos: call.Pos()}
				} else if release {
					held = copyHeld(held)
					delete(held, key)
				}
				return held, false
			}
		}
		s.checkBlocking(x, held)
		return held, false

	case *ast.DeferStmt:
		if key, _, _, release, ok := s.lockOp(x.Call); ok && release {
			if l := held[key]; l != nil {
				held = copyHeld(held)
				held[key] = &heldLock{display: l.display, pos: l.pos, deferred: true}
			}
			return held, false
		}
		// Only the deferred call's arguments evaluate now; the call
		// itself runs at return time, when the lock state is unknown.
		for _, a := range x.Call.Args {
			s.checkBlocking(a, held)
		}
		return held, false

	case *ast.ReturnStmt:
		for _, r := range x.Results {
			s.checkBlocking(r, held)
		}
		s.leak(x.Pos(), held, "return")
		return held, true

	case *ast.BranchStmt:
		return held, true

	case *ast.BlockStmt:
		return s.block(x.List, held)

	case *ast.IfStmt:
		if x.Init != nil {
			held, _ = s.stmt(x.Init, held)
		}
		s.checkBlocking(x.Cond, held)
		bodyOut, bodyTerm := s.block(x.Body.List, copyHeld(held))
		elseOut, elseTerm := held, false
		if x.Else != nil {
			elseOut, elseTerm = s.stmt(x.Else, copyHeld(held))
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseOut, false
		case elseTerm:
			return bodyOut, false
		default:
			return intersectHeld(bodyOut, elseOut), false
		}

	case *ast.ForStmt:
		if x.Init != nil {
			held, _ = s.stmt(x.Init, held)
		}
		if x.Cond != nil {
			s.checkBlocking(x.Cond, held)
		}
		if x.Post != nil {
			s.checkBlocking(x.Post, held)
		}
		s.block(x.Body.List, copyHeld(held)) // body findings; 0-iteration exit keeps entry state
		return held, false

	case *ast.RangeStmt:
		s.checkBlocking(x.X, held)
		s.block(x.Body.List, copyHeld(held))
		return held, false

	case *ast.SwitchStmt:
		if x.Init != nil {
			held, _ = s.stmt(x.Init, held)
		}
		if x.Tag != nil {
			s.checkBlocking(x.Tag, held)
		}
		return s.mergeClauses(x.Body, held, true)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			held, _ = s.stmt(x.Init, held)
		}
		return s.mergeClauses(x.Body, held, true)

	case *ast.SelectStmt:
		if len(held) > 0 {
			s.leakAcross(x.Pos(), held, "select statement")
		}
		return s.mergeClauses(x.Body, held, false)

	case *ast.LabeledStmt:
		return s.stmt(x.Stmt, held)

	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			s.checkBlocking(a, held)
		}
		return held, false

	case nil:
		return held, false

	default:
		s.checkBlocking(st, held)
		return held, false
	}
}

// mergeClauses scans each case/comm clause with a forked state and merges
// the survivors by intersection. Without a default clause the zero-match
// path keeps the entry state (switch); a select with no default always
// takes some clause.
func (s *lockScanner) mergeClauses(body *ast.BlockStmt, held map[string]*heldLock, zeroMatchFallsThrough bool) (map[string]*heldLock, bool) {
	var outs []map[string]*heldLock
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				s.checkBlocking(e, held)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				held2, _ := s.stmt(c.Comm, copyHeld(held))
				out, term := s.block(c.Body, held2)
				if !term {
					outs = append(outs, out)
				}
				continue
			}
			stmts = c.Body
		}
		out, term := s.block(stmts, copyHeld(held))
		if !term {
			outs = append(outs, out)
		}
	}
	if zeroMatchFallsThrough && !hasDefault {
		outs = append(outs, held)
	}
	if len(outs) == 0 {
		return held, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersectHeld(merged, o)
	}
	return merged, false
}

// checkBlocking reports calls and channel operations under node that are
// risky while any lock is held: transitive doesIO/mayBlock callees
// (except direct sync.* operations) and channel sends/receives.
func (s *lockScanner) checkBlocking(node ast.Node, held map[string]*heldLock) {
	if len(held) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // not executed here
		case *ast.CallExpr:
			site := s.node.SiteAt(x.Pos())
			if site == nil || site.SyncAcq || site.SyncRel {
				return true
			}
			if _, _, _, _, isLockOp := s.lockOp(x); isLockOp {
				return true
			}
			risky := site.Facts() & (FactDoesIO | FactMayBlock)
			if risky != 0 {
				s.leakAcross(x.Pos(), held, fmt.Sprintf("call to %s (%s)", site.Desc, risky))
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.leakAcross(x.Pos(), held, "channel receive")
			}
		case *ast.SendStmt:
			s.leakAcross(x.Pos(), held, "channel send")
		}
		return true
	})
}

// leakAcross reports every held lock spanning one risky operation.
func (s *lockScanner) leakAcross(pos token.Pos, held map[string]*heldLock, what string) {
	var names []string
	for _, key := range sortedKeys(held) {
		names = append(names, held[key].display)
	}
	s.report(pos, "%s held across %s", strings.Join(names, ", "), what)
}

// lockOp classifies a call as a direct sync.Mutex/RWMutex operation.
func (s *lockScanner) lockOp(call *ast.CallExpr) (key, display string, acquire, release, ok bool) {
	return syncLockOp(s.pkg.Info, call)
}

func copyHeld(held map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock, len(held))
	for k, v := range held {
		c := *v
		out[k] = &c
	}
	return out
}

// intersectHeld keeps locks held on both paths; a pending deferred Unlock
// survives only if both paths registered it.
func intersectHeld(a, b map[string]*heldLock) map[string]*heldLock {
	out := make(map[string]*heldLock)
	for k, la := range a {
		if lb, ok := b[k]; ok {
			c := *la
			c.deferred = la.deferred && lb.deferred
			out[k] = &c
		}
	}
	return out
}

func sortedKeys(held map[string]*heldLock) []string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
