package analysis

import "testing"

func TestFloatCmpFlagsScalarComparison(t *testing.T) {
	runFixture(t, checkFloatCmp, "floatcmp", `
package fixture

func eq(a, b float64) bool  { return a == b } // WANT
func neq(a, b float64) bool { return a != b } // WANT
func eq32(a, b float32) bool { return a == b } // WANT
func zeroGuard(a float64) bool { return a == 0 } // WANT
`)
}

func TestFloatCmpFlagsCompositeComparison(t *testing.T) {
	runFixture(t, checkFloatCmp, "floatcmp", `
package fixture

type rect struct{ minX, minY, maxX, maxY float64 }
type pair struct{ r rect }

func eqRect(a, b rect) bool { return a == b } // WANT
func eqNested(a, b pair) bool { return a != b } // WANT
func eqArray(a, b [4]float64) bool { return a == b } // WANT
`)
}

func TestFloatCmpIgnoresExactTypesAndOrderings(t *testing.T) {
	runFixture(t, checkFloatCmp, "floatcmp", `
package fixture

type id struct{ hi, lo uint64 }

func eqInt(a, b int) bool       { return a == b }
func eqStr(a, b string) bool    { return a == b }
func eqStruct(a, b id) bool     { return a == b }
func less(a, b float64) bool    { return a < b }
func geq(a, b float64) bool     { return a >= b }
func arith(a, b float64) float64 { return a + b }
`)
}

func TestFloatCmpHonorsAllowAnnotation(t *testing.T) {
	runFixture(t, checkFloatCmp, "floatcmp", `
package fixture

func sameLine(a, b float64) bool { return a == b } //lint:allow floatcmp identity is intended
func lineAbove(a, b float64) bool {
	//lint:allow floatcmp clamped to an exact constant upstream
	return a == b
}
func multi(a, b float64) bool { return a == b } //lint:allow errcheck,floatcmp both excused
func wrongName(a, b float64) bool { return a == b } //lint:allow probrange wrong analyzer  // WANT
`)
}
