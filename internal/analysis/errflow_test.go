package analysis

import (
	"testing"
)

// TestErrFlowPostCommitReturn seeds the second PR 7 review bug: after
// the commit point, checkpoint-stage errors (sync, checkpoint) returned
// as the operation error, both bare and wrapped through an
// error-forwarding call.
func TestErrFlowPostCommitReturn(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "errflow"), []fixtureFile{
		{path: "fixture/protofix", src: protoPrelude + `
func wrap(err error) error { return err }

func (t *Tree) commitUpdate(pages []int, meta []byte) error {
	if _, err := t.wal.AppendBatch(pages, meta); err != nil {
		return err
	}
	if err := t.pool.FlushDirty(); err != nil {
		return err
	}
	if err := t.dm.WriteMeta(meta); err != nil {
		return err
	}
	if err := syncManager(t.dm); err != nil {
		return err // WANT
	}
	if err := t.wal.Checkpoint(1); err != nil {
		return wrap(err) // WANT
	}
	return nil
}
`},
	})
}

// TestErrFlowCleanProtocol is the negative control: pre-commit error
// plumbing and the sticky-CheckpointErr pattern raise nothing.
func TestErrFlowCleanProtocol(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "errflow"), []fixtureFile{
		{path: "fixture/protofix", src: protoPrelude + goodCommit + goodRecover},
	})
}

// TestErrFlowDirectReturn covers the tail-return form: returning the
// checkpoint call's error expression directly.
func TestErrFlowDirectReturn(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "errflow"), []fixtureFile{
		{path: "fixture/protofix", src: protoPrelude + `
func (t *Tree) commitUpdate(pages []int, meta []byte) error {
	if _, err := t.wal.AppendBatch(pages, meta); err != nil {
		return err
	}
	if err := t.dm.WriteMeta(meta); err != nil {
		return err
	}
	return t.wal.Checkpoint(1) // WANT
}
`},
	})
}

// TestRepoErrFlowCommitUpdate is the real-repo assertion: commitUpdate
// genuinely has a commit site (the check is not vacuous) and its
// checkpoint-stage errors flow to the sticky CheckpointErr path, so
// errflow stays silent.
func TestRepoErrFlowCommitUpdate(t *testing.T) {
	m := loadRepoModule(t)
	e := m.Effects()
	n := repoEffNode(t, m, "storage.(*PagedTree).commitUpdate")

	var commits bool
	for _, c := range n.Calls {
		if !c.Ref && c.Expr != nil && e.SiteEffects(c).Has(EffCommit) {
			commits = true
		}
	}
	if !commits {
		t.Fatal("commitUpdate has no Commit-effect call site — errflow would be vacuous on it")
	}
	if fs := errFlowFunc(RuleByName("no-post-commit-error-return"), e, n); len(fs) != 0 {
		t.Errorf("errflow findings on commitUpdate: %v", fs)
	}
	if fs := checkErrFlow(m); len(fs) != 0 {
		t.Errorf("errflow findings on the repository: %v", fs)
	}
}
