package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// WriteSARIF renders findings as a SARIF 2.1.0 log, the interchange
// format GitHub code scanning ingests. The writer is deliberately
// minimal and static — stdlib encoding/json over fixed structs, no
// external SARIF dependency — and emits exactly the fields the upload
// endpoint requires: the tool driver with one reportingDescriptor per
// analyzer, and one result per finding with a physical location whose
// URI is module-root-relative with forward slashes.
//
// Output is deterministic for a given findings slice (rules in
// Analyzers() order, results in the sorted order Run returns), so the
// golden test can compare bytes.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifText{f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "rtreelint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}
