package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkFloatCmp flags == and != whose operands are floating point, or
// composite values (structs, arrays) that contain floating-point fields —
// comparing geom.Rect values with == compares four float64s at once.
//
// Exact float comparison is occasionally the right thing (division-by-zero
// guards, values clamped to an exact constant on a prior line, identity
// checks like Rect.Equal); those sites carry a lint:allow annotation so
// the allowlist lives next to the code it excuses. Everything else should
// route through geom.ApproxEqual (scalars) or Rect.AlmostEqual.
func checkFloatCmp(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := operandType(pkg, be.X)
			ty := operandType(pkg, be.Y)
			if tx == nil && ty == nil {
				return true
			}
			if containsFloat(tx, nil) || containsFloat(ty, nil) {
				t := tx
				if t == nil {
					t = ty
				}
				out = append(out, Finding{
					Pos:      pkg.Fset.Position(be.OpPos),
					Analyzer: "floatcmp",
					Message: "exact " + be.Op.String() + " on " + t.String() +
						" operands; use geom.ApproxEqual (or Rect.AlmostEqual), or annotate with //lint:allow floatcmp",
				})
			}
			return true
		})
	}
	return out
}

// operandType returns the (default) type of expr, or nil when the
// typechecker has none (e.g. the untyped nil).
func operandType(pkg *Package, expr ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	return types.Default(tv.Type)
}

// containsFloat reports whether comparing two values of type t compares
// floating-point numbers: t is a float, a complex number, or a struct or
// array with such an element. seen guards against recursive named types.
func containsFloat(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsFloat(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsFloat(u.Elem(), seen)
	}
	return false
}
