package analysis

import "testing"

func TestProbRangeFlagsRawArithmeticReturns(t *testing.T) {
	runFixture(t, checkProbRange, "probrange", `
package fixture

func AccessProb(w, h, qx, qy float64) float64 {
	return (w + qx) * (h + qy) // WANT
}

func overlapProb(a, b float64) float64 {
	return a / b // WANT
}

func hitRatio(hits, total float64) float64 {
	return hits / total // WANT
}
`)
}

func TestProbRangeFlagsArithmeticThroughLocals(t *testing.T) {
	runFixture(t, checkProbRange, "probrange", `
package fixture

func cornerProb(w, qx float64) float64 {
	p := w + qx
	return p // WANT
}

func chainedProb(w, qx float64) float64 {
	p := w * qx
	q := p
	return q // WANT
}
`)
}

func TestProbRangeAllowsClampedAndDelegated(t *testing.T) {
	runFixture(t, checkProbRange, "probrange", `
package fixture

import "math"

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }

func minProb(w, h float64) float64 { return math.Min(w*h, 1) }

func helperProb(v float64) float64 { return clamp01(v * 2) }

func reassignedProb(w float64) float64 {
	p := w * 2
	p = math.Min(p, 1)
	return p
}

func constProb() float64 { return 1 }

func delegatedProb(w, h float64) float64 { return minProb(w, h) }

// scale is arithmetic but not probability-valued: the analyzer must not
// reach outside its naming contract.
func scale(v float64) float64 { return v * 2 }

func annotatedProb(w float64) float64 {
	return w * w //lint:allow probrange caller clamps; squaring a probability stays in range
}
`)
}
