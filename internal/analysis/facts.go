package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// FactSet is a bitmask of behavioural facts about a function. Facts are
// computed bottom-up over the call graph's strongly connected components,
// so they are transitive: a function has doesIO if anything it can reach
// does I/O, across package boundaries and interface dispatch.
type FactSet uint16

const (
	// FactDoesIO: the function can reach a disk/OS/network operation.
	FactDoesIO FactSet = 1 << iota
	// FactMayBlock: the function can block (channel ops, lock waits,
	// sleeps, I/O).
	FactMayBlock
	// FactAcquiresLock: the function can acquire a sync.Mutex/RWMutex.
	FactAcquiresLock
	// FactAllocates: the function can allocate on the heap.
	FactAllocates
	// FactSpawnsGoroutine: the function can start a goroutine (a `go`
	// statement anywhere in its transitive call tree). sharecheck uses
	// this to treat function literals handed to spawning callees as
	// concurrently-executing bodies.
	FactSpawnsGoroutine
	// FactNondet: the function can observe a nondeterminism source:
	// map iteration order, wall-clock time (time.Now/Since/Until),
	// the global math/rand[/v2] stream, or a multi-way select.
	// determcheck reports where this fact reaches a result sink.
	FactNondet
	// FactUsesAtomic: the function can perform a sync/atomic operation.
	// sharecheck accepts atomics (like acquiresLock) as a guard for
	// captured-value method calls.
	FactUsesAtomic

	factEnd
)

var factNames = map[FactSet]string{
	FactDoesIO:          "doesIO",
	FactMayBlock:        "mayBlock",
	FactAcquiresLock:    "acquiresLock",
	FactAllocates:       "allocates",
	FactSpawnsGoroutine: "spawnsGoroutine",
	FactNondet:          "nondet",
	FactUsesAtomic:      "usesAtomic",
}

// String renders the set as "doesIO|mayBlock" ("pure" when empty).
func (f FactSet) String() string {
	if f == 0 {
		return "pure"
	}
	var parts []string
	for bit := FactSet(1); bit < factEnd; bit <<= 1 {
		if f&bit != 0 {
			parts = append(parts, factNames[bit])
		}
	}
	return strings.Join(parts, "|")
}

// Facts returns the individual bits of the set.
func (f FactSet) Facts() []FactSet {
	var out []FactSet
	for bit := FactSet(1); bit < factEnd; bit <<= 1 {
		if f&bit != 0 {
			out = append(out, bit)
		}
	}
	return out
}

// stdFacts classifies a non-module (stdlib) function into intrinsic
// facts, and reports whether it is a direct sync lock acquisition or
// release. The table is deliberately coarse — anything in os/net/syscall
// counts as I/O — because iopurity-style checks want "cannot possibly
// touch the disk", not a precise effect system.
func stdFacts(fn *types.Func) (facts FactSet, acquire, release bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return 0, false, false
	}
	path, name := pkg.Path(), fn.Name()
	switch {
	case path == "sync":
		switch recvBase(fn) {
		case "Mutex", "RWMutex":
			switch name {
			case "Lock", "RLock":
				return FactAcquiresLock | FactMayBlock, true, false
			case "TryLock", "TryRLock":
				return FactAcquiresLock, false, false // conditional: not modelled as held
			case "Unlock", "RUnlock":
				return 0, false, true
			}
		case "WaitGroup", "Cond":
			if name == "Wait" {
				return FactMayBlock, false, false
			}
		case "Once":
			if name == "Do" {
				return FactMayBlock, false, false
			}
		}
	case path == "sync/atomic":
		// Every package function and every method of the typed atomics
		// (atomic.Uint64.Add, ...) is an atomic operation.
		return FactUsesAtomic, false, false
	case path == "time":
		switch name {
		case "Sleep":
			return FactMayBlock, false, false
		case "Now", "Since", "Until":
			// Wall-clock reads are nondeterminism sources for determcheck.
			return FactNondet, false, false
		}
	case path == "math/rand" || path == "math/rand/v2":
		// Package-level draw functions use the shared global stream —
		// nondeterministic across runs and goroutine interleavings.
		// Constructors (New, NewPCG, NewSource, ...) and methods on an
		// explicitly seeded *Rand are the deterministic per-replica
		// streams the simulator depends on and stay fact-free.
		if recvBase(fn) == "" && !strings.HasPrefix(name, "New") && name != "Seed" {
			return FactNondet, false, false
		}
	case path == "os" || strings.HasPrefix(path, "os/"),
		path == "syscall" || strings.HasPrefix(path, "syscall/"),
		path == "net" || strings.HasPrefix(path, "net/"),
		path == "io/ioutil":
		return FactDoesIO | FactMayBlock, false, false
	case path == "fmt":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") ||
			strings.HasPrefix(name, "Scan") || strings.HasPrefix(name, "Fscan") {
			return FactDoesIO | FactMayBlock, false, false
		}
	case path == "log" || strings.HasPrefix(path, "log/"):
		return FactDoesIO | FactMayBlock, false, false
	case path == "bufio":
		// Flushing/reading forwards to the wrapped reader/writer; the
		// wrapped value's origin carries the I/O fact where it matters.
	}
	return 0, false, false
}

// witness records how a function acquired one fact: through a call into
// callee, or (callee == nil) through an intrinsic in its own body.
type witness struct {
	callee *FuncNode
	pos    token.Pos
	what   string
}

// computeFacts condenses the graph into SCCs (Tarjan) and propagates
// facts bottom-up: an SCC's fact set is the union of its members'
// intrinsics and of every fact of every callee outside the SCC. Tarjan
// emits SCCs in reverse topological order of the condensation — every
// SCC only after all SCCs it can reach — so a single pass suffices.
func (g *CallGraph) computeFacts() {
	index := 0
	var stack []*FuncNode
	var sccs [][]*FuncNode
	var connect func(n *FuncNode)
	connect = func(n *FuncNode) {
		index++
		n.index, n.lowlink = index, index
		stack = append(stack, n)
		n.onStack = true
		for _, c := range n.Calls {
			for _, t := range c.Targets {
				if t.index == 0 {
					connect(t)
					if t.lowlink < n.lowlink {
						n.lowlink = t.lowlink
					}
				} else if t.onStack && t.index < n.lowlink {
					n.lowlink = t.index
				}
			}
		}
		if n.lowlink == n.index {
			var scc []*FuncNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				m.onStack = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range g.order {
		if n.index == 0 {
			connect(n)
		}
	}

	for _, scc := range sccs {
		inSCC := make(map[*FuncNode]bool, len(scc))
		for _, m := range scc {
			inSCC[m] = true
		}
		var facts FactSet
		for _, m := range scc {
			for _, in := range m.Intrinsics {
				facts |= in.Fact
			}
			if len(m.Allocs) > 0 {
				facts |= FactAllocates
			}
			for _, c := range m.Calls {
				facts |= c.Std
				for _, t := range c.Targets {
					if !inSCC[t] {
						facts |= t.Facts
					}
				}
			}
		}
		for _, m := range scc {
			m.Facts = facts
		}
		assignWitnesses(scc, inSCC, facts)
	}
}

// assignWitnesses records, for every member of an SCC and every fact the
// SCC carries, one concrete reason: an own intrinsic or allocation if the
// member has one, else a call to a function whose reason is already
// known. Iterating until fixpoint threads witnesses through cycles.
func assignWitnesses(scc []*FuncNode, inSCC map[*FuncNode]bool, facts FactSet) {
	for _, fact := range facts.Facts() {
		resolved := make(map[*FuncNode]bool, len(scc))
		for _, m := range scc {
			if w := ownWitness(m, fact); w != nil {
				m.via[fact] = w
				resolved[m] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, m := range scc {
				if resolved[m] {
					continue
				}
			calls:
				for _, c := range m.Calls {
					for _, t := range c.Targets {
						if inSCC[t] && resolved[t] {
							m.via[fact] = &witness{callee: t, pos: c.Pos, what: c.Desc}
							resolved[m] = true
							changed = true
							break calls
						}
					}
				}
			}
		}
	}
}

// ownWitness finds a reason for the fact within the function itself: an
// intrinsic, an allocation site, or a call to an outside function already
// carrying the fact.
func ownWitness(m *FuncNode, fact FactSet) *witness {
	for _, in := range m.Intrinsics {
		if in.Fact&fact != 0 {
			return &witness{pos: in.Pos, what: in.What}
		}
	}
	if fact == FactAllocates && len(m.Allocs) > 0 {
		a := m.Allocs[0]
		return &witness{pos: a.Pos, what: a.What}
	}
	for _, c := range m.Calls {
		for _, t := range c.Targets {
			if t.Facts&fact != 0 && t.via[fact] != nil {
				return &witness{callee: t, pos: c.Pos, what: c.Desc}
			}
		}
	}
	return nil
}

// FactChain explains how fn acquired fact as a call chain ending at the
// intrinsic source, one "who: why at file:line" entry per hop.
func (g *CallGraph) FactChain(n *FuncNode, fact FactSet) []string {
	var out []string
	seen := make(map[*FuncNode]bool)
	for n != nil && !seen[n] {
		seen[n] = true
		w := n.via[fact]
		if w == nil {
			out = append(out, n.String())
			break
		}
		pos := n.Pkg.Fset.Position(w.pos)
		loc := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		if w.callee == nil {
			out = append(out, fmt.Sprintf("%s: %s at %s", n, w.what, loc))
			break
		}
		out = append(out, fmt.Sprintf("%s: calls %s at %s", n, w.callee, loc))
		n = w.callee
	}
	return out
}

// RootSpec names a set of root functions for reachability-based checks.
type RootSpec struct {
	// Path is the import path holding the roots.
	Path string
	// Recv is the receiver's named type without pointer ("Tree"); ""
	// matches package-level functions only, "*" matches any receiver.
	Recv string
	// Name is the function name; a trailing "*" matches a prefix.
	Name string
}

func (s RootSpec) String() string {
	recv := ""
	if s.Recv != "" && s.Recv != "*" {
		recv = "(*" + s.Recv + ")."
	}
	base := s.Path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return base + "." + recv + s.Name
}

// Resolve returns the nodes matched by the spec, in graph order.
func (g *CallGraph) Resolve(spec RootSpec) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.order {
		if n.Pkg.ImportPath != spec.Path {
			continue
		}
		switch spec.Recv {
		case "*":
		case "":
			if recvBase(n.Fn) != "" {
				continue
			}
		default:
			if recvBase(n.Fn) != spec.Recv {
				continue
			}
		}
		if pre, ok := strings.CutSuffix(spec.Name, "*"); ok {
			if !strings.HasPrefix(n.Fn.Name(), pre) {
				continue
			}
		} else if n.Fn.Name() != spec.Name {
			continue
		}
		out = append(out, n)
	}
	return out
}

// ResolveName matches nodes by display name for the -facts flag: exact
// display name ("buffer.(*Pool).Get"), bare function name ("Get"), or a
// display-name suffix ("(*Pool).Get").
func (g *CallGraph) ResolveName(name string) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.order {
		d := n.String()
		if d == name || n.Fn.Name() == name || strings.HasSuffix(d, name) {
			out = append(out, n)
		}
	}
	return out
}

// Reachable walks calls and value references breadth-first from roots and
// returns every node reached, mapped to the node it was first reached
// from (roots map to nil).
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]*FuncNode {
	parent := make(map[*FuncNode]*FuncNode)
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := parent[r]; !ok {
			parent[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Calls {
			for _, t := range c.Targets {
				if _, ok := parent[t]; !ok {
					parent[t] = n
					queue = append(queue, t)
				}
			}
		}
	}
	return parent
}

// RootPath renders the reach chain from a root to n ("a -> b -> c").
func RootPath(parent map[*FuncNode]*FuncNode, n *FuncNode) string {
	var chain []string
	for at := n; at != nil; at = parent[at] {
		chain = append(chain, at.String())
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " -> ")
}

// Module bundles the loaded packages with their call graph for
// module-scoped analyzers.
type Module struct {
	Pkgs  []*Package
	Graph *CallGraph

	effects *Effects
}

// NewModule builds the call graph over the given packages.
func NewModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs, Graph: NewCallGraph(pkgs)}
}

// Effects returns the module's effect store, built on first use and
// shared by durcheck, errflow, and the -facts dump.
func (m *Module) Effects() *Effects {
	if m.effects == nil {
		m.effects = NewEffects(m.Graph)
	}
	return m.effects
}
