package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot locates the module root of this repository from the test's
// working directory.
func repoRoot(t testing.TB) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestLoadModuleTypechecksWholeRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the full module (stdlib from source)")
	}
	pkgs, err := LoadModule(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded incompletely", p.ImportPath)
		}
	}
	for _, want := range []string{
		"rtreebuf",
		"rtreebuf/internal/geom",
		"rtreebuf/internal/core",
		"rtreebuf/internal/rtree",
		"rtreebuf/internal/buffer",
		"rtreebuf/internal/analysis",
		"rtreebuf/cmd/rtreelint",
	} {
		if byPath[want] == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	// Cross-package types must be shared, not re-checked: the geom.Rect
	// used by core must be the same object the geom package exports.
	core, geom := byPath["rtreebuf/internal/core"], byPath["rtreebuf/internal/geom"]
	if core != nil && geom != nil {
		var imported bool
		for _, imp := range core.Types.Imports() {
			if imp == geom.Types {
				imported = true
			}
		}
		if !imported {
			t.Error("core does not share geom's *types.Package; the importer re-checked it")
		}
	}
}

// TestRepoIsLintClean is the enforcement test: the repository must stay
// clean under its own analyzers. A failure here means either a genuine
// violation slipped in (fix it) or an intentional exception lacks its
// lint:allow annotation (annotate it, with a reason).
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the full module (stdlib from source)")
	}
	pkgs, err := LoadModule(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", f)
	}
}

func TestFindModuleRootFailsOutsideModules(t *testing.T) {
	if _, err := FindModuleRoot(os.TempDir()); err == nil {
		// A go.mod above the system temp dir would be surprising but legal;
		// only fail when the walk clearly escaped to the filesystem root.
		if _, statErr := os.Stat(filepath.Join(string(os.PathSeparator), "go.mod")); statErr == nil {
			t.Skip("go.mod at filesystem root")
		}
		t.Error("FindModuleRoot found a module above the temp directory")
	}
}

func TestAnalyzerTargets(t *testing.T) {
	a := &Analyzer{Targets: []string{"rtreebuf/internal/geom", "rtreebuf/cmd/..."}}
	for path, want := range map[string]bool{
		"rtreebuf/internal/geom": true,
		"rtreebuf/internal/core": false,
		"rtreebuf/cmd":           true,
		"rtreebuf/cmd/rtreelint": true,
		"rtreebuf/cmdextra":      false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	if !(&Analyzer{}).AppliesTo("anything") {
		t.Error("empty target list must apply everywhere")
	}
}
