package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"sync"
	"testing"
)

// fixturePkg typechecks one fixture source file as its own package, using
// the same loader machinery as LoadModule (stdlib imports are resolved
// from source). Lines containing the marker comment "// WANT" declare
// where findings are expected.
func fixturePkg(t *testing.T, src string) *Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if fixtureFset == nil {
		fixtureFset = token.NewFileSet()
	}
	if fixtureImp == nil {
		fixtureImp = newModuleImporter()
	}
	file, err := parser.ParseFile(fixtureFset, t.Name()+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	pkg, err := typecheck(fixtureFset, &rawPkg{importPath: "fixture/" + t.Name(), files: []*ast.File{file}}, fixtureImp)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	return pkg
}

var (
	fixtureMu   sync.Mutex
	fixtureFset *token.FileSet
	fixtureImp  *moduleImporter
)

// fixtureFile is one package of a multi-package fixture. Path is the
// import path; later files may import earlier ones.
type fixtureFile struct {
	path string
	src  string
}

// fixtureModule typechecks a small multi-package module (files in
// dependency order), using a private importer so fixture import paths
// never collide across tests. File names are "<TestName>_<i>.go".
func fixtureModule(t *testing.T, files []fixtureFile) []*Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if fixtureFset == nil {
		fixtureFset = token.NewFileSet()
	}
	imp := newModuleImporter()
	pkgs := make([]*Package, 0, len(files))
	for i, f := range files {
		name := fmt.Sprintf("%s_%d.go", t.Name(), i)
		file, err := parser.ParseFile(fixtureFset, name, f.src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", f.path, err)
		}
		pkg, err := typecheck(fixtureFset, &rawPkg{importPath: f.path, files: []*ast.File{file}}, imp)
		if err != nil {
			t.Fatalf("typechecking fixture %s: %v", f.path, err)
		}
		imp.module[f.path] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// runModuleFixture runs one module-wide analyzer over a multi-package
// fixture, comparing findings per file against the "// WANT" markers.
func runModuleFixture(t *testing.T, a *Analyzer, files []fixtureFile) {
	t.Helper()
	pkgs := fixtureModule(t, files)
	findings := Run(pkgs, []*Analyzer{a})
	want := make(map[string]map[int]bool, len(files))
	for i, f := range files {
		want[fmt.Sprintf("%s_%d.go", t.Name(), i)] = wantLines(f.src)
	}
	got := make(map[string]map[int]bool)
	for _, f := range findings {
		if got[f.Pos.Filename] == nil {
			got[f.Pos.Filename] = make(map[int]bool)
		}
		got[f.Pos.Filename][f.Pos.Line] = true
		if !want[f.Pos.Filename][f.Pos.Line] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for name, lines := range want {
		for line := range lines {
			if !got[name][line] {
				t.Errorf("missing finding at %s:%d", name, line)
			}
		}
	}
}

// wantLines returns the 1-based line numbers carrying a "// WANT" marker.
func wantLines(src string) map[int]bool {
	out := make(map[int]bool)
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "// WANT") {
			out[i+1] = true
		}
	}
	return out
}

// runFixture runs one analyzer (without target filtering, with suppression)
// over a fixture and compares finding lines against the WANT markers.
func runFixture(t *testing.T, check func(*Package) []Finding, name, src string) {
	t.Helper()
	pkg := fixturePkg(t, src)
	findings := Run([]*Package{pkg}, []*Analyzer{{Name: name, Check: check}})
	want := wantLines(src)
	got := make(map[int]bool)
	for _, f := range findings {
		got[f.Pos.Line] = true
		if !want[f.Pos.Line] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line := range want {
		if !got[line] {
			t.Errorf("missing finding at line %d", line)
		}
	}
}
