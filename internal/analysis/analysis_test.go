package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"sync"
	"testing"
)

// fixturePkg typechecks one fixture source file as its own package, using
// the same loader machinery as LoadModule (stdlib imports are resolved
// from source). Lines containing the marker comment "// WANT" declare
// where findings are expected.
func fixturePkg(t *testing.T, src string) *Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if fixtureImp == nil {
		fixtureFset = token.NewFileSet()
		fixtureImp = newModuleImporter(fixtureFset)
	}
	file, err := parser.ParseFile(fixtureFset, t.Name()+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	pkg, err := typecheck(fixtureFset, &rawPkg{importPath: "fixture/" + t.Name(), files: []*ast.File{file}}, fixtureImp)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	return pkg
}

var (
	fixtureMu   sync.Mutex
	fixtureFset *token.FileSet
	fixtureImp  *moduleImporter
)

// wantLines returns the 1-based line numbers carrying a "// WANT" marker.
func wantLines(src string) map[int]bool {
	out := make(map[int]bool)
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, "// WANT") {
			out[i+1] = true
		}
	}
	return out
}

// runFixture runs one analyzer (without target filtering, with suppression)
// over a fixture and compares finding lines against the WANT markers.
func runFixture(t *testing.T, check func(*Package) []Finding, name, src string) {
	t.Helper()
	pkg := fixturePkg(t, src)
	findings := Run([]*Package{pkg}, []*Analyzer{{Name: name, Check: check}})
	want := wantLines(src)
	got := make(map[int]bool)
	for _, f := range findings {
		got[f.Pos.Line] = true
		if !want[f.Pos.Line] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for line := range want {
		if !got[line] {
			t.Errorf("missing finding at line %d", line)
		}
	}
}
