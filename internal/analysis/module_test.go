package analysis

import (
	"strings"
	"sync"
	"testing"
)

var (
	repoModOnce sync.Once
	repoMod     *Module
	repoModErr  error
)

// loadRepoModule loads and graphs the real repository once per test
// binary; the graph is read-only, so sharing it across tests is safe.
func loadRepoModule(t *testing.T) *Module {
	t.Helper()
	if testing.Short() {
		t.Skip("builds the whole-repo call graph")
	}
	root := repoRoot(t)
	repoModOnce.Do(func() {
		var pkgs []*Package
		if pkgs, repoModErr = LoadModule(root); repoModErr == nil {
			repoMod = NewModule(pkgs)
		}
	})
	if repoModErr != nil {
		t.Fatal(repoModErr)
	}
	return repoMod
}

// TestFactsCrossPackageRealRepo is the acceptance check that facts flow
// through the real codebase: buffer.(*Pool).Get does I/O only because a
// storage.DiskManager implementation does, two packages away and behind
// an interface, while the analytic model stays pure.
func TestFactsCrossPackageRealRepo(t *testing.T) {
	g := loadRepoModule(t).Graph

	get := one(t, g, "buffer.(*Pool).Get")
	for _, want := range []FactSet{FactDoesIO, FactMayBlock, FactAllocates} {
		if get.Facts&want == 0 {
			t.Errorf("Pool.Get facts = %s, want %s set", get.Facts, want)
		}
	}
	chain := g.FactChain(get, FactDoesIO)
	if len(chain) < 2 {
		t.Fatalf("FactChain(Pool.Get, doesIO) = %v, want a cross-package chain", chain)
	}
	var crossesIntoStorage bool
	for _, hop := range chain {
		if strings.Contains(hop, "storage.") {
			crossesIntoStorage = true
		}
	}
	if !crossesIntoStorage {
		t.Errorf("doesIO chain for Pool.Get never enters storage: %v", chain)
	}

	// The analytic model must be disk-free end to end.
	for _, n := range g.Resolve(RootSpec{Path: "rtreebuf/internal/core", Recv: "*", Name: "AccessProb"}) {
		if n.Facts&FactDoesIO != 0 {
			t.Errorf("%s facts = %s, want no doesIO", n, n.Facts)
		}
	}
}

// TestDiskManagerDispatchRealRepo pins the CHA behaviour the lockcheck
// and iopurity results rely on: the retry layer's read through the
// DiskManager interface must see more than one module implementer.
func TestDiskManagerDispatchRealRepo(t *testing.T) {
	g := loadRepoModule(t).Graph
	n := one(t, g, "storage.(*ResilientManager).readRetry")
	var best *Call
	for _, c := range n.Calls {
		if c.Dispatch && (best == nil || len(c.Targets) > len(best.Targets)) {
			best = c
		}
	}
	if best == nil {
		t.Fatal("readRetry has no interface dispatch site (inner.ReadPage)")
	}
	if len(best.Targets) < 2 {
		t.Errorf("DiskManager.ReadPage dispatch resolves %d targets, want >= 2", len(best.Targets))
	}
	if best.Facts()&FactDoesIO == 0 {
		t.Errorf("DiskManager.ReadPage dispatch facts = %s, want doesIO", best.Facts())
	}
}

// TestHotRootsExist guards the root lists against silent rot: a renamed
// Search method or model function must fail here, not silently disable
// hotalloc or iopurity.
func TestHotRootsExist(t *testing.T) {
	g := loadRepoModule(t).Graph
	for _, spec := range append(HotRoots(), PureRoots()...) {
		if len(g.Resolve(spec)) == 0 {
			t.Errorf("root spec %s matches no function in the repository", spec)
		}
	}
}

// BenchmarkLoadModule documents the loader cost (the stdlib closure is
// typechecked once per process and memoized; iterations measure the
// module-only reload that rtreelint and the fixture tests pay).
func BenchmarkLoadModule(b *testing.B) {
	root := repoRoot(b)
	if _, err := LoadModule(root); err != nil { // warm the stdlib cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadModule(root); err != nil {
			b.Fatal(err)
		}
	}
}
