package analysis

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestWriteSARIFGolden compares the writer's output byte-for-byte against
// the checked-in golden file: the SARIF shape is an external contract
// (GitHub code scanning), so any drift must be a conscious decision.
// Regenerate with: go test ./internal/analysis -run WriteSARIFGolden -update
func TestWriteSARIFGolden(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod")
	analyzers := []*Analyzer{
		{Name: "sharecheck", Doc: "variable captured by a goroutine mutated on both sides of the spawn without a guard"},
		{Name: "atomiccheck", Doc: "field accessed both atomically and plainly with no lock dominating the atomic sites"},
	}
	findings := []Finding{
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "p", "a.go"), Line: 12, Column: 3},
			Analyzer: "sharecheck",
			Message:  "captured n written in goroutine (go statement) and read in p.F at line 20 after the spawn, with no common lock, barrier, or atomic guard",
		},
		{
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "p", "b.go"), Line: 7, Column: 9},
			Analyzer: "atomiccheck",
			Message:  "plain access to field hits, which is accessed atomically at 2 site(s) (first: a.go:4); no lock dominates all atomic sites",
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, analyzers, findings); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sarif_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
