package analysis

import "fmt"

// determcheck enforces the reproducibility contract of the result
// pipeline: every byte the experiments write — simulator counters,
// report tables, exported metrics, saved tree pages — must be a pure
// function of the configuration and the seed. The check taints the
// nondeterminism sources the callgraph records as FactNondet intrinsics
// (map iteration order, time.Now/Since/Until, the global math/rand
// stream, selects with multiple ready cases) and reports any source
// reachable from a deterministic-result root, with the call chain as
// witness.
//
// Two idioms are deliberately outside the taint: per-replica seeded
// streams (`rand.New(rand.NewPCG(seed, replica))` — constructors and
// Seed are not sources, only the global stream is) and the timing
// sidecar (experiments.RunAllTimed stamps wall-clock Timings around
// Run; Run itself is the root, so the by-design time.Now there is not
// reachable from it).
func checkDeterm(m *Module, roots []RootSpec) []Finding {
	g := m.Graph
	var rootNodes []*FuncNode
	for _, spec := range roots {
		rootNodes = append(rootNodes, g.Resolve(spec)...)
	}
	parent := g.Reachable(rootNodes)
	var out []Finding
	for _, n := range g.Nodes() {
		if _, ok := parent[n]; !ok {
			continue
		}
		for _, in := range n.Intrinsics {
			if in.Fact&FactNondet == 0 {
				continue
			}
			out = append(out, Finding{
				Pos:      n.Pkg.Fset.Position(in.Pos),
				Analyzer: "determcheck",
				Message: fmt.Sprintf("nondeterminism source (%s) in %s is reachable from deterministic-result root: %s",
					in.What, n, RootPath(parent, n)),
			})
		}
	}
	return out
}

// DetermRoots names the deterministic-result entry points: functions
// whose outputs land in reports, exported metrics, or on disk, and must
// therefore be replayable from (config, seed) alone. The guard test
// TestDetermRootsExist keeps the list attached to real code.
func DetermRoots() []RootSpec {
	const mod = "rtreebuf"
	return []RootSpec{
		{Path: mod + "/internal/sim", Name: "Run*"},
		{Path: mod + "/internal/sim", Name: "Transient"},
		// experiments.Run produces the Report bytes; RunAllTimed is
		// deliberately NOT a root — its time.Now feeds only the Timing
		// sidecar, never the Report.
		{Path: mod + "/internal/experiments", Name: "Run"},
		{Path: mod + "/internal/obs", Name: "Write*"},
		{Path: mod + "/internal/storage", Name: "SaveTree*"},
		{Path: mod + "/internal/storage", Name: "EncodeNode"},
		// The write path: recovery must be a pure function of the log
		// bytes (every reopen of the same crashed state yields the same
		// pages), and dirty-page flushing must emit writes in an order
		// derived from the data, not from map iteration or a clock.
		// These are I/O-bearing by design, so they live here and not in
		// PureRoots — the contract is determinism, not disk-freedom.
		{Path: mod + "/internal/storage", Name: "Recover"},
		{Path: mod + "/internal/storage", Name: "OpenWAL"},
		{Path: mod + "/internal/buffer", Recv: "*", Name: "FlushDirty"},
	}
}
