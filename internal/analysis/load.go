package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Package is one typechecked package of the module under analysis,
// bundling everything an Analyzer needs: syntax, types, and the
// suppression annotations collected from its comments.
type Package struct {
	// ImportPath is the package's import path (module path + directory).
	ImportPath string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Files holds the parsed non-test sources, ordered by file name.
	Files []*ast.File
	// Types is the typechecked package.
	Types *types.Package
	// Info carries the typechecker's expression/type maps for Files.
	Info *types.Info

	// allow maps file name -> line -> analyzer names suppressed on that
	// line by a "//lint:allow name[,name...] [reason]" annotation.
	allow map[string]map[int][]string
}

// allowed reports whether a finding of the named analyzer at pos is
// suppressed by an annotation trailing that line or standing alone on the
// line directly above (collectAllows resolves both forms to the code line).
func (p *Package) allowed(name string, pos token.Position) bool {
	for _, n := range p.allow[pos.Filename][pos.Line] {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-zA-Z0-9_,-]+)`)

// collectAllows scans a file's comments for lint:allow annotations. An
// annotation trailing code applies to that line; an annotation on a line
// of its own applies to the line below it — and never both, so a trailing
// annotation cannot accidentally excuse the next statement.
func collectAllows(fset *token.FileSet, file *ast.File, into map[string]map[int][]string) {
	code := codeLines(fset, file)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			line := pos.Line
			if !code[line] {
				line++ // standalone annotation: excuses the line below
			}
			byLine := into[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]string)
				into[pos.Filename] = byLine
			}
			for _, name := range strings.Split(m[1], ",") {
				if name = strings.TrimSpace(name); name != "" {
					byLine[line] = append(byLine[line], name)
				}
			}
		}
	}
}

// codeLines reports which lines of the file carry non-comment tokens.
func codeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		out[fset.Position(n.Pos()).Line] = true
		if end := n.End(); end.IsValid() && end > n.Pos() {
			out[fset.Position(end-1).Line] = true
		}
		return true
	})
	return out
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	if p, err := strconv.Unquote(string(m[1])); err == nil {
		return p, nil
	}
	return string(m[1]), nil
}

// rawPkg is a parsed-but-not-yet-typechecked package.
type rawPkg struct {
	importPath string
	dir        string
	files      []*ast.File
	imports    []string // module-internal imports only
}

// LoadModule parses and typechecks every non-test package of the Go module
// rooted at root, using only the standard library (stdlib dependencies are
// typechecked from source; no export data or external tooling is needed).
// Packages are returned sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	raw := make(map[string]*rawPkg)
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := raw[importPath]
		if rp == nil {
			rp = &rawPkg{importPath: importPath, dir: dir}
			raw[importPath] = rp
		}
		rp.files = append(rp.files, file)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", root)
	}

	for _, rp := range raw {
		for _, f := range rp.files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == modPath || strings.HasPrefix(path, modPath+"/") {
					rp.imports = append(rp.imports, path)
				}
			}
		}
	}

	order, err := topoSort(raw)
	if err != nil {
		return nil, err
	}

	imp := newModuleImporter()
	var out []*Package
	for _, rp := range order {
		pkg, err := typecheck(fset, rp, imp)
		if err != nil {
			return nil, err
		}
		imp.module[rp.importPath] = pkg.Types
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// topoSort orders packages so that every package follows its
// module-internal dependencies.
func topoSort(raw map[string]*rawPkg) ([]*rawPkg, error) {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // done
	)
	state := make(map[string]int, len(raw))
	var order []*rawPkg
	var visit func(path string) error
	visit = func(path string) error {
		rp, ok := raw[path]
		if !ok {
			return nil // import of a module path not present on disk: let the typechecker report it
		}
		switch state[path] {
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case black:
			return nil
		}
		state[path] = gray
		for _, dep := range rp.imports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, rp)
		return nil
	}
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths) // deterministic order
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages
// typechecked so far and everything else through the process-wide
// memoizing stdlib importer (see stdimporter.go). Stdlib packages are
// typechecked against their own shared FileSet; analyzers only ever
// format positions of module syntax, so the split is invisible to them.
type moduleImporter struct {
	module map[string]*types.Package
	std    types.Importer
}

func newModuleImporter() *moduleImporter {
	return &moduleImporter{
		module: make(map[string]*types.Package),
		std:    std,
	}
}

// Import implements types.Importer.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.module[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}

// typecheck runs the typechecker over one parsed package.
func typecheck(fset *token.FileSet, rp *rawPkg, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(rp.importPath, fset, rp.files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %w", rp.importPath, err)
	}
	sort.Slice(rp.files, func(i, j int) bool {
		return fset.Position(rp.files[i].Pos()).Filename < fset.Position(rp.files[j].Pos()).Filename
	})
	pkg := &Package{
		ImportPath: rp.importPath,
		Dir:        rp.dir,
		Fset:       fset,
		Files:      rp.files,
		Types:      tpkg,
		Info:       info,
		allow:      make(map[string]map[int][]string),
	}
	for _, f := range rp.files {
		collectAllows(fset, f, pkg.allow)
	}
	return pkg, nil
}
