package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// stdImporter typechecks standard-library packages from GOROOT source,
// replacing importer.ForCompiler(fset, "source", nil) with two properties
// the analysis loader needs and the stock importer lacks:
//
//   - memoization across loads: the importer is a process-wide singleton,
//     so every LoadModule call, fixture test, and analyzer run after the
//     first reuses the already-typechecked stdlib instead of re-checking
//     it from scratch (this is what makes TestRepoIsLintClean stop being
//     the slowest test in the suite);
//   - concurrency: independent packages of the dependency closure are
//     typechecked in parallel, bounded by GOMAXPROCS.
//
// Two further choices make it fast: stdlib function bodies are skipped
// (types.Config.IgnoreFuncBodies — analyzers only ever need the stdlib's
// exported API surface; module packages are still checked with bodies),
// and files are located with go/build so build tags and GOOS/GOARCH file
// suffixes resolve exactly as the toolchain would.
//
// The importer is safe for concurrent use; a single mutex serializes
// top-level Import calls while the internal workers parallelize the
// closure of one call.
type stdImporter struct {
	mu     sync.Mutex
	fset   *token.FileSet
	pkgs   map[string]*types.Package
	bps    map[string]*build.Package
	ctx    build.Context
	srcDir string
}

// std is the process-wide stdlib importer shared by every module load and
// fixture typecheck.
var std = newStdImporter()

func newStdImporter() *stdImporter {
	ctx := build.Default
	// Pure-Go variants throughout: cgo-gated files would need the cgo
	// preprocessor, which a source-only typecheck cannot run.
	ctx.CgoEnabled = false
	return &stdImporter{
		fset:   token.NewFileSet(),
		pkgs:   map[string]*types.Package{"unsafe": types.Unsafe},
		bps:    make(map[string]*build.Package),
		ctx:    ctx,
		srcDir: filepath.Join(ctx.GOROOT, "src"),
	}
}

// Import implements types.Importer.
func (s *stdImporter) Import(path string) (*types.Package, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pkg, ok := s.pkgs[path]; ok {
		return pkg, nil
	}
	var order []string
	if err := s.closure(path, make(map[string]bool), &order); err != nil {
		return nil, err
	}
	//lint:allow lockcheck the importer serializes whole-closure typechecking by design
	if err := s.checkAll(order); err != nil {
		return nil, err
	}
	pkg, ok := s.pkgs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: stdlib package %s did not typecheck", path)
	}
	return pkg, nil
}

// closure appends the not-yet-typechecked dependency closure of path to
// order, dependencies first.
func (s *stdImporter) closure(path string, seen map[string]bool, order *[]string) error {
	if seen[path] {
		return nil
	}
	seen[path] = true
	if _, done := s.pkgs[path]; done {
		return nil
	}
	bp, err := s.buildPkg(path)
	if err != nil {
		return err
	}
	for _, imp := range bp.Imports {
		if imp == "C" {
			continue
		}
		if err := s.closure(imp, seen, order); err != nil {
			return err
		}
	}
	*order = append(*order, path)
	return nil
}

// buildPkg locates path in GOROOT and memoizes the result. Packages the
// stdlib vendors (net imports golang.org/x/net/dns/dnsmessage, which
// lives under GOROOT/src/vendor) are not found by a plain import-path
// lookup — go/build defers to module resolution for them — so those
// retry under the explicit vendor/ prefix.
func (s *stdImporter) buildPkg(path string) (*build.Package, error) {
	if bp, ok := s.bps[path]; ok {
		return bp, nil
	}
	bp, err := s.ctx.Import(path, s.srcDir, 0)
	if err != nil && !strings.HasPrefix(path, "vendor/") {
		if vbp, verr := s.ctx.Import("vendor/"+path, s.srcDir, 0); verr == nil {
			bp, err = vbp, nil
		}
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: locating stdlib package %s: %w", path, err)
	}
	s.bps[path] = bp
	return bp, nil
}

// checkAll typechecks the packages of order (already topologically
// sorted, dependencies first) with up to GOMAXPROCS workers. Scheduling
// is by level: each round runs every package whose dependencies are
// complete, so workers only ever read fully-constructed packages.
func (s *stdImporter) checkAll(order []string) error {
	remaining := make([]string, len(order))
	copy(remaining, order)
	for len(remaining) > 0 {
		var level, next []string
		for _, path := range remaining {
			if s.depsDone(path) {
				level = append(level, path)
			} else {
				next = append(next, path)
			}
		}
		if len(level) == 0 {
			return fmt.Errorf("analysis: stdlib import cycle through %s", remaining[0])
		}
		results := make([]*types.Package, len(level))
		errs := make([]error, len(level))
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for i, path := range level {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, path string) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i], errs[i] = s.check(path)
			}(i, path)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return err
			}
			s.pkgs[level[i]] = results[i]
		}
		remaining = next
	}
	return nil
}

// depsDone reports whether every import of path has been typechecked.
func (s *stdImporter) depsDone(path string) bool {
	bp := s.bps[path]
	for _, imp := range bp.Imports {
		if imp == "C" {
			continue
		}
		if _, ok := s.pkgs[imp]; !ok {
			return false
		}
	}
	return true
}

// check parses and typechecks one stdlib package. During a level all
// calls only read s.pkgs/s.bps (written between levels by checkAll) and
// s.fset (internally synchronized), so concurrent checks are safe.
func (s *stdImporter) check(path string) (*types.Package, error) {
	bp := s.bps[path]
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		file, err := parser.ParseFile(s.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing stdlib %s: %w", path, err)
		}
		files = append(files, file)
	}
	var hard []error
	conf := types.Config{
		Importer:         stdMapImporter{s.pkgs},
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		// With bodies skipped, imports and variables used only inside
		// bodies look unused; those diagnostics are expected noise, not
		// errors in the (known-good) stdlib source.
		Error: func(err error) {
			msg := err.Error()
			if strings.Contains(msg, "imported and not used") ||
				strings.Contains(msg, "declared and not used") {
				return
			}
			hard = append(hard, err)
		},
	}
	tpkg, _ := conf.Check(path, s.fset, files, nil)
	if len(hard) > 0 {
		return nil, fmt.Errorf("analysis: typechecking stdlib %s: %w", path, hard[0])
	}
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: typechecking stdlib %s produced no package", path)
	}
	return tpkg, nil
}

// stdMapImporter resolves imports from an already-complete package map;
// used for the stdlib packages themselves, whose dependencies are always
// checked first.
type stdMapImporter struct{ pkgs map[string]*types.Package }

// Import implements types.Importer.
func (m stdMapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	return nil, fmt.Errorf("analysis: stdlib package %s not yet typechecked", path)
}
