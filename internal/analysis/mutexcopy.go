package analysis

import (
	"go/ast"
	"go/types"
)

// checkMutexCopy flags by-value copies of types that contain sync
// primitives — a copied sync.Mutex guards nothing, so a value receiver or
// value parameter on (say) buffer.SyncPool would silently fork the lock
// from the state it protects. Sites checked:
//
//   - value (non-pointer) method receivers on lock-holding types;
//   - value parameters and results in function signatures;
//   - assignments that copy an existing lock-holding value (composite
//     literals and &-expressions construct rather than copy, so they pass);
//   - call arguments passing a lock-holding value;
//   - range clauses whose value variable copies a lock-holding element.
//
// go vet's copylocks overlaps with this, but CI runs both: this analyzer
// also refuses value *results* and stays under project control when new
// sync-holding types appear.
func checkMutexCopy(pkg *Package) []Finding {
	var out []Finding
	report := func(pos ast.Node, what string, t types.Type) {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(pos.Pos()),
			Analyzer: "mutexcopy",
			Message:  what + " copies " + t.String() + ", which contains sync primitives; use a pointer",
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					for _, field := range n.Recv.List {
						if t := fieldValueType(pkg, field.Type); t != nil && holdsLock(t, nil) {
							report(field.Type, "value receiver", t)
						}
					}
				}
				checkSignature(pkg, n.Type, report)
			case *ast.FuncLit:
				checkSignature(pkg, n.Type, report)
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue // discarding to blank copies nothing anyone can use
					}
					if t, copied := copiesLockValue(pkg, rhs); copied {
						report(rhs, "assignment", t)
					}
				}
			case *ast.CallExpr:
				if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion
				}
				for _, arg := range n.Args {
					if t, copied := copiesLockValue(pkg, arg); copied {
						report(arg, "call argument", t)
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					// With := the value ident is a definition, recorded in
					// Defs rather than the expression type map.
					t := exprType(pkg, n.Value)
					if t == nil {
						if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
							if obj := pkg.Info.Defs[id]; obj != nil {
								t = obj.Type()
							}
						}
					}
					if t != nil && holdsLock(t, nil) {
						report(n.Value, "range value", t)
					}
				}
			}
			return true
		})
	}
	return out
}

// checkSignature flags value parameters and results holding locks.
func checkSignature(pkg *Package, ft *ast.FuncType, report func(ast.Node, string, types.Type)) {
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if t := fieldValueType(pkg, field.Type); t != nil && holdsLock(t, nil) {
				report(field.Type, "value parameter", t)
			}
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			if t := fieldValueType(pkg, field.Type); t != nil && holdsLock(t, nil) {
				report(field.Type, "value result", t)
			}
		}
	}
}

// fieldValueType returns the type of a signature field unless it is
// declared as a pointer (or variadic slice), which copies nothing.
func fieldValueType(pkg *Package, expr ast.Expr) types.Type {
	switch expr.(type) {
	case *ast.StarExpr, *ast.Ellipsis:
		return nil
	}
	t := exprType(pkg, expr)
	if t == nil {
		return nil
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return nil
	}
	return t
}

// copiesLockValue reports whether evaluating expr produces a copy of an
// existing lock-holding value. Composite literals, &-expressions, and
// conversions construct fresh values; reading a variable, field, index, or
// dereference copies.
func copiesLockValue(pkg *Package, expr ast.Expr) (types.Type, bool) {
	t := exprType(pkg, expr)
	if t == nil || !holdsLock(t, nil) {
		return nil, false
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return nil, false
	case *ast.UnaryExpr:
		return nil, false // &T{...} yields a pointer; its type would not hold a lock anyway
	case *ast.CallExpr:
		// A call returning a lock-holding value is flagged at its own
		// signature (value result); don't double-report the call site.
		return nil, false
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = e
		return t, true
	default:
		return t, true
	}
}

func exprType(pkg *Package, expr ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type
}

// holdsLock reports whether t is a sync package type or transitively
// contains one in a struct field or array element. Pointers, slices, maps,
// and channels break the chain: copying a pointer to a mutex is fine.
func holdsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if holdsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return holdsLock(u.Elem(), seen)
	}
	return false
}
