package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// sharecheck finds shared-state escapes into goroutines: variables
// captured by a `go`-closure body (or by a function literal handed to a
// callee that transitively spawns goroutines — the spawnsGoroutine fact)
// that are mutated on one side of the spawn and touched on the other
// without synchronization. It is the static pre-screen for the sharded
// pool and the traffic server: the race detector only checks executed
// interleavings, sharecheck checks the source.
//
// For every spawn region the analyzer computes the capture set and
// classifies each access on each side (inside the region, outside after
// the spawn, and sibling instances when the spawn sits in a loop or the
// literal is handed to a spawning callee). A pair of accesses is reported
// when at least one side writes — or both sides call a method with a
// pointer receiver — and none of the recognized guards applies:
//
//   - a common mutex lexically held on both sides (heldAt);
//   - a guarding fact on the called method (acquiresLock or usesAtomic),
//     so obs counters and registry methods pass;
//   - the disjoint-index write pattern `arr[i] = ...` where every index
//     variable is local to the region (PR 4's one-slot-per-replica idiom:
//     sibling instances write provably different elements) — never
//     accepted for maps, whose runtime forbids concurrent writes however
//     disjoint the keys;
//   - a completion barrier between spawn and access: outside accesses
//     after a sync.WaitGroup.Wait call or a channel receive that follows
//     the spawn are ordered, which is how every fan-out in this
//     repository reads its result slots; a literal handed to a spawning
//     callee is assumed joined when that call returns (the forEachPoint
//     idiom — a helper that retained the closure past its return would
//     escape this model);
//   - values that are synchronization primitives themselves (channels,
//     sync.*, sync/atomic.* — see syncPrimitive).
//
// The model is lexical and per-function, so it has known gaps, chosen to
// keep the module clean of false positives rather than complete: spawns
// via `go f(x)` with a named callee hand x off at spawn time and f's
// internal mutations are not tracked; a loop that mutates a variable
// before spawning a goroutine that reads it races its own next iteration
// unseen; and sibling instances calling the same unguarded pointer method
// are not reported (method bodies may be internally read-only, as the
// stdlib importer's level workers are).
func checkShare(m *Module) []Finding {
	var out []Finding
	for _, n := range m.Graph.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		out = append(out, shareCheckFunc(n)...)
	}
	return out
}

// goRegion is one block of code that executes on a spawned goroutine (or
// may, when the literal is handed to a spawning callee).
type goRegion struct {
	lit   *ast.FuncLit
	spawn token.Pos // the go statement / spawning call: accesses after this race
	end   token.Pos // end of the spawn statement; its own args evaluate before the spawn
	loop  bool      // instances of the region body may run concurrently with each other
	joins bool      // a spawning-callee region: the helper joins before returning,
	// so outside accesses after the call are ordered (forEachPoint idiom)
	desc string
}

// accessKind classifies one use of a captured variable.
type accessKind int

const (
	accRead accessKind = iota
	accWrite
	accPtrCall // call of a pointer-receiver method without a guarding fact
)

func (k accessKind) String() string {
	switch k {
	case accWrite:
		return "written"
	case accPtrCall:
		return "mutated via pointer method"
	default:
		return "read"
	}
}

// capAccess is one access to a captured variable on one side of a spawn.
type capAccess struct {
	pos      token.Pos
	kind     accessKind
	disjoint bool // index write with region-local index variables
	held     map[string]bool
	what     string
}

func shareCheckFunc(n *FuncNode) []Finding {
	body := n.Decl.Body
	regions := collectRegions(n, body)
	if len(regions) == 0 {
		return nil
	}

	// Region bodies and spawn statements are excluded from the outside
	// side; barriers order outside accesses that follow them.
	var regionSpans spans
	for _, r := range regions {
		regionSpans = append(regionSpans, span{r.lit.Pos(), r.lit.End()}, span{r.spawn, r.end})
	}

	// The capture set: variables used inside any region but declared
	// outside it — in this function or at package level.
	captured := make(map[*types.Var]bool)
	for _, r := range regions {
		for v := range capturedVars(n, r) {
			captured[v] = true
		}
	}
	if len(captured) == 0 {
		return nil
	}

	outside := scanSide(n, body, nil, captured, regionSpans)
	barriers := collectBarriers(n, body, regionSpans)
	inside := make([]map[*types.Var][]capAccess, len(regions))
	for i, r := range regions {
		var others spans
		for j, o := range regions {
			if j != i {
				others = append(others, span{o.lit.Pos(), o.lit.End()})
			}
		}
		inside[i] = scanSide(n, r.lit.Body, r, captured, others)
	}

	var out []Finding
	report := func(a capAccess, format string, args ...any) {
		out = append(out, Finding{
			Pos:      n.Pkg.Fset.Position(a.pos),
			Analyzer: "sharecheck",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	line := func(p token.Pos) int { return n.Pkg.Fset.Position(p).Line }

	for i, r := range regions {
		for v, gAccs := range inside[i] {
			done := false
			for _, a := range gAccs {
				if done {
					break
				}
				// Goroutine vs the enclosing function after the spawn.
				for _, b := range outside[v] {
					if b.pos <= r.spawn || barrierBetween(barriers, r.spawn, b.pos) {
						continue
					}
					if r.joins && b.pos >= r.end {
						continue // the spawning helper joined before returning
					}
					conflict := a.kind == accWrite || b.kind == accWrite ||
						(a.kind == accPtrCall && b.kind == accPtrCall)
					if conflict && !intersects(a.held, b.held) {
						report(a, "captured %s %s in goroutine (%s) and %s in %s at line %d after the spawn, with no common lock, barrier, or atomic guard",
							v.Name(), a.kind, r.desc, b.kind, n, line(b.pos))
						done = true
						break
					}
				}
				if done {
					break
				}
				// Sibling instances of a looped / handed-off region body.
				if r.loop && a.kind == accWrite && !a.disjoint && len(a.held) == 0 {
					report(a, "captured %s %s concurrently by multiple instances of the goroutine body (%s, line %d) without a lock or a region-local disjoint index",
						v.Name(), a.kind, r.desc, line(r.spawn))
					done = true
					break
				}
				// Two distinct regions of the same function.
				for j := range regions {
					if j == i || done {
						continue
					}
					for _, b := range inside[j][v] {
						bothDisjoint := a.kind == accWrite && b.kind == accWrite && a.disjoint && b.disjoint
						conflict := (a.kind == accWrite || b.kind == accWrite ||
							(a.kind == accPtrCall && b.kind == accPtrCall)) && !bothDisjoint
						if conflict && !intersects(a.held, b.held) {
							report(a, "captured %s %s by the goroutine spawned at line %d and %s by the goroutine spawned at line %d, with no common lock",
								v.Name(), a.kind, line(r.spawn), b.kind, line(regions[j].spawn))
							done = true
							break
						}
					}
				}
			}
		}
	}
	return out
}

// collectRegions finds the function's spawn regions: go statements with a
// literal body, and function literals passed to callees that carry the
// spawnsGoroutine fact (which may retain and invoke them from any number
// of goroutines — treated as looped).
func collectRegions(n *FuncNode, body *ast.BlockStmt) []*goRegion {
	var out []*goRegion
	loopDepth := 0
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		switch x := node.(type) {
		case nil:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loopDepth++
			var b *ast.BlockStmt
			if f, ok := x.(*ast.ForStmt); ok {
				if f.Init != nil {
					ast.Inspect(f.Init, walk)
				}
				b = f.Body
			} else {
				b = x.(*ast.RangeStmt).Body
			}
			ast.Inspect(b, walk)
			loopDepth--
			return false
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				out = append(out, &goRegion{
					lit: lit, spawn: x.Pos(), end: x.End(),
					loop: loopDepth > 0, desc: "go statement",
				})
			}
			return true
		case *ast.CallExpr:
			site := n.SiteAt(x.Pos())
			if site == nil || site.Facts()&FactSpawnsGoroutine == 0 {
				return true
			}
			for _, arg := range x.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					out = append(out, &goRegion{
						lit: lit, spawn: x.Pos(), end: x.End(), loop: true, joins: true,
						desc: "literal passed to spawning " + site.Desc,
					})
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// capturedVars returns the variables the region body uses but does not
// declare: locals of the enclosing function (or of enclosing literals)
// and package-level variables. Fields, region locals, and values that are
// synchronization primitives are excluded.
func capturedVars(n *FuncNode, r *goRegion) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	decl := n.Decl
	pkgScope := n.Pkg.Types.Scope()
	ast.Inspect(r.lit.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := n.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || syncPrimitive(v.Type()) {
			return true
		}
		if v.Pos() >= r.lit.Pos() && v.Pos() < r.lit.End() {
			return true // region parameter or local
		}
		inFunc := v.Pos() >= decl.Pos() && v.Pos() < decl.End()
		if inFunc || v.Parent() == pkgScope {
			out[v] = true
		}
		return true
	})
	return out
}

// scanSide collects the accesses to captured vars within root, skipping
// the excluded spans. region is non-nil when root is a region body (its
// locals make index writes disjoint); nil scans the outside.
func scanSide(n *FuncNode, root ast.Node, region *goRegion, captured map[*types.Var]bool, exclude spans) map[*types.Var][]capAccess {
	info := n.Pkg.Info
	events := lockEvents(info, root)
	accs := make(map[*types.Var][]capAccess)
	claimed := make(map[ast.Node]bool)
	add := func(v *types.Var, pos token.Pos, kind accessKind, disjoint bool, what string) {
		accs[v] = append(accs[v], capAccess{pos: pos, kind: kind, disjoint: disjoint, held: heldAt(events, pos), what: what})
	}
	// lhsWrite records a write through an assignment target and claims its
	// base identifier so the generic pass does not double-count a read.
	lhsWrite := func(expr ast.Expr) {
		base, idx := baseAndIndex(expr)
		if base == nil {
			return
		}
		v, ok := info.Uses[base].(*types.Var)
		if !ok || !captured[v] {
			return
		}
		claimed[base] = true
		disjoint := false
		if idx != nil && region != nil {
			if _, isMap := info.TypeOf(idx.X).Underlying().(*types.Map); !isMap {
				disjoint = regionLocalIndex(info, idx.Index, region)
			}
		}
		add(v, expr.Pos(), accWrite, disjoint, "assignment")
	}
	ast.Inspect(root, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if exclude.covers(node.Pos()) && node != root {
			return false
		}
		switch x := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				lhsWrite(lhs)
			}
		case *ast.IncDecStmt:
			lhsWrite(x.X)
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return true
			}
			base, _ := baseAndIndex(x.X)
			if base == nil {
				return true
			}
			if v, ok := info.Uses[base].(*types.Var); ok && captured[v] && !claimed[base] {
				claimed[base] = true
				add(v, x.Pos(), accWrite, false, "address taken")
			}
		case *ast.CallExpr:
			// sync/atomic package calls are the guard, not the race: claim
			// the &field arguments they operate on.
			if atomicPkgCall(info, x) {
				for _, arg := range x.Args {
					ast.Inspect(arg, func(sub ast.Node) bool {
						if id, ok := sub.(*ast.Ident); ok {
							claimed[id] = true
						}
						return true
					})
				}
				return true
			}
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := info.Selections[sel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			fn, _ := selection.Obj().(*types.Func)
			base, _ := baseAndIndex(sel.X)
			if fn == nil || base == nil {
				return true
			}
			v, ok := info.Uses[base].(*types.Var)
			if !ok || !captured[v] {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			ptrRecv := false
			if sig != nil && sig.Recv() != nil {
				_, ptrRecv = sig.Recv().Type().(*types.Pointer)
			}
			if !ptrRecv {
				return true // value receiver: operates on a copy
			}
			guarded := false
			if site := n.SiteAt(x.Pos()); site != nil {
				guarded = site.Facts()&(FactAcquiresLock|FactUsesAtomic) != 0
			} else if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
				guarded = true
			}
			if !guarded {
				claimed[base] = true
				add(v, x.Pos(), accPtrCall, false, "call to "+fn.Name())
			}
		case *ast.Ident:
			if claimed[x] {
				return true
			}
			if v, ok := info.Uses[x].(*types.Var); ok && captured[v] {
				add(v, x.Pos(), accRead, false, "use")
			}
		}
		return true
	})
	return accs
}

// baseAndIndex peels selectors and indexes off an lvalue-ish expression,
// returning the base identifier and the outermost index expression (nil
// when the path has none): `v` -> (v, nil); `v[i]` -> (v, v[i]);
// `v.f[i].g` -> (v, v.f[i]).
func baseAndIndex(expr ast.Expr) (*ast.Ident, *ast.IndexExpr) {
	var idx *ast.IndexExpr
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return x, idx
		case *ast.IndexExpr:
			idx = x
			expr = x.X
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		default:
			return nil, nil
		}
	}
}

// regionLocalIndex reports whether every variable in an index expression
// is declared inside the region, so sibling instances index disjoint
// elements (each instance receives its own value via parameter or local).
func regionLocalIndex(info *types.Info, index ast.Expr, r *goRegion) bool {
	localVars, total := 0, 0
	ast.Inspect(index, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			total++
			if v.Pos() >= r.lit.Pos() && v.Pos() < r.lit.End() {
				localVars++
			}
		}
		return true
	})
	return total > 0 && localVars == total
}

// atomicPkgCall reports whether the call targets a sync/atomic
// package-level function (the legacy atomic.AddUint64-style API, selected
// through the package name — methods of the typed atomics do not match).
func atomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); !ok {
		return false
	} else if _, isPkg := info.Uses[id].(*types.PkgName); !isPkg {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// collectBarriers finds the completion barriers of the enclosing body:
// sync.WaitGroup.Wait calls and channel receives outside any region. An
// outside access after such a barrier (itself after the spawn) is ordered
// with the goroutine's writes.
func collectBarriers(n *FuncNode, body *ast.BlockStmt, exclude spans) []token.Pos {
	info := n.Pkg.Info
	var out []token.Pos
	ast.Inspect(body, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if exclude.covers(node.Pos()) {
			return false
		}
		switch x := node.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync" && recvBase(fn) == "WaitGroup" && fn.Name() == "Wait" {
				out = append(out, x.Pos())
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				out = append(out, x.Pos())
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					out = append(out, x.Pos())
				}
			}
		}
		return true
	})
	return out
}

// barrierBetween reports whether a barrier lies strictly between the two
// positions.
func barrierBetween(barriers []token.Pos, spawn, access token.Pos) bool {
	for _, b := range barriers {
		if b > spawn && b < access {
			return true
		}
	}
	return false
}
