package analysis

import "fmt"

// hotalloc reports heap-allocation sites inside functions transitively
// reachable from the query hot roots: the paper's core cost is per-query
// node probability evaluation plus the buffer lookup, so a hidden
// allocation there shifts every measured curve. Deliberate allocations
// (result materialization, one-time setup on a hot type) are annotated
// with `//lint:allow hotalloc <reason>` at the site.
func checkHotAlloc(m *Module, roots []RootSpec) []Finding {
	g := m.Graph
	var rootNodes []*FuncNode
	for _, spec := range roots {
		rootNodes = append(rootNodes, g.Resolve(spec)...)
	}
	parent := g.Reachable(rootNodes)
	var out []Finding
	for _, n := range g.Nodes() {
		if _, hot := parent[n]; !hot {
			continue
		}
		for _, a := range n.Allocs {
			out = append(out, Finding{
				Pos:      n.Pkg.Fset.Position(a.Pos),
				Analyzer: "hotalloc",
				Message:  fmt.Sprintf("%s in hot function %s (%s)", a.What, n, RootPath(parent, n)),
			})
		}
	}
	return out
}

// HotRoots names the query-hot-path entry points hotalloc guards. The
// guard test TestHotRootsExist keeps this list attached to real code.
func HotRoots() []RootSpec {
	const mod = "rtreebuf"
	return []RootSpec{
		{Path: mod + "/internal/rtree", Recv: "Tree", Name: "Search*"},
		{Path: mod + "/internal/buffer", Recv: "Pool", Name: "Get"},
		{Path: mod + "/internal/buffer", Recv: "ShardedPool", Name: "Get"},
		{Path: mod + "/internal/core", Recv: "*", Name: "AccessProb"},
		{Path: mod + "/internal/core", Name: "AccessProbs"},
		{Path: mod + "/internal/core", Recv: "Predictor", Name: "DiskAccessesSweep"},
		{Path: mod + "/internal/sim", Name: "RunParallel"},
		// The obs write paths ride the buffer/query hot path (as nil-receiver
		// no-ops when metrics are off); root them explicitly so an allocation
		// grown there is flagged even if a refactor detaches them from the
		// Pool.Get call graph.
		{Path: mod + "/internal/obs", Recv: "Counter", Name: "*"},
		{Path: mod + "/internal/obs", Recv: "Gauge", Name: "*"},
		{Path: mod + "/internal/obs", Recv: "Histogram", Name: "Observe"},
		{Path: mod + "/internal/buffer", Recv: "Metrics", Name: "on*"},
	}
}
