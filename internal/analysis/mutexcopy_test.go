package analysis

import "testing"

func TestMutexCopyFlagsValueReceiversAndParams(t *testing.T) {
	runFixture(t, checkMutexCopy, "mutexcopy", `
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type nested struct{ g guarded }

func (g guarded) get() int    { return g.n } // WANT
func byValue(g guarded)       {}             // WANT
func deepValue(n nested)      {}             // WANT
func leak() (g guarded)       { return }     // WANT
func pointerRecvOK(g *guarded) {}
`)
}

func TestMutexCopyFlagsCopiesAndRangeValues(t *testing.T) {
	runFixture(t, checkMutexCopy, "mutexcopy", `
package fixture

import "sync"

type guarded struct {
	wg sync.WaitGroup
}

func copies(a *guarded, list []guarded) {
	b := *a // WANT
	c := list[0] // WANT
	use(&b)
	use(&c)
	for _, g := range list { // WANT
		use(&g)
	}
}

func use(*guarded) {}
`)
}

func TestMutexCopyAllowsPointersAndConstruction(t *testing.T) {
	runFixture(t, checkMutexCopy, "mutexcopy", `
package fixture

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type plain struct{ n int }

func (g *guarded) bump()      { g.mu.Lock(); g.n++; g.mu.Unlock() }
func construct() *guarded     { return &guarded{} }
func fresh() {
	g := guarded{n: 1}
	g.bump()
	p := &g
	q := p
	_ = q
}
func values(p plain) plain { return p }
`)
}
