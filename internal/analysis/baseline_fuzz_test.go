package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzReadBaseline drives arbitrary bytes through the baseline parser and
// checks its invariants: any readable file parses without error, every
// non-comment line is queryable back through Has with the raw line, the
// key count never exceeds the content-line count, and loading is
// idempotent. The parser sits between CI and a repository-controlled
// file, so it must be total over junk input (merge-conflict markers,
// truncated lines, binary garbage).
func FuzzReadBaseline(f *testing.F) {
	f.Add("")
	f.Add("# just a comment\n")
	f.Add("a/b.go: lockcheck: mu held across call\n")
	f.Add("a/b.go: lockcheck[1a2b3c4d]: mu held across call\n")
	f.Add("a/b.go: lockcheck[1a2b3c4d]: \n# trailing comment")
	f.Add("no colons at all\n\n\n")
	f.Add("<<<<<<< HEAD\nx.go: errcheck: dropped\n=======\n")
	f.Add("x.go: a[zzzzzzzz]: not hex\n")
	f.Add("\x00\xff binary junk [0123abcd]: tail")
	f.Fuzz(func(t *testing.T, data string) {
		path := filepath.Join(t.TempDir(), "baseline")
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Skip("unwritable input")
		}
		b, err := LoadBaseline(path)
		if err != nil {
			t.Fatalf("LoadBaseline on readable file: %v", err)
		}
		content := 0
		for _, line := range strings.Split(data, "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			content++
			if !b.Has(line) {
				t.Errorf("line %q not queryable after load", line)
			}
		}
		if b.Len() > content {
			t.Errorf("Len() = %d > %d content lines", b.Len(), content)
		}
		b2, err := LoadBaseline(path)
		if err != nil {
			t.Fatalf("second load: %v", err)
		}
		if b2.Len() != b.Len() {
			t.Errorf("reload changed key count: %d != %d", b2.Len(), b.Len())
		}
	})
}
