package analysis

import "testing"

func TestErrCheckFlagsDiscardedErrors(t *testing.T) {
	runFixture(t, checkErrCheck, "errcheck", `
package fixture

import "errors"

func fail() error          { return errors.New("boom") }
func pair() (int, error)   { return 0, errors.New("boom") }
func clean() int           { return 0 }

func drops() {
	fail() // WANT
	pair() // WANT
	clean()
}
`)
}

func TestErrCheckFlagsMethodCalls(t *testing.T) {
	runFixture(t, checkErrCheck, "errcheck", `
package fixture

import "os"

func closeTwice(f *os.File) {
	f.Close() // WANT
	f.Sync()  // WANT
}
`)
}

func TestErrCheckAllowsHandledAndExcluded(t *testing.T) {
	runFixture(t, checkErrCheck, "errcheck", `
package fixture

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func handled() error {
	_ = fail()
	if err := fail(); err != nil {
		return err
	}
	defer fail()
	fmt.Println("progress")
	fmt.Fprintf(os.Stderr, "progress")
	var b strings.Builder
	b.WriteByte('x')
	crc32.NewIEEE().Write([]byte("x"))
	fail() //lint:allow errcheck best effort by design
	return fail()
}
`)
}

func TestErrCheckFlagsFprintfToRealWriters(t *testing.T) {
	runFixture(t, checkErrCheck, "errcheck", `
package fixture

import (
	"fmt"
	"os"
)

func report(f *os.File) {
	fmt.Fprintf(f, "header %d\n", 1) // WANT
	fmt.Fprintln(os.Stdout, "fine")
}
`)
}
