package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module call graph that backs the fact store
// (facts.go) and the fact-consuming analyzers (lockcheck, hotalloc,
// iopurity). The graph is intentionally conservative:
//
//   - static calls resolve to their *types.Func callee;
//   - interface method calls resolve by Class Hierarchy Analysis: every
//     named module type implementing the interface contributes its method
//     as a possible target (stdlib implementers contribute their intrinsic
//     facts but no node);
//   - a function or method used as a *value* (method value, function
//     passed as callback, stored in a struct field) adds a reference edge,
//     because the graph cannot see where the value is eventually invoked;
//   - calls through plain function-typed values resolve to nothing — the
//     reference edges created where those values were formed keep the
//     facts sound, but a value produced outside the module is a known gap.
//
// Facts therefore over-approximate: a reported fact may be unreachable in
// practice, but an absent fact is trustworthy within the gaps above.

// FuncNode is one declared module function or method in the call graph.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// Calls lists every resolved call and value-reference site in body
	// source order.
	Calls []*Call
	// Intrinsics are the facts this body establishes directly (channel
	// operations, calls into fact-bearing stdlib, ...).
	Intrinsics []Intrinsic
	// Allocs are the body's heap-allocation sites (hotalloc's raw
	// material; they also induce the allocates fact).
	Allocs []AllocSite

	// Facts is the transitive fact set, computed bottom-up over SCCs.
	Facts FactSet

	sites map[token.Pos]*Call  // call expression position -> site
	via   map[FactSet]*witness // single fact bit -> how it was acquired

	index, lowlink int // Tarjan bookkeeping
	onStack        bool
}

// String renders the function as package.Name or package.(*Recv).Name.
func (n *FuncNode) String() string { return funcDisplay(n.Fn) }

// SiteAt returns the call site recorded for a call expression position.
func (n *FuncNode) SiteAt(pos token.Pos) *Call { return n.sites[pos] }

// Call is one call or function-value reference inside a function body.
type Call struct {
	Pos  token.Pos
	Expr *ast.CallExpr // nil for value references
	// Targets are the module functions possibly invoked here.
	Targets []*FuncNode
	// Callee is the resolved callee object: the static callee for direct
	// calls, the interface method for dispatch sites, the referenced
	// function for value references, nil for dynamic calls. The effect
	// store matches it against the effect table.
	Callee *types.Func
	// Std carries facts contributed by non-module callees at this site.
	Std FactSet
	// Desc describes the callee for diagnostics.
	Desc string
	// SyncAcq/SyncRel mark direct sync.Mutex/RWMutex acquisition and
	// release calls; lockcheck models these itself rather than treating
	// them as blocking callees.
	SyncAcq bool
	SyncRel bool
	// Dispatch marks a site resolved by interface CHA.
	Dispatch bool
	// Ref marks a value reference rather than a call.
	Ref bool
}

// Facts returns the union of the site's stdlib facts and every possible
// target's transitive facts.
func (c *Call) Facts() FactSet {
	f := c.Std
	for _, t := range c.Targets {
		f |= t.Facts
	}
	return f
}

// Intrinsic is one fact a function body establishes directly.
type Intrinsic struct {
	Fact FactSet
	Pos  token.Pos
	What string
}

// AllocSite is one heap-allocation site.
type AllocSite struct {
	Pos  token.Pos
	What string
}

// CallGraph is the whole-module call graph plus the per-function facts
// derived from it.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
	order []*FuncNode // deterministic: by import path, then position
	named []*types.Named
	cha   map[chaKey][]*types.Func
}

type chaKey struct {
	iface *types.Interface
	id    string
}

// NewCallGraph builds the graph over the given packages (normally one
// whole module) and computes transitive facts.
func NewCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes: make(map[*types.Func]*FuncNode),
		cha:   make(map[chaKey][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &FuncNode{
					Fn: fn, Pkg: pkg, Decl: fd,
					sites: make(map[token.Pos]*Call),
					via:   make(map[FactSet]*witness),
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.named = append(g.named, named)
		}
	}
	sort.Slice(g.named, func(i, j int) bool {
		a, b := g.named[i].Obj(), g.named[j].Obj()
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
	for _, n := range g.nodes {
		g.order = append(g.order, n)
	}
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.order[i], g.order[j]
		if a.Pkg.ImportPath != b.Pkg.ImportPath {
			return a.Pkg.ImportPath < b.Pkg.ImportPath
		}
		return a.Decl.Pos() < b.Decl.Pos()
	})
	for _, n := range g.order {
		if n.Decl.Body != nil {
			g.walkBody(n)
		}
	}
	g.computeFacts()
	return g
}

// Nodes returns every function in deterministic order.
func (g *CallGraph) Nodes() []*FuncNode { return g.order }

// NodeOf returns the node for a module function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	return g.nodes[fn.Origin()]
}

// implementers resolves an interface method to the corresponding methods
// of every named module type implementing the interface (CHA).
func (g *CallGraph) implementers(iface *types.Interface, m *types.Func) []*types.Func {
	key := chaKey{iface, m.Id()}
	if r, ok := g.cha[key]; ok {
		return r
	}
	var out []*types.Func
	for _, named := range g.named {
		pt := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(pt, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, false, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	g.cha[key] = out
	return out
}

// walkBody records the function's call sites, value references,
// intrinsics, and allocation sites.
func (g *CallGraph) walkBody(n *FuncNode) {
	info := n.Pkg.Info
	exempt := exemptRanges(n.Pkg, n.Decl.Body)
	claimed := make(map[ast.Node]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			claimed[ast.Unparen(x.Fun)] = true
			g.addCall(n, x, exempt)

		case *ast.SelectorExpr:
			claimed[x.Sel] = true
			if claimed[x] {
				return true
			}
			if sel, ok := info.Selections[x]; ok {
				if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
					m, _ := sel.Obj().(*types.Func)
					if m == nil {
						return true
					}
					if iface, ok := sel.Recv().Underlying().(*types.Interface); ok && sel.Kind() == types.MethodVal {
						g.addDispatch(n, x.Pos(), nil, sel.Recv(), iface, m, true)
					} else {
						g.addRef(n, x.Pos(), m)
					}
				}
			} else if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				g.addRef(n, x.Pos(), fn) // qualified pkg.Func used as a value
			}

		case *ast.Ident:
			if claimed[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				g.addRef(n, x.Pos(), fn) // local function used as a value
			}

		case *ast.FuncLit:
			if !exempt.covers(x.Pos()) {
				n.Allocs = append(n.Allocs, AllocSite{x.Pos(), "closure (func literal)"})
			}
			// Keep descending: the literal's body executes within this
			// function's dynamic extent (conservatively, even when the
			// closure is stored for later).

		case *ast.UnaryExpr:
			switch x.Op {
			case token.AND:
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					claimed[lit] = true
					if !exempt.covers(x.Pos()) {
						n.Allocs = append(n.Allocs, AllocSite{x.Pos(), "address-taken composite literal " + typeOfString(info, lit)})
					}
				}
			case token.ARROW:
				n.Intrinsics = append(n.Intrinsics, Intrinsic{FactMayBlock, x.Pos(), "channel receive"})
			}

		case *ast.CompositeLit:
			if claimed[x] {
				return true
			}
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				if !exempt.covers(x.Pos()) {
					n.Allocs = append(n.Allocs, AllocSite{x.Pos(), "slice literal " + typeOfString(info, x)})
				}
			case *types.Map:
				if !exempt.covers(x.Pos()) {
					n.Allocs = append(n.Allocs, AllocSite{x.Pos(), "map literal " + typeOfString(info, x)})
				}
			}

		case *ast.SendStmt:
			n.Intrinsics = append(n.Intrinsics, Intrinsic{FactMayBlock, x.Pos(), "channel send"})
		case *ast.SelectStmt:
			n.Intrinsics = append(n.Intrinsics, Intrinsic{FactMayBlock, x.Pos(), "select statement"})
			// With two or more communication cases the scheduler picks
			// among simultaneously ready ones pseudo-randomly.
			cases := 0
			for _, cl := range x.Body.List {
				if c, ok := cl.(*ast.CommClause); ok && c.Comm != nil {
					cases++
				}
			}
			if cases >= 2 {
				n.Intrinsics = append(n.Intrinsics, Intrinsic{FactNondet, x.Pos(), "select with multiple communication cases"})
			}
		case *ast.GoStmt:
			n.Intrinsics = append(n.Intrinsics, Intrinsic{FactSpawnsGoroutine, x.Pos(), "go statement"})
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Chan:
					n.Intrinsics = append(n.Intrinsics, Intrinsic{FactMayBlock, x.Pos(), "range over channel"})
				case *types.Map:
					// Key or value bound: iteration order varies run to run.
					// A keyless `for range m {}` only counts iterations.
					if x.Key != nil || x.Value != nil {
						n.Intrinsics = append(n.Intrinsics, Intrinsic{FactNondet, x.Pos(), "range over map (iteration order)"})
					}
				}
			}
		}
		return true
	})
}

// addCall resolves one call expression.
func (g *CallGraph) addCall(n *FuncNode, call *ast.CallExpr, exempt spans) {
	info := n.Pkg.Info
	fun := ast.Unparen(call.Fun)

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		g.addConversionAlloc(n, call, exempt)
		return
	}

	var obj types.Object
	var sel *types.Selection
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[f]; ok {
			sel = s
			obj = s.Obj()
		} else {
			obj = info.Uses[f.Sel]
		}
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			obj = info.Uses[id] // generic instantiation f[T](...)
		}
	}

	switch callee := obj.(type) {
	case *types.Builtin:
		g.addBuiltinAlloc(n, call, callee.Name(), exempt)
		return
	case *types.Func:
		if sel != nil && sel.Kind() == types.MethodVal {
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				g.addDispatch(n, call.Pos(), call, sel.Recv(), iface, callee, false)
				g.addBoxing(n, call, exempt)
				return
			}
		}
		c := &Call{Pos: call.Pos(), Expr: call, Desc: funcDisplay(callee), Callee: callee}
		if tn := g.NodeOf(callee); tn != nil {
			c.Targets = []*FuncNode{tn}
		} else {
			c.Std, c.SyncAcq, c.SyncRel = stdFacts(callee)
			g.addStdIntrinsic(n, c)
		}
		n.Calls = append(n.Calls, c)
		n.sites[call.Pos()] = c
	default:
		// Call through a function-typed value: the reference edge added
		// where the value was formed keeps facts sound.
		c := &Call{Pos: call.Pos(), Expr: call, Desc: "dynamic call through function value"}
		n.Calls = append(n.Calls, c)
		n.sites[call.Pos()] = c
	}
	g.addBoxing(n, call, exempt)
}

// addDispatch resolves an interface method call or method value by CHA.
func (g *CallGraph) addDispatch(n *FuncNode, pos token.Pos, expr *ast.CallExpr, recv types.Type, iface *types.Interface, m *types.Func, ref bool) {
	c := &Call{
		Pos: pos, Expr: expr, Dispatch: true, Ref: ref, Callee: m,
		Desc: "interface method " + typeString(recv) + "." + m.Name(),
	}
	for _, fn := range g.implementers(iface, m) {
		if tn := g.NodeOf(fn); tn != nil {
			c.Targets = append(c.Targets, tn)
		} else {
			std, acq, rel := stdFacts(fn)
			c.Std |= std
			c.SyncAcq = c.SyncAcq || acq
			c.SyncRel = c.SyncRel || rel
		}
	}
	g.addStdIntrinsic(n, c)
	n.Calls = append(n.Calls, c)
	if expr != nil {
		n.sites[expr.Pos()] = c
	}
}

// addRef records a function or method used as a value.
func (g *CallGraph) addRef(n *FuncNode, pos token.Pos, fn *types.Func) {
	c := &Call{Pos: pos, Ref: true, Desc: "reference to " + funcDisplay(fn), Callee: fn}
	if tn := g.NodeOf(fn); tn != nil {
		c.Targets = []*FuncNode{tn}
	} else {
		c.Std, _, _ = stdFacts(fn)
		if c.Std == 0 {
			return // fact-free stdlib reference: nothing to record
		}
		g.addStdIntrinsic(n, c)
	}
	n.Calls = append(n.Calls, c)
}

// addStdIntrinsic turns a site's stdlib facts into intrinsics so witness
// chains can explain them.
func (g *CallGraph) addStdIntrinsic(n *FuncNode, c *Call) {
	if c.Std != 0 {
		n.Intrinsics = append(n.Intrinsics, Intrinsic{c.Std, c.Pos, "call to " + c.Desc})
	}
}

// addBuiltinAlloc records allocation sites for allocating builtins.
func (g *CallGraph) addBuiltinAlloc(n *FuncNode, call *ast.CallExpr, name string, exempt spans) {
	if exempt.covers(call.Pos()) {
		return
	}
	switch name {
	case "make":
		n.Allocs = append(n.Allocs, AllocSite{call.Pos(), "make"})
	case "new":
		n.Allocs = append(n.Allocs, AllocSite{call.Pos(), "new"})
	case "append":
		n.Allocs = append(n.Allocs, AllocSite{call.Pos(), "append (may grow backing array)"})
	}
}

// addConversionAlloc flags string<->[]byte/[]rune conversions, which copy.
func (g *CallGraph) addConversionAlloc(n *FuncNode, call *ast.CallExpr, exempt spans) {
	if len(call.Args) != 1 || exempt.covers(call.Pos()) {
		return
	}
	info := n.Pkg.Info
	dst := info.TypeOf(call.Fun)
	src := info.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if isStringSliceConv(dst.Underlying(), src.Underlying()) || isStringSliceConv(src.Underlying(), dst.Underlying()) {
		n.Allocs = append(n.Allocs, AllocSite{call.Pos(), "string conversion copies"})
	}
}

func isStringSliceConv(a, b types.Type) bool {
	if basic, ok := a.(*types.Basic); !ok || basic.Info()&types.IsString == 0 {
		return false
	}
	s, ok := b.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// addBoxing flags arguments converted to interface parameters, which box
// non-pointer-shaped values onto the heap.
func (g *CallGraph) addBoxing(n *FuncNode, call *ast.CallExpr, exempt spans) {
	info := n.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // arg... passes the slice itself
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg]
		if at.Type == nil || at.Value != nil || at.IsNil() || types.IsInterface(at.Type) {
			continue
		}
		if pointerShaped(at.Type) || exempt.covers(arg.Pos()) {
			continue
		}
		n.Allocs = append(n.Allocs, AllocSite{arg.Pos(), "interface boxing of " + typeString(at.Type) + " argument"})
	}
}

// pointerShaped reports whether values of t fit in an interface word
// without a heap allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// spans is a set of position ranges exempt from allocation reporting.
type spans []span

type span struct{ lo, hi token.Pos }

func (s spans) covers(p token.Pos) bool {
	for _, r := range s {
		if r.lo <= p && p < r.hi {
			return true
		}
	}
	return false
}

// exemptRanges computes the body regions where allocations are expected
// and cold, so hotalloc does not drown real findings in error-path noise:
// error-constructor calls (fmt.Errorf, errors.New, errors.Join), panic
// arguments, and the branch of an error-nil check that handles the error.
func exemptRanges(pkg *Package, body *ast.BlockStmt) spans {
	info := pkg.Info
	var out spans
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			var path, name string
			switch f := ast.Unparen(x.Fun).(type) {
			case *ast.Ident:
				if b, ok := info.Uses[f].(*types.Builtin); ok && b.Name() == "panic" {
					out = append(out, span{x.Pos(), x.End()})
				}
				return true
			case *ast.SelectorExpr:
				fn, ok := info.Uses[f.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				path, name = fn.Pkg().Path(), fn.Name()
			default:
				return true
			}
			if (path == "fmt" && name == "Errorf") || (path == "errors" && (name == "New" || name == "Join")) {
				out = append(out, span{x.Pos(), x.End()})
			}
		case *ast.IfStmt:
			if branch := errorBranch(info, x); branch != nil {
				out = append(out, span{branch.Pos(), branch.End()})
			}
		}
		return true
	})
	return out
}

// errorBranch returns the branch of an if statement that handles a
// non-nil error (the body of `if err != nil`, the else of `if err == nil`),
// or nil when the condition is not an error-nil test.
func errorBranch(info *types.Info, ifs *ast.IfStmt) ast.Stmt {
	var op token.Token
	found := false
	ast.Inspect(ifs.Cond, func(node ast.Node) bool {
		be, ok := node.(*ast.BinaryExpr)
		if !ok || (be.Op != token.NEQ && be.Op != token.EQL) || found {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if isNilErrTest(info, x, y) || isNilErrTest(info, y, x) {
			op, found = be.Op, true
		}
		return true
	})
	if !found {
		return nil
	}
	if op == token.NEQ {
		return ifs.Body
	}
	return ifs.Else // may be nil: `if err == nil { ... }` has no cold branch
}

var errType = types.Universe.Lookup("error").Type()

func isNilErrTest(info *types.Info, errSide, nilSide ast.Expr) bool {
	if id, ok := nilSide.(*ast.Ident); !ok || id.Name != "nil" {
		return false
	}
	t := info.TypeOf(errSide)
	return t != nil && types.Identical(t, errType)
}

// funcDisplay renders a function as package.Name or package.(*Recv).Name.
func funcDisplay(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	out := fn.Pkg().Name() + "."
	if r := recvType(fn); r != "" {
		out += "(" + r + ")."
	}
	return out + fn.Name()
}

// recvType returns the receiver type as written ("*Pool", "LRU"), or "".
func recvType(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, ok := t.(*types.Pointer); ok {
		t, ptr = p.Elem(), "*"
	}
	if named, ok := t.(*types.Named); ok {
		return ptr + named.Obj().Name()
	}
	return ptr + t.String()
}

// recvBase returns the receiver's named type without the pointer, or "".
func recvBase(fn *types.Func) string {
	return strings.TrimPrefix(recvType(fn), "*")
}

// typeString renders a type with package-name (not path) qualifiers.
func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func typeOfString(info *types.Info, e ast.Expr) string {
	if t := info.TypeOf(e); t != nil {
		return typeString(t)
	}
	return fmt.Sprintf("%T", e)
}
