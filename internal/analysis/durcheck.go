package analysis

// durcheck verifies the WAL commit protocol statically: it evaluates
// every effect-ordering rule (rules.go) against the interprocedural
// effect traces (effects.go) of each in-scope function. Both review bugs
// PR 7's crash matrix caught dynamically are durcheck rules now —
// sync-before-publish is the WriteMeta header-before-sync bug, and the
// commit-before-* family pins the commitUpdate step order.

// checkDur runs the durcheck-owned rules module-wide.
func checkDur(m *Module) []Finding {
	e := m.Effects()
	var vs []ruleViolation
	for _, r := range Rules() {
		if r.Analyzer != "durcheck" {
			continue
		}
		for _, n := range m.Graph.Nodes() {
			if n.Decl.Body == nil || !r.inScope(n.Fn) {
				continue
			}
			if !durTriggered(r, e, n) {
				continue
			}
			vs = append(vs, evalRule(r, e, n)...)
		}
	}
	return dedupViolations(vs)
}

// durTriggered prefilters by the cheap transitive effect set: a function
// that can never perform the rule's triggering effect cannot violate it,
// so its traces are never materialized. Effect-table functions are
// always checked — their set is the contract, which can differ from what
// their body actually does (checking that is the point).
func durTriggered(r *Rule, e *Effects, n *FuncNode) bool {
	if effectEntry(n.Fn) != nil {
		return true
	}
	s := e.EffectSet(n)
	switch r.Kind {
	case RulePrecedes, RuleSomeTrace:
		return s&r.B != 0
	case RuleSeparated:
		return s&r.C != 0
	case RuleEventually, RuleNever:
		return s&r.A != 0
	}
	return true
}
