package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkProbRange flags probability-valued functions that can return values
// outside [0,1]: the buffer model consumes access probabilities A_ij and
// quietly produces garbage (negative warm-up lengths, hit ratios above 1)
// if one escapes the unit interval. The paper's corrected uniform model
// (Section 3.1) exists precisely because the uncorrected Kamel–Faloutsos
// probabilities exceed 1 near the data-space boundary.
//
// A function is probability-valued when it returns a single float64 and is
// named AccessProb, or ends in Prob, Probability, or Ratio. Each of its
// return statements must be "guarded": a clamp call (math.Min, math.Max,
// or any function whose name contains "clamp"), a constant, or a call it
// delegates to. Returning raw arithmetic — directly or via a local
// variable whose only assignments are raw arithmetic — is flagged.
func checkProbRange(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isProbFunc(pkg, fn) {
				continue
			}
			assigns := localAssignments(pkg, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // nested closures are not the prob function's returns
				}
				ret, ok := n.(*ast.ReturnStmt)
				if !ok || len(ret.Results) != 1 {
					return true
				}
				expr := ast.Unparen(ret.Results[0])
				if bad, site := unclampedArith(pkg, expr, assigns, 0); bad {
					out = append(out, Finding{
						Pos:      pkg.Fset.Position(site.Pos()),
						Analyzer: "probrange",
						Message: "probability-valued " + fn.Name.Name +
							" returns unclamped arithmetic that can leave [0,1]; wrap in math.Min/math.Max/clamp01 or annotate with //lint:allow probrange",
					})
				}
				return true
			})
		}
	}
	return out
}

// isProbFunc reports whether fn is a probability-valued function by name
// and signature (single float64 result).
func isProbFunc(pkg *Package, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if name != "AccessProb" &&
		!strings.HasSuffix(name, "Prob") &&
		!strings.HasSuffix(name, "Probability") &&
		!strings.HasSuffix(name, "Ratio") {
		return false
	}
	results := fn.Type.Results
	if results == nil || len(results.List) != 1 || len(results.List[0].Names) > 1 {
		return false
	}
	t := exprType(pkg, results.List[0].Type)
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.Float64
}

// localAssignments maps each local variable object to the expressions
// assigned to it anywhere in the function body.
func localAssignments(pkg *Package, body *ast.BlockStmt) map[types.Object][]ast.Expr {
	out := make(map[types.Object][]ast.Expr)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil {
			out[obj] = append(out[obj], rhs)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			record(as.Lhs[i], as.Rhs[i])
		}
		return true
	})
	return out
}

// unclampedArith decides whether expr is raw arithmetic with no clamp on
// the way out, resolving one level of local-variable indirection. It
// returns the offending expression for the diagnostic position.
func unclampedArith(pkg *Package, expr ast.Expr, assigns map[types.Object][]ast.Expr, depth int) (bool, ast.Expr) {
	if depth > 4 {
		return false, nil
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return true, e
		}
		return false, nil
	case *ast.CallExpr:
		return false, nil // clamp or delegation — trusted either way
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			return false, nil
		}
		for _, rhs := range assigns[obj] {
			if isClampCall(rhs) {
				return false, nil // at least one assignment clamps; trust the flow
			}
		}
		for _, rhs := range assigns[obj] {
			if bad, _ := unclampedArith(pkg, rhs, assigns, depth+1); bad {
				return true, e
			}
		}
		return false, nil
	default:
		return false, nil
	}
}

// isClampCall reports whether expr is a call to a recognized clamping
// function: math.Min, math.Max, or anything whose name contains "clamp".
func isClampCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "clamp")
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if strings.Contains(strings.ToLower(name), "clamp") {
			return true
		}
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok && x.Name == "math" {
			return name == "Min" || name == "Max"
		}
	}
	return false
}
