package analysis

import (
	"go/ast"
	"go/types"
)

// checkErrCheck flags call statements that silently discard an error
// result: a call used as a bare expression statement whose type is (or
// contains) error. A dropped error in the storage or data-generation path
// turns a truncated page file into a silently wrong experiment.
//
// Explicitly discarding with `_ = f.Close()` is allowed — the point is
// that ignoring an error must be visible in the source. Deferred calls
// (`defer f.Close()` on read-only files) are likewise excluded: Go offers
// no non-contorted way to check them, and the repo's write paths already
// check Close explicitly.
//
// A small conventional exclusion list keeps the signal high, mirroring
// errcheck's defaults: fmt printers writing to the terminal (a failed
// progress line is not actionable), and the Write methods of
// strings.Builder, bytes.Buffer, and hash.Hash, which are documented to
// never return an error.
func checkErrCheck(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || !returnsError(pkg, call) || excludedCall(pkg, call) {
				return true
			}
			out = append(out, Finding{
				Pos:      pkg.Fset.Position(call.Pos()),
				Analyzer: "errcheck",
				Message:  "result of " + callName(call) + " contains an error that is silently discarded; handle it or assign to _",
			})
			return true
		})
	}
	return out
}

// returnsError reports whether call yields an error (alone or within a
// tuple). Type conversions never do.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion, not a call
	}
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

// excludedCall reports whether the call is on the conventional exclusion
// list (see checkErrCheck's doc comment).
func excludedCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Methods of never-failing writers: strings.Builder, bytes.Buffer,
	// and the hash interfaces/implementations.
	if s, ok := pkg.Info.Selections[sel]; ok {
		if neverFailingRecv(s.Recv()) {
			return true
		}
		return false
	}
	// Package-level functions: fmt printers.
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return false
	}
	switch obj.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		// Only when writing to the process's own terminal streams.
		if len(call.Args) == 0 {
			return false
		}
		if w, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
			if x, ok := ast.Unparen(w.X).(*ast.Ident); ok && x.Name == "os" {
				return w.Sel.Name == "Stdout" || w.Sel.Name == "Stderr"
			}
		}
	}
	return false
}

// neverFailingRecv reports whether t is a receiver whose error-returning
// methods are documented to never fail.
func neverFailingRecv(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "strings":
		return obj.Name() == "Builder"
	case "bytes":
		return obj.Name() == "Buffer"
	case "hash":
		return true // hash.Hash, Hash32, Hash64: Write never returns an error
	}
	return false
}

// callName renders a readable name for the called function.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
