package analysis

import "testing"

// one resolves exactly one node by name (bare or display form).
func one(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	nodes := g.ResolveName(name)
	if len(nodes) != 1 {
		t.Fatalf("ResolveName(%q) = %d nodes, want 1", name, len(nodes))
	}
	return nodes[0]
}

// TestFactsMutualRecursionSCC puts the I/O evidence outside a two-function
// cycle: both members must inherit it, the witness chain must thread
// through the cycle to the intrinsic, and a self-recursive pure function
// must stay pure.
func TestFactsMutualRecursionSCC(t *testing.T) {
	pkg := fixturePkg(t, `package scc

import "os"

func ping(n int) error {
	if n == 0 {
		return touch()
	}
	return pong(n - 1)
}

func pong(n int) error {
	return ping(n - 1)
}

func touch() error {
	_, err := os.Create("x")
	return err
}

func pure(n int) int {
	if n <= 0 {
		return 0
	}
	return n + pure(n-1)
}
`)
	g := NewModule([]*Package{pkg}).Graph
	for _, name := range []string{"ping", "pong", "touch"} {
		n := one(t, g, name)
		if n.Facts&FactDoesIO == 0 || n.Facts&FactMayBlock == 0 {
			t.Errorf("%s facts = %s, want doesIO|mayBlock", name, n.Facts)
		}
	}
	if p := one(t, g, "pure"); p.Facts != 0 {
		t.Errorf("pure facts = %s, want pure", p.Facts)
	}
	chain := g.FactChain(one(t, g, "pong"), FactDoesIO)
	if len(chain) < 2 {
		t.Errorf("FactChain(pong, doesIO) = %v, want a multi-hop chain through the cycle", chain)
	}
}

// TestFactsMethodValueReference checks the conservative reference edge: a
// method handed around as a value taints the function forming the value,
// because the graph cannot see where the value is invoked.
func TestFactsMethodValueReference(t *testing.T) {
	pkg := fixturePkg(t, `package mv

import "os"

type sink struct{ f *os.File }

func (s *sink) flush() error {
	return s.f.Sync()
}

func holder(s *sink) func() error {
	return s.flush
}

func bystander(n int) int {
	return n * 2
}
`)
	g := NewModule([]*Package{pkg}).Graph
	h := one(t, g, "holder")
	if h.Facts&FactDoesIO == 0 {
		t.Errorf("holder facts = %s, want doesIO through the method value", h.Facts)
	}
	if b := one(t, g, "bystander"); b.Facts != 0 {
		t.Errorf("bystander facts = %s, want pure", b.Facts)
	}
}

// TestDispatchTargetsOverInterface checks CHA resolution: a call through
// an interface must list every module implementer as a target and union
// their facts.
func TestDispatchTargetsOverInterface(t *testing.T) {
	pkg := fixturePkg(t, `package ifd

import "os"

type device interface {
	read(p []byte) (int, error)
}

type fileDev struct{ f *os.File }

func (d *fileDev) read(p []byte) (int, error) { return d.f.Read(p) }

type memDev struct{ data []byte }

func (d *memDev) read(p []byte) (int, error) { return copy(p, d.data), nil }

func drain(d device, p []byte) (int, error) {
	return d.read(p)
}
`)
	g := NewModule([]*Package{pkg}).Graph
	n := one(t, g, "drain")
	var dispatch *Call
	for _, c := range n.Calls {
		if c.Dispatch {
			if dispatch != nil {
				t.Fatalf("drain has more than one dispatch site")
			}
			dispatch = c
		}
	}
	if dispatch == nil {
		t.Fatal("drain has no dispatch call site")
	}
	if len(dispatch.Targets) != 2 {
		t.Errorf("dispatch targets = %d, want 2 (fileDev and memDev)", len(dispatch.Targets))
	}
	if n.Facts&FactDoesIO == 0 {
		t.Errorf("drain facts = %s, want doesIO from the fileDev implementer", n.Facts)
	}
}
