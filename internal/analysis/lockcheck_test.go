package analysis

import "testing"

// lockcheckAnalyzer is the module-wide lockcheck entry as Run sees it.
func lockcheckAnalyzer() *Analyzer {
	return &Analyzer{Name: "lockcheck", CheckModule: checkLock}
}

func TestLockCheckLeaks(t *testing.T) {
	runModuleFixture(t, lockcheckAnalyzer(), []fixtureFile{{
		path: "fixture/TestLockCheckLeaks",
		src: `package fix

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) earlyReturn(flag bool) int {
	b.mu.Lock()
	if flag {
		return -1 // WANT
	}
	b.mu.Unlock()
	return b.n
}

func (b *box) endLeak() {
	b.mu.Lock()
	b.n++
} // WANT

func (b *box) doubleLock() {
	b.mu.Lock()
	b.mu.Lock() // WANT
	b.mu.Unlock()
	b.mu.Unlock()
}

func (b *box) deferOK() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *box) branchesOK(flag bool) int {
	b.mu.Lock()
	if flag {
		b.mu.Unlock()
		return -1
	}
	b.mu.Unlock()
	return b.n
}
`,
	}})
}

func TestLockCheckHeldAcrossIO(t *testing.T) {
	runModuleFixture(t, lockcheckAnalyzer(), []fixtureFile{{
		path: "fixture/TestLockCheckHeldAcrossIO",
		src: `package fix

import (
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
}

// load's doesIO fact comes from os.ReadFile, one call deep.
func load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func (s *store) bad(path string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return load(path) // WANT
}

func (s *store) good(path string) ([]byte, error) {
	s.mu.Lock()
	s.mu.Unlock()
	return load(path)
}
`,
	}})
}

func TestLockCheckChannelOps(t *testing.T) {
	runModuleFixture(t, lockcheckAnalyzer(), []fixtureFile{{
		path: "fixture/TestLockCheckChannelOps",
		src: `package fix

import "sync"

type q struct {
	mu sync.Mutex
	ch chan int
}

func (x *q) recvUnderLock() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	v := <-x.ch // WANT
	return v
}

func (x *q) sendUnderLock(v int) {
	x.mu.Lock()
	x.ch <- v // WANT
	x.mu.Unlock()
}

func (x *q) recvOutsideLock() int {
	v := <-x.ch
	x.mu.Lock()
	defer x.mu.Unlock()
	return v
}
`,
	}})
}

// TestLockCheckCrossPackage is the acceptance fixture for fact flow: the
// blocking evidence is an os call two hops away, reached through an
// interface dispatch in another package.
func TestLockCheckCrossPackage(t *testing.T) {
	runModuleFixture(t, lockcheckAnalyzer(), []fixtureFile{
		{
			path: "fixture/TestLockCheckCrossPackage/dev",
			src: `package dev

import "os"

// Dev abstracts the page source, mirroring storage.DiskManager.
type Dev interface {
	Read(p []byte) (int, error)
}

type File struct {
	f *os.File
}

func (d *File) Read(p []byte) (int, error) {
	return d.f.Read(p)
}
`,
		},
		{
			path: "fixture/TestLockCheckCrossPackage/pool",
			src: `package pool

import (
	"sync"

	"fixture/TestLockCheckCrossPackage/dev"
)

type Pool struct {
	mu sync.Mutex
	d  dev.Dev
}

// Fill holds mu across an interface dispatch whose only implementer
// does real I/O: the doesIO fact crosses the package boundary.
func (p *Pool) Fill(buf []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.d.Read(buf) // WANT
}

func (p *Pool) FillUnlocked(buf []byte) (int, error) {
	p.mu.Lock()
	p.mu.Unlock()
	return p.d.Read(buf)
}
`,
		},
	})
}
