package analysis

import (
	"fmt"
	"strings"
)

// iopurity enforces that the simulation and analytic-model layers stay
// deterministic and disk-free: every experiment figure depends on the
// model and the simulator computing identical access sequences, so a
// code path from either into real I/O (storage, os, net) is a layering
// bug even when it happens to work. The check is transitive through the
// call graph, so a violation introduced three calls deep in a helper
// package is still pinned to the root that reaches it, with the chain.
func checkIOPurity(m *Module, roots []RootSpec) []Finding {
	g := m.Graph
	var out []Finding
	seen := make(map[*FuncNode]bool)
	for _, spec := range roots {
		for _, n := range g.Resolve(spec) {
			if seen[n] {
				continue
			}
			seen[n] = true
			if n.Facts&FactDoesIO == 0 {
				continue
			}
			chain := strings.Join(g.FactChain(n, FactDoesIO), "; ")
			out = append(out, Finding{
				Pos:      n.Pkg.Fset.Position(n.Decl.Pos()),
				Analyzer: "iopurity",
				Message:  fmt.Sprintf("%s must stay disk-free but transitively does I/O: %s", n, chain),
			})
		}
	}
	return out
}

// PureRoots names the functions iopurity holds to the no-I/O contract:
// the simulation entry points and the whole analytic model package.
func PureRoots() []RootSpec {
	const mod = "rtreebuf"
	return []RootSpec{
		{Path: mod + "/internal/sim", Name: "Run*"},
		{Path: mod + "/internal/sim", Name: "Transient"},
		{Path: mod + "/internal/core", Recv: "*", Name: "*"},
	}
}
