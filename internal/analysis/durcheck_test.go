package analysis

import (
	"strings"
	"testing"
)

// protoPrelude is the shared protocol model the durcheck fixtures build
// on: a disk manager, a WAL, and a pool whose well-known methods carry
// the effect-table contracts, mirroring the real storage/buffer shapes.
const protoPrelude = `package protofix

type Dev struct{ dirty bool }

func (d *Dev) WritePage(page int, b []byte) error { d.dirty = true; return nil }
func (d *Dev) WriteMeta(b []byte) error           { return nil }
func (d *Dev) Sync() error                        { d.dirty = false; return nil }

type Batch struct {
	pages []int
	meta  []byte
}

type WAL struct{ batches []Batch }

func (w *WAL) AppendBatch(pages []int, meta []byte) (uint64, error) { return 1, nil }
func (w *WAL) Checkpoint(batch uint64) error                        { return nil }

type Pool struct{ dev *Dev }

func (p *Pool) Put(page int, b []byte) error { return nil }
func (p *Pool) FlushDirty() error            { return nil }

func syncManager(d *Dev) error { return d.Sync() }

type Tree struct {
	dm      *Dev
	wal     *WAL
	pool    *Pool
	due     bool
	ckptErr error
}
`

// goodCommit is the faithful §7e step order; fixtures append it or a
// mutated copy to the prelude.
const goodCommit = `
func (t *Tree) commitUpdate(pages []int, meta []byte) error {
	if _, err := t.wal.AppendBatch(pages, meta); err != nil {
		return err
	}
	for _, pg := range pages {
		if err := t.pool.Put(pg, nil); err != nil {
			return err
		}
	}
	if err := t.pool.FlushDirty(); err != nil {
		return err
	}
	if err := t.dm.WriteMeta(meta); err != nil {
		return err
	}
	if t.due {
		if err := syncManager(t.dm); err != nil {
			t.ckptErr = err
		} else if err := t.wal.Checkpoint(1); err != nil {
			t.ckptErr = err
		} else {
			t.ckptErr = nil
		}
	}
	return nil
}
`

const goodRecover = `
func Recover(d *Dev, w *WAL) error {
	for _, b := range w.batches {
		for _, pg := range b.pages {
			if err := d.WritePage(pg, nil); err != nil {
				return err
			}
		}
		if err := d.WriteMeta(b.meta); err != nil {
			return err
		}
	}
	return nil
}
`

func analyzerNamed(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

// TestDurcheckCleanProtocol is the negative control: the faithful commit
// protocol and recovery order raise nothing.
func TestDurcheckCleanProtocol(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "durcheck"), []fixtureFile{
		{path: "fixture/protofix", src: protoPrelude + goodCommit + goodRecover},
	})
}

// TestDurcheckEarlyWriteBack seeds the hoisted-write-back mutation: a
// helper flushes the pool before AppendBatch, so the commit-before-
// writeback violation must surface interprocedurally at the helper call.
func TestDurcheckEarlyWriteBack(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "durcheck"), []fixtureFile{
		{path: "fixture/protofix", src: protoPrelude + `
func stage(p *Pool) error { return p.FlushDirty() }

func (t *Tree) commitUpdate(pages []int, meta []byte) error {
	if err := stage(t.pool); err != nil { // WANT
		return err
	}
	if _, err := t.wal.AppendBatch(pages, meta); err != nil {
		return err
	}
	if err := t.dm.WriteMeta(meta); err != nil {
		return err
	}
	return nil
}
`},
	})
}

// TestDurcheckEarlyWriteBackWitness pins the witness chain of the
// interprocedural finding: it must thread commitUpdate -> stage ->
// the pool write-back.
func TestDurcheckEarlyWriteBackWitness(t *testing.T) {
	pkgs := fixtureModule(t, []fixtureFile{
		{path: "fixture/protofix", src: protoPrelude + `
func stage(p *Pool) error { return p.FlushDirty() }

func (t *Tree) commitUpdate(pages []int, meta []byte) error {
	if err := stage(t.pool); err != nil {
		return err
	}
	if _, err := t.wal.AppendBatch(pages, meta); err != nil {
		return err
	}
	return nil
}
`},
	})
	findings := Run(pkgs, []*Analyzer{analyzerNamed(t, "durcheck")})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the early write-back", findings)
	}
	msg := findings[0].Message
	for _, needle := range []string{"commit-before-writeback", "calls protofix.stage", "FlushDirty", "witness:"} {
		if !strings.Contains(msg, needle) {
			t.Errorf("finding message missing %q: %s", needle, msg)
		}
	}
}

// TestDurcheckWriteMetaNoSync seeds the PR 7 WriteMeta bug: an
// implementation none of whose paths sync before the header publish.
func TestDurcheckWriteMetaNoSync(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "durcheck"), []fixtureFile{
		{path: "fixture/metafix", src: `package metafix

type OSFile struct{}

func (f *OSFile) Sync() error { return nil }

type FileMgr struct {
	f     *OSFile
	dirty bool
}

func (m *FileMgr) writeHeader() error { return nil }

func (m *FileMgr) WriteMeta(b []byte) error {
	return m.writeHeader() // WANT
}

type GoodMgr struct {
	f     *OSFile
	dirty bool
}

func (m *GoodMgr) writeHeader() error { return nil }

func (m *GoodMgr) WriteMeta(b []byte) error {
	if m.dirty {
		if err := m.f.Sync(); err != nil {
			return err
		}
		m.dirty = false
	}
	return m.writeHeader()
}
`},
	})
}

// TestDurcheckCheckpointBeforeSync seeds the checkpoint misorder: the
// WAL is truncated while the catalog publish is not yet covered by a
// sync.
func TestDurcheckCheckpointBeforeSync(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "durcheck"), []fixtureFile{
		{path: "fixture/protofix", src: protoPrelude + `
func (t *Tree) commitUpdate(pages []int, meta []byte) error {
	if _, err := t.wal.AppendBatch(pages, meta); err != nil {
		return err
	}
	if err := t.pool.FlushDirty(); err != nil {
		return err
	}
	if err := t.dm.WriteMeta(meta); err != nil {
		return err
	}
	if t.due {
		if err := t.wal.Checkpoint(1); err != nil { // WANT
			t.ckptErr = err
		} else if err := syncManager(t.dm); err != nil {
			t.ckptErr = err
		}
	}
	return nil
}
`},
	})
}

// TestDurcheckRecoverNoCatalog seeds a recovery that replays pages but
// never reinstalls the batch's catalog snapshot.
func TestDurcheckRecoverNoCatalog(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "durcheck"), []fixtureFile{
		{path: "fixture/protofix", src: protoPrelude + `
func Recover(d *Dev, w *WAL) error {
	for _, b := range w.batches {
		for _, pg := range b.pages {
			if err := d.WritePage(pg, nil); err != nil { // WANT
				return err
			}
		}
	}
	return nil
}
`},
	})
}

// TestDurcheckPoolWritesCatalog seeds a layering violation: a pool
// write-back path publishing the catalog.
func TestDurcheckPoolWritesCatalog(t *testing.T) {
	runModuleFixture(t, analyzerNamed(t, "durcheck"), []fixtureFile{
		{path: "fixture/poolfix", src: `package poolfix

type Dev struct{}

func (d *Dev) WritePage(page int, b []byte) error { return nil }
func (d *Dev) WriteMeta(b []byte) error           { return nil }

type Pool struct {
	dev    *Dev
	frames [][]byte
}

func (p *Pool) FlushDirty() error {
	for pg, b := range p.frames {
		if err := p.dev.WritePage(pg, b); err != nil {
			return err
		}
	}
	return p.dev.WriteMeta(nil) // WANT
}
`},
	})
}

// TestDurcheckRulesResolve guards the rule scopes against silent rot the
// same way TestHotRootsExist guards the fact roots: every scoped rule
// must match at least one real-repo function, and the rule registry must
// stay consistent.
func TestDurcheckRulesResolve(t *testing.T) {
	m := loadRepoModule(t)
	for _, r := range Rules() {
		if r.Name == "" || r.Doc == "" || r.Step == "" || r.Witness == "" {
			t.Errorf("rule %q has empty documentation fields", r.Name)
		}
		if RuleByName(r.Name) == nil {
			t.Errorf("RuleByName(%q) does not resolve", r.Name)
		}
		if len(r.Scope) == 0 {
			continue
		}
		matched := false
		for _, n := range m.Graph.Nodes() {
			if r.inScope(n.Fn) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("rule %s scopes %v match no repository function", r.Name, r.Scope)
		}
	}
}

// repoEffNode resolves one real-repo function for the protocol
// assertions.
func repoEffNode(t *testing.T, m *Module, name string) *FuncNode {
	t.Helper()
	ns := m.Graph.ResolveName(name)
	if len(ns) != 1 {
		t.Fatalf("ResolveName(%s) = %d nodes, want 1", name, len(ns))
	}
	return ns[0]
}

// ruleNamed fetches a rule for direct evaluation.
func ruleNamed(t *testing.T, name string) *Rule {
	t.Helper()
	r := RuleByName(name)
	if r == nil {
		t.Fatalf("no rule %q", name)
	}
	return r
}

// TestRepoCommitUpdateSatisfiesRules is the real-repo assertion for
// commitUpdate: its traces actually reach every protocol effect (the
// rules are not vacuously true) and every commitUpdate-scoped rule
// passes.
func TestRepoCommitUpdateSatisfiesRules(t *testing.T) {
	m := loadRepoModule(t)
	e := m.Effects()
	n := repoEffNode(t, m, "storage.(*PagedTree).commitUpdate")

	set := e.EffectSet(n)
	for _, eff := range []Effect{EffLogAppend, EffCommit, EffWriteBack, EffSync, EffMetaWrite, EffCheckpoint} {
		if !set.Has(eff) {
			t.Errorf("commitUpdate effect set %s lacks %s — the protocol rules would be vacuous", set, eff)
		}
	}
	var sawFullTrace bool
	for _, tr := range e.BodyTraces(n) {
		s := tr.Set()
		if !tr.Approx && s.Has(EffCommit) && s.Has(EffWriteBack) && s.Has(EffMetaWrite) && s.Has(EffCheckpoint) {
			sawFullTrace = true
		}
	}
	if !sawFullTrace {
		t.Error("no precise commitUpdate trace covers commit, write-back, catalog, and checkpoint")
	}
	for _, name := range []string{
		"commit-before-writeback", "commit-before-catalog",
		"commit-before-checkpoint", "checkpoint-after-sync", "sync-before-publish",
	} {
		if vs := evalRule(ruleNamed(t, name), e, n); len(vs) != 0 {
			t.Errorf("rule %s violated by commitUpdate: %v", name, vs[0].Finding())
		}
	}
}

// TestRepoWriteMetaSatisfiesContract is the real-repo assertion for
// FileManager.WriteMeta: its body genuinely publishes a header and some
// path syncs first.
func TestRepoWriteMetaSatisfiesContract(t *testing.T) {
	m := loadRepoModule(t)
	e := m.Effects()
	n := repoEffNode(t, m, "storage.(*FileManager).WriteMeta")

	var publishes, syncsFirst bool
	for _, tr := range e.BodyTraces(n) {
		seenSync := false
		for _, ev := range tr.Events {
			switch ev.Eff {
			case EffSync:
				seenSync = true
			case EffMetaWrite:
				publishes = true
				if seenSync {
					syncsFirst = true
				}
			}
		}
	}
	if !publishes {
		t.Fatal("FileManager.WriteMeta body publishes no header — writemeta-syncs is vacuous")
	}
	if !syncsFirst {
		t.Error("no FileManager.WriteMeta trace syncs before the header publish")
	}
	if vs := evalRule(ruleNamed(t, "writemeta-syncs"), e, n); len(vs) != 0 {
		t.Errorf("writemeta-syncs violated: %v", vs[0].Finding())
	}
}

// TestRepoRecoverSatisfiesRules is the real-repo assertion for Recover:
// replay traces really write pages, and every successful replay
// republishes the catalog afterwards.
func TestRepoRecoverSatisfiesRules(t *testing.T) {
	m := loadRepoModule(t)
	e := m.Effects()
	n := repoEffNode(t, m, "storage.Recover")

	var replays bool
	for _, tr := range e.BodyTraces(n) {
		if !tr.Approx && !tr.Err && tr.Set().Has(EffPageWrite) {
			replays = true
		}
	}
	if !replays {
		t.Fatal("no successful Recover trace replays a page — replay-pages-then-catalog is vacuous")
	}
	if vs := evalRule(ruleNamed(t, "replay-pages-then-catalog"), e, n); len(vs) != 0 {
		t.Errorf("replay-pages-then-catalog violated: %v", vs[0].Finding())
	}
}

// TestRepoFlushDirtySatisfiesRules is the real-repo assertion for the
// pool write-back paths: they move pages and never touch the commit
// protocol's effects.
func TestRepoFlushDirtySatisfiesRules(t *testing.T) {
	m := loadRepoModule(t)
	e := m.Effects()
	r := ruleNamed(t, "writeback-pages-only")
	for _, name := range []string{"buffer.(*Pool).FlushDirty", "buffer.(*SyncPool).FlushDirty"} {
		n := repoEffNode(t, m, name)
		var movesPages bool
		for _, tr := range e.BodyTraces(n) {
			s := tr.Set()
			if s.Has(EffWriteBack) || s.Has(EffPageWrite) {
				movesPages = true
			}
		}
		if !movesPages {
			t.Errorf("%s traces never move a page — writeback-pages-only is vacuous", name)
		}
		if vs := evalRule(r, e, n); len(vs) != 0 {
			t.Errorf("writeback-pages-only violated by %s: %v", name, vs[0].Finding())
		}
	}
}

// TestRepoInsertComposesCommitTrace pins bottom-up composition on the
// real repo: Insert's traces include commitUpdate's commit effect with a
// multi-hop witness chain through the call.
func TestRepoInsertComposesCommitTrace(t *testing.T) {
	m := loadRepoModule(t)
	e := m.Effects()
	n := repoEffNode(t, m, "storage.(*PagedTree).Insert")
	for _, tr := range e.BodyTraces(n) {
		for _, ev := range tr.Events {
			if ev.Eff == EffCommit && ev.Inner != nil {
				chain := EventChain(ev)
				if len(chain) < 2 {
					t.Fatalf("commit event chain %v, want >= 2 hops", chain)
				}
				return
			}
		}
	}
	t.Fatal("no Insert trace carries a composed Commit event from commitUpdate")
}

// BenchmarkDurcheck measures the durcheck+errflow analysis phase on the
// real repository (graph construction excluded — BenchmarkLoadModule and
// the BENCH_PR8.json wall-time entry cover the full pipeline).
func BenchmarkDurcheck(b *testing.B) {
	root := repoRoot(b)
	pkgs, err := LoadModule(root)
	if err != nil {
		b.Fatal(err)
	}
	g := NewCallGraph(pkgs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := &Module{Pkgs: pkgs, Graph: g}
		if fs := checkDur(m); len(fs) != 0 {
			b.Fatalf("unexpected findings: %v", fs)
		}
		if fs := checkErrFlow(m); len(fs) != 0 {
			b.Fatalf("unexpected findings: %v", fs)
		}
	}
}
