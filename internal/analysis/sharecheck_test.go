package analysis

import (
	"strings"
	"testing"
)

func sharecheckAnalyzer() *Analyzer {
	return &Analyzer{Name: "sharecheck", CheckModule: checkShare}
}

// TestShareCheckGoClosure covers the basic spawn/outside conflict: a
// captured counter written in the goroutine and read afterwards races;
// the same shape with a WaitGroup barrier before the read, or a mutex on
// both sides, is the blessed pattern.
func TestShareCheckGoClosure(t *testing.T) {
	runModuleFixture(t, sharecheckAnalyzer(), []fixtureFile{{
		path: "fixture/TestShareCheckGoClosure/p",
		src: `package p

import "sync"

func Racy() int {
	n := 0
	go func() {
		n++ // WANT
	}()
	return n
}

func Barriered() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n++
	}()
	wg.Wait()
	return n
}

func Locked() int {
	n := 0
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		mu.Lock()
		n++
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	v := n
	mu.Unlock()
	<-done
	return v
}
`,
	}})
}

// TestShareCheckLoopSiblings covers concurrent instances of one loop
// body: a shared accumulator races with itself, while the per-slot
// disjoint-index write (results[i], index local to the region) is the
// repository's fan-out idiom and passes.
func TestShareCheckLoopSiblings(t *testing.T) {
	runModuleFixture(t, sharecheckAnalyzer(), []fixtureFile{{
		path: "fixture/TestShareCheckLoopSiblings/p",
		src: `package p

import "sync"

func SharedSum(inputs []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, v := range inputs {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			total += v // WANT
		}(v)
	}
	wg.Wait()
	return total
}

func DisjointSlots(inputs []int) []int {
	results := make([]int, len(inputs))
	var wg sync.WaitGroup
	for i, v := range inputs {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			results[i] = v * v
		}(i, v)
	}
	wg.Wait()
	return results
}

func CapturedIndex(inputs []int) []int {
	results := make([]int, len(inputs))
	j := 0
	var wg sync.WaitGroup
	for range inputs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[j] = 1 // WANT
		}()
		j++
	}
	wg.Wait()
	return results
}
`,
	}})
}

// TestShareCheckSpawningCallee covers literals handed to a callee that
// carries the spawnsGoroutine fact: sibling instances of the literal may
// run concurrently (a shared write races), but the helper is assumed to
// join before returning, so reads after the call pass — the forEachPoint
// idiom.
func TestShareCheckSpawningCallee(t *testing.T) {
	runModuleFixture(t, sharecheckAnalyzer(), []fixtureFile{
		{
			path: "fixture/TestShareCheckSpawningCallee/pool",
			src: `package pool

import "sync"

func ForEach(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}
`,
		},
		{
			path: "fixture/TestShareCheckSpawningCallee/p",
			src: `package p

import "fixture/TestShareCheckSpawningCallee/pool"

func Racy(n int) int {
	total := 0
	pool.ForEach(n, func(i int) {
		total += i // WANT
	})
	return total
}

func Disjoint(n int) []int {
	out := make([]int, n)
	pool.ForEach(n, func(i int) {
		out[i] = i * i
	})
	return out
}
`,
		},
	})
}

// TestShareCheckPtrMethods covers pointer-receiver method calls on a
// captured value: unguarded methods on both sides conflict, methods whose
// facts include acquiresLock are their own guard.
func TestShareCheckPtrMethods(t *testing.T) {
	runModuleFixture(t, sharecheckAnalyzer(), []fixtureFile{{
		path: "fixture/TestShareCheckPtrMethods/p",
		src: `package p

import "sync"

type Bare struct{ n int }

func (b *Bare) Bump() { b.n++ }

type Guarded struct {
	mu sync.Mutex
	n  int
}

func (g *Guarded) Bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func RacyMethods() {
	b := &Bare{}
	done := make(chan struct{})
	go func() {
		b.Bump() // WANT
		close(done)
	}()
	b.Bump()
	<-done
}

func GuardedMethods() {
	g := &Guarded{}
	done := make(chan struct{})
	go func() {
		g.Bump()
		close(done)
	}()
	g.Bump()
	<-done
}
`,
	}})
}

// TestShareCheckRealRepoClean asserts the repository's own fan-outs —
// sim.RunPreparedParallel's per-replica slots, the experiments engine's
// worker pool, the stdlib importer's level workers, and the buffer
// package (SyncPool's two-mutex design included) — produce no findings.
func TestShareCheckRealRepoClean(t *testing.T) {
	m := loadRepoModule(t)
	for _, f := range checkShare(m) {
		t.Errorf("unexpected sharecheck finding in repository: %s", f)
	}
}

// TestSpawnFactRealRepo pins the spawnsGoroutine fact on the real
// fan-out entry points — and its absence from the serial simulator path
// that sharecheck's capture rules depend on.
func TestSpawnFactRealRepo(t *testing.T) {
	g := loadRepoModule(t).Graph
	for _, name := range []string{
		"sim.RunPreparedParallel",
		"experiments.(Config).forEachPoint",
		"obs.StartDebugServer",
	} {
		if n := one(t, g, name); n.Facts&FactSpawnsGoroutine == 0 {
			t.Errorf("%s facts = %s, want spawnsGoroutine", n, n.Facts)
		}
	}
	if n := one(t, g, "sim.RunPrepared"); n.Facts&FactSpawnsGoroutine != 0 {
		t.Errorf("sim.RunPrepared facts = %s: the serial path must not spawn", n.Facts)
	}
	// RunParallel reaches the spawn through RunPreparedParallel; the
	// witness chain must say so.
	rp := one(t, g, "sim.RunParallel")
	if rp.Facts&FactSpawnsGoroutine == 0 {
		t.Fatalf("sim.RunParallel facts = %s, want spawnsGoroutine", rp.Facts)
	}
	chain := strings.Join(g.FactChain(rp, FactSpawnsGoroutine), "; ")
	if !strings.Contains(chain, "RunPreparedParallel") {
		t.Errorf("spawnsGoroutine chain for RunParallel = %q, want it to pass through RunPreparedParallel", chain)
	}
}
