package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The durability rule language. A Rule constrains the ORDER of effects in
// the traces of the functions it scopes to, in one of a handful of
// declarative shapes (RuleKind); durcheck evaluates every ordering rule,
// errflow owns the one error-discipline rule. Each rule names the §7e
// commit-protocol step it encodes (see DESIGN.md §7a, "Effect ordering &
// durability analyses") and is explained by `rtreelint -explain <rule>`.
//
// Universal kinds (Precedes, Separated, Eventually, Never) quantify over
// every non-approximate body trace: approximate traces have invented
// orders (recursion clumps, budget overflows) that would manufacture
// false positives. The existential kind (SomeTrace) keeps them.

// RuleKind selects the temporal shape a rule checks.
type RuleKind uint8

const (
	// RulePrecedes: on every trace, no B-effect occurs before the first
	// A-effect ("A precedes B on all paths").
	RulePrecedes RuleKind = iota
	// RuleSeparated: on every trace, a B-effect intervenes between any
	// A-effect and a later C-effect ("no unseparated A published by C").
	RuleSeparated
	// RuleEventually: on every clean (non-error) trace containing an
	// A-effect, a B-effect follows the last A ("A implies eventually B
	// before a successful return").
	RuleEventually
	// RuleSomeTrace: if any trace contains a B-effect, some trace must
	// contain an A-effect before its first B (an existential contract
	// check for conditional implementations).
	RuleSomeTrace
	// RuleNever: no trace contains any A-effect.
	RuleNever
	// RuleErrFlow: commit-path error discipline, implemented by errflow
	// (the entry exists so -explain covers it).
	RuleErrFlow
)

func (k RuleKind) String() string {
	switch k {
	case RulePrecedes:
		return "A precedes B on all paths"
	case RuleSeparated:
		return "B separates every A from a later C, on all paths"
	case RuleEventually:
		return "A implies eventually B before a successful return"
	case RuleSomeTrace:
		return "some trace performs A before its first B"
	case RuleNever:
		return "no path performs A"
	case RuleErrFlow:
		return "post-commit errors must not become the operation error"
	}
	return fmt.Sprintf("RuleKind(%d)", uint8(k))
}

// ScopeSpec selects the functions a rule applies to, by receiver base
// type and name, module-wide and package-agnostic — fixture packages
// modelling the protocol with their own types participate in the same
// rules. Recv "" matches package-level functions only, "*" matches any
// function with the name, anything else matches that receiver exactly.
type ScopeSpec struct {
	Recv string
	Name string
}

// Matches reports whether the spec selects the function.
func (s ScopeSpec) Matches(fn *types.Func) bool {
	if fn.Name() != s.Name {
		return false
	}
	switch s.Recv {
	case "*":
		return true
	case "":
		return recvBase(fn) == ""
	default:
		return recvBase(fn) == s.Recv
	}
}

func (s ScopeSpec) String() string {
	switch s.Recv {
	case "*":
		return "(any)." + s.Name
	case "":
		return s.Name
	default:
		return "(" + s.Recv + ")." + s.Name
	}
}

// Rule is one declarative effect-ordering rule.
type Rule struct {
	// Name is the stable identifier used in findings, -explain, and
	// baseline keys.
	Name string
	// Analyzer is the analyzer that owns the rule (durcheck or errflow).
	Analyzer string
	Kind     RuleKind
	// A, B, C are the effect sets the kind's template quantifies over
	// (which of them are used depends on the kind).
	A, B, C EffectSet
	// Scope limits the rule to matching functions; empty means every
	// module function.
	Scope []ScopeSpec
	// Doc states the invariant in prose.
	Doc string
	// Step maps the rule to the DESIGN.md §7e protocol step it encodes.
	Step string
	// Witness describes what a violation's witness chain points at.
	Witness string
}

// Rules returns every durability rule in evaluation order.
func Rules() []*Rule {
	return []*Rule{
		{
			Name:     "commit-before-writeback",
			Analyzer: "durcheck",
			Kind:     RulePrecedes,
			A:        effects(EffCommit),
			B:        effects(EffWriteBack),
			Scope:    []ScopeSpec{{"*", "commitUpdate"}},
			Doc: "inside commitUpdate, no buffer-pool write-back may happen before the WAL " +
				"commit point; a crash after an early write-back would leave page-file state " +
				"the log cannot redo or undo",
			Step: "§7e step 2 before step 3: AppendBatch's commit meta-write precedes pool.Put/FlushDirty",
			Witness: "the write-back call that is reachable before any Commit effect, with the " +
				"call chain to the pool write it performs",
		},
		{
			Name:     "commit-before-catalog",
			Analyzer: "durcheck",
			Kind:     RulePrecedes,
			A:        effects(EffCommit),
			B:        effects(EffMetaWrite),
			Scope:    []ScopeSpec{{"*", "commitUpdate"}},
			Doc: "inside commitUpdate, the page-file catalog (tree meta) may only be published " +
				"after the WAL commit point; an earlier publish could expose a root the log " +
				"cannot reconstruct",
			Step:    "§7e step 2 before step 4: AppendBatch's commit meta-write precedes dm.WriteMeta",
			Witness: "the catalog-publish call reachable before any Commit effect",
		},
		{
			Name:     "commit-before-checkpoint",
			Analyzer: "durcheck",
			Kind:     RulePrecedes,
			A:        effects(EffCommit),
			B:        effects(EffCheckpoint),
			Scope:    []ScopeSpec{{"*", "commitUpdate"}},
			Doc: "inside commitUpdate, the WAL may only be checkpointed after the batch's commit " +
				"point; truncating first would discard the only redo copy of the update",
			Step:    "§7e step 2 before step 5: AppendBatch's commit meta-write precedes wal.Checkpoint",
			Witness: "the checkpoint call reachable before any Commit effect",
		},
		{
			Name:     "sync-before-publish",
			Analyzer: "durcheck",
			Kind:     RuleSeparated,
			A:        effects(EffPageWrite, EffWriteBack),
			B:        effects(EffSync),
			C:        effects(EffMetaWrite),
			Doc: "module-wide: between any data-page write (direct or via pool write-back) and a " +
				"later catalog/header publish there must be a Sync; publishing unsynced data is " +
				"the PR 7 WriteMeta bug",
			Step:    "§7e durability invariant: data reaches stable storage before any metadata that references it",
			Witness: "the publishing call, plus the unsynced data write it would publish",
		},
		{
			Name:     "writemeta-syncs",
			Analyzer: "durcheck",
			Kind:     RuleSomeTrace,
			A:        effects(EffSync),
			B:        effects(EffMetaWrite),
			Scope:    []ScopeSpec{{"*", "WriteMeta"}},
			Doc: "every WriteMeta implementation must honour the contract callers assume: some " +
				"path syncs before the header publish (implementations may skip the sync only " +
				"when nothing is dirty, hence the existential check)",
			Step:    "§7e step 4 contract: WriteMeta = sync unsynced data, then publish the catalog",
			Witness: "the header publish of an implementation none of whose paths sync first",
		},
		{
			Name:     "replay-pages-then-catalog",
			Analyzer: "durcheck",
			Kind:     RuleEventually,
			A:        effects(EffPageWrite),
			B:        effects(EffMetaWrite),
			Scope:    []ScopeSpec{{"", "Recover"}},
			Doc: "recovery replays a batch's pages and then its catalog snapshot; replayed pages " +
				"with no catalog publish afterwards would leave the tree root pointing at the " +
				"pre-crash state",
			Step:    "§7e recovery: per committed batch, redo pages, then install the batch's tree meta",
			Witness: "the last page replay on a successful path that never republishes the catalog",
		},
		{
			Name:     "checkpoint-after-sync",
			Analyzer: "durcheck",
			Kind:     RuleSeparated,
			A:        effects(EffPageWrite, EffWriteBack, EffMetaWrite),
			B:        effects(EffSync),
			C:        effects(EffCheckpoint),
			Scope:    []ScopeSpec{{"*", "commitUpdate"}},
			Doc: "inside commitUpdate, the WAL may only be truncated once every page-file write " +
				"since the last sync is durable; checkpointing with unsynced writes discards " +
				"the redo copy while the page file can still lose them",
			Step:    "§7e step 5: syncManager(dm) precedes wal.Checkpoint",
			Witness: "the checkpoint call, plus the page-file write not yet covered by a Sync",
		},
		{
			Name:     "writeback-pages-only",
			Analyzer: "durcheck",
			Kind:     RuleNever,
			A:        effects(EffMetaWrite, EffLogAppend, EffCommit, EffCheckpoint),
			Scope: []ScopeSpec{
				{"*", "FlushDirty"}, {"*", "flushPage"}, {"*", "writeBackVictim"},
				{"Pool", "Put"}, {"SyncPool", "Put"},
			},
			Doc: "pool write-back paths move data pages only; they must never publish a catalog, " +
				"append to the log, or checkpoint — eviction happens at arbitrary points where " +
				"none of those are legal",
			Step:    "§7e layering: the pool sits below the commit protocol and cannot invoke it",
			Witness: "the forbidden effect inside a write-back path, with its call chain",
		},
		{
			Name:     "no-post-commit-error-return",
			Analyzer: "errflow",
			Kind:     RuleErrFlow,
			A:        effects(EffSync, EffCheckpoint),
			Doc: "once a path has emitted Commit, an error produced by a later checkpoint-stage " +
				"effect (Sync, Checkpoint) must not be returned as the operation's error — the " +
				"update IS durable; such errors flow to the sticky CheckpointErr/obs-counter " +
				"pattern instead (the second PR 7 review bug)",
			Step: "§7e step 5 failure mode: checkpoint-stage errors poison the checkpoint, not the update",
			Witness: "the return statement after the commit point whose error originates from a " +
				"checkpoint-stage effect call",
		},
	}
}

// RuleByName resolves a rule identifier, for -explain.
func RuleByName(name string) *Rule {
	for _, r := range Rules() {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// ruleViolation is one rule violation before rendering: the violated
// rule, the anchoring event, and an optional related event (e.g. the
// unsynced write a publish exposes).
type ruleViolation struct {
	rule    *Rule
	ev      *EffEvent
	related *EffEvent
}

// Finding renders the violation with its interprocedural witness chain.
func (v ruleViolation) Finding() Finding {
	var sb strings.Builder
	fmt.Fprintf(&sb, "rule %s: %s in %s", v.rule.Name, violationPhrase(v.rule, v.ev), v.ev.Fn)
	fmt.Fprintf(&sb, "; witness: %s", strings.Join(EventChain(v.ev), "; "))
	if v.related != nil {
		fmt.Fprintf(&sb, "; paired with: %s", strings.Join(EventChain(v.related), "; "))
	}
	return Finding{
		Pos:      v.ev.Fn.Pkg.Fset.Position(v.ev.Pos),
		Analyzer: v.rule.Analyzer,
		Message:  sb.String(),
	}
}

// violationPhrase words the defect for the rule kind.
func violationPhrase(r *Rule, ev *EffEvent) string {
	switch r.Kind {
	case RulePrecedes:
		return fmt.Sprintf("%s effect reachable before any %s", ev.Eff, r.A)
	case RuleSeparated:
		return fmt.Sprintf("%s effect with a preceding %s not separated by %s", ev.Eff, r.A, r.B)
	case RuleEventually:
		return fmt.Sprintf("%s effect with no %s afterwards on a successful path", ev.Eff, r.B)
	case RuleSomeTrace:
		return fmt.Sprintf("no path performs %s before this %s", r.A, ev.Eff)
	case RuleNever:
		return fmt.Sprintf("forbidden %s effect", ev.Eff)
	}
	return "effect-ordering violation"
}

// inScope reports whether a rule applies to the function.
func (r *Rule) inScope(fn *types.Func) bool {
	if len(r.Scope) == 0 {
		return true
	}
	for _, s := range r.Scope {
		if s.Matches(fn) {
			return true
		}
	}
	return false
}

// evalRule evaluates one ordering rule over one function's body traces.
func evalRule(r *Rule, e *Effects, n *FuncNode) []ruleViolation {
	traces := e.BodyTraces(n)
	switch r.Kind {
	case RulePrecedes:
		return evalPrecedes(r, traces)
	case RuleSeparated:
		return evalSeparated(r, traces)
	case RuleEventually:
		return evalEventually(r, traces)
	case RuleSomeTrace:
		return evalSomeTrace(r, traces)
	case RuleNever:
		return evalNever(r, traces)
	}
	return nil
}

func evalPrecedes(r *Rule, traces []EffTrace) []ruleViolation {
	var out []ruleViolation
	for _, t := range traces {
		if t.Approx {
			continue
		}
		seenA := false
		for _, ev := range t.Events {
			if r.A.Has(ev.Eff) {
				seenA = true
			} else if r.B.Has(ev.Eff) && !seenA {
				out = append(out, ruleViolation{r, ev, nil})
				break // one witness per trace
			}
		}
	}
	return out
}

func evalSeparated(r *Rule, traces []EffTrace) []ruleViolation {
	var out []ruleViolation
	for _, t := range traces {
		if t.Approx {
			continue
		}
		var pending *EffEvent
		for _, ev := range t.Events {
			switch {
			case r.B.Has(ev.Eff):
				pending = nil
			case r.A.Has(ev.Eff):
				if pending == nil {
					pending = ev
				}
			case r.C.Has(ev.Eff):
				if pending != nil {
					out = append(out, ruleViolation{r, ev, pending})
					pending = nil
				}
			}
		}
	}
	return out
}

func evalEventually(r *Rule, traces []EffTrace) []ruleViolation {
	var out []ruleViolation
	for _, t := range traces {
		if t.Approx || t.Err {
			continue
		}
		var lastA *EffEvent
		for _, ev := range t.Events {
			switch {
			case r.A.Has(ev.Eff):
				lastA = ev
			case r.B.Has(ev.Eff):
				lastA = nil
			}
		}
		if lastA != nil {
			out = append(out, ruleViolation{r, lastA, nil})
		}
	}
	return out
}

func evalSomeTrace(r *Rule, traces []EffTrace) []ruleViolation {
	var firstB *EffEvent
	for _, t := range traces {
		seenA := false
		for _, ev := range t.Events {
			if r.A.Has(ev.Eff) {
				seenA = true
			} else if r.B.Has(ev.Eff) {
				if seenA {
					return nil // the contract trace exists
				}
				if firstB == nil {
					firstB = ev
				}
				break
			}
		}
	}
	if firstB == nil {
		return nil // vacuous: no trace performs B at all
	}
	return []ruleViolation{{r, firstB, nil}}
}

func evalNever(r *Rule, traces []EffTrace) []ruleViolation {
	var out []ruleViolation
	for _, t := range traces {
		if t.Approx {
			continue
		}
		for _, ev := range t.Events {
			if r.A.Has(ev.Eff) {
				out = append(out, ruleViolation{r, ev, nil})
				break
			}
		}
	}
	return out
}

// dedupViolations collapses duplicate reports of one underlying defect:
// module-wide rules re-observe a callee's violation from every caller
// that composes its traces, so violations are keyed by (rule, innermost
// event position) and the report with the shortest witness chain — the
// one closest to the defect — survives. Repeat sightings across a single
// function's forked traces collapse the same way.
type violationKey struct {
	rule string
	pos  token.Position
}

func chainDepth(ev *EffEvent) int {
	d := 0
	for ; ev != nil; ev = ev.Inner {
		d++
	}
	return d
}

func dedupViolations(vs []ruleViolation) []Finding {
	best := make(map[violationKey]int) // key -> index into vs
	var order []violationKey
	for i, v := range vs {
		inner := v.ev.Innermost()
		key := violationKey{v.rule.Name, inner.Fn.Pkg.Fset.Position(inner.Pos)}
		if j, ok := best[key]; !ok {
			best[key] = i
			order = append(order, key)
		} else if chainDepth(v.ev) < chainDepth(vs[j].ev) {
			best[key] = i
		}
	}
	var out []Finding
	for _, key := range order {
		out = append(out, vs[best[key]].Finding())
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}
