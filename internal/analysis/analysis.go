// Package analysis implements rtreelint, the project-specific static
// analysis layer of the repository. It loads the module with go/parser and
// go/types (standard library only — no external analysis framework) and
// runs analyzers that encode correctness rules this codebase depends on
// but that go vet cannot know about:
//
//   - floatcmp: exact ==/!= on floating-point operands in the geometry,
//     cost-model, and Hilbert packages, where a silent rounding mismatch
//     corrupts every downstream experiment figure;
//   - errcheck: silently discarded error returns in the storage, data
//     generation, and command packages;
//   - mutexcopy: by-value copies of types holding sync primitives
//     (the buffer pool is the only concurrent subsystem);
//   - probrange: probability-valued functions returning unclamped
//     arithmetic that can leave [0,1].
//
// Findings are suppressed by an explicit annotation on the offending line
// (or the line directly above):
//
//	//lint:allow floatcmp exact comparison is the contract here
//
// The annotation names one analyzer (or a comma-separated list, or "all");
// everything after the names is free-form justification. Keeping the
// allowlist in the source, next to the code it excuses, is the point:
// every intentional exception is visible in review and disappears when the
// code it excuses does.
//
// To add a new analyzer: write a `func checkFoo(pkg *Package) []Finding`
// over pkg.Files/pkg.Info, wrap it in an Analyzer literal with the target
// packages it applies to, and append it to the slice in Analyzers. Tests
// in this package typecheck small fixture sources with seeded violations
// and assert on the findings; add at least two positive and one negative
// fixture for the new analyzer.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the finding as "file:line:col: analyzer: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a typechecked package.
type Analyzer struct {
	// Name is the short identifier used in findings and annotations.
	Name string
	// Doc is a one-line description shown by rtreelint's analyzer listing.
	Doc string
	// Targets restricts the analyzer to matching import paths. An entry
	// matches exactly, or matches a whole subtree when it ends in "/...".
	// An empty list applies the analyzer everywhere.
	Targets []string
	// Check reports findings for one package. Suppression annotations are
	// applied by the runner, not by Check.
	Check func(pkg *Package) []Finding
	// CheckModule reports findings over the whole module at once; set it
	// instead of Check for flow-aware analyzers that need the call graph
	// and cross-package facts (Targets does not apply: the call graph is
	// global, findings land wherever the evidence is).
	CheckModule func(m *Module) []Finding
}

// AppliesTo reports whether the analyzer targets the given import path.
func (a *Analyzer) AppliesTo(importPath string) bool {
	if len(a.Targets) == 0 {
		return true
	}
	for _, t := range a.Targets {
		if sub, ok := strings.CutSuffix(t, "/..."); ok {
			if importPath == sub || strings.HasPrefix(importPath, sub+"/") {
				return true
			}
		} else if importPath == t {
			return true
		}
	}
	return false
}

// Analyzers returns every analyzer in the order rtreelint runs them.
// Target paths are spelled relative to the module path of this repository.
func Analyzers() []*Analyzer {
	const mod = "rtreebuf"
	return []*Analyzer{
		{
			Name: "floatcmp",
			Doc:  "exact ==/!= on floating-point operands (use geom.ApproxEqual or annotate)",
			Targets: []string{
				mod + "/internal/geom",
				mod + "/internal/core",
				mod + "/internal/hilbert",
			},
			Check: checkFloatCmp,
		},
		{
			Name: "errcheck",
			Doc:  "silently discarded error results (assign to _ or handle)",
			Targets: []string{
				mod + "/internal/storage",
				mod + "/internal/datagen",
				mod + "/cmd/...",
			},
			Check: checkErrCheck,
		},
		{
			Name: "mutexcopy",
			Doc:  "by-value copy of a type containing sync primitives",
			Targets: []string{
				mod + "/internal/buffer",
			},
			Check: checkMutexCopy,
		},
		{
			Name: "probrange",
			Doc:  "probability-valued function returns unclamped arithmetic",
			Targets: []string{
				mod + "/internal/core",
			},
			Check: checkProbRange,
		},
		{
			Name:        "lockcheck",
			Doc:         "missing Unlock on a return path, or a lock held across a blocking/I/O call",
			CheckModule: checkLock,
		},
		{
			Name:        "hotalloc",
			Doc:         "heap allocation in a function reachable from the query hot roots",
			CheckModule: func(m *Module) []Finding { return checkHotAlloc(m, HotRoots()) },
		},
		{
			Name:        "iopurity",
			Doc:         "simulation/model roots transitively reach disk or OS I/O",
			CheckModule: func(m *Module) []Finding { return checkIOPurity(m, PureRoots()) },
		},
		{
			Name:        "sharecheck",
			Doc:         "variable captured by a goroutine mutated on both sides of the spawn without a guard",
			CheckModule: checkShare,
		},
		{
			Name:        "determcheck",
			Doc:         "nondeterminism source (map order, time, global rand) reachable from a result root",
			CheckModule: func(m *Module) []Finding { return checkDeterm(m, DetermRoots()) },
		},
		{
			Name:        "atomiccheck",
			Doc:         "field accessed both atomically and plainly with no lock dominating the atomic sites",
			CheckModule: checkAtomic,
		},
		{
			Name:        "durcheck",
			Doc:         "WAL commit-protocol effect ordering violated (see rtreelint -explain <rule>)",
			CheckModule: checkDur,
		},
		{
			Name:        "errflow",
			Doc:         "checkpoint-stage error returned as the operation error after the commit point",
			CheckModule: checkErrFlow,
		},
	}
}

// Run applies every analyzer to every package it targets, drops findings
// suppressed by lint:allow annotations, and returns the rest ordered by
// file, line, and column.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	var mod *Module
	var byFile map[string]*Package
	for _, a := range analyzers {
		if a.CheckModule == nil {
			continue
		}
		if mod == nil {
			mod = NewModule(pkgs)
			byFile = make(map[string]*Package)
			for _, pkg := range pkgs {
				for _, f := range pkg.Files {
					byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
				}
			}
		}
		for _, f := range a.CheckModule(mod) {
			if p := byFile[f.Pos.Filename]; p == nil || !p.allowed(f.Analyzer, f.Pos) {
				out = append(out, f)
			}
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Check == nil || !a.AppliesTo(pkg.ImportPath) {
				continue
			}
			for _, f := range a.Check(pkg) {
				if !pkg.allowed(f.Analyzer, f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
