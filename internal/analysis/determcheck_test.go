package analysis

import (
	"strings"
	"testing"
)

// TestDetermCheckFixture routes the three classic nondeterminism sources
// into a result root — a map range two calls deep, a wall-clock read, and
// the global rand stream — while the seeded-stream sibling stays silent.
func TestDetermCheckFixture(t *testing.T) {
	a := &Analyzer{
		Name: "determcheck",
		CheckModule: func(m *Module) []Finding {
			return checkDeterm(m, []RootSpec{
				{Path: "fixture/TestDetermCheckFixture/simx", Name: "Run*"},
			})
		},
	}
	runModuleFixture(t, a, []fixtureFile{
		{
			path: "fixture/TestDetermCheckFixture/helper",
			src: `package helper

func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // WANT
		out = append(out, k)
	}
	return out
}
`,
		},
		{
			path: "fixture/TestDetermCheckFixture/simx",
			src: `package simx

import (
	"math/rand/v2"
	"time"

	"fixture/TestDetermCheckFixture/helper"
)

func RunTainted(m map[string]int) []string {
	return helper.Keys(m)
}

func RunClocked() int64 {
	return time.Now().UnixNano() // WANT
}

func RunGlobalRand() float64 {
	return rand.Float64() // WANT
}

func RunSeeded(seed, replica uint64) float64 {
	r := rand.New(rand.NewPCG(seed, replica))
	return r.Float64()
}

func unrooted(m map[string]int) []string {
	return helper.Keys(m)
}
`,
		},
	})
}

// TestDetermRootsExist guards the determcheck root list against silent
// rot, exactly as TestHotRootsExist does for hotalloc and iopurity.
func TestDetermRootsExist(t *testing.T) {
	g := loadRepoModule(t).Graph
	for _, spec := range DetermRoots() {
		if len(g.Resolve(spec)) == 0 {
			t.Errorf("determcheck root spec %s matches no function in the repository", spec)
		}
	}
}

// TestDetermFactRealRepo pins the nondet fact boundary in the real tree:
// the simulator and the obs exporters are fact-free (seeded PCG streams
// and the deterministic registry order keep them so), while the timing
// sidecar and the tracer — by design outside the root set — do carry it.
func TestDetermFactRealRepo(t *testing.T) {
	g := loadRepoModule(t).Graph
	for _, name := range []string{"sim.Run", "sim.RunParallel", "sim.Transient", "obs.WriteText", "obs.WriteJSON"} {
		if n := one(t, g, name); n.Facts&FactNondet != 0 {
			t.Errorf("%s facts = %s; determinism contract requires no nondet (chain: %s)",
				n, n.Facts, strings.Join(g.FactChain(n, FactNondet), "; "))
		}
	}
	// Positive controls: the fact machinery must actually fire where
	// wall-clock reads are intended.
	for _, name := range []string{"experiments.RunAllTimed", "obs.NewTracer"} {
		if n := one(t, g, name); n.Facts&FactNondet == 0 {
			t.Errorf("%s facts = %s, want nondet (time.Now is by design there)", n, n.Facts)
		}
	}
}
