package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
)

// errflow checks commit-path error discipline (the no-post-commit-
// error-return rule): once a function's body has passed the WAL commit
// point, the update is durable, so an error produced by a later
// checkpoint-stage effect (Sync, Checkpoint) must not be surfaced as the
// operation's error — it flows to the sticky CheckpointErr/obs-counter
// pattern instead. Returning it anyway makes a durably committed update
// look failed, which is exactly the commitUpdate bug PR 7's review
// caught.
//
// The check is lexical about "after the commit point": any return
// statement positioned after the function's first Commit-effect call
// site is in scope. That over-approximates reachability the same way the
// fact store does, but the flagged errors are filtered by ORIGIN — only
// errors that provably come from a call whose entire effect set is
// checkpoint-stage ({Sync}, {Checkpoint}, or both) are reported, so
// pre-commit error plumbing (AppendBatch, Put, FlushDirty, WriteMeta)
// never trips it.

// checkErrFlow runs errflow over every function that commits.
func checkErrFlow(m *Module) []Finding {
	r := RuleByName("no-post-commit-error-return")
	e := m.Effects()
	var out []Finding
	for _, n := range m.Graph.Nodes() {
		if n.Decl.Body == nil || effectEntry(n.Fn) != nil {
			continue
		}
		out = append(out, errFlowFunc(r, e, n)...)
	}
	return out
}

// errFlowFunc checks one function body.
func errFlowFunc(r *Rule, e *Effects, n *FuncNode) []Finding {
	// The commit point: the first call site that can emit Commit. A
	// function that never commits has no post-commit region.
	var commit *Call
	for _, c := range n.Calls {
		if !c.Ref && c.Expr != nil && e.SiteEffects(c).Has(EffCommit) {
			if commit == nil || c.Pos < commit.Pos {
				commit = c
			}
		}
	}
	if commit == nil {
		return nil
	}
	commitLoc := n.Pkg.Fset.Position(commit.Pos)

	// Track error origins: objects assigned from a call whose effect set
	// is known, and the checkpoint-stage subset among them.
	origins := make(map[types.Object]EffectSet)
	recordAssign := func(lhs []ast.Expr, rhs []ast.Expr) {
		if len(rhs) == 0 {
			return
		}
		call, ok := ast.Unparen(rhs[len(rhs)-1]).(*ast.CallExpr)
		if !ok {
			return
		}
		c := n.SiteAt(call.Pos())
		if c == nil {
			return
		}
		eff := e.SiteEffects(c)
		for _, l := range lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				if obj := n.Pkg.Info.Defs[id]; obj != nil {
					origins[obj] = eff
				} else if obj := n.Pkg.Info.Uses[id]; obj != nil {
					origins[obj] = eff
				}
			}
		}
	}

	// checkpointStage reports whether an effect set marks a value as
	// coming from a checkpoint-stage call only.
	checkpointStage := func(s EffectSet) bool { return s != 0 && s&^r.A == 0 }

	var out []Finding
	report := func(pos ast.Node, what string, eff EffectSet) {
		out = append(out, Finding{
			Pos:      n.Pkg.Fset.Position(pos.Pos()),
			Analyzer: r.Analyzer,
			Message: fmt.Sprintf(
				"rule %s: %s (effects %s) returned as the operation error after the commit point "+
					"(%s at %s:%d) in %s; checkpoint-stage failures must go to the sticky "+
					"CheckpointErr/observability path, the committed update succeeded",
				r.Name, what, eff, commit.Desc, filepath.Base(commitLoc.Filename), commitLoc.Line, n),
		})
	}

	// exprOrigin classifies a returned expression's error origin.
	var exprOrigin func(ex ast.Expr) (string, EffectSet, bool)
	exprOrigin = func(ex ast.Expr) (string, EffectSet, bool) {
		switch x := ast.Unparen(ex).(type) {
		case *ast.Ident:
			if obj := n.Pkg.Info.Uses[x]; obj != nil {
				if eff, ok := origins[obj]; ok && checkpointStage(eff) {
					return "error from " + x.Name, eff, true
				}
			}
		case *ast.CallExpr:
			if c := n.SiteAt(x.Pos()); c != nil {
				if eff := e.SiteEffects(c); checkpointStage(eff) {
					return "error from " + c.Desc, eff, true
				}
			}
			// Wrapped: fmt.Errorf("...: %w", err) and friends forward
			// whatever origin their arguments carry.
			for _, a := range x.Args {
				if what, eff, ok := exprOrigin(a); ok {
					return what + " (wrapped)", eff, true
				}
			}
		}
		return "", 0, false
	}

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			recordAssign(x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range x.Names {
				lhs = append(lhs, name)
			}
			recordAssign(lhs, x.Values)
		case *ast.ReturnStmt:
			if x.Pos() <= commit.Pos || len(x.Results) == 0 {
				return true
			}
			last := x.Results[len(x.Results)-1]
			if t := n.Pkg.Info.TypeOf(last); t == nil || !types.Identical(t, errType) {
				return true
			}
			if what, eff, ok := exprOrigin(last); ok {
				report(x, what, eff)
			}
		case *ast.FuncLit:
			// Closures return to their own callers, not from this
			// operation; walkBody's dynamic-extent assumption does not
			// apply to return statements.
			return false
		}
		return true
	})
	return out
}
