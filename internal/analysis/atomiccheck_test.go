package analysis

import "testing"

func atomiccheckAnalyzer() *Analyzer {
	return &Analyzer{Name: "atomiccheck", CheckModule: checkAtomic}
}

// TestAtomicCheckFixture covers the legacy atomic.* API: a field updated
// atomically must not also be read plainly, unless the plain access holds
// a lock that is held at every atomic site.
func TestAtomicCheckFixture(t *testing.T) {
	runModuleFixture(t, atomiccheckAnalyzer(), []fixtureFile{{
		path: "fixture/TestAtomicCheckFixture/p",
		src: `package p

import (
	"sync"
	"sync/atomic"
)

type Counter struct{ n uint64 }

func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *Counter) Racy() uint64 {
	return c.n // WANT
}

type Dominated struct {
	mu sync.Mutex
	n  uint64
}

func (d *Dominated) Inc() {
	d.mu.Lock()
	atomic.AddUint64(&d.n, 1)
	d.mu.Unlock()
}

func (d *Dominated) Read() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

type HalfGuarded struct {
	mu sync.Mutex
	n  uint64
}

func (h *HalfGuarded) IncLocked() {
	h.mu.Lock()
	atomic.AddUint64(&h.n, 1)
	h.mu.Unlock()
}

func (h *HalfGuarded) IncBare() {
	atomic.AddUint64(&h.n, 1)
}

func (h *HalfGuarded) Read() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n // WANT
}
`,
	}})
}

// TestAtomicCheckTypedFixture covers the typed atomics: method access is
// the only legal use; copying the field is a plain access (the copy is a
// non-atomic 8-byte read however it is spelled).
func TestAtomicCheckTypedFixture(t *testing.T) {
	runModuleFixture(t, atomiccheckAnalyzer(), []fixtureFile{{
		path: "fixture/TestAtomicCheckTypedFixture/p",
		src: `package p

import "sync/atomic"

type Stats struct {
	hits atomic.Uint64
}

func (s *Stats) Hit() {
	s.hits.Add(1)
}

func (s *Stats) Value() uint64 {
	return s.hits.Load()
}

func (s *Stats) Leak() atomic.Uint64 {
	return s.hits // WANT
}
`,
	}})
}

// TestAtomicCheckRealRepoClean asserts the repository mixes no plain
// accesses into its atomic fields — in particular the obs package's
// typed-atomic counters, gauges, and histograms come out clean.
func TestAtomicCheckRealRepoClean(t *testing.T) {
	m := loadRepoModule(t)
	for _, f := range checkAtomic(m) {
		t.Errorf("unexpected atomiccheck finding in repository: %s", f)
	}
}

// TestAtomicFactRealRepo pins the usesAtomic fact on the obs hot-path
// methods: sharecheck relies on it to bless captured metric handles, so
// a refactor away from atomics must fail here.
func TestAtomicFactRealRepo(t *testing.T) {
	g := loadRepoModule(t).Graph
	for _, name := range []string{"obs.(*Counter).Add", "obs.(*Counter).Inc", "obs.(*Gauge).Set", "obs.(*Histogram).Observe"} {
		if n := one(t, g, name); n.Facts&FactUsesAtomic == 0 {
			t.Errorf("%s facts = %s, want usesAtomic", n, n.Facts)
		}
	}
}
