package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// atomiccheck enforces all-or-nothing atomicity per field: once any site
// touches a field through sync/atomic — a legacy atomic.AddUint64(&f, 1)
// call or a method on an atomic.Uint64-style typed field — every other
// access to that field must either go through sync/atomic too, or hold a
// lock that dominates all the atomic sites (a lock held at every one of
// them, so the plain access cannot interleave). A plain read mixed with
// atomic writes is the classic torn-counter bug: it compiles, works on
// amd64, and corrupts hit-rate statistics exactly when the sharded pool
// is loaded enough for the numbers to matter.
//
// The obs package's typed-atomic counters are the model citizens: the
// fields are atomic.Uint64/Int64, so the type system already forbids
// plain loads, and every use goes through Load/Add/CompareAndSwap.
// Copying such a field (`x := c.n`) is reported as a plain access.
func checkAtomic(m *Module) []Finding {
	// Pass 1: find every atomic site, keyed by the field/variable object.
	sites := make(map[*types.Var][]atomicSite)
	claimed := make(map[token.Pos]bool)
	for _, n := range m.Graph.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		collectAtomicSites(n, sites, claimed)
	}
	if len(sites) == 0 {
		return nil
	}
	// The guard that excuses a plain access must be held at every atomic
	// site of the field: intersect the held sets per field.
	common := make(map[*types.Var]map[string]bool)
	for v, ss := range sites {
		inter := ss[0].held
		for _, s := range ss[1:] {
			next := make(map[string]bool)
			for k := range inter {
				if s.held[k] {
					next[k] = true
				}
			}
			inter = next
		}
		common[v] = inter
	}
	// Pass 2: every other use of a tracked field is a plain access.
	var out []Finding
	for _, n := range m.Graph.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		events := lockEvents(n.Pkg.Info, n.Decl.Body)
		ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok || claimed[id.Pos()] {
				return true
			}
			v, ok := n.Pkg.Info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			ss, tracked := sites[v]
			if !tracked {
				return true
			}
			if intersects(heldAt(events, id.Pos()), common[v]) {
				return true // a lock dominating all atomic sites guards this access
			}
			first := n.Pkg.Fset.Position(ss[0].pos)
			out = append(out, Finding{
				Pos:      n.Pkg.Fset.Position(id.Pos()),
				Analyzer: "atomiccheck",
				Message: fmt.Sprintf("plain access to %s, which is accessed atomically at %d site(s) (first: %s:%d); no lock dominates all atomic sites",
					atomicVarDisplay(v), len(ss), filepath.Base(first.Filename), first.Line),
			})
			return true
		})
	}
	return out
}

// atomicSite is one sync/atomic access to a field, with the lock set
// lexically held there.
type atomicSite struct {
	pos  token.Pos
	held map[string]bool
}

// collectAtomicSites records the atomic accesses in one function body:
// legacy atomic.Op(&x.f, ...) calls and method calls on typed atomic
// fields (x.f.Add where f is an atomic.* named type). The identifier of
// the accessed field is claimed so pass 2 does not re-count it.
func collectAtomicSites(n *FuncNode, sites map[*types.Var][]atomicSite, claimed map[token.Pos]bool) {
	info := n.Pkg.Info
	events := lockEvents(info, n.Decl.Body)
	record := func(v *types.Var, id *ast.Ident, pos token.Pos) {
		claimed[id.Pos()] = true
		sites[v] = append(sites[v], atomicSite{pos: pos, held: heldAt(events, pos)})
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if atomicPkgCall(info, call) {
			// atomic.AddUint64(&x.f, 1): the &target is the accessed value.
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v, id := atomicTargetVar(info, un.X); v != nil {
					record(v, id, call.Pos())
				}
			}
			return true
		}
		// x.f.Add(1) on an atomic.Uint64-style typed field.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return true
		}
		fn, _ := selection.Obj().(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		if v, id := atomicTargetVar(info, sel.X); v != nil {
			record(v, id, call.Pos())
		}
		return true
	})
}

// atomicTargetVar resolves the variable an atomic operation targets: the
// field of a selector chain (x.f -> f) or a bare identifier, along with
// the identifier naming it.
func atomicTargetVar(info *types.Info, expr ast.Expr) (*types.Var, *ast.Ident) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v, x.Sel
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v, x
		}
	}
	return nil, nil
}

// atomicVarDisplay renders the accessed variable for diagnostics.
func atomicVarDisplay(v *types.Var) string {
	if v.IsField() {
		return "field " + v.Name()
	}
	return "variable " + v.Name()
}
