package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func rect(minx, miny, maxx, maxy float64) Rect {
	return Rect{MinX: minx, MinY: miny, MaxX: maxx, MaxY: maxy}
}

// randRect draws a valid rectangle inside the unit square.
func randRect(rng *rand.Rand) Rect {
	x1, x2 := rng.Float64(), rng.Float64()
	y1, y2 := rng.Float64(), rng.Float64()
	return RectFromPoints(Point{x1, y1}, Point{x2, y2})
}

func TestRectBasics(t *testing.T) {
	r := rect(0.1, 0.2, 0.5, 0.8)
	if !r.Valid() {
		t.Fatal("valid rect reported invalid")
	}
	if got, want := r.Width(), 0.4; math.Abs(got-want) > 1e-15 {
		t.Errorf("Width = %g, want %g", got, want)
	}
	if got, want := r.Height(), 0.6; math.Abs(got-want) > 1e-15 {
		t.Errorf("Height = %g, want %g", got, want)
	}
	if got, want := r.Area(), 0.24; math.Abs(got-want) > 1e-15 {
		t.Errorf("Area = %g, want %g", got, want)
	}
	if got, want := r.Margin(), 1.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("Margin = %g, want %g", got, want)
	}
	if got, want := r.Center(), (Point{0.3, 0.5}); math.Abs(got.X-want.X) > 1e-15 || math.Abs(got.Y-want.Y) > 1e-15 {
		t.Errorf("Center = %v, want %v", got, want)
	}
}

func TestRectInvalid(t *testing.T) {
	if rect(0.5, 0, 0.1, 1).Valid() {
		t.Error("rect with MinX > MaxX reported valid")
	}
	if rect(0, 0.5, 1, 0.1).Valid() {
		t.Error("rect with MinY > MaxY reported valid")
	}
	if !PointRect(Point{0.3, 0.3}).Valid() {
		t.Error("degenerate point rect reported invalid")
	}
}

func TestContainsPoint(t *testing.T) {
	r := rect(0.2, 0.2, 0.6, 0.6)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0.4, 0.4}, true},
		{Point{0.2, 0.2}, true}, // boundary inclusive
		{Point{0.6, 0.6}, true},
		{Point{0.2, 0.6}, true},
		{Point{0.1999, 0.4}, false},
		{Point{0.4, 0.6001}, false},
		{Point{0.7, 0.7}, false},
	}
	for _, tc := range cases {
		if got := r.ContainsPoint(tc.p); got != tc.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestIntersects(t *testing.T) {
	a := rect(0, 0, 0.5, 0.5)
	cases := []struct {
		b    Rect
		want bool
	}{
		{rect(0.25, 0.25, 0.75, 0.75), true},
		{rect(0.5, 0.5, 1, 1), true}, // touching corner counts
		{rect(0.5, 0, 1, 0.5), true}, // touching edge counts
		{rect(0.51, 0.51, 1, 1), false},
		{rect(0, 0.51, 0.5, 1), false},
		{a, true},                        // self
		{rect(0.1, 0.1, 0.2, 0.2), true}, // contained
	}
	for _, tc := range cases {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, tc.b, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("Intersects not symmetric for %v, %v", a, tc.b)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := rect(0, 0, 0.5, 0.5)
	got, ok := a.Intersect(rect(0.25, 0.25, 0.75, 0.75))
	if !ok || !got.Equal(rect(0.25, 0.25, 0.5, 0.5)) {
		t.Errorf("Intersect = %v, %v", got, ok)
	}
	if _, ok := a.Intersect(rect(0.6, 0.6, 1, 1)); ok {
		t.Error("disjoint rects reported intersecting")
	}
	// Touching rectangles intersect in a degenerate rect.
	got, ok = a.Intersect(rect(0.5, 0, 1, 1))
	if !ok || got.Area() != 0 {
		t.Errorf("touching Intersect = %v, %v, want degenerate", got, ok)
	}
}

func TestUnionAndMBR(t *testing.T) {
	a, b := rect(0, 0, 0.3, 0.3), rect(0.5, 0.6, 0.9, 0.7)
	u := a.Union(b)
	if !u.Equal(rect(0, 0, 0.9, 0.7)) {
		t.Errorf("Union = %v", u)
	}
	if got := MBR([]Rect{a, b}); !got.Equal(u) {
		t.Errorf("MBR = %v, want %v", got, u)
	}
	if got := MBR([]Rect{a}); !got.Equal(a) {
		t.Errorf("MBR single = %v", got)
	}
}

func TestMBRPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MBR(nil) did not panic")
		}
	}()
	MBR(nil)
}

func TestEnlargement(t *testing.T) {
	a := rect(0, 0, 0.5, 0.5)
	if got := a.Enlargement(rect(0.1, 0.1, 0.2, 0.2)); got != 0 {
		t.Errorf("enlargement for contained rect = %g, want 0", got)
	}
	got := a.Enlargement(rect(0, 0, 1, 0.5))
	if want := 0.25; math.Abs(got-want) > 1e-15 {
		t.Errorf("Enlargement = %g, want %g", got, want)
	}
}

func TestExpandConventions(t *testing.T) {
	r := rect(0.4, 0.4, 0.6, 0.6)
	// ExpandTotal grows width by qx, height by qy, center fixed (Fig. 4).
	e := r.ExpandTotal(0.2, 0.1)
	if !e.AlmostEqual(rect(0.3, 0.35, 0.7, 0.65), 1e-12) {
		t.Errorf("ExpandTotal = %v", e)
	}
	if c, want := e.Center(), r.Center(); math.Abs(c.X-want.X)+math.Abs(c.Y-want.Y) > 1e-12 {
		t.Errorf("ExpandTotal moved center to %v", c)
	}
	// ExtendCorner grows only the top-right corner (Fig. 2).
	c := r.ExtendCorner(0.2, 0.1)
	if !c.AlmostEqual(rect(0.4, 0.4, 0.8, 0.7), 1e-12) {
		t.Errorf("ExtendCorner = %v", c)
	}
}

// The geometric facts the whole model rests on: a region query intersects
// R iff its top-right corner lies in ExtendCorner(R), and iff its center
// lies in ExpandTotal(R).
func TestQueryEquivalences(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	const qx, qy = 0.13, 0.07
	for i := 0; i < 5000; i++ {
		r := randRect(rng)
		// A random query rectangle of size qx x qy (may poke outside U).
		cx, cy := rng.Float64(), rng.Float64()
		q := RectAround(Point{cx, cy}, qx, qy)

		want := r.Intersects(q)
		corner := Point{q.MaxX, q.MaxY}
		if got := r.ExtendCorner(qx, qy).ContainsPoint(corner); got != want {
			t.Fatalf("corner equivalence failed: r=%v q=%v want %v got %v", r, q, want, got)
		}
		if got := r.ExpandTotal(qx, qy).ContainsPoint(Point{cx, cy}); got != want {
			t.Fatalf("center equivalence failed: r=%v q=%v want %v got %v", r, q, want, got)
		}
	}
}

func TestClamp(t *testing.T) {
	got := rect(-0.5, 0.5, 1.5, 2).Clamp(UnitSquare)
	if !got.Equal(rect(0, 0.5, 1, 1)) {
		t.Errorf("Clamp = %v", got)
	}
	// Entirely outside: degenerate on the boundary.
	got = rect(2, 2, 3, 3).Clamp(UnitSquare)
	if !got.Valid() || got.Area() != 0 {
		t.Errorf("Clamp outside = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	in := []Rect{rect(10, 20, 30, 40), rect(20, 30, 50, 60)}
	out := Normalize(in)
	bb := MBR(out)
	if !bb.AlmostEqual(UnitSquare, 1e-12) {
		t.Errorf("normalized bounding box = %v", bb)
	}
	// Relative positions preserved: first rect starts at origin.
	if out[0].MinX != 0 || out[0].MinY != 0 {
		t.Errorf("first rect = %v", out[0])
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) != nil")
	}
}

func TestNormalizePointsDegenerate(t *testing.T) {
	// All points on a vertical line: x collapses to 0, y spreads.
	pts := []Point{{2, 1}, {2, 3}, {2, 2}}
	out := NormalizePoints(pts)
	for _, p := range out {
		if p.X != 0 {
			t.Errorf("degenerate axis not collapsed: %v", out)
		}
	}
	if out[1].Y != 1 || out[0].Y != 0 {
		t.Errorf("y not normalized: %v", out)
	}
}

func TestTotals(t *testing.T) {
	rs := []Rect{rect(0, 0, 0.5, 0.5), rect(0, 0, 0.25, 1)}
	if got, want := TotalArea(rs), 0.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("TotalArea = %g", got)
	}
	lx, ly := TotalExtents(rs)
	if math.Abs(lx-0.75) > 1e-15 || math.Abs(ly-1.5) > 1e-15 {
		t.Errorf("TotalExtents = %g, %g", lx, ly)
	}
}

// Property: union contains both operands; intersection is contained in both.
func TestUnionIntersectProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	f := func() bool {
		a, b := randRect(rng), randRect(rng)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		if x, ok := a.Intersect(b); ok {
			if !a.ContainsRect(x) || !b.ContainsRect(x) {
				return false
			}
			if !a.Intersects(b) {
				return false
			}
		} else if a.Intersects(b) {
			return false
		}
		// Area is monotone under union.
		return u.Area() >= a.Area() && u.Area() >= b.Area()
	}
	for i := 0; i < 2000; i++ {
		if !f() {
			t.Fatalf("union/intersect property violated at iteration %d", i)
		}
	}
}

// Property (testing/quick): for arbitrary float inputs, RectFromPoints is
// valid and contains both points.
func TestRectFromPointsQuick(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		// Constrain to finite values; NaN ordering is undefined by design.
		for _, v := range []float64{x1, y1, x2, y2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		r := RectFromPoints(Point{x1, y1}, Point{x2, y2})
		return r.Valid() && r.ContainsPoint(Point{x1, y1}) && r.ContainsPoint(Point{x2, y2})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentersAndPointRects(t *testing.T) {
	rs := []Rect{rect(0, 0, 0.2, 0.4), rect(0.5, 0.5, 0.7, 0.9)}
	cs := Centers(rs)
	if len(cs) != 2 || cs[0] != (Point{0.1, 0.2}) || cs[1] != (Point{0.6, 0.7}) {
		t.Errorf("Centers = %v", cs)
	}
	prs := PointRects(cs)
	for i, pr := range prs {
		if pr.Area() != 0 || pr.Center() != cs[i] {
			t.Errorf("PointRects[%d] = %v", i, pr)
		}
	}
}

func TestString(t *testing.T) {
	if got := rect(0, 0, 0.5, 1).String(); got != "[0,0.5]x[0,1]" {
		t.Errorf("String = %q", got)
	}
}
