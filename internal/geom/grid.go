package geom

import "fmt"

// GridCounter answers exact "how many points lie inside this rectangle?"
// queries over a fixed point set. It is the workhorse behind the
// data-driven access probabilities of Section 3.2, where every node MBR
// needs the count of data centers falling inside its expanded rectangle:
// computed naively that is O(nodes x points); with the GridCounter it is
// close to O(nodes x sqrt(points)) in practice.
//
// Implementation: the bounding box of the point set is divided into an
// res x res uniform grid. Each cell stores its points; a 2-D prefix-sum
// table stores cumulative cell counts. A query counts fully-covered cells
// via the prefix sums in O(1) and inspects only the O(res) boundary cells
// point by point, so results are exact, not approximations.
type GridCounter struct {
	res    int
	bounds Rect
	inv    float64 // res / width (guarded), per axis below
	invX   float64
	invY   float64
	cells  [][]Point // res*res buckets, row-major (iy*res + ix)
	prefix []int     // (res+1)*(res+1) inclusive 2-D prefix sums of cell counts
	n      int
}

// NewGridCounter builds a counter over points with an res x res grid.
// res must be at least 1; 256 is a good default for 10^4..10^6 points.
func NewGridCounter(points []Point, res int) *GridCounter {
	if res < 1 {
		panic(fmt.Sprintf("geom: GridCounter resolution %d < 1", res))
	}
	g := &GridCounter{res: res, n: len(points)}
	if len(points) == 0 {
		g.bounds = UnitSquare
	} else {
		g.bounds = MBRPoints(points)
	}
	// Guard degenerate extents so every point maps into a cell.
	w, h := g.bounds.Width(), g.bounds.Height()
	if w <= 0 {
		w = 1
	}
	if h <= 0 {
		h = 1
	}
	g.invX = float64(res) / w
	g.invY = float64(res) / h

	g.cells = make([][]Point, res*res)
	for _, p := range points {
		ix, iy := g.cellOf(p)
		idx := iy*res + ix
		g.cells[idx] = append(g.cells[idx], p)
	}

	// Inclusive prefix sums with a one-cell border of zeros:
	// prefix[(iy+1)*(res+1)+(ix+1)] = count of points in cells [0..ix]x[0..iy].
	g.prefix = make([]int, (res+1)*(res+1))
	for iy := 0; iy < res; iy++ {
		rowSum := 0
		for ix := 0; ix < res; ix++ {
			rowSum += len(g.cells[iy*res+ix])
			g.prefix[(iy+1)*(res+1)+(ix+1)] = g.prefix[iy*(res+1)+(ix+1)] + rowSum
		}
	}
	return g
}

// Len returns the number of points indexed.
func (g *GridCounter) Len() int { return g.n }

// Bounds returns the bounding box the grid covers.
func (g *GridCounter) Bounds() Rect { return g.bounds }

func (g *GridCounter) cellOf(p Point) (ix, iy int) {
	ix = int((p.X - g.bounds.MinX) * g.invX)
	iy = int((p.Y - g.bounds.MinY) * g.invY)
	if ix >= g.res {
		ix = g.res - 1
	}
	if iy >= g.res {
		iy = g.res - 1
	}
	if ix < 0 {
		ix = 0
	}
	if iy < 0 {
		iy = 0
	}
	return ix, iy
}

// cellRect returns the geometric extent of cell (ix, iy).
func (g *GridCounter) cellRect(ix, iy int) Rect {
	return Rect{
		MinX: g.bounds.MinX + float64(ix)/g.invX,
		MinY: g.bounds.MinY + float64(iy)/g.invY,
		MaxX: g.bounds.MinX + float64(ix+1)/g.invX,
		MaxY: g.bounds.MinY + float64(iy+1)/g.invY,
	}
}

// rangeSum returns the total point count of cells [ix0..ix1] x [iy0..iy1]
// (inclusive) using the prefix table.
func (g *GridCounter) rangeSum(ix0, iy0, ix1, iy1 int) int {
	if ix0 > ix1 || iy0 > iy1 {
		return 0
	}
	s := g.res + 1
	return g.prefix[(iy1+1)*s+(ix1+1)] -
		g.prefix[iy0*s+(ix1+1)] -
		g.prefix[(iy1+1)*s+ix0] +
		g.prefix[iy0*s+ix0]
}

// Count returns the exact number of indexed points inside r (boundary
// inclusive).
func (g *GridCounter) Count(r Rect) int {
	if g.n == 0 || !r.Valid() {
		return 0
	}
	q, ok := r.Intersect(g.bounds)
	if !ok {
		return 0
	}
	ix0, iy0 := g.cellOf(Point{q.MinX, q.MinY})
	ix1, iy1 := g.cellOf(Point{q.MaxX, q.MaxY})

	// Interior cells are those whose extent lies strictly inside r;
	// conservatively shrink the index range by one on each side.
	inx0, iny0, inx1, iny1 := ix0+1, iy0+1, ix1-1, iy1-1
	total := g.rangeSum(inx0, iny0, inx1, iny1)

	// Boundary cells: exact point-by-point test. Walk the frame formed by
	// the outer ring of the [ix0..ix1]x[iy0..iy1] cell range.
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			interior := ix >= inx0 && ix <= inx1 && iy >= iny0 && iy <= iny1
			if interior {
				continue
			}
			for _, p := range g.cells[iy*g.res+ix] {
				if r.ContainsPoint(p) {
					total++
				}
			}
		}
	}
	return total
}

// Fraction returns Count(r) divided by the total number of points, i.e.
// the empirical probability that a uniformly chosen data center lies in r.
// This is exactly the data-driven access probability A^Q of Equation 4
// when r is the expanded MBR R'.
func (g *GridCounter) Fraction(r Rect) float64 {
	if g.n == 0 {
		return 0
	}
	return float64(g.Count(r)) / float64(g.n)
}
