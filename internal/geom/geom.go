// Package geom provides the two-dimensional geometric primitives used
// throughout the repository: points, axis-parallel rectangles, and the
// operations on them that R-trees and the buffer-aware cost model require
// (area, margin, intersection, union, containment, expansion, clamping to
// the unit square).
//
// Following the paper, all data is normalized to the unit square
// U = [0,1] x [0,1]. Most functions operate on arbitrary rectangles, but
// helpers that implement the boundary corrections of Section 3.1 of the
// paper (query-corner domain U', clipped access probabilities) assume the
// unit square.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Rect is a closed axis-parallel rectangle [MinX,MaxX] x [MinY,MaxY].
// A Rect is valid when MinX <= MaxX and MinY <= MaxY. Degenerate
// rectangles (zero width and/or height) are valid and represent line
// segments or points; they arise naturally when indexing point data.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// UnitSquare is the normalized data space U = [0,1] x [0,1] used by the paper.
var UnitSquare = Rect{0, 0, 1, 1}

// RectFromPoints returns the smallest rectangle containing both points.
func RectFromPoints(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X),
		MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X),
		MaxY: math.Max(a.Y, b.Y),
	}
}

// RectAround returns the rectangle of size w x h centered at c.
func RectAround(c Point, w, h float64) Rect {
	return Rect{c.X - w/2, c.Y - h/2, c.X + w/2, c.Y + h/2}
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect {
	return Rect{p.X, p.Y, p.X, p.Y}
}

// Valid reports whether r has non-negative extent on both axes.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Width returns the x-extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the y-extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r. Degenerate rectangles have zero area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Margin returns half the perimeter of r (the sum of its extents).
// The cost model of the paper uses the per-axis extent sums Lx and Ly;
// Margin is their per-rectangle counterpart, used by packing quality metrics.
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Center returns the center point of r. Packing algorithms (NX, HS, STR)
// order rectangles by their centers.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// ContainsPoint reports whether p lies inside r (boundary inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point
// (touching boundaries count, matching the paper's closed-rectangle
// intersection queries).
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the common region of r and s and whether it is non-empty.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if !out.Valid() {
		return Rect{}, false
	}
	return out, true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// UnionPoint returns the smallest rectangle containing r and p.
func (r Rect) UnionPoint(p Point) Rect {
	return Rect{
		MinX: math.Min(r.MinX, p.X),
		MinY: math.Min(r.MinY, p.Y),
		MaxX: math.Max(r.MaxX, p.X),
		MaxY: math.Max(r.MaxY, p.Y),
	}
}

// Enlargement returns the increase in area of r needed to include s.
// Guttman's ChooseLeaf picks the child whose MBR needs least enlargement.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Expand returns r grown by dx on each side in x and dy on each side in y,
// keeping the center fixed. This is the R -> R' expansion of Section 3.2
// (data-driven queries) when called as Expand(qx/2, qy/2)... Note: the paper
// expands by qx total on dimension x; use ExpandTotal for that convention.
func (r Rect) Expand(dx, dy float64) Rect {
	return Rect{r.MinX - dx, r.MinY - dy, r.MaxX + dx, r.MaxY + dy}
}

// ExpandTotal returns r with its width grown by qx and height by qy,
// center fixed — exactly the R' of Fig. 4 in the paper: a query of size
// qx x qy intersects R iff the query center lies inside ExpandTotal(qx,qy).
func (r Rect) ExpandTotal(qx, qy float64) Rect {
	return r.Expand(qx/2, qy/2)
}

// ExtendCorner returns the Kamel–Faloutsos extended rectangle
// R' = <(a,b),(c+qx,d+qy)>: a query of size qx x qy intersects R iff the
// query's top-right corner lies inside ExtendCorner(qx,qy) (Fig. 2).
func (r Rect) ExtendCorner(qx, qy float64) Rect {
	return Rect{r.MinX, r.MinY, r.MaxX + qx, r.MaxY + qy}
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy float64) Rect {
	return Rect{r.MinX + dx, r.MinY + dy, r.MaxX + dx, r.MaxY + dy}
}

// Scale returns r with both corners multiplied by s (scaling about the origin).
func (r Rect) Scale(s float64) Rect {
	return Rect{r.MinX * s, r.MinY * s, r.MaxX * s, r.MaxY * s}
}

// Clamp returns r clipped to bounds. If r lies entirely outside bounds the
// result is a degenerate rectangle on the boundary of bounds.
func (r Rect) Clamp(bounds Rect) Rect {
	return Rect{
		MinX: clamp(r.MinX, bounds.MinX, bounds.MaxX),
		MinY: clamp(r.MinY, bounds.MinY, bounds.MaxY),
		MaxX: clamp(r.MaxX, bounds.MinX, bounds.MaxX),
		MaxY: clamp(r.MaxY, bounds.MinY, bounds.MaxY),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b differ by at most eps. It is the
// float comparison the floatcmp analyzer steers code toward: R-tree MBRs
// are unions and products of many float64 values, so exact == on derived
// quantities encodes an accident of rounding, not a geometric fact.
func ApproxEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

// Equal reports exact equality of all four coordinates. This is the
// identity check used by the structural invariants (an internal entry's
// rectangle must be bit-for-bit the MBR of its child, because both are
// computed by the same Union fold); for tolerant comparison use
// AlmostEqual.
func (r Rect) Equal(s Rect) bool { return r == s } //lint:allow floatcmp identity is the contract here

// AlmostEqual reports equality of all four coordinates within eps.
func (r Rect) AlmostEqual(s Rect, eps float64) bool {
	return ApproxEqual(r.MinX, s.MinX, eps) &&
		ApproxEqual(r.MinY, s.MinY, eps) &&
		ApproxEqual(r.MaxX, s.MaxX, eps) &&
		ApproxEqual(r.MaxY, s.MaxY, eps)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// MBR returns the minimum bounding rectangle of rects.
// It panics if rects is empty: an MBR of nothing is undefined and asking
// for one always indicates a bug in the caller.
func MBR(rects []Rect) Rect {
	if len(rects) == 0 {
		panic("geom: MBR of empty slice")
	}
	out := rects[0]
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out
}

// MBRPoints returns the minimum bounding rectangle of points.
// It panics if points is empty.
func MBRPoints(points []Point) Rect {
	if len(points) == 0 {
		panic("geom: MBRPoints of empty slice")
	}
	out := PointRect(points[0])
	for _, p := range points[1:] {
		out = out.UnionPoint(p)
	}
	return out
}

// TotalArea returns the sum of areas of rects (the quantity A of the paper).
func TotalArea(rects []Rect) float64 {
	var a float64
	for _, r := range rects {
		a += r.Area()
	}
	return a
}

// TotalExtents returns the per-axis extent sums (Lx, Ly) of rects, the
// quantities Lx and Ly of the paper's Equation 2.
func TotalExtents(rects []Rect) (lx, ly float64) {
	for _, r := range rects {
		lx += r.Width()
		ly += r.Height()
	}
	return lx, ly
}

// Normalize maps rects into the unit square: it computes the MBR of all
// rects and applies the affine map taking that MBR onto [0,1] x [0,1]
// (uniform scale on each axis independently, as in the paper's
// normalization of all data sets). It returns the normalized copies.
// Degenerate overall extent on an axis maps every coordinate to 0.
func Normalize(rects []Rect) []Rect {
	if len(rects) == 0 {
		return nil
	}
	bb := MBR(rects)
	sx := safeInv(bb.Width())
	sy := safeInv(bb.Height())
	out := make([]Rect, len(rects))
	for i, r := range rects {
		out[i] = Rect{
			MinX: (r.MinX - bb.MinX) * sx,
			MinY: (r.MinY - bb.MinY) * sy,
			MaxX: (r.MaxX - bb.MinX) * sx,
			MaxY: (r.MaxY - bb.MinY) * sy,
		}
	}
	return out
}

// NormalizePoints maps points into the unit square, as Normalize does for
// rectangles.
func NormalizePoints(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	bb := MBRPoints(points)
	sx := safeInv(bb.Width())
	sy := safeInv(bb.Height())
	out := make([]Point, len(points))
	for i, p := range points {
		out[i] = Point{(p.X - bb.MinX) * sx, (p.Y - bb.MinY) * sy}
	}
	return out
}

func safeInv(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return 1 / v
}

// Centers returns the center point of every rectangle, in order.
func Centers(rects []Rect) []Point {
	out := make([]Point, len(rects))
	for i, r := range rects {
		out[i] = r.Center()
	}
	return out
}

// PointRects converts points to degenerate rectangles, in order.
func PointRects(points []Point) []Rect {
	out := make([]Rect, len(points))
	for i, p := range points {
		out[i] = PointRect(p)
	}
	return out
}
