package geom

import (
	"math/rand/v2"
	"testing"
)

func bruteCount(points []Point, r Rect) int {
	n := 0
	for _, p := range points {
		if r.ContainsPoint(p) {
			n++
		}
	}
	return n
}

func randPoints(rng *rand.Rand, n int) []Point {
	out := make([]Point, n)
	for i := range out {
		out[i] = Point{rng.Float64(), rng.Float64()}
	}
	return out
}

func TestGridCounterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for _, res := range []int{1, 3, 16, 64, 256} {
		points := randPoints(rng, 3000)
		g := NewGridCounter(points, res)
		if g.Len() != len(points) {
			t.Fatalf("res %d: Len = %d", res, g.Len())
		}
		for i := 0; i < 300; i++ {
			r := randRect(rng)
			if got, want := g.Count(r), bruteCount(points, r); got != want {
				t.Fatalf("res %d: Count(%v) = %d, want %d", res, r, got, want)
			}
		}
	}
}

func TestGridCounterClusteredPoints(t *testing.T) {
	// Heavily clustered points stress boundary-cell handling: most mass in
	// very few cells.
	rng := rand.New(rand.NewPCG(5, 9))
	points := make([]Point, 0, 4000)
	for i := 0; i < 4000; i++ {
		points = append(points, Point{
			X: 0.5 + 0.01*(rng.Float64()-0.5),
			Y: 0.5 + 0.01*(rng.Float64()-0.5),
		})
	}
	g := NewGridCounter(points, 128)
	for i := 0; i < 300; i++ {
		c := Point{0.5 + 0.02*(rng.Float64()-0.5), 0.5 + 0.02*(rng.Float64()-0.5)}
		r := RectAround(c, rng.Float64()*0.02, rng.Float64()*0.02)
		if got, want := g.Count(r), bruteCount(points, r); got != want {
			t.Fatalf("Count(%v) = %d, want %d", r, got, want)
		}
	}
}

func TestGridCounterEdgeQueries(t *testing.T) {
	points := []Point{{0, 0}, {1, 1}, {0.5, 0.5}, {0, 1}, {1, 0}}
	g := NewGridCounter(points, 8)
	cases := []struct {
		r    Rect
		want int
	}{
		{UnitSquare, 5},
		{Rect{0, 0, 0, 0}, 1}, // exact corner point
		{Rect{1, 1, 1, 1}, 1}, // far corner
		{Rect{0.5, 0.5, 0.5, 0.5}, 1},
		{Rect{-5, -5, 5, 5}, 5}, // query exceeding bounds
		{Rect{2, 2, 3, 3}, 0},   // fully outside
		{Rect{0, 0, 0.49, 0.49}, 1},
	}
	for _, tc := range cases {
		if got := g.Count(tc.r); got != tc.want {
			t.Errorf("Count(%v) = %d, want %d", tc.r, got, tc.want)
		}
	}
}

func TestGridCounterInvalidAndEmpty(t *testing.T) {
	g := NewGridCounter(nil, 4)
	if g.Count(UnitSquare) != 0 || g.Fraction(UnitSquare) != 0 {
		t.Error("empty counter returned non-zero")
	}
	g2 := NewGridCounter([]Point{{0.5, 0.5}}, 4)
	if g2.Count(Rect{MinX: 1, MinY: 1, MaxX: 0, MaxY: 0}) != 0 {
		t.Error("invalid rect counted points")
	}
}

func TestGridCounterIdenticalPoints(t *testing.T) {
	points := make([]Point, 100)
	for i := range points {
		points[i] = Point{0.3, 0.7}
	}
	g := NewGridCounter(points, 16)
	if got := g.Count(RectAround(Point{0.3, 0.7}, 0.01, 0.01)); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	if got := g.Fraction(Rect{0, 0, 0.29, 1}); got != 0 {
		t.Errorf("Fraction left of cluster = %g", got)
	}
}

func TestGridCounterFraction(t *testing.T) {
	points := []Point{{0.1, 0.1}, {0.2, 0.2}, {0.9, 0.9}, {0.95, 0.95}}
	g := NewGridCounter(points, 32)
	if got := g.Fraction(Rect{0, 0, 0.5, 0.5}); got != 0.5 {
		t.Errorf("Fraction = %g, want 0.5", got)
	}
}

func TestGridCounterPanicsOnBadResolution(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("resolution 0 did not panic")
		}
	}()
	NewGridCounter(nil, 0)
}

func BenchmarkGridCounterCount(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	points := randPoints(rng, 100000)
	g := NewGridCounter(points, 256)
	queries := make([]Rect, 256)
	for i := range queries {
		queries[i] = RectAround(Point{rng.Float64(), rng.Float64()}, 0.05, 0.05)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Count(queries[i%len(queries)])
	}
}

func BenchmarkBruteForceCount(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	points := randPoints(rng, 100000)
	queries := make([]Rect, 256)
	for i := range queries {
		queries[i] = RectAround(Point{rng.Float64(), rng.Float64()}, 0.05, 0.05)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bruteCount(points, queries[i%len(queries)])
	}
}
