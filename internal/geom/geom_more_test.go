package geom

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Gap coverage for helpers introduced alongside the main API.

func TestRectAround(t *testing.T) {
	r := RectAround(Point{X: 0.5, Y: 0.5}, 0.2, 0.4)
	if !r.AlmostEqual(rect(0.4, 0.3, 0.6, 0.7), 1e-15) {
		t.Errorf("RectAround = %v", r)
	}
	if c := r.Center(); math.Abs(c.X-0.5)+math.Abs(c.Y-0.5) > 1e-15 {
		t.Errorf("center moved: %v", c)
	}
	// Zero-size: a point rectangle.
	if p := RectAround(Point{X: 0.1, Y: 0.2}, 0, 0); p.Area() != 0 || p.Center() != (Point{X: 0.1, Y: 0.2}) {
		t.Errorf("degenerate RectAround = %v", p)
	}
}

func TestTranslate(t *testing.T) {
	r := rect(0.1, 0.2, 0.3, 0.4).Translate(0.5, -0.1)
	if !r.AlmostEqual(rect(0.6, 0.1, 0.8, 0.3), 1e-15) {
		t.Errorf("Translate = %v", r)
	}
	// Translation preserves area and margin.
	orig := rect(0.1, 0.2, 0.3, 0.4)
	if math.Abs(r.Area()-orig.Area()) > 1e-15 || math.Abs(r.Margin()-orig.Margin()) > 1e-15 {
		t.Error("Translate changed size")
	}
}

func TestScale(t *testing.T) {
	r := rect(0.1, 0.2, 0.3, 0.4).Scale(2)
	if !r.AlmostEqual(rect(0.2, 0.4, 0.6, 0.8), 1e-15) {
		t.Errorf("Scale = %v", r)
	}
	if got, want := r.Area(), 4*rect(0.1, 0.2, 0.3, 0.4).Area(); math.Abs(got-want) > 1e-15 {
		t.Errorf("scaled area %g, want %g", got, want)
	}
}

func TestUnionPoint(t *testing.T) {
	r := rect(0.2, 0.2, 0.4, 0.4)
	grown := r.UnionPoint(Point{X: 0.9, Y: 0.1})
	if !grown.Equal(rect(0.2, 0.1, 0.9, 0.4)) {
		t.Errorf("UnionPoint = %v", grown)
	}
	// Interior point: unchanged.
	if got := r.UnionPoint(Point{X: 0.3, Y: 0.3}); !got.Equal(r) {
		t.Errorf("interior UnionPoint = %v", got)
	}
}

func TestExpandNegative(t *testing.T) {
	// Negative expansion shrinks; callers use it deliberately.
	r := rect(0.2, 0.2, 0.8, 0.8).Expand(-0.1, -0.2)
	if !r.AlmostEqual(rect(0.3, 0.4, 0.7, 0.6), 1e-15) {
		t.Errorf("negative Expand = %v", r)
	}
}

func TestContainsRect(t *testing.T) {
	outer := rect(0.1, 0.1, 0.9, 0.9)
	cases := []struct {
		inner Rect
		want  bool
	}{
		{rect(0.2, 0.2, 0.8, 0.8), true},
		{outer, true},                    // self
		{rect(0.1, 0.1, 0.1, 0.1), true}, // degenerate on boundary
		{rect(0.05, 0.2, 0.8, 0.8), false},
		{rect(0.2, 0.2, 0.95, 0.8), false},
	}
	for _, tc := range cases {
		if got := outer.ContainsRect(tc.inner); got != tc.want {
			t.Errorf("ContainsRect(%v) = %v", tc.inner, got)
		}
	}
}

func TestMBRPointsAndPanics(t *testing.T) {
	pts := []Point{{X: 0.3, Y: 0.8}, {X: 0.1, Y: 0.9}, {X: 0.5, Y: 0.2}}
	if got := MBRPoints(pts); !got.Equal(rect(0.1, 0.2, 0.5, 0.9)) {
		t.Errorf("MBRPoints = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MBRPoints(nil) did not panic")
		}
	}()
	MBRPoints(nil)
}

func TestNormalizeDegenerateRects(t *testing.T) {
	// All rects share one x: the x axis collapses to 0.
	in := []Rect{rect(5, 1, 5, 2), rect(5, 3, 5, 4)}
	out := Normalize(in)
	for _, r := range out {
		if r.MinX != 0 || r.MaxX != 0 {
			t.Errorf("degenerate x not collapsed: %v", r)
		}
	}
	if out[1].MaxY != 1 {
		t.Errorf("y not normalized: %v", out)
	}
}

// Property: Clamp output is always inside bounds and idempotent.
func TestClampProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 2000; i++ {
		r := Rect{
			MinX: (rng.Float64() - 0.5) * 4,
			MinY: (rng.Float64() - 0.5) * 4,
			MaxX: (rng.Float64() - 0.5) * 4,
			MaxY: (rng.Float64() - 0.5) * 4,
		}
		if !r.Valid() {
			r = RectFromPoints(Point{X: r.MinX, Y: r.MinY}, Point{X: r.MaxX, Y: r.MaxY})
		}
		c := r.Clamp(UnitSquare)
		if !c.Valid() || !UnitSquare.ContainsRect(c) {
			t.Fatalf("Clamp(%v) = %v escapes", r, c)
		}
		if again := c.Clamp(UnitSquare); !again.Equal(c) {
			t.Fatalf("Clamp not idempotent for %v", r)
		}
	}
}
