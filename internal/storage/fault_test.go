package storage

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/rtree"
)

// savedMemoryTree builds a tree, saves it to a fresh in-memory manager,
// and returns both — the starting point of most fault scenarios.
func savedMemoryTree(t *testing.T, n, capacity int) (*MemoryManager, *rtree.Tree) {
	t.Helper()
	tr := buildTestTree(t, n, capacity)
	dm, err := NewMemoryManager(DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTree(dm, tr); err != nil {
		t.Fatal(err)
	}
	return dm, tr
}

func TestFaultManagerTransientReads(t *testing.T) {
	dm, _ := savedMemoryTree(t, 300, 16)
	fm := NewFaultManager(dm, 1).FailEveryNthRead(3)
	buf := make([]byte, dm.PageSize())
	var faults, oks int
	for i := 0; i < 12; i++ {
		err := fm.ReadPage(0, buf)
		if err != nil {
			if !Transient(err) {
				t.Fatalf("injected read fault not classified transient: %v", err)
			}
			faults++
			// The retry is a fresh access and must succeed (it is not a
			// multiple of 3).
			if err := fm.ReadPage(0, buf); err != nil {
				t.Fatalf("retry after transient fault failed: %v", err)
			}
			oks++
		} else {
			oks++
		}
	}
	if faults == 0 {
		t.Fatal("every-3rd-read plan never fired")
	}
	if st := fm.FaultStats(); st.TransientReads != uint64(faults) {
		t.Errorf("FaultStats.TransientReads = %d, want %d", st.TransientReads, faults)
	}
	if oks == 0 {
		t.Fatal("no successful reads at all")
	}
}

func TestFaultManagerProbabilisticReadsDeterministic(t *testing.T) {
	run := func() []bool {
		dm, _ := savedMemoryTree(t, 200, 16)
		fm := NewFaultManager(dm, 42).FailReadsWithProb(0.3)
		buf := make([]byte, dm.PageSize())
		var outcomes []bool
		for i := 0; i < 50; i++ {
			outcomes = append(outcomes, fm.ReadPage(0, buf) == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	var faults int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probabilistic plan not deterministic at read %d", i)
		}
		if !a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Error("p=0.3 plan injected nothing in 50 reads")
	}
}

func TestFaultManagerBadPage(t *testing.T) {
	dm, _ := savedMemoryTree(t, 300, 16)
	fm := NewFaultManager(dm, 1).BadPage(2)
	buf := make([]byte, dm.PageSize())
	for i := 0; i < 3; i++ {
		err := fm.ReadPage(2, buf)
		if err == nil {
			t.Fatal("bad page read succeeded")
		}
		if Transient(err) {
			t.Fatal("permanent fault classified transient")
		}
	}
	if err := fm.ReadPage(0, buf); err != nil {
		t.Fatalf("healthy page affected by bad-page plan: %v", err)
	}
}

func TestFaultManagerCorruptStoredPage(t *testing.T) {
	dm, _ := savedMemoryTree(t, 300, 16)
	fm := NewFaultManager(dm, 7)
	buf := make([]byte, dm.PageSize())
	if err := dm.ReadPage(3, buf); err != nil {
		t.Fatal(err)
	}
	if err := VerifyPage(buf); err != nil {
		t.Fatalf("page corrupt before injection: %v", err)
	}
	if err := fm.CorruptStoredPage(3); err != nil {
		t.Fatal(err)
	}
	if err := dm.ReadPage(3, buf); err != nil {
		t.Fatal(err)
	}
	if VerifyPage(buf) == nil {
		t.Fatal("bit flip not caught by the page checksum")
	}
	if _, err := DecodeNode(buf, 3); err == nil {
		t.Fatal("bit-flipped page decoded")
	}
}

func TestFaultManagerTornWrite(t *testing.T) {
	dm, err := NewMemoryManager(256)
	if err != nil {
		t.Fatal(err)
	}
	fm := NewFaultManager(dm, 1).TornWrite(2, 100)
	page := make([]byte, 256)
	for i := range page {
		page[i] = 0xAA
	}
	if err := fm.WritePage(0, page); err != nil { // write 1: intact
		t.Fatal(err)
	}
	if err := fm.WritePage(1, page); err != nil { // write 2: torn, acked
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := dm.ReadPage(1, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := byte(0)
		if i < 100 {
			want = 0xAA
		}
		if got[i] != want {
			t.Fatalf("torn page byte %d = %#x, want %#x", i, got[i], want)
		}
	}
	if st := fm.FaultStats(); st.TornWrites != 1 {
		t.Errorf("TornWrites = %d", st.TornWrites)
	}
}

func TestFaultManagerCrashIsFailStop(t *testing.T) {
	dm, err := NewMemoryManager(256)
	if err != nil {
		t.Fatal(err)
	}
	fm := NewFaultManager(dm, 1).CrashAfterWrites(2)
	page := make([]byte, 256)
	if err := fm.WritePage(0, page); err != nil {
		t.Fatal(err)
	}
	if err := fm.WritePage(1, page); err != nil {
		t.Fatal(err)
	}
	if err := fm.WritePage(2, page); err == nil || !errors.Is(err, ErrCrashed) {
		t.Fatalf("third write past crash point = %v", err)
	}
	if !fm.Crashed() {
		t.Fatal("manager not in crashed state")
	}
	// Fail-stop: every operation now fails, including reads and meta.
	if err := fm.ReadPage(0, page); !errors.Is(err, ErrCrashed) {
		t.Errorf("read after crash = %v", err)
	}
	if err := fm.WriteMeta([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Errorf("meta write after crash = %v", err)
	}
	if _, err := fm.ReadMeta(); !errors.Is(err, ErrCrashed) {
		t.Errorf("meta read after crash = %v", err)
	}
	// The write that hit the crash point was not performed.
	if dm.NumPages() != 2 {
		t.Errorf("crashed write reached the medium: %d pages", dm.NumPages())
	}
	// Close still releases the inner manager but reports the crash.
	if err := fm.Close(); !errors.Is(err, ErrCrashed) {
		t.Errorf("close after crash = %v", err)
	}
}

func TestResilientRecoversTransientReads(t *testing.T) {
	dm, _ := savedMemoryTree(t, 300, 16)
	fm := NewFaultManager(dm, 1).FailEveryNthRead(7)
	var slept []time.Duration
	rm := NewResilientManager(fm, WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	buf := make([]byte, dm.PageSize())
	for i := 0; i < 100; i++ {
		if err := rm.ReadPage(i%dm.NumPages(), buf); err != nil {
			t.Fatalf("read %d failed through resilient manager: %v", i, err)
		}
	}
	st := rm.RetryStats()
	if st.Recoveries == 0 || st.Retries == 0 {
		t.Fatalf("no recoveries recorded: %+v", st)
	}
	if st.Giveups != 0 {
		t.Fatalf("giveups on a transient-only plan: %+v", st)
	}
	if len(slept) == 0 {
		t.Fatal("backoff never slept")
	}
	for _, d := range slept {
		if d < time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("backoff delay %v outside [1ms,100ms]", d)
		}
	}
}

func TestResilientBackoffScheduleAndGiveup(t *testing.T) {
	dm, _ := savedMemoryTree(t, 100, 16)
	fm := NewFaultManager(dm, 1).FailEveryNthRead(1) // every read fails
	var slept []time.Duration
	rm := NewResilientManager(fm,
		WithMaxRetries(3),
		WithBackoff(time.Millisecond, 3*time.Millisecond),
		WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	buf := make([]byte, dm.PageSize())
	err := rm.ReadPage(0, buf)
	if err == nil || !Transient(err) {
		t.Fatalf("exhausted retries returned %v", err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
	st := rm.RetryStats()
	if st.Giveups != 1 || st.Recoveries != 0 || st.Retries != 3 {
		t.Errorf("stats = %+v", st)
	}
	rm.ResetRetryStats()
	if st := rm.RetryStats(); st != (RetryStats{}) {
		t.Errorf("reset left %+v", st)
	}
}

func TestResilientDoesNotRetryPermanentErrors(t *testing.T) {
	dm, _ := savedMemoryTree(t, 100, 16)
	fm := NewFaultManager(dm, 1).BadPage(1)
	calls := 0
	rm := NewResilientManager(fm, WithSleep(func(time.Duration) { calls++ }))
	buf := make([]byte, dm.PageSize())
	if err := rm.ReadPage(1, buf); err == nil || Transient(err) {
		t.Fatalf("bad page through resilient manager = %v", err)
	}
	if calls != 0 {
		t.Errorf("permanent error slept %d times", calls)
	}
	if st := rm.RetryStats(); st.Retries != 0 || st.Giveups != 0 {
		t.Errorf("permanent error counted as retry work: %+v", st)
	}
}

// flakyChecksumManager returns bit-flipped data for the first read of a
// chosen page and clean data afterwards — transport corruption, not
// media corruption.
type flakyChecksumManager struct {
	DiskManager
	page  int
	fired bool
}

func (f *flakyChecksumManager) ReadPage(page int, dst []byte) error {
	if err := f.DiskManager.ReadPage(page, dst); err != nil {
		return err
	}
	if page == f.page && !f.fired {
		f.fired = true
		dst[20] ^= 0x10
	}
	return nil
}

func TestResilientChecksumReread(t *testing.T) {
	dm, _ := savedMemoryTree(t, 300, 16)
	flaky := &flakyChecksumManager{DiskManager: dm, page: 2}
	rm := NewResilientManager(flaky, WithChecksumVerify(true), WithSleep(func(time.Duration) {}))
	buf := make([]byte, dm.PageSize())
	if err := rm.ReadPage(2, buf); err != nil {
		t.Fatalf("transport corruption not healed by re-read: %v", err)
	}
	if err := VerifyPage(buf); err != nil {
		t.Fatalf("delivered page still corrupt: %v", err)
	}
	st := rm.RetryStats()
	if st.Recoveries != 1 || st.Retries != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Media corruption (every read corrupt) must surface, not loop.
	fm := NewFaultManager(dm, 3)
	if err := fm.CorruptStoredPage(4); err != nil {
		t.Fatal(err)
	}
	if err := rm2check(t, dm); err == nil {
		t.Fatal("persistently corrupt page passed checksum verification")
	}
}

func rm2check(t *testing.T, dm DiskManager) error {
	t.Helper()
	rm := NewResilientManager(dm, WithChecksumVerify(true), WithSleep(func(time.Duration) {}))
	buf := make([]byte, dm.PageSize())
	return rm.ReadPage(4, buf)
}

// TestPagedTreeResilientUnderFaultPlan is the acceptance scenario: with
// every 7th read failing once, queries through the full stack
// (PagedTree -> buffer pool -> ResilientManager -> FaultManager ->
// MemoryManager) return results identical to the fault-free in-memory
// tree, with recoveries recorded and zero query errors.
func TestPagedTreeResilientUnderFaultPlan(t *testing.T) {
	tr := buildTestTree(t, 1200, 16)
	dm, err := NewMemoryManager(DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTree(dm, tr); err != nil {
		t.Fatal(err)
	}
	fm := NewFaultManager(dm, 99).FailEveryNthRead(7)
	rm := NewResilientManager(fm, WithChecksumVerify(true), WithSleep(func(time.Duration) {}))
	pt, err := OpenPagedTree(rm, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(701, 702))
	for i := 0; i < 150; i++ {
		q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()},
			rng.Float64()*0.2, rng.Float64()*0.2)
		got, err := pt.SearchWindow(q)
		if err != nil {
			t.Fatalf("query %d errored under transient fault plan: %v", i, err)
		}
		if !sameIDs(got, tr.SearchWindow(q)) {
			t.Fatalf("query %d result diverged under fault plan", i)
		}
	}
	st := rm.RetryStats()
	if st.Recoveries == 0 {
		t.Fatalf("fault plan never fired through the query path: %+v (fault stats %+v)",
			st, fm.FaultStats())
	}
	if st.Giveups != 0 {
		t.Errorf("giveups under a transient-only plan: %+v", st)
	}
	// kNN runs through the same read path.
	for i := 0; i < 30; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		got, err := pt.Nearest(p, 5)
		if err != nil {
			t.Fatalf("kNN errored under fault plan: %v", err)
		}
		want := tr.Nearest(p, 5)
		if len(got) != len(want) {
			t.Fatalf("kNN size mismatch under fault plan")
		}
	}
}

func TestPagedTreeDegradedSearch(t *testing.T) {
	tr := buildTestTree(t, 1200, 16)
	dm, err := NewMemoryManager(DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTree(dm, tr); err != nil {
		t.Fatal(err)
	}
	pt0, err := OpenPagedTree(dm, 200)
	if err != nil {
		t.Fatal(err)
	}
	meta := pt0.Meta()
	// Damage one leaf page (bit flip) and make another unreadable.
	leafLo, leafHi := meta.LevelPageRange(len(meta.Levels) - 1)
	flipPage, badPage := leafLo, leafLo+1
	if badPage >= leafHi {
		t.Fatalf("tree too small for the scenario: leaves %d..%d", leafLo, leafHi)
	}
	// Count the items stored on the two damaged pages before corrupting.
	lost := 0
	buf := make([]byte, dm.PageSize())
	for _, page := range []int{flipPage, badPage} {
		if err := dm.ReadPage(page, buf); err != nil {
			t.Fatal(err)
		}
		nd, err := DecodeNode(buf, page)
		if err != nil {
			t.Fatal(err)
		}
		lost += len(nd.Rects)
	}
	fm := NewFaultManager(dm, 5).BadPage(badPage)
	if err := fm.CorruptStoredPage(flipPage); err != nil {
		t.Fatal(err)
	}
	pt, err := OpenPagedTree(fm, 200)
	if err != nil {
		t.Fatal(err)
	}

	everything := geom.UnitSquare
	// The strict path fails the whole query.
	if _, err := pt.SearchWindow(everything); err == nil {
		t.Fatal("strict search over damaged pages succeeded")
	}
	// The degraded path answers from healthy pages and reports the rest.
	got, rep := pt.SearchWindowDegraded(everything)
	if !rep.Degraded() {
		t.Fatal("degraded search over damaged pages reported clean")
	}
	if len(got) != tr.Len()-lost {
		t.Fatalf("degraded search returned %d items, want %d (%d total - %d on damaged pages)",
			len(got), tr.Len()-lost, tr.Len(), lost)
	}
	reported := map[int]bool{}
	for _, f := range rep.Faults {
		if f.Err == nil {
			t.Fatalf("fault without error: %+v", f)
		}
		reported[f.Page] = true
	}
	if !reported[flipPage] || !reported[badPage] {
		t.Fatalf("report %v missing damaged pages %d, %d", rep.Faults, flipPage, badPage)
	}
	// A query that avoids the damaged subtrees is complete and clean.
	var cleanQueries, completeQueries int
	rng := rand.New(rand.NewPCG(801, 802))
	for i := 0; i < 80; i++ {
		q := geom.RectAround(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 0.03, 0.03)
		got, rep := pt.SearchWindowDegraded(q)
		want := tr.SearchWindow(q)
		if !rep.Degraded() {
			cleanQueries++
			if !sameIDs(got, want) {
				t.Fatalf("clean degraded query diverged from in-memory tree")
			}
		}
		if len(got) <= len(want) {
			completeQueries++
		} else {
			t.Fatalf("degraded query returned more items than the truth")
		}
	}
	if cleanQueries == 0 {
		t.Error("every small query touched the two damaged pages — scenario too coarse")
	}
	_ = completeQueries
}
