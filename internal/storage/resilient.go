package storage

import (
	"fmt"
	"time"
)

// RetryStats counts what the resilience layer did: Retries is the total
// number of re-issued operations, Recoveries the operations that
// ultimately succeeded after at least one retry, and Giveups the
// operations that exhausted the retry budget and surfaced an error.
type RetryStats struct {
	Retries    uint64
	Recoveries uint64
	Giveups    uint64
}

// ResilientManager wraps a DiskManager with a retry policy for the
// failures disks actually exhibit: operations failing with a Transient
// error are retried with bounded exponential backoff, and (opt-in)
// node-page reads whose checksum does not verify are re-read once before
// the corruption error is surfaced — a wrong read off the wire is
// transient, a wrong page on the medium is not.
//
// The sleep function is injectable so tests exercise the full backoff
// schedule in zero wall-clock time. Everything else delegates, so
// stacking ResilientManager over a FaultManager over a FileManager runs
// the identical query path the paper's cost model prices.
type ResilientManager struct {
	inner      DiskManager
	maxRetries int
	baseDelay  time.Duration
	maxDelay   time.Duration
	sleep      func(time.Duration)
	verify     bool
	stats      RetryStats
	metrics    *Metrics
}

// ResilientOption configures a ResilientManager.
type ResilientOption func(*ResilientManager)

// WithMaxRetries bounds how many times a transiently failing operation
// is re-issued (default 4).
func WithMaxRetries(n int) ResilientOption {
	return func(r *ResilientManager) { r.maxRetries = n }
}

// WithBackoff sets the base and maximum retry delays. The nth retry
// sleeps base<<(n-1), capped at limit (defaults 1ms and 100ms).
func WithBackoff(base, limit time.Duration) ResilientOption {
	return func(r *ResilientManager) { r.baseDelay, r.maxDelay = base, limit }
}

// WithSleep injects the sleep function (default time.Sleep). Tests pass
// a recorder so the whole backoff schedule runs instantly.
func WithSleep(sleep func(time.Duration)) ResilientOption {
	return func(r *ResilientManager) { r.sleep = sleep }
}

// WithChecksumVerify makes ReadPage verify the node-page checksum after
// every successful read and re-read once on mismatch, catching transport
// or memory corruption between the medium and the caller.
func WithChecksumVerify(on bool) ResilientOption {
	return func(r *ResilientManager) { r.verify = on }
}

// NewResilientManager wraps inner with the default policy (4 retries,
// 1ms..100ms backoff, real sleep, no checksum verification) adjusted by
// the given options.
func NewResilientManager(inner DiskManager, opts ...ResilientOption) *ResilientManager {
	r := &ResilientManager{
		inner:      inner,
		maxRetries: 4,
		baseDelay:  time.Millisecond,
		maxDelay:   100 * time.Millisecond,
		sleep:      time.Sleep,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// RetryStats returns the cumulative retry counters.
func (r *ResilientManager) RetryStats() RetryStats { return r.stats }

// ResetRetryStats zeroes the retry counters.
func (r *ResilientManager) ResetRetryStats() { r.stats = RetryStats{} }

// retry runs op, re-issuing it on Transient errors with exponential
// backoff. Non-transient errors surface immediately: retrying a medium
// error only burns the latency budget.
func (r *ResilientManager) retry(op func() error) error {
	delay := r.baseDelay
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			if attempt > 0 {
				r.stats.Recoveries++
				r.metrics.noteRecovery()
			}
			return nil
		}
		if !Transient(err) {
			return err
		}
		if attempt >= r.maxRetries {
			r.stats.Giveups++
			r.metrics.noteGiveup()
			return fmt.Errorf("storage: gave up after %d retries: %w", r.maxRetries, err)
		}
		r.stats.Retries++
		r.metrics.noteRetry()
		r.sleep(delay)
		if delay *= 2; delay > r.maxDelay {
			delay = r.maxDelay
		}
	}
}

// readRetry is retry specialized to inner.ReadPage without the closure:
// ReadPage sits on the buffer pool's miss path, and allocating a func
// literal per physical read is measurable at simulation scale. The loop
// must stay in lockstep with retry's policy.
func (r *ResilientManager) readRetry(page int, dst []byte) error {
	delay := r.baseDelay
	var err error
	for attempt := 0; ; attempt++ {
		err = r.inner.ReadPage(page, dst)
		if err == nil {
			if attempt > 0 {
				r.stats.Recoveries++
				r.metrics.noteRecovery()
			}
			return nil
		}
		if !Transient(err) {
			return err
		}
		if attempt >= r.maxRetries {
			r.stats.Giveups++
			r.metrics.noteGiveup()
			return fmt.Errorf("storage: gave up after %d retries: %w", r.maxRetries, err)
		}
		r.stats.Retries++
		r.metrics.noteRetry()
		r.sleep(delay)
		if delay *= 2; delay > r.maxDelay {
			delay = r.maxDelay
		}
	}
}

// PageSize implements DiskManager.
func (r *ResilientManager) PageSize() int { return r.inner.PageSize() }

// NumPages implements DiskManager.
func (r *ResilientManager) NumPages() int { return r.inner.NumPages() }

// ReadPage implements DiskManager with transient-error retry and
// optional checksum verification with a single re-read.
func (r *ResilientManager) ReadPage(page int, dst []byte) error {
	if err := r.readRetry(page, dst); err != nil {
		return err
	}
	if !r.verify {
		return nil
	}
	if VerifyPage(dst[:r.inner.PageSize()]) == nil {
		return nil
	}
	// Mismatch: re-read once. If the copy on the medium is fine the
	// second read verifies; if the medium itself is corrupt this fails
	// identically and the caller gets the checksum error.
	r.stats.Retries++
	r.metrics.noteRetry()
	if err := r.readRetry(page, dst); err != nil {
		return err
	}
	if err := VerifyPage(dst[:r.inner.PageSize()]); err != nil {
		r.stats.Giveups++
		r.metrics.noteGiveup()
		return fmt.Errorf("storage: page %d corrupt after re-read: %w", page, err)
	}
	r.stats.Recoveries++
	r.metrics.noteRecovery()
	return nil
}

// WritePage implements DiskManager with transient-error retry.
func (r *ResilientManager) WritePage(page int, data []byte) error {
	return r.retry(func() error { return r.inner.WritePage(page, data) }) //lint:allow hotalloc write-back is not the read hot path; the closure prices in with the I/O
}

// WriteMeta implements DiskManager with transient-error retry.
func (r *ResilientManager) WriteMeta(meta []byte) error {
	return r.retry(func() error { return r.inner.WriteMeta(meta) })
}

// ReadMeta implements DiskManager with transient-error retry.
func (r *ResilientManager) ReadMeta() ([]byte, error) {
	var out []byte
	err := r.retry(func() error {
		var e error
		out, e = r.inner.ReadMeta()
		return e
	})
	return out, err
}

// Sync forwards a durability barrier to the wrapped manager. Syncs are
// not retried: a failed barrier means durability is unknown, which the
// caller must treat as fatal rather than paper over.
func (r *ResilientManager) Sync() error { return syncManager(r.inner) }

// Stats implements DiskManager, delegating physical I/O accounting
// (retried reads are physical reads and count as such).
func (r *ResilientManager) Stats() IOStats { return r.inner.Stats() }

// ResetStats implements DiskManager.
func (r *ResilientManager) ResetStats() { r.inner.ResetStats() }

// Close implements DiskManager.
func (r *ResilientManager) Close() error { return r.inner.Close() }
