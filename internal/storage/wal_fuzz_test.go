package storage

import (
	"bytes"
	"testing"
)

// flattenWALDevice serializes a log device into the fuzz wire format:
// one byte of meta-blob length, the meta blob, then every page in
// order. deviceFromWALBytes inverts it.
func flattenWALDevice(t testing.TB, dev *MemoryManager) []byte {
	t.Helper()
	meta, err := dev.ReadMeta()
	if err != nil {
		t.Fatal(err)
	}
	if len(meta) > 255 {
		t.Fatalf("meta blob %d bytes does not fit the corpus format", len(meta))
	}
	var out bytes.Buffer
	out.WriteByte(byte(len(meta)))
	out.Write(meta)
	buf := make([]byte, dev.PageSize())
	for p := 0; p < dev.NumPages(); p++ {
		if err := dev.ReadPage(p, buf); err != nil {
			t.Fatal(err)
		}
		out.Write(buf)
	}
	return out.Bytes()
}

func deviceFromWALBytes(t testing.TB, pageSize int, data []byte) *MemoryManager {
	t.Helper()
	dev, err := NewMemoryManager(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		return dev
	}
	metaLen := int(data[0])
	data = data[1:]
	if metaLen > len(data) {
		metaLen = len(data)
	}
	if metaLen > 0 {
		// An oversized blob exceeds the device's meta capacity; model
		// that input as a device with no meta at all.
		if err := dev.WriteMeta(data[:metaLen]); err == nil {
			data = data[metaLen:]
		}
	}
	page := make([]byte, pageSize)
	for p := 0; len(data) > 0; p++ {
		for i := range page {
			page[i] = 0
		}
		n := copy(page, data)
		data = data[n:]
		if err := dev.WritePage(p, page); err != nil {
			t.Fatal(err)
		}
	}
	return dev
}

// FuzzWALReplay throws arbitrary log-device images at OpenWAL + Recover.
// The recovery path's contract under hostile input: never panic, never
// allocate unboundedly, and when it accepts a log, recover it
// idempotently (a second pass replays nothing). Valid logs seeded from
// real AppendBatch output give the fuzzer structure to mutate, so it
// explores torn frames, spliced generations, and bit-flipped CRCs
// rather than pure noise.
func FuzzWALReplay(f *testing.F) {
	const dataPS = MinPageSize
	devPS := dataPS + WALFrameOverhead

	seedDev, err := NewMemoryManager(devPS)
	if err != nil {
		f.Fatal(err)
	}
	w, err := CreateWAL(seedDev, dataPS)
	if err != nil {
		f.Fatal(err)
	}
	img := func(page int, b byte) PageImage {
		data := make([]byte, dataPS)
		for i := range data {
			data[i] = b
		}
		return PageImage{Page: page, Data: data}
	}
	if _, err := w.AppendBatch([]PageImage{img(0, 1), img(1, 1)}, []byte("meta-1")); err != nil {
		f.Fatal(err)
	}
	if _, err := w.AppendBatch([]PageImage{img(0, 2)}, []byte("meta-2")); err != nil {
		f.Fatal(err)
	}
	valid := flattenWALDevice(f, seedDev)
	f.Add(valid)
	f.Add(valid[:len(valid)-devPS/2]) // torn tail
	f.Add(valid[1+28:])               // meta blob lost
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0x40 // CRC break mid-log
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64*devPS {
			return // bound the device size, not the damage variety
		}
		dev := deviceFromWALBytes(t, devPS, data)
		w, err := OpenWAL(dev, dataPS)
		if err != nil {
			return // a rejected device is a fine outcome
		}
		dm, err := NewMemoryManager(dataPS)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Recover(dm, w)
		if err != nil {
			return // clean refusal (e.g. out-of-span image) is a fine outcome
		}
		if rep.ReplayedPages > 0 && dm.NumPages() == 0 {
			t.Fatalf("report claims %d replayed pages but the file is empty", rep.ReplayedPages)
		}

		// Accepted logs must recover idempotently: reopen and re-recover,
		// nothing further to replay.
		w2, err := OpenWAL(dev, dataPS)
		if err != nil {
			t.Fatalf("reopen after successful recovery: %v", err)
		}
		rep2, err := Recover(dm, w2)
		if err != nil {
			t.Fatalf("second recovery errored: %v", err)
		}
		if rep2.ReplayedBatches != 0 {
			t.Fatalf("recovery not idempotent: second pass replayed %d batches", rep2.ReplayedBatches)
		}
	})
}
