package storage

import "rtreebuf/internal/obs"

// Metrics mirrors storage-layer events into an obs.Registry: physical
// page transfers (count and bytes), fsyncs, the resilience layer's
// retry outcomes, injected faults by kind, and scrub findings. Like the
// buffer mirror it is purely additive — the result-bearing IOStats /
// RetryStats / FaultStats structs stay the source of truth, the obs
// series are cumulative shadows — and a nil *Metrics disables every
// method at the cost of one branch (zero allocations, guarded by
// BenchmarkObsDisabled).
type Metrics struct {
	reads      *obs.Counter
	writes     *obs.Counter
	readBytes  *obs.Counter
	writeBytes *obs.Counter
	fsyncs     *obs.Counter

	retries    *obs.Counter
	recoveries *obs.Counter
	giveups    *obs.Counter

	faultTransientReads  *obs.Counter
	faultTransientWrites *obs.Counter
	faultPermanentReads  *obs.Counter
	faultTornWrites      *obs.Counter
	faultCrashedOps      *obs.Counter

	scrubPages  *obs.Counter
	scrubFaults *obs.Counter

	walRecords            *obs.Counter
	walCommits            *obs.Counter
	walCheckpoints        *obs.Counter
	walCheckpointFailures *obs.Counter
	walReplayedPages      *obs.Counter
	walReplayedBatches    *obs.Counter
}

// NewMetrics registers the storage counter families in reg. A nil
// registry returns a nil (disabled) Metrics. Multiple managers may share
// one Metrics; the series then aggregate across them.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	kind := func(k string) obs.Label { return obs.L("kind", k) }
	return &Metrics{
		reads:      reg.Counter("storage_page_reads_total"),
		writes:     reg.Counter("storage_page_writes_total"),
		readBytes:  reg.Counter("storage_read_bytes_total"),
		writeBytes: reg.Counter("storage_write_bytes_total"),
		fsyncs:     reg.Counter("storage_fsyncs_total"),

		retries:    reg.Counter("storage_retries_total"),
		recoveries: reg.Counter("storage_retry_recoveries_total"),
		giveups:    reg.Counter("storage_retry_giveups_total"),

		faultTransientReads:  reg.Counter("storage_faults_injected_total", kind("transient_read")),
		faultTransientWrites: reg.Counter("storage_faults_injected_total", kind("transient_write")),
		faultPermanentReads:  reg.Counter("storage_faults_injected_total", kind("permanent_read")),
		faultTornWrites:      reg.Counter("storage_faults_injected_total", kind("torn_write")),
		faultCrashedOps:      reg.Counter("storage_faults_injected_total", kind("crashed_op")),

		scrubPages:  reg.Counter("storage_scrub_pages_total"),
		scrubFaults: reg.Counter("storage_scrub_faults_total"),

		walRecords:            reg.Counter("storage_wal_records_total"),
		walCommits:            reg.Counter("storage_wal_commits_total"),
		walCheckpoints:        reg.Counter("storage_wal_checkpoints_total"),
		walCheckpointFailures: reg.Counter("storage_wal_checkpoint_failures_total"),
		walReplayedPages:      reg.Counter("storage_wal_replayed_pages_total"),
		walReplayedBatches:    reg.Counter("storage_wal_replayed_batches_total"),
	}
}

func (m *Metrics) noteRead(bytes int) {
	if m == nil {
		return
	}
	m.reads.Inc()
	m.readBytes.Add(uint64(bytes))
}

func (m *Metrics) noteWrite(bytes int) {
	if m == nil {
		return
	}
	m.writes.Inc()
	m.writeBytes.Add(uint64(bytes))
}

func (m *Metrics) noteFsync() {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
}

func (m *Metrics) noteRetry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

func (m *Metrics) noteRecovery() {
	if m == nil {
		return
	}
	m.recoveries.Inc()
}

func (m *Metrics) noteGiveup() {
	if m == nil {
		return
	}
	m.giveups.Inc()
}

func (m *Metrics) noteWALRecord() {
	if m == nil {
		return
	}
	m.walRecords.Inc()
}

func (m *Metrics) noteWALCommit() {
	if m == nil {
		return
	}
	m.walCommits.Inc()
}

func (m *Metrics) noteWALCheckpoint() {
	if m == nil {
		return
	}
	m.walCheckpoints.Inc()
}

func (m *Metrics) noteWALCheckpointFailure() {
	if m == nil {
		return
	}
	m.walCheckpointFailures.Inc()
}

func (m *Metrics) noteWALReplayedPage() {
	if m == nil {
		return
	}
	m.walReplayedPages.Inc()
}

func (m *Metrics) noteWALReplayedBatch() {
	if m == nil {
		return
	}
	m.walReplayedBatches.Inc()
}

// Record mirrors a scrub pass into the metrics: pages scanned and faults
// found. Call it once per Scrub; nil-safe.
func (r ScrubReport) Record(m *Metrics) {
	if m == nil {
		return
	}
	m.scrubPages.Add(uint64(r.Pages))
	m.scrubFaults.Add(uint64(len(r.Faults)))
	if r.MetaErr != nil {
		m.scrubFaults.Inc()
	}
}

// SetManagerMetrics attaches m to dm and, for the wrapping managers
// (resilient, fault), descends into the wrapped manager too, so one call
// instruments a whole stack. Managers of unknown type are skipped.
func SetManagerMetrics(dm DiskManager, m *Metrics) {
	for dm != nil {
		switch v := dm.(type) {
		case *MemoryManager:
			v.metrics = m
			return
		case *FileManager:
			v.metrics = m
			return
		case *ResilientManager:
			v.metrics = m
			dm = v.inner
		case *FaultManager:
			v.metrics = m
			dm = v.inner
		default:
			return
		}
	}
}
