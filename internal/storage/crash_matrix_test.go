package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/rtree"
)

// The crash matrix is the exhaustive form of the update path's promise:
// interrupt one update at EVERY write index, on EACH device (page file
// and log), under each fault kind (clean fail-stop crash; torn write
// that persists half a page and then crashes), reopen, recover, and the
// tree is EXACTLY the pre-batch or exactly the post-batch tree — never
// a hybrid, never invalid. Every cell also re-validates full structural
// invariants and a clean scrub.
//
// Write sequences are deterministic for a fixed seed, so a rehearsal
// run (no faults) measures each device's write count during the target
// operation and the matrix enumerates 1..count.

const crashBufferPages = 16

// buildCrashSeed deterministically constructs the pre-state every
// matrix cell starts from: a saved tree plus an unfaulted prefix of
// updates, so the target operation runs against a v2-layout tree with
// a WAL history and a non-trivial free list.
func buildCrashSeed(t *testing.T) (*MemoryManager, *MemoryManager, []rtree.Item) {
	t.Helper()
	rng := rand.New(rand.NewSource(97))
	seed := randomItems(rng, 48, 0)

	oracle, err := rtree.New(updateTestParams())
	if err != nil {
		t.Fatal(err)
	}
	oracle.InsertAll(seed)
	dm, err := NewMemoryManager(updateTestPageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTree(dm, oracle); err != nil {
		t.Fatal(err)
	}
	walDev, err := NewMemoryManager(updateTestPageSize + WALFrameOverhead)
	if err != nil {
		t.Fatal(err)
	}

	pt, _, err := OpenPagedTreeWAL(dm, walDev, crashBufferPages)
	if err != nil {
		t.Fatal(err)
	}
	live := append([]rtree.Item(nil), seed...)
	extra := randomItems(rng, 8, 500)
	for _, it := range extra {
		if err := pt.Insert(it); err != nil {
			t.Fatal(err)
		}
		live = append(live, it)
	}
	for _, it := range seed[:6] { // deletions populate the free list
		if _, err := pt.Delete(it); err != nil {
			t.Fatal(err)
		}
	}
	return dm, walDev, live[6:]
}

func allStoredItems(t *testing.T, pt *PagedTree, tag string) []rtree.Item {
	t.Helper()
	out, err := pt.SearchWindow(geom.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9})
	if err != nil {
		t.Fatalf("%s: full-window query: %v", tag, err)
	}
	return sortedItems(out)
}

func sameItems(a, b []rtree.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || !a[i].Rect.Equal(b[i].Rect) {
			return false
		}
	}
	return true
}

// crashTarget is one update burst the matrix interrupts. op returns how
// many of its operations completed successfully: each operation is one
// WAL batch, so the atomicity unit — and thus the legal recovery points
// — are the per-operation boundaries.
type crashTarget struct {
	name string
	op   func(pt *PagedTree) (succeeded int, err error)
}

func crashTargets(live []rtree.Item) []crashTarget {
	// A burst of inserts into one region forces leaf and internal
	// splits; deleting clustered items forces condense with orphan
	// reinsertion. Both produce multi-page batches, so the matrix has
	// interior write indices to land on.
	burst := make([]rtree.Item, 6)
	for i := range burst {
		x := 20.0 + float64(i)*0.3
		burst[i] = rtree.Item{Rect: geom.Rect{MinX: x, MinY: 20, MaxX: x + 0.2, MaxY: 20.2}, ID: 9000 + int64(i)}
	}
	return []crashTarget{
		{name: "insert-split", op: func(pt *PagedTree) (int, error) {
			for i, it := range burst {
				if err := pt.Insert(it); err != nil {
					return i, err
				}
			}
			return len(burst), nil
		}},
		{name: "delete-condense", op: func(pt *PagedTree) (int, error) {
			for i, it := range live[:5] {
				if _, err := pt.Delete(it); err != nil {
					return i, err
				}
			}
			return 5, nil
		}},
	}
}

// rehearse runs the target unfaulted and reports the item set at every
// operation boundary (snapshots[i] = state after i operations) plus
// each device's write count across the whole burst.
func rehearse(t *testing.T, target crashTarget) (snapshots [][]rtree.Item, pageWrites, walWrites int) {
	t.Helper()
	dm, walDev, live := buildCrashSeed(t)
	fdm := NewFaultManager(dm, 1)
	fwal := NewFaultManager(walDev, 1)
	pt, _, err := OpenPagedTreeWAL(fdm, fwal, crashBufferPages)
	if err != nil {
		t.Fatal(err)
	}
	snapshots = append(snapshots, allStoredItems(t, pt, "rehearsal pre"))
	w0p, w0w := fdm.Writes(), fwal.Writes()

	// Re-run the burst one operation at a time so each boundary can be
	// snapshotted; singleOps mirrors target.op's sequence exactly.
	for _, single := range singleOps(target, live) {
		if err := single(pt); err != nil {
			t.Fatalf("rehearsal of %s failed: %v", target.name, err)
		}
		snapshots = append(snapshots, allStoredItems(t, pt, "rehearsal boundary"))
	}
	pageWrites = int(fdm.Writes() - w0p)
	walWrites = int(fwal.Writes() - w0w)
	if pageWrites < 2 || walWrites < 3 {
		t.Fatalf("%s writes too few pages to be an interesting target (page %d, wal %d)",
			target.name, pageWrites, walWrites)
	}
	for i := 1; i < len(snapshots); i++ {
		if sameItems(snapshots[i-1], snapshots[i]) {
			t.Fatalf("%s: operation %d is a no-op; boundaries would be ambiguous", target.name, i)
		}
	}
	return snapshots, pageWrites, walWrites
}

// singleOps decomposes a target into its per-operation steps (same
// items, same order as target.op).
func singleOps(target crashTarget, live []rtree.Item) []func(*PagedTree) error {
	var steps []func(*PagedTree) error
	if target.name == "insert-split" {
		for i := 0; i < 6; i++ {
			x := 20.0 + float64(i)*0.3
			it := rtree.Item{Rect: geom.Rect{MinX: x, MinY: 20, MaxX: x + 0.2, MaxY: 20.2}, ID: 9000 + int64(i)}
			steps = append(steps, func(pt *PagedTree) error { return pt.Insert(it) })
		}
		return steps
	}
	for _, it := range live[:5] {
		it := it
		steps = append(steps, func(pt *PagedTree) error { _, err := pt.Delete(it); return err })
	}
	return steps
}

func TestCrashMatrix(t *testing.T) {
	_, _, live := buildCrashSeed(t)
	for _, target := range crashTargets(live) {
		target := target
		t.Run(target.name, func(t *testing.T) {
			snapshots, pageWrites, walWrites := rehearse(t, target)

			type dim struct {
				device string
				writes int
			}
			dims := []dim{{"page", pageWrites}, {"wal", walWrites}}
			kinds := []string{"crash", "torn"}

			for _, d := range dims {
				rolledBack, committed := 0, 0
				for _, kind := range kinds {
					for k := 1; k <= d.writes; k++ {
						if runCrashCell(t, target, d.device, kind, k, snapshots) {
							committed++
						} else {
							rolledBack++
						}
					}
				}
				// The matrix must actually straddle the commit point.
				// Page-device faults all land after the WAL commit, so
				// the interrupted batch always survives; the WAL
				// dimension must see both outcomes.
				if d.device == "page" && rolledBack != 0 {
					t.Fatalf("page-device faults rolled back %d committed batches; "+
						"a fault after the WAL commit must never roll back", rolledBack)
				}
				if d.device == "wal" && (rolledBack == 0 || committed == 0) {
					t.Fatalf("wal-device matrix saw %d rollbacks, %d commits; commit point not straddled",
						rolledBack, committed)
				}
			}
		})
	}
}

// runCrashCell executes one matrix cell: rebuild the pre-state, run the
// target with a fault armed at the k-th write of the chosen device,
// reopen with recovery, and require the recovered tree to sit EXACTLY
// on an operation boundary — never between two batches, never a blend
// of one. With s operations succeeded before the fault, the only legal
// states are snapshots[s] (interrupted batch rolled back) and
// snapshots[s+1] (interrupted batch committed and replayed). Reports
// whether the interrupted batch survived.
func runCrashCell(t *testing.T, target crashTarget, device, kind string, k int, snapshots [][]rtree.Item) bool {
	t.Helper()
	tag := fmt.Sprintf("%s/%s/%s/write-%d", target.name, device, kind, k)

	dm, walDev, _ := buildCrashSeed(t)
	fdm := NewFaultManager(dm, 1)
	fwal := NewFaultManager(walDev, 1)
	pt, _, err := OpenPagedTreeWAL(fdm, fwal, crashBufferPages)
	if err != nil {
		t.Fatalf("%s: open: %v", tag, err)
	}

	victim := fdm
	if device == "wal" {
		victim = fwal
	}
	base := int(victim.Writes())
	switch kind {
	case "crash":
		victim.CrashAfterWrites(base + k - 1) // writes 1..k-1 of the op land, the k-th fails
	case "torn":
		// The k-th write persists half its page (WriteMeta is immune to
		// tearing — metadata blobs are CRC-framed — so a torn plan on a
		// meta write degenerates to a crash one write later).
		victim.TornWrite(base+k, victim.PageSize()/2)
		victim.CrashAfterWrites(base + k)
	}

	succeeded, opErr := target.op(pt)
	if opErr == nil {
		if victim.Crashed() {
			// The crash fired in the checkpoint stage of the burst's last
			// operation, after its batch was durably committed and fully
			// applied. That is not an operation failure — returning one
			// would invite a duplicating retry — so the op reports
			// success and the handle carries the warning out of band.
			if pt.CheckpointErr() == nil {
				t.Fatalf("%s: crash fired post-commit but no checkpoint warning recorded", tag)
			}
			if pt.UpdateErr() != nil {
				t.Fatalf("%s: checkpoint-stage crash poisoned the handle: %v", tag, pt.UpdateErr())
			}
		}
		// Either way the burst completed whole (a torn plan aimed at a
		// meta write tears nothing, and a checkpoint-stage crash lands
		// after the last commit): treat the last op as "interrupted" —
		// the boundary check below then requires it committed.
		succeeded = len(snapshots) - 2
	}

	// Reopen the surviving raw devices — the crash discarded the
	// process, not the media — and let recovery run.
	pt2, rep, err := OpenPagedTreeWAL(dm, walDev, crashBufferPages)
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v (report: %s)", tag, err, rep.String())
	}

	got := allStoredItems(t, pt2, tag)
	var committed bool
	switch {
	case sameItems(got, snapshots[succeeded+1]):
		committed = true
	case sameItems(got, snapshots[succeeded]):
		committed = false
	default:
		t.Fatalf("%s: recovered tree (%d items) is not an operation boundary "+
			"(%d ops succeeded: legal states hold %d or %d items)",
			tag, len(got), succeeded, len(snapshots[succeeded]), len(snapshots[succeeded+1]))
	}
	if opErr == nil && !committed {
		t.Fatalf("%s: burst reported success but its last batch rolled back", tag)
	}
	if device == "page" && !committed {
		t.Fatalf("%s: page-device fault rolled back a committed batch", tag)
	}

	// Beyond the right answer: full structural validity and clean scrub.
	loaded, err := LoadTree(dm)
	if err != nil {
		t.Fatalf("%s: loading recovered tree: %v", tag, err)
	}
	if err := rtree.ValidateTreeStrict(loaded); err != nil {
		t.Fatalf("%s: recovered tree invalid: %v", tag, err)
	}
	if srep := Scrub(dm); !srep.Clean() {
		t.Fatalf("%s: scrub after recovery: %s", tag, srep.String())
	}

	// The recovered handle must accept further updates: recovery leaves
	// no half-open state behind.
	probe := rtree.Item{Rect: geom.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, ID: 777777}
	if err := pt2.Insert(probe); err != nil {
		t.Fatalf("%s: insert after recovery: %v", tag, err)
	}
	if _, err := pt2.Delete(probe); err != nil {
		t.Fatalf("%s: delete after recovery: %v", tag, err)
	}
	return committed
}

// TestCrashMidWriteBackDegradedSearch is the S3 scenario: a crash lands
// mid write-back, and an operator opens the damaged file READ-ONLY —
// without running recovery — to salvage what is reachable. Degraded
// search must answer from healthy pages and the CorruptionReport must
// name the un-recovered pages, so the operator knows the file needs
// `rtreefsck -recover` rather than a restore.
func TestCrashMidWriteBackDegradedSearch(t *testing.T) {
	for k := 1; ; k++ {
		dm, walDev, _ := buildCrashSeed(t)
		fdm := NewFaultManager(dm, 1)
		pt, _, err := OpenPagedTreeWAL(fdm, walDev, crashBufferPages)
		if err != nil {
			t.Fatal(err)
		}
		targets := crashTargets(nil)
		base := int(fdm.Writes())
		fdm.CrashAfterWrites(base + k) // let k page writes land, crash on the next
		_, opErr := targets[0].op(pt)  // insert-split burst
		if opErr == nil {
			t.Fatalf("burst survived every page-device crash point up to write %d", k)
		}
		if !fdm.Crashed() {
			// The op failed before write k+1 for another reason (it
			// can't — but keep the loop honest).
			t.Fatalf("write %d: op failed without the crash firing: %v", k, opErr)
		}

		// Open the damaged file read-only, no recovery.
		ro, err := OpenPagedTree(dm, crashBufferPages)
		if err != nil {
			// The surviving catalog may be the pre-batch one whose span
			// the damaged file still satisfies; OpenPagedTree only reads
			// the catalog, so this should not fail.
			t.Fatalf("write %d: read-only open of damaged file: %v", k, err)
		}
		got, rep := ro.SearchWindowDegraded(geom.Rect{MinX: -1e9, MinY: -1e9, MaxX: 1e9, MaxY: 1e9})
		if rep.Degraded() {
			// The damage is visible: the report names the pages a
			// recovery would repair. Check they really are repaired.
			for _, f := range rep.Faults {
				if f.Err == nil {
					t.Fatalf("write %d: fault on page %d carries no error", k, f.Page)
				}
			}
			damaged := len(got)
			pt2, rrep, err := OpenPagedTreeWAL(dm, walDev, crashBufferPages)
			if err != nil {
				t.Fatalf("write %d: recovery after degraded read: %v", k, err)
			}
			if !rrep.NeededRecovery() {
				t.Fatalf("write %d: degraded file claims it needed no recovery", k)
			}
			full := allStoredItems(t, pt2, "post-recovery")
			if len(full) < damaged {
				t.Fatalf("write %d: recovery lost items (%d < %d)", k, len(full), damaged)
			}
			rep2 := Scrub(dm)
			if !rep2.Clean() {
				t.Fatalf("write %d: scrub after recovery: %s", k, rep2.String())
			}
			return // found and verified the degraded window
		}
		// No visible damage at this crash index (e.g. only the catalog
		// write was lost): advance the crash point and try again.
		if k > 64 {
			t.Fatal("no crash index produced a degraded-visible tree")
		}
	}
}
