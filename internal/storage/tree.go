package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"rtreebuf/internal/buffer"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/rtree"
)

// TreeMeta is the catalog entry of a persisted R-tree.
type TreeMeta struct {
	MaxEntries int
	MinEntries int
	Split      rtree.SplitAlgorithm
	Items      int   // number of data rectangles
	Levels     []int // nodes per level, root first (pages of level i are contiguous)
}

// NumPages returns the total node pages.
func (m TreeMeta) NumPages() int {
	n := 0
	for _, c := range m.Levels {
		n += c
	}
	return n
}

// LevelPageRange returns the half-open page range [lo,hi) of the given
// level: page numbering is level order, so each level is contiguous.
func (m TreeMeta) LevelPageRange(level int) (lo, hi int) {
	for i := 0; i < level; i++ {
		lo += m.Levels[i]
	}
	return lo, lo + m.Levels[level]
}

const metaMagic = uint32(0x52545231) // "RTR1"

func encodeMeta(m TreeMeta) []byte {
	buf := make([]byte, 0, 32+8*len(m.Levels))
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	put32(metaMagic)
	put32(uint32(m.MaxEntries))
	put32(uint32(m.MinEntries))
	put32(uint32(m.Split))
	put64(uint64(m.Items))
	put32(uint32(len(m.Levels)))
	for _, c := range m.Levels {
		put32(uint32(c))
	}
	return buf
}

func decodeMeta(buf []byte) (TreeMeta, error) {
	var m TreeMeta
	if len(buf) < 28 {
		return m, fmt.Errorf("storage: tree metadata truncated (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != metaMagic {
		return m, fmt.Errorf("storage: bad tree metadata magic")
	}
	m.MaxEntries = int(binary.LittleEndian.Uint32(buf[4:8]))
	m.MinEntries = int(binary.LittleEndian.Uint32(buf[8:12]))
	m.Split = rtree.SplitAlgorithm(binary.LittleEndian.Uint32(buf[12:16]))
	m.Items = int(binary.LittleEndian.Uint64(buf[16:24]))
	n := int(binary.LittleEndian.Uint32(buf[24:28]))
	if len(buf) < 28+4*n {
		return m, fmt.Errorf("storage: tree metadata truncated (levels)")
	}
	m.Levels = make([]int, n)
	for i := 0; i < n; i++ {
		m.Levels[i] = int(binary.LittleEndian.Uint32(buf[28+4*i:]))
	}
	return m, nil
}

// SaveTree writes every node of t to dm in level order (root = page 0)
// and records the catalog in the manager's metadata.
func SaveTree(dm DiskManager, t *rtree.Tree) error {
	if cap := NodeCapacity(dm.PageSize()); t.Params().MaxEntries > cap {
		return fmt.Errorf("storage: node capacity %d exceeds page capacity %d (page size %d)",
			t.Params().MaxEntries, cap, dm.PageSize())
	}
	nodes := t.ExportNodes()
	for _, nd := range nodes {
		page, err := EncodeNode(nd, dm.PageSize())
		if err != nil {
			return err
		}
		if err := dm.WritePage(nd.Page, page); err != nil {
			return err
		}
	}
	meta := TreeMeta{
		MaxEntries: t.Params().MaxEntries,
		MinEntries: t.Params().MinEntries,
		Split:      t.Params().Split,
		Items:      t.Len(),
		Levels:     t.NodesPerLevel(),
	}
	return dm.WriteMeta(encodeMeta(meta))
}

// SaveTreeAtomic persists t to path with all-or-nothing semantics: the
// tree is written to a temporary file in the same directory, synced,
// and renamed over path only once every byte is durable. A crash at any
// point leaves either the complete old file or the complete new one —
// never a torn mix — which SaveTree over an existing file cannot
// promise (it overwrites pages in place).
func SaveTreeAtomic(path string, pageSize int, t *rtree.Tree) error {
	return SaveTreeAtomicWith(path, pageSize, t, nil)
}

// SaveTreeAtomicWith is SaveTreeAtomic with an injectable wrapper around
// the temporary file's manager — the hook the fault harness uses to
// interrupt the save at any chosen write. wrap may be nil.
func SaveTreeAtomicWith(path string, pageSize int, t *rtree.Tree, wrap func(DiskManager) DiskManager) error {
	dir := filepath.Dir(path)
	tmpf, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: creating temp file for atomic save: %w", err)
	}
	tmp := tmpf.Name()
	if err := tmpf.Close(); err != nil {
		_ = os.Remove(tmp) // the close failure is the one worth reporting
		return fmt.Errorf("storage: closing temp file %s: %w", tmp, err)
	}
	fm, err := CreateFile(tmp, pageSize)
	if err != nil {
		_ = os.Remove(tmp) // the create failure is the one worth reporting
		return err
	}
	var dm DiskManager = fm
	if wrap != nil {
		dm = wrap(fm)
	}
	if err := SaveTree(dm, t); err != nil {
		// Release the real file even if the wrapper is fail-stop, then
		// drop the partial temp so a failed save leaves no debris.
		_ = fm.f.Close() // the save failure is the one worth reporting
		_ = os.Remove(tmp)
		return err
	}
	if err := fm.Close(); err != nil { // flushes the header, then syncs
		_ = os.Remove(tmp) // the close failure is the one worth reporting
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp) // the rename failure is the one worth reporting
		return fmt.Errorf("storage: atomic rename to %s: %w", path, err)
	}
	// Sync the directory so the rename itself survives a crash.
	// Best-effort: some platforms cannot sync directories.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadTree reads a persisted tree fully into memory, validating its
// structure. Use OpenPagedTree instead to query on-disk pages through a
// buffer pool.
func LoadTree(dm DiskManager) (*rtree.Tree, error) {
	metaBuf, err := dm.ReadMeta()
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(metaBuf)
	if err != nil {
		return nil, err
	}
	n := meta.NumPages()
	nodes := make([]rtree.NodeData, n)
	buf := make([]byte, dm.PageSize())
	for page := 0; page < n; page++ {
		if err := dm.ReadPage(page, buf); err != nil {
			return nil, err
		}
		nodes[page], err = DecodeNode(buf, page)
		if err != nil {
			return nil, err
		}
	}
	return rtree.ImportNodes(rtree.Params{
		MaxEntries: meta.MaxEntries,
		MinEntries: meta.MinEntries,
		Split:      meta.Split,
	}, nodes)
}

// PagedTree executes R-tree queries directly against stored pages through
// an LRU buffer pool: every pool miss is one counted disk access. It is
// the end-to-end realization of the system the paper models — compare its
// measured misses per query with core.Predictor.DiskAccesses.
type PagedTree struct {
	dm   DiskManager
	pool *buffer.Pool
	meta TreeMeta
}

// dmSource adapts DiskManager to buffer.PageSource.
type dmSource struct{ dm DiskManager }

func (s dmSource) PageSize() int                       { return s.dm.PageSize() }
func (s dmSource) ReadPage(page int, dst []byte) error { return s.dm.ReadPage(page, dst) }

// OpenPagedTree opens a persisted tree for buffered querying with the
// given buffer capacity in pages.
func OpenPagedTree(dm DiskManager, bufferPages int) (*PagedTree, error) {
	metaBuf, err := dm.ReadMeta()
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(metaBuf)
	if err != nil {
		return nil, err
	}
	if meta.NumPages() == 0 {
		return nil, fmt.Errorf("storage: persisted tree has no pages")
	}
	return &PagedTree{
		dm:   dm,
		pool: buffer.NewPool(dmSource{dm}, bufferPages, meta.NumPages()),
		meta: meta,
	}, nil
}

// Meta returns the tree catalog.
func (pt *PagedTree) Meta() TreeMeta { return pt.meta }

// Pool exposes the underlying buffer pool (for statistics and pinning).
func (pt *PagedTree) Pool() *buffer.Pool { return pt.pool }

// PinLevels pins the top n levels of the tree in the buffer, the policy
// studied in Section 5.5. Level pages are contiguous, so this pins pages
// [0, pages(level<n)).
func (pt *PagedTree) PinLevels(n int) error {
	if n < 0 || n > len(pt.meta.Levels) {
		return fmt.Errorf("storage: pin %d levels of a %d-level tree", n, len(pt.meta.Levels))
	}
	for level := 0; level < n; level++ {
		lo, hi := pt.meta.LevelPageRange(level)
		for page := lo; page < hi; page++ {
			if err := pt.pool.Pin(page); err != nil {
				return fmt.Errorf("storage: pinning level %d: %w", level, err)
			}
		}
	}
	return nil
}

// SearchWindow reports every stored item intersecting q, reading node
// pages through the buffer pool in DFS order (the order a real R-tree
// search issues page requests).
func (pt *PagedTree) SearchWindow(q geom.Rect) ([]rtree.Item, error) {
	var out []rtree.Item
	err := pt.search(0, q, &out)
	return out, err
}

// SearchPoint is SearchWindow for a degenerate point query.
func (pt *PagedTree) SearchPoint(p geom.Point) ([]rtree.Item, error) {
	return pt.SearchWindow(geom.PointRect(p))
}

// CorruptionReport lists the pages a degraded search had to skip, with
// the error each one failed on. An empty report means the query saw
// only healthy pages and its result is complete.
type CorruptionReport struct {
	Faults []PageFault
}

// Degraded reports whether any subtree was skipped (the result set may
// be missing items stored under the damaged pages).
func (r *CorruptionReport) Degraded() bool { return len(r.Faults) > 0 }

// SearchWindowDegraded is SearchWindow in graceful-degradation mode:
// instead of failing the whole query on the first unreadable or corrupt
// page, it skips that subtree, keeps answering from healthy pages, and
// records the damage in the returned report. The result is a complete
// answer when the report is clean and a best-effort lower bound when it
// is not — the opt-in behaviour for serving reads off a partially
// damaged file while a repair (Scrub + re-save) is scheduled.
func (pt *PagedTree) SearchWindowDegraded(q geom.Rect) ([]rtree.Item, *CorruptionReport) {
	var out []rtree.Item
	rep := &CorruptionReport{}
	pt.searchDegraded(0, q, &out, rep)
	return out, rep
}

// SearchPointDegraded is SearchWindowDegraded for a point query.
func (pt *PagedTree) SearchPointDegraded(p geom.Point) ([]rtree.Item, *CorruptionReport) {
	return pt.SearchWindowDegraded(geom.PointRect(p))
}

func (pt *PagedTree) searchDegraded(page int, q geom.Rect, out *[]rtree.Item, rep *CorruptionReport) {
	frame, err := pt.pool.Get(page)
	if err != nil {
		rep.Faults = append(rep.Faults, PageFault{Page: page, Err: err})
		return
	}
	nd, err := DecodeNode(frame, page)
	if err != nil {
		rep.Faults = append(rep.Faults, PageFault{Page: page, Err: err})
		return
	}
	for i, r := range nd.Rects {
		if !r.Intersects(q) {
			continue
		}
		if nd.Leaf {
			*out = append(*out, rtree.Item{Rect: r, ID: nd.IDs[i]})
		} else {
			pt.searchDegraded(nd.Children[i], q, out, rep)
		}
	}
}

// Nearest returns the k stored items closest to p (Euclidean distance to
// the rectangle), reading node pages through the buffer pool in best-first
// order — the Hjaltason–Samet algorithm over paged storage. Each pool
// miss is one counted disk access, so kNN workloads can be priced the
// same way window queries are.
func (pt *PagedTree) Nearest(p geom.Point, k int) ([]rtree.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	type queued struct {
		distSq float64
		page   int // valid when item is false
		isItem bool
		item   rtree.Item
	}
	// A slice-backed binary heap keyed on distSq.
	var h []queued
	push := func(e queued) {
		h = append(h, e)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if h[parent].distSq <= h[i].distSq {
				break
			}
			h[parent], h[i] = h[i], h[parent]
			i = parent
		}
	}
	pop := func() queued {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(h) && h[l].distSq < h[smallest].distSq {
				smallest = l
			}
			if r < len(h) && h[r].distSq < h[smallest].distSq {
				smallest = r
			}
			if smallest == i {
				break
			}
			h[i], h[smallest] = h[smallest], h[i]
			i = smallest
		}
		return top
	}

	push(queued{page: 0})
	var out []rtree.Neighbor
	for len(h) > 0 && len(out) < k {
		e := pop()
		if e.isItem {
			out = append(out, rtree.Neighbor{Item: e.item, Dist: math.Sqrt(e.distSq)})
			continue
		}
		frame, err := pt.pool.Get(e.page)
		if err != nil {
			return nil, err
		}
		nd, err := DecodeNode(frame, e.page)
		if err != nil {
			return nil, err
		}
		for i, r := range nd.Rects {
			d := minDistSq(p, r)
			if nd.Leaf {
				push(queued{distSq: d, isItem: true, item: rtree.Item{Rect: r, ID: nd.IDs[i]}})
			} else {
				push(queued{distSq: d, page: nd.Children[i]})
			}
		}
	}
	return out, nil
}

// minDistSq returns the squared minimum Euclidean distance from p to r
// (zero when p is inside r).
func minDistSq(p geom.Point, r geom.Rect) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return dx*dx + dy*dy
}

// ScanLeaves visits every stored item by reading the leaf pages
// sequentially through the buffer pool — the sequential-scan access path
// a query optimizer weighs against the index (examples/optimizer). The
// leaf level is the last contiguous page range, so this is one linear
// pass of meta.Levels[last] page reads.
func (pt *PagedTree) ScanLeaves(visit func(rtree.Item) error) error {
	lo, hi := pt.meta.LevelPageRange(len(pt.meta.Levels) - 1)
	for page := lo; page < hi; page++ {
		frame, err := pt.pool.Get(page)
		if err != nil {
			return err
		}
		nd, err := DecodeNode(frame, page)
		if err != nil {
			return err
		}
		if !nd.Leaf {
			return fmt.Errorf("storage: page %d in leaf range is not a leaf", page)
		}
		for i, r := range nd.Rects {
			if err := visit(rtree.Item{Rect: r, ID: nd.IDs[i]}); err != nil {
				return err
			}
		}
	}
	return nil
}

func (pt *PagedTree) search(page int, q geom.Rect, out *[]rtree.Item) error {
	frame, err := pt.pool.Get(page)
	if err != nil {
		return err
	}
	nd, err := DecodeNode(frame, page)
	if err != nil {
		return err
	}
	for i, r := range nd.Rects {
		if !r.Intersects(q) {
			continue
		}
		if nd.Leaf {
			*out = append(*out, rtree.Item{Rect: r, ID: nd.IDs[i]})
		} else if err := pt.search(nd.Children[i], q, out); err != nil {
			return err
		}
	}
	return nil
}
