package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"rtreebuf/internal/buffer"
	"rtreebuf/internal/geom"
	"rtreebuf/internal/obs"
	"rtreebuf/internal/rtree"
)

// TreeMeta is the catalog entry of a persisted R-tree.
type TreeMeta struct {
	MaxEntries int
	MinEntries int
	Split      rtree.SplitAlgorithm
	Items      int   // number of data rectangles
	Levels     []int // nodes per level, root first

	// LevelOrder reports whether pages are numbered in level order
	// (pages of level i contiguous, the layout SaveTree produces).
	// In-place updates break this layout: a split allocates its new
	// page at the end of the file (or from the free list), wherever
	// that lands. Once false, LevelPageRange is meaningless and
	// readers must walk from the root instead of scanning ranges.
	LevelOrder bool

	// TotalPages is the page span of the file, live and free pages
	// together. Equal to NumPages() while LevelOrder holds.
	TotalPages int

	// Free lists pages released by node merges and root shrinks,
	// available for reuse by later splits. Free pages hold stale
	// bytes; no reader may visit them.
	Free []int
}

// NumPages returns the number of live node pages.
func (m TreeMeta) NumPages() int {
	n := 0
	for _, c := range m.Levels {
		n += c
	}
	return n
}

// PageSpan returns the page-number space of the file — the bound for
// buffer sizing and page iteration. For level-order trees it equals
// NumPages(); for updated trees it includes free pages.
func (m TreeMeta) PageSpan() int {
	if m.TotalPages > m.NumPages() {
		return m.TotalPages
	}
	return m.NumPages()
}

// LevelPageRange returns the half-open page range [lo,hi) of the given
// level: page numbering is level order, so each level is contiguous.
func (m TreeMeta) LevelPageRange(level int) (lo, hi int) {
	for i := 0; i < level; i++ {
		lo += m.Levels[i]
	}
	return lo, lo + m.Levels[level]
}

const (
	metaMagic   = uint32(0x52545231) // "RTR1": level-order layout
	metaMagicV2 = uint32(0x52545232) // "RTR2": adds flags, page span, free list
)

const metaFlagLevelOrder = uint32(1 << 0)

func encodeMeta(m TreeMeta) []byte {
	buf := make([]byte, 0, 32+8*len(m.Levels))
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	put32(metaMagic)
	put32(uint32(m.MaxEntries))
	put32(uint32(m.MinEntries))
	put32(uint32(m.Split))
	put64(uint64(m.Items))
	put32(uint32(len(m.Levels)))
	for _, c := range m.Levels {
		put32(uint32(c))
	}
	return buf
}

// encodeMetaV2 serializes the full catalog, including the layout flag,
// page span, and free list the update path maintains. SaveTree keeps
// writing v1 (its output is always level-order, and v1 files stay
// readable by older tooling); the updater switches a tree to v2 on its
// first committed batch.
func encodeMetaV2(m TreeMeta) []byte {
	buf := make([]byte, 0, 40+4*len(m.Levels)+4*len(m.Free))
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	put32(metaMagicV2)
	put32(uint32(m.MaxEntries))
	put32(uint32(m.MinEntries))
	put32(uint32(m.Split))
	put64(uint64(m.Items))
	var flags uint32
	if m.LevelOrder {
		flags |= metaFlagLevelOrder
	}
	put32(flags)
	put32(uint32(m.PageSpan()))
	put32(uint32(len(m.Levels)))
	put32(uint32(len(m.Free)))
	for _, c := range m.Levels {
		put32(uint32(c))
	}
	for _, p := range m.Free {
		put32(uint32(p))
	}
	return buf
}

func decodeMeta(buf []byte) (TreeMeta, error) {
	var m TreeMeta
	if len(buf) < 28 {
		return m, fmt.Errorf("storage: tree metadata truncated (%d bytes)", len(buf))
	}
	magic := binary.LittleEndian.Uint32(buf[0:4])
	if magic != metaMagic && magic != metaMagicV2 {
		return m, fmt.Errorf("storage: bad tree metadata magic")
	}
	m.MaxEntries = int(binary.LittleEndian.Uint32(buf[4:8]))
	m.MinEntries = int(binary.LittleEndian.Uint32(buf[8:12]))
	m.Split = rtree.SplitAlgorithm(binary.LittleEndian.Uint32(buf[12:16]))
	m.Items = int(binary.LittleEndian.Uint64(buf[16:24]))

	if magic == metaMagic {
		n := int(binary.LittleEndian.Uint32(buf[24:28]))
		if n < 0 || len(buf) < 28+4*n {
			return m, fmt.Errorf("storage: tree metadata truncated (levels)")
		}
		m.Levels = make([]int, n)
		for i := 0; i < n; i++ {
			m.Levels[i] = int(binary.LittleEndian.Uint32(buf[28+4*i:]))
		}
		m.LevelOrder = true
		m.TotalPages = m.NumPages()
		return m, nil
	}

	if len(buf) < 40 {
		return m, fmt.Errorf("storage: tree metadata truncated (%d bytes)", len(buf))
	}
	flags := binary.LittleEndian.Uint32(buf[24:28])
	m.LevelOrder = flags&metaFlagLevelOrder != 0
	m.TotalPages = int(binary.LittleEndian.Uint32(buf[28:32]))
	nLevels := int(binary.LittleEndian.Uint32(buf[32:36]))
	nFree := int(binary.LittleEndian.Uint32(buf[36:40]))
	if nLevels < 0 || nFree < 0 || len(buf) < 40+4*nLevels+4*nFree {
		return m, fmt.Errorf("storage: tree metadata truncated (levels/free)")
	}
	m.Levels = make([]int, nLevels)
	for i := 0; i < nLevels; i++ {
		m.Levels[i] = int(binary.LittleEndian.Uint32(buf[40+4*i:]))
	}
	if nFree > 0 {
		m.Free = make([]int, nFree)
		for i := 0; i < nFree; i++ {
			m.Free[i] = int(binary.LittleEndian.Uint32(buf[40+4*nLevels+4*i:]))
		}
	}
	if m.TotalPages < m.NumPages() {
		return m, fmt.Errorf("storage: tree metadata inconsistent (%d total pages, %d live)",
			m.TotalPages, m.NumPages())
	}
	return m, nil
}

// SaveTree writes every node of t to dm in level order (root = page 0)
// and records the catalog in the manager's metadata.
func SaveTree(dm DiskManager, t *rtree.Tree) error {
	if cap := NodeCapacity(dm.PageSize()); t.Params().MaxEntries > cap {
		return fmt.Errorf("storage: node capacity %d exceeds page capacity %d (page size %d)",
			t.Params().MaxEntries, cap, dm.PageSize())
	}
	nodes := t.ExportNodes()
	for _, nd := range nodes {
		page, err := EncodeNode(nd, dm.PageSize())
		if err != nil {
			return err
		}
		if err := dm.WritePage(nd.Page, page); err != nil {
			return err
		}
	}
	meta := TreeMeta{
		MaxEntries: t.Params().MaxEntries,
		MinEntries: t.Params().MinEntries,
		Split:      t.Params().Split,
		Items:      t.Len(),
		Levels:     t.NodesPerLevel(),
	}
	return dm.WriteMeta(encodeMeta(meta))
}

// SaveTreeAtomic persists t to path with all-or-nothing semantics: the
// tree is written to a temporary file in the same directory, synced,
// and renamed over path only once every byte is durable. A crash at any
// point leaves either the complete old file or the complete new one —
// never a torn mix — which SaveTree over an existing file cannot
// promise (it overwrites pages in place).
func SaveTreeAtomic(path string, pageSize int, t *rtree.Tree) error {
	return SaveTreeAtomicWith(path, pageSize, t, nil)
}

// SaveTreeAtomicWith is SaveTreeAtomic with an injectable wrapper around
// the temporary file's manager — the hook the fault harness uses to
// interrupt the save at any chosen write. wrap may be nil.
func SaveTreeAtomicWith(path string, pageSize int, t *rtree.Tree, wrap func(DiskManager) DiskManager) error {
	dir := filepath.Dir(path)
	tmpf, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("storage: creating temp file for atomic save: %w", err)
	}
	tmp := tmpf.Name()
	if err := tmpf.Close(); err != nil {
		_ = os.Remove(tmp) // the close failure is the one worth reporting
		return fmt.Errorf("storage: closing temp file %s: %w", tmp, err)
	}
	fm, err := CreateFile(tmp, pageSize)
	if err != nil {
		_ = os.Remove(tmp) // the create failure is the one worth reporting
		return err
	}
	var dm DiskManager = fm
	if wrap != nil {
		dm = wrap(fm)
	}
	if err := SaveTree(dm, t); err != nil {
		// Release the real file even if the wrapper is fail-stop, then
		// drop the partial temp so a failed save leaves no debris.
		_ = fm.f.Close() // the save failure is the one worth reporting
		_ = os.Remove(tmp)
		return err
	}
	if err := fm.Close(); err != nil { // flushes the header, then syncs
		_ = os.Remove(tmp) // the close failure is the one worth reporting
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp) // the rename failure is the one worth reporting
		return fmt.Errorf("storage: atomic rename to %s: %w", path, err)
	}
	// Sync the directory so the rename itself survives a crash.
	// Best-effort: some platforms cannot sync directories.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// LoadTree reads a persisted tree fully into memory, validating its
// structure. Use OpenPagedTree instead to query on-disk pages through a
// buffer pool.
func LoadTree(dm DiskManager) (*rtree.Tree, error) {
	metaBuf, err := dm.ReadMeta()
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(metaBuf)
	if err != nil {
		return nil, err
	}
	nodes, err := readLiveNodes(dm, meta)
	if err != nil {
		return nil, err
	}
	return rtree.ImportNodes(rtree.Params{
		MaxEntries: meta.MaxEntries,
		MinEntries: meta.MinEntries,
		Split:      meta.Split,
	}, nodes)
}

// readLiveNodes reads every live node page. Level-order trees are read
// with one linear scan; updated trees are walked from the root, since
// their files interleave live and free pages and free pages hold stale
// bytes that must not be decoded.
func readLiveNodes(dm DiskManager, meta TreeMeta) ([]rtree.NodeData, error) {
	buf := make([]byte, dm.PageSize())
	if meta.LevelOrder {
		n := meta.NumPages()
		nodes := make([]rtree.NodeData, n)
		for page := 0; page < n; page++ {
			if err := dm.ReadPage(page, buf); err != nil {
				return nil, err
			}
			var err error
			nodes[page], err = DecodeNode(buf, page)
			if err != nil {
				return nil, err
			}
		}
		return nodes, nil
	}

	span := meta.PageSpan()
	nodes := make([]rtree.NodeData, 0, meta.NumPages())
	seen := make(map[int]bool, meta.NumPages())
	stack := []int{0}
	for len(stack) > 0 {
		page := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if page < 0 || page >= span {
			return nil, fmt.Errorf("storage: child page %d outside file span %d", page, span)
		}
		if seen[page] {
			return nil, fmt.Errorf("storage: page %d reachable twice (cycle or shared child)", page)
		}
		seen[page] = true
		if err := dm.ReadPage(page, buf); err != nil {
			return nil, err
		}
		nd, err := DecodeNode(buf, page)
		if err != nil {
			return nil, err
		}
		if !nd.Leaf {
			stack = append(stack, nd.Children...)
		}
		nodes = append(nodes, nd)
	}
	return nodes, nil
}

// PagedTree executes R-tree queries directly against stored pages through
// an LRU buffer pool: every pool miss is one counted disk access. It is
// the end-to-end realization of the system the paper models — compare its
// measured misses per query with core.Predictor.DiskAccesses.
type PagedTree struct {
	dm   DiskManager
	pool buffer.PagePool
	meta TreeMeta

	// fr, when attached, records per-query access attribution (nil — the
	// default — is the disabled recorder; the query paths call it
	// unconditionally with zero overhead).
	fr *obs.FlightRecorder

	// Update-path state, nil/zero on read-only trees (OpenPagedTree).
	wal       *WAL             // write-ahead log; non-nil enables Insert/Delete
	ckpt      CheckpointPolicy // when to truncate the log
	updateErr error            // sticky: a half-applied commit poisons the handle
	ckptErr   error            // sticky warning: last due checkpoint failed; the op still committed
}

// dmSource adapts DiskManager to buffer.PageSource.
type dmSource struct{ dm DiskManager }

func (s dmSource) PageSize() int                       { return s.dm.PageSize() }
func (s dmSource) ReadPage(page int, dst []byte) error { return s.dm.ReadPage(page, dst) }

// OpenPagedTree opens a persisted tree for buffered querying with the
// given buffer capacity in pages, using the single-lock LRU pool the
// paper models. OpenPagedTreeWith selects other policies or a sharded
// pool.
func OpenPagedTree(dm DiskManager, bufferPages int) (*PagedTree, error) {
	return OpenPagedTreeWith(dm, bufferPages, "", 1)
}

// OpenPagedTreeWith opens a persisted tree for buffered querying with a
// named replacement policy (see buffer.PolicyNames; "" means LRU) and a
// shard count. shards <= 1 selects the single-lock Pool; more shards
// select the lock-striped ShardedPool, whose hit path scales across
// concurrent readers at a hit-rate cost ext-policy shows to be within
// a few percent.
func OpenPagedTreeWith(dm DiskManager, bufferPages int, policy string, shards int) (*PagedTree, error) {
	factory, err := buffer.FactoryFor(policy)
	if err != nil {
		return nil, err
	}
	metaBuf, err := dm.ReadMeta()
	if err != nil {
		return nil, err
	}
	meta, err := decodeMeta(metaBuf)
	if err != nil {
		return nil, err
	}
	if meta.NumPages() == 0 {
		return nil, fmt.Errorf("storage: persisted tree has no pages")
	}
	var pool buffer.PagePool
	if shards > 1 {
		pool = buffer.NewShardedPoolWith(dmSource{dm}, bufferPages, meta.PageSpan(), shards, factory)
	} else {
		pool = buffer.NewPoolWith(dmSource{dm}, bufferPages, meta.PageSpan(), factory)
	}
	return &PagedTree{
		dm:   dm,
		pool: pool,
		meta: meta,
	}, nil
}

// Meta returns the tree catalog.
func (pt *PagedTree) Meta() TreeMeta { return pt.meta }

// Pool exposes the underlying buffer pool (for statistics and pinning).
func (pt *PagedTree) Pool() buffer.PagePool { return pt.pool }

// SetFlightRecorder attaches (or with nil detaches) the query-path
// flight recorder. Recording only observes the pool's per-access
// attribution — it never changes which pages a query reads or what it
// returns.
func (pt *PagedTree) SetFlightRecorder(fr *obs.FlightRecorder) { pt.fr = fr }

// PinLevels pins the top n levels of the tree in the buffer, the policy
// studied in Section 5.5. On a level-order tree level pages are
// contiguous, so this pins pages [0, pages(level<n)); on an updated
// tree it walks from the root to find them.
func (pt *PagedTree) PinLevels(n int) error {
	if n < 0 || n > len(pt.meta.Levels) {
		return fmt.Errorf("storage: pin %d levels of a %d-level tree", n, len(pt.meta.Levels))
	}
	if !pt.meta.LevelOrder {
		return pt.pinWalk(0, 0, n)
	}
	for level := 0; level < n; level++ {
		lo, hi := pt.meta.LevelPageRange(level)
		for page := lo; page < hi; page++ {
			if err := pt.pool.Pin(page); err != nil {
				return fmt.Errorf("storage: pinning level %d: %w", level, err)
			}
		}
	}
	return nil
}

// pinWalk pins page (at the given depth) and recurses into its children
// while depth+1 < n. Structure is read through the disk manager, not the
// pool, so the discovery reads do not perturb hit/miss accounting — only
// the Pin loads themselves touch the buffer, as in the level-order path.
func (pt *PagedTree) pinWalk(page, depth, n int) error {
	if err := pt.pool.Pin(page); err != nil {
		return fmt.Errorf("storage: pinning level %d: %w", depth, err)
	}
	if depth+1 >= n || depth == len(pt.meta.Levels)-1 {
		return nil
	}
	buf := make([]byte, pt.dm.PageSize())
	if err := pt.dm.ReadPage(page, buf); err != nil {
		return err
	}
	nd, err := DecodeNode(buf, page)
	if err != nil {
		return err
	}
	if nd.Leaf {
		return nil
	}
	for _, child := range nd.Children {
		if err := pt.pinWalk(child, depth+1, n); err != nil {
			return err
		}
	}
	return nil
}

// SearchWindow reports every stored item intersecting q, reading node
// pages through the buffer pool in DFS order (the order a real R-tree
// search issues page requests).
func (pt *PagedTree) SearchWindow(q geom.Rect) ([]rtree.Item, error) {
	var out []rtree.Item
	aq := pt.fr.Begin("window")
	err := pt.search(0, 0, q, &out, aq)
	aq.SetResults(len(out))
	aq.End()
	return out, err
}

// SearchPoint is SearchWindow for a degenerate point query.
func (pt *PagedTree) SearchPoint(p geom.Point) ([]rtree.Item, error) {
	return pt.SearchWindow(geom.PointRect(p))
}

// CorruptionReport lists the pages a degraded search had to skip, with
// the error each one failed on. An empty report means the query saw
// only healthy pages and its result is complete.
type CorruptionReport struct {
	Faults []PageFault
}

// Degraded reports whether any subtree was skipped (the result set may
// be missing items stored under the damaged pages).
func (r *CorruptionReport) Degraded() bool { return len(r.Faults) > 0 }

// SearchWindowDegraded is SearchWindow in graceful-degradation mode:
// instead of failing the whole query on the first unreadable or corrupt
// page, it skips that subtree, keeps answering from healthy pages, and
// records the damage in the returned report. The result is a complete
// answer when the report is clean and a best-effort lower bound when it
// is not — the opt-in behaviour for serving reads off a partially
// damaged file while a repair (Scrub + re-save) is scheduled.
func (pt *PagedTree) SearchWindowDegraded(q geom.Rect) ([]rtree.Item, *CorruptionReport) {
	var out []rtree.Item
	rep := &CorruptionReport{}
	pt.searchDegraded(0, q, &out, rep)
	return out, rep
}

// SearchPointDegraded is SearchWindowDegraded for a point query.
func (pt *PagedTree) SearchPointDegraded(p geom.Point) ([]rtree.Item, *CorruptionReport) {
	return pt.SearchWindowDegraded(geom.PointRect(p))
}

func (pt *PagedTree) searchDegraded(page int, q geom.Rect, out *[]rtree.Item, rep *CorruptionReport) {
	frame, err := pt.pool.Get(page)
	if err != nil {
		rep.Faults = append(rep.Faults, PageFault{Page: page, Err: err})
		return
	}
	nd, err := DecodeNode(frame, page)
	if err != nil {
		rep.Faults = append(rep.Faults, PageFault{Page: page, Err: err})
		return
	}
	for i, r := range nd.Rects {
		if !r.Intersects(q) {
			continue
		}
		if nd.Leaf {
			*out = append(*out, rtree.Item{Rect: r, ID: nd.IDs[i]})
		} else {
			pt.searchDegraded(nd.Children[i], q, out, rep)
		}
	}
}

// Nearest returns the k stored items closest to p (Euclidean distance to
// the rectangle), reading node pages through the buffer pool in best-first
// order — the Hjaltason–Samet algorithm over paged storage. Each pool
// miss is one counted disk access, so kNN workloads can be priced the
// same way window queries are.
func (pt *PagedTree) Nearest(p geom.Point, k int) ([]rtree.Neighbor, error) {
	if k <= 0 {
		return nil, nil
	}
	type queued struct {
		distSq float64
		page   int // valid when item is false
		depth  int // tree level of page, for access attribution
		isItem bool
		item   rtree.Item
	}
	// A slice-backed binary heap keyed on distSq.
	var h []queued
	push := func(e queued) {
		h = append(h, e)
		for i := len(h) - 1; i > 0; {
			parent := (i - 1) / 2
			if h[parent].distSq <= h[i].distSq {
				break
			}
			h[parent], h[i] = h[i], h[parent]
			i = parent
		}
	}
	pop := func() queued {
		top := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(h) && h[l].distSq < h[smallest].distSq {
				smallest = l
			}
			if r < len(h) && h[r].distSq < h[smallest].distSq {
				smallest = r
			}
			if smallest == i {
				break
			}
			h[i], h[smallest] = h[smallest], h[i]
			i = smallest
		}
		return top
	}

	aq := pt.fr.Begin("nearest")
	push(queued{page: 0})
	var out []rtree.Neighbor
	for len(h) > 0 && len(out) < k {
		e := pop()
		if e.isItem {
			out = append(out, rtree.Neighbor{Item: e.item, Dist: math.Sqrt(e.distSq)})
			continue
		}
		frame, info, err := pt.pool.GetTracked(e.page)
		aq.Access(e.depth, info.Hit, info.WriteBacks)
		if err != nil {
			aq.End()
			return nil, err
		}
		nd, err := DecodeNode(frame, e.page)
		if err != nil {
			aq.End()
			return nil, err
		}
		for i, r := range nd.Rects {
			d := minDistSq(p, r)
			if nd.Leaf {
				push(queued{distSq: d, isItem: true, item: rtree.Item{Rect: r, ID: nd.IDs[i]}})
			} else {
				push(queued{distSq: d, page: nd.Children[i], depth: e.depth + 1})
			}
		}
	}
	aq.SetResults(len(out))
	aq.End()
	return out, nil
}

// minDistSq returns the squared minimum Euclidean distance from p to r
// (zero when p is inside r).
func minDistSq(p geom.Point, r geom.Rect) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return dx*dx + dy*dy
}

// ScanLeaves visits every stored item by reading the leaf pages
// sequentially through the buffer pool — the sequential-scan access path
// a query optimizer weighs against the index (examples/optimizer). The
// leaf level is the last contiguous page range, so this is one linear
// pass of meta.Levels[last] page reads.
func (pt *PagedTree) ScanLeaves(visit func(rtree.Item) error) error {
	if !pt.meta.LevelOrder {
		return pt.scanLeavesWalk(0, visit)
	}
	lo, hi := pt.meta.LevelPageRange(len(pt.meta.Levels) - 1)
	for page := lo; page < hi; page++ {
		frame, err := pt.pool.Get(page)
		if err != nil {
			return err
		}
		nd, err := DecodeNode(frame, page)
		if err != nil {
			return err
		}
		if !nd.Leaf {
			return fmt.Errorf("storage: page %d in leaf range is not a leaf", page)
		}
		for i, r := range nd.Rects {
			if err := visit(rtree.Item{Rect: r, ID: nd.IDs[i]}); err != nil {
				return err
			}
		}
	}
	return nil
}

// scanLeavesWalk visits every item of a non-level-order tree by DFS: the
// leaf pages are scattered through the file, so the scan pays the same
// page reads a full-window search would (through the pool, each miss one
// counted access).
func (pt *PagedTree) scanLeavesWalk(page int, visit func(rtree.Item) error) error {
	frame, err := pt.pool.Get(page)
	if err != nil {
		return err
	}
	nd, err := DecodeNode(frame, page)
	if err != nil {
		return err
	}
	if nd.Leaf {
		for i, r := range nd.Rects {
			if err := visit(rtree.Item{Rect: r, ID: nd.IDs[i]}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, child := range nd.Children {
		if err := pt.scanLeavesWalk(child, visit); err != nil {
			return err
		}
	}
	return nil
}

func (pt *PagedTree) search(page, depth int, q geom.Rect, out *[]rtree.Item, aq *obs.ActiveQuery) error {
	frame, info, err := pt.pool.GetTracked(page)
	aq.Access(depth, info.Hit, info.WriteBacks)
	if err != nil {
		return err
	}
	nd, err := DecodeNode(frame, page)
	if err != nil {
		return err
	}
	for i, r := range nd.Rects {
		if !r.Intersects(q) {
			continue
		}
		if nd.Leaf {
			*out = append(*out, rtree.Item{Rect: r, ID: nd.IDs[i]})
		} else if err := pt.search(nd.Children[i], depth+1, q, out, aq); err != nil {
			return err
		}
	}
	return nil
}
