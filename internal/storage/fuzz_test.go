package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/rtree"
)

// FuzzDecodeNode throws arbitrary bytes at the page decoder: it must
// either return an error or a structurally sane NodeData — never panic,
// never return out-of-range shapes. `go test` exercises the seed corpus;
// `go test -fuzz=FuzzDecodeNode ./internal/storage` explores further.
func FuzzDecodeNode(f *testing.F) {
	// Seeds: a valid leaf page, a valid internal page, mutations.
	leaf := rtree.NodeData{
		Page: 0, Leaf: true,
		Rects: []geom.Rect{{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}},
		IDs:   []int64{7},
	}
	leafPage, err := EncodeNode(leaf, 256)
	if err != nil {
		f.Fatal(err)
	}
	internal := rtree.NodeData{
		Page: 1, Level: 1,
		Rects:    []geom.Rect{{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}},
		Children: []int{2},
	}
	internalPage, err := EncodeNode(internal, 256)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(leafPage)
	f.Add(internalPage)
	f.Add([]byte{})
	f.Add(make([]byte, nodeHeaderSize))
	corrupted := append([]byte(nil), leafPage...)
	corrupted[3] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		nd, err := DecodeNode(data, 0)
		if err != nil {
			return
		}
		// Successful decodes must be internally consistent.
		if nd.Leaf {
			if len(nd.IDs) != len(nd.Rects) || nd.Children != nil {
				t.Fatalf("inconsistent leaf decode: %+v", nd)
			}
		} else {
			if len(nd.Children) != len(nd.Rects) || nd.IDs != nil {
				t.Fatalf("inconsistent internal decode: %+v", nd)
			}
		}
		for _, r := range nd.Rects {
			if !r.Valid() {
				t.Fatalf("decoded invalid rect %v", r)
			}
		}
		// Round trip: re-encoding must reproduce a decodable page.
		if len(nd.Rects) <= NodeCapacity(4096) {
			page, err := EncodeNode(nd, 4096)
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if _, err := DecodeNode(page, 0); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
		}
	})
}

// FuzzOpenFile throws arbitrary file contents at the page-file opener:
// whatever the header claims, OpenFile must either reject the file with
// an error or produce a manager whose geometry is consistent with the
// format's laws and the file's actual size — never panic, never trust a
// header the file cannot back.
func FuzzOpenFile(f *testing.F) {
	// Seed with a genuine file plus targeted mutations of its header.
	dir := f.TempDir()
	good := filepath.Join(dir, "good.rt")
	fm, err := CreateFile(good, MinPageSize)
	if err != nil {
		f.Fatal(err)
	}
	if err := fm.WritePage(0, make([]byte, MinPageSize)); err != nil {
		f.Fatal(err)
	}
	if err := fm.WriteMeta([]byte("meta")); err != nil {
		f.Fatal(err)
	}
	if err := fm.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(good)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:5])           // truncated mid-magic
	f.Add(valid[:headerFixed]) // header only, no pages
	f.Add([]byte{})            // empty file
	mutate := func(offset int, v uint32) []byte {
		cp := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(cp[offset:], v)
		return cp
	}
	f.Add(mutate(8, 99))          // bad version
	f.Add(mutate(12, 8))          // page size below minimum
	f.Add(mutate(12, 1<<31))      // absurd page size
	f.Add(mutate(16, 1000))       // more pages than the file holds
	f.Add(mutate(16, 0xffffffff)) // page count at the uint32 limit
	f.Add(mutate(20, 0xffffffff)) // metadata length overflow
	bad := append([]byte(nil), valid...)
	copy(bad, "NOTATREE")
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.rt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fm, err := OpenFile(path)
		if err != nil {
			return
		}
		defer func() { _ = fm.Close() }()
		if fm.PageSize() < MinPageSize {
			t.Fatalf("accepted page size %d below minimum", fm.PageSize())
		}
		if fm.NumPages() < 0 {
			t.Fatalf("negative page count %d", fm.NumPages())
		}
		if need := uint64(fm.PageSize()) * uint64(fm.NumPages()+1); uint64(len(data)) < need {
			t.Fatalf("accepted header claiming %d bytes from a %d-byte file", need, len(data))
		}
		meta, err := fm.ReadMeta()
		if err != nil {
			t.Fatalf("accepted file but metadata unreadable: %v", err)
		}
		if len(meta) > fm.PageSize()-headerFixed {
			t.Fatalf("metadata %d bytes exceeds header capacity", len(meta))
		}
		// Every advertised page must be readable (it is within the file).
		buf := make([]byte, fm.PageSize())
		for page := 0; page < fm.NumPages(); page++ {
			if err := fm.ReadPage(page, buf); err != nil {
				t.Fatalf("advertised page %d unreadable: %v", page, err)
			}
		}
	})
}

// FuzzDecodeMeta does the same for the tree catalog decoder.
func FuzzDecodeMeta(f *testing.F) {
	good := encodeMeta(TreeMeta{MaxEntries: 25, MinEntries: 10, Items: 1000, Levels: []int{1, 4, 40}})
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMeta(data)
		if err != nil {
			return
		}
		if m.NumPages() < 0 {
			t.Fatalf("negative page count from %+v", m)
		}
	})
}
