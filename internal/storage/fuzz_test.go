package storage

import (
	"testing"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/rtree"
)

// FuzzDecodeNode throws arbitrary bytes at the page decoder: it must
// either return an error or a structurally sane NodeData — never panic,
// never return out-of-range shapes. `go test` exercises the seed corpus;
// `go test -fuzz=FuzzDecodeNode ./internal/storage` explores further.
func FuzzDecodeNode(f *testing.F) {
	// Seeds: a valid leaf page, a valid internal page, mutations.
	leaf := rtree.NodeData{
		Page: 0, Leaf: true,
		Rects: []geom.Rect{{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}},
		IDs:   []int64{7},
	}
	leafPage, err := EncodeNode(leaf, 256)
	if err != nil {
		f.Fatal(err)
	}
	internal := rtree.NodeData{
		Page: 1, Level: 1,
		Rects:    []geom.Rect{{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}},
		Children: []int{2},
	}
	internalPage, err := EncodeNode(internal, 256)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(leafPage)
	f.Add(internalPage)
	f.Add([]byte{})
	f.Add(make([]byte, nodeHeaderSize))
	corrupted := append([]byte(nil), leafPage...)
	corrupted[3] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		nd, err := DecodeNode(data, 0)
		if err != nil {
			return
		}
		// Successful decodes must be internally consistent.
		if nd.Leaf {
			if len(nd.IDs) != len(nd.Rects) || nd.Children != nil {
				t.Fatalf("inconsistent leaf decode: %+v", nd)
			}
		} else {
			if len(nd.Children) != len(nd.Rects) || nd.IDs != nil {
				t.Fatalf("inconsistent internal decode: %+v", nd)
			}
		}
		for _, r := range nd.Rects {
			if !r.Valid() {
				t.Fatalf("decoded invalid rect %v", r)
			}
		}
		// Round trip: re-encoding must reproduce a decodable page.
		if len(nd.Rects) <= NodeCapacity(4096) {
			page, err := EncodeNode(nd, 4096)
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if _, err := DecodeNode(page, 0); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
		}
	})
}

// FuzzDecodeMeta does the same for the tree catalog decoder.
func FuzzDecodeMeta(f *testing.F) {
	good := encodeMeta(TreeMeta{MaxEntries: 25, MinEntries: 10, Items: 1000, Levels: []int{1, 4, 40}})
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:10])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMeta(data)
		if err != nil {
			return
		}
		if m.NumPages() < 0 {
			t.Fatalf("negative page count from %+v", m)
		}
	})
}
