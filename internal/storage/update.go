package storage

import (
	"fmt"
	"sort"

	"rtreebuf/internal/geom"
	"rtreebuf/internal/rtree"
)

// This file is the crash-safe update path: Guttman's Insert and Delete
// executed directly against stored pages through the buffer pool, with
// every mutation funneled through a redo-only write-ahead log.
//
// One operation is one WAL batch. An operation stages its changes in
// memory (decoded NodeData per touched page), then commits:
//
//	1. page images + new catalog  -> WAL (AppendBatch; the log device's
//	   WriteMeta is the commit point)
//	2. images                     -> buffer pool (Put, dirty)
//	3. dirty pages                -> page file (FlushDirty)
//	4. catalog                    -> page file meta
//	5. checkpoint when the policy says the log has earned truncation
//
// A failure before step 1 completes leaves the tree exactly as it was
// (staging is discarded, the WAL rolls back its tail). A failure in
// steps 2-4 leaves a committed batch that Recover replays on reopen; the
// in-process handle is poisoned (sticky updateErr) because its pool and
// file now disagree. A failure in step 5 is not an operation failure at
// all — the batch is durable and applied — so it surfaces as a sticky
// CheckpointErr warning rather than an error return.
//
// Updates abandon the level-order page layout SaveTree produces: a split
// allocates the next free page wherever it lands, and a merge returns
// pages to a free list. The catalog records this (meta v2, LevelOrder
// false) so readers switch from range scans to root walks.

// ErrReadOnlyTree is returned by Insert/Delete on a tree opened without
// a WAL (OpenPagedTree): unlogged in-place writes could tear the file.
var ErrReadOnlyTree = fmt.Errorf("storage: tree opened read-only (no WAL; use OpenPagedTreeWAL)")

// OpenPagedTreeWAL opens a persisted tree for buffered querying and
// crash-safe updating. walDev hosts the write-ahead log (its page size
// must be at least dm's plus WALFrameOverhead; WALPath names the
// conventional sibling file). Recovery runs first: any batches committed
// to the log but not fully in the page file are replayed before the tree
// is opened, so a crash between commit and write-back is invisible to
// the caller. The report says what recovery found.
func OpenPagedTreeWAL(dm, walDev DiskManager, bufferPages int) (*PagedTree, RecoveryReport, error) {
	var (
		w   *WAL
		err error
	)
	if walDev.NumPages() == 0 {
		w, err = CreateWAL(walDev, dm.PageSize())
	} else {
		w, err = OpenWAL(walDev, dm.PageSize())
	}
	if err != nil {
		return nil, RecoveryReport{}, err
	}
	rep, err := Recover(dm, w)
	if err != nil {
		return nil, rep, err
	}
	pt, err := OpenPagedTree(dm, bufferPages)
	if err != nil {
		return nil, rep, err
	}
	pt.wal = w
	pt.pool.SetSink(dm)
	return pt, rep, nil
}

// WAL returns the tree's log handle, or nil for read-only trees.
func (pt *PagedTree) WAL() *WAL { return pt.wal }

// SetCheckpointPolicy replaces the checkpoint policy. The zero policy
// (the default) checkpoints after every batch — shortest possible
// recovery, one extra sync per operation.
func (pt *PagedTree) SetCheckpointPolicy(p CheckpointPolicy) { pt.ckpt = p }

// UpdateErr returns the sticky error poisoning this handle, if any. A
// non-nil value means a commit half-applied: the WAL holds the batch but
// the in-process state is stale. Reopen with OpenPagedTreeWAL to recover.
func (pt *PagedTree) UpdateErr() error { return pt.updateErr }

// CheckpointErr returns the sticky checkpoint warning, if any. A non-nil
// value means the most recent due checkpoint could not truncate the log:
// every operation still committed and applied — no data is at risk and
// no retry is needed — but recovery would replay a longer log than the
// policy wants. Cleared by the next successful checkpoint.
func (pt *PagedTree) CheckpointErr() error { return pt.ckptErr }

// Insert adds one item, running Guttman's ChooseLeaf / split /
// AdjustTree against stored pages. The change is durable (or cleanly
// absent) when Insert returns: one call is one WAL batch.
func (pt *PagedTree) Insert(item rtree.Item) error {
	u, err := pt.beginUpdate()
	if err != nil {
		return err
	}
	if err := u.insertEntry(item.Rect, 0, item.ID, true, len(u.meta.Levels)-1); err != nil {
		return err
	}
	u.meta.Items++
	return pt.commitUpdate(u)
}

// Delete removes one stored item matching both rectangle and ID,
// reporting whether it was found. Follows Guttman: FindLeaf, remove,
// CondenseTree with orphan reinsertion, root shrink. A not-found delete
// writes nothing (no WAL batch).
func (pt *PagedTree) Delete(item rtree.Item) (bool, error) {
	u, err := pt.beginUpdate()
	if err != nil {
		return false, err
	}
	var path []int
	found, err := u.findLeaf(0, item, &path)
	if err != nil || !found {
		return false, err
	}
	leaf, err := u.node(path[len(path)-1])
	if err != nil {
		return false, err
	}
	idx := -1
	for i, r := range leaf.Rects {
		if leaf.IDs[i] == item.ID && r.Equal(item.Rect) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, fmt.Errorf("storage: found leaf lost entry (page %d)", leaf.Page)
	}
	leaf.Rects = append(leaf.Rects[:idx], leaf.Rects[idx+1:]...)
	leaf.IDs = append(leaf.IDs[:idx], leaf.IDs[idx+1:]...)
	leaf.dirty = true
	u.meta.Items--
	if err := u.condense(path); err != nil {
		return false, err
	}
	if err := u.shrinkRoot(); err != nil {
		return false, err
	}
	return true, pt.commitUpdate(u)
}

// updateNode is one staged page: the decoded node plus batch-local flags.
type updateNode struct {
	rtree.NodeData
	dirty bool // differs from the stored page; goes into the WAL batch
	freed bool // released this batch; excluded from the batch images
}

// updater stages one operation's changes before the all-or-nothing
// commit. Pages are decoded on first touch (reads go through the pool,
// so the operation's I/O is counted like any query's); the stored tree
// and catalog stay untouched until commitUpdate.
type updater struct {
	pt    *PagedTree
	meta  TreeMeta // deep copy; mutated freely
	nodes map[int]*updateNode
}

func (pt *PagedTree) beginUpdate() (*updater, error) {
	if pt.wal == nil {
		return nil, ErrReadOnlyTree
	}
	if pt.updateErr != nil {
		return nil, fmt.Errorf("storage: tree handle poisoned by earlier half-applied commit: %w", pt.updateErr)
	}
	meta := pt.meta
	meta.Levels = append([]int(nil), pt.meta.Levels...)
	meta.Free = append([]int(nil), pt.meta.Free...)
	meta.TotalPages = pt.meta.PageSpan()
	return &updater{pt: pt, meta: meta, nodes: make(map[int]*updateNode)}, nil
}

// node returns the staged copy of page, decoding it on first touch.
func (u *updater) node(page int) (*updateNode, error) {
	if n, ok := u.nodes[page]; ok {
		return n, nil
	}
	frame, err := u.pt.pool.Get(page)
	if err != nil {
		return nil, err
	}
	nd, err := DecodeNode(frame, page)
	if err != nil {
		return nil, err
	}
	n := &updateNode{NodeData: nd}
	u.nodes[page] = n
	return n, nil
}

// newNode stages a fresh node on page, replacing any earlier staging
// (reusing a page freed in this same batch is legal).
func (u *updater) newNode(page, level int, leaf bool) *updateNode {
	n := &updateNode{
		NodeData: rtree.NodeData{Page: page, Level: level, Leaf: leaf},
		dirty:    true,
	}
	u.nodes[page] = n
	return n
}

// allocPage takes a page from the free list, or extends the file.
func (u *updater) allocPage() int {
	if n := len(u.meta.Free); n > 0 {
		p := u.meta.Free[n-1]
		u.meta.Free = u.meta.Free[:n-1]
		return p
	}
	p := u.meta.TotalPages
	u.meta.TotalPages = p + 1
	return p
}

// freePage returns a page to the free list. The page keeps its stale
// bytes; only the catalog makes it dead.
func (u *updater) freePage(n *updateNode) {
	n.freed = true
	n.dirty = false
	u.meta.Free = append(u.meta.Free, n.Page)
}

func mbr(rects []geom.Rect) geom.Rect {
	out := rects[0]
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out
}

// insertEntry descends from the root to targetDepth choosing the child
// needing least enlargement (ties: smaller area), appends the entry
// (an item when isItem, else a subtree pointer), and resolves overflows
// by splitting upward — Guttman's Insert generalized to any level so
// condense can reinsert orphaned subtrees with it.
func (u *updater) insertEntry(rect geom.Rect, childPage int, id int64, isItem bool, targetDepth int) error {
	path := []int{0}
	for depth := 0; depth < targetDepth; depth++ {
		n, err := u.node(path[depth])
		if err != nil {
			return err
		}
		best, bestEnl, bestArea := -1, 0.0, 0.0
		for i, r := range n.Rects {
			area := r.Area()
			enl := r.Union(rect).Area() - area
			if best < 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		if best < 0 {
			return fmt.Errorf("storage: internal page %d has no children", n.Page)
		}
		// Grow the covering rectangle on the way down (AdjustTree's
		// upward pass, folded into the descent: union with an exact MBR
		// stays exact).
		if grown := n.Rects[best].Union(rect); !grown.Equal(n.Rects[best]) {
			n.Rects[best] = grown
			n.dirty = true
		}
		path = append(path, n.Children[best])
	}

	target, err := u.node(path[targetDepth])
	if err != nil {
		return err
	}
	target.Rects = append(target.Rects, rect)
	if isItem {
		target.IDs = append(target.IDs, id)
	} else {
		target.Children = append(target.Children, childPage)
		if err := u.restampSubtree(childPage, targetDepth+1); err != nil {
			return err
		}
	}
	target.dirty = true

	for d := targetDepth; d >= 0; d-- {
		n, err := u.node(path[d])
		if err != nil {
			return err
		}
		if len(n.Rects) <= u.meta.MaxEntries {
			break
		}
		if d == 0 {
			return u.splitRoot(n)
		}
		parent, err := u.node(path[d-1])
		if err != nil {
			return err
		}
		u.splitChild(n, parent, d)
	}
	return nil
}

// takeIndices builds the entry set of one split half.
func takeIndices(n *updateNode, idx []int) (rects []geom.Rect, children []int, ids []int64) {
	rects = make([]geom.Rect, len(idx))
	if n.Leaf {
		ids = make([]int64, len(idx))
	} else {
		children = make([]int, len(idx))
	}
	for i, j := range idx {
		rects[i] = n.Rects[j]
		if n.Leaf {
			ids[i] = n.IDs[j]
		} else {
			children[i] = n.Children[j]
		}
	}
	return rects, children, ids
}

// splitChild splits an overflowing non-root node in place: the left
// group keeps the page, the right group gets a fresh one, and the parent
// swaps its single covering entry for two exact ones (which may overflow
// the parent — the caller's loop continues upward).
func (u *updater) splitChild(n, parent *updateNode, depth int) {
	left, right := rtree.SplitIndices(u.meta.Split, u.meta.MinEntries, n.Rects)
	lr, lc, li := takeIndices(n, left)
	rr, rc, ri := takeIndices(n, right)

	sib := u.newNode(u.allocPage(), n.Level, n.Leaf)
	sib.Rects, sib.Children, sib.IDs = rr, rc, ri

	n.Rects, n.Children, n.IDs = lr, lc, li
	n.dirty = true
	u.meta.Levels[depth]++

	for i, c := range parent.Children {
		if c == n.Page {
			parent.Rects[i] = mbr(n.Rects)
			break
		}
	}
	parent.Rects = append(parent.Rects, mbr(sib.Rects))
	parent.Children = append(parent.Children, sib.Page)
	parent.dirty = true
}

// splitRoot splits the root: both halves move to fresh pages and page 0
// becomes a new two-entry internal root, growing the tree by one level.
// Every node's depth shifts by one, so the whole tree is restamped —
// the O(n) price of the paper's 0-is-root level convention; root splits
// are rare (one per ~MaxEntries^level inserts).
func (u *updater) splitRoot(root *updateNode) error {
	left, right := rtree.SplitIndices(u.meta.Split, u.meta.MinEntries, root.Rects)
	lr, lc, li := takeIndices(root, left)
	rr, rc, ri := takeIndices(root, right)

	ln := u.newNode(u.allocPage(), 1, root.Leaf)
	ln.Rects, ln.Children, ln.IDs = lr, lc, li
	rn := u.newNode(u.allocPage(), 1, root.Leaf)
	rn.Rects, rn.Children, rn.IDs = rr, rc, ri

	newRoot := u.newNode(0, 0, false)
	newRoot.Rects = []geom.Rect{mbr(ln.Rects), mbr(rn.Rects)}
	newRoot.Children = []int{ln.Page, rn.Page}

	levels := make([]int, 0, len(u.meta.Levels)+1)
	levels = append(levels, 1, 2)
	levels = append(levels, u.meta.Levels[1:]...)
	u.meta.Levels = levels
	return u.restampAll()
}

// restampAll rewrites every reachable node's stored level to its depth.
// Needed whenever the tree's height changes (root split or shrink),
// because stored levels count from the root down.
func (u *updater) restampAll() error {
	return u.restampSubtree(0, 0)
}

// restampSubtree sets stored levels to depths throughout the subtree at
// page, dirtying only pages whose level actually changes. Used after
// height changes and when condense reattaches an orphaned subtree at a
// depth other than the one it was cut from.
func (u *updater) restampSubtree(page, depth int) error {
	n, err := u.node(page)
	if err != nil {
		return err
	}
	if n.Level != depth {
		n.Level = depth
		n.dirty = true
	}
	if n.Leaf {
		return nil
	}
	for _, child := range n.Children {
		if err := u.restampSubtree(child, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// findLeaf locates the leaf holding an entry equal to item, appending
// the root-to-leaf page path. Containment-directed DFS, as in Guttman's
// FindLeaf: several subtrees may contain the rectangle.
func (u *updater) findLeaf(page int, item rtree.Item, path *[]int) (bool, error) {
	*path = append(*path, page)
	n, err := u.node(page)
	if err != nil {
		return false, err
	}
	if n.Leaf {
		for i, r := range n.Rects {
			if n.IDs[i] == item.ID && r.Equal(item.Rect) {
				return true, nil
			}
		}
		*path = (*path)[:len(*path)-1]
		return false, nil
	}
	for i, r := range n.Rects {
		if r.ContainsRect(item.Rect) {
			found, err := u.findLeaf(n.Children[i], item, path)
			if err != nil || found {
				return found, err
			}
		}
	}
	*path = (*path)[:len(*path)-1]
	return false, nil
}

// condense walks the deletion path leaf-to-root, eliminating under-full
// nodes (their entries become orphans) and tightening surviving covering
// rectangles, then reinserts orphans at their original height.
func (u *updater) condense(path []int) error {
	type orphan struct {
		rect   geom.Rect
		child  int // subtree page; item orphans use id instead
		id     int64
		isItem bool
		height int // of the node the entry lived in (0 = leaf)
	}
	var orphans []orphan

	for d := len(path) - 1; d >= 1; d-- {
		n, err := u.node(path[d])
		if err != nil {
			return err
		}
		parent, err := u.node(path[d-1])
		if err != nil {
			return err
		}
		pi := -1
		for i, c := range parent.Children {
			if c == n.Page {
				pi = i
				break
			}
		}
		if pi < 0 {
			return fmt.Errorf("storage: page %d not a child of page %d", n.Page, parent.Page)
		}
		if len(n.Rects) < u.meta.MinEntries {
			height := len(u.meta.Levels) - 1 - d
			for i, r := range n.Rects {
				o := orphan{rect: r, height: height}
				if n.Leaf {
					o.isItem, o.id = true, n.IDs[i]
				} else {
					o.child = n.Children[i]
				}
				orphans = append(orphans, o)
			}
			parent.Rects = append(parent.Rects[:pi], parent.Rects[pi+1:]...)
			parent.Children = append(parent.Children[:pi], parent.Children[pi+1:]...)
			parent.dirty = true
			u.freePage(n)
			u.meta.Levels[d]--
		} else if len(n.Rects) > 0 {
			if m := mbr(n.Rects); !m.Equal(parent.Rects[pi]) {
				parent.Rects[pi] = m
				parent.dirty = true
			}
		}
	}

	// Reinsert in reverse collection order (subtrees before leaf items),
	// matching the in-memory Tree.condense. Heights are re-anchored to
	// the current level count each time: a reinsertion can split the
	// root and deepen the tree under our feet.
	for i := len(orphans) - 1; i >= 0; i-- {
		o := orphans[i]
		targetDepth := len(u.meta.Levels) - 1 - o.height
		if err := u.insertEntry(o.rect, o.child, o.id, o.isItem, targetDepth); err != nil {
			return err
		}
	}
	return nil
}

// shrinkRoot collapses the root while it is an internal node with one
// child: the child's contents move onto page 0, the tree loses a level,
// and stored levels are restamped.
func (u *updater) shrinkRoot() error {
	for {
		root, err := u.node(0)
		if err != nil {
			return err
		}
		if root.Leaf || len(root.Rects) != 1 {
			return nil
		}
		child, err := u.node(root.Children[0])
		if err != nil {
			return err
		}
		next := u.newNode(0, 0, child.Leaf)
		next.Rects = append([]geom.Rect(nil), child.Rects...)
		next.Children = append([]int(nil), child.Children...)
		next.IDs = append([]int64(nil), child.IDs...)
		u.freePage(child)
		u.meta.Levels = u.meta.Levels[1:]
		u.meta.Levels[0] = 1
		if err := u.restampAll(); err != nil {
			return err
		}
	}
}

// maxFreeListLen bounds the free list so the v2 catalog always fits the
// page file's metadata capacity (pageSize - 24 header bytes, the
// stricter of the managers' limits).
func maxFreeListLen(pageSize, nLevels int) int {
	n := (pageSize - 24 - 40 - 4*nLevels) / 4
	if n < 0 {
		return 0
	}
	return n
}

// commitUpdate runs the commit sequence described at the top of the
// file. On a WAL append failure the staged operation is discarded and
// the stored tree is untouched; on a write-back or catalog failure after
// the WAL commit the handle is poisoned (the log has the truth, the
// process does not). Checkpoint-stage failures return nil: the operation
// committed, so they are recorded in CheckpointErr instead.
func (pt *PagedTree) commitUpdate(u *updater) error {
	// The operation abandons level order the moment it commits.
	u.meta.LevelOrder = false
	if max := maxFreeListLen(pt.dm.PageSize(), len(u.meta.Levels)); len(u.meta.Free) > max {
		// Leak the excess pages rather than grow the catalog past its
		// page: they become dead space a future re-save reclaims.
		u.meta.Free = u.meta.Free[:max]
	}

	var images []PageImage
	for page, n := range u.nodes {
		if !n.dirty || n.freed {
			continue
		}
		data, err := EncodeNode(n.NodeData, pt.dm.PageSize())
		if err != nil {
			return err
		}
		images = append(images, PageImage{Page: page, Data: data})
	}
	if len(images) == 0 {
		return nil
	}
	sort.Slice(images, func(i, j int) bool { return images[i].Page < images[j].Page })

	metaBytes := encodeMetaV2(u.meta)
	batch, err := pt.wal.AppendBatch(images, metaBytes)
	if err != nil {
		return fmt.Errorf("storage: logging update: %w", err)
	}

	// The batch is durable; from here every failure poisons the handle.
	pt.pool.Grow(u.meta.PageSpan())
	for _, img := range images {
		if err := pt.pool.Put(img.Page, img.Data); err != nil {
			pt.updateErr = err
			return fmt.Errorf("storage: applying committed batch %d: %w", batch, err)
		}
	}
	if err := pt.pool.FlushDirty(); err != nil {
		pt.updateErr = err
		return fmt.Errorf("storage: applying committed batch %d: %w", batch, err)
	}
	if err := pt.dm.WriteMeta(metaBytes); err != nil {
		pt.updateErr = err
		return fmt.Errorf("storage: applying committed batch %d: %w", batch, err)
	}
	pt.meta = u.meta

	if pt.ckpt.Due(pt.wal) {
		// The log may only be truncated once the page writes are
		// durable, not merely issued. A failure from here on is NOT an
		// operation failure — the batch is committed, applied, and would
		// survive any crash; the log is merely longer than the policy
		// wants, so recovery replays more. Returning an error would make
		// a committed Insert look failed and invite a duplicating retry,
		// so the warning goes out of band: sticky CheckpointErr plus a
		// metrics counter, cleared by the next checkpoint that succeeds.
		if err := syncManager(pt.dm); err != nil {
			pt.ckptErr = fmt.Errorf("storage: sync before checkpoint of batch %d: %w", batch, err)
			pt.wal.metrics.noteWALCheckpointFailure()
		} else if err := pt.wal.Checkpoint(batch); err != nil {
			pt.ckptErr = fmt.Errorf("storage: checkpointing batch %d: %w", batch, err)
			pt.wal.metrics.noteWALCheckpointFailure()
		} else {
			pt.ckptErr = nil
		}
	}
	return nil
}
