package storage

import "fmt"

// PageFault records one damaged page and what is wrong with it.
type PageFault struct {
	Page int
	Err  error
}

func (p PageFault) String() string { return fmt.Sprintf("page %d: %v", p.Page, p.Err) }

// ScrubReport is the structured result of a Scrub pass: which pages the
// catalog claims, which of them are unreadable or corrupt, and whether
// the catalog itself is sound. A zero Faults slice with a nil MetaErr
// means every byte the tree depends on verified.
type ScrubReport struct {
	PageSize int
	Pages    int         // pages the catalog claims the tree occupies
	MetaErr  error       // non-nil when the catalog is missing, undecodable, or inconsistent
	Faults   []PageFault // unreadable, checksum-failing, or structurally invalid pages
}

// Clean reports whether the scrub found nothing wrong.
func (r ScrubReport) Clean() bool { return r.MetaErr == nil && len(r.Faults) == 0 }

// String renders a one-line summary.
func (r ScrubReport) String() string {
	switch {
	case r.Clean():
		return fmt.Sprintf("clean: %d pages verified", r.Pages)
	case r.MetaErr != nil:
		return fmt.Sprintf("corrupt: catalog unusable (%v), %d damaged pages found", r.MetaErr, len(r.Faults))
	default:
		return fmt.Sprintf("corrupt: %d of %d pages damaged", len(r.Faults), r.Pages)
	}
}

// Scrub verifies a persisted tree end to end: the catalog decodes and is
// consistent with the allocated page count, and every node page reads,
// passes its checksum, decodes, and references only in-range child
// pages. It never stops at the first fault — the report names every
// damaged page so an operator can judge blast radius. Pair it with
// PagedTree degraded mode to keep serving around the damage, or with a
// re-save to repair it.
func Scrub(dm DiskManager) ScrubReport {
	rep := ScrubReport{PageSize: dm.PageSize()}
	metaBuf, err := dm.ReadMeta()
	if err != nil {
		rep.MetaErr = fmt.Errorf("storage: reading catalog: %w", err)
		return rep
	}
	meta, err := decodeMeta(metaBuf)
	if err != nil {
		rep.MetaErr = err
		return rep
	}
	rep.Pages = meta.NumPages()
	if meta.PageSpan() > dm.NumPages() {
		rep.MetaErr = fmt.Errorf("storage: catalog claims %d pages but only %d are allocated",
			meta.PageSpan(), dm.NumPages())
		return rep
	}
	if !meta.LevelOrder {
		scrubWalk(dm, meta, &rep)
		return rep
	}
	buf := make([]byte, dm.PageSize())
	for page := 0; page < rep.Pages; page++ {
		if err := dm.ReadPage(page, buf); err != nil {
			rep.Faults = append(rep.Faults, PageFault{Page: page, Err: err})
			continue
		}
		nd, err := DecodeNode(buf, page)
		if err != nil {
			rep.Faults = append(rep.Faults, PageFault{Page: page, Err: err})
			continue
		}
		if !nd.Leaf {
			for i, child := range nd.Children {
				if child <= page || child >= rep.Pages {
					rep.Faults = append(rep.Faults, PageFault{
						Page: page,
						Err: fmt.Errorf("storage: entry %d references out-of-range child page %d (tree has %d pages, level order)",
							i, child, rep.Pages),
					})
					break
				}
			}
		}
	}
	return rep
}

// scrubWalk verifies a non-level-order (updated) tree: live pages are
// whatever the root reaches, free pages hold stale bytes and are never
// read. The walk checks each child reference against the file span and
// the free list, and flags pages reached twice (a cycle or shared
// child would otherwise loop or double-count).
func scrubWalk(dm DiskManager, meta TreeMeta, rep *ScrubReport) {
	span := meta.PageSpan()
	free := make(map[int]bool, len(meta.Free))
	for _, p := range meta.Free {
		free[p] = true
	}
	seen := make(map[int]bool, rep.Pages)
	buf := make([]byte, dm.PageSize())
	live := 0

	var walk func(page int)
	walk = func(page int) {
		if seen[page] {
			rep.Faults = append(rep.Faults, PageFault{
				Page: page,
				Err:  fmt.Errorf("storage: page reachable twice (cycle or shared child)"),
			})
			return
		}
		seen[page] = true
		live++
		if err := dm.ReadPage(page, buf); err != nil {
			rep.Faults = append(rep.Faults, PageFault{Page: page, Err: err})
			return
		}
		nd, err := DecodeNode(buf, page)
		if err != nil {
			rep.Faults = append(rep.Faults, PageFault{Page: page, Err: err})
			return
		}
		if nd.Leaf {
			return
		}
		for i, child := range nd.Children {
			switch {
			case child < 0 || child >= span:
				rep.Faults = append(rep.Faults, PageFault{
					Page: page,
					Err: fmt.Errorf("storage: entry %d references out-of-range child page %d (file spans %d pages)",
						i, child, span),
				})
			case free[child]:
				rep.Faults = append(rep.Faults, PageFault{
					Page: page,
					Err:  fmt.Errorf("storage: entry %d references free page %d", i, child),
				})
			default:
				walk(child)
			}
		}
	}
	walk(0)

	if rep.MetaErr == nil && len(rep.Faults) == 0 && live != rep.Pages {
		rep.MetaErr = fmt.Errorf("storage: catalog claims %d live pages but the root reaches %d",
			rep.Pages, live)
	}
}
