package storage

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// The sharded buffer pool issues ReadPage calls and dirty-page
// write-backs from many goroutines with no lock held, so the disk
// managers must tolerate concurrent page I/O — including writes that
// extend the page space — without racing on their internal state
// (REVIEW.md: FileManager's header flags and MemoryManager's page-table
// growth were unsynchronized). Run under -race in CI.
func TestManagersConcurrentPageIO(t *testing.T) {
	const (
		pageSize   = 256
		seedPages  = 32
		writers    = 4
		extendEach = 16
		readers    = 4
		readOps    = 400
	)
	pattern := func(page int) []byte {
		b := make([]byte, pageSize)
		for i := range b {
			b[i] = byte(page) ^ byte(i*3)
		}
		return b
	}
	managers := map[string]func(t *testing.T) DiskManager{
		"memory": func(t *testing.T) DiskManager {
			m, err := NewMemoryManager(pageSize)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"file": func(t *testing.T) DiskManager {
			fm, err := CreateFile(filepath.Join(t.TempDir(), "conc.rtree"), pageSize)
			if err != nil {
				t.Fatal(err)
			}
			return fm
		},
	}
	for name, mk := range managers {
		t.Run(name, func(t *testing.T) {
			dm := mk(t)
			defer dm.Close()
			for pg := 0; pg < seedPages; pg++ {
				if err := dm.WritePage(pg, pattern(pg)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, writers+readers+1)
			// Writers overwrite their own seed page and extend the page
			// space with disjoint ranges, racing each other on the
			// page-count state.
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < extendEach; i++ {
						for _, pg := range []int{w, seedPages + w*extendEach + i} {
							if err := dm.WritePage(pg, pattern(pg)); err != nil {
								errs <- err
								return
							}
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					buf := make([]byte, pageSize)
					for i := 0; i < readOps; i++ {
						// Stable seed pages only: concurrent same-page
						// read/write is outside the managers' contract.
						pg := writers + (r*readOps+i)%(seedPages-writers)
						if err := dm.ReadPage(pg, buf); err != nil {
							errs <- err
							return
						}
						if !bytes.Equal(buf, pattern(pg)) {
							errs <- fmt.Errorf("page %d torn read", pg)
							return
						}
					}
				}(r)
			}
			// A FileManager flush concurrent with extending writes is the
			// WAL-checkpoint-during-write-back scenario; it must neither
			// race nor let the header get ahead of synced data.
			if fm, ok := dm.(*FileManager); ok {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						if err := fm.Flush(); err != nil {
							errs <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			wantPages := seedPages + writers*extendEach
			if got := dm.NumPages(); got != wantPages {
				t.Errorf("NumPages = %d, want %d (a concurrent extension was lost)", got, wantPages)
			}
			buf := make([]byte, pageSize)
			for pg := 0; pg < wantPages; pg++ {
				if err := dm.ReadPage(pg, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, pattern(pg)) {
					t.Fatalf("page %d contents wrong after concurrent writes", pg)
				}
			}
			// The file manager must also survive a reopen: the deferred
			// header picks up the full concurrent extent on Close.
			if fm, ok := dm.(*FileManager); ok {
				path := fm.f.Name()
				if err := fm.Close(); err != nil {
					t.Fatal(err)
				}
				re, err := OpenFile(path)
				if err != nil {
					t.Fatal(err)
				}
				defer re.Close()
				if got := re.NumPages(); got != wantPages {
					t.Errorf("reopened NumPages = %d, want %d", got, wantPages)
				}
				for pg := 0; pg < wantPages; pg++ {
					if err := re.ReadPage(pg, buf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(buf, pattern(pg)) {
						t.Fatalf("page %d contents wrong after reopen", pg)
					}
				}
			}
		})
	}
}
