package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Write-ahead log for the buffered update path.
//
// The WAL turns a batch of dirty pages plus the new tree catalog into one
// atomic unit: every page image and a commit marker are appended to a
// dedicated log device, made durable in a single group-commit fsync, and
// only then written back to the page file. A crash at any point leaves
// either no trace of the batch (commit horizon not advanced — the tree is
// exactly its pre-batch self) or a committed batch that Recover replays
// idempotently until the page file and catalog match the post-batch tree.
// There is no interleaving that yields a hybrid.
//
// The log device is an ordinary DiskManager whose page size is the data
// page size plus a fixed frame header, so the whole fault harness
// (FaultManager crash points, torn writes, transient errors) applies to
// log writes exactly as it does to page writes. Record framing
// (little endian, one record per log block):
//
//	0:4   magic "WALR"
//	4:8   kind (1 = page image, 2 = batch commit)
//	8:16  sequence number (strictly increasing by 1 across the log)
//	16:24 batch ID (strictly increasing across batches)
//	24:28 page number (images) / image count of the batch (commits)
//	28:32 payload length (images: the data page size; commits: catalog length)
//	32:36 CRC-32C of the block with this field zeroed
//	36:40 reserved
//	40:   payload
//
// The commit point is the log device's WriteMeta: FileManager syncs all
// record blocks before rewriting its header (the same ordering machinery
// Flush/WriteMeta give the page file), and the WAL's meta blob carries the
// committed-sequence horizon plus the checkpoint watermark:
//
//	0:4   magic "WALM"
//	4:8   format version (1)
//	8:16  committed sequence (records beyond it are torn or uncommitted)
//	16:24 applied batch watermark (batches at or below it are checkpointed)
//	24:28 CRC-32C of the first 24 bytes
//
// Recovery scans the record blocks from 0, stops at the first torn,
// corrupt, or non-contiguous block, keeps only records within the
// committed horizon, replays complete batches above the watermark in
// order (pages, then catalog — the page file's own WriteMeta ordering
// keeps the catalog from ever being durably ahead of the data), then
// checkpoints, which also truncates the torn tail: the write position
// returns to block 0 and the dead records are overwritten.
const (
	walRecordMagic   = uint32(0x524C4157) // "WALR"
	walMetaMagic     = uint32(0x4D4C4157) // "WALM"
	walFormatVersion = 1
	walFrameSize     = 40
	walMetaSize      = 28
	walCRCOffset     = 32

	walKindImage  = uint32(1)
	walKindCommit = uint32(2)
)

// WALFrameOverhead is the per-record framing cost: a WAL device must have
// a page size of at least the data page size plus this many bytes.
const WALFrameOverhead = walFrameSize

// WALPath returns the conventional log path for a page file: the page
// file's path with ".wal" appended.
func WALPath(pagePath string) string { return pagePath + ".wal" }

// PageImage is one page's post-batch contents, the unit a batch logs and
// writes back.
type PageImage struct {
	Page int
	Data []byte
}

// WAL is a write-ahead log over a dedicated DiskManager. It is not safe
// for concurrent use (neither are the managers it writes to).
type WAL struct {
	dev          DiskManager
	dataPageSize int

	nextSeq      uint64 // sequence number of the next record appended
	committedSeq uint64 // durable horizon: records beyond it are not committed
	appliedBatch uint64 // checkpoint watermark: batches <= it are in the page file
	nextBatch    uint64 // batch ID of the next AppendBatch
	writeBlock   int    // device block the next record lands in

	batchesSinceCheckpoint int
	metrics                *Metrics
}

// CreateWAL initializes an empty log on dev for pages of dataPageSize
// bytes. dev must be fresh (no pages) and its page size must be at least
// dataPageSize + WALFrameOverhead.
func CreateWAL(dev DiskManager, dataPageSize int) (*WAL, error) {
	if err := checkWALDevice(dev, dataPageSize); err != nil {
		return nil, err
	}
	if dev.NumPages() != 0 {
		return nil, fmt.Errorf("storage: CreateWAL on a device with %d existing pages", dev.NumPages())
	}
	w := &WAL{
		dev:          dev,
		dataPageSize: dataPageSize,
		nextSeq:      1,
		nextBatch:    1,
	}
	if err := w.writeWALMeta(); err != nil {
		return nil, err
	}
	return w, nil
}

// OpenWAL opens an existing log on dev. A missing or corrupt meta blob is
// tolerated — the log is then treated as holding no committed records —
// so reopening after any crash always succeeds; the damage shows up in
// the RecoveryReport instead.
func OpenWAL(dev DiskManager, dataPageSize int) (*WAL, error) {
	if err := checkWALDevice(dev, dataPageSize); err != nil {
		return nil, err
	}
	w := &WAL{dev: dev, dataPageSize: dataPageSize}
	meta, metaOK := w.readWALMeta()
	if metaOK {
		w.committedSeq = meta.committedSeq
		w.appliedBatch = meta.appliedBatch
	}
	s := w.scan()
	// Resume strictly from the committed prefix. Records beyond the
	// horizon are uncommitted debris: the write position returns to the
	// end of the prefix to overwrite them, so their sequence numbers must
	// not leak into nextSeq — a committed batch appended after a seq gap
	// would be unreadable to a later scan (which stops at the first
	// non-contiguous record) and silently lost.
	w.nextSeq = s.lastCommittedSeq + 1
	w.nextBatch = w.appliedBatch + 1
	if s.committedBlocks > 0 {
		if last := s.records[s.committedBlocks-1].batch; last >= w.nextBatch {
			w.nextBatch = last + 1
		}
	}
	w.writeBlock = s.committedBlocks
	return w, nil
}

func checkWALDevice(dev DiskManager, dataPageSize int) error {
	if dataPageSize < MinPageSize {
		return fmt.Errorf("storage: WAL data page size %d < minimum %d", dataPageSize, MinPageSize)
	}
	if dev.PageSize() < dataPageSize+walFrameSize {
		return fmt.Errorf("storage: WAL device page size %d < data page size %d + frame %d",
			dev.PageSize(), dataPageSize, walFrameSize)
	}
	return nil
}

// SetMetrics attaches an obs mirror for WAL events; nil detaches.
func (w *WAL) SetMetrics(m *Metrics) { w.metrics = m }

// CommittedSeq returns the durable commit horizon.
func (w *WAL) CommittedSeq() uint64 { return w.committedSeq }

// AppliedBatch returns the checkpoint watermark: the highest batch ID
// known to be fully in the page file.
func (w *WAL) AppliedBatch() uint64 { return w.appliedBatch }

// LogBlocks returns the current length of the live log in blocks (the
// write position). Checkpointing a fully applied log resets it to zero.
func (w *WAL) LogBlocks() int { return w.writeBlock }

// walMeta is the decoded meta blob.
type walMeta struct {
	committedSeq uint64
	appliedBatch uint64
}

func (w *WAL) writeWALMeta() error {
	buf := make([]byte, walMetaSize)
	binary.LittleEndian.PutUint32(buf[0:4], walMetaMagic)
	binary.LittleEndian.PutUint32(buf[4:8], walFormatVersion)
	binary.LittleEndian.PutUint64(buf[8:16], w.committedSeq)
	binary.LittleEndian.PutUint64(buf[16:24], w.appliedBatch)
	binary.LittleEndian.PutUint32(buf[24:28], crc32.Checksum(buf[:24], castagnoli))
	if err := w.dev.WriteMeta(buf); err != nil {
		return fmt.Errorf("storage: WAL meta write: %w", err)
	}
	return nil
}

// readWALMeta returns the decoded meta and whether it was intact.
func (w *WAL) readWALMeta() (walMeta, bool) {
	buf, err := w.dev.ReadMeta()
	if err != nil || len(buf) < walMetaSize {
		return walMeta{}, false
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != walMetaMagic {
		return walMeta{}, false
	}
	if binary.LittleEndian.Uint32(buf[4:8]) != walFormatVersion {
		return walMeta{}, false
	}
	if binary.LittleEndian.Uint32(buf[24:28]) != crc32.Checksum(buf[:24], castagnoli) {
		return walMeta{}, false
	}
	return walMeta{
		committedSeq: binary.LittleEndian.Uint64(buf[8:16]),
		appliedBatch: binary.LittleEndian.Uint64(buf[16:24]),
	}, true
}

// walRecord is one decoded log record.
type walRecord struct {
	seq     uint64
	batch   uint64
	kind    uint32
	pageNo  int    // images
	count   int    // commits: image count of the batch
	payload []byte // image bytes or catalog bytes (copied)
}

func (w *WAL) encodeRecord(buf []byte, kind uint32, seq, batch uint64, pageNo int, payload []byte) {
	for i := range buf {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[0:4], walRecordMagic)
	binary.LittleEndian.PutUint32(buf[4:8], kind)
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	binary.LittleEndian.PutUint64(buf[16:24], batch)
	binary.LittleEndian.PutUint32(buf[24:28], uint32(pageNo))
	binary.LittleEndian.PutUint32(buf[28:32], uint32(len(payload)))
	copy(buf[walFrameSize:], payload)
	binary.LittleEndian.PutUint32(buf[walCRCOffset:], walBlockChecksum(buf))
}

// walBlockChecksum computes the CRC-32C of a log block with the checksum
// field treated as zero.
func walBlockChecksum(buf []byte) uint32 {
	crc := crc32.New(castagnoli)
	crc.Write(buf[:walCRCOffset])
	crc.Write(zeroChecksum[:])
	crc.Write(buf[walCRCOffset+4:])
	return crc.Sum32()
}

// decodeRecord parses one log block; ok is false for torn, corrupt, or
// foreign blocks.
func (w *WAL) decodeRecord(buf []byte) (walRecord, bool) {
	if len(buf) < walFrameSize {
		return walRecord{}, false
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != walRecordMagic {
		return walRecord{}, false
	}
	if binary.LittleEndian.Uint32(buf[walCRCOffset:]) != walBlockChecksum(buf) {
		return walRecord{}, false
	}
	r := walRecord{
		seq:   binary.LittleEndian.Uint64(buf[8:16]),
		batch: binary.LittleEndian.Uint64(buf[16:24]),
		kind:  binary.LittleEndian.Uint32(buf[4:8]),
	}
	n := int(binary.LittleEndian.Uint32(buf[24:28]))
	plen := int(binary.LittleEndian.Uint32(buf[28:32]))
	if plen < 0 || walFrameSize+plen > len(buf) {
		return walRecord{}, false
	}
	switch r.kind {
	case walKindImage:
		if plen != w.dataPageSize || n < 0 {
			return walRecord{}, false
		}
		r.pageNo = n
	case walKindCommit:
		if n < 0 {
			return walRecord{}, false
		}
		r.count = n
	default:
		return walRecord{}, false
	}
	r.payload = append([]byte(nil), buf[walFrameSize:walFrameSize+plen]...)
	return r, true
}

// walScan is the result of reading the log from block 0.
type walScan struct {
	records          []walRecord // valid, contiguous prefix
	committedBlocks  int         // blocks holding records within the commit horizon
	lastCommittedSeq uint64      // seq of the last record within the horizon, 0 if none
	tornAt           int         // block index scanning stopped at, or -1 if the whole device parsed
	discarded        int         // valid records beyond the commit horizon (uncommitted debris)
}

// scan reads the valid record prefix of the device: blocks parse, CRCs
// hold, and sequence numbers increase by exactly 1. Scanning stops at the
// first violation; everything after is a torn tail or dead space.
func (w *WAL) scan() walScan {
	s := walScan{tornAt: -1}
	buf := make([]byte, w.dev.PageSize())
	var prevSeq uint64
	for block := 0; block < w.dev.NumPages(); block++ {
		if err := w.dev.ReadPage(block, buf); err != nil {
			s.tornAt = block
			break
		}
		r, ok := w.decodeRecord(buf)
		if !ok || (prevSeq != 0 && r.seq != prevSeq+1) {
			s.tornAt = block
			break
		}
		prevSeq = r.seq
		s.records = append(s.records, r)
		if r.seq <= w.committedSeq {
			s.committedBlocks = block + 1
			s.lastCommittedSeq = r.seq
		} else {
			s.discarded++
		}
	}
	return s
}

// AppendBatch logs a batch — every post-batch page image plus the
// post-batch catalog — and commits it durably in one meta write (the
// group-commit fsync: the device syncs all record blocks before its
// header advances the commit horizon). On success the batch will survive
// any crash; nothing may be written to the page file before this returns.
// On failure the log's in-memory position is rolled back so a retry (or
// the next batch) overwrites the partial records, and the commit horizon
// is untouched: the batch never happened.
func (w *WAL) AppendBatch(pages []PageImage, treeMeta []byte) (batchID uint64, err error) {
	if len(pages) == 0 {
		return 0, fmt.Errorf("storage: WAL batch with no pages")
	}
	if len(treeMeta) > w.dev.PageSize()-walFrameSize {
		return 0, fmt.Errorf("storage: WAL batch catalog %d bytes > payload capacity %d",
			len(treeMeta), w.dev.PageSize()-walFrameSize)
	}
	startSeq, startBlock := w.nextSeq, w.writeBlock
	batchID = w.nextBatch
	buf := make([]byte, w.dev.PageSize())
	for _, img := range pages {
		if len(img.Data) != w.dataPageSize {
			w.nextSeq, w.writeBlock = startSeq, startBlock
			return 0, fmt.Errorf("storage: WAL image for page %d is %d bytes, want %d",
				img.Page, len(img.Data), w.dataPageSize)
		}
		w.encodeRecord(buf, walKindImage, w.nextSeq, batchID, img.Page, img.Data)
		if err := w.dev.WritePage(w.writeBlock, buf); err != nil {
			w.nextSeq, w.writeBlock = startSeq, startBlock
			return 0, fmt.Errorf("storage: WAL append: %w", err)
		}
		w.nextSeq++
		w.writeBlock++
		w.metrics.noteWALRecord()
	}
	w.encodeRecord(buf, walKindCommit, w.nextSeq, batchID, len(pages), treeMeta)
	if err := w.dev.WritePage(w.writeBlock, buf); err != nil {
		w.nextSeq, w.writeBlock = startSeq, startBlock
		return 0, fmt.Errorf("storage: WAL append (commit record): %w", err)
	}
	w.nextSeq++
	w.writeBlock++
	w.metrics.noteWALRecord()

	// The commit point: record data is synced, then the horizon advances.
	commitSeq := w.nextSeq - 1
	prev := w.committedSeq
	w.committedSeq = commitSeq
	if err := w.writeWALMeta(); err != nil {
		w.committedSeq = prev
		w.nextSeq, w.writeBlock = startSeq, startBlock
		return 0, err
	}
	w.nextBatch = batchID + 1
	w.batchesSinceCheckpoint++
	w.metrics.noteWALCommit()
	return batchID, nil
}

// Checkpoint advances the applied watermark to batch, recording that
// every batch up to and including it is durably in the page file. Call it
// only after the page file's data and catalog for those batches are
// synced (syncManager on the page file's manager). When the whole log is
// applied, the write position returns to block 0, truncating any torn
// tail: dead records are overwritten by the next batch.
func (w *WAL) Checkpoint(batch uint64) error {
	if batch < w.appliedBatch {
		return fmt.Errorf("storage: checkpoint watermark moving backwards (%d < %d)", batch, w.appliedBatch)
	}
	prev := w.appliedBatch
	w.appliedBatch = batch
	if batch >= w.nextBatch-1 {
		// Everything committed is applied: the live log is empty.
		w.writeBlock = 0
	}
	if err := w.writeWALMeta(); err != nil {
		w.appliedBatch = prev
		return err
	}
	w.batchesSinceCheckpoint = 0
	w.metrics.noteWALCheckpoint()
	return nil
}

// CheckpointPolicy bounds recovery replay length: how many committed
// batches (or log blocks) may accumulate before the update path must
// checkpoint. The zero value checkpoints after every batch — shortest
// replay, one extra meta write per batch.
type CheckpointPolicy struct {
	// EveryBatches checkpoints once this many batches committed since the
	// last checkpoint. 0 means every batch.
	EveryBatches int
	// MaxLogBlocks forces a checkpoint once the live log exceeds this
	// many blocks, regardless of batch count. 0 disables the bound.
	MaxLogBlocks int
}

// Due reports whether the policy calls for a checkpoint now.
func (p CheckpointPolicy) Due(w *WAL) bool {
	if w.batchesSinceCheckpoint == 0 {
		return false
	}
	if p.EveryBatches <= 0 || w.batchesSinceCheckpoint >= p.EveryBatches {
		return true
	}
	return p.MaxLogBlocks > 0 && w.writeBlock > p.MaxLogBlocks
}

// RecoveryReport describes what Recover found and did.
type RecoveryReport struct {
	MetaIntact       bool // the WAL meta blob decoded and passed its CRC
	ScannedRecords   int  // valid records in the contiguous prefix
	TornAtBlock      int  // block index scanning stopped at, -1 if none
	DiscardedRecords int  // records beyond the commit horizon (uncommitted tail)
	CommittedBatches int  // complete batches within the horizon
	PendingBatches   int  // committed batches above the watermark (needed replay)
	ReplayedBatches  int  // batches actually replayed into the page file
	ReplayedPages    int  // page images written during replay
	IncompleteCommit bool // the horizon covers records the scan could not produce (log damage)
}

// NeededRecovery reports whether the log held committed work the page
// file did not yet have.
func (r RecoveryReport) NeededRecovery() bool { return r.PendingBatches > 0 }

// String renders a one-line summary.
func (r RecoveryReport) String() string {
	switch {
	case r.IncompleteCommit:
		return fmt.Sprintf("damaged: commit horizon covers unreadable records (%d replayed, %d discarded)",
			r.ReplayedBatches, r.DiscardedRecords)
	case r.ReplayedBatches > 0:
		return fmt.Sprintf("recovered: replayed %d of %d committed batches (%d pages), discarded %d uncommitted records",
			r.ReplayedBatches, r.CommittedBatches, r.ReplayedPages, r.DiscardedRecords)
	case r.PendingBatches > 0:
		return fmt.Sprintf("pending: %d committed batches await replay, discarded %d uncommitted records",
			r.PendingBatches, r.DiscardedRecords)
	case r.DiscardedRecords > 0:
		return fmt.Sprintf("clean: no pending batches, discarded %d uncommitted records", r.DiscardedRecords)
	default:
		return "clean: log empty or fully applied"
	}
}

// InspectWAL reports what Recover would do without writing anything: the
// committed-but-unapplied batches, torn tails, and uncommitted debris.
func InspectWAL(w *WAL) RecoveryReport {
	rep, _ := w.analyze()
	return rep
}

// analyze scans the log and groups committed records into complete
// batches above the watermark, in order.
func (w *WAL) analyze() (RecoveryReport, []walReplayBatch) {
	rep := RecoveryReport{TornAtBlock: -1}
	_, rep.MetaIntact = w.readWALMeta()
	s := w.scan()
	rep.ScannedRecords = len(s.records)
	rep.TornAtBlock = s.tornAt
	rep.DiscardedRecords = s.discarded

	// Group the committed prefix into batches. Records of one batch are
	// contiguous (appends are single-threaded), ending in its commit
	// record; the horizon never splits a batch, but a damaged log can
	// leave the horizon pointing past what parsed — flag it.
	var batches []walReplayBatch
	var cur walReplayBatch
	maxCommitted := uint64(0)
	for _, r := range s.records {
		if r.seq > w.committedSeq {
			break
		}
		maxCommitted = r.seq
		switch r.kind {
		case walKindImage:
			if cur.id != 0 && cur.id != r.batch {
				cur = walReplayBatch{} // interleaved batches: abandoned append debris
			}
			cur.id = r.batch
			cur.images = append(cur.images, PageImage{Page: r.pageNo, Data: r.payload})
		case walKindCommit:
			if cur.id == r.batch && len(cur.images) == r.count {
				cur.meta = r.payload
				batches = append(batches, cur)
				rep.CommittedBatches++
			}
			cur = walReplayBatch{}
		}
	}
	if maxCommitted < w.committedSeq {
		rep.IncompleteCommit = true
	}
	var pending []walReplayBatch
	for _, b := range batches {
		if b.id > w.appliedBatch {
			pending = append(pending, b)
		}
	}
	rep.PendingBatches = len(pending)
	return rep, pending
}

type walReplayBatch struct {
	id     uint64
	images []PageImage
	meta   []byte
}

// Recover replays every committed-but-unapplied batch from w into dm:
// for each batch in commit order, all page images, then the batch's
// catalog (dm's own WriteMeta ordering syncs the pages first). Replay is
// idempotent — rerunning after a crash mid-recovery writes the same
// bytes — and total: a junk, truncated, or bit-flipped log yields a
// report, not a panic. After a successful replay the page file is synced
// and the log checkpointed, truncating torn tails and uncommitted
// debris.
func Recover(dm DiskManager, w *WAL) (RecoveryReport, error) {
	rep, pending := w.analyze()
	// A redo batch only touches pages the file already has, or extends
	// it — by at most one page per logged image. A page number beyond
	// that bound cannot have come from AppendBatch (which logs writes
	// that actually happened); it marks a corrupt record whose CRC
	// happens to hold, and replaying it would grow the file (and the
	// heap) without bound. Refuse cleanly instead.
	maxPage := dm.NumPages()
	for _, b := range pending {
		maxPage += len(b.images)
	}
	for _, b := range pending {
		for _, img := range b.images {
			if img.Page >= maxPage {
				return rep, fmt.Errorf("storage: recovery of batch %d: image for page %d beyond reachable span %d",
					b.id, img.Page, maxPage)
			}
		}
	}
	for _, b := range pending {
		for _, img := range b.images {
			if err := dm.WritePage(img.Page, img.Data); err != nil {
				return rep, fmt.Errorf("storage: recovery of batch %d, page %d: %w", b.id, img.Page, err)
			}
			rep.ReplayedPages++
			w.metrics.noteWALReplayedPage()
		}
		if err := dm.WriteMeta(b.meta); err != nil {
			return rep, fmt.Errorf("storage: recovery of batch %d catalog: %w", b.id, err)
		}
		rep.ReplayedBatches++
		w.metrics.noteWALReplayedBatch()
	}
	if rep.ReplayedBatches > 0 {
		if err := syncManager(dm); err != nil {
			return rep, fmt.Errorf("storage: syncing page file after recovery: %w", err)
		}
	}
	// Checkpoint even when nothing replayed: this durably discards torn
	// tails and uncommitted debris so the next append overwrites them.
	last := w.appliedBatch
	if n := len(pending); n > 0 {
		last = pending[n-1].id
	} else if w.nextBatch > 1 {
		last = w.nextBatch - 1
	}
	if err := w.Checkpoint(last); err != nil {
		return rep, err
	}
	return rep, nil
}

// syncManager flushes a manager to stable storage when it supports
// syncing (FileManager does; MemoryManager needs none). Wrapping
// managers forward it to what they wrap.
func syncManager(dm DiskManager) error {
	if s, ok := dm.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}
